// Package jsonlogic is a from-scratch Go reproduction of "JSON: Data
// model, Query languages and Schema specification" (Bourhis, Reutter,
// Suárez, Vrgoč; PODS 2017, arXiv:1701.02221).
//
// The library implements the paper's JSON tree data model, the JSON
// Navigational Logic (JNL) with its deterministic, non-deterministic and
// recursive fragments, the JSON Schema Logic (JSL) with recursive
// definitions, the Table 1 fragment of JSON Schema with both Theorem 1
// translations, J-automata with satisfiability procedures, and MongoDB
// find-filter and JSONPath frontends compiled into the logics.
//
// On top of the formal core sits internal/engine, the production
// evaluation layer: query sources in any front end (JNL, JSL, JSONPath,
// MongoDB find) compile once into immutable plans held in a bounded LRU
// cache, and a goroutine-safe API evaluates one plan over many
// documents concurrently — per-call evaluator state keeps the
// O(|J|·|φ|) bounds of Propositions 1 and 3 while letting trees and
// plans be shared freely. Batch entry points fan a plan out over tree
// slices and NDJSON streams with a worker pool; a differential test
// harness pins the engine's results node-for-node to the reference
// evaluators.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record of every reproduced result. The
// functional packages live under internal/; the cmd/ directory provides
// the jsonq, jsonvalidate, jsonsat and jsonrepro executables, and
// examples/ holds eight runnable walkthroughs.
package jsonlogic
