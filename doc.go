// Package jsonlogic is a from-scratch Go reproduction of "JSON: Data
// model, Query languages and Schema specification" (Bourhis, Reutter,
// Suárez, Vrgoč; PODS 2017, arXiv:1701.02221).
//
// The library implements the paper's JSON tree data model, the JSON
// Navigational Logic (JNL) with its deterministic, non-deterministic and
// recursive fragments, the JSON Schema Logic (JSL) with recursive
// definitions, the Table 1 fragment of JSON Schema with both Theorem 1
// translations, J-automata with satisfiability procedures, and MongoDB
// find-filter and JSONPath frontends compiled into the logics.
//
// On top of the formal core sits the unified query pipeline: every
// front end (JNL, JSL, JSONPath, MongoDB find) lowers into one logical
// algebra (internal/qir — the paper's common navigational core made
// operational), which compiles into a physical program of
// short-circuiting iterator operators with memoized closure and
// recursion. internal/engine wraps that in immutable plans held in a
// bounded LRU cache and a goroutine-safe API that evaluates one plan
// over many documents concurrently; the per-language evaluators are
// retained as differential-test oracles, and a harness pins the
// executor's results node-for-node to them. Batch entry points fan a
// plan out over tree slices and NDJSON streams with a worker pool.
//
// internal/store adds the storage tier: a sharded, goroutine-safe
// document collection with an inverted path index (presence, kind and
// exact-value terms per root-anchored path, maintained incrementally
// on insert and delete). At compile time each plan derives, from its
// QIR lowering, the path facts a matching document must satisfy; a
// cost-based planner consults per-term statistics to choose index
// versus scan per query, orders posting-list intersection by ascending
// selectivity and skips near-useless terms, and the executor runs over
// the candidates only — results are provably and differentially-tested
// identical to the full scan either way, and Plan.Explain plus the
// store's Explain surface the logical/physical trees with estimated
// versus actual cardinalities.
//
// The store is durable when opened with a data directory: every put
// and delete is appended to a per-shard write-ahead log
// (length-prefixed, CRC-protected records; group-commit fsync under a
// configurable policy) before it is applied, shards are snapshotted
// in the background with atomic write-temp-then-rename, and reopening
// recovers the latest valid snapshot plus the replayed WAL tail,
// truncating torn tails and rebuilding the index. Crash-recovery
// tests pin the reopened store node-for-node to an in-memory
// reference. cmd/jsonstored serves the store over HTTP with bulk
// NDJSON ingest, graceful-shutdown flush and a /stats endpoint
// covering shards, index cardinalities, plan-cache hit rates and
// WAL/snapshot/recovery counters.
//
// See README.md for install and quickstart, docs/ARCHITECTURE.md for
// the system overview (front ends → engine → store → durability →
// daemon), and docs/QUERY_LANGUAGES.md for every front end's grammar
// mapped back to the paper. The functional packages live under
// internal/; the cmd/ directory provides the jsonq, jsonvalidate,
// jsonsat, jsonrepro, jsonstored and benchjson executables, and
// examples/ holds nine runnable walkthroughs.
package jsonlogic
