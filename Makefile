# Development targets mirroring .github/workflows/ci.yml.

GO ?= go

# The committed benchmark snapshot for this PR sequence; bump per PR.
BENCH_JSON ?= BENCH_8.json
# bench-diff compares the previous PR's snapshot against this one.
BENCH_OLD ?= BENCH_7.json
BENCH_NEW ?= $(BENCH_JSON)

.PHONY: all build vet fmt-check test race race-core alloc-check chaos fuzz bench bench-engine bench-store bench-smoke bench-json bench-diff docs-check run-daemon loadtest-smoke loadgrid

all: vet fmt-check build test docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean (CI runs the same check).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Just the concurrency-hot tiers (shared plans, pooled executor
# states, sharded store with parallel query fan-out, WAL group
# commit, the trace ring under concurrent writers and the traced
# HTTP read path) plus the theory packages the semantic planner now
# calls at compile time (containment/jauto/schema/datalog) — the
# fast-failing prefix of the full race run. The metamorphic
# containment harness in internal/store rides along here, so its
# ≥1000 pairs per front end run race-clean on every push.
race-core:
	$(GO) test -race ./internal/qir ./internal/engine ./internal/store ./internal/trace ./internal/httpapi ./internal/containment ./internal/jauto ./internal/schema ./internal/datalog

# Allocation-regression gate: the AllocsPerRun tests pinning the
# pooled executor's steady state (plan-cache-hit Match/Eval at zero
# allocations), the untraced compile path — including cache-hit
# compiles with the semantic pass enabled — the disabled/pooled
# trace recorder, and the store's steady-state segment probe. The
# theory packages are included so any future alloc pins there are
# picked up without editing this target.
# -count=1 defeats the test cache so the numbers are measured, not
# replayed.
alloc-check:
	$(GO) test -run 'ZeroAllocs|AllocsBounded' -count=1 ./internal/qir ./internal/engine ./internal/store ./internal/trace ./internal/containment ./internal/jauto ./internal/schema ./internal/datalog

# The robustness suite: fault-injected durability (a FaultFS injects
# ENOSPC/EIO/short writes under the WAL and snapshotter; shards must
# degrade read-only, keep serving oracle-correct reads, survive a
# crash without corruption and self-heal once the fault lifts),
# cooperative query cancellation, Close racing in-flight queries, and
# the HTTP half (429 admission sheds, 503 degraded/drain contract,
# 504 timeouts). Under -race — the close/cancel scenarios are
# concurrency tests first. -count=1: faults must be injected, not
# replayed from the test cache.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Cancelled|Deadline|HonoursContext|NilContext|LiveContext|CloseRaces|QueryGate|QueryTimeout|Drain|Degraded|BulkByteGate' ./internal/store ./internal/httpapi

# Short native-fuzz passes: the engine's plan-cache key path, the
# witness-soundness targets for the semantic planner's decision
# procedures (a SAT witness must satisfy the query through the real
# engine; containment refutations must separate the pair under the
# production evaluator), and the segment posting-list codec (round-
# trip fidelity; hostile bytes must error, never panic or over-read).
fuzz:
	$(GO) test ./internal/engine/ -run FuzzPlanCache -fuzz FuzzPlanCache -fuzztime 20s
	$(GO) test ./internal/jauto/ -run FuzzJNLSat -fuzz FuzzJNLSat -fuzztime 30s
	$(GO) test ./internal/containment/ -run FuzzContainment -fuzz FuzzContainment -fuzztime 30s
	$(GO) test ./internal/store/ -run FuzzPostingsCodec -fuzz FuzzPostingsCodec -fuzztime 20s

# The full complexity-reproduction benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 2x ./...

# Just the engine layer: plan-cache hit/miss and batch parallelism.
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine' ./...

# The storage tier: indexed query vs full scan at 10k/100k documents,
# bulk-ingest throughput (in-memory baseline and per-fsync-policy WAL
# overhead), and startup recovery.
bench-store:
	$(GO) test -run xxx -bench 'BenchmarkStore' ./...

# One iteration of a representative benchmark per tier (evaluator,
# engine, store, planner) — catches bit-rot, not regressions; CI runs
# this on every push.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkP1EvalDeterministic|BenchmarkStoreFindMongo|BenchmarkStorePlanner' -benchtime 1x ./...

# Documentation checks: required docs exist, relative markdown links
# resolve, and every package (including examples/) compiles via vet.
docs-check:
	sh scripts/docs-check.sh

# Run the daemon durably against a throwaway data directory — the
# quickest way to poke the HTTP API (and kill-and-recover: rerun with
# the printed directory to recover it).
run-daemon:
	@dir=$$(mktemp -d /tmp/jsonstored-data.XXXXXX); \
	echo "data dir: $$dir"; \
	$(GO) run ./cmd/jsonstored -addr :8080 -data-dir "$$dir" -fsync interval

# Load-harness smoke: the jsonload self-tests drive the generator
# against an in-process daemon (real handlers over httptest) whose
# slow-query threshold is forced to 0, so every request exercises the
# full trace-capture path under load; asserts nonzero throughput,
# zero errors and a well-formed summary including the slowest-K
# request ids. -count=1 so the run is measured, not replayed from the
# test cache; CI runs this on every push.
loadtest-smoke:
	$(GO) test -run 'TestRun|TestGrid' -count=1 ./internal/load

# The full reproducible load grid: builds jsonstored + jsonload,
# starts a throwaway durable daemon, sweeps the experiments manifest
# (workload x concurrency, 30s per point) and writes one combined CSV
# table per run. Expect ~7 minutes with the default manifest; see
# cmd/jsonload/README.md for reading the results.
loadgrid:
	sh scripts/loadgrid/run_grid.sh

# Benchmarks as data: run the suite and record (name, ns/op, B/op,
# allocs/op) in $(BENCH_JSON), committed per PR so the performance
# trajectory is tracked in review diffs. BENCH_TIME trades noise for
# wall-clock: 3x keeps the suite runnable everywhere, but snapshots
# that feed the bench-diff gate should use 10x+ — on a small host a
# single GC pause inside a 3-sample mean reads as a 2× swing on the
# sub-millisecond benchmarks. Shapes, not absolute numbers, are the
# signal either way.
# Staged through a temp file (not a pipe) so a failing benchmark run
# aborts the target instead of silently writing a truncated snapshot;
# the trap removes the temp file on failure too.
BENCH_TIME ?= 3x
bench-json:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run xxx -bench . -benchtime $(BENCH_TIME) -benchmem ./... > "$$tmp"; \
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < "$$tmp"

# Diff two committed benchmark snapshots: per-benchmark ns/op and
# allocs/op deltas, failing on >25% regressions in the hot-path
# allowlist (see cmd/benchjson's defaultHotPath). Numbers only compare
# within one machine — run bench-json for both files on the same host.
bench-diff:
	$(GO) run ./cmd/benchjson -compare $(BENCH_OLD) $(BENCH_NEW)
