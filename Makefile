# Development targets mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build vet test race fuzz bench bench-engine

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzz pass over the engine's plan-cache key path.
fuzz:
	$(GO) test ./internal/engine/ -run FuzzPlanCache -fuzz FuzzPlanCache -fuzztime 20s

# The full complexity-reproduction benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 2x ./...

# Just the engine layer: plan-cache hit/miss and batch parallelism.
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine' ./...
