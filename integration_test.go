// Cross-module integration tests: the same semantic question answered
// through independent paths of the system must agree everywhere —
// in-memory JSL evaluation (Prop 6), streaming validation (§6), the
// Theorem 1 round-trip through JSON Schema, the Theorem 2 round-trip
// through JNL, and satisfiability witnesses (Prop 10).
package jsonlogic

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/mongoq"
	"jsonlogic/internal/relang"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/stream"
	"jsonlogic/internal/translate"
)

// randIntegrationFormula draws JSL formulas in the fragment every path
// supports: no Unique (streaming), no negative-index modalities.
func randIntegrationFormula(r *rand.Rand, depth int) jsl.Formula {
	if depth == 0 {
		switch r.Intn(8) {
		case 0:
			return jsl.True{}
		case 1:
			return jsl.IsObj{}
		case 2:
			return jsl.IsArr{}
		case 3:
			return jsl.IsStr{}
		case 4:
			return jsl.IsInt{}
		case 5:
			return jsl.Min{I: uint64(r.Intn(4))}
		case 6:
			return jsl.Pattern{Re: relang.MustCompile("a|b")}
		default:
			return jsl.EqDoc{Doc: randIntegrationDoc(r, 1)}
		}
	}
	switch r.Intn(7) {
	case 0:
		return jsl.Not{Inner: randIntegrationFormula(r, depth-1)}
	case 1:
		return jsl.And{Left: randIntegrationFormula(r, depth-1), Right: randIntegrationFormula(r, depth-1)}
	case 2:
		return jsl.Or{Left: randIntegrationFormula(r, depth-1), Right: randIntegrationFormula(r, depth-1)}
	case 3:
		return jsl.DiaWord([]string{"a", "b"}[r.Intn(2)], randIntegrationFormula(r, depth-1))
	case 4:
		return jsl.BoxRe(relang.MustCompile("a|b"), randIntegrationFormula(r, depth-1))
	case 5:
		return jsl.DiamondIdx{Lo: 0, Hi: r.Intn(2) + 1, Inner: randIntegrationFormula(r, depth-1)}
	default:
		return jsl.MinCh{K: r.Intn(3)}
	}
}

func randIntegrationDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(4)))
		}
		return jsonval.Str([]string{"a", "b"}[r.Intn(2)])
	}
	if r.Intn(2) == 0 {
		n := r.Intn(3)
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randIntegrationDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	keys := []string{"a", "b"}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := r.Intn(3)
	members := make([]jsonval.Member, 0, n)
	for i := 0; i < n && i < len(keys); i++ {
		members = append(members, jsonval.Member{Key: keys[i], Value: randIntegrationDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

type integrationCase struct {
	f   jsl.Formula
	doc *jsonval.Value
}

func (integrationCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(integrationCase{
		f:   randIntegrationFormula(r, 3),
		doc: randIntegrationDoc(r, 3),
	})
}

// TestFourWayAgreement runs one (formula, document) pair through four
// independent deciders.
func TestFourWayAgreement(t *testing.T) {
	check := func(c integrationCase) bool {
		tree := jsontree.FromValue(c.doc)

		// Path 1: the in-memory JSL evaluator (Prop 6).
		direct, err := jsl.Holds(tree, c.f)
		if err != nil {
			t.Fatalf("jsl.Holds: %v", err)
		}

		// Path 2: streaming validation (§6).
		sv, err := stream.NewValidatorFormula(c.f)
		if err != nil {
			t.Fatalf("stream compile %s: %v", jsl.String(c.f), err)
		}
		streamed, err := sv.Validate(strings.NewReader(c.doc.String()))
		if err != nil {
			t.Fatalf("stream validate: %v", err)
		}

		// Path 3: Theorem 1 round-trip — JSL → JSON Schema → direct
		// schema validation.
		s, err := schema.FromJSLFormula(c.f)
		if err != nil {
			t.Fatalf("FromJSLFormula(%s): %v", jsl.String(c.f), err)
		}
		viaSchema, err := s.Validate(c.doc)
		if err != nil {
			t.Fatalf("schema validate: %v", err)
		}

		// Path 4: Theorem 2 round-trip — JSL → JNL → JNL evaluator.
		// Only the ~(A)-fragment translates (Theorem 2); formulas using
		// other node tests are legitimately refused and the path is
		// skipped for them.
		viaJNL := direct
		if u, err := translate.JSLToJNL(c.f); err == nil {
			viaJNL = jnl.Holds(tree, u, tree.Root())
		}

		if direct != streamed || direct != viaSchema || direct != viaJNL {
			t.Logf("formula: %s", jsl.String(c.f))
			t.Logf("doc: %s", c.doc)
			t.Logf("direct=%v stream=%v schema=%v jnl=%v", direct, streamed, viaSchema, viaJNL)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWitnessRoundTrip: for satisfiable random formulas, the witness
// produced by the Prop 10 machinery must satisfy the formula under
// every decider.
func TestWitnessRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	found := 0
	for trial := 0; trial < 200 && found < 60; trial++ {
		f := randIntegrationFormula(r, 3)
		w, sat, err := jauto.SatisfiableJSLFormula(f)
		if err != nil {
			continue // budget exhaustion: no verdict, nothing to check
		}
		if !sat {
			continue
		}
		found++
		tree := jsontree.FromValue(w)
		direct, err := jsl.Holds(tree, f)
		if err != nil {
			t.Fatal(err)
		}
		if !direct {
			t.Fatalf("witness %s does not satisfy %s (in-memory)", w, jsl.String(f))
		}
		sv, err := stream.NewValidatorFormula(f)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := sv.Validate(strings.NewReader(w.String()))
		if err != nil {
			t.Fatal(err)
		}
		if !streamed {
			t.Fatalf("witness %s does not satisfy %s (stream)", w, jsl.String(f))
		}
	}
	if found < 20 {
		t.Fatalf("only %d satisfiable formulas found; generator too restrictive", found)
	}
}

// TestMongoFilterAgreement: a find filter's verdict agrees between the
// collection scan, the compiled JSL formula, and streaming validation.
func TestMongoFilterAgreement(t *testing.T) {
	filters := []string{
		`{"a": 1}`,
		`{"a": {"$gte": 1}}`,
		`{"a.b": {"$exists": 1}}`,
		`{"$or": [{"a": {"$lt": 2}}, {"b": "x"}]}`,
		`{"$and": [{"a": {"$type": "number"}}, {"b": {"$ne": 5}}]}`,
		`{"a": {"$in": [1, "x", 3]}}`,
	}
	r := rand.New(rand.NewSource(4))
	docs := make([]*jsonval.Value, 0, 80)
	for i := 0; i < 80; i++ {
		d := randIntegrationDoc(r, 3)
		if !d.IsObject() {
			d = jsonval.MustObj(jsonval.Member{Key: "a", Value: d})
		}
		docs = append(docs, d)
	}
	for _, src := range filters {
		filter := mongoq.MustParse(src)
		sv, err := stream.NewValidatorFormula(filter.Formula())
		if err != nil {
			t.Fatalf("stream compile of filter %s: %v", src, err)
		}
		for _, d := range docs {
			direct := filter.Matches(d)
			streamed, err := sv.Validate(strings.NewReader(d.String()))
			if err != nil {
				t.Fatal(err)
			}
			if direct != streamed {
				t.Fatalf("filter %s on %s: direct=%v stream=%v", src, d, direct, streamed)
			}
		}
	}
}

// TestSchemaJSLSchemaRoundTrip: Schema → JSL → Schema preserves the
// validation relation (Theorem 1 in both directions at once).
func TestSchemaJSLSchemaRoundTrip(t *testing.T) {
	schemas := []string{
		`{"type":"string","pattern":"a+"}`,
		`{"type":"number","minimum":2,"maximum":9,"multipleOf":3}`,
		`{"type":"object","required":["a"],"properties":{"a":{"type":"number"}},"additionalProperties":{"type":"string"}}`,
		`{"type":"array","items":[{"type":"string"}],"additionalItems":{"type":"number"}}`,
		`{"anyOf":[{"type":"string"},{"type":"number","minimum":5}]}`,
		`{"not":{"type":"object"}}`,
		`{"enum":[{"a":1},"x",3]}`,
	}
	r := rand.New(rand.NewSource(11))
	for _, src := range schemas {
		s1 := schema.MustParse(src)
		rec, err := s1.ToJSL()
		if err != nil {
			t.Fatalf("%s: ToJSL: %v", src, err)
		}
		s2, err := schema.FromJSL(rec)
		if err != nil {
			t.Fatalf("%s: FromJSL: %v", src, err)
		}
		for i := 0; i < 150; i++ {
			d := randIntegrationDoc(r, 3)
			v1, err := s1.Validate(d)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := s2.Validate(d)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 {
				t.Fatalf("%s on %s: original=%v roundtrip=%v", src, d, v1, v2)
			}
		}
	}
}
