package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: jsonlogic
BenchmarkStoreFindMongo/indexed/docs=10000         	       2	    541768 ns/op	  144736 B/op	    3330 allocs/op
BenchmarkStoreIngestNDJSON                         	       2	  18094887 ns/op	   5.86 MB/s	17177932 B/op	   70269 allocs/op
BenchmarkBare-8	1000000	102.5 ns/op
PASS
ok  	jsonlogic	13.252s
`
	report, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(report.Entries))
	}
	e := report.Entries[0]
	if e.Name != "BenchmarkStoreFindMongo/indexed/docs=10000" || e.NsPerOp != 541768 ||
		e.BytesPerOp == nil || *e.BytesPerOp != 144736 || e.AllocsPerOp == nil || *e.AllocsPerOp != 3330 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if e := report.Entries[1]; e.MBPerSec != 5.86 || *e.AllocsPerOp != 70269 {
		t.Fatalf("entry 1 = %+v", e)
	}
	if e := report.Entries[2]; e.NsPerOp != 102.5 || e.BytesPerOp != nil || e.Iterations != 1000000 {
		t.Fatalf("entry 2 = %+v", e)
	}
}

// writeBenchFile marshals a report to a temp file for compare tests.
func writeBenchFile(t *testing.T, path string, entries []Entry) {
	t.Helper()
	data, err := json.MarshalIndent(&Report{Entries: entries}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func allocs(n int64) *int64 { return &n }

func TestCompareFlagsHotPathRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, []Entry{
		{Name: "BenchmarkHot/indexed", NsPerOp: 100, AllocsPerOp: allocs(10)},
		{Name: "BenchmarkCold/scan", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 1},
	})
	writeBenchFile(t, newPath, []Entry{
		{Name: "BenchmarkHot/indexed", NsPerOp: 140, AllocsPerOp: allocs(10)}, // +40% ns/op
		{Name: "BenchmarkCold/scan", NsPerOp: 900},                            // cold: reported, not gated
		{Name: "BenchmarkNew", NsPerOp: 5},
	})
	var sb strings.Builder
	failed, err := compareFiles(&sb, oldPath, newPath, []string{"BenchmarkHot"}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("a +40%% hot-path ns/op regression must fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "+ BenchmarkNew", "- BenchmarkGone", "(+40.0%)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}

	// Within threshold — and cold regressions alone — must pass.
	writeBenchFile(t, newPath, []Entry{
		{Name: "BenchmarkHot/indexed", NsPerOp: 120, AllocsPerOp: allocs(10)}, // +20%
		{Name: "BenchmarkCold/scan", NsPerOp: 900},
	})
	failed, err = compareFiles(io.Discard, oldPath, newPath, []string{"BenchmarkHot"}, 25)
	if err != nil || failed {
		t.Fatalf("within-threshold compare must pass (failed=%v err=%v)", failed, err)
	}
}

// TestCompareUnmatchedHotPrefixFails pins the rename guard: a gate
// prefix matching nothing in the new snapshot (renamed benchmark,
// allowlist typo) must fail the compare rather than silently un-gate.
func TestCompareUnmatchedHotPrefixFails(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, []Entry{{Name: "BenchmarkHot/x", NsPerOp: 100}})
	writeBenchFile(t, newPath, []Entry{{Name: "BenchmarkRenamed/x", NsPerOp: 100}})
	var sb strings.Builder
	failed, err := compareFiles(&sb, oldPath, newPath, []string{"BenchmarkHot"}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !failed || !strings.Contains(sb.String(), "? BenchmarkHot") {
		t.Fatalf("unmatched gate prefix must fail with a pointer to it:\n%s", sb.String())
	}
}

// TestCompareAllocRegression pins the allocs/op half of the gate,
// including the 0 → nonzero case that percentages cannot express.
func TestCompareAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, []Entry{{Name: "BenchmarkHot/x", NsPerOp: 100, AllocsPerOp: allocs(0)}})
	writeBenchFile(t, newPath, []Entry{{Name: "BenchmarkHot/x", NsPerOp: 100, AllocsPerOp: allocs(3)}})
	failed, err := compareFiles(io.Discard, oldPath, newPath, []string{"BenchmarkHot"}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("0 → 3 allocs/op on a hot path must fail the gate")
	}
}
