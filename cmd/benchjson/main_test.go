package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: jsonlogic
BenchmarkStoreFindMongo/indexed/docs=10000         	       2	    541768 ns/op	  144736 B/op	    3330 allocs/op
BenchmarkStoreIngestNDJSON                         	       2	  18094887 ns/op	   5.86 MB/s	17177932 B/op	   70269 allocs/op
BenchmarkBare-8	1000000	102.5 ns/op
PASS
ok  	jsonlogic	13.252s
`
	report, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(report.Entries))
	}
	e := report.Entries[0]
	if e.Name != "BenchmarkStoreFindMongo/indexed/docs=10000" || e.NsPerOp != 541768 ||
		e.BytesPerOp == nil || *e.BytesPerOp != 144736 || e.AllocsPerOp == nil || *e.AllocsPerOp != 3330 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if e := report.Entries[1]; e.MBPerSec != 5.86 || *e.AllocsPerOp != 70269 {
		t.Fatalf("entry 1 = %+v", e)
	}
	if e := report.Entries[2]; e.NsPerOp != 102.5 || e.BytesPerOp != nil || e.Iterations != 1000000 {
		t.Fatalf("entry 2 = %+v", e)
	}
}
