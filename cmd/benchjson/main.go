// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON record of the performance trajectory: one entry per
// benchmark with ns/op, B/op and allocs/op. The Makefile's bench-json
// target pipes the suite through it to produce BENCH_<n>.json files
// committed per PR, so regressions show up in review as diffs.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -out BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Report is the file layout: tool metadata plus the entries in input
// order. No timestamp — the file must be byte-stable across reruns of
// identical measurements so diffs show only real movement.
type Report struct {
	GoVersion string  `json:"go_version"`
	GoOS      string  `json:"goos"`
	GoArch    string  `json:"goarch"`
	Entries   []Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkX/part-8  100  12345 ns/op  8.21 MB/s  120 B/op  3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Entries), *out)
}

func parse(r io.Reader) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Entries:   []Entry{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", sc.Text())
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q", sc.Text())
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, field := range []string{"MB/s", "B/op", "allocs/op"} {
			val, ok := extractMetric(m[4], field)
			if !ok {
				continue
			}
			switch field {
			case "MB/s":
				e.MBPerSec = val
			case "B/op":
				v := int64(val)
				e.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				e.AllocsPerOp = &v
			}
		}
		report.Entries = append(report.Entries, e)
	}
	return report, sc.Err()
}

// extractMetric pulls "<number> <unit>" out of the tail of a bench
// line.
func extractMetric(tail, unit string) (float64, bool) {
	idx := strings.Index(tail, " "+unit)
	if idx < 0 {
		return 0, false
	}
	head := strings.TrimRight(tail[:idx], " \t")
	fields := strings.Fields(head)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
