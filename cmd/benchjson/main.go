// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON record of the performance trajectory: one entry per
// benchmark with ns/op, B/op and allocs/op. The Makefile's bench-json
// target pipes the suite through it to produce BENCH_<n>.json files
// committed per PR, so regressions show up in review as diffs.
//
// With -compare, benchjson instead diffs two such files: it reports
// per-benchmark ns/op and allocs/op deltas for every name present in
// both, lists additions and removals, and exits non-zero when a
// benchmark on the hot-path allowlist regresses by more than
// -threshold (default 25%) in either metric. `make bench-diff` wires
// this as the per-PR performance gate.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -out BENCH_2.json
//	benchjson -compare BENCH_4.json BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Report is the file layout: tool metadata plus the entries in input
// order. No timestamp — the file must be byte-stable across reruns of
// identical measurements so diffs show only real movement.
type Report struct {
	GoVersion string  `json:"go_version"`
	GoOS      string  `json:"goos"`
	GoArch    string  `json:"goarch"`
	Entries   []Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkX/part-8  100  12345 ns/op  8.21 MB/s  120 B/op  3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two BENCH_N.json files given as arguments instead of reading bench output")
	threshold := flag.Float64("threshold", 25, "percent regression in ns/op or allocs/op that fails -compare for allowlisted benchmarks")
	hot := flag.String("hot", "", "comma-separated hot-path benchmark prefixes gating -compare (default: built-in allowlist)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		allow := defaultHotPath
		if *hot != "" {
			allow = strings.Split(*hot, ",")
		}
		failed, err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), allow, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Entries), *out)
}

func parse(r io.Reader) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Entries:   []Entry{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", sc.Text())
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q", sc.Text())
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, field := range []string{"MB/s", "B/op", "allocs/op"} {
			val, ok := extractMetric(m[4], field)
			if !ok {
				continue
			}
			switch field {
			case "MB/s":
				e.MBPerSec = val
			case "B/op":
				v := int64(val)
				e.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				e.AllocsPerOp = &v
			}
		}
		report.Entries = append(report.Entries, e)
	}
	return report, sc.Err()
}

// extractMetric pulls "<number> <unit>" out of the tail of a bench
// line.
func extractMetric(tail, unit string) (float64, bool) {
	idx := strings.Index(tail, " "+unit)
	if idx < 0 {
		return 0, false
	}
	head := strings.TrimRight(tail[:idx], " \t")
	fields := strings.Fields(head)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// defaultHotPath is the allowlist of hot-path benchmarks -compare
// gates on: the per-query read path (indexed find/select, posting
// intersection, plan-cache hits) where a >threshold ns/op or allocs/op
// regression means a real serving regression. Cold paths (scans,
// recovery, durable ingest) are reported but never gate — their
// absolute numbers wobble too much with I/O.
var defaultHotPath = []string{
	"BenchmarkStoreFindMongo/indexed",
	"BenchmarkStoreSelectJSONPath/indexed",
	"BenchmarkStorePlannerSelective/indexed",
	"BenchmarkStoreIntersection/galloping",
	"BenchmarkEnginePlanCache/jnl/hit",
	"BenchmarkEnginePlanCache/jsl/hit",
	"BenchmarkEnginePlanCache/jsonpath/hit",
	"BenchmarkEnginePlanCache/mongo/hit",
	"BenchmarkEngineEvalZeroAlloc",
	// The semantic planner's serving-path additions: cache hits with
	// the pass enabled must stay indistinguishable from the
	// semantics-off plan cache, and a short-circuited unsat query is a
	// constant-time answer. Semantic misses are deliberately absent —
	// they are budget-bounded compile-time work, not serving work.
	"BenchmarkEngineSemanticCompile/sat/hit",
	"BenchmarkEngineSemanticCompile/unsat/hit",
	"BenchmarkStoreSemanticShortCircuit",
	// Segment-tier restart: Open maps the newest segment instead of
	// replaying the log, so startup is a serving property now. The
	// replay and legacy-snapshot modes stay ungated (I/O-bound).
	"BenchmarkStoreRecover/segment-open/docs=100000",
}

// loadReport reads one BENCH_N.json file.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// hotPathMatch reports whether a benchmark name is gated, by prefix so
// one entry covers a family's size variants.
func hotPathMatch(allow []string, name string) bool {
	for _, prefix := range allow {
		if strings.HasPrefix(name, strings.TrimSpace(prefix)) {
			return true
		}
	}
	return false
}

// compareFiles renders the per-benchmark deltas between two report
// files and reports whether any allowlisted benchmark regressed past
// the threshold (in percent) on ns/op or allocs/op.
func compareFiles(w io.Writer, oldPath, newPath string, allow []string, threshold float64) (failed bool, err error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	oldByName := make(map[string]Entry, len(oldRep.Entries))
	for _, e := range oldRep.Entries {
		oldByName[e.Name] = e
	}
	newNames := make(map[string]bool, len(newRep.Entries))
	var added []string
	for _, e := range newRep.Entries {
		newNames[e.Name] = true
		if _, ok := oldByName[e.Name]; !ok {
			added = append(added, e.Name)
		}
	}
	var removed []string
	for _, e := range oldRep.Entries {
		if !newNames[e.Name] {
			removed = append(removed, e.Name)
		}
	}
	// Every gate prefix must match something in the new snapshot: a
	// renamed or deleted hot-path benchmark (or a typo in the
	// allowlist) would otherwise silently un-gate itself.
	var unmatched []string
	for _, prefix := range allow {
		hit := false
		for name := range newNames {
			if strings.HasPrefix(name, strings.TrimSpace(prefix)) {
				hit = true
				break
			}
		}
		if !hit {
			unmatched = append(unmatched, strings.TrimSpace(prefix))
		}
	}

	fmt.Fprintf(w, "benchjson compare: %s → %s (gate: >%.0f%% on %d hot-path prefixes)\n\n", oldPath, newPath, threshold, len(allow))
	for _, e := range newRep.Entries {
		old, ok := oldByName[e.Name]
		if !ok {
			continue
		}
		gated := hotPathMatch(allow, e.Name)
		nsDelta := pctDelta(old.NsPerOp, e.NsPerOp)
		line := fmt.Sprintf("%-70s ns/op %12.1f → %12.1f  %s", e.Name, old.NsPerOp, e.NsPerOp, fmtDelta(nsDelta))
		var allocDelta float64
		hasAllocs := old.AllocsPerOp != nil && e.AllocsPerOp != nil
		if hasAllocs {
			allocDelta = pctDelta(float64(*old.AllocsPerOp), float64(*e.AllocsPerOp))
			line += fmt.Sprintf("  allocs/op %6d → %6d  %s", *old.AllocsPerOp, *e.AllocsPerOp, fmtDelta(allocDelta))
		}
		mark := ""
		if gated {
			mark = "  [hot]"
			if nsDelta > threshold || (hasAllocs && allocDelta > threshold) {
				mark = "  [hot: REGRESSION]"
				failed = true
			}
		}
		fmt.Fprintln(w, line+mark)
	}
	if len(added) > 0 {
		fmt.Fprintf(w, "\nadded (%d):\n", len(added))
		for _, name := range added {
			fmt.Fprintf(w, "  + %s\n", name)
		}
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "\nremoved (%d):\n", len(removed))
		for _, name := range removed {
			fmt.Fprintf(w, "  - %s\n", name)
		}
	}
	if len(unmatched) > 0 {
		failed = true
		fmt.Fprintf(w, "\nhot-path prefixes matching no benchmark in %s (renamed? typo? update the allowlist):\n", newPath)
		for _, prefix := range unmatched {
			fmt.Fprintf(w, "  ? %s\n", prefix)
		}
	}
	if failed {
		fmt.Fprintf(w, "\nFAIL: hot-path regression beyond %.0f%%, or an unmatched gate prefix\n", threshold)
	}
	return failed, nil
}

// pctDelta is the percent change from old to new; a vanished or zero
// old value cannot regress by percentage, so it reports 0 unless the
// new value grew from exactly zero (then it is an unbounded
// regression, capped for display).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1e9 // 0 → nonzero: infinite regression, always past threshold
	}
	return (new - old) / old * 100
}

// fmtDelta renders a percent delta with sign, flagging the capped
// zero-to-nonzero case.
func fmtDelta(d float64) string {
	if d >= 1e9 {
		return "(+∞%)"
	}
	return fmt.Sprintf("(%+.1f%%)", d)
}
