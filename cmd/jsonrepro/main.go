// Command jsonrepro regenerates the per-experiment tables recorded in
// EXPERIMENTS.md: one experiment per Proposition/Theorem of the paper,
// each printed as a parameter sweep whose scaling shape is the result
// being reproduced.
//
// Usage:
//
//	jsonrepro            # run every experiment
//	jsonrepro -exp P1,P6 # run a subset
//	jsonrepro -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"jsonlogic/internal/datalog"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/stream"
	"jsonlogic/internal/translate"
	"jsonlogic/internal/xmlenc"
)

type experiment struct {
	id    string
	title string
	run   func()
}

var experiments = []experiment{
	{"P1", "Prop 1: deterministic JNL evaluation is O(|J|·|phi|)", expP1},
	{"P2", "Prop 2: deterministic JNL satisfiability is NP-complete (3SAT)", expP2},
	{"P3", "Prop 3: non-det/recursive evaluation, linear without EQ(a,b)", expP3},
	{"P4", "Prop 4: undecidability via two-counter machines", expP4},
	{"P5", "Prop 5: PSPACE/EXPTIME satisfiability without EQ(a,b)", expP5},
	{"P6", "Prop 6: JSL evaluation, quadratic only through Unique", expP6},
	{"P7", "Prop 7: JSL satisfiability is PSPACE-hard (QBF)", expP7},
	{"P9", "Prop 9: recursive JSL evaluation, PTIME vs unfold", expP9},
	{"P10", "Prop 10: recursive JSL satisfiability via J-automata", expP10},
	{"T1", "Thm 1: JSON Schema = JSL (Table 1 keywords)", expT1},
	{"T2", "Thm 2: JNL = JSL; translation blowup", expT2},
	{"EX5", "Example 5: ¬Unique defines complete binary trees", expEX5},
	{"STREAM", "§6: streaming validation with width-independent memory", expStream},
	{"XML", "§3.2: JSON-tree key lookup vs XML-encoding scan", expXML},
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "all", "comma-separated experiment ids, or all")
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-7s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !want[e.id] {
			continue
		}
		fmt.Printf("== %s — %s ==\n", e.id, e.title)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "jsonrepro: no experiment matches %q (try -list)\n", *exp)
		os.Exit(1)
	}
}

// timeIt runs f repeatedly until it accumulates enough signal and
// returns the per-run duration.
func timeIt(f func()) time.Duration {
	// Warm up once.
	f()
	runs := 1
	for {
		start := time.Now()
		for i := 0; i < runs; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed > 50*time.Millisecond || runs >= 1<<16 {
			return elapsed / time.Duration(runs)
		}
		runs *= 4
	}
}

func row(cols ...any) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	fmt.Println("  " + strings.Join(parts, "\t"))
}

// --- P1 ---

func detFormula(size int) jnl.Unary {
	parts := make([]jnl.Unary, 0, size/4)
	for i := 0; len(parts) < size/4 || i < 1; i++ {
		k1 := fmt.Sprintf("k%d", i%16)
		k2 := fmt.Sprintf("k%d", (i+7)%16)
		parts = append(parts, jnl.Or{
			Left:  jnl.Exists{Path: jnl.Seq(jnl.Key(k1), jnl.Key(k2))},
			Right: jnl.Not{Inner: jnl.Exists{Path: jnl.Seq(jnl.Key(k2), jnl.At(0))}},
		})
	}
	return jnl.AndAll(parts...)
}

func expP1() {
	row("|J| nodes", "|phi|", "direct", "ns/(|J|·|phi|)", "datalog", "ns/(|J|·|phi|)")
	for _, n := range []int{1000, 8000, 64000} {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		for _, fs := range []int{8, 64} {
			u := detFormula(fs)
			sz := jnl.Size(u)
			direct := timeIt(func() { jnl.NewEvaluator(tree).Eval(u) })
			prog, err := datalog.FromJNL(u)
			if err != nil {
				panic(err)
			}
			dl := timeIt(func() {
				if _, err := datalog.Evaluate(prog, tree); err != nil {
					panic(err)
				}
			})
			den := float64(tree.Len() * sz)
			row(tree.Len(), sz, direct,
				fmt.Sprintf("%.3f", float64(direct.Nanoseconds())/den),
				dl, fmt.Sprintf("%.3f", float64(dl.Nanoseconds())/den))
		}
	}
	fmt.Println("  shape check: the normalised columns should stay roughly flat (linear in |J|·|phi|).")
}

// --- P2 ---

func expP2() {
	row("vars", "clauses", "brute-force", "solver", "agree", "time")
	r := rand.New(rand.NewSource(42))
	for _, vars := range []int{3, 4, 5} {
		clauses := vars + 2
		inst := gen.RandomThreeSAT(r, vars, clauses)
		want := inst.BruteForceSatisfiable()
		u := inst.ToJNL()
		var got bool
		d := timeIt(func() {
			_, sat, err := jauto.SatisfiableJNL(u)
			if err != nil {
				panic(err)
			}
			got = sat
		})
		row(vars, clauses, want, got, want == got, d)
	}
	fmt.Println("  shape check: time grows exponentially with the instance size (NP-hardness).")
}

// --- P3 ---

func expP3() {
	noEQ := jnl.Exists{Path: jnl.Seq(
		jnl.Star{Inner: jnl.Rx(".*")},
		jnl.Test{Inner: jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Num(7)}},
	)}
	withEQ := jnl.EQPaths{
		Left:  jnl.Seq(jnl.Rx(".*"), jnl.Rx(".*")),
		Right: jnl.Seq(jnl.Rx(".*")),
	}
	row("|J| nodes", "noEQ", "ns/|J|", "withEQ", "withEQ ns/|J|")
	for _, n := range []int{1000, 8000, 64000} {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		d1 := timeIt(func() { jnl.NewEvaluator(tree).Eval(noEQ) })
		d2 := timeIt(func() { jnl.NewEvaluator(tree).Eval(withEQ) })
		row(tree.Len(),
			d1, fmt.Sprintf("%.3f", float64(d1.Nanoseconds())/float64(tree.Len())),
			d2, fmt.Sprintf("%.3f", float64(d2.Nanoseconds())/float64(tree.Len())))
	}
	fmt.Println("  shape check: noEQ ns/|J| stays flat; withEQ ns/|J| grows (superlinear).")
}

// --- P4 ---

func expP4() {
	// A machine that pumps counter 0 up n times and drains it.
	state := func(i int) string { return fmt.Sprintf("q%d", i) }
	pump := func(n int) gen.CounterMachine {
		m := gen.CounterMachine{Start: "q0", Final: "qf", Delta: map[string]gen.CounterTransition{}}
		for i := 0; i < n; i++ {
			next := state(i + 1)
			if i == n-1 {
				next = "loop"
			}
			m.Delta[state(i)] = gen.CounterTransition{Op: gen.OpIncr, Counter: 0, Next: next}
		}
		m.Delta["loop"] = gen.CounterTransition{Op: gen.OpIfZero, Counter: 0, Next: "qf", Else: "dec"}
		m.Delta["dec"] = gen.CounterTransition{Op: gen.OpDecr, Counter: 0, Next: "loop"}
		return m
	}
	row("machine", "halted", "run length", "formula holds on encoding", "holds on corrupted")
	for _, n := range []int{2, 3, 5} {
		m := pump(n)
		states, c0, c1, halted := m.Run(1000)
		doc := gen.EncodeRun(states, c0, c1)
		tr := jsontree.FromValue(doc)
		f := m.HaltingFormula()
		ok := jnl.Holds(tr, f, tr.Root())
		c0[1]++
		bad := jsontree.FromValue(gen.EncodeRun(states, c0, c1))
		c0[1]--
		badOK := jnl.Holds(bad, f, bad.Root())
		row(fmt.Sprintf("pump(%d)", n), halted, len(states), ok, badOK)
	}
	diverge := gen.CounterMachine{Start: "q0", Final: "qf", Delta: map[string]gen.CounterTransition{
		"q0": {Op: gen.OpIncr, Counter: 0, Next: "q0"},
	}}
	states, c0, c1, halted := diverge.Run(12)
	dtr := jsontree.FromValue(gen.EncodeRun(states, c0, c1))
	row("diverge", halted, len(states), jnl.Holds(dtr, diverge.HaltingFormula(), dtr.Root()), "-")
	fmt.Println("  reproduces the reduction behind undecidability: halting <=> the formula is satisfiable,")
	fmt.Println("  witnessed by run encodings; corrupted and diverging runs are rejected.")
}

// --- P5 ---

func expP5() {
	row("family", "param", "satisfiable", "time")
	for _, k := range []int{2, 4, 6} {
		expr := strings.Repeat("(a|b)", k)
		u := jnl.And{
			Left:  jnl.Exists{Path: jnl.Rx(".*")},
			Right: jnl.Not{Inner: jnl.Exists{Path: jnl.Rx(expr)}},
		}
		var sat bool
		d := timeIt(func() {
			_, s, err := jauto.SatisfiableJNL(u)
			if err != nil {
				panic(err)
			}
			sat = s
		})
		row("regex-universality", fmt.Sprintf("k=%d", k), sat, d)
	}
	for _, depth := range []int{2, 4, 8} {
		inner := jnl.Unary(jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Num(1)})
		for i := 0; i < depth; i++ {
			inner = jnl.Exists{Path: jnl.Seq(jnl.Key("a"), jnl.Test{Inner: inner})}
		}
		u := jnl.Exists{Path: jnl.Seq(jnl.Star{Inner: jnl.Rx("a|b")}, jnl.Test{Inner: inner})}
		var sat bool
		d := timeIt(func() {
			_, s, err := jauto.SatisfiableJNL(u)
			if err != nil {
				panic(err)
			}
			sat = s
		})
		row("recursive-reach", fmt.Sprintf("depth=%d", depth), sat, d)
	}
}

// --- P6 ---

func expP6() {
	f := jsl.AndAll(
		jsl.IsObj{},
		jsl.BoxRe(relang.MustCompile("k.*"), jsl.OrAll(jsl.IsObj{}, jsl.IsArr{}, jsl.IsStr{}, jsl.IsInt{})),
	)
	row("|J| nodes", "no-Unique", "ns/|J|")
	for _, n := range []int{1000, 8000, 64000} {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		d := timeIt(func() {
			if _, err := jsl.NewEvaluator(tree).Eval(f); err != nil {
				panic(err)
			}
		})
		row(tree.Len(), d, fmt.Sprintf("%.3f", float64(d.Nanoseconds())/float64(tree.Len())))
	}
	u := jsl.And{Left: jsl.IsArr{}, Right: jsl.Unique{}}
	row("array elems", "Unique naive (quadratic)", "Unique hashed (ablation)")
	for _, n := range []int{256, 1024, 4096} {
		tree := jsontree.FromValue(gen.ArrayDocument(n, n))
		naive := timeIt(func() {
			ev := jsl.NewEvaluatorOptions(tree, jsl.Options{NaiveUnique: true})
			if _, err := ev.Eval(u); err != nil {
				panic(err)
			}
		})
		hashed := timeIt(func() {
			if _, err := jsl.NewEvaluator(tree).Eval(u); err != nil {
				panic(err)
			}
		})
		row(n, naive, hashed)
	}
	fmt.Println("  shape check: no-Unique ns/|J| flat (linear); naive Unique grows ~x16 per x4 elements")
	fmt.Println("  (quadratic, the Prop 6 bound); the hash-bucketed ablation stays near-linear.")
}

// --- P7 ---

func expP7() {
	row("vars", "clauses", "QBF true", "solver", "agree", "time")
	r := rand.New(rand.NewSource(7))
	for _, vars := range []int{2, 3, 4} {
		q := gen.RandomQBF(r, vars, vars)
		want := q.BruteForceTrue()
		f := q.ToJSL()
		var got bool
		d := timeIt(func() {
			_, s, err := jauto.SatisfiableJSLFormula(f)
			if err != nil {
				panic(err)
			}
			got = s
		})
		row(vars, vars, want, got, want == got, d)
	}
}

// --- P9 ---

func evenDepth() *jsl.Recursive {
	any := relang.MustCompile(".*")
	return &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g1", Body: jsl.BoxRe(any, jsl.Ref{Name: "g2"})},
			{Name: "g2", Body: jsl.And{
				Left:  jsl.DiaRe(any, jsl.True{}),
				Right: jsl.BoxRe(any, jsl.Ref{Name: "g1"}),
			}},
		},
		Base: jsl.Ref{Name: "g1"},
	}
}

func doubling() *jsl.Recursive {
	next := relang.MustCompile("next")
	return &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g", Body: jsl.Or{
				Left: jsl.Not{Inner: jsl.DiaRe(relang.MustCompile(".*"), jsl.True{})},
				Right: jsl.And{
					Left:  jsl.DiaRe(next, jsl.Ref{Name: "g"}),
					Right: jsl.BoxRe(next, jsl.Ref{Name: "g"}),
				},
			}},
		},
		Base: jsl.Ref{Name: "g"},
	}
}

func expP9() {
	r := evenDepth()
	row("tree height", "bottom-up (Prop 9)", "ns/height")
	for _, h := range []int{64, 256, 1024} {
		tree := jsontree.FromValue(gen.DeepDocument(h))
		d := timeIt(func() {
			if _, err := jsl.NewEvaluator(tree).EvalRecursive(r); err != nil {
				panic(err)
			}
		})
		row(h, d, fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(h)))
	}
	dd := doubling()
	row("tree height", "unfold_J reference", "unfold |phi|")
	for _, h := range []int{4, 8, 12} {
		tree := jsontree.FromValue(gen.DeepDocument(h))
		var sz int
		d := timeIt(func() {
			f := dd.Unfold(h)
			sz = jslSize(f)
			if _, err := jsl.NewEvaluator(tree).Eval(f); err != nil {
				panic(err)
			}
		})
		row(h, d, sz)
	}
	fmt.Println("  shape check: bottom-up is linear in height; unfold doubles per height step.")
}

func jslSize(f jsl.Formula) int {
	n := 1
	switch t := f.(type) {
	case jsl.Not:
		n += jslSize(t.Inner)
	case jsl.And:
		n += jslSize(t.Left) + jslSize(t.Right)
	case jsl.Or:
		n += jslSize(t.Left) + jslSize(t.Right)
	case jsl.DiamondKey:
		n += jslSize(t.Inner)
	case jsl.BoxKey:
		n += jslSize(t.Inner)
	case jsl.DiamondIdx:
		n += jslSize(t.Inner)
	case jsl.BoxIdx:
		n += jslSize(t.Inner)
	}
	return n
}

// --- P10 ---

func expP10() {
	row("family", "satisfiable", "witness", "time")
	for _, fam := range []struct {
		name string
		expr *jsl.Recursive
	}{
		{"evenDepth (Ex 2)", evenDepth()},
		{"completeBinary (Ex 5, with Unique)", completeBinaryTrees()},
		{"unsat: obj and str", jsl.NonRecursive(jsl.And{Left: jsl.IsObj{}, Right: jsl.IsStr{}})},
	} {
		var w *jsonval.Value
		var sat bool
		d := timeIt(func() {
			var err error
			w, sat, err = jauto.SatisfiableJSL(fam.expr)
			if err != nil {
				panic(err)
			}
		})
		witness := "-"
		if sat {
			witness = w.String()
			if len(witness) > 40 {
				witness = witness[:40] + "…"
			}
		}
		row(fam.name, sat, witness, d)
	}
}

func completeBinaryTrees() *jsl.Recursive {
	return &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g", Body: jsl.Or{
				Left: jsl.Not{Inner: jsl.DiamondIdx{Lo: 0, Hi: 0, Inner: jsl.True{}}},
				Right: jsl.AndAll(
					jsl.MinCh{K: 2}, jsl.MaxCh{K: 2},
					jsl.Not{Inner: jsl.Unique{}},
					jsl.BoxIdx{Lo: 0, Hi: 1, Inner: jsl.Ref{Name: "g"}},
				),
			}},
		},
		Base: jsl.Ref{Name: "g"},
	}
}

// --- T1 ---

const table1Schema = `{
	"type": "object",
	"minProperties": 2,
	"maxProperties": 16,
	"required": ["name", "age"],
	"properties": {
		"name": {"type": "string", "pattern": "[A-Za-z ]+"},
		"age": {"type": "number", "minimum": 0, "maximum": 150},
		"scores": {
			"type": "array",
			"items": [{"type": "number"}, {"type": "number"}],
			"additionalItems": {"type": "number", "multipleOf": 2},
			"uniqueItems": 1
		}
	},
	"patternProperties": {
		"x-.*": {"anyOf": [{"type": "string"}, {"type": "number"}]}
	},
	"additionalProperties": {"not": {"type": "array"}}
}`

func expT1() {
	s := schema.MustParse(table1Schema)
	docs := []string{
		`{"name":"Sue Storm","age":34,"scores":[7,11,2,4,8],"x-note":"ext","extra":{"n":1}}`,
		`{"name":"Sue Storm","age":200}`,
		`{"name":"Sue"}`,
		`{"name":"Sue","age":3,"scores":[7,11,3]}`,
		`{"name":"Sue","age":3,"extra":[1]}`,
	}
	r, err := s.ToJSL()
	if err != nil {
		panic(err)
	}
	row("document", "direct validator", "via JSL (Thm 1)", "agree")
	for _, d := range docs {
		doc := jsonval.MustParse(d)
		direct, err := s.Validate(doc)
		if err != nil {
			panic(err)
		}
		tree := jsontree.FromValue(doc)
		via, err := jsl.NewEvaluator(tree).HoldsRecursive(r)
		if err != nil {
			panic(err)
		}
		name := d
		if len(name) > 48 {
			name = name[:48] + "…"
		}
		row(name, direct, via, direct == via)
	}
	doc := jsonval.MustParse(docs[0])
	tree := jsontree.FromValue(doc)
	dDirect := timeIt(func() {
		if _, err := s.Validate(doc); err != nil {
			panic(err)
		}
	})
	dVia := timeIt(func() {
		if _, err := jsl.NewEvaluator(tree).HoldsRecursive(r); err != nil {
			panic(err)
		}
	})
	row("timing", dDirect, dVia, "-")
}

// --- T2 ---

func expT2() {
	row("direction", "k", "in size", "out size", "ratio")
	for _, k := range []int{2, 4, 6, 8} {
		path := jnl.Binary(jnl.Alt{Left: jnl.Key("a0"), Right: jnl.Key("b0")})
		for i := 1; i < k; i++ {
			path = jnl.Concat{Left: path, Right: jnl.Alt{Left: jnl.Key(fmt.Sprintf("a%d", i)), Right: jnl.Key(fmt.Sprintf("b%d", i))}}
		}
		u := jnl.Exists{Path: path}
		f, err := translate.JNLToJSL(u)
		if err != nil {
			panic(err)
		}
		in, out := jnl.Size(u), jslSize(f)
		row("JNL->JSL (Alt chain)", k, in, out, fmt.Sprintf("%.2f", float64(out)/float64(in)))
	}
	for _, k := range []int{8, 32, 128} {
		f := jsl.Formula(jsl.True{})
		for i := 0; i < k; i++ {
			f = jsl.And{Left: jsl.DiaWord(fmt.Sprintf("w%d", i), jsl.True{}), Right: f}
		}
		u, err := translate.JSLToJNL(f)
		if err != nil {
			panic(err)
		}
		in, out := jslSize(f), jnl.Size(u)
		row("JSL->JNL", k, in, out, fmt.Sprintf("%.2f", float64(out)/float64(in)))
	}
	fmt.Println("  shape check: JSL->JNL stays linear (ratio ~2); JNL->JSL doubles per Alt (the Thm 2 remark).")
}

// --- EX5 ---

func expEX5() {
	expr := completeBinaryTrees()
	complete := func(h int) *jsonval.Value {
		v := jsonval.MustObj()
		for i := 0; i < h; i++ {
			v = jsonval.Arr(v, v)
		}
		return v
	}
	lopsided := jsonval.Arr(jsonval.Arr(jsonval.MustObj(), jsonval.MustObj()), jsonval.MustObj())
	unequal := jsonval.Arr(jsonval.MustObj(), jsonval.Str("x"))
	row("document", "accepted")
	for _, c := range []struct {
		name string
		doc  *jsonval.Value
	}{
		{"complete height 0", complete(0)},
		{"complete height 2", complete(2)},
		{"complete height 4", complete(4)},
		{"lopsided", lopsided},
		{"two unequal children", unequal},
	} {
		tree := jsontree.FromValue(c.doc)
		ok, err := jsl.NewEvaluator(tree).HoldsRecursive(expr)
		if err != nil {
			panic(err)
		}
		row(c.name, ok)
	}
	fmt.Println("  reproduces the beyond-MSO example: only complete binary trees are accepted.")
}

// --- STREAM ---

func expStream() {
	f := jsl.BoxRe(relang.MustCompile(".*"), jsl.IsInt{})
	v, err := stream.NewValidatorFormula(f)
	if err != nil {
		panic(err)
	}
	row("document shape", "bytes", "valid", "max open frames", "time")
	for _, width := range []int{100, 10000, 1000000} {
		var sb strings.Builder
		sb.WriteByte('{')
		for i := 0; i < width; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "\"k%d\":%d", i, i)
		}
		sb.WriteByte('}')
		doc := sb.String()
		var ok bool
		var stats stream.Stats
		d := timeIt(func() {
			ok, stats, err = v.ValidateStats(strings.NewReader(doc))
			if err != nil {
				panic(err)
			}
		})
		row(fmt.Sprintf("width %d", width), len(doc), ok, stats.MaxFrames, d)
	}
	for _, depth := range []int{10, 1000} {
		doc := strings.Repeat(`{"n":`, depth) + "0" + strings.Repeat("}", depth)
		vv, err := stream.NewValidatorFormula(jsl.True{})
		if err != nil {
			panic(err)
		}
		ok, stats, err := vv.ValidateStats(strings.NewReader(doc))
		if err != nil {
			panic(err)
		}
		row(fmt.Sprintf("depth %d", depth), len(doc), ok, stats.MaxFrames, "-")
	}
	fmt.Println("  reproduces the §6 conjecture for deterministic JSL without tree equality:")
	fmt.Println("  memory (open frames) is constant in width and linear only in nesting depth.")
}

// --- XML ---

func expXML() {
	row("object width", "jsontree ChildByKey", "xmlenc child scan", "scan/tree ratio")
	for _, width := range []int{16, 256, 4096} {
		doc := gen.WideDocument(width)
		tree := jsontree.FromValue(doc)
		enc := xmlenc.Encode(doc)
		keys := doc.Keys()
		sort.Strings(keys)
		probe := keys[len(keys)-1] // worst case for the scan
		dTree := timeIt(func() {
			if tree.ChildByKey(tree.Root(), probe) == jsontree.InvalidNode {
				panic("missing key")
			}
		})
		dScan := timeIt(func() {
			if enc.ChildByKeyScan(probe) == nil {
				panic("missing key")
			}
		})
		ratio := float64(dScan.Nanoseconds()) / float64(max64(1, dTree.Nanoseconds()))
		row(width, dTree, dScan, fmt.Sprintf("%.1f", ratio))
	}
	fmt.Println("  reproduces the §3.2 argument: keys as node labels force an O(fanout) scan,")
	fmt.Println("  while the deterministic JSON tree model keeps lookups logarithmic.")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
