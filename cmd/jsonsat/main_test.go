package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSchema drops a schema file into the test's temp dir.
func writeSchema(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// run invokes the CLI in-process and captures stdout/stderr.
func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = realMain(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestEquivMode(t *testing.T) {
	// Same constraint written two ways: member order and a redundant
	// conjunct do not change the validated document set.
	a := writeSchema(t, "a.json", `{"type":"number","minimum":3}`)
	b := writeSchema(t, "b.json", `{"minimum":3,"type":"number"}`)
	code, out, errOut := run(t, "-schema", a, "-equiv", b)
	if code != 0 || !strings.Contains(out, "equivalent") {
		t.Fatalf("equivalent schemas: code=%d out=%q err=%q", code, out, errOut)
	}

	// Strictly weaker on the right: equivalent fails in one direction
	// with a separating document.
	c := writeSchema(t, "c.json", `{"type":"number","minimum":5}`)
	code, out, _ = run(t, "-schema", a, "-equiv", c)
	if code != 1 || !strings.Contains(out, "NOT EQUIVALENT") {
		t.Fatalf("inequivalent schemas: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "first schema only") {
		t.Fatalf("separation direction missing: %q", out)
	}

	// The mirrored pair separates in the other direction.
	code, out, _ = run(t, "-schema", c, "-equiv", a)
	if code != 1 || !strings.Contains(out, "second schema only") {
		t.Fatalf("mirrored inequivalence: code=%d out=%q", code, out)
	}

	// -implies still works and agrees with the one-directional half:
	// minimum 5 implies minimum 3, not vice versa.
	code, out, _ = run(t, "-schema", c, "-implies", a)
	if code != 0 || !strings.Contains(out, "contained") {
		t.Fatalf("containment: code=%d out=%q", code, out)
	}
	code, out, _ = run(t, "-schema", a, "-implies", c)
	if code != 1 || !strings.Contains(out, "NOT CONTAINED") {
		t.Fatalf("non-containment: code=%d out=%q", code, out)
	}
}

func TestEquivStructuralSchemas(t *testing.T) {
	// Object schemas where required + properties interact; the pair
	// differs only in an unsatisfiable-to-violate bound.
	a := writeSchema(t, "a.json", `{
		"type": "object",
		"required": ["name"],
		"properties": {"name": {"type": "string"}}
	}`)
	b := writeSchema(t, "b.json", `{
		"properties": {"name": {"type": "string"}},
		"required": ["name"],
		"type": "object"
	}`)
	code, out, errOut := run(t, "-schema", a, "-equiv", b)
	if code != 0 || !strings.Contains(out, "equivalent") {
		t.Fatalf("structural equivalence: code=%d out=%q err=%q", code, out, errOut)
	}
	c := writeSchema(t, "c.json", `{
		"type": "object",
		"properties": {"name": {"type": "string"}}
	}`)
	code, out, _ = run(t, "-schema", a, "-equiv", c)
	if code != 1 || !strings.Contains(out, "NOT EQUIVALENT") {
		t.Fatalf("dropping required must separate: code=%d out=%q", code, out)
	}
}

func TestCLIErrors(t *testing.T) {
	if code, _, errOut := run(t); code != 2 || !strings.Contains(errOut, "required") {
		t.Fatalf("no-arg run: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run(t, "-h"); code != 0 || !strings.Contains(errOut, "-schema") {
		t.Fatalf("-h must print usage and exit 0: code=%d err=%q", code, errOut)
	}
	if code, _, _ := run(t, "-schema", "/nonexistent.json", "-equiv", "/also-missing.json"); code != 2 {
		t.Fatal("missing files must exit 2")
	}
	if code, _, _ := run(t, "-jnl", "[[["); code != 2 {
		t.Fatal("bad JNL must exit 2")
	}
	a := writeSchema(t, "a.json", `{"type":"number"}`)
	if code, _, errOut := run(t, "-schema", a, "-implies", a, "-equiv", a); code != 2 || !strings.Contains(errOut, "mutually exclusive") {
		t.Fatalf("conflicting flags: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run(t, "-equiv", a); code != 2 || !strings.Contains(errOut, "-schema") {
		t.Fatalf("-equiv without -schema: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run(t, "-jnl", "[/a]", "-equiv", a); code != 2 || !strings.Contains(errOut, "schemas") {
		t.Fatalf("-jnl with -equiv must be rejected: code=%d err=%q", code, errOut)
	}
	// Plain satisfiability still works through the refactored paths.
	if code, out, _ := run(t, "-jnl", "[/a]"); code != 0 || !strings.Contains(out, "SATISFIABLE") {
		t.Fatalf("sat: code=%d out=%q", code, out)
	}
	if code, out, _ := run(t, "-jsl", "(number && string)"); code != 1 || !strings.Contains(out, "UNSATISFIABLE") {
		t.Fatalf("unsat: code=%d out=%q", code, out)
	}
}
