// Command jsonsat decides satisfiability of JNL formulas, JSL
// expressions and JSON Schemas (Propositions 2, 5, 7 and 10 of the
// paper), printing a witness document when one exists.
//
// Usage:
//
//	jsonsat -jnl '[/a <[/1]>] && [/a <[/b]>]'
//	jsonsat -jsl 'def g = number || some("a", g) ; g'
//	jsonsat -schema schema.json
//	jsonsat -schema a.json -implies b.json    # schema containment
//	jsonsat -schema a.json -equiv b.json      # schema equivalence
//
// With -implies, the tool decides whether every document valid under
// the first schema is valid under the second, by testing S₁ ∧ ¬S₂ for
// unsatisfiability — the static-analysis use case §5.2 motivates. With
// -equiv it decides equivalence as mutual implication (S₁ ⊑ S₂ and
// S₂ ⊑ S₁), printing a separating document when the schemas differ.
//
// Exit status: 0 for satisfiable / contained / equivalent, 1 for the
// negative answer, 2 for usage or processing errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and arguments so the CLI
// behaviour is testable in-process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jsonsat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jnlSrc := fs.String("jnl", "", "unary JNL formula")
	jslSrc := fs.String("jsl", "", "recursive JSL expression")
	schemaPath := fs.String("schema", "", "JSON Schema file")
	impliesPath := fs.String("implies", "", "second schema: decide containment schema ⊑ implies")
	equivPath := fs.String("equiv", "", "second schema: decide equivalence (mutual implication)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "jsonsat:", err)
		return 2
	}
	if *impliesPath != "" && *equivPath != "" {
		return fail(fmt.Errorf("-implies and -equiv are mutually exclusive"))
	}
	if (*impliesPath != "" || *equivPath != "") && (*jnlSrc != "" || *jslSrc != "") {
		return fail(fmt.Errorf("-implies/-equiv apply to schemas, not -jnl/-jsl formulas"))
	}
	if (*impliesPath != "" || *equivPath != "") && *schemaPath == "" {
		return fail(fmt.Errorf("-implies/-equiv compare against -schema; give both"))
	}

	var (
		witness *jsonval.Value
		sat     bool
		err     error
	)
	switch {
	case *jnlSrc != "":
		u, perr := jnl.Parse(*jnlSrc)
		if perr != nil {
			return fail(perr)
		}
		witness, sat, err = jauto.SatisfiableJNL(u)
	case *jslSrc != "":
		r, perr := jsl.ParseRecursive(*jslSrc)
		if perr != nil {
			return fail(perr)
		}
		witness, sat, err = jauto.SatisfiableJSL(r)
	case *schemaPath != "" && *equivPath != "":
		r1, r2, lerr := loadSchemaPair(*schemaPath, *equivPath)
		if lerr != nil {
			return fail(lerr)
		}
		// Equivalence is mutual implication; each direction reuses the
		// containment machinery.
		sep, forward, cerr := containmentJSL(r1, r2)
		if cerr != nil {
			return fail(cerr)
		}
		if !forward {
			fmt.Fprintf(stdout, "NOT EQUIVALENT: document valid under the first schema only:\n%s\n", sep.Indent("  "))
			return 1
		}
		sep, backward, cerr := containmentJSL(r2, r1)
		if cerr != nil {
			return fail(cerr)
		}
		if !backward {
			fmt.Fprintf(stdout, "NOT EQUIVALENT: document valid under the second schema only:\n%s\n", sep.Indent("  "))
			return 1
		}
		fmt.Fprintln(stdout, "equivalent: the two schemas validate exactly the same documents")
		return 0
	case *schemaPath != "" && *impliesPath != "":
		r1, r2, lerr := loadSchemaPair(*schemaPath, *impliesPath)
		if lerr != nil {
			return fail(lerr)
		}
		counter, contained, cerr := containmentJSL(r1, r2)
		if cerr != nil {
			return fail(cerr)
		}
		if !contained {
			fmt.Fprintf(stdout, "NOT CONTAINED: counterexample document:\n%s\n", counter.Indent("  "))
			return 1
		}
		fmt.Fprintln(stdout, "contained: every document valid under the first schema is valid under the second")
		return 0
	case *schemaPath != "":
		s, lerr := loadSchema(*schemaPath)
		if lerr != nil {
			return fail(lerr)
		}
		r, terr := s.ToJSL()
		if terr != nil {
			return fail(terr)
		}
		witness, sat, err = jauto.SatisfiableJSL(r)
	default:
		return fail(fmt.Errorf("one of -jnl, -jsl, -schema is required"))
	}
	if err != nil {
		return fail(err)
	}
	if sat {
		fmt.Fprintf(stdout, "SATISFIABLE; witness:\n%s\n", witness.Indent("  "))
		return 0
	}
	fmt.Fprintln(stdout, "UNSATISFIABLE")
	return 1
}

// containmentJSL decides r1 ⊑ r2 by testing r1 ∧ ¬r2 for
// unsatisfiability, merging the definition sections under distinct
// namespaces. When not contained, the witness document is valid under
// r1 but not r2.
func containmentJSL(r1, r2 *jsl.Recursive) (witness *jsonval.Value, contained bool, err error) {
	merged := &jsl.Recursive{Base: jsl.And{Left: r1.Base, Right: jsl.Not{Inner: renameRefs(r2.Base)}}}
	merged.Defs = append(merged.Defs, r1.Defs...)
	for _, d := range r2.Defs {
		merged.Defs = append(merged.Defs, jsl.Definition{Name: "rhs_" + d.Name, Body: renameRefs(d.Body)})
	}
	witness, sat, err := jauto.SatisfiableJSL(merged)
	if err != nil {
		return nil, false, err
	}
	return witness, !sat, nil
}

// renameRefs prefixes every reference with rhs_ so two definition
// namespaces can coexist.
func renameRefs(f jsl.Formula) jsl.Formula {
	switch t := f.(type) {
	case jsl.Ref:
		return jsl.Ref{Name: "rhs_" + t.Name}
	case jsl.Not:
		return jsl.Not{Inner: renameRefs(t.Inner)}
	case jsl.And:
		return jsl.And{Left: renameRefs(t.Left), Right: renameRefs(t.Right)}
	case jsl.Or:
		return jsl.Or{Left: renameRefs(t.Left), Right: renameRefs(t.Right)}
	case jsl.DiamondKey:
		t.Inner = renameRefs(t.Inner)
		return t
	case jsl.BoxKey:
		t.Inner = renameRefs(t.Inner)
		return t
	case jsl.DiamondIdx:
		t.Inner = renameRefs(t.Inner)
		return t
	case jsl.BoxIdx:
		t.Inner = renameRefs(t.Inner)
		return t
	default:
		return f
	}
}

func loadSchema(path string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return schema.Parse(string(data))
}

// loadSchemaPair reads two schemas and translates both to JSL.
func loadSchemaPair(path1, path2 string) (*jsl.Recursive, *jsl.Recursive, error) {
	s1, err := loadSchema(path1)
	if err != nil {
		return nil, nil, err
	}
	s2, err := loadSchema(path2)
	if err != nil {
		return nil, nil, err
	}
	r1, e1 := s1.ToJSL()
	r2, e2 := s2.ToJSL()
	if e1 != nil || e2 != nil {
		return nil, nil, fmt.Errorf("translation failed: %v %v", e1, e2)
	}
	return r1, r2, nil
}
