// Command jsonsat decides satisfiability of JNL formulas, JSL
// expressions and JSON Schemas (Propositions 2, 5, 7 and 10 of the
// paper), printing a witness document when one exists.
//
// Usage:
//
//	jsonsat -jnl '[/a <[/1]>] && [/a <[/b]>]'
//	jsonsat -jsl 'def g = number || some("a", g) ; g'
//	jsonsat -schema schema.json
//	jsonsat -schema a.json -implies b.json    # schema containment
//
// With -implies, the tool decides whether every document valid under
// the first schema is valid under the second, by testing S₁ ∧ ¬S₂ for
// unsatisfiability — the static-analysis use case §5.2 motivates.
package main

import (
	"flag"
	"fmt"
	"os"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

func main() {
	jnlSrc := flag.String("jnl", "", "unary JNL formula")
	jslSrc := flag.String("jsl", "", "recursive JSL expression")
	schemaPath := flag.String("schema", "", "JSON Schema file")
	impliesPath := flag.String("implies", "", "second schema: decide containment schema ⊑ implies")
	flag.Parse()

	var (
		witness *jsonval.Value
		sat     bool
		err     error
	)
	switch {
	case *jnlSrc != "":
		witness, sat, err = jauto.SatisfiableJNL(mustJNL(*jnlSrc))
	case *jslSrc != "":
		r, perr := jsl.ParseRecursive(*jslSrc)
		if perr != nil {
			fatal(perr)
		}
		witness, sat, err = jauto.SatisfiableJSL(r)
	case *schemaPath != "" && *impliesPath != "":
		s1, s2 := mustSchema(*schemaPath), mustSchema(*impliesPath)
		r1, e1 := s1.ToJSL()
		r2, e2 := s2.ToJSL()
		if e1 != nil || e2 != nil {
			fatal(fmt.Errorf("translation failed: %v %v", e1, e2))
		}
		// S₁ ⊑ S₂ iff S₁ ∧ ¬S₂ is unsatisfiable. Merge the definition
		// sections (renaming the second to avoid clashes).
		merged := &jsl.Recursive{Base: jsl.And{Left: r1.Base, Right: jsl.Not{Inner: renameRefs(r2.Base)}}}
		merged.Defs = append(merged.Defs, r1.Defs...)
		for _, d := range r2.Defs {
			merged.Defs = append(merged.Defs, jsl.Definition{Name: "rhs_" + d.Name, Body: renameRefs(d.Body)})
		}
		witness, sat, err = jauto.SatisfiableJSL(merged)
		if err != nil {
			fatal(err)
		}
		if sat {
			fmt.Printf("NOT CONTAINED: counterexample document:\n%s\n", witness.Indent("  "))
			os.Exit(1)
		}
		fmt.Println("contained: every document valid under the first schema is valid under the second")
		return
	case *schemaPath != "":
		s := mustSchema(*schemaPath)
		r, terr := s.ToJSL()
		if terr != nil {
			fatal(terr)
		}
		witness, sat, err = jauto.SatisfiableJSL(r)
	default:
		fatal(fmt.Errorf("one of -jnl, -jsl, -schema is required"))
	}
	if err != nil {
		fatal(err)
	}
	if sat {
		fmt.Printf("SATISFIABLE; witness:\n%s\n", witness.Indent("  "))
	} else {
		fmt.Println("UNSATISFIABLE")
		os.Exit(1)
	}
}

// renameRefs prefixes every reference with rhs_ so two definition
// namespaces can coexist.
func renameRefs(f jsl.Formula) jsl.Formula {
	switch t := f.(type) {
	case jsl.Ref:
		return jsl.Ref{Name: "rhs_" + t.Name}
	case jsl.Not:
		return jsl.Not{Inner: renameRefs(t.Inner)}
	case jsl.And:
		return jsl.And{Left: renameRefs(t.Left), Right: renameRefs(t.Right)}
	case jsl.Or:
		return jsl.Or{Left: renameRefs(t.Left), Right: renameRefs(t.Right)}
	case jsl.DiamondKey:
		t.Inner = renameRefs(t.Inner)
		return t
	case jsl.BoxKey:
		t.Inner = renameRefs(t.Inner)
		return t
	case jsl.DiamondIdx:
		t.Inner = renameRefs(t.Inner)
		return t
	case jsl.BoxIdx:
		t.Inner = renameRefs(t.Inner)
		return t
	default:
		return f
	}
}

func mustJNL(src string) jnl.Unary {
	u, err := jnl.Parse(src)
	if err != nil {
		fatal(err)
	}
	return u
}

func mustSchema(path string) *schema.Schema {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	s, err := schema.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsonsat:", err)
	os.Exit(2)
}
