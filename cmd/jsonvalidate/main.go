// Command jsonvalidate validates JSON documents against a JSON Schema
// (the Table 1 fragment of the paper) or a JSL formula. JSL validation
// runs through the shared engine layer: the formula is compiled once
// into a plan and evaluated per document.
//
// Usage:
//
//	jsonvalidate -schema schema.json doc1.json doc2.json   (use - for stdin) …
//	jsonvalidate -jsl 'object && some("name", string)' doc.json
//	jsonvalidate -schema schema.json -via-jsl doc.json
//	jsonvalidate -jsl 'some("v", number)' -ndjson batch.ndjson
//
// With -via-jsl, the schema is first translated to JSL (Theorem 1) and
// validation runs through the logic — useful for confirming the two
// paths agree. With -ndjson, each named file (or stdin) holds one JSON
// document per line; lines are validated in parallel by the engine's
// worker pool and reported in input order. The exit status is 0 when
// all documents validate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

func main() {
	schemaPath := flag.String("schema", "", "JSON Schema file")
	jslSrc := flag.String("jsl", "", "JSL formula (alternative to -schema)")
	viaJSL := flag.Bool("via-jsl", false, "validate through the Theorem 1 translation")
	ndjson := flag.Bool("ndjson", false, "inputs are newline-delimited JSON; validate lines in parallel")
	flag.Parse()

	if (*schemaPath == "") == (*jslSrc == "") {
		fatal(fmt.Errorf("exactly one of -schema or -jsl is required"))
	}
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no documents to validate"))
	}

	eng := engine.New(engine.Options{})

	// plan is non-nil when validation runs through the engine; validate
	// is the fallback for the direct schema validator.
	var plan *engine.Plan
	var validate func(doc *jsonval.Value) (bool, error)
	switch {
	case *jslSrc != "":
		p, err := eng.Compile(engine.LangJSL, *jslSrc)
		if err != nil {
			fatal(err)
		}
		plan = p
	default:
		data, err := os.ReadFile(*schemaPath)
		if err != nil {
			fatal(err)
		}
		s, err := schema.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		if *viaJSL || *ndjson {
			// The parallel NDJSON path always runs through the logic;
			// Theorem 1 guarantees the translation is equivalent to the
			// direct validator.
			r, err := s.ToJSL()
			if err != nil && *viaJSL {
				fatal(err)
			}
			if err == nil {
				plan, err = engine.FromJSL(*schemaPath, r)
				if err != nil {
					fatal(err)
				}
				break
			}
		}
		validate = s.Validate
	}

	failures := 0
	for _, path := range flag.Args() {
		if *ndjson && plan != nil {
			failures += validateNDJSON(eng, plan, path)
			continue
		}
		failures += validateWhole(eng, plan, validate, path, *ndjson)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// validateWhole validates one file holding one document (or, for the
// direct schema validator with -ndjson, line by line sequentially).
func validateWhole(eng *engine.Engine, plan *engine.Plan, validate func(*jsonval.Value) (bool, error), path string, ndjson bool) int {
	data, err := readInput(path)
	if err != nil {
		fatal(err)
	}
	if ndjson {
		// Direct-validator fallback for untranslatable schemas. Blank
		// (whitespace-only) lines are skipped, matching the engine path.
		failures := 0
		for line, chunk := range bytes.Split(data, []byte("\n")) {
			chunk = bytes.TrimSpace(chunk)
			if len(chunk) == 0 {
				continue
			}
			failures += validateOne(eng, plan, validate, fmt.Sprintf("%s:%d", path, line+1), chunk)
		}
		return failures
	}
	return validateOne(eng, plan, validate, path, data)
}

func validateOne(eng *engine.Engine, plan *engine.Plan, validate func(*jsonval.Value) (bool, error), name string, data []byte) int {
	doc, err := jsonval.ParseBytes(data)
	if err != nil {
		fmt.Printf("%s: parse error: %v\n", name, err)
		return 1
	}
	var ok bool
	if plan != nil {
		ok, err = eng.Validate(plan, jsontree.FromValue(doc))
	} else {
		ok, err = validate(doc)
	}
	if err != nil {
		fatal(err)
	}
	if ok {
		fmt.Printf("%s: valid\n", name)
		return 0
	}
	fmt.Printf("%s: INVALID\n", name)
	return 1
}

// validateNDJSON streams one NDJSON file through the engine's parallel
// batch validator.
func validateNDJSON(eng *engine.Engine, plan *engine.Plan, path string) int {
	in, err := openInput(path)
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	results, err := eng.ValidateReader(plan, in)
	if err != nil {
		fatal(err)
	}
	failures := 0
	for _, res := range results {
		switch {
		case res.Err != nil:
			fmt.Printf("%s:%d: parse error: %v\n", path, res.Line, res.Err)
			failures++
		case res.Valid:
			fmt.Printf("%s:%d: valid\n", path, res.Line)
		default:
			fmt.Printf("%s:%d: INVALID\n", path, res.Line)
			failures++
		}
	}
	return failures
}

func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsonvalidate:", err)
	os.Exit(2)
}
