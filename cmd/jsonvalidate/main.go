// Command jsonvalidate validates JSON documents against a JSON Schema
// (the Table 1 fragment of the paper) or a JSL formula.
//
// Usage:
//
//	jsonvalidate -schema schema.json doc1.json doc2.json   (use - for stdin) …
//	jsonvalidate -jsl 'object && some("name", string)' doc.json
//	jsonvalidate -schema schema.json -via-jsl doc.json
//
// With -via-jsl, the schema is first translated to JSL (Theorem 1) and
// validation runs through the logic — useful for confirming the two
// paths agree. The exit status is 0 when all documents validate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

func main() {
	schemaPath := flag.String("schema", "", "JSON Schema file")
	jslSrc := flag.String("jsl", "", "JSL formula (alternative to -schema)")
	viaJSL := flag.Bool("via-jsl", false, "validate through the Theorem 1 translation")
	flag.Parse()

	if (*schemaPath == "") == (*jslSrc == "") {
		fatal(fmt.Errorf("exactly one of -schema or -jsl is required"))
	}
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no documents to validate"))
	}

	var validate func(doc *jsonval.Value) (bool, error)
	switch {
	case *jslSrc != "":
		r, err := jsl.ParseRecursive(*jslSrc)
		if err != nil {
			fatal(err)
		}
		validate = func(doc *jsonval.Value) (bool, error) {
			return jsl.HoldsRecursive(jsontree.FromValue(doc), r)
		}
	default:
		data, err := os.ReadFile(*schemaPath)
		if err != nil {
			fatal(err)
		}
		s, err := schema.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		if *viaJSL {
			r, err := s.ToJSL()
			if err != nil {
				fatal(err)
			}
			validate = func(doc *jsonval.Value) (bool, error) {
				return jsl.HoldsRecursive(jsontree.FromValue(doc), r)
			}
		} else {
			validate = s.Validate
		}
	}

	failures := 0
	for _, path := range flag.Args() {
		var data []byte
		var err error
		if path == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		if err != nil {
			fatal(err)
		}
		doc, err := jsonval.ParseBytes(data)
		if err != nil {
			fmt.Printf("%s: parse error: %v\n", path, err)
			failures++
			continue
		}
		ok, err := validate(doc)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Printf("%s: valid\n", path)
		} else {
			fmt.Printf("%s: INVALID\n", path)
			failures++
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsonvalidate:", err)
	os.Exit(2)
}
