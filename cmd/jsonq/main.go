// Command jsonq evaluates queries over JSON documents: unary JNL
// formulas (the paper's navigational logic), JSONPath expressions, or
// MongoDB find filters.
//
// Usage:
//
//	jsonq -doc file.json -jnl '[/name/first]'
//	jsonq -doc file.json -jsonpath '$.store.book[*].title'
//	jsonq -doc file.json -mongo '{"age": {"$gt": 30}}'
//
// With -jnl, the selected nodes (tree-domain addresses and values) are
// printed; with -jsonpath, the selected values; with -mongo, whether the
// document matches. Pass "-" as -doc to read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsonpath"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/mongoq"
)

func main() {
	docPath := flag.String("doc", "-", "JSON document file, or - for stdin")
	jnlSrc := flag.String("jnl", "", "unary JNL formula to evaluate")
	pathSrc := flag.String("jsonpath", "", "JSONPath expression to evaluate")
	mongoSrc := flag.String("mongo", "", "MongoDB find filter to evaluate")
	flag.Parse()

	doc, err := readDoc(*docPath)
	if err != nil {
		fatal(err)
	}

	selected := 0
	if *jnlSrc != "" {
		selected++
	}
	if *pathSrc != "" {
		selected++
	}
	if *mongoSrc != "" {
		selected++
	}
	if selected != 1 {
		fatal(fmt.Errorf("exactly one of -jnl, -jsonpath, -mongo is required"))
	}

	switch {
	case *jnlSrc != "":
		u, err := jnl.Parse(*jnlSrc)
		if err != nil {
			fatal(err)
		}
		tr := jsontree.FromValue(doc)
		set := jnl.Eval(tr, u)
		for _, n := range set.Slice() {
			fmt.Printf("%v\t%s\n", tr.Path(n), tr.Value(n))
		}
		fmt.Fprintf(os.Stderr, "%d of %d nodes satisfy the formula\n", set.Len(), tr.Len())
	case *pathSrc != "":
		p, err := jsonpath.Compile(*pathSrc)
		if err != nil {
			fatal(err)
		}
		for _, v := range p.Select(doc) {
			fmt.Println(v)
		}
	case *mongoSrc != "":
		f, err := mongoq.Parse(*mongoSrc)
		if err != nil {
			fatal(err)
		}
		if f.Matches(doc) {
			fmt.Println("match")
		} else {
			fmt.Println("no match")
			os.Exit(1)
		}
	}
}

func readDoc(path string) (*jsonval.Value, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return jsonval.ParseBytes(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsonq:", err)
	os.Exit(2)
}
