// Command jsonq evaluates queries over JSON documents: unary JNL
// formulas (the paper's navigational logic), JSONPath expressions, or
// MongoDB find filters. All queries are compiled once into a plan by
// the shared engine layer and evaluated through its goroutine-safe API.
//
// Usage:
//
//	jsonq -doc file.json -jnl '[/name/first]'
//	jsonq -doc file.json -jsonpath '$.store.book[*].title'
//	jsonq -doc file.json -mongo '{"age": {"$gt": 30}}'
//	jsonq -doc batch.ndjson -ndjson -jsonpath '$.items[*]'
//
// With -jnl, the selected nodes (tree-domain addresses and values) are
// printed; with -jsonpath, the selected values; with -mongo, whether the
// document matches. Pass "-" as -doc to read from standard input.
//
// With -ndjson the document input is newline-delimited JSON: every line
// is one document, parsed and evaluated in parallel by the engine's
// worker pool. Results are printed in input order, one line per
// document. For -jnl and -jsonpath each line reports the number of
// selected nodes and their values; for -mongo, match/no match. The exit
// status is 0 when every line parsed (and, for -mongo, at least one
// document matched).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

func main() {
	docPath := flag.String("doc", "-", "JSON document file, or - for stdin")
	jnlSrc := flag.String("jnl", "", "unary JNL formula to evaluate")
	pathSrc := flag.String("jsonpath", "", "JSONPath expression to evaluate")
	mongoSrc := flag.String("mongo", "", "MongoDB find filter to evaluate")
	ndjson := flag.Bool("ndjson", false, "treat the document input as newline-delimited JSON and evaluate every line in parallel")
	flag.Parse()

	lang, src := engine.LangJNL, ""
	selected := 0
	if *jnlSrc != "" {
		lang, src = engine.LangJNL, *jnlSrc
		selected++
	}
	if *pathSrc != "" {
		lang, src = engine.LangJSONPath, *pathSrc
		selected++
	}
	if *mongoSrc != "" {
		lang, src = engine.LangMongoFind, *mongoSrc
		selected++
	}
	if selected != 1 {
		fatal(fmt.Errorf("exactly one of -jnl, -jsonpath, -mongo is required"))
	}

	eng := engine.New(engine.Options{})
	plan, err := eng.Compile(lang, src)
	if err != nil {
		fatal(err)
	}

	if *ndjson {
		runNDJSON(eng, plan, *docPath)
		return
	}

	doc, err := readDoc(*docPath)
	if err != nil {
		fatal(err)
	}
	tr := jsontree.FromValue(doc)
	switch lang {
	case engine.LangJNL:
		nodes, err := eng.Eval(plan, tr)
		if err != nil {
			fatal(err)
		}
		for _, n := range nodes {
			fmt.Printf("%v\t%s\n", tr.Path(n), tr.Value(n))
		}
		fmt.Fprintf(os.Stderr, "%d of %d nodes satisfy the formula\n", len(nodes), tr.Len())
	case engine.LangJSONPath:
		nodes, err := eng.Eval(plan, tr)
		if err != nil {
			fatal(err)
		}
		for _, n := range nodes {
			fmt.Println(tr.Value(n))
		}
	case engine.LangMongoFind:
		ok, err := eng.Validate(plan, tr)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Println("match")
		} else {
			fmt.Println("no match")
			os.Exit(1)
		}
	}
}

// runNDJSON evaluates the plan over every line of the document input
// through the engine's parallel NDJSON path.
func runNDJSON(eng *engine.Engine, plan *engine.Plan, docPath string) {
	in, err := openDoc(docPath)
	if err != nil {
		fatal(err)
	}
	defer in.Close()

	failures, matches := 0, 0
	var results []engine.DocResult
	if plan.Language() == engine.LangMongoFind {
		results, err = eng.ValidateReader(plan, in)
	} else {
		results, err = eng.EvalReader(plan, in)
	}
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			fmt.Printf("line %d: error: %v\n", res.Line, res.Err)
			failures++
			continue
		}
		switch plan.Language() {
		case engine.LangMongoFind:
			verdict := "no match"
			if res.Valid {
				verdict = "match"
				matches++
			}
			fmt.Printf("line %d: %s\n", res.Line, verdict)
		default:
			vals := make([]string, len(res.Nodes))
			for i, n := range res.Nodes {
				vals[i] = res.Tree.Value(n).String()
			}
			fmt.Printf("line %d: %d selected\t%s\n", res.Line, len(res.Nodes), strings.Join(vals, " "))
		}
	}
	fmt.Fprintf(os.Stderr, "%d documents, %d errors\n", len(results), failures)
	if failures > 0 || (plan.Language() == engine.LangMongoFind && matches == 0 && len(results) > 0) {
		os.Exit(1)
	}
}

func openDoc(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func readDoc(path string) (*jsonval.Value, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return jsonval.ParseBytes(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsonq:", err)
	os.Exit(2)
}
