// Command jsonload drives a running jsonstored with a sustained HTTP
// workload and reports latency percentiles and throughput. It is the
// measurement side of the daemon's /metrics endpoint: jsonload says
// what the client observed, /metrics says what the server did.
//
// Single run (closed loop, 8 workers, 30 seconds):
//
//	jsonload -target http://localhost:8080 -workload mixed -c 8 -duration 30s
//
// Open loop at a fixed arrival rate (latency includes queueing delay
// when the server falls behind — no coordinated omission):
//
//	jsonload -target http://localhost:8080 -workload read-heavy -c 32 -rate 5000
//
// Grid sweep from an experiments manifest (see scripts/loadgrid/):
//
//	jsonload -target http://localhost:8080 -grid scripts/loadgrid/experiments.json -csv results.csv
//
// Workloads are the named profiles (mixed, read-heavy, write-heavy,
// query-heavy, bulk) or a custom mix like "get=70,put=20,query=10".
// The human-readable report goes to stderr; -json and -csv select
// machine-readable outputs ("-" for stdout). Runs are reproducible:
// the same -seed, workload and arrival schedule replay the same
// request sequence.
//
// Every measured request carries a deterministic X-Request-ID
// ("w3-000127" = worker 3, request 127), which jsonstored echoes back
// and stamps into its slow-query traces. The summary names the
// -slowest K request ids, so a tail-latency outlier here can be
// looked up in the daemon's GET /debug/queries ring by id.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsonlogic/internal/load"
)

func main() {
	log.SetFlags(0)
	target := flag.String("target", "http://localhost:8080", "jsonstored base URL")
	workload := flag.String("workload", "mixed", "workload profile or custom op=weight mix")
	concurrency := flag.Int("c", 8, "concurrent workers")
	duration := flag.Duration("duration", 10*time.Second, "measured window per run")
	rate := flag.Float64("rate", 0, "target arrival rate in ops/sec (0: closed loop)")
	preload := flag.Int("preload", 1000, "documents PUT before the measured window")
	seed := flag.Int64("seed", 1, "RNG seed (same seed: same request sequence)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	bulkLines := flag.Int("bulk-lines", 16, "documents per bulk request")
	slowest := flag.Int("slowest", 5, "slowest request ids reported in the summary (negative: none)")
	gridPath := flag.String("grid", "", "experiments manifest: sweep its points instead of one run")
	jsonOut := flag.String("json", "", "write JSON summary to this file (\"-\": stdout)")
	csvOut := flag.String("csv", "", "write CSV summary to this file (\"-\": stdout)")
	quiet := flag.Bool("q", false, "suppress the human-readable report")
	flag.Parse()

	cfg := load.Config{
		Target:      *target,
		Workload:    *workload,
		Concurrency: *concurrency,
		Duration:    *duration,
		Rate:        *rate,
		Preload:     *preload,
		Seed:        *seed,
		Timeout:     *timeout,
		BulkLines:   *bulkLines,
		SlowestK:    *slowest,
	}

	// Ctrl-C ends the run early and still prints what was measured.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	report := io.Writer(os.Stderr)
	if *quiet {
		report = io.Discard
	}

	if *gridPath != "" {
		runGrid(ctx, cfg, *gridPath, *csvOut, *jsonOut, report)
		return
	}

	s, err := load.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("jsonload: %v", err)
	}
	if err := s.WriteText(report); err != nil {
		log.Fatalf("jsonload: %v", err)
	}
	writeOut(*jsonOut, func(w io.Writer) error { return s.WriteJSON(w) })
	writeOut(*csvOut, func(w io.Writer) error { return s.WriteCSV(w, true) })
}

func runGrid(ctx context.Context, cfg load.Config, gridPath, csvOut, jsonOut string, report io.Writer) {
	f, err := os.Open(gridPath)
	if err != nil {
		log.Fatalf("jsonload: %v", err)
	}
	g, err := load.ParseGrid(f)
	f.Close()
	if err != nil {
		log.Fatalf("jsonload: %v", err)
	}
	if csvOut == "" {
		csvOut = "-" // a sweep's whole point is the combined table
	}
	var sums []*load.Summary
	writeOut(csvOut, func(w io.Writer) error {
		sums, err = load.RunGrid(ctx, cfg, g, w, report)
		return err
	})
	writeOut(jsonOut, func(w io.Writer) error {
		for _, s := range sums {
			if err := s.WriteJSON(w); err != nil {
				return err
			}
		}
		return nil
	})
}

// writeOut writes through fn to path ("" skips, "-" is stdout).
func writeOut(path string, fn func(io.Writer) error) {
	if path == "" {
		return
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("jsonload: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("jsonload: %v", err)
			}
			fmt.Fprintf(os.Stderr, "jsonload: wrote %s\n", path)
		}()
		w = f
	}
	if err := fn(w); err != nil {
		log.Fatalf("jsonload: %v", err)
	}
}
