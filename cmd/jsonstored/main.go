// Command jsonstored serves a sharded, path-indexed document store
// (internal/store) over HTTP, with query evaluation through the shared
// plan-caching engine (internal/engine) and optional durability: with
// -data-dir every put and delete is written ahead to a per-shard log
// before it is acknowledged, shards are snapshotted in the background,
// and a restart recovers the collection (snapshot + WAL tail replay,
// torn tails truncated, index rebuilt).
//
// Endpoints (see README.md in this directory for the full API
// reference):
//
//	PUT    /docs/{id}   store the JSON document in the request body
//	GET    /docs/{id}   fetch a document
//	DELETE /docs/{id}   delete a document
//	POST   /bulk        NDJSON bulk ingest (one document per line)
//	POST   /query       {"lang","query","mode":"find"|"select","values":bool}
//	POST   /explain     like /query, but returns the logical and
//	                    physical plan trees, the chosen access path and
//	                    estimated vs actual cardinalities
//	POST   /validate    {"lang","query","id"} or {"lang","query","doc"}
//	GET    /stats       shard sizes, index cardinalities, query counters,
//	                    planner decisions, candidates-per-query and
//	                    fan-out-parallelism histograms, intersection-step
//	                    totals, plan-cache hit rates,
//	                    WAL/snapshot/recovery stats
//
// Documents use the paper's value model: objects, arrays, strings and
// natural numbers. See examples/storequery for a curl walkthrough.
//
// Usage:
//
//	jsonstored [-addr :8080] [-shards 16] [-cache 256] [-index-depth 16]
//	           [-query-workers N] [-data-dir DIR]
//	           [-fsync always|interval|off] [-fsync-interval 100ms]
//	           [-snapshot-every 10000]
//
// Without -data-dir the store is in-memory and dies with the process.
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests, flushes and fsyncs the WAL, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 16, "shard count (rounded up to a power of two; pinned by the manifest of an existing -data-dir)")
	cache := flag.Int("cache", 256, "plan cache capacity")
	indexDepth := flag.Int("index-depth", 16, "maximum indexed path depth")
	queryWorkers := flag.Int("query-workers", 0, "shards probed and evaluated concurrently per query (0: GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty: in-memory only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval or off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 10000, "snapshot a shard once its WAL segment holds this many records (negative: manual snapshots only)")
	flag.Parse()

	policy, err := store.ParseFsyncPolicy(*fsync)
	if err != nil {
		log.Fatalf("jsonstored: %v", err)
	}
	if *snapshotEvery == 0 {
		// 0 is the library's "use the default" zero value; an operator
		// typing it almost certainly meant "never" — make them say so.
		log.Fatalf("jsonstored: -snapshot-every 0 is ambiguous: use a negative value to disable automatic snapshots")
	}
	eng := engine.New(engine.Options{PlanCacheSize: *cache})
	opts := store.Options{
		Shards:        *shards,
		MaxIndexDepth: *indexDepth,
		Engine:        eng,
		QueryWorkers:  *queryWorkers,
		DataDir:       *dataDir,
		Fsync:         policy,
		FsyncInterval: *fsyncInterval,
		SnapshotEvery: *snapshotEvery,
	}
	var st *store.Store
	if *dataDir == "" {
		st = store.New(opts)
		log.Printf("jsonstored: in-memory store (no -data-dir; documents die with the process)")
	} else {
		st, err = store.Open(opts)
		if err != nil {
			log.Fatalf("jsonstored: %v", err)
		}
		rec := st.Stats().Durability.Recovery
		log.Printf("jsonstored: recovered %s: %d docs (%d from snapshots, %d WAL records replayed, %d torn tails truncated), fsync=%s",
			*dataDir, st.Len(), rec.SnapshotDocs, rec.WALRecordsReplayed, rec.TornTails, policy)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(st),
		// Bound slow/stalled peers; no ReadTimeout so large legitimate
		// bulk uploads are not cut off mid-body.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush + fsync the WAL so a clean stop loses nothing even under
	// -fsync off.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("jsonstored: listening on %s (%d shards, plan cache %d)", *addr, st.NumShards(), *cache)

	select {
	case err := <-errc:
		st.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("jsonstored: shutting down")
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shutdownCancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("jsonstored: shutdown: drain timed out after 15s; remaining connections were cut off")
		} else {
			log.Printf("jsonstored: shutdown: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		log.Fatalf("jsonstored: close store: %v", err)
	}
	log.Printf("jsonstored: store flushed; bye")
}

// maxBody bounds one request body (64 MiB; covers bulk uploads).
const maxBody = 64 << 20

// server routes the HTTP API onto one Store and its Engine.
type server struct {
	store *store.Store
	eng   *engine.Engine
}

// newServer returns the daemon's handler; split from main so tests can
// drive it through httptest.
func newServer(st *store.Store) http.Handler {
	s := &server{store: st, eng: st.Engine()}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /docs/{id}", s.putDoc)
	mux.HandleFunc("GET /docs/{id}", s.getDoc)
	mux.HandleFunc("DELETE /docs/{id}", s.deleteDoc)
	mux.HandleFunc("POST /bulk", s.bulk)
	mux.HandleFunc("POST /query", s.query)
	mux.HandleFunc("POST /explain", s.explain)
	mux.HandleFunc("POST /validate", s.validate)
	mux.HandleFunc("GET /stats", s.stats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) putDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Stream the body straight into a tree — the same tokenizer path as
	// /bulk — instead of buffering and re-materializing through jsonval.
	t, err := engine.BuildTree(http.MaxBytesReader(w, r.Body, maxBody), jsontree.NewBuilder())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.store.PutTree(id, t); err != nil {
		// A WAL failure: the write is not durable (a failed append was
		// additionally never applied).
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "nodes": t.Len()})
}

func (s *server) getDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, t.String())
}

func (s *server) deleteDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.store.Delete(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

func (s *server) bulk(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader (not LimitReader) so an oversized upload surfaces
	// as an ingest error instead of a silent truncation reported as
	// success.
	res, err := s.store.BulkNDJSON(http.MaxBytesReader(w, r.Body, maxBody))
	type lineError struct {
		Line  int    `json:"line"`
		Error string `json:"error"`
	}
	errs := make([]lineError, len(res.Errors))
	for i, e := range res.Errors {
		errs[i] = lineError{Line: e.Line, Error: e.Err.Error()}
	}
	body := map[string]any{
		"inserted": len(res.IDs),
		"ids":      res.IDs,
		"errors":   errs,
	}
	if err != nil {
		// Lines before the failure are already stored; report them so
		// the client can reconcile instead of blindly re-uploading.
		// A WAL/disk failure is the server's fault, 500 — matching the
		// put/delete handlers; every other abort (oversized body or
		// line, client disconnect mid-upload) is the stream's, 400.
		status := http.StatusBadRequest
		if errors.Is(err, store.ErrWAL) {
			status = http.StatusInternalServerError
		}
		body["error"] = fmt.Sprintf("bulk ingest aborted: %v", err)
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// queryRequest is the body of POST /query and POST /validate.
type queryRequest struct {
	// Lang is the front end: "jnl", "jsl", "jsonpath" or "mongo".
	Lang string `json:"lang"`
	// Query is the source text in that language.
	Query string `json:"query"`
	// Mode selects document matching ("find", default) or node
	// selection ("select") for /query.
	Mode string `json:"mode"`
	// Values asks "select" results to include the rendered JSON of
	// each selected node.
	Values bool `json:"values"`
	// ID and Doc select the validation subject for /validate: a stored
	// document or an inline one.
	ID  string `json:"id"`
	Doc string `json:"doc"`
}

func (s *server) compile(w http.ResponseWriter, r *http.Request) (*engine.Plan, *queryRequest, bool) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	lang, err := engine.ParseLanguage(req.Lang)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, false
	}
	p, err := s.eng.Compile(lang, req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "compile: %v", err)
		return nil, nil, false
	}
	return p, &req, true
}

func (s *server) query(w http.ResponseWriter, r *http.Request) {
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	switch req.Mode {
	case "", "find":
		ids, indexed, err := s.store.Find(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(ids),
			"ids":     ids,
			"indexed": indexed,
		})
	case "select":
		sels, indexed, err := s.store.Select(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		type docSelection struct {
			ID     string   `json:"id"`
			Nodes  []int    `json:"nodes"`
			Values []string `json:"values,omitempty"`
		}
		out := make([]docSelection, len(sels))
		for i, sel := range sels {
			ds := docSelection{ID: sel.ID, Nodes: make([]int, len(sel.Nodes))}
			for j, n := range sel.Nodes {
				ds.Nodes[j] = int(n)
			}
			if req.Values {
				// Render from the selection's snapshot tree: the node IDs
				// are only meaningful there, and the stored document may
				// have been replaced concurrently.
				ds.Values = make([]string, len(sel.Nodes))
				for j, n := range sel.Nodes {
					ds.Values[j] = sel.Tree.Value(n).String()
				}
			}
			out[i] = ds
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(out),
			"results": out,
			"indexed": indexed,
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q", req.Mode)
	}
}

// explain runs the query like /query but reports how instead of what:
// the lowered logical tree, the physical operator program, the
// planner's access decision with per-term statistics, and estimated
// versus actual cardinalities.
func (s *server) explain(w http.ResponseWriter, r *http.Request) {
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	switch req.Mode {
	case "", "find", "select":
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q", req.Mode)
		return
	}
	ex, err := s.store.Explain(p, req.Mode)
	if err != nil {
		// The mode was validated above, so any error here is an
		// evaluation failure — the server's fault, like /query.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *server) validate(w http.ResponseWriter, r *http.Request) {
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	var t *jsontree.Tree
	switch {
	case req.ID != "" && req.Doc != "":
		writeError(w, http.StatusBadRequest, "give id or doc, not both")
		return
	case req.ID != "":
		var found bool
		t, found = s.store.Get(req.ID)
		if !found {
			writeError(w, http.StatusNotFound, "no document %q", req.ID)
			return
		}
	case req.Doc != "":
		var err error
		t, err = jsontree.Parse(req.Doc)
		if err != nil {
			writeError(w, http.StatusBadRequest, "doc: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "give id or doc")
		return
	}
	valid, err := s.eng.Validate(p, t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"valid": valid})
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	cs := s.eng.CacheStats()
	var hitRate float64
	if cs.Hits+cs.Misses > 0 {
		hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"store": s.store.Stats(),
		"plan_cache": map[string]any{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"evictions": cs.Evictions,
			"entries":   cs.Entries,
			"capacity":  cs.Capacity,
			"hit_rate":  hitRate,
		},
	})
}
