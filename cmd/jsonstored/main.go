// Command jsonstored serves a sharded, path-indexed document store
// (internal/store) over HTTP, with query evaluation through the shared
// plan-caching engine (internal/engine) and optional durability: with
// -data-dir every put and delete is written ahead to a per-shard log
// before it is acknowledged, shards are snapshotted in the background,
// and a restart recovers the collection (snapshot + WAL tail replay,
// torn tails truncated, index rebuilt).
//
// The HTTP surface itself lives in internal/httpapi so tests and the
// load generator (cmd/jsonload) can assemble an in-process daemon;
// this command owns flags, the listener and the shutdown protocol.
//
// Endpoints (see README.md in this directory for the full API
// reference):
//
//	PUT    /docs/{id}   store the JSON document in the request body
//	GET    /docs/{id}   fetch a document
//	DELETE /docs/{id}   delete a document
//	POST   /bulk        NDJSON bulk ingest (one document per line)
//	POST   /query       {"lang","query","mode":"find"|"select","values":bool}
//	POST   /explain     like /query, but returns the logical and
//	                    physical plan trees, the chosen access path and
//	                    estimated vs actual cardinalities
//	POST   /validate    {"lang","query","id"} or {"lang","query","doc"}
//	GET    /stats       shard sizes, index cardinalities, query counters,
//	                    planner decisions, candidates-per-query and
//	                    fan-out-parallelism histograms, intersection-step
//	                    totals, plan-cache hit rates,
//	                    WAL/snapshot/recovery stats
//	GET    /metrics     the same counters plus per-endpoint request
//	                    latency histograms, in Prometheus text
//	                    exposition format
//
// Documents use the paper's value model: objects, arrays, strings and
// natural numbers. See examples/storequery for a curl walkthrough.
//
// Usage:
//
//	jsonstored [-addr :8080] [-shards 16] [-cache 256] [-index-depth 16]
//	           [-query-workers N] [-data-dir DIR]
//	           [-fsync always|interval|off] [-fsync-interval 100ms]
//	           [-snapshot-every 10000]
//
// Without -data-dir the store is in-memory and dies with the process.
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests, flushes and fsyncs the WAL, and exits; a second
// SIGINT during the drain kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/httpapi"
	"jsonlogic/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 16, "shard count (rounded up to a power of two; pinned by the manifest of an existing -data-dir)")
	cache := flag.Int("cache", 256, "plan cache capacity")
	indexDepth := flag.Int("index-depth", 16, "maximum indexed path depth")
	queryWorkers := flag.Int("query-workers", 0, "shards probed and evaluated concurrently per query (0: GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty: in-memory only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval or off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 10000, "snapshot a shard once its WAL segment holds this many records (negative: manual snapshots only)")
	flag.Parse()

	policy, err := store.ParseFsyncPolicy(*fsync)
	if err != nil {
		log.Fatalf("jsonstored: %v", err)
	}
	if *snapshotEvery == 0 {
		// 0 is the library's "use the default" zero value; an operator
		// typing it almost certainly meant "never" — make them say so.
		log.Fatalf("jsonstored: -snapshot-every 0 is ambiguous: use a negative value to disable automatic snapshots")
	}
	eng := engine.New(engine.Options{PlanCacheSize: *cache})
	opts := store.Options{
		Shards:        *shards,
		MaxIndexDepth: *indexDepth,
		Engine:        eng,
		QueryWorkers:  *queryWorkers,
		DataDir:       *dataDir,
		Fsync:         policy,
		FsyncInterval: *fsyncInterval,
		SnapshotEvery: *snapshotEvery,
	}
	var st *store.Store
	if *dataDir == "" {
		st = store.New(opts)
		log.Printf("jsonstored: in-memory store (no -data-dir; documents die with the process)")
	} else {
		st, err = store.Open(opts)
		if err != nil {
			log.Fatalf("jsonstored: %v", err)
		}
		rec := st.Stats().Durability.Recovery
		log.Printf("jsonstored: recovered %s: %d docs (%d from snapshots, %d WAL records replayed, %d torn tails truncated), fsync=%s",
			*dataDir, st.Len(), rec.SnapshotDocs, rec.WALRecordsReplayed, rec.TornTails, policy)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: httpapi.NewHandler(st, httpapi.Options{}),
		// Bound slow/stalled peers; no ReadTimeout so large legitimate
		// bulk uploads are not cut off mid-body.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush + fsync the WAL so a clean stop loses nothing even under
	// -fsync off.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("jsonstored: listening on %s (%d shards, plan cache %d)", *addr, st.NumShards(), *cache)

	select {
	case err := <-errc:
		st.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Unregister the signal handler before draining, not at exit: with
	// NotifyContext still armed a second Ctrl-C was swallowed (the
	// already-cancelled context absorbs it), leaving no way to kill a
	// drain stuck behind slow requests. After cancel() the default
	// disposition is restored, so a repeat SIGINT terminates
	// immediately.
	cancel()
	log.Printf("jsonstored: shutting down (^C again to kill)")
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shutdownCancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("jsonstored: shutdown: drain timed out after 15s; remaining connections were cut off")
		} else {
			log.Printf("jsonstored: shutdown: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		log.Fatalf("jsonstored: close store: %v", err)
	}
	log.Printf("jsonstored: store flushed; bye")
}
