// Command jsonstored serves a sharded, path-indexed document store
// (internal/store) over HTTP, with query evaluation through the shared
// plan-caching engine (internal/engine) and optional durability: with
// -data-dir every put and delete is written ahead to a per-shard log
// before it is acknowledged, shards are snapshotted in the background,
// and a restart recovers the collection (snapshot + WAL tail replay,
// torn tails truncated, index rebuilt).
//
// The HTTP surface itself lives in internal/httpapi so tests and the
// load generator (cmd/jsonload) can assemble an in-process daemon;
// this command owns flags, the listener, logging and the shutdown
// protocol.
//
// Endpoints (see README.md in this directory for the full API
// reference):
//
//	PUT    /docs/{id}   store the JSON document in the request body
//	GET    /docs/{id}   fetch a document
//	DELETE /docs/{id}   delete a document
//	POST   /bulk        NDJSON bulk ingest (one document per line)
//	POST   /query       {"lang","query","mode":"find"|"select","values":bool}
//	POST   /explain     like /query, but returns the logical and
//	                    physical plan trees, the chosen access path,
//	                    estimated vs actual cardinalities and the
//	                    recorded per-stage trace
//	POST   /validate    {"lang","query","id"} or {"lang","query","doc"}
//	GET    /stats       shard sizes, index cardinalities, query counters,
//	                    planner decisions, candidates-per-query and
//	                    fan-out-parallelism histograms, intersection-step
//	                    totals, plan-cache hit rates,
//	                    WAL/snapshot/recovery stats
//	GET    /metrics     the same counters plus per-endpoint request
//	                    latency histograms, slow-query/tracing counters
//	                    and Go runtime families, in Prometheus text
//	                    exposition format
//	GET    /debug/queries  the slow-query ring: recently kept traces
//	                    (slow or sampled), newest first, with the query
//	                    source and full span tree
//
// Documents use the paper's value model: objects, arrays, strings and
// natural numbers. See examples/storequery for a curl walkthrough.
//
// Usage:
//
//	jsonstored [-addr :8080] [-shards 16] [-cache 256] [-index-depth 16]
//	           [-query-workers N] [-data-dir DIR]
//	           [-fsync always|interval|off] [-fsync-interval 100ms]
//	           [-snapshot-every 10000]
//	           [-segment-block-size 128] [-segment-no-mmap]
//	           [-schema FILE] [-semantic-budget 50000]
//	           [-slow-query 200ms] [-trace-sample N] [-trace-ring 64]
//	           [-query-timeout 0] [-max-concurrent-queries 0]
//	           [-max-queued-queries 0] [-max-bulk-bytes 0]
//	           [-degraded-retry 500ms]
//	           [-debug-addr :6060] [-log-format text|json]
//
// Without -data-dir the store is in-memory and dies with the process.
// The semantic pass (on by default, budget 50000 automaton steps per
// plan-cache miss; -semantic-budget 0 disables) proves queries
// unsatisfiable at compile time — they answer empty without touching
// the index — and reuses cached plans for provably-equivalent queries.
// With -schema FILE every write must conform to the JSON Schema
// (nonconforming documents are rejected with 422) and the planner
// additionally prunes index terms the schema proves universal; see
// README.md for a worked /explain example.
// Queries at or over -slow-query are traced retroactively, logged and
// kept in the /debug/queries ring (0 traces every query; negative
// disables); -trace-sample N additionally keeps every Nth query.
// -debug-addr serves net/http/pprof on a separate listener.
//
// -query-timeout bounds each /query and /explain execution server-side
// (a request overrides it with an X-Timeout-Ms header; expiry returns
// 504 with the partial trace preserved). -max-concurrent-queries and
// -max-queued-queries bound in-flight query work: excess requests wait
// in the bounded queue and are shed with 429 + Retry-After once it
// fills. -max-bulk-bytes bounds the bytes of concurrently admitted
// bulk uploads the same way. If a shard's WAL fails (disk full, I/O
// error) the shard degrades to read-only — writes return 503 while
// reads keep serving — and a background probe retries with backoff
// (starting at -degraded-retry, doubling to 30s) until the shard
// heals. On SIGINT/SIGTERM the daemon stops accepting
// connections, answers new requests 503 (drain mode), drains in-flight
// requests, flushes and fsyncs the WAL, and exits; a second SIGINT
// during the drain kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/httpapi"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/store"
	"jsonlogic/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 16, "shard count (rounded up to a power of two; pinned by the manifest of an existing -data-dir)")
	cache := flag.Int("cache", 256, "plan cache capacity")
	indexDepth := flag.Int("index-depth", 16, "maximum indexed path depth")
	queryWorkers := flag.Int("query-workers", 0, "shards probed and evaluated concurrently per query (0: GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty: in-memory only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval or off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 10000, "snapshot a shard once its WAL segment holds this many records (negative: manual snapshots only)")
	segmentBlockSize := flag.Int("segment-block-size", 0, "ordinals per compressed posting block in segment files (0: default 128)")
	segmentNoMmap := flag.Bool("segment-no-mmap", false, "read segment files into the heap instead of mmap'ing them")
	slowQuery := flag.Duration("slow-query", 200*time.Millisecond, "slow-query threshold: queries at or over it are traced, logged and kept in /debug/queries (0: every query; negative: disabled)")
	traceSample := flag.Int("trace-sample", 0, "additionally trace 1 in N queries (0: no sampling)")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "kept traces retained for /debug/queries")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty: disabled)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	schemaFile := flag.String("schema", "", "JSON Schema file every stored document must conform to; also drives semantic term pruning (empty: no schema)")
	semanticBudget := flag.Int("semantic-budget", 50000, "automaton-step budget for the semantic pass (satisfiability, containment dedup, schema pruning) per plan-cache miss (0: disabled)")
	queryTimeout := flag.Duration("query-timeout", 0, "server-side bound on each /query and /explain execution, overridable per request with X-Timeout-Ms (0: none)")
	maxConcurrentQueries := flag.Int("max-concurrent-queries", 0, "in-flight /query and /explain bound; excess requests queue briefly then shed with 429 (0: unbounded)")
	maxQueuedQueries := flag.Int("max-queued-queries", 0, "admission-queue depth behind -max-concurrent-queries (0: twice the concurrency bound)")
	maxBulkBytes := flag.Int64("max-bulk-bytes", 0, "total bytes of concurrently admitted /bulk uploads; excess uploads shed with 429 (0: unbounded)")
	degradedRetry := flag.Duration("degraded-retry", 0, "initial backoff between heal attempts on a degraded shard and retries of a failed snapshot, doubling to 30s (0: default 500ms)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log-format", "format", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	policy, err := store.ParseFsyncPolicy(*fsync)
	if err != nil {
		fatal("bad -fsync", "err", err)
	}
	if *snapshotEvery == 0 {
		// 0 is the library's "use the default" zero value; an operator
		// typing it almost certainly meant "never" — make them say so.
		fatal("-snapshot-every 0 is ambiguous: use a negative value to disable automatic snapshots")
	}
	var schemaInfo *engine.SchemaInfo
	if *schemaFile != "" {
		raw, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal("read -schema", "err", err)
		}
		sch, err := schema.Parse(string(raw))
		if err != nil {
			fatal("parse -schema", "file", *schemaFile, "err", err)
		}
		schemaInfo, err = engine.CompileSchema(sch)
		if err != nil {
			fatal("compile -schema", "file", *schemaFile, "err", err)
		}
	}
	eng := engine.New(engine.Options{
		PlanCacheSize:  *cache,
		SemanticBudget: *semanticBudget,
		Schema:         schemaInfo,
	})
	opts := store.Options{
		Shards:           *shards,
		MaxIndexDepth:    *indexDepth,
		Engine:           eng,
		QueryWorkers:     *queryWorkers,
		DataDir:          *dataDir,
		Fsync:            policy,
		FsyncInterval:    *fsyncInterval,
		SnapshotEvery:    *snapshotEvery,
		SegmentBlockSize: *segmentBlockSize,
		SegmentNoMmap:    *segmentNoMmap,
		Schema:           schemaInfo,
		DegradedRetry:    *degradedRetry,
	}
	var st *store.Store
	if *dataDir == "" {
		st = store.New(opts)
		logger.Info("in-memory store (no -data-dir; documents die with the process)")
	} else {
		st, err = store.Open(opts)
		if err != nil {
			fatal("open store", "err", err)
		}
		rec := st.Stats().Durability.Recovery
		logger.Info("recovered store",
			"dir", *dataDir, "docs", st.Len(),
			"segments_mapped", rec.SegmentsMapped,
			"segment_docs", rec.SegmentDocs,
			"invalid_segments", rec.InvalidSegments,
			"snapshot_docs", rec.SnapshotDocs,
			"wal_records_replayed", rec.WALRecordsReplayed,
			"torn_tails", rec.TornTails,
			"fsync", policy.String())
	}

	tracer := trace.New(trace.Options{
		SampleEvery: *traceSample,
		SlowQuery:   *slowQuery,
		RingSize:    *traceRing,
		Logger:      logger,
	})

	api := httpapi.NewHandler(st, httpapi.Options{
		Tracer:               tracer,
		QueryTimeout:         *queryTimeout,
		MaxConcurrentQueries: *maxConcurrentQueries,
		MaxQueuedQueries:     *maxQueuedQueries,
		MaxBulkBytes:         *maxBulkBytes,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
		// Bound slow/stalled peers; no ReadTimeout so large legitimate
		// bulk uploads are not cut off mid-body.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *debugAddr != "" {
		// pprof on its own listener, never on the serving address: the
		// profiles stay reachable when the API is saturated, and the
		// serving port exposes no profiling surface.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush + fsync the WAL so a clean stop loses nothing even under
	// -fsync off.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "shards", st.NumShards(), "plan_cache", *cache,
		"semantic_budget", *semanticBudget, "schema", *schemaFile,
		"slow_query", slowQuery.String(), "trace_sample", *traceSample)

	select {
	case err := <-errc:
		st.Close()
		fatal("serve", "err", err)
	case <-ctx.Done():
	}
	// Unregister the signal handler before draining, not at exit: with
	// NotifyContext still armed a second Ctrl-C was swallowed (the
	// already-cancelled context absorbs it), leaving no way to kill a
	// drain stuck behind slow requests. After cancel() the default
	// disposition is restored, so a repeat SIGINT terminates
	// immediately.
	cancel()
	// Flip the handler into drain mode before Shutdown: new requests on
	// kept-alive connections get an immediate 503 + Retry-After (load
	// balancers fail over at once) while the in-flight ones below drain
	// normally. The introspection endpoints stay up for observers.
	api.SetDraining(true)
	logger.Info("shutting down (^C again to kill)")
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shutdownCancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown: drain timed out after 15s; remaining connections were cut off")
		} else {
			logger.Warn("shutdown", "err", err)
		}
	}
	if err := st.Close(); err != nil {
		fatal("close store", "err", err)
	}
	logger.Info("store flushed; bye")
}
