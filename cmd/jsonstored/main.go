// Command jsonstored serves a sharded, path-indexed document store
// (internal/store) over HTTP, with query evaluation through the shared
// plan-caching engine (internal/engine).
//
// Endpoints:
//
//	PUT    /docs/{id}   store the JSON document in the request body
//	GET    /docs/{id}   fetch a document
//	DELETE /docs/{id}   delete a document
//	POST   /bulk        NDJSON bulk ingest (one document per line)
//	POST   /query       {"lang","query","mode":"find"|"select","values":bool}
//	POST   /validate    {"lang","query","id"} or {"lang","query","doc"}
//	GET    /stats       shard sizes, index cardinalities, query counters,
//	                    plan-cache hit rates
//
// Documents use the paper's value model: objects, arrays, strings and
// natural numbers. See examples/storequery for a curl walkthrough.
//
// Usage:
//
//	jsonstored [-addr :8080] [-shards 16] [-cache 256] [-index-depth 16]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 16, "shard count (rounded up to a power of two)")
	cache := flag.Int("cache", 256, "plan cache capacity")
	indexDepth := flag.Int("index-depth", 16, "maximum indexed path depth")
	flag.Parse()

	eng := engine.New(engine.Options{PlanCacheSize: *cache})
	st := store.New(store.Options{Shards: *shards, MaxIndexDepth: *indexDepth, Engine: eng})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(st),
		// Bound slow/stalled peers; no ReadTimeout so large legitimate
		// bulk uploads are not cut off mid-body.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("jsonstored: listening on %s (%d shards, plan cache %d)", *addr, st.NumShards(), *cache)
	log.Fatal(srv.ListenAndServe())
}

// maxBody bounds one request body (64 MiB; covers bulk uploads).
const maxBody = 64 << 20

// server routes the HTTP API onto one Store and its Engine.
type server struct {
	store *store.Store
	eng   *engine.Engine
}

// newServer returns the daemon's handler; split from main so tests can
// drive it through httptest.
func newServer(st *store.Store) http.Handler {
	s := &server{store: st, eng: st.Engine()}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /docs/{id}", s.putDoc)
	mux.HandleFunc("GET /docs/{id}", s.getDoc)
	mux.HandleFunc("DELETE /docs/{id}", s.deleteDoc)
	mux.HandleFunc("POST /bulk", s.bulk)
	mux.HandleFunc("POST /query", s.query)
	mux.HandleFunc("POST /validate", s.validate)
	mux.HandleFunc("GET /stats", s.stats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) putDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Stream the body straight into a tree — the same tokenizer path as
	// /bulk — instead of buffering and re-materializing through jsonval.
	t, err := engine.BuildTree(http.MaxBytesReader(w, r.Body, maxBody), jsontree.NewBuilder())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.store.PutTree(id, t)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "nodes": t.Len()})
}

func (s *server) getDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, t.String())
}

func (s *server) deleteDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.store.Delete(id) {
		writeError(w, http.StatusNotFound, "no document %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

func (s *server) bulk(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader (not LimitReader) so an oversized upload surfaces
	// as an ingest error instead of a silent truncation reported as
	// success.
	res, err := s.store.BulkNDJSON(http.MaxBytesReader(w, r.Body, maxBody))
	type lineError struct {
		Line  int    `json:"line"`
		Error string `json:"error"`
	}
	errs := make([]lineError, len(res.Errors))
	for i, e := range res.Errors {
		errs[i] = lineError{Line: e.Line, Error: e.Err.Error()}
	}
	body := map[string]any{
		"inserted": len(res.IDs),
		"ids":      res.IDs,
		"errors":   errs,
	}
	if err != nil {
		// Lines before the failure are already stored; report them so
		// the client can reconcile instead of blindly re-uploading.
		body["error"] = fmt.Sprintf("bulk ingest aborted: %v", err)
		writeJSON(w, http.StatusBadRequest, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// queryRequest is the body of POST /query and POST /validate.
type queryRequest struct {
	// Lang is the front end: "jnl", "jsl", "jsonpath" or "mongo".
	Lang string `json:"lang"`
	// Query is the source text in that language.
	Query string `json:"query"`
	// Mode selects document matching ("find", default) or node
	// selection ("select") for /query.
	Mode string `json:"mode"`
	// Values asks "select" results to include the rendered JSON of
	// each selected node.
	Values bool `json:"values"`
	// ID and Doc select the validation subject for /validate: a stored
	// document or an inline one.
	ID  string `json:"id"`
	Doc string `json:"doc"`
}

func (s *server) compile(w http.ResponseWriter, r *http.Request) (*engine.Plan, *queryRequest, bool) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	lang, err := engine.ParseLanguage(req.Lang)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, false
	}
	p, err := s.eng.Compile(lang, req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "compile: %v", err)
		return nil, nil, false
	}
	return p, &req, true
}

func (s *server) query(w http.ResponseWriter, r *http.Request) {
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	switch req.Mode {
	case "", "find":
		ids, indexed, err := s.store.Find(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(ids),
			"ids":     ids,
			"indexed": indexed,
		})
	case "select":
		sels, indexed, err := s.store.Select(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		type docSelection struct {
			ID     string   `json:"id"`
			Nodes  []int    `json:"nodes"`
			Values []string `json:"values,omitempty"`
		}
		out := make([]docSelection, len(sels))
		for i, sel := range sels {
			ds := docSelection{ID: sel.ID, Nodes: make([]int, len(sel.Nodes))}
			for j, n := range sel.Nodes {
				ds.Nodes[j] = int(n)
			}
			if req.Values {
				// Render from the selection's snapshot tree: the node IDs
				// are only meaningful there, and the stored document may
				// have been replaced concurrently.
				ds.Values = make([]string, len(sel.Nodes))
				for j, n := range sel.Nodes {
					ds.Values[j] = sel.Tree.Value(n).String()
				}
			}
			out[i] = ds
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(out),
			"results": out,
			"indexed": indexed,
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q", req.Mode)
	}
}

func (s *server) validate(w http.ResponseWriter, r *http.Request) {
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	var t *jsontree.Tree
	switch {
	case req.ID != "" && req.Doc != "":
		writeError(w, http.StatusBadRequest, "give id or doc, not both")
		return
	case req.ID != "":
		var found bool
		t, found = s.store.Get(req.ID)
		if !found {
			writeError(w, http.StatusNotFound, "no document %q", req.ID)
			return
		}
	case req.Doc != "":
		var err error
		t, err = jsontree.Parse(req.Doc)
		if err != nil {
			writeError(w, http.StatusBadRequest, "doc: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "give id or doc")
		return
	}
	valid, err := s.eng.Validate(p, t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"valid": valid})
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	cs := s.eng.CacheStats()
	var hitRate float64
	if cs.Hits+cs.Misses > 0 {
		hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"store": s.store.Stats(),
		"plan_cache": map[string]any{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"evictions": cs.Evictions,
			"entries":   cs.Entries,
			"capacity":  cs.Capacity,
			"hit_rate":  hitRate,
		},
	})
}
