// Example storequery: the storage tier end to end — bulk-load a
// collection into the sharded store, then answer the same query three
// ways (mongo find, JSONPath, JNL), comparing the indexed path against
// a full scan. See README.md next to this file for the equivalent
// walkthrough against a running jsonstored daemon with curl.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/store"
)

func main() {
	st := store.New(store.Options{Shards: 8})
	eng := st.Engine()

	// Bulk-ingest an NDJSON inventory; each line becomes one document.
	var ndjson strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&ndjson, `{"sku":"p%04d","price":%d,"stock":{"warehouse":%d},"tags":["t%d"]}`+"\n",
			i, i%50, i%7, i%13)
	}
	res, err := st.BulkNDJSON(strings.NewReader(ndjson.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d documents into %d shards\n", len(res.IDs), st.NumShards())

	// One query, three front ends. Each compiles once into the shared
	// plan cache; the store prunes candidates through the path index.
	queries := []struct {
		lang engine.Language
		src  string
	}{
		{engine.LangMongoFind, `{"price":42,"stock.warehouse":{"$lt":3}}`},
		{engine.LangJSONPath, `$.tags[0]`},
		{engine.LangJNL, `eq(/price, 42)`},
	}
	for _, q := range queries {
		p, err := eng.Compile(q.lang, q.src)
		if err != nil {
			log.Fatal(err)
		}
		ids, indexed, err := st.Find(p)
		if err != nil {
			log.Fatal(err)
		}
		scan, err := st.FindScan(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-45s -> %d docs (scan agrees: %v, indexed: %v)\n",
			p.Language(), q.src, len(ids), len(ids) == len(scan), indexed)
	}

	// Node selection through the index: JSONPath is root-anchored, so
	// its prefix prunes documents before any evaluation.
	p := engine.MustCompile(engine.LangJSONPath, `$.stock.warehouse`)
	sels, _, err := st.Select(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected warehouse nodes in %d documents\n", len(sels))

	stats := st.Stats()
	fmt.Printf("index: %d terms, %d postings; queries: %d indexed / %d scans; evaluated %d candidates vs %d scanned docs\n",
		stats.Terms, stats.Entries,
		stats.Queries.FindIndexed+stats.Queries.SelectIndexed,
		stats.Queries.FindScan+stats.Queries.SelectScan,
		stats.Queries.CandidateDocs, stats.Queries.ScannedDocs)

	// Durability: the same store API backed by a write-ahead log. Every
	// put is logged and fsynced before it returns; closing and
	// reopening the directory recovers the collection and rebuilds the
	// index. (The daemon equivalent is -data-dir; see the kill-and-
	// recover walkthrough in README.md.)
	dir, err := os.MkdirTemp("", "storequery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	durable, err := store.Open(store.Options{Shards: 4, DataDir: dir, Fsync: store.FsyncAlways})
	if err != nil {
		log.Fatal(err)
	}
	if err := durable.Put("hot", `{"sku":"p9999","price":1}`); err != nil {
		log.Fatal(err)
	}
	if err := durable.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := store.Open(store.Options{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	rec := reopened.Stats().Durability.Recovery
	_, ok := reopened.Get("hot")
	fmt.Printf("durable reopen: recovered %d doc(s) (found %q: %v, %d WAL records replayed)\n",
		reopened.Len(), "hot", ok, rec.WALRecordsReplayed)
}
