// The jsonpathnav example exercises the JSONPath frontend (§4.1 of the
// paper): XPath-style navigation compiled into non-deterministic
// recursive JNL and evaluated with the product algorithm of
// Proposition 3.
package main

import (
	"fmt"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsonpath"
	"jsonlogic/internal/jsonval"
)

const store = `{
	"store": {
		"book": [
			{"category":"fiction","title":"Sayings of the Century","price":8},
			{"category":"fiction","title":"Moby Dick","price":9},
			{"category":"reference","title":"Lore of Trees","price":23}
		],
		"bicycle": {"color":"red","price":20}
	},
	"expensive": 10
}`

func main() {
	doc := jsonval.MustParse(store)
	paths := []string{
		`$.store.book[*].title`,
		`$.store.book[0:2].price`,
		`$..price`,
		`$.store.book[?(@.price < 10)].title`,
		`$.store.book[?(@.category == 'fiction')].title`,
		`$..book[-1].title`,
		`$.store.*.color`,
	}
	for _, src := range paths {
		p := jsonpath.MustCompile(src)
		fmt.Printf("%s\n  as JNL: %s\n", src, jnl.StringBinary(p.Binary()))
		for _, v := range p.Select(doc) {
			fmt.Printf("  -> %s\n", v)
		}
		fmt.Println()
	}
}
