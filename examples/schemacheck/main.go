// The schemacheck example demonstrates the static-analysis tasks the
// paper's satisfiability results enable (§5.2): detecting unsatisfiable
// schemas, deciding schema containment, and synthesizing example
// documents from schemas — all through J-automata non-emptiness
// (Proposition 10).
package main

import (
	"fmt"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/schema"
)

func main() {
	// 1. An unsatisfiable schema: a number that is both ≥ 10 and ≤ 5.
	contradictory := schema.MustParse(`{
		"allOf": [
			{"type":"number","minimum":10},
			{"type":"number","maximum":5}
		]
	}`)
	report("contradictory bounds", contradictory)

	// 2. A subtle one: required key whose value must be an array AND an
	// object — the key-uniqueness conflict of Proposition 2.
	conflict := schema.MustParse(`{
		"allOf": [
			{"type":"object","properties":{"a":{"type":"array"}},"required":["a"]},
			{"type":"object","properties":{"a":{"type":"object"}},"required":["a"]}
		]
	}`)
	report("key-kind conflict", conflict)

	// 3. A satisfiable schema: the solver synthesizes an example
	// document, useful for API documentation and testing.
	person := schema.MustParse(`{
		"type": "object",
		"required": ["name", "scores"],
		"properties": {
			"name": {"type":"string","pattern":"[a-z]+"},
			"scores": {"type":"array","uniqueItems":1,
			           "items":[{"type":"number","minimum":1,"multipleOf":3}],
			           "additionalItems":{"type":"number","maximum":10}}
		}
	}`)
	report("person schema", person)

	// 4. Schema containment: numbers in [2,4] are contained in numbers
	// in [0,10], but not vice versa. S₁ ⊑ S₂ iff S₁ ∧ ¬S₂ is UNSAT.
	narrow := schema.MustParse(`{"type":"number","minimum":2,"maximum":4}`)
	wide := schema.MustParse(`{"type":"number","minimum":0,"maximum":10}`)
	fmt.Println("containment checks:")
	checkContainment("  [2,4] ⊑ [0,10]", narrow, wide)
	checkContainment("  [0,10] ⊑ [2,4]", wide, narrow)
}

func report(name string, s *schema.Schema) {
	r, err := s.ToJSL()
	if err != nil {
		panic(err)
	}
	w, sat, err := jauto.SatisfiableJSL(r)
	if err != nil {
		panic(err)
	}
	if sat {
		fmt.Printf("%s: satisfiable; example document: %s\n\n", name, w)
	} else {
		fmt.Printf("%s: UNSATISFIABLE — no document can ever validate\n\n", name)
	}
}

func checkContainment(label string, s1, s2 *schema.Schema) {
	r1, _ := s1.ToJSL()
	r2, _ := s2.ToJSL()
	test := &jsl.Recursive{Base: jsl.And{Left: r1.Base, Right: jsl.Not{Inner: r2.Base}}}
	w, sat, err := jauto.SatisfiableJSL(test)
	if err != nil {
		panic(err)
	}
	if sat {
		fmt.Printf("%s: NO (counterexample %s)\n", label, w)
	} else {
		fmt.Printf("%s: yes\n", label)
	}
}
