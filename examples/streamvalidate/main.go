// The streamvalidate example exercises the §6 streaming perspective: a
// large sensor-telemetry document is validated against a JSON Schema
// while it is read, without ever materialising the tree. The memory
// statistics demonstrate the conjecture the paper closes with — for
// deterministic schemas without uniqueItems, memory depends on nesting
// depth, not on document size.
package main

import (
	"fmt"
	"io"
	"strings"

	"jsonlogic/internal/schema"
	"jsonlogic/internal/stream"
)

// telemetrySchema describes a batch of sensor readings: each reading
// has a sensor id, a value in a sane range, and a status string.
const telemetrySchema = `{
	"type": "object",
	"required": ["device", "readings"],
	"properties": {
		"device": {"type": "string", "pattern": "dev-[0-9]+"},
		"readings": {
			"type": "array",
			"additionalItems": {
				"type": "object",
				"required": ["sensor", "value"],
				"properties": {
					"sensor": {"type": "string"},
					"value": {"type": "number", "maximum": 4096},
					"status": {"type": "string", "pattern": "ok|warn|fail"}
				}
			}
		}
	}
}`

// telemetryStream emits a batch document of the given width directly
// into a writer — the producer side of a streaming pipeline.
func telemetryStream(w io.Writer, readings int, corruptAt int) {
	fmt.Fprintf(w, `{"device":"dev-42","readings":[`)
	for i := 0; i < readings; i++ {
		if i > 0 {
			io.WriteString(w, ",")
		}
		value := i % 4000
		if i == corruptAt {
			value = 100000 // violates the schema's maximum
		}
		fmt.Fprintf(w, `{"sensor":"s%d","value":%d,"status":"ok"}`, i%32, value)
	}
	io.WriteString(w, "]}")
}

func main() {
	s := schema.MustParse(telemetrySchema)
	rec, err := s.ToJSL()
	if err != nil {
		panic(err)
	}
	validator, err := stream.NewValidator(rec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("schema compiled to %d streaming subformulas\n\n", validator.NumSubformulas())

	for _, batch := range []struct {
		name      string
		readings  int
		corruptAt int
	}{
		{"small clean batch", 100, -1},
		{"large clean batch", 200000, -1},
		{"large corrupted batch", 200000, 123456},
	} {
		pr, pw := io.Pipe()
		go func() {
			telemetryStream(pw, batch.readings, batch.corruptAt)
			pw.Close()
		}()
		ok, stats, err := validator.ValidateStats(pr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s readings=%-7d valid=%-5v tokens=%-8d max open frames=%d\n",
			batch.name, batch.readings, ok, stats.Tokens, stats.MaxFrames)
	}

	// The tokenizer also works standalone, e.g. to count structure
	// without validating.
	tok := stream.NewTokenizer(strings.NewReader(`{"a":[1,2,{"b":"x"}]}`))
	counts := map[stream.TokenKind]int{}
	for {
		t, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		counts[t.Kind]++
	}
	fmt.Printf("\ntoken histogram of a small document: %d keys, %d numbers, %d strings\n",
		counts[stream.KeyTok], counts[stream.NumberTok], counts[stream.StringTok])
}
