// The streamvalidate example exercises the §6 streaming perspective: a
// large sensor-telemetry document is validated against a JSON Schema
// while it is read, without ever materialising the tree. The memory
// statistics demonstrate the conjecture the paper closes with — for
// deterministic schemas without uniqueItems, memory depends on nesting
// depth, not on document size.
//
// The second half shows the complementary production shape: when the
// stream is many small documents (NDJSON telemetry) rather than one
// huge one, the engine layer compiles the schema once into a shared
// plan and fans validation out over a worker pool.
package main

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/stream"
)

// telemetrySchema describes a batch of sensor readings: each reading
// has a sensor id, a value in a sane range, and a status string.
const telemetrySchema = `{
	"type": "object",
	"required": ["device", "readings"],
	"properties": {
		"device": {"type": "string", "pattern": "dev-[0-9]+"},
		"readings": {
			"type": "array",
			"additionalItems": {
				"type": "object",
				"required": ["sensor", "value"],
				"properties": {
					"sensor": {"type": "string"},
					"value": {"type": "number", "maximum": 4096},
					"status": {"type": "string", "pattern": "ok|warn|fail"}
				}
			}
		}
	}
}`

// telemetryStream emits a batch document of the given width directly
// into a writer — the producer side of a streaming pipeline.
func telemetryStream(w io.Writer, readings int, corruptAt int) {
	fmt.Fprintf(w, `{"device":"dev-42","readings":[`)
	for i := 0; i < readings; i++ {
		if i > 0 {
			io.WriteString(w, ",")
		}
		value := i % 4000
		if i == corruptAt {
			value = 100000 // violates the schema's maximum
		}
		fmt.Fprintf(w, `{"sensor":"s%d","value":%d,"status":"ok"}`, i%32, value)
	}
	io.WriteString(w, "]}")
}

func main() {
	s := schema.MustParse(telemetrySchema)
	rec, err := s.ToJSL()
	if err != nil {
		panic(err)
	}
	validator, err := stream.NewValidator(rec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("schema compiled to %d streaming subformulas\n\n", validator.NumSubformulas())

	for _, batch := range []struct {
		name      string
		readings  int
		corruptAt int
	}{
		{"small clean batch", 100, -1},
		{"large clean batch", 200000, -1},
		{"large corrupted batch", 200000, 123456},
	} {
		pr, pw := io.Pipe()
		go func() {
			telemetryStream(pw, batch.readings, batch.corruptAt)
			pw.Close()
		}()
		ok, stats, err := validator.ValidateStats(pr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s readings=%-7d valid=%-5v tokens=%-8d max open frames=%d\n",
			batch.name, batch.readings, ok, stats.Tokens, stats.MaxFrames)
	}

	// NDJSON batch validation: each reading arrives as its own
	// document. The reading schema is compiled once into an engine
	// plan; ValidateReader tokenizes and validates the lines in
	// parallel, one pooled tree builder per worker.
	readingSchema := schema.MustParse(`{
		"type": "object",
		"required": ["sensor", "value"],
		"properties": {
			"sensor": {"type": "string"},
			"value": {"type": "number", "maximum": 4096},
			"status": {"type": "string", "pattern": "ok|warn|fail"}
		}
	}`)
	readingJSL, err := readingSchema.ToJSL()
	if err != nil {
		panic(err)
	}
	plan, err := engine.FromJSL("reading-schema", readingJSL)
	if err != nil {
		panic(err)
	}
	eng := engine.New(engine.Options{})

	const readings = 50000
	var sb strings.Builder
	for i := 0; i < readings; i++ {
		value := i % 4000
		if i%9999 == 0 && i > 0 {
			value = 100000 // violates the schema's maximum
		}
		fmt.Fprintf(&sb, `{"sensor":"s%d","value":%d,"status":"ok"}`+"\n", i%32, value)
	}
	start := time.Now()
	results, err := eng.ValidateReader(plan, strings.NewReader(sb.String()))
	if err != nil {
		panic(err)
	}
	invalid := 0
	for _, res := range results {
		if res.Err != nil || !res.Valid {
			invalid++
		}
	}
	fmt.Printf("\nNDJSON batch: %d readings validated in %v on %d workers, %d invalid\n",
		len(results), time.Since(start).Round(time.Millisecond), runtime.GOMAXPROCS(0), invalid)

	// The tokenizer also works standalone, e.g. to count structure
	// without validating.
	tok := stream.NewTokenizer(strings.NewReader(`{"a":[1,2,{"b":"x"}]}`))
	counts := map[stream.TokenKind]int{}
	for {
		t, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		counts[t.Kind]++
	}
	fmt.Printf("\ntoken histogram of a small document: %d keys, %d numbers, %d strings\n",
		counts[stream.KeyTok], counts[stream.NumberTok], counts[stream.StringTok])
}
