// The apivalidation example models the Open API use case of §6 of the
// paper: an API endpoint's responses are described by a recursive JSON
// Schema (with definitions and $ref), incoming payloads are validated,
// and the Theorem 1 translation is used to double-check validation
// through the logic.
package main

import (
	"fmt"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

// userSchema documents the /users endpoint: a user has a name, an age
// of at least 13, an email matching a pattern, and optionally a list of
// follower users — a recursive structure expressed with definitions.
const userSchema = `{
	"definitions": {
		"user": {
			"type": "object",
			"required": ["name", "email"],
			"properties": {
				"name": {"type": "string", "pattern": ".+"},
				"age": {"type": "number", "minimum": 13},
				"email": {"type": "string", "pattern": "[a-z]+@[a-z]+\\.[a-z]+"},
				"followers": {
					"type": "array",
					"uniqueItems": 1,
					"additionalItems": {"$ref": "#/definitions/user"}
				}
			},
			"additionalProperties": {"not": {}}
		}
	},
	"$ref": "#/definitions/user"
}`

func main() {
	s := schema.MustParse(userSchema)
	payloads := []string{
		`{"name":"ada","email":"ada@lovelace.org","age":36}`,
		`{"name":"bob","email":"bob@example.com","followers":[
			{"name":"carol","email":"carol@example.com"},
			{"name":"dan","email":"dan@example.com","age":20}
		]}`,
		`{"name":"kid","email":"kid@example.com","age":9}`,
		`{"name":"eve","email":"not-an-email"}`,
		`{"email":"ghost@example.com"}`,
		`{"name":"mal","email":"mal@example.com","role":"admin"}`,
		`{"name":"dup","email":"dup@example.com","followers":[
			{"name":"x","email":"x@example.com"},
			{"name":"x","email":"x@example.com"}
		]}`,
	}

	r, err := s.ToJSL()
	if err != nil {
		panic(err)
	}
	fmt.Println("endpoint schema as recursive JSL:")
	fmt.Println(r.String())
	fmt.Println()

	for _, src := range payloads {
		doc := jsonval.MustParse(src)
		direct, err := s.Validate(doc)
		if err != nil {
			panic(err)
		}
		viaLogic, err := jsl.HoldsRecursive(jsontree.FromValue(doc), r)
		if err != nil {
			panic(err)
		}
		verdict := "rejected"
		if direct {
			verdict = "accepted"
		}
		agreement := ""
		if direct != viaLogic {
			agreement = "  !! Theorem 1 violated"
		}
		fmt.Printf("%-8s %s%s\n", verdict, src, agreement)
	}
}
