// The quickstart example walks through the paper's running document
// (Figure 1) end to end: parsing, the JSON tree model of §3, navigation
// instructions (§2), JNL queries (§4), JSL formulas and JSON Schema
// validation (§5).
package main

import (
	"fmt"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

const figure1 = `{
	"name": {
		"first": "John",
		"last": "Doe"
	},
	"age": 32,
	"hobbies": ["fishing","yoga"]
}`

func main() {
	// §2: parse the document of Figure 1 into a value.
	doc := jsonval.MustParse(figure1)
	fmt.Println("document:", doc)
	fmt.Println("values nested inside:", doc.Size())

	// §2: JSON navigation instructions J[key] and J[i].
	name, _ := doc.Member("name")
	first, _ := name.Member("first")
	hobbies, _ := doc.Member("hobbies")
	second, _ := hobbies.Elem(1)
	last, _ := hobbies.Elem(-1)
	fmt.Printf("J[name][first] = %s, J[hobbies][1] = %s, J[hobbies][-1] = %s\n", first, second, last)

	// §3: the JSON tree J = (D, Obj, Arr, Str, Int, A, O, val).
	tree := jsontree.FromValue(doc)
	fmt.Print("\nthe tree of §3.1:\n", tree.Dump())
	node := tree.Navigate(tree.Root(), jsontree.Key("name"), jsontree.Key("last"))
	fmt.Printf("node at J[name][last]: address %v, value %s\n", tree.Path(node), tree.Value(node))

	// §4: JNL queries. Example 1's MongoDB condition and a recursive
	// descendant search.
	queries := []string{
		`eq(/name/first, "John")`,
		`[/hobbies /[0:] <eq(eps, "yoga")>]`,
		`[((/~".*")* (/[0:])*)* <eq(eps, "Doe")>]`,
		`eq(/name, {"last":"Doe","first":"John"})`, // subtree equality, order-free
	}
	fmt.Println("\nJNL queries at the root:")
	for _, q := range queries {
		u := jnl.MustParse(q)
		fmt.Printf("  %-55s %v\n", q, jnl.Holds(tree, u, tree.Root()))
	}

	// §5: a JSL formula and the equivalent JSON Schema (Theorem 1).
	formula := jsl.MustParse(
		`object && some("name", object && some("first", string)) && some("age", number && min(18))`)
	ok, _ := jsl.Holds(tree, formula)
	fmt.Println("\nJSL adult-person formula holds:", ok)

	s := schema.MustParse(`{
		"type": "object",
		"required": ["name", "age"],
		"properties": {
			"name": {"type":"object", "required":["first","last"]},
			"age": {"type":"number", "minimum": 18},
			"hobbies": {"type":"array", "additionalItems": {"type":"string"}, "uniqueItems": 1}
		}
	}`)
	valid, _ := s.Validate(doc)
	fmt.Println("JSON Schema validates:", valid)

	// Theorem 1: the same schema as a JSL formula.
	r, _ := s.ToJSL()
	viaJSL, _ := jsl.HoldsRecursive(tree, r)
	fmt.Println("validation through the Theorem 1 translation agrees:", viaJSL == valid)
}
