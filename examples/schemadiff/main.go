// The schemadiff example uses satisfiability (Propositions 7 and 10)
// for the API-evolution task the paper's §6 motivates: when a service
// publishes version 2 of a response schema, is every v1 document still
// accepted (backward compatible), and what exactly breaks when not?
// Containment checking answers both, with a counterexample document as
// the diagnostic.
package main

import (
	"fmt"

	"jsonlogic/internal/containment"
	"jsonlogic/internal/schema"
)

const v1 = `{
	"type": "object",
	"required": ["id", "name"],
	"properties": {
		"id": {"type": "number"},
		"name": {"type": "string"},
		"tags": {"type": "array", "additionalItems": {"type": "string"}}
	}
}`

// v2a only widens v1: tags may now hold numbers as well. (Note that
// "adding an optional field with a type" would NOT be widening — v1
// documents may already use that key with any value — and the checker
// below catches exactly that kind of accidental narrowing.)
const v2a = `{
	"type": "object",
	"required": ["id", "name"],
	"properties": {
		"id": {"type": "number"},
		"name": {"type": "string"},
		"tags": {"type": "array", "additionalItems": {"anyOf": [{"type": "string"}, {"type": "number"}]}}
	}
}`

// v2b silently breaks v1 clients: ids must now be even.
const v2b = `{
	"type": "object",
	"required": ["id", "name"],
	"properties": {
		"id": {"type": "number", "multipleOf": 2},
		"name": {"type": "string"},
		"tags": {"type": "array", "additionalItems": {"type": "string"}}
	}
}`

func check(name string, oldS, newS *schema.Schema) {
	res, err := containment.Schemas(oldS, newS)
	if err != nil {
		panic(err)
	}
	if res.Contained {
		fmt.Printf("%s: backward compatible — every v1 document validates against it\n", name)
		return
	}
	fmt.Printf("%s: NOT backward compatible\n", name)
	fmt.Printf("  counterexample (valid under v1, rejected by %s): %s\n", name, res.Counterexample)
}

func main() {
	oldS := schema.MustParse(v1)
	fmt.Println("containment check: v1 ⊑ v2?")
	check("v2a", oldS, schema.MustParse(v2a))
	check("v2b", oldS, schema.MustParse(v2b))

	// Equivalence: did a refactoring change the schema's meaning?
	refactored := schema.MustParse(`{
		"allOf": [
			{"type": "object", "required": ["id"]},
			{"type": "object", "required": ["name"]},
			{"type": "object", "properties": {
				"id": {"type": "number"},
				"name": {"type": "string"},
				"tags": {"type": "array", "additionalItems": {"type": "string"}}
			}}
		]
	}`)
	res, err := containment.EquivalentSchemas(oldS, refactored)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nequivalence check: v1 ≡ refactored(v1)? %v\n", res.Contained)
	if !res.Contained {
		fmt.Printf("  distinguishing document: %s\n", res.Counterexample)
	}
}
