// The findproject example runs the complete two-argument find function
// of §4.1: MongoDB-style filters (Example 1) combined with the
// projection argument that §6 discusses, over an in-memory collection
// of user profiles.
package main

import (
	"fmt"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/mongoq"
	"jsonlogic/internal/projection"
)

func main() {
	people := mongoq.NewCollection(
		jsonval.MustParse(`{"name":"Sue","age":25,"address":{"city":"Santiago","zip":"832"},"hobbies":["climbing","chess"],"ssn":"111"}`),
		jsonval.MustParse(`{"name":"Bob","age":17,"address":{"city":"Lille","zip":"590"},"hobbies":["fishing"],"ssn":"222"}`),
		jsonval.MustParse(`{"name":"Ann","age":32,"address":{"city":"Santiago","zip":"833"},"hobbies":["yoga","chess"],"ssn":"333"}`),
		jsonval.MustParse(`{"name":"Joe","age":41,"address":{"city":"Oslo","zip":"021"},"ssn":"444"}`),
	)

	// Example 1 of the paper, verbatim: find({name: {$eq: "Sue"}}, {}).
	sue := mongoq.MustParse(`{"name": {"$eq": "Sue"}}`)
	fmt.Println("find({name:{$eq:\"Sue\"}}, {}):")
	for _, d := range projection.Find(people, sue, nil) {
		fmt.Println(" ", d)
	}

	// Adults in Santiago, projecting away the sensitive column.
	adultsInSantiago := mongoq.MustParse(`{
		"$and": [
			{"age": {"$gte": 18}},
			{"address.city": "Santiago"}
		]
	}`)
	public := projection.MustParse(`{"ssn": 0}`)
	fmt.Println("\nadults in Santiago, ssn excluded:")
	for _, d := range projection.Find(people, adultsInSantiago, public) {
		fmt.Println(" ", d)
	}

	// Chess players, keeping only name and first hobby: an include
	// projection with a positional path.
	chess := mongoq.MustParse(`{"hobbies": {"$exists": 1}}`)
	nameAndFirstHobby := projection.MustParse(`{"name": 1, "hobbies.0": 1}`)
	fmt.Println("\npeople with hobbies, projected to name + first hobby:")
	for _, d := range projection.Find(people, chess, nameAndFirstHobby) {
		fmt.Println(" ", d)
	}

	// Every filter compiles into the paper's schema logic; print one to
	// show the correspondence the paper establishes.
	fmt.Println("\nthe Santiago filter as a JSL formula:")
	fmt.Println(" ", jsl.String(adultsInSantiago.Formula()))
}
