// The mongofind example reproduces the workload that motivates §4.1 of
// the paper: filtering a collection of JSON documents with MongoDB's
// find function, including Example 1's query, compiled into the paper's
// schema logic.
package main

import (
	"fmt"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/mongoq"
)

func main() {
	people := mongoq.NewCollection(
		jsonval.MustParse(`{"name":"Sue","age":28,"hobbies":["chess","go"]}`),
		jsonval.MustParse(`{"name":"John","age":32,"address":{"city":"Santiago"}}`),
		jsonval.MustParse(`{"name":"Ana","age":17,"hobbies":["fishing","yoga"]}`),
		jsonval.MustParse(`{"name":"Bob","age":45,"hobbies":[]}`),
		jsonval.MustParse(`{"name":"Eve"}`),
	)

	queries := []string{
		// Example 1 of the paper: db.collection.find({name:{$eq:"Sue"}},{}).
		`{"name": {"$eq": "Sue"}}`,
		`{"age": {"$gte": 18, "$lt": 40}}`,
		`{"hobbies.1": "yoga"}`,
		`{"address.city": {"$exists": 1}}`,
		`{"$or": [{"age": {"$exists": 0}}, {"hobbies": {"$size": 0}}]}`,
		`{"name": {"$nin": ["Sue", "Bob"]}}`,
	}
	for _, q := range queries {
		filter := mongoq.MustParse(q)
		fmt.Printf("find(%s)\n", q)
		fmt.Printf("  as JSL: %s\n", jsl.String(filter.Formula()))
		for _, doc := range people.Find(filter) {
			fmt.Printf("  -> %s\n", doc)
		}
		fmt.Println()
	}
}
