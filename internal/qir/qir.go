// Package qir defines the unified query intermediate representation —
// a logical algebra over JSON trees that all four front ends (JNL, JSL,
// JSONPath and MongoDB find filters) lower into, realizing the paper's
// central observation that their navigational cores coincide. One
// executor (exec.go) evaluates the algebra with composable,
// short-circuiting iterator operators, and one fact extractor
// (facts.go) derives the index conditions the store's cost-based
// planner consumes — so every front end gets index support and new
// optimisations from a single code path, with the original per-language
// evaluators retained only as differential-test oracles.
//
// The algebra has two sorts, mirroring JNL's unary/binary split (§4 of
// the paper): a Node denotes a predicate on tree nodes (a node set), a
// Path denotes a binary navigation relation. Modal operators connect
// them: Exists(π, φ) holds at n when some π-successor of n satisfies φ
// (JNL's [α], JSL's ◇), ForAll(π, φ) when every π-successor does
// (JSL's ◻), and EqPaths(π₁, π₂) when the two paths reach equal
// subtrees (JNL's EQ(α,β)). Recursive JSL definitions become named
// Defs referenced by Ref; JNL's Kleene star becomes Closure.
package qir

import (
	"fmt"
	"strconv"
	"strings"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// Inf is the open upper bound +∞ for Slice paths.
const Inf = int(^uint(0) >> 1)

// Node is a logical predicate on JSON tree nodes. Nodes are immutable
// after construction.
type Node interface {
	isNode()
	writeTo(sb *strings.Builder)
}

// Path is a binary navigation relation between JSON tree nodes. All
// moving steps descend (parent to child); Here and Filter stay put.
type Path interface {
	isPath()
	writePathTo(sb *strings.Builder)
}

// ---- Boolean structure ----

// True is ⊤, satisfied by every node.
type True struct{}

// Not is ¬φ.
type Not struct{ Inner Node }

// And is φ ∧ ψ.
type And struct{ Left, Right Node }

// Or is φ ∨ ψ.
type Or struct{ Left, Right Node }

// ---- Leaf predicates (label/value tests) ----

// KindIs tests the node's kind (object, array, string, number) — the
// domain partition of §3.1. Kind values are qir's own so the package
// stays independent of jsontree's internals at the API surface.
type KindIs struct{ Kind Kind }

// Kind is a node kind, aligned with jsontree.Kind by value.
type Kind uint8

// The four node kinds of the JSON tree model.
const (
	KindObject Kind = iota
	KindArray
	KindString
	KindNumber
)

// String returns the JSON Schema type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindObject:
		return "object"
	case KindArray:
		return "array"
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ValEq tests json(n) = Doc (JNL's EQ(ε, A), JSL's ~(A)).
type ValEq struct{ Doc *jsonval.Value }

// StrMatch tests that n is a string node whose value matches Re
// (JSL's Pattern).
type StrMatch struct{ Re *relang.Regex }

// NumGE tests that n is a number node with val(n) ≥ N (JSL's Min,
// inclusive per the repo's Theorem 1 convention).
type NumGE struct{ N uint64 }

// NumLE tests that n is a number node with val(n) ≤ N (JSL's Max).
type NumLE struct{ N uint64 }

// NumMultOf tests that n is a number node whose value is a multiple of
// N (JSL's MultOf; N = 0 admits only 0).
type NumMultOf struct{ N uint64 }

// ChMin tests that n has at least K children (JSL's MinCh; no kind
// restriction — leaves have zero children).
type ChMin struct{ K int }

// ChMax tests that n has at most K children (JSL's MaxCh).
type ChMax struct{ K int }

// Unique tests that n is an array whose elements are pairwise distinct
// JSON values (JSL's Unique; false on non-arrays).
type Unique struct{}

// ---- Modal structure ----

// Exists is ∃π.φ: some π-successor satisfies φ. It subsumes JNL's [α]
// (φ = True), EQ(α, A) (φ = ValEq) and JSL's ◇ modalities.
type Exists struct {
	Path  Path
	Inner Node
}

// ForAll is ∀π.φ: every π-successor satisfies φ, vacuously true when
// there are none (JSL's ◻ modalities).
type ForAll struct {
	Path  Path
	Inner Node
}

// EqPaths is EQ(π₁, π₂): some π₁-successor and some π₂-successor root
// equal subtrees — the predicate that drives JNL evaluation from linear
// to cubic (Proposition 3).
type EqPaths struct{ Left, Right Path }

// Ref is a reference to a named definition of the enclosing Query
// (recursive JSL, §5.3).
type Ref struct{ Name string }

func (True) isNode()      {}
func (Not) isNode()       {}
func (And) isNode()       {}
func (Or) isNode()        {}
func (KindIs) isNode()    {}
func (ValEq) isNode()     {}
func (StrMatch) isNode()  {}
func (NumGE) isNode()     {}
func (NumLE) isNode()     {}
func (NumMultOf) isNode() {}
func (ChMin) isNode()     {}
func (ChMax) isNode()     {}
func (Unique) isNode()    {}
func (Exists) isNode()    {}
func (ForAll) isNode()    {}
func (EqPaths) isNode()   {}
func (Ref) isNode()       {}

// ---- Paths ----

// Here is ε, the identity relation.
type Here struct{}

// Key moves from an object node to the value of key Word (X_w).
type Key struct{ Word string }

// KeyRe moves from an object node to the value of any key matching Re
// (X_e, non-deterministic JNL).
type KeyRe struct{ Re *relang.Regex }

// At moves from an array node to its Index-th element; negative
// indices count from the end (X_i with the paper's dual access).
type At struct{ Index int }

// Slice moves from an array node to any element at position
// Lo ≤ p ≤ Hi (X_{i:j}; Hi = Inf means +∞).
type Slice struct{ Lo, Hi int }

// Seq is composition π₁ ∘ π₂ ∘ …; an empty Seq is ε.
type Seq struct{ Parts []Path }

// Union is π₁ ∪ π₂ ∪ … (JSONPath wildcards, JNL's Alt).
type Union struct{ Alts []Path }

// Closure is (π)*, reflexive-transitive closure (recursive JNL,
// JSONPath's descendant step).
type Closure struct{ Inner Path }

// Filter is ⟨φ⟩: the identity restricted to nodes satisfying φ (JNL
// tests, JSONPath filters).
type Filter struct{ Cond Node }

func (Here) isPath()    {}
func (Key) isPath()     {}
func (KeyRe) isPath()   {}
func (At) isPath()      {}
func (Slice) isPath()   {}
func (Seq) isPath()     {}
func (Union) isPath()   {}
func (Closure) isPath() {}
func (Filter) isPath()  {}

// ---- Query ----

// Def is one named definition of a recursive query.
type Def struct {
	Name string
	Body Node
}

// Query is a complete lowered query: definitions, a match predicate,
// and an optional selection path.
//
// Matching semantics (engine.Validate): the root satisfies Pred.
// Selection semantics (engine.Eval): when Sel is non-nil, the nodes
// reachable from the root via Sel (JSONPath — selection is
// root-anchored); otherwise all nodes satisfying Pred (JNL/JSL/mongo —
// every node is a potential evaluation point). Front ends with a
// selection path set Pred = Exists{Sel, True} so both semantics flow
// from one structure.
type Query struct {
	Defs []Def
	Pred Node
	Sel  Path // nil for predicate queries
}

// Def looks up a definition body by name.
func (q *Query) Def(name string) (Node, bool) {
	for _, d := range q.Defs {
		if d.Name == name {
			return d.Body, true
		}
	}
	return nil, false
}

// ---- Inline rendering ----

func (True) writeTo(sb *strings.Builder) { sb.WriteString("true") }

func (n Not) writeTo(sb *strings.Builder) {
	sb.WriteString("not(")
	n.Inner.writeTo(sb)
	sb.WriteByte(')')
}

func (a And) writeTo(sb *strings.Builder) {
	sb.WriteString("and(")
	a.Left.writeTo(sb)
	sb.WriteString(", ")
	a.Right.writeTo(sb)
	sb.WriteByte(')')
}

func (o Or) writeTo(sb *strings.Builder) {
	sb.WriteString("or(")
	o.Left.writeTo(sb)
	sb.WriteString(", ")
	o.Right.writeTo(sb)
	sb.WriteByte(')')
}

func (k KindIs) writeTo(sb *strings.Builder)   { sb.WriteString("kind=" + k.Kind.String()) }
func (v ValEq) writeTo(sb *strings.Builder)    { sb.WriteString("eq " + v.Doc.String()) }
func (p StrMatch) writeTo(sb *strings.Builder) { fmt.Fprintf(sb, "match %q", p.Re.String()) }
func (m NumGE) writeTo(sb *strings.Builder)    { fmt.Fprintf(sb, "num>=%d", m.N) }
func (m NumLE) writeTo(sb *strings.Builder)    { fmt.Fprintf(sb, "num<=%d", m.N) }
func (m NumMultOf) writeTo(sb *strings.Builder) {
	fmt.Fprintf(sb, "num%%%d=0", m.N)
}
func (m ChMin) writeTo(sb *strings.Builder) { fmt.Fprintf(sb, "children>=%d", m.K) }
func (m ChMax) writeTo(sb *strings.Builder) { fmt.Fprintf(sb, "children<=%d", m.K) }
func (Unique) writeTo(sb *strings.Builder)  { sb.WriteString("unique") }
func (r Ref) writeTo(sb *strings.Builder)   { sb.WriteString("ref " + r.Name) }

func (e Exists) writeTo(sb *strings.Builder) {
	sb.WriteString("exists(")
	e.Path.writePathTo(sb)
	sb.WriteString(", ")
	e.Inner.writeTo(sb)
	sb.WriteByte(')')
}

func (f ForAll) writeTo(sb *strings.Builder) {
	sb.WriteString("forall(")
	f.Path.writePathTo(sb)
	sb.WriteString(", ")
	f.Inner.writeTo(sb)
	sb.WriteByte(')')
}

func (e EqPaths) writeTo(sb *strings.Builder) {
	sb.WriteString("eqpaths(")
	e.Left.writePathTo(sb)
	sb.WriteString(", ")
	e.Right.writePathTo(sb)
	sb.WriteByte(')')
}

func (Here) writePathTo(sb *strings.Builder)    { sb.WriteString("ε") }
func (k Key) writePathTo(sb *strings.Builder)   { sb.WriteString("/" + k.Word) }
func (k KeyRe) writePathTo(sb *strings.Builder) { fmt.Fprintf(sb, "/~%q", k.Re.String()) }
func (a At) writePathTo(sb *strings.Builder)    { sb.WriteString("/" + strconv.Itoa(a.Index)) }

func (s Slice) writePathTo(sb *strings.Builder) {
	fmt.Fprintf(sb, "/[%d:", s.Lo)
	if s.Hi != Inf {
		sb.WriteString(strconv.Itoa(s.Hi))
	}
	sb.WriteByte(']')
}

func (s Seq) writePathTo(sb *strings.Builder) {
	if len(s.Parts) == 0 {
		sb.WriteString("ε")
		return
	}
	for i, p := range s.Parts {
		if i > 0 {
			sb.WriteByte(' ')
		}
		p.writePathTo(sb)
	}
}

func (u Union) writePathTo(sb *strings.Builder) {
	sb.WriteByte('(')
	for i, p := range u.Alts {
		if i > 0 {
			sb.WriteString(" | ")
		}
		p.writePathTo(sb)
	}
	sb.WriteByte(')')
}

func (c Closure) writePathTo(sb *strings.Builder) {
	sb.WriteByte('(')
	c.Inner.writePathTo(sb)
	sb.WriteString(")*")
}

func (f Filter) writePathTo(sb *strings.Builder) {
	sb.WriteByte('<')
	f.Cond.writeTo(sb)
	sb.WriteByte('>')
}

// String renders the node inline.
func String(n Node) string {
	var sb strings.Builder
	n.writeTo(&sb)
	return sb.String()
}

// PathString renders the path inline.
func PathString(p Path) string {
	var sb strings.Builder
	p.writePathTo(&sb)
	return sb.String()
}

// ---- Logical tree rendering (Explain) ----

// String renders the query as an indented logical operator tree, the
// "logical plan" half of Plan.Explain.
func (q *Query) String() string {
	var sb strings.Builder
	for _, d := range q.Defs {
		sb.WriteString("def " + d.Name + "\n")
		writeNodeTree(&sb, d.Body, 1)
	}
	if q.Sel != nil {
		sb.WriteString("select " + PathString(q.Sel) + "\n")
	}
	sb.WriteString("match\n")
	writeNodeTree(&sb, q.Pred, 1)
	return sb.String()
}

func writeNodeTree(sb *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch t := n.(type) {
	case Not:
		sb.WriteString(indent + "not\n")
		writeNodeTree(sb, t.Inner, depth+1)
	case And:
		sb.WriteString(indent + "and\n")
		writeNodeTree(sb, t.Left, depth+1)
		writeNodeTree(sb, t.Right, depth+1)
	case Or:
		sb.WriteString(indent + "or\n")
		writeNodeTree(sb, t.Left, depth+1)
		writeNodeTree(sb, t.Right, depth+1)
	case Exists:
		sb.WriteString(indent + "exists " + PathString(t.Path) + "\n")
		writeNodeTree(sb, t.Inner, depth+1)
	case ForAll:
		sb.WriteString(indent + "forall " + PathString(t.Path) + "\n")
		writeNodeTree(sb, t.Inner, depth+1)
	default:
		sb.WriteString(indent + String(n) + "\n")
	}
}

// ---- Convenience constructors ----

// AndAll conjoins nodes; AndAll() is True.
func AndAll(parts ...Node) Node {
	if len(parts) == 0 {
		return True{}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = And{out, p}
	}
	return out
}

// OrAll disjoins nodes; OrAll() is not(true).
func OrAll(parts ...Node) Node {
	if len(parts) == 0 {
		return Not{True{}}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = Or{out, p}
	}
	return out
}

// SeqOf composes paths left to right, flattening nested Seqs; SeqOf()
// is ε.
func SeqOf(parts ...Path) Path {
	flat := make([]Path, 0, len(parts))
	for _, p := range parts {
		switch t := p.(type) {
		case Here:
			// ε is the composition identity.
		case Seq:
			flat = append(flat, t.Parts...)
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return Here{}
	case 1:
		return flat[0]
	}
	return Seq{Parts: flat}
}
