package qir

import (
	"jsonlogic/internal/jsontree"
)

// Fact derivation over the unified algebra: the one code path through
// which all four front ends get index support. FindFacts extracts
// jsontree.PathFacts that are *necessary* for a tree's root to satisfy
// the query's match predicate; the store intersects the corresponding
// posting lists to prune candidates, so a fact never needs to be
// sufficient — only sound. Extraction descends where satisfaction
// forces a condition (conjunctions, existentials over exact paths) and
// stops at anything negated, disjunctive, universal or recursive.
//
// Compared to the retired per-front-end extractors (jnl.RequiredFacts,
// jsl.RequiredFacts), this derivation additionally anchors navigation:
// a node with a keyed successor must be an object, one with a
// positional successor an array, so every Exists contributes a class
// fact for its source — strictly more selective, still necessary.

// FindFacts returns path facts every tree whose root satisfies the
// query must obey, deduplicated in first-appearance order. An empty
// result means nothing anchored could be extracted and the store must
// scan.
func (q *Query) FindFacts() []jsontree.PathFact {
	var facts []jsontree.PathFact
	appendNodeFacts(q.Pred, nil, &facts)
	return dedupFacts(facts)
}

// SelectFacts returns path facts necessary for the query's node
// selection to be non-empty. Only path-selection queries (JSONPath)
// are root-anchored; predicate queries may select any node, so no
// anchored fact exists and the result is empty.
func (q *Query) SelectFacts() []jsontree.PathFact {
	if q.Sel == nil {
		return nil
	}
	var facts []jsontree.PathFact
	appendNodeFacts(Exists{Path: q.Sel, Inner: True{}}, nil, &facts)
	return dedupFacts(facts)
}

func dedupFacts(facts []jsontree.PathFact) []jsontree.PathFact {
	if len(facts) < 2 {
		return facts
	}
	seen := make(map[string]struct{}, len(facts))
	out := facts[:0]
	for _, f := range facts {
		k := f.String()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, f)
	}
	return out
}

// appendNodeFacts accumulates facts for "the node at prefix satisfies
// n". prefix is never mutated; extensions copy.
func appendNodeFacts(n Node, prefix []jsontree.Step, facts *[]jsontree.PathFact) {
	classFact := func(k jsontree.Kind) {
		*facts = append(*facts, jsontree.PathFact{Steps: prefix, HasClass: true, Class: k})
	}
	switch t := n.(type) {
	case And:
		appendNodeFacts(t.Left, prefix, facts)
		appendNodeFacts(t.Right, prefix, facts)
	case KindIs:
		classFact(jsontree.Kind(t.Kind))
	case ValEq:
		*facts = append(*facts, jsontree.ValueFacts(prefix, t.Doc)...)
	case StrMatch:
		classFact(jsontree.StringNode)
	case NumGE:
		classFact(jsontree.NumberNode)
	case NumLE:
		classFact(jsontree.NumberNode)
	case NumMultOf:
		classFact(jsontree.NumberNode)
	case Unique:
		classFact(jsontree.ArrayNode)
	case Exists:
		appendExistsFacts(t.Path, t.Inner, prefix, facts)
	case EqPaths:
		// EQ(π₁, π₂) requires both sides to have a successor.
		for _, p := range []Path{t.Left, t.Right} {
			appendExistsFacts(p, True{}, prefix, facts)
		}
	}
	// True, ChMin, ChMax: no single-kind restriction. Not, Or:
	// satisfaction forces no branch. ForAll: vacuous on absence. Ref:
	// the definition may be recursive; contribute nothing.
}

// appendExistsFacts handles ∃π.φ at prefix by walking π's flattened
// parts: each moving step forces its source node's kind (keyed steps
// need an object, positional steps an array), exact steps extend the
// anchored prefix, and when π pins down a unique successor (complete),
// φ's facts apply there. The walk mirrors the reasoning of the retired
// jnl.RequiredPrefix: slices contribute their dense lower bound
// (positions are dense, §3.1 condition 3), point slices name exactly
// one child and stay complete, and regexes, unions, closures and
// negative indices end the prefix.
func appendExistsFacts(p Path, inner Node, prefix []jsontree.Step, facts *[]jsontree.PathFact) {
	cur := prefix
	complete := true
	// anchoredAtCur tracks whether the most recent class anchor sits at
	// the current end of the prefix (a kind-forcing part that added no
	// step, e.g. a trailing KeyRe); such an anchor already implies the
	// node's existence, making a separate presence fact redundant.
	anchoredAtCur := false
	for _, part := range flattenPath(p, nil) {
		if k, ok := firstStepKind(part); ok {
			*facts = append(*facts, jsontree.PathFact{Steps: cur, HasClass: true, Class: k})
			anchoredAtCur = true
		}
		steps, cont := partSteps(part)
		for _, s := range steps {
			cur = jsontree.ExtendSteps(cur, s)
			anchoredAtCur = false
		}
		if !cont {
			complete = false
			break
		}
	}
	mark := len(*facts)
	if complete {
		appendNodeFacts(inner, cur, facts)
	}
	// Any inner fact is anchored at cur or deeper and already implies
	// the node's existence; assert presence only when neither an inner
	// fact nor a same-path class anchor was emitted.
	if len(cur) > len(prefix) && len(*facts) == mark && !anchoredAtCur {
		*facts = append(*facts, jsontree.PathFact{Steps: cur})
	}
}

// flattenPath splats nested Seqs into a flat part list.
func flattenPath(p Path, out []Path) []Path {
	if s, ok := p.(Seq); ok {
		for _, part := range s.Parts {
			out = flattenPath(part, out)
		}
		return out
	}
	return append(out, p)
}

// partSteps returns the exact navigation steps one path part forces,
// and whether the anchored prefix continues past it.
func partSteps(p Path) (steps []jsontree.Step, cont bool) {
	switch t := p.(type) {
	case Here, Filter:
		// Non-moving: ⟨φ⟩ restricts without moving.
		return nil, true
	case Key:
		return []jsontree.Step{jsontree.Key(t.Word)}, true
	case At:
		if t.Index < 0 {
			// Negative indices address from the end; without the array
			// length they name no fixed path.
			return nil, false
		}
		return []jsontree.Step{jsontree.Index(t.Index)}, true
	case Slice:
		if t.Lo < 0 {
			return nil, false
		}
		return []jsontree.Step{jsontree.Index(t.Lo)}, t.Lo == t.Hi
	}
	// KeyRe, Union, Closure: no single exact step is required.
	return nil, false
}

// firstStepKind returns the node kind π's source must have for any
// successor to exist: keyed steps require an object, positional steps
// an array. ok is false when the path can succeed without moving
// (ε, filters, closures) or when union alternatives disagree.
func firstStepKind(p Path) (jsontree.Kind, bool) {
	switch t := p.(type) {
	case Key, KeyRe:
		return jsontree.ObjectNode, true
	case At, Slice:
		return jsontree.ArrayNode, true
	case Seq:
		for _, part := range t.Parts {
			switch part.(type) {
			case Here, Filter:
				// Non-moving; the next part's step applies to the source.
				continue
			}
			return firstStepKind(part)
		}
		return 0, false
	case Union:
		var kind jsontree.Kind
		for i, alt := range t.Alts {
			k, ok := firstStepKind(alt)
			if !ok {
				return 0, false
			}
			if i == 0 {
				kind = k
			} else if k != kind {
				return 0, false
			}
		}
		return kind, len(t.Alts) > 0
	}
	// Here, Filter, Closure: a successor may exist without any step.
	return 0, false
}
