//go:build race

package qir

// raceEnabled mirrors the -race flag: allocation-count assertions are
// skipped under the race detector, whose instrumentation allocates on
// paths that are allocation-free in normal builds.
const raceEnabled = true
