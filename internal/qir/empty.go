package qir

import (
	"strings"

	"jsonlogic/internal/jsontree"
)

// The constant-empty program: the physical plan a semantic pass
// compiles a provably unsatisfiable query to. Match and Eval answer
// without visiting a single node, and Describe renders the proof
// verdict so explanations show why no data was touched.

// emptyOp is the constant-false predicate of a semantically empty
// program.
type emptyOp struct{ reason string }

func (emptyOp) eval(*state, jsontree.NodeID) bool { return false }
func (o emptyOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "const_empty("+o.reason+")")
}

// Empty returns a program over q whose Match is constantly false and
// whose Eval selects nothing — the compilation target for queries a
// semantic pass proved unsatisfiable. reason labels the proof (e.g.
// "unsat", "schema_unsat") and shows up in Describe.
func Empty(q *Query, reason string) *Program {
	return &Program{query: q, pred: emptyOp{reason: reason}}
}

// IsEmpty reports whether the program is a constant-empty program
// built by Empty.
func (p *Program) IsEmpty() bool {
	_, ok := p.pred.(emptyOp)
	return ok
}
