package qir

import (
	"fmt"
	"runtime/debug"
	"sync"
	"testing"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// Allocation-regression tests for the pooled executor: once a program's
// state pool is warm, Match and buffer-reusing EvalAppend must not
// allocate at all. GC is disabled for the measurement so sync.Pool
// cannot be drained mid-run (a pool drop is a re-warm, not a leak,
// but it would make the assertion flaky).

// allocProbeQuery exercises every pooled structure at once: a closure
// (memo table + visited scratch on the enum side), a named recursive
// definition (second memo table), a regex predicate (regex memo) and a
// uniqueness predicate (unique memo).
func allocProbeQuery() *Query {
	return &Query{
		Defs: []Def{{Name: "X", Body: Or{
			Left:  StrMatch{Re: relang.MustCompile("v[0-9]*")},
			Right: Exists{Path: KeyRe{Re: relang.MustCompile(".*")}, Inner: Ref{Name: "X"}},
		}}},
		Pred: And{
			Left: Exists{Path: Closure{Inner: Union{Alts: []Path{
				Key{Word: "a"}, Key{Word: "b"}, Slice{Lo: 0, Hi: Inf},
			}}}, Inner: Ref{Name: "X"}},
			Right: Not{Inner: Exists{Path: Key{Word: "zs"}, Inner: Not{Inner: Unique{}}}},
		},
	}
}

func allocProbeTree() *jsontree.Tree {
	doc := `{"a":{"b":{"deep":["v1","v2",{"a":"v3"}]}},"b":[{"a":"v9"},"w"],"zs":[1,2,3]}`
	return jsontree.MustParse(doc)
}

// measureAllocs is testing.AllocsPerRun with the GC pinned off, so the
// program pool cannot be emptied between iterations.
func measureAllocs(t *testing.T, f func()) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f() // warm the pool and every lazily sized memo outside the measurement
	return testing.AllocsPerRun(200, f)
}

func TestMatchZeroAllocs(t *testing.T) {
	p := MustCompile(allocProbeQuery())
	tree := allocProbeTree()
	want := p.Match(tree)
	if got := measureAllocs(t, func() {
		if p.Match(tree) != want {
			t.Fatal("verdict changed between runs")
		}
	}); got != 0 {
		t.Fatalf("steady-state Match allocates %v objects/op, want 0", got)
	}
}

func TestEvalAppendZeroAllocs(t *testing.T) {
	p := MustCompile(allocProbeQuery())
	tree := allocProbeTree()
	want := len(p.Eval(tree))
	buf := make([]jsontree.NodeID, 0, tree.Len())
	if got := measureAllocs(t, func() {
		buf = p.EvalAppend(tree, buf[:0])
		if len(buf) != want {
			t.Fatalf("selection size changed: %d, want %d", len(buf), want)
		}
	}); got != 0 {
		t.Fatalf("steady-state EvalAppend allocates %v objects/op, want 0", got)
	}
}

// TestEvalAppendSelectionAllocsBounded covers the selection-path
// variant (Sel != nil). Lazy successor enumeration passes yield
// closures down the operator chain, so a selection walk allocates one
// closure cell per enumerated step — O(visited nodes), with the former
// per-node maps (closure visited sets, uniqueness buckets, memo maps)
// all pooled away. The test pins that bound: for the probe tree
// (~16 nodes) a descendant-axis selection must stay in the tens of
// objects, not hundreds (the pre-pooling executor allocated a map per
// closure entry plus a fresh state per call).
func TestEvalAppendSelectionAllocsBounded(t *testing.T) {
	q := &Query{
		Pred: True{},
		Sel: SeqOf(Closure{Inner: Union{Alts: []Path{
			KeyRe{Re: relang.MustCompile(".*")}, Slice{Lo: 0, Hi: Inf},
		}}}, Filter{Cond: KindIs{Kind: KindString}}),
	}
	p := MustCompile(q)
	tree := allocProbeTree()
	want := len(p.Eval(tree))
	if want == 0 {
		t.Fatal("probe selection must select something")
	}
	buf := make([]jsontree.NodeID, 0, tree.Len())
	got := measureAllocs(t, func() {
		buf = p.EvalAppend(tree, buf[:0])
		if len(buf) != want {
			t.Fatalf("selection size changed: %d, want %d", len(buf), want)
		}
	})
	if limit := float64(2 * tree.Len()); got > limit {
		t.Fatalf("steady-state selection EvalAppend allocates %v objects/op, want ≤ %v (one closure cell per enumerated step)", got, limit)
	}
}

// TestPooledStateConcurrent hammers one shared Program from many
// goroutines over differently sized trees: pooled states migrate
// between goroutines and tree sizes, and every verdict must match a
// fresh single-use evaluation. Run under -race this doubles as the
// executor's data-race check.
func TestPooledStateConcurrent(t *testing.T) {
	p := MustCompile(allocProbeQuery())
	trees := make([]*jsontree.Tree, 0, 16)
	want := make([]bool, 0, 16)
	for i := 0; i < 16; i++ {
		doc := `{"a":{"b":"v` + fmt.Sprint(i) + `"}`
		for j := 0; j < i; j++ {
			doc += `,"k` + fmt.Sprint(j) + `":[1,2,` + fmt.Sprint(j%3) + `]`
		}
		doc += `}`
		tree := jsontree.MustParse(doc)
		trees = append(trees, tree)
		want = append(want, MustCompile(allocProbeQuery()).Match(tree))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := []jsontree.NodeID(nil)
			for i := 0; i < 400; i++ {
				k := (g + i) % len(trees)
				if p.Match(trees[k]) != want[k] {
					t.Errorf("goroutine %d: verdict drifted on tree %d", g, k)
					return
				}
				buf = p.EvalAppend(trees[k], buf[:0])
			}
		}(g)
	}
	wg.Wait()
}

// TestVisitSetNesting pins the freelist requirement: enumerating a
// closure whose filter condition enumerates another closure must not
// share one visited set between the two walks.
func TestVisitSetNesting(t *testing.T) {
	// Outer: descend through any key, keeping nodes where some
	// descendant equals "hit"; inner closure re-walks the same subtree
	// while the outer enumeration is suspended mid-walk.
	inner := Exists{Path: Closure{Inner: KeyRe{Re: relang.MustCompile(".*")}},
		Inner: ValEq{Doc: jsonval.Str("hit")}}
	q := &Query{Pred: True{}, Sel: SeqOf(
		Closure{Inner: KeyRe{Re: relang.MustCompile(".*")}},
		Filter{Cond: inner},
	)}
	p := MustCompile(q)
	tree := jsontree.MustParse(`{"a":{"b":"hit"},"c":"miss"}`)
	got := p.Eval(tree)
	// Nodes with a descendant-or-self "hit": root (0), a (1), b (2).
	if !sameIDs(got, ids(0, 1, 2)) {
		t.Fatalf("nested closure enumeration = %v, want [0 1 2]", got)
	}
}
