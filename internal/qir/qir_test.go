package qir

import (
	"strings"
	"testing"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

func mustEval(t *testing.T, q *Query, doc string) []jsontree.NodeID {
	t.Helper()
	return MustCompile(q).Eval(jsontree.MustParse(doc))
}

func mustMatch(t *testing.T, q *Query, doc string) bool {
	t.Helper()
	return MustCompile(q).Match(jsontree.MustParse(doc))
}

func ids(ns ...int) []jsontree.NodeID {
	out := make([]jsontree.NodeID, len(ns))
	for i, n := range ns {
		out[i] = jsontree.NodeID(n)
	}
	return out
}

func sameIDs(a, b []jsontree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExistsShortCircuitAndKinds(t *testing.T) {
	// {"a": {"b": 1}, "c": [10, 20]} — preorder ids: 0 root, 1 a-obj,
	// 2 b-num, 3 c-arr, 4 ten, 5 twenty.
	doc := `{"a":{"b":1},"c":[10,20]}`

	q := &Query{Pred: Exists{Path: SeqOf(Key{Word: "a"}, Key{Word: "b"}), Inner: NumGE{N: 1}}}
	if !mustMatch(t, q, doc) {
		t.Fatal("a.b >= 1 must hold at root")
	}
	if got := mustEval(t, q, doc); !sameIDs(got, ids(0)) {
		t.Fatalf("eval = %v, want [0]", got)
	}

	// Keyed navigation from an array yields nothing; positional
	// navigation from an object yields nothing.
	if mustMatch(t, &Query{Pred: Exists{Path: SeqOf(Key{Word: "c"}, Key{Word: "0"}), Inner: True{}}}, doc) {
		t.Fatal("keyed step must not traverse array edges")
	}
	if mustMatch(t, &Query{Pred: Exists{Path: At{Index: 0}, Inner: True{}}}, doc) {
		t.Fatal("positional step must not traverse object edges")
	}
	// Negative indices address from the end.
	if !mustMatch(t, &Query{Pred: Exists{Path: SeqOf(Key{Word: "c"}, At{Index: -1}), Inner: ValEq{Doc: jsonval.Num(20)}}}, doc) {
		t.Fatal("c[-1] == 20 must hold")
	}
}

func TestForAllVacuousAndCounterexample(t *testing.T) {
	doc := `{"xs":[1,2,3],"s":"hi"}`
	all3 := &Query{Pred: Exists{Path: Key{Word: "xs"},
		Inner: ForAll{Path: Slice{Lo: 0, Hi: Inf}, Inner: NumGE{N: 1}}}}
	if !mustMatch(t, all3, doc) {
		t.Fatal("all xs >= 1 must hold")
	}
	all4 := &Query{Pred: Exists{Path: Key{Word: "xs"},
		Inner: ForAll{Path: Slice{Lo: 0, Hi: Inf}, Inner: NumGE{N: 2}}}}
	if mustMatch(t, all4, doc) {
		t.Fatal("xs contains 1 < 2")
	}
	// ForAll over a keyed path on a leaf is vacuously true.
	vac := &Query{Pred: Exists{Path: Key{Word: "s"},
		Inner: ForAll{Path: Key{Word: "nope"}, Inner: Not{Inner: True{}}}}}
	if !mustMatch(t, vac, doc) {
		t.Fatal("box over absent edges must be vacuously true")
	}
}

func TestClosureMemoDegenerateLoops(t *testing.T) {
	doc := `{"a":{"a":{"b":1}}}`
	// (ε)* is the identity: [ (ε)* ⟨b exists⟩ ] at root is false, at
	// node 1 true — and the in-progress cut must not diverge.
	idStar := &Query{Pred: Exists{
		Path:  SeqOf(Closure{Inner: Here{}}, Filter{Cond: Exists{Path: Key{Word: "b"}, Inner: True{}}}),
		Inner: True{}}}
	if got := mustEval(t, idStar, doc); !sameIDs(got, ids(2)) {
		t.Fatalf("(ε)* filter eval = %v, want [2]", got)
	}
	// (filter)* with an always-true filter is also the identity.
	filtStar := &Query{Pred: Exists{
		Path:  SeqOf(Closure{Inner: Filter{Cond: True{}}}, Key{Word: "b"}),
		Inner: NumGE{N: 1}}}
	if got := mustEval(t, filtStar, doc); !sameIDs(got, ids(2)) {
		t.Fatalf("(⟨true⟩)* /b eval = %v, want [2]", got)
	}
	// Descendant closure reaches the leaf from everywhere above it.
	desc := &Query{Pred: Exists{
		Path:  Closure{Inner: Union{Alts: []Path{KeyRe{Re: relang.MustCompile(".*")}, Slice{Lo: 0, Hi: Inf}}}},
		Inner: NumGE{N: 1}}}
	if got := mustEval(t, desc, doc); !sameIDs(got, ids(0, 1, 2, 3)) {
		t.Fatalf("descendant eval = %v, want [0 1 2 3]", got)
	}
}

func TestRecursiveDefsMemoized(t *testing.T) {
	// reach = b-leaf || some child reaches: the classic guarded
	// recursion, with an unguarded-but-acyclic ref layered on top.
	anyChild := Union{Alts: []Path{KeyRe{Re: relang.MustCompile(".*")}, Slice{Lo: 0, Hi: Inf}}}
	q := &Query{
		Defs: []Def{
			{Name: "reach", Body: Or{
				Left:  ValEq{Doc: jsonval.Num(7)},
				Right: Exists{Path: anyChild, Inner: Ref{Name: "reach"}},
			}},
			{Name: "top", Body: And{Left: KindIs{Kind: KindObject}, Right: Ref{Name: "reach"}}},
		},
		Pred: Ref{Name: "top"},
	}
	if !mustMatch(t, q, `{"a":[{"b":7}]}`) {
		t.Fatal("7 is reachable")
	}
	if mustMatch(t, q, `{"a":[{"b":8}]}`) {
		t.Fatal("7 is not reachable")
	}
	if mustMatch(t, q, `[7]`) {
		t.Fatal("top requires an object root")
	}
}

func TestCompileRejectsIllFormed(t *testing.T) {
	if _, err := Compile(&Query{Pred: Ref{Name: "ghost"}}); err == nil {
		t.Fatal("undefined reference must not compile")
	}
	cyc := &Query{
		Defs: []Def{
			{Name: "a", Body: Ref{Name: "b"}},
			{Name: "b", Body: Not{Inner: Ref{Name: "a"}}},
		},
		Pred: Ref{Name: "a"},
	}
	if _, err := Compile(cyc); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unguarded cycle must not compile, got %v", err)
	}
	dup := &Query{
		Defs: []Def{{Name: "a", Body: True{}}, {Name: "a", Body: True{}}},
		Pred: Ref{Name: "a"},
	}
	if _, err := Compile(dup); err == nil {
		t.Fatal("duplicate definition must not compile")
	}
	// Modal operators guard only through moving paths: ε, filters and
	// closures re-enter at the same node, so cycles through them must
	// be rejected at compile time, not panic at evaluation time.
	for name, path := range map[string]Path{
		"here":    Here{},
		"filter":  Filter{Cond: True{}},
		"closure": Closure{Inner: Key{Word: "a"}},
		"union":   Union{Alts: []Path{Key{Word: "a"}, Here{}}},
	} {
		q := &Query{
			Defs: []Def{{Name: "g", Body: Exists{Path: path, Inner: Ref{Name: "g"}}}},
			Pred: Ref{Name: "g"},
		}
		if _, err := Compile(q); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("%s-guarded cycle must not compile, got %v", name, err)
		}
	}
	// A ref inside a path filter condition evaluates at the current
	// node and is unguarded regardless of later moving steps.
	filterRef := &Query{
		Defs: []Def{{Name: "g", Body: Exists{
			Path:  Seq{Parts: []Path{Filter{Cond: Ref{Name: "g"}}, Key{Word: "a"}}},
			Inner: True{}}}},
		Pred: Ref{Name: "g"},
	}
	if _, err := Compile(filterRef); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("filter-condition cycle must not compile, got %v", err)
	}
	// An undefined ref inside a path filter condition must be a
	// compile error everywhere a path can appear — including EqPaths
	// sides and selection paths, which compile through the enumerator.
	for name, q := range map[string]*Query{
		"eqpaths": {Pred: EqPaths{Left: Filter{Cond: Ref{Name: "ghost"}}, Right: Here{}}},
		"select": {Pred: True{},
			Sel: Seq{Parts: []Path{Filter{Cond: Ref{Name: "ghost"}}, Key{Word: "a"}}}},
		"exists-path": {Pred: Exists{Path: Filter{Cond: Ref{Name: "ghost"}}, Inner: True{}}},
	} {
		if _, err := Compile(q); err == nil || !strings.Contains(err.Error(), "undefined") {
			t.Fatalf("%s: undefined filter ref must not compile, got %v", name, err)
		}
	}
	// Genuinely guarded recursion still compiles: every union arm and
	// the sequence as a whole move.
	guarded := &Query{
		Defs: []Def{{Name: "g", Body: Or{
			Left:  KindIs{Kind: KindNumber},
			Right: Exists{Path: Union{Alts: []Path{Key{Word: "a"}, At{Index: 0}}}, Inner: Ref{Name: "g"}},
		}}},
		Pred: Ref{Name: "g"},
	}
	if _, err := Compile(guarded); err != nil {
		t.Fatalf("moving-path guard must compile: %v", err)
	}
}

func TestSelectionEnumeratesSorted(t *testing.T) {
	doc := `{"a":[{"x":1},{"x":2}],"b":{"x":3}}`
	sel := SeqOf(
		Closure{Inner: Union{Alts: []Path{KeyRe{Re: relang.MustCompile(".*")}, Slice{Lo: 0, Hi: Inf}}}},
		Key{Word: "x"},
	)
	q := &Query{Pred: Exists{Path: sel, Inner: True{}}, Sel: sel}
	got := mustEval(t, q, doc)
	tr := jsontree.MustParse(doc)
	// All x values, in ascending node order, each exactly once.
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("selection = %v", got)
	}
	for i, n := range got {
		if i > 0 && got[i-1] >= n {
			t.Fatalf("selection not strictly ascending: %v", got)
		}
		if tr.NumberVal(n) != want[i] {
			t.Fatalf("selection values = %v", got)
		}
	}
}

func TestEqPathsStructuralNotHashOnly(t *testing.T) {
	q := &Query{Pred: EqPaths{Left: Key{Word: "l"}, Right: Key{Word: "r"}}}
	if !mustMatch(t, q, `{"l":{"k":[1,"x"]},"r":{"k":[1,"x"]}}`) {
		t.Fatal("equal subtrees must match")
	}
	if mustMatch(t, q, `{"l":{"k":[1,"x"]},"r":{"k":[1,"y"]}}`) {
		t.Fatal("unequal subtrees must not match")
	}
	if mustMatch(t, q, `{"l":1}`) {
		t.Fatal("a missing side must not match")
	}
}

func TestExplainRendering(t *testing.T) {
	q := &Query{
		Defs: []Def{{Name: "g", Body: Or{Left: KindIs{Kind: KindNumber}, Right: Exists{Path: KeyRe{Re: relang.MustCompile(".*")}, Inner: Ref{Name: "g"}}}}},
		Pred: Ref{Name: "g"},
	}
	logical := q.String()
	for _, want := range []string{"def g", "or", "kind=number", "exists /~\".*\"", "ref g", "match"} {
		if !strings.Contains(logical, want) {
			t.Fatalf("logical tree missing %q:\n%s", want, logical)
		}
	}
	physical := MustCompile(q).Describe()
	for _, want := range []string{"scan-nodes", "ref g [memo #0]"} {
		if !strings.Contains(physical, want) {
			t.Fatalf("physical tree missing %q:\n%s", want, physical)
		}
	}
	selQ := &Query{Pred: Exists{Path: Key{Word: "a"}, Inner: True{}}, Sel: Key{Word: "a"}}
	if d := MustCompile(selQ).Describe(); !strings.Contains(d, "enumerate /a") {
		t.Fatalf("selection physical tree missing enumerator:\n%s", d)
	}
}

func TestFactsDerivation(t *testing.T) {
	// exists /a/b with a numeric leaf: anchor class, presence collapse.
	q := &Query{Pred: Exists{
		Path:  SeqOf(Key{Word: "a"}, Key{Word: "b"}),
		Inner: NumGE{N: 3}}}
	got := factStrings(q.FindFacts())
	want := []string{"$ kind=object", "/a kind=object", "/a/b kind=number"}
	if !equalStrings(got, want) {
		t.Fatalf("facts = %v, want %v", got, want)
	}
	// Point slices stay complete; open slices degrade to the dense
	// lower bound.
	point := &Query{Pred: Exists{Path: SeqOf(Key{Word: "xs"}, Slice{Lo: 2, Hi: 2}), Inner: ValEq{Doc: jsonval.Num(9)}}}
	got = factStrings(point.FindFacts())
	want = []string{"$ kind=object", "/xs kind=array", "/xs/2 value=9"}
	if !equalStrings(got, want) {
		t.Fatalf("point-slice facts = %v, want %v", got, want)
	}
	open := &Query{Pred: Exists{Path: SeqOf(Key{Word: "xs"}, Slice{Lo: 2, Hi: 5}), Inner: ValEq{Doc: jsonval.Num(9)}}}
	got = factStrings(open.FindFacts())
	want = []string{"$ kind=object", "/xs kind=array", "/xs/2"}
	if !equalStrings(got, want) {
		t.Fatalf("open-slice facts = %v, want %v", got, want)
	}
	// A prefix ending in a kind-forcing stepless part (KeyRe) keeps the
	// class anchor and suppresses the redundant presence fact — the
	// class posting list is a subset of the presence list.
	regexTail := &Query{Pred: Exists{
		Path:  SeqOf(Key{Word: "a"}, KeyRe{Re: relang.MustCompile("x.*")}),
		Inner: True{}}}
	got = factStrings(regexTail.FindFacts())
	want = []string{"$ kind=object", "/a kind=object"}
	if !equalStrings(got, want) {
		t.Fatalf("regex-tail facts = %v, want %v", got, want)
	}
	// Negation and ForAll yield nothing.
	for _, barren := range []Node{
		Not{Inner: Exists{Path: Key{Word: "a"}, Inner: True{}}},
		ForAll{Path: Key{Word: "a"}, Inner: KindIs{Kind: KindNumber}},
		Or{Left: Exists{Path: Key{Word: "a"}, Inner: True{}}, Right: True{}},
	} {
		if facts := (&Query{Pred: barren}).FindFacts(); len(facts) != 0 {
			t.Fatalf("%s must yield no facts, got %v", String(barren), factStrings(facts))
		}
	}
}

func factStrings(facts []jsontree.PathFact) []string {
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
