//go:build !race

package qir

// raceEnabled mirrors the -race flag; see race_detect_test.go.
const raceEnabled = false
