package qir

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// This file is the QIR executor: Compile turns a logical Query into an
// immutable Program of composable operators, and the Program evaluates
// trees node-at-a-time. The operator set is deliberately iterator-
// shaped: boolean connectives short-circuit, navigation steps visit
// successors lazily and stop at the first witness (Exists) or
// counter-example (ForAll), and the two sources of recursion — Closure
// paths and named definitions — evaluate through per-node memo tables
// so each (operator, node) pair is decided at most once per tree.
//
// Soundness of the closure memo: every moving path step descends
// (parent → child), so a successful Exists-through-closure derivation
// can always be taken over pairwise-distinct nodes within the start
// node's subtree (loops through a node add nothing and can be spliced
// out). The in-progress marker therefore only ever cuts re-entries
// that no minimal derivation needs, and caching the final verdict is
// exact. ForAll-through-closure is the dual (greatest fixpoint):
// re-entry yields true.

// The executor converts qir.Kind to jsontree.Kind by value; these
// constant subtractions fail to compile (unsigned underflow) if the
// two enums ever drift out of alignment.
const (
	_ = uint8(KindObject) - uint8(jsontree.ObjectNode)
	_ = uint8(jsontree.ObjectNode) - uint8(KindObject)
	_ = uint8(KindArray) - uint8(jsontree.ArrayNode)
	_ = uint8(jsontree.ArrayNode) - uint8(KindArray)
	_ = uint8(KindString) - uint8(jsontree.StringNode)
	_ = uint8(jsontree.StringNode) - uint8(KindString)
	_ = uint8(KindNumber) - uint8(jsontree.NumberNode)
	_ = uint8(jsontree.NumberNode) - uint8(KindNumber)
)

// Program is a compiled, immutable physical plan. It is safe for
// concurrent use; all mutable evaluation state lives in the per-call
// state, drawn from a pool on the program so steady-state evaluation
// allocates nothing (see state).
type Program struct {
	query *Query
	pred  predOp
	sel   enumOp // non-nil iff query.Sel != nil
	memos int    // number of memo tables a state must hold

	// pool recycles evaluation states across Match/Eval calls. States
	// are program-specific (the memo table count is fixed at compile
	// time), so the pool lives on the Program rather than the package.
	pool sync.Pool
}

// Compile builds the physical plan for a query. It verifies that every
// Ref resolves to a definition and that unguarded references are
// acyclic (the §5.3 well-formedness condition), since the executor's
// memoized recursion relies on both.
func Compile(q *Query) (*Program, error) {
	c := &compiler{q: q, defs: make(map[string]*defOp, len(q.Defs))}
	if err := c.checkWellFormed(); err != nil {
		return nil, err
	}
	// Create all definition operators first so references resolve, then
	// compile the bodies (which may reference any definition).
	for i := range q.Defs {
		d := &q.Defs[i]
		if _, dup := c.defs[d.Name]; dup {
			return nil, fmt.Errorf("qir: duplicate definition %s", d.Name)
		}
		c.defs[d.Name] = &defOp{name: d.Name, memoID: c.newMemo()}
	}
	for i := range q.Defs {
		d := &q.Defs[i]
		op, err := c.compileNode(d.Body)
		if err != nil {
			return nil, err
		}
		c.defs[d.Name].body = op
	}
	pred, err := c.compileNode(q.Pred)
	if err != nil {
		return nil, err
	}
	p := &Program{query: q, pred: pred}
	if q.Sel != nil {
		p.sel = c.compileEnum(q.Sel)
	}
	// Record the memo count only after every operator — including
	// closure operators reached through selection-path filter
	// conditions, which also draw memo IDs — has been compiled.
	p.memos = c.memos
	return p, nil
}

// MustCompile is Compile but panics on error, for statically known
// queries in tests.
func MustCompile(q *Query) *Program {
	p, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return p
}

// Query returns the logical query the program was compiled from.
func (p *Program) Query() *Query { return p.query }

// Match reports whether the tree's root satisfies the query's match
// predicate (the engine's Validate semantics). Steady-state Match
// performs no allocations: all evaluation state comes from the
// program's pool.
func (p *Program) Match(t *jsontree.Tree) bool {
	st := p.acquire(t)
	v := p.pred.eval(st, t.Root())
	p.release(st)
	return v
}

// MatchCtx is Match with cooperative cancellation: the executor polls
// ctx at its recursion checkpoints (closure steps, definition entries,
// closure-enumeration visits — every cancelCheckEvery of them) and
// returns ctx.Err() when it has fired. A nil ctx is exactly Match:
// the zero-overhead, zero-allocation fast path.
func (p *Program) MatchCtx(ctx context.Context, t *jsontree.Tree) (ok bool, err error) {
	if ctx == nil {
		return p.Match(t), nil
	}
	st := p.acquire(t)
	st.ctx = ctx
	defer func() {
		st.ctx, st.steps = nil, 0
		p.release(st)
		if r := recover(); r != nil {
			c, isCancel := r.(cancelErr)
			if !isCancel {
				panic(r)
			}
			ok, err = false, c.err
		}
	}()
	return p.pred.eval(st, t.Root()), nil
}

// Eval computes the query's node-selection semantics: the nodes
// reachable via the selection path when one is set, otherwise all
// nodes satisfying the match predicate. Results are in ascending node
// order, matching the reference evaluators. The returned slice is
// freshly allocated; EvalAppend is the allocation-free variant for
// callers that reuse a buffer.
func (p *Program) Eval(t *jsontree.Tree) []jsontree.NodeID {
	return p.EvalAppend(t, nil)
}

// EvalAppend is Eval appending into out (which may be nil), returning
// the extended slice — the strconv.AppendInt convention. A caller
// reusing its buffer across calls (out = prog.EvalAppend(t, out[:0]))
// evaluates without allocating once the buffer has grown to the
// working-set size.
func (p *Program) EvalAppend(t *jsontree.Tree, out []jsontree.NodeID) []jsontree.NodeID {
	st := p.acquire(t)
	out = p.evalAppendWith(st, t, out)
	p.release(st)
	return out
}

// EvalAppendCtx is EvalAppend with cooperative cancellation (see
// MatchCtx); it returns nil, ctx.Err() once the context fires. A nil
// ctx is exactly EvalAppend.
func (p *Program) EvalAppendCtx(ctx context.Context, t *jsontree.Tree, out []jsontree.NodeID) (res []jsontree.NodeID, err error) {
	if ctx == nil {
		return p.EvalAppend(t, out), nil
	}
	st := p.acquire(t)
	st.ctx = ctx
	defer func() {
		st.ctx, st.steps = nil, 0
		p.release(st)
		if r := recover(); r != nil {
			c, isCancel := r.(cancelErr)
			if !isCancel {
				panic(r)
			}
			res, err = nil, c.err
		}
	}()
	return p.evalAppendWith(st, t, out), nil
}

// evalAppendWith is the shared body of EvalAppend and EvalAppendCtx;
// the caller owns st's acquire/release.
func (p *Program) evalAppendWith(st *state, t *jsontree.Tree, out []jsontree.NodeID) []jsontree.NodeID {
	n := t.Len()
	if p.sel != nil {
		// Enumerate into a pooled mark set, then emit in ascending node
		// order, matching the reference evaluators.
		seen := st.acquireVisited()
		p.sel.each(st, t.Root(), func(m jsontree.NodeID) bool {
			seen.mark(m)
			return true
		})
		for i := 0; i < n; i++ {
			if seen.marks[i] {
				out = append(out, jsontree.NodeID(i))
			}
		}
		st.releaseVisited(seen)
		return out
	}
	for i := 0; i < n; i++ {
		st.step()
		if p.pred.eval(st, jsontree.NodeID(i)) {
			out = append(out, jsontree.NodeID(i))
		}
	}
	return out
}

// Describe renders the physical operator tree, the "physical plan"
// half of Plan.Explain.
func (p *Program) Describe() string {
	var sb strings.Builder
	if p.sel != nil {
		fmt.Fprintf(&sb, "enumerate %s\n", PathString(p.query.Sel))
	} else {
		sb.WriteString("scan-nodes\n")
	}
	sb.WriteString("filter\n")
	p.pred.describe(&sb, 1)
	return sb.String()
}

// ---- compiler ----

type compiler struct {
	q     *Query
	defs  map[string]*defOp
	memos int
}

func (c *compiler) newMemo() int {
	c.memos++
	return c.memos - 1
}

// checkWellFormed verifies references resolve and the unguarded
// precedence graph is acyclic, mirroring jsl.Recursive.WellFormed.
func (c *compiler) checkWellFormed() error {
	defined := make(map[string]bool, len(c.q.Defs))
	for _, d := range c.q.Defs {
		defined[d.Name] = true
	}
	var err error
	var checkRefs func(n Node)
	var checkPathRefs func(p Path)
	checkRefs = func(n Node) {
		switch t := n.(type) {
		case Ref:
			if !defined[t.Name] && err == nil {
				err = fmt.Errorf("qir: reference to undefined symbol %s", t.Name)
			}
		case Not:
			checkRefs(t.Inner)
		case And:
			checkRefs(t.Left)
			checkRefs(t.Right)
		case Or:
			checkRefs(t.Left)
			checkRefs(t.Right)
		case Exists:
			checkRefs(t.Inner)
			checkPathRefs(t.Path)
		case ForAll:
			checkRefs(t.Inner)
			checkPathRefs(t.Path)
		case EqPaths:
			checkPathRefs(t.Left)
			checkPathRefs(t.Right)
		}
	}
	checkPathRefs = func(p Path) {
		switch t := p.(type) {
		case Filter:
			checkRefs(t.Cond)
		case Seq:
			for _, part := range t.Parts {
				checkPathRefs(part)
			}
		case Union:
			for _, alt := range t.Alts {
				checkPathRefs(alt)
			}
		case Closure:
			checkPathRefs(t.Inner)
		}
	}
	for _, d := range c.q.Defs {
		checkRefs(d.Body)
	}
	checkRefs(c.q.Pred)
	if c.q.Sel != nil {
		checkPathRefs(c.q.Sel)
	}
	if err != nil {
		return err
	}
	// Unguarded-reference cycle detection. A modal operator guards its
	// inner predicate only when its path is moving — guaranteed to
	// descend at least one tree edge — because the executor's memoized
	// recursion re-enters at the same node through non-moving paths
	// (ε, filters, closures taken zero times). Refs inside path filter
	// conditions are treated as unguarded outright: a filter runs at
	// whatever node the pipeline has reached, which conservatively may
	// be the starting node.
	unguarded := func(body Node) []string {
		seen := map[string]bool{}
		var walk func(n Node)
		var walkPathFilters func(p Path)
		walk = func(n Node) {
			switch t := n.(type) {
			case Ref:
				seen[t.Name] = true
			case Not:
				walk(t.Inner)
			case And:
				walk(t.Left)
				walk(t.Right)
			case Or:
				walk(t.Left)
				walk(t.Right)
			case Exists:
				if !movingPath(t.Path) {
					walk(t.Inner)
				}
				walkPathFilters(t.Path)
			case ForAll:
				if !movingPath(t.Path) {
					walk(t.Inner)
				}
				walkPathFilters(t.Path)
			case EqPaths:
				walkPathFilters(t.Left)
				walkPathFilters(t.Right)
			}
		}
		walkPathFilters = func(p Path) {
			switch t := p.(type) {
			case Filter:
				walk(t.Cond)
			case Seq:
				for _, part := range t.Parts {
					walkPathFilters(part)
				}
			case Union:
				for _, alt := range t.Alts {
					walkPathFilters(alt)
				}
			case Closure:
				walkPathFilters(t.Inner)
			}
		}
		walk(body)
		out := make([]string, 0, len(seen))
		for _, d := range c.q.Defs {
			if seen[d.Name] {
				out = append(out, d.Name)
			}
		}
		return out
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var visit func(name string, body Node) error
	visit = func(name string, body Node) error {
		switch state[name] {
		case inStack:
			return fmt.Errorf("qir: unguarded reference cycle through %s", name)
		case done:
			return nil
		}
		state[name] = inStack
		for _, m := range unguarded(body) {
			b, _ := c.q.Def(m)
			if err := visit(m, b); err != nil {
				return err
			}
		}
		state[name] = done
		return nil
	}
	for _, d := range c.q.Defs {
		if err := visit(d.Name, d.Body); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileNode(n Node) (predOp, error) {
	switch t := n.(type) {
	case True:
		return trueOp{}, nil
	case Not:
		inner, err := c.compileNode(t.Inner)
		if err != nil {
			return nil, err
		}
		return &notOp{inner: inner}, nil
	case And:
		l, err := c.compileNode(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.compileNode(t.Right)
		if err != nil {
			return nil, err
		}
		return &andOp{left: l, right: r}, nil
	case Or:
		l, err := c.compileNode(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.compileNode(t.Right)
		if err != nil {
			return nil, err
		}
		return &orOp{left: l, right: r}, nil
	case KindIs:
		return kindOp{kind: jsontree.Kind(t.Kind)}, nil
	case ValEq:
		return &valEqOp{doc: t.Doc, hash: t.Doc.Hash(), size: t.Doc.Size()}, nil
	case StrMatch:
		return &strMatchOp{re: t.Re}, nil
	case NumGE:
		return numGEOp{n: t.N}, nil
	case NumLE:
		return numLEOp{n: t.N}, nil
	case NumMultOf:
		return numMultOfOp{n: t.N}, nil
	case ChMin:
		return chMinOp{k: t.K}, nil
	case ChMax:
		return chMaxOp{k: t.K}, nil
	case Unique:
		return uniqueOp{}, nil
	case Exists:
		inner, err := c.compileNode(t.Inner)
		if err != nil {
			return nil, err
		}
		return c.compileExists(t.Path, inner)
	case ForAll:
		inner, err := c.compileNode(t.Inner)
		if err != nil {
			return nil, err
		}
		return c.compileForAll(t.Path, inner)
	case EqPaths:
		return &eqPathsOp{
			left: c.compileEnum(t.Left), right: c.compileEnum(t.Right),
			leftLabel: PathString(t.Left), rightLabel: PathString(t.Right),
		}, nil
	case Ref:
		d, ok := c.defs[t.Name]
		if !ok {
			return nil, fmt.Errorf("qir: reference to undefined symbol %s", t.Name)
		}
		return &refOp{def: d}, nil
	}
	return nil, fmt.Errorf("qir: unknown node %T", n)
}

// compileExists builds the operator for "some path-successor satisfies
// k", in continuation style: each step operator holds the rest of the
// pipeline, so evaluation walks the tree node-at-a-time and stops at
// the first witness.
func (c *compiler) compileExists(p Path, k predOp) (predOp, error) {
	switch t := p.(type) {
	case Here:
		return k, nil
	case Key:
		return &keyStepOp{word: t.Word, next: k, forAll: false}, nil
	case KeyRe:
		return &keyReStepOp{re: t.Re, next: k, forAll: false}, nil
	case At:
		return &atStepOp{index: t.Index, next: k, forAll: false}, nil
	case Slice:
		return &sliceStepOp{lo: t.Lo, hi: t.Hi, next: k, forAll: false}, nil
	case Filter:
		cond, err := c.compileNode(t.Cond)
		if err != nil {
			return nil, err
		}
		return &filterOp{cond: cond, next: k}, nil
	case Seq:
		out := k
		for i := len(t.Parts) - 1; i >= 0; i-- {
			var err error
			out, err = c.compileExists(t.Parts[i], out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case Union:
		alts := make([]predOp, len(t.Alts))
		for i, a := range t.Alts {
			op, err := c.compileExists(a, k)
			if err != nil {
				return nil, err
			}
			alts[i] = op
		}
		return &anyOfOp{alts: alts}, nil
	case Closure:
		op := &closureOp{memoID: c.newMemo(), tail: k, forAll: false, label: PathString(p)}
		step, err := c.compileExists(t.Inner, op)
		if err != nil {
			return nil, err
		}
		op.step = step
		return op, nil
	}
	return nil, fmt.Errorf("qir: unknown path %T", p)
}

// compileForAll is the dual pipeline: "every path-successor satisfies
// k", vacuously true without successors, stopping at the first
// counter-example.
func (c *compiler) compileForAll(p Path, k predOp) (predOp, error) {
	switch t := p.(type) {
	case Here:
		return k, nil
	case Key:
		return &keyStepOp{word: t.Word, next: k, forAll: true}, nil
	case KeyRe:
		return &keyReStepOp{re: t.Re, next: k, forAll: true}, nil
	case At:
		return &atStepOp{index: t.Index, next: k, forAll: true}, nil
	case Slice:
		return &sliceStepOp{lo: t.Lo, hi: t.Hi, next: k, forAll: true}, nil
	case Filter:
		cond, err := c.compileNode(t.Cond)
		if err != nil {
			return nil, err
		}
		// ∀⟨φ⟩.k ≡ φ → k.
		return &implOp{cond: cond, next: k}, nil
	case Seq:
		out := k
		for i := len(t.Parts) - 1; i >= 0; i-- {
			var err error
			out, err = c.compileForAll(t.Parts[i], out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case Union:
		alts := make([]predOp, len(t.Alts))
		for i, a := range t.Alts {
			op, err := c.compileForAll(a, k)
			if err != nil {
				return nil, err
			}
			alts[i] = op
		}
		return &allOfOp{alts: alts}, nil
	case Closure:
		op := &closureOp{memoID: c.newMemo(), tail: k, forAll: true, label: PathString(p)}
		step, err := c.compileForAll(t.Inner, op)
		if err != nil {
			return nil, err
		}
		op.step = step
		return op, nil
	}
	return nil, fmt.Errorf("qir: unknown path %T", p)
}

// movingPath reports whether every successful traversal of the path
// descends at least one tree edge — the property that makes a modal
// operator a recursion guard.
func movingPath(p Path) bool {
	switch t := p.(type) {
	case Key, KeyRe, At, Slice:
		return true
	case Seq:
		for _, part := range t.Parts {
			if movingPath(part) {
				return true
			}
		}
		return false
	case Union:
		if len(t.Alts) == 0 {
			return false
		}
		for _, alt := range t.Alts {
			if !movingPath(alt) {
				return false
			}
		}
		return true
	}
	// Here, Filter, Closure (zero iterations): may succeed in place.
	return false
}

// compileEnum builds a successor enumerator for a path, used by path
// selection (JSONPath) and EqPaths. Enumerators may yield a node more
// than once (unions, sequences after closures); collection points
// deduplicate.
func (c *compiler) compileEnum(p Path) enumOp {
	switch t := p.(type) {
	case Here:
		return hereEnum{}
	case Key:
		return keyEnum{word: t.Word}
	case KeyRe:
		return keyReEnum{re: t.Re}
	case At:
		return atEnum{index: t.Index}
	case Slice:
		return sliceEnum{lo: t.Lo, hi: t.Hi}
	case Filter:
		cond, err := c.compileNode(t.Cond)
		if err != nil {
			// Node compilation only fails on unresolved references, which
			// checkWellFormed has already rejected.
			panic(err)
		}
		return filterEnum{cond: cond}
	case Seq:
		out := enumOp(hereEnum{})
		for i := len(t.Parts) - 1; i >= 0; i-- {
			out = seqEnum{head: c.compileEnum(t.Parts[i]), tail: out}
		}
		return out
	case Union:
		alts := make([]enumOp, len(t.Alts))
		for i, a := range t.Alts {
			alts[i] = c.compileEnum(a)
		}
		return unionEnum{alts: alts}
	case Closure:
		return closureEnum{inner: c.compileEnum(t.Inner)}
	}
	panic(fmt.Sprintf("qir: unknown path %T", p))
}

// ---- per-evaluation state ----

// memo verdict codes. Unknown must be the zero value.
const (
	memoUnknown int8 = iota
	memoInProgress
	memoFalse
	memoTrue
)

// regexMemoCap bounds the cross-tree regex memo: once the total entry
// count passes the cap, the whole memo is dropped on the next acquire.
// The bound keeps a pooled state from pinning every string of every
// tree it ever evaluated.
const regexMemoCap = 1 << 12

// state is the mutable evaluation state of one Match/Eval call. States
// are pooled on the Program and reused: memo slices keep their backing
// arrays between evaluations (re-zeroed per tree), the regex memo is a
// genuine cross-tree cache (a regex verdict depends only on the regex
// and the string, not the tree), and visited scratch sets recycle
// through a freelist. After warm-up an evaluation allocates nothing.
type state struct {
	t          *jsontree.Tree
	memos      [][]int8
	uniqueMemo []int8 // memo codes per node for UniqueChildren (no in-progress state)
	regexMemo  map[*relang.Regex]map[string]bool
	regexLen   int // total entries across the inner maps, against regexMemoCap

	// scratch is the freelist of visited sets for closure enumeration
	// (and Eval's selection marks). A freelist rather than a single set
	// because enumerations nest: a closure inside a filter inside
	// another closure needs its own marks.
	scratch []*visitSet

	// nodeBuf is the sort buffer of the uniqueness check.
	nodeBuf []jsontree.NodeID

	// ctx arms cooperative cancellation for the *Ctx entry points; nil
	// (the Match/Eval fast paths) makes step a single branch. steps
	// counts checkpoints so ctx is polled once per cancelCheckEvery.
	ctx   context.Context
	steps int
}

// cancelCheckEvery is how many executor checkpoints (closure steps,
// definition entries, enumeration visits, scanned nodes) pass between
// context polls. A power of two so the modulus is a mask; small
// enough that a cancelled query unwinds in well under a millisecond
// of residual work.
const cancelCheckEvery = 1024

// cancelErr carries ctx.Err() out of the operator recursion as a
// panic; the *Ctx entry points recover it. A panic rather than
// threaded error returns keeps the operator signatures — and the
// zero-allocation nil-ctx paths — untouched.
type cancelErr struct{ err error }

// step is the cancellation checkpoint, inlined into the recursion
// sites that bound how long evaluation can run between polls.
func (st *state) step() {
	if st.ctx == nil {
		return
	}
	st.steps++
	if st.steps&(cancelCheckEvery-1) == 0 {
		if err := st.ctx.Err(); err != nil {
			panic(cancelErr{err})
		}
	}
}

// acquire returns a ready state for evaluating t: pooled if available,
// fresh otherwise, with every per-tree memo cleared.
func (p *Program) acquire(t *jsontree.Tree) *state {
	st, _ := p.pool.Get().(*state)
	if st == nil {
		st = &state{memos: make([][]int8, p.memos)}
	}
	st.t = t
	n := t.Len()
	for i, m := range st.memos {
		if cap(m) >= n {
			m = m[:n]
			clear(m)
			st.memos[i] = m
		} else {
			st.memos[i] = nil // re-sized lazily on first use
		}
	}
	if cap(st.uniqueMemo) >= n {
		st.uniqueMemo = st.uniqueMemo[:n]
		clear(st.uniqueMemo)
	} else {
		st.uniqueMemo = nil
	}
	if st.regexLen > regexMemoCap {
		st.regexMemo, st.regexLen = nil, 0
	}
	return st
}

// release returns the state to the program's pool. The tree reference
// is dropped so a pooled state never keeps a tree alive.
func (p *Program) release(st *state) {
	st.t = nil
	p.pool.Put(st)
}

func (st *state) memo(id int) []int8 {
	m := st.memos[id]
	if m == nil {
		m = make([]int8, st.t.Len())
		st.memos[id] = m
	}
	return m
}

func (st *state) matchRe(re *relang.Regex, s string) bool {
	if st.regexMemo == nil {
		st.regexMemo = make(map[*relang.Regex]map[string]bool)
	}
	memo, ok := st.regexMemo[re]
	if !ok {
		memo = make(map[string]bool)
		st.regexMemo[re] = memo
	}
	m, seen := memo[s]
	if !seen {
		m = re.Match(s)
		memo[s] = m
		st.regexLen++
	}
	return m
}

func (st *state) unique(n jsontree.NodeID) bool {
	if st.uniqueMemo == nil {
		st.uniqueMemo = make([]int8, st.t.Len())
	}
	switch st.uniqueMemo[n] {
	case memoTrue:
		return true
	case memoFalse:
		return false
	}
	u := st.uniqueCheck(n)
	if u {
		st.uniqueMemo[n] = memoTrue
	} else {
		st.uniqueMemo[n] = memoFalse
	}
	return u
}

// uniqueCheck is jsontree.UniqueChildren re-done over pooled scratch:
// children are sorted by subtree hash into the state's node buffer and
// compared structurally only within equal-hash runs, so hash
// collisions cannot produce a false "unique" and the steady state
// allocates nothing (the tree method buckets through a fresh map).
func (st *state) uniqueCheck(n jsontree.NodeID) bool {
	t := st.t
	kids := t.Children(n)
	if len(kids) < 2 {
		return true
	}
	buf := append(st.nodeBuf[:0], kids...)
	st.nodeBuf = buf
	slices.SortFunc(buf, func(a, b jsontree.NodeID) int {
		ha, hb := t.SubtreeHash(a), t.SubtreeHash(b)
		switch {
		case ha < hb:
			return -1
		case ha > hb:
			return 1
		}
		return 0
	})
	for i := 0; i < len(buf); {
		j := i + 1
		for j < len(buf) && t.SubtreeHash(buf[j]) == t.SubtreeHash(buf[i]) {
			j++
		}
		for a := i; a < j; a++ {
			for b := a + 1; b < j; b++ {
				if t.SubtreeEqual(buf[a], buf[b]) {
					return false
				}
			}
		}
		i = j
	}
	return true
}

// visitSet is a reusable node mark set: marks is sized to the tree,
// touched records which marks were set so release can undo them in
// O(set size) instead of O(tree size).
type visitSet struct {
	marks   []bool
	touched []jsontree.NodeID
}

// mark marks n, recording it for cleanup; it reports nothing — use
// marks[n] to test membership first where the answer matters.
func (v *visitSet) mark(n jsontree.NodeID) {
	if !v.marks[n] {
		v.marks[n] = true
		v.touched = append(v.touched, n)
	}
}

// acquireVisited returns a clear visit set sized to the current tree,
// reusing a freelisted one when available.
func (st *state) acquireVisited() *visitSet {
	n := st.t.Len()
	if k := len(st.scratch); k > 0 {
		v := st.scratch[k-1]
		st.scratch = st.scratch[:k-1]
		if cap(v.marks) >= n {
			v.marks = v.marks[:n]
			return v
		}
		v.marks = make([]bool, n)
		return v
	}
	return &visitSet{marks: make([]bool, n)}
}

// releaseVisited unmarks everything the set touched and freelists it.
func (st *state) releaseVisited(v *visitSet) {
	for _, n := range v.touched {
		v.marks[n] = false
	}
	v.touched = v.touched[:0]
	st.scratch = append(st.scratch, v)
}

// ---- predicate operators ----

type predOp interface {
	eval(st *state, n jsontree.NodeID) bool
	describe(sb *strings.Builder, depth int)
}

func ind(sb *strings.Builder, depth int, s string) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(s)
	sb.WriteByte('\n')
}

type trueOp struct{}

func (trueOp) eval(*state, jsontree.NodeID) bool       { return true }
func (trueOp) describe(sb *strings.Builder, depth int) { ind(sb, depth, "true") }

type notOp struct{ inner predOp }

func (o *notOp) eval(st *state, n jsontree.NodeID) bool { return !o.inner.eval(st, n) }
func (o *notOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "not")
	o.inner.describe(sb, depth+1)
}

type andOp struct{ left, right predOp }

func (o *andOp) eval(st *state, n jsontree.NodeID) bool {
	return o.left.eval(st, n) && o.right.eval(st, n)
}
func (o *andOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "and")
	o.left.describe(sb, depth+1)
	o.right.describe(sb, depth+1)
}

type orOp struct{ left, right predOp }

func (o *orOp) eval(st *state, n jsontree.NodeID) bool {
	return o.left.eval(st, n) || o.right.eval(st, n)
}
func (o *orOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "or")
	o.left.describe(sb, depth+1)
	o.right.describe(sb, depth+1)
}

type anyOfOp struct{ alts []predOp }

func (o *anyOfOp) eval(st *state, n jsontree.NodeID) bool {
	for _, a := range o.alts {
		if a.eval(st, n) {
			return true
		}
	}
	return false
}
func (o *anyOfOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "any-of")
	for _, a := range o.alts {
		a.describe(sb, depth+1)
	}
}

type allOfOp struct{ alts []predOp }

func (o *allOfOp) eval(st *state, n jsontree.NodeID) bool {
	for _, a := range o.alts {
		if !a.eval(st, n) {
			return false
		}
	}
	return true
}
func (o *allOfOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "all-of")
	for _, a := range o.alts {
		a.describe(sb, depth+1)
	}
}

type kindOp struct{ kind jsontree.Kind }

func (o kindOp) eval(st *state, n jsontree.NodeID) bool { return st.t.Kind(n) == o.kind }
func (o kindOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "kind="+o.kind.String())
}

type valEqOp struct {
	doc  *jsonval.Value
	hash uint64
	size int
}

func (o *valEqOp) eval(st *state, n jsontree.NodeID) bool {
	return st.t.SubtreeHash(n) == o.hash && st.t.SubtreeSize(n) == o.size &&
		st.t.EqualsValue(n, o.doc)
}
func (o *valEqOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "eq "+o.doc.String())
}

type strMatchOp struct{ re *relang.Regex }

func (o *strMatchOp) eval(st *state, n jsontree.NodeID) bool {
	return st.t.Kind(n) == jsontree.StringNode && st.matchRe(o.re, st.t.StringVal(n))
}
func (o *strMatchOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("match %q", o.re.String()))
}

type numGEOp struct{ n uint64 }

func (o numGEOp) eval(st *state, n jsontree.NodeID) bool {
	return st.t.Kind(n) == jsontree.NumberNode && st.t.NumberVal(n) >= o.n
}
func (o numGEOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("num>=%d", o.n))
}

type numLEOp struct{ n uint64 }

func (o numLEOp) eval(st *state, n jsontree.NodeID) bool {
	return st.t.Kind(n) == jsontree.NumberNode && st.t.NumberVal(n) <= o.n
}
func (o numLEOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("num<=%d", o.n))
}

type numMultOfOp struct{ n uint64 }

func (o numMultOfOp) eval(st *state, n jsontree.NodeID) bool {
	if st.t.Kind(n) != jsontree.NumberNode {
		return false
	}
	if o.n == 0 {
		return st.t.NumberVal(n) == 0
	}
	return st.t.NumberVal(n)%o.n == 0
}
func (o numMultOfOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("num%%%d=0", o.n))
}

type chMinOp struct{ k int }

func (o chMinOp) eval(st *state, n jsontree.NodeID) bool { return st.t.NumChildren(n) >= o.k }
func (o chMinOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("children>=%d", o.k))
}

type chMaxOp struct{ k int }

func (o chMaxOp) eval(st *state, n jsontree.NodeID) bool { return st.t.NumChildren(n) <= o.k }
func (o chMaxOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("children<=%d", o.k))
}

type uniqueOp struct{}

func (uniqueOp) eval(st *state, n jsontree.NodeID) bool {
	return st.t.Kind(n) == jsontree.ArrayNode && st.unique(n)
}
func (uniqueOp) describe(sb *strings.Builder, depth int) { ind(sb, depth, "unique") }

// ---- navigation step operators ----

// keyStepOp navigates one keyed edge. Objects have at most one child
// per key, so the existential and universal variants coincide up to
// the verdict on absence.
type keyStepOp struct {
	word   string
	next   predOp
	forAll bool
}

func (o *keyStepOp) eval(st *state, n jsontree.NodeID) bool {
	c := st.t.ChildByKey(n, o.word)
	if c == jsontree.InvalidNode {
		return o.forAll
	}
	return o.next.eval(st, c)
}
func (o *keyStepOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("%s /%s", stepName(o.forAll), o.word))
	o.next.describe(sb, depth+1)
}

type keyReStepOp struct {
	re     *relang.Regex
	next   predOp
	forAll bool
}

func (o *keyReStepOp) eval(st *state, n jsontree.NodeID) bool {
	t := st.t
	if t.Kind(n) != jsontree.ObjectNode {
		return o.forAll
	}
	for _, c := range t.Children(n) {
		if !st.matchRe(o.re, t.EdgeKey(c)) {
			continue
		}
		if o.next.eval(st, c) != o.forAll {
			return !o.forAll
		}
	}
	return o.forAll
}
func (o *keyReStepOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("%s /~%q", stepName(o.forAll), o.re.String()))
	o.next.describe(sb, depth+1)
}

type atStepOp struct {
	index  int
	next   predOp
	forAll bool
}

func (o *atStepOp) eval(st *state, n jsontree.NodeID) bool {
	c := st.t.ChildAt(n, o.index)
	if c == jsontree.InvalidNode {
		return o.forAll
	}
	return o.next.eval(st, c)
}
func (o *atStepOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("%s /%d", stepName(o.forAll), o.index))
	o.next.describe(sb, depth+1)
}

type sliceStepOp struct {
	lo, hi int
	next   predOp
	forAll bool
}

func (o *sliceStepOp) eval(st *state, n jsontree.NodeID) bool {
	t := st.t
	if t.Kind(n) != jsontree.ArrayNode {
		return o.forAll
	}
	for _, c := range t.ChildrenInRange(n, o.lo, o.hi) {
		if o.next.eval(st, c) != o.forAll {
			return !o.forAll
		}
	}
	return o.forAll
}
func (o *sliceStepOp) describe(sb *strings.Builder, depth int) {
	hi := "∞"
	if o.hi != Inf {
		hi = fmt.Sprintf("%d", o.hi)
	}
	ind(sb, depth, fmt.Sprintf("%s /[%d:%s]", stepName(o.forAll), o.lo, hi))
	o.next.describe(sb, depth+1)
}

func stepName(forAll bool) string {
	if forAll {
		return "all"
	}
	return "step"
}

// filterOp gates the pipeline on a same-node condition (Exists).
type filterOp struct {
	cond predOp
	next predOp
}

func (o *filterOp) eval(st *state, n jsontree.NodeID) bool {
	return o.cond.eval(st, n) && o.next.eval(st, n)
}
func (o *filterOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "filter")
	o.cond.describe(sb, depth+1)
	o.next.describe(sb, depth+1)
}

// implOp is filterOp's ForAll dual: condition fails → vacuously true.
type implOp struct {
	cond predOp
	next predOp
}

func (o *implOp) eval(st *state, n jsontree.NodeID) bool {
	return !o.cond.eval(st, n) || o.next.eval(st, n)
}
func (o *implOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, "implies")
	o.cond.describe(sb, depth+1)
	o.next.describe(sb, depth+1)
}

// closureOp evaluates Kleene-star navigation with a per-node memo
// table: Exists-closure is the least fixpoint tail(n) ∨ ∃step, with
// in-progress re-entry yielding false; ForAll-closure is the greatest
// fixpoint tail(n) ∧ ∀step with re-entry yielding true. See the file
// comment for why the memo is exact.
type closureOp struct {
	memoID int
	label  string
	tail   predOp
	step   predOp // compiled from the closure body with this op as continuation
	forAll bool
}

func (o *closureOp) eval(st *state, n jsontree.NodeID) bool {
	st.step()
	m := st.memo(o.memoID)
	switch m[n] {
	case memoTrue:
		return true
	case memoFalse:
		return false
	case memoInProgress:
		return o.forAll
	}
	m[n] = memoInProgress
	var v bool
	if o.forAll {
		v = o.tail.eval(st, n) && o.step.eval(st, n)
	} else {
		v = o.tail.eval(st, n) || o.step.eval(st, n)
	}
	if v {
		m[n] = memoTrue
	} else {
		m[n] = memoFalse
	}
	return v
}
func (o *closureOp) describe(sb *strings.Builder, depth int) {
	mode := "exists"
	if o.forAll {
		mode = "all"
	}
	ind(sb, depth, fmt.Sprintf("%s %s [memo #%d]", mode, o.label, o.memoID))
	o.tail.describe(sb, depth+1)
}

// defOp is a named definition; Refs route through it so every
// (definition, node) verdict is computed at most once per tree.
type defOp struct {
	name   string
	memoID int
	body   predOp
}

func (o *defOp) eval(st *state, n jsontree.NodeID) bool {
	st.step()
	m := st.memo(o.memoID)
	switch m[n] {
	case memoTrue:
		return true
	case memoFalse:
		return false
	case memoInProgress:
		// Unreachable for queries that passed checkWellFormed: guarded
		// cycles re-enter only at strictly deeper nodes.
		panic("qir: unguarded recursion through " + o.name)
	}
	m[n] = memoInProgress
	v := o.body.eval(st, n)
	if v {
		m[n] = memoTrue
	} else {
		m[n] = memoFalse
	}
	return v
}

type refOp struct{ def *defOp }

func (o *refOp) eval(st *state, n jsontree.NodeID) bool { return o.def.eval(st, n) }
func (o *refOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("ref %s [memo #%d]", o.def.name, o.def.memoID))
}

// eqPathsOp evaluates EQ(π₁, π₂): enumerate the left successors into
// hash buckets, then stream the right successors against them,
// verifying structurally so hash collisions cannot produce a false
// positive.
type eqPathsOp struct {
	left, right           enumOp
	leftLabel, rightLabel string
}

func (o *eqPathsOp) eval(st *state, n jsontree.NodeID) bool {
	t := st.t
	// The bucket map is per-call: EqPaths is the one operator off the
	// zero-allocation path (it is also the one with cubic worst-case
	// cost, so the allocation is never what dominates).
	buckets := make(map[uint64][]jsontree.NodeID)
	o.left.each(st, n, func(m jsontree.NodeID) bool {
		buckets[t.SubtreeHash(m)] = append(buckets[t.SubtreeHash(m)], m)
		return true
	})
	if len(buckets) == 0 {
		return false
	}
	found := false
	o.right.each(st, n, func(m jsontree.NodeID) bool {
		for _, l := range buckets[t.SubtreeHash(m)] {
			if t.SubtreeEqual(l, m) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
func (o *eqPathsOp) describe(sb *strings.Builder, depth int) {
	ind(sb, depth, fmt.Sprintf("eqpaths %s ~ %s", o.leftLabel, o.rightLabel))
}

// ---- successor enumerators ----

// enumOp enumerates the successors of a node under a path. each
// returns false when the yield callback stopped the enumeration early.
// Enumerators may yield duplicates; collection points deduplicate.
type enumOp interface {
	each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool
}

type hereEnum struct{}

func (hereEnum) each(_ *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	return yield(n)
}

type keyEnum struct{ word string }

func (e keyEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	if c := st.t.ChildByKey(n, e.word); c != jsontree.InvalidNode {
		return yield(c)
	}
	return true
}

type keyReEnum struct{ re *relang.Regex }

func (e keyReEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	t := st.t
	if t.Kind(n) != jsontree.ObjectNode {
		return true
	}
	for _, c := range t.Children(n) {
		if st.matchRe(e.re, t.EdgeKey(c)) && !yield(c) {
			return false
		}
	}
	return true
}

type atEnum struct{ index int }

func (e atEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	if c := st.t.ChildAt(n, e.index); c != jsontree.InvalidNode {
		return yield(c)
	}
	return true
}

type sliceEnum struct{ lo, hi int }

func (e sliceEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	t := st.t
	if t.Kind(n) != jsontree.ArrayNode {
		return true
	}
	for _, c := range t.ChildrenInRange(n, e.lo, e.hi) {
		if !yield(c) {
			return false
		}
	}
	return true
}

type filterEnum struct{ cond predOp }

func (e filterEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	if e.cond.eval(st, n) {
		return yield(n)
	}
	return true
}

type seqEnum struct{ head, tail enumOp }

func (e seqEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	return e.head.each(st, n, func(m jsontree.NodeID) bool {
		return e.tail.each(st, m, yield)
	})
}

type unionEnum struct{ alts []enumOp }

func (e unionEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	for _, a := range e.alts {
		if !a.each(st, n, yield) {
			return false
		}
	}
	return true
}

// closureEnum enumerates reflexive-transitive reachability with a
// pooled visited set, so each node is yielded (and expanded) once per
// enumeration. Enumerations nest (a filter inside the closure body may
// enumerate another closure), which is why the visited set comes from
// the state's freelist rather than being a singleton.
type closureEnum struct{ inner enumOp }

func (e closureEnum) each(st *state, n jsontree.NodeID, yield func(jsontree.NodeID) bool) bool {
	visited := st.acquireVisited()
	var walk func(m jsontree.NodeID) bool
	walk = func(m jsontree.NodeID) bool {
		st.step()
		if visited.marks[m] {
			return true
		}
		visited.mark(m)
		if !yield(m) {
			return false
		}
		return e.inner.each(st, m, walk)
	}
	v := walk(n)
	st.releaseVisited(visited)
	return v
}
