package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"jsonlogic/internal/containment"
	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonpath"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/mongoq"
)

// The metamorphic containment harness: the paper's containment
// procedure makes claims about query *results* — P ⊑ Q means every
// document matching P matches Q — so every claim is checked against
// actual executions. For ≥1000 random query pairs per front end the
// harness decides containment both ways and then asserts, on a random
// collection:
//
//   - P ⊑ Q        ⇒ Find(P) ⊆ Find(Q)
//   - P ≡ Q        ⇒ Find(P) = Find(Q), element for element
//   - P ⋢ Q        ⇒ the returned counterexample document satisfies P
//     and refutes Q under the production evaluator — the witness is
//     re-verified, never trusted
//
// Half the pairs are random-random (mostly incomparable — they
// exercise the counterexample branch); half are related by
// construction (conjunction strengthening, path extension), so the
// contained branch is exercised densely too. Budget-exhausted checks
// are skipped: ErrBudget means "unknown", and unknown claims nothing.

// semDiffPairs is the number of query pairs per front end.
const semDiffPairs = 1050

// semDiffDocs is the random collection size the claims are checked on.
const semDiffDocs = 32

// semDiffCaps bounds each containment decision. Deliberately larger
// than the daemon's per-compile budget: the harness wants verdicts to
// check, not compile latency.
func semDiffCaps() jauto.Caps {
	c := jauto.DefaultCaps()
	c.MaxSteps = 200000
	return c
}

// semPair is one generated query pair with its decidable JSL forms.
type semPair struct {
	srcP, srcQ string
	jslP, jslQ *jsl.Recursive
}

// toRecursiveJSL mirrors the engine's recursiveJSLForm: the front-end
// source translated into the form the decision procedures work on, or
// nil when outside the decidable fragment.
func toRecursiveJSL(t *testing.T, lang engine.Language, src string) *jsl.Recursive {
	t.Helper()
	switch lang {
	case engine.LangJNL:
		u, err := jnl.Parse(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not parse: %v", src, err)
		}
		r, err := jauto.JNLToRecursiveJSL(u)
		if err != nil {
			return nil
		}
		return r
	case engine.LangJSL:
		r, err := jsl.ParseRecursive(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not parse: %v", src, err)
		}
		return r
	case engine.LangMongoFind:
		f, err := mongoq.Parse(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not parse: %v", src, err)
		}
		return jsl.NonRecursive(f.Formula())
	case engine.LangJSONPath:
		jp, err := jsonpath.Compile(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not compile: %v", src, err)
		}
		r, err := jauto.JNLToRecursiveJSL(jnl.Exists{Path: jp.Binary()})
		if err != nil {
			return nil
		}
		return r
	}
	return nil
}

// relatedPair builds a pair contained by construction: P strengthens Q
// (conjunction for the boolean front ends, a path extension for
// JSONPath), so P ⊑ Q semantically — the procedure must agree unless
// the budget runs out.
func relatedPair(r *rand.Rand, lang engine.Language) (srcP, srcQ string) {
	switch lang {
	case engine.LangJNL:
		q := gen.RandomJNLSource(r, 1)
		return "(" + q + " && " + gen.RandomJNLSource(r, 1) + ")", q
	case engine.LangJSL:
		q := gen.RandomJSLSource(r, 1)
		return "(" + q + " && " + gen.RandomJSLSource(r, 1) + ")", q
	case engine.LangMongoFind:
		q := gen.RandomMongoSource(r, 1)
		return fmt.Sprintf(`{"$and":[%s,%s]}`, q, gen.RandomMongoSource(r, 1)), q
	case engine.LangJSONPath:
		// Steps are self-delimiting, so appending to any generated path
		// is syntactically valid; semantically P's selections are reached
		// through Q's, so "P selects ≥1 node" implies the same for Q.
		q := gen.RandomJSONPathSource(r)
		ext := []string{".k0", "[0]", ".*", "[?(@.k1)]"}[r.Intn(4)]
		return q + ext, q
	}
	panic("unreachable")
}

func randomPair(r *rand.Rand, lang engine.Language) (srcP, srcQ string) {
	switch lang {
	case engine.LangJNL:
		return gen.RandomJNLSource(r, 2), gen.RandomJNLSource(r, 2)
	case engine.LangJSL:
		return gen.RandomJSLSource(r, 2), gen.RandomJSLSource(r, 2)
	case engine.LangMongoFind:
		return gen.RandomMongoSource(r, 2), gen.RandomMongoSource(r, 2)
	case engine.LangJSONPath:
		return gen.RandomJSONPathSource(r), gen.RandomJSONPathSource(r)
	}
	panic("unreachable")
}

// subsetOf reports a ⊆ b for sorted ID slices.
func subsetOf(a, b []string) bool {
	j := 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j >= len(b) || b[j] != id {
			return false
		}
	}
	return true
}

// runSemanticDifferential drives one front end through the harness.
func runSemanticDifferential(t *testing.T, seed int64, lang engine.Language) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	eng := engine.New(engine.Options{PlanCacheSize: 128})
	caps := semDiffCaps()
	docOpts := gen.DocOptions{Fanout: 3, Depth: 3, Keys: 12, ArrayBias: 40, ValueRange: 20}

	var s *Store
	decided, contained, refuted := 0, 0, 0
	for i := 0; i < semDiffPairs; i++ {
		// Rotate the collection so the claims are checked against many
		// document shapes, not one lucky draw.
		if i%50 == 0 {
			s = New(Options{Shards: 4, Engine: eng})
			for d := 0; d < semDiffDocs; d++ {
				s.PutTree(fmt.Sprintf("doc%03d", d), jsontree.FromValue(gen.Document(r, docOpts)))
			}
		}
		var srcP, srcQ string
		if i%2 == 0 {
			srcP, srcQ = relatedPair(r, lang)
		} else {
			srcP, srcQ = randomPair(r, lang)
		}
		jslP := toRecursiveJSL(t, lang, srcP)
		jslQ := toRecursiveJSL(t, lang, srcQ)
		if jslP == nil || jslQ == nil {
			continue // outside the decidable fragment (EQ(α,β), …)
		}
		pq, err := containment.RecursiveCaps(jslP, jslQ, caps)
		if err != nil {
			if errors.Is(err, jauto.ErrBudget) {
				continue // unknown claims nothing
			}
			t.Fatalf("containment(%q, %q): %v", srcP, srcQ, err)
		}
		decided++

		planP, err := eng.Compile(lang, srcP)
		if err != nil {
			t.Fatalf("compile %q: %v", srcP, err)
		}
		planQ, err := eng.Compile(lang, srcQ)
		if err != nil {
			t.Fatalf("compile %q: %v", srcQ, err)
		}

		if !pq.Contained {
			// The procedure claims a separating document exists and hands
			// it over; the production evaluator must agree on both sides.
			refuted++
			if pq.Counterexample == nil {
				t.Fatalf("not-contained verdict without counterexample: %q vs %q", srcP, srcQ)
			}
			w := jsontree.FromValue(pq.Counterexample)
			okP, err := eng.Validate(planP, w)
			if err != nil {
				t.Fatalf("validate witness against %q: %v", srcP, err)
			}
			okQ, err := eng.Validate(planQ, w)
			if err != nil {
				t.Fatalf("validate witness against %q: %v", srcQ, err)
			}
			if !okP || okQ {
				t.Fatalf("counterexample for %q ⋢ %q does not separate: P=%v Q=%v witness=%s",
					srcP, srcQ, okP, okQ, pq.Counterexample)
			}
			continue
		}

		// P ⊑ Q: every matching document of P must match Q.
		contained++
		idsP, _, err := s.Find(planP)
		if err != nil {
			t.Fatalf("Find(%q): %v", srcP, err)
		}
		idsQ, _, err := s.Find(planQ)
		if err != nil {
			t.Fatalf("Find(%q): %v", srcQ, err)
		}
		if !subsetOf(idsP, idsQ) {
			t.Fatalf("containment violated on execution: %q ⊑ %q decided, but Find(P)=%v ⊄ Find(Q)=%v",
				srcP, srcQ, idsP, idsQ)
		}
		qp, err := containment.RecursiveCaps(jslQ, jslP, caps)
		if err == nil && qp.Contained && !sameIDs(idsP, idsQ) {
			t.Fatalf("equivalence violated on execution: %q ≡ %q decided, but Find(P)=%v != Find(Q)=%v",
				srcP, srcQ, idsP, idsQ)
		}
	}
	if decided < semDiffPairs/4 {
		t.Fatalf("only %d/%d pairs decided: the harness is not exercising the procedure", decided, semDiffPairs)
	}
	if contained == 0 || refuted == 0 {
		t.Fatalf("one-sided harness: %d contained, %d refuted of %d decided", contained, refuted, decided)
	}
	t.Logf("%s: %d pairs, %d decided (%d contained, %d refuted)", lang, semDiffPairs, decided, contained, refuted)
}

func TestSemanticDifferentialJNL(t *testing.T) {
	runSemanticDifferential(t, 71, engine.LangJNL)
}

func TestSemanticDifferentialJSL(t *testing.T) {
	runSemanticDifferential(t, 72, engine.LangJSL)
}

func TestSemanticDifferentialJSONPath(t *testing.T) {
	runSemanticDifferential(t, 73, engine.LangJSONPath)
}

func TestSemanticDifferentialMongo(t *testing.T) {
	runSemanticDifferential(t, 74, engine.LangMongoFind)
}
