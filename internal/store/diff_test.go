package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
)

// The store's differential harness: for ≥1000 random (collection,
// query) pairs per front end, the indexed Find/Select results must be
// identical — node for node — to the full-scan reference, including
// queries whose plans yield no index facts and force the scan
// fallback (negation, disjunction, recursion, non-deterministic
// axes). Collections are rotated so inserts, replacements and the
// incremental index are exercised across many shapes.

// storeDiffPairs is the number of (collection, query) pairs per front
// end.
const storeDiffPairs = 1050

// storeDiffDocs is the collection size; small documents keep the
// quadratic fallbacks cheap while covering all four node kinds.
const storeDiffDocs = 48

func storeDiffDocOptions() gen.DocOptions {
	return gen.DocOptions{Fanout: 3, Depth: 3, Keys: 12, ArrayBias: 40, ValueRange: 20}
}

// diffCollections deals a fresh random collection every perStore
// pairs, alternating shard counts and, every other rotation, a low
// MaxIndexDepth so the depth-bound fallback is also exercised.
type diffCollections struct {
	r        *rand.Rand
	eng      *engine.Engine
	perStore int
	count    int
	cur      *Store
	totals   QueryStats // aggregated over retired collections
}

func (d *diffCollections) retire() {
	if d.cur == nil {
		return
	}
	q := d.cur.Stats().Queries
	d.totals.FindIndexed += q.FindIndexed
	d.totals.FindScan += q.FindScan
	d.totals.SelectIndexed += q.SelectIndexed
	d.totals.SelectScan += q.SelectScan
	d.totals.CandidateDocs += q.CandidateDocs
	d.totals.ScannedDocs += q.ScannedDocs
}

func (d *diffCollections) next() *Store {
	if d.count%d.perStore == 0 {
		d.retire()
		opts := Options{Shards: []int{1, 4, 16}[d.count/d.perStore%3], Engine: d.eng}
		if (d.count/d.perStore)%2 == 1 {
			opts.MaxIndexDepth = 2
		}
		d.cur = New(opts)
		for i := 0; i < storeDiffDocs; i++ {
			d.cur.PutTree(fmt.Sprintf("doc%03d", i), jsontree.FromValue(gen.Document(d.r, storeDiffDocOptions())))
		}
		// Churn: replace a few documents and delete one, so the
		// incremental index maintenance is part of every collection.
		for i := 0; i < 4; i++ {
			d.cur.PutTree(fmt.Sprintf("doc%03d", d.r.Intn(storeDiffDocs)), jsontree.FromValue(gen.Document(d.r, storeDiffDocOptions())))
		}
		d.cur.Delete(fmt.Sprintf("doc%03d", d.r.Intn(storeDiffDocs)))
	}
	d.count++
	return d.cur
}

func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSelections(a, b []Selection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Nodes) != len(b[i].Nodes) {
			return false
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				return false
			}
		}
	}
	return true
}

// referenceFind computes Find's answer with the retired front-end
// evaluators (Plan.ValidateReference) over every stored document — the
// old-evaluator oracle the QIR executor must match node-for-node.
func referenceFind(t *testing.T, s *Store, p *engine.Plan, src string) []string {
	t.Helper()
	var ids []string
	pairs, err := s.candidates(nil, false)
	if err != nil {
		t.Fatalf("reference candidates: %v", err)
	}
	for _, pair := range pairs {
		ok, err := p.ValidateReference(pair.tree)
		if err != nil {
			t.Fatalf("reference validate(%q): %v", src, err)
		}
		if ok {
			ids = append(ids, pair.id)
		}
	}
	sort.Strings(ids)
	return ids
}

// referenceSelect is referenceFind's node-selection counterpart, built
// on Plan.EvalReference.
func referenceSelect(t *testing.T, s *Store, p *engine.Plan, src string) []Selection {
	t.Helper()
	var out []Selection
	pairs, err := s.candidates(nil, false)
	if err != nil {
		t.Fatalf("reference candidates: %v", err)
	}
	for _, pair := range pairs {
		nodes, err := p.EvalReference(pair.tree)
		if err != nil {
			t.Fatalf("reference eval(%q): %v", src, err)
		}
		if len(nodes) > 0 {
			out = append(out, Selection{ID: pair.id, Tree: pair.tree, Nodes: nodes})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// runStoreDifferential drives one front end through the harness: for
// every random (collection, query) pair the planner-driven Find/Select
// must agree with the forced full scan AND with the retired front-end
// evaluators (the old-vs-QIR oracle check), and Explain's estimated
// cardinality must bound the measured one.
func runStoreDifferential(t *testing.T, seed int64, lang engine.Language, source func(r *rand.Rand) string) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	eng := engine.New(engine.Options{PlanCacheSize: 64})
	cols := &diffCollections{r: r, eng: eng, perStore: 25}
	for i := 0; i < storeDiffPairs; i++ {
		s := cols.next()
		src := source(r)
		p, err := eng.Compile(lang, src)
		if err != nil {
			t.Fatalf("generator bug: %q does not compile: %v", src, err)
		}
		gotF, _, err := s.Find(p)
		if err != nil {
			t.Fatalf("Find(%q): %v", src, err)
		}
		wantF, err := s.FindScan(p)
		if err != nil {
			t.Fatalf("FindScan(%q): %v", src, err)
		}
		if !sameIDs(gotF, wantF) {
			t.Fatalf("pair %d: indexed Find disagrees with scan on %q\nindexed: %v\nscan:    %v",
				i, src, gotF, wantF)
		}
		if oracleF := referenceFind(t, s, p, src); !sameIDs(gotF, oracleF) {
			t.Fatalf("pair %d: QIR Find disagrees with the old evaluator on %q\nqir:    %v\noracle: %v",
				i, src, gotF, oracleF)
		}
		gotS, _, err := s.Select(p)
		if err != nil {
			t.Fatalf("Select(%q): %v", src, err)
		}
		wantS, err := s.SelectScan(p)
		if err != nil {
			t.Fatalf("SelectScan(%q): %v", src, err)
		}
		if !sameSelections(gotS, wantS) {
			t.Fatalf("pair %d: indexed Select disagrees with scan on %q\nindexed: %+v\nscan:    %+v",
				i, src, gotS, wantS)
		}
		if oracleS := referenceSelect(t, s, p, src); !sameSelections(gotS, oracleS) {
			t.Fatalf("pair %d: QIR Select disagrees with the old evaluator on %q\nqir:    %+v\noracle: %+v",
				i, src, gotS, oracleS)
		}
		// Every fifth pair, assert the Explain cardinality contract:
		// the estimate is an upper bound on what the access path
		// actually produced, and results never exceed candidates.
		if i%5 == 0 {
			for _, mode := range []string{"find", "select"} {
				ex, err := s.Explain(nil, p, mode)
				if err != nil {
					t.Fatalf("Explain(%q, %s): %v", src, mode, err)
				}
				if ex.EstCandidates < ex.ActualCandidates {
					t.Fatalf("pair %d: Explain(%q, %s) estimate %d below actual %d",
						i, src, mode, ex.EstCandidates, ex.ActualCandidates)
				}
				if ex.ActualResults > ex.ActualCandidates {
					t.Fatalf("pair %d: Explain(%q, %s) results %d exceed candidates %d",
						i, src, mode, ex.ActualResults, ex.ActualCandidates)
				}
				if ex.Access == "scan" && ex.ActualCandidates != ex.DocCount {
					t.Fatalf("pair %d: Explain(%q, %s) scan candidates %d != doc count %d",
						i, src, mode, ex.ActualCandidates, ex.DocCount)
				}
			}
		}
	}
	cols.retire()
	q := cols.totals
	if q.FindIndexed == 0 {
		t.Error("no query used the index; the harness is not exercising the indexed path")
	}
	if q.FindIndexed+q.FindScan != 2*storeDiffPairs {
		t.Errorf("find counters lost calls: %+v", q)
	}
	if q.FindScan <= storeDiffPairs {
		// FindScan counts both the reference scans (one per pair) and
		// genuine fallbacks; equality would mean no fallback occurred.
		t.Error("no query fell back to scanning; the harness is not exercising the fallback")
	}
	t.Logf("%v: %d pairs, query counters %+v", lang, storeDiffPairs, q)
}

func TestStoreDifferentialMongo(t *testing.T) {
	runStoreDifferential(t, 606, engine.LangMongoFind, func(r *rand.Rand) string {
		return gen.RandomMongoSource(r, 2)
	})
}

func TestStoreDifferentialJSONPath(t *testing.T) {
	runStoreDifferential(t, 707, engine.LangJSONPath, func(r *rand.Rand) string {
		return gen.RandomJSONPathSource(r)
	})
}

func TestStoreDifferentialJNL(t *testing.T) {
	runStoreDifferential(t, 808, engine.LangJNL, func(r *rand.Rand) string {
		return gen.RandomJNLSource(r, 3)
	})
}

// TestStoreDifferentialJSL rides along beyond the required three front
// ends: recursive JSL expressions always fall back to scanning, plain
// ones may index.
func TestStoreDifferentialJSL(t *testing.T) {
	runStoreDifferential(t, 909, engine.LangJSL, func(r *rand.Rand) string {
		if r.Intn(4) == 0 {
			return gen.RandomRecursiveJSLSource(r, 2)
		}
		return gen.RandomJSLSource(r, 3)
	})
}
