// Package store implements the storage tier of the query service: a
// sharded, goroutine-safe in-memory collection of JSON documents with
// an inverted path index, queried through the compiled plans of
// internal/engine.
//
// # Architecture
//
// A Store holds N shards (N a power of two, chosen at construction).
// A document ID is hashed (FNV-1a) and the low bits pick the shard;
// each shard owns one pathIndex — whose dictionary is also the shard's
// document storage — guarded by one RWMutex. Writers (Put, Delete,
// bulk NDJSON ingest) lock only their document's shard, so unrelated
// writes proceed in parallel; queries fan out across shards on a
// bounded worker pool (Options.QueryWorkers), each worker taking the
// shard read lock just long enough to snapshot candidate (id, tree)
// pairs and evaluating outside the lock — trees are immutable, so
// evaluation never races with writers — before the per-shard results
// merge into one deterministically sorted answer.
//
// # The inverted path index
//
// Documents are dictionary-encoded per shard: each insert assigns the
// next dense uint32 ordinal, deletes tombstone the ordinal in O(1),
// and compaction renumbers the shard once tombstones reach the live
// count (and on every snapshot). The pathIndex maps structural terms
// to posting lists of sorted ordinals — intersected with a galloping/
// two-pointer merge, never map iteration — maintained incrementally on
// every insert and delete:
//
//   - a presence term for every root-to-node key/index path,
//   - a class term for every path plus the node's kind
//     (object/array/string/number — the paper's value model has no
//     booleans or nulls),
//   - a value term for every leaf path plus its exact string or number
//     value.
//
// Terms are 64-bit FNV hashes of the path (and class/value tag), so
// the index stores no path strings; hash collisions can only merge
// posting lists, which adds false candidates but never loses one.
//
// # Query planning: statistics → cost-based access plan → candidates
//
// A query arrives as an engine.Plan carrying compile-time index facts
// (Plan.FindFacts for document matching, Plan.SelectFacts for node
// selection — derived once from the plan's QIR lowering). The
// cost-based planner (planner.go) turns the facts into index terms,
// consults the Statistics interface (document count, per-term
// posting-list cardinalities, per-path class histograms) and chooses
// per query: index or scan (scan when even the best term matches most
// of the collection), which terms to intersect (near-useless terms are
// skipped), and in what order (ascending cardinality, so the smallest
// posting list drives the intersection and the likeliest-to-fail
// membership probes run first). Candidates are then evaluated by the
// shared QIR executor. Every fact is a necessary condition of
// matching, so a document outside the candidate set provably cannot
// match and the indexed result equals the full scan result
// node-for-node — the differential tests in this package enforce
// exactly that against both the forced scan and the retired front-end
// evaluators, including for plans that yield no facts (negation,
// disjunction, recursion, non-deterministic axes), which transparently
// fall back to scanning. Facts deeper than the index bound degrade to
// the presence of their in-bound prefix rather than disabling the
// index. Store.Explain reports the chosen plan with estimated versus
// actual cardinalities; the estimate provably bounds the candidate
// count.
//
// # Durability: write-ahead log and snapshot recovery
//
// New builds an in-memory store; Open adds durability under
// Options.DataDir. Every put and delete is framed (length-prefixed,
// CRC-protected) and appended to its shard's log while the shard lock
// is held — so log order equals apply order — and acknowledged only
// once the configured FsyncPolicy holds: always (group-commit fsync
// per acknowledgement), interval (background timer), or off (OS
// write-back; Close still flushes and syncs). Background snapshotting
// rotates a shard's WAL and writes its contents with
// write-temp-then-rename atomicity; recovery loads the newest
// snapshot that validates end-to-end, replays the WAL generations
// after it, truncates torn tails, and rebuilds the inverted index by
// re-inserting through the ordinary in-memory path. Stats exposes the
// WAL, snapshot and recovery counters; crash-recovery tests in this
// package pin a reopened store node-for-node to an in-memory
// reference driven through the same mutations.
//
// Package cmd/jsonstored serves a Store over HTTP; see
// examples/storequery for a walkthrough and docs/ARCHITECTURE.md for
// the whole pipeline.
package store
