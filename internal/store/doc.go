// Package store implements the storage tier of the query service: a
// sharded, goroutine-safe in-memory collection of JSON documents with
// an inverted path index, queried through the compiled plans of
// internal/engine.
//
// # Architecture
//
// A Store holds N shards (N a power of two, chosen at construction).
// A document ID is hashed (FNV-1a) and the low bits pick the shard;
// each shard owns a map from ID to its immutable jsontree.Tree and a
// pathIndex, both guarded by one RWMutex. Writers (Put, Delete, bulk
// NDJSON ingest) lock only their document's shard, so unrelated writes
// proceed in parallel; readers take the shard read lock just long
// enough to snapshot candidate (id, tree) pairs and evaluate outside
// the lock — trees are immutable, so evaluation never races with
// writers.
//
// # The inverted path index
//
// The pathIndex maps structural terms to posting lists of document
// IDs, maintained incrementally on every insert and delete:
//
//   - a presence term for every root-to-node key/index path,
//   - a class term for every path plus the node's kind
//     (object/array/string/number — the paper's value model has no
//     booleans or nulls),
//   - a value term for every leaf path plus its exact string or number
//     value.
//
// Terms are 64-bit FNV hashes of the path (and class/value tag), so
// the index stores no path strings; hash collisions can only merge
// posting lists, which adds false candidates but never loses one.
//
// # Query planning: shards → path index → candidate set → reference eval
//
// A query arrives as an engine.Plan. The plan's compile-time index
// facts (Plan.FindFacts for document matching, Plan.SelectFacts for
// node selection — see internal/engine/hints.go) are turned into index
// terms; per shard, the posting lists of all terms are intersected into
// a candidate set, and the ordinary reference evaluation runs over the
// candidates only. Every fact is a necessary condition of matching, so
// a document outside the candidate set provably cannot match and the
// indexed result equals the full scan result node-for-node — the
// differential tests in this package enforce exactly that, including
// for plans that yield no facts (negation, disjunction, recursion,
// non-deterministic axes), which transparently fall back to scanning.
// Facts deeper than the index bound degrade to the presence of their
// in-bound prefix rather than disabling the index.
//
// # Durability: write-ahead log and snapshot recovery
//
// New builds an in-memory store; Open adds durability under
// Options.DataDir. Every put and delete is framed (length-prefixed,
// CRC-protected) and appended to its shard's log while the shard lock
// is held — so log order equals apply order — and acknowledged only
// once the configured FsyncPolicy holds: always (group-commit fsync
// per acknowledgement), interval (background timer), or off (OS
// write-back; Close still flushes and syncs). Background snapshotting
// rotates a shard's WAL and writes its contents with
// write-temp-then-rename atomicity; recovery loads the newest
// snapshot that validates end-to-end, replays the WAL generations
// after it, truncates torn tails, and rebuilds the inverted index by
// re-inserting through the ordinary in-memory path. Stats exposes the
// WAL, snapshot and recovery counters; crash-recovery tests in this
// package pin a reopened store node-for-node to an in-memory
// reference driven through the same mutations.
//
// Package cmd/jsonstored serves a Store over HTTP; see
// examples/storequery for a walkthrough and docs/ARCHITECTURE.md for
// the whole pipeline.
package store
