package store

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
)

// TestConcurrentWritesDuringParallelFind races the parallel query
// fan-out against writers: Put/Delete churn keeps tombstoning and
// compacting the dictionary while multi-worker Find/Select queries
// probe it. Run under -race this is the locking check for the
// dictionary encoding; without -race it still verifies the fan-out's
// merge invariants — results sorted, duplicate-free, and every
// returned ID routed to the shard that produced it.
func TestConcurrentWritesDuringParallelFind(t *testing.T) {
	s := New(Options{Shards: 8, QueryWorkers: 4})
	plans := []*engine.Plan{
		engine.MustCompile(engine.LangMongoFind, `{"kind":"blue"}`),
		engine.MustCompile(engine.LangMongoFind, `{"kind":"blue","n":{"$lte":100}}`),
		engine.MustCompile(engine.LangJSONPath, `$.tags[*]`),
	}
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("seed%03d", i),
			fmt.Sprintf(`{"kind":"%s","n":%d,"tags":["a","b"]}`, []string{"blue", "red"}[i%2], i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("seed%03d", r.Intn(200))
				if i%3 == 0 {
					s.Delete(id) // tombstone + occasional compaction
				} else {
					s.Put(id, fmt.Sprintf(`{"kind":"blue","n":%d,"tags":["c"]}`, i))
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 150; i++ {
				p := plans[(g+i)%len(plans)]
				ids, _, err := s.Find(p)
				if err != nil {
					t.Errorf("find: %v", err)
					return
				}
				for j := 1; j < len(ids); j++ {
					if ids[j-1] >= ids[j] {
						t.Errorf("find results unsorted or duplicated: %q then %q", ids[j-1], ids[j])
						return
					}
				}
				sels, _, err := s.Select(p)
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				for j := 1; j < len(sels); j++ {
					if sels[j-1].ID >= sels[j].ID {
						t.Errorf("select results unsorted or duplicated: %q then %q", sels[j-1].ID, sels[j].ID)
						return
					}
				}
			}
		}(g)
	}
	// Writers churn for the readers' whole lifetime, then stop.
	readers.Wait()
	close(stop)
	writers.Wait()

	q := s.Stats().Queries
	if q.ParallelQueries == 0 {
		t.Error("no query fanned out in parallel; QueryWorkers was not honored")
	}
	// Every surviving document must still be exactly findable: index
	// agrees with the dictionary after all the churn.
	p := engine.MustCompile(engine.LangMongoFind, `{"kind":{"$exists":1}}`)
	ids, err := s.FindScan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != s.Len() {
		t.Fatalf("scan found %d docs, store holds %d", len(ids), s.Len())
	}
}

// TestConcurrentMixedLoad hammers one store from 12 goroutines with
// writes, deletes, bulk ingest and both query paths. Run under -race
// it checks the locking discipline; the final verification checks for
// lost updates — every writer's surviving documents must be present
// with exactly the content it wrote last.
func TestConcurrentMixedLoad(t *testing.T) {
	s := New(Options{Shards: 8})
	eng := s.Engine()
	plans := []*engine.Plan{
		engine.MustCompile(engine.LangMongoFind, `{"owner":{"$exists":1}}`),
		engine.MustCompile(engine.LangMongoFind, `{"v":{"$gte":5}}`),
		engine.MustCompile(engine.LangJSONPath, `$.owner`),
		engine.MustCompile(engine.LangJNL, `[/v]`),
	}
	const (
		writers = 6
		readers = 6
		docsPer = 40
		rounds  = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < rounds; round++ {
				for i := 0; i < docsPer; i++ {
					id := fmt.Sprintf("w%d-doc%d", w, i)
					doc := fmt.Sprintf(`{"owner":"w%d","v":%d,"round":%d,"pad":%s}`,
						w, i, round, gen.Document(r, gen.DocOptions{Fanout: 2, Depth: 2, Keys: 6, ArrayBias: 50, ValueRange: 9}))
					if err := s.Put(id, doc); err != nil {
						t.Errorf("put %s: %v", id, err)
						return
					}
				}
				// Delete a deterministic slice of this writer's docs; they
				// are re-inserted next round and the last round leaves them
				// deleted.
				for i := 0; i < docsPer; i += 5 {
					s.Delete(fmt.Sprintf("w%d-doc%d", w, i))
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				p := plans[(g+i)%len(plans)]
				if _, _, err := s.Find(p); err != nil {
					t.Errorf("find: %v", err)
					return
				}
				if _, _, err := s.Select(p); err != nil {
					t.Errorf("select: %v", err)
					return
				}
				if i%10 == 0 {
					var sb strings.Builder
					for j := 0; j < 20; j++ {
						fmt.Fprintf(&sb, `{"bulk":%d,"g":%d}`+"\n", j, g)
					}
					if _, err := s.BulkNDJSON(strings.NewReader(sb.String())); err != nil {
						t.Errorf("bulk: %v", err)
						return
					}
					s.Stats()
					eng.CacheStats()
				}
			}
		}(g)
	}
	wg.Wait()

	// No lost updates: every surviving writer document holds the last
	// round's content, and the deleted slice is gone.
	for w := 0; w < writers; w++ {
		for i := 0; i < docsPer; i++ {
			id := fmt.Sprintf("w%d-doc%d", w, i)
			tr, ok := s.Get(id)
			if i%5 == 0 {
				if ok {
					t.Errorf("%s should have been deleted", id)
				}
				continue
			}
			if !ok {
				t.Errorf("%s lost", id)
				continue
			}
			root := tr.Root()
			if n := tr.ChildByKey(root, "round"); n == jsontree.InvalidNode || tr.NumberVal(n) != rounds-1 {
				t.Errorf("%s holds a stale round", id)
			}
			if n := tr.ChildByKey(root, "owner"); n == jsontree.InvalidNode || tr.StringVal(n) != fmt.Sprintf("w%d", w) {
				t.Errorf("%s has wrong owner", id)
			}
		}
	}
	// The index must agree with the surviving documents: an indexed
	// owner query returns exactly writer w's live docs.
	for w := 0; w < writers; w++ {
		p, err := eng.Compile(engine.LangMongoFind, fmt.Sprintf(`{"owner":"w%d"}`, w))
		if err != nil {
			t.Fatal(err)
		}
		ids, _, err := s.Find(p)
		if err != nil {
			t.Fatal(err)
		}
		want := docsPer - (docsPer+4)/5
		if len(ids) != want {
			t.Errorf("writer %d: find returned %d docs, want %d", w, len(ids), want)
		}
	}
}
