//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f.
// The lock is tied to the open file description: it dies with the
// process (a crash never wedges a restart) and is released by
// f.Close().
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a machine crash.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}
