package store

// wal.go: the per-shard append-only write-ahead log. Every mutation
// (put, delete) is framed as a length-prefixed, CRC-protected record
// and appended to the shard's active segment before it is applied to
// the in-memory maps; recovery (recover.go) replays the segments to
// rebuild exactly the acknowledged state. Appenders share fsyncs
// through a group-commit protocol: while one fsync is in flight,
// concurrent appenders buffer their records and the next syncer
// flushes them all with a single fsync.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// FsyncPolicy selects when the WAL is fsynced to stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways (the zero value, and the default) syncs before every
	// acknowledgement: an acknowledged write survives both process and
	// machine crashes. Group commit amortizes the fsync across
	// concurrent writers and across each bulk-ingest batch.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Options.FsyncInterval,
	// default 100ms): a crash may lose at most the last interval of
	// acknowledged writes.
	FsyncInterval
	// FsyncOff never syncs explicitly; the operating system writes the
	// log back at its leisure. A process crash loses at most the
	// buffered tail, a machine crash arbitrarily more.
	FsyncOff
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
}

// ParseFsyncPolicy parses the flag spelling: "always", "interval" or
// "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or off)", s)
}

// Record framing, shared by WAL segments and snapshots:
//
//	u32 payloadLen | payload | u32 crc32(payload)
//	payload := op(1) | u32 idLen | id | doc
//
// all integers little-endian. Files begin with a short magic line so a
// foreign file is rejected before any frame is trusted.
const (
	opPut    byte = 1 // doc holds the compact JSON of the stored tree
	opDelete byte = 2 // doc empty
	opFooter byte = 3 // snapshot trailer; id holds the decimal record count

	walMagic  = "JLWAL1\n"
	snapMagic = "JLSNAP1\n"

	// maxRecordPayload bounds one record's payload; anything larger is
	// treated as a torn length prefix. Comfortably above the daemon's
	// 64 MiB request-body bound.
	maxRecordPayload = 80 << 20

	walBufSize = 256 << 10
)

// walRecord is one logged mutation (or snapshot framing record).
type walRecord struct {
	op  byte
	id  string
	doc string
}

// encodeRecord appends the framed record to buf and returns the
// extended slice.
func encodeRecord(buf []byte, rec walRecord) []byte {
	payloadLen := 1 + 4 + len(rec.id) + len(rec.doc)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	payloadStart := len(buf)
	buf = append(buf, rec.op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.id)))
	buf = append(buf, rec.id...)
	buf = append(buf, rec.doc...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payloadStart:]))
}

// errTorn marks a record that cannot be trusted: a short read, an
// implausible length prefix or a CRC mismatch. Replay truncates the
// file at the last good frame boundary when it sees this.
var errTorn = errors.New("torn or corrupt record")

// readRecord reads one framed record. It returns io.EOF exactly at a
// clean frame boundary and errTorn for every other failure; n is the
// number of bytes consumed from r either way.
func readRecord(r *bufio.Reader) (rec walRecord, n int64, err error) {
	var lenBuf [4]byte
	k, err := io.ReadFull(r, lenBuf[:])
	if err == io.EOF {
		return walRecord{}, 0, io.EOF
	}
	if err != nil {
		return walRecord{}, int64(k), fmt.Errorf("%w: short length prefix", errTorn)
	}
	payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
	if payloadLen < 5 || payloadLen > maxRecordPayload {
		return walRecord{}, 4, fmt.Errorf("%w: implausible payload length %d", errTorn, payloadLen)
	}
	body := make([]byte, int(payloadLen)+4)
	k, err = io.ReadFull(r, body)
	if err != nil {
		return walRecord{}, 4 + int64(k), fmt.Errorf("%w: short payload", errTorn)
	}
	payload := body[:payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[payloadLen:]) {
		return walRecord{}, 4 + int64(len(body)), fmt.Errorf("%w: CRC mismatch", errTorn)
	}
	idLen := binary.LittleEndian.Uint32(payload[1:5])
	if 5+int(idLen) > len(payload) {
		return walRecord{}, 4 + int64(len(body)), fmt.Errorf("%w: id length overruns payload", errTorn)
	}
	rec = walRecord{
		op:  payload[0],
		id:  string(payload[5 : 5+idLen]),
		doc: string(payload[5+idLen:]),
	}
	return rec, 4 + int64(len(body)), nil
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%010d.log", gen))
}

func snapFilePath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%010d.snap", gen))
}

func snapTempPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%010d.tmp", gen))
}

// ErrWAL marks every write-ahead-log failure (append, fsync, rotate,
// close, size bound): errors.Is(err, ErrWAL) distinguishes a
// server-side durability fault from caller-input problems, which is
// how the daemon picks 500 over 400.
var ErrWAL = errors.New("write-ahead log failure")

// errWALClosed is the sticky error of a cleanly closed WAL. It is
// deliberately NOT an ErrWAL: closing is lifecycle, not failure.
var errWALClosed = errors.New("store: write-ahead log is closed")

// shardWAL is the writer side of one shard's log. Appends are ordered
// by the owning shard's lock (the caller appends while holding it, so
// log order always equals apply order); the WAL's own mutex covers the
// buffered writer and the group-commit state.
type shardWAL struct {
	shard  int
	dir    string
	fs     VFS
	policy FsyncPolicy

	// degraded is set alongside every sticky I/O failure (never for a
	// clean close) and cleared only by a completed heal — after reset
	// started a fresh generation AND a snapshot re-captured the shard's
	// memory state. Write paths gate on it lock-free; the background
	// probe polls it.
	degraded atomic.Bool

	mu   sync.Mutex
	cond sync.Cond // waits on mu for the in-flight group fsync
	f    File
	bw   *bufio.Writer
	gen  uint64
	err  error // sticky: first I/O failure (or errWALClosed)
	tmp  []byte

	// Group commit: writeSeq counts buffered records, syncSeq records
	// proven durable. While syncing is set one goroutine owns the
	// in-flight fsync and others wait on cond; the owner captures
	// writeSeq before flushing, so everyone at or below the captured
	// sequence is released by a single fsync.
	writeSeq uint64
	syncSeq  uint64
	syncing  bool

	segRecords uint64 // records in the active segment (snapshot trigger)

	appends uint64
	bytes   uint64
	syncs   uint64
}

// openShardWAL opens (creating if necessary) the active segment of a
// shard's log for appending. segRecords is the number of records the
// recovered tail of that segment already holds.
func openShardWAL(fs VFS, shard int, dir string, gen uint64, policy FsyncPolicy, segRecords uint64) (*shardWAL, error) {
	f, err := fs.OpenFile(walPath(dir, gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal shard %d: %w: %w", shard, ErrWAL, err)
	}
	w := &shardWAL{
		shard:      shard,
		dir:        dir,
		fs:         fs,
		policy:     policy,
		f:          f,
		bw:         bufio.NewWriterSize(f, walBufSize),
		gen:        gen,
		segRecords: segRecords,
	}
	w.cond.L = &w.mu
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: wal shard %d: %w: %w", shard, ErrWAL, err)
	}
	if st.Size() == 0 {
		// Fresh segment: the magic travels with the first flush. An
		// empty or short file replays as an empty log, so a crash
		// before that flush is harmless — but the directory entry must
		// be durable before any fsynced record is acknowledged, or a
		// machine crash could drop the whole file.
		w.bw.WriteString(walMagic)
		if err := fs.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: wal shard %d: sync dir: %w: %w", shard, ErrWAL, err)
		}
	}
	return w, nil
}

// setErr records a sticky I/O failure and flips the shard into
// degraded read-only mode. Caller holds w.mu.
func (w *shardWAL) setErr(err error) {
	if w.err == nil {
		w.err = err
	}
	w.degraded.Store(true)
}

// append frames rec into the buffered writer and returns its commit
// sequence number. The caller holds the owning shard's lock, which is
// what orders the log; append itself never blocks on I/O beyond a
// buffer spill.
func (w *shardWAL) append(rec walRecord) (uint64, error) {
	// Enforce the replay-side frame bound at write time: a larger
	// record would be fsynced, acknowledged, and then rejected as a
	// torn tail on reopen — truncating it and everything after it.
	// Rejecting here is a per-record error, not a WAL failure.
	// Deliberately not an ErrWAL: the input is the problem (the log is
	// healthy), so the daemon's 400-vs-500 classification stays honest.
	if payload := 1 + 4 + len(rec.id) + len(rec.doc); payload > maxRecordPayload {
		return 0, fmt.Errorf("store: wal shard %d: document %q: record payload %d bytes exceeds the %d-byte bound", w.shard, rec.id, payload, maxRecordPayload)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.tmp = encodeRecord(w.tmp[:0], rec)
	if _, err := w.bw.Write(w.tmp); err != nil {
		w.setErr(fmt.Errorf("store: wal shard %d: append: %w: %w", w.shard, ErrWAL, err))
		return 0, w.err
	}
	w.writeSeq++
	w.segRecords++
	w.appends++
	w.bytes += uint64(len(w.tmp))
	return w.writeSeq, nil
}

// commit makes the record at seq durable per the fsync policy and
// returns when the policy's guarantee holds for it. Under FsyncAlways
// that is a (group) fsync; under the other policies the background
// flusher provides the guarantee and commit only reports sticky
// errors.
func (w *shardWAL) commit(seq uint64) error {
	if w.policy == FsyncAlways {
		return w.groupSync(seq)
	}
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if errors.Is(err, errWALClosed) {
		// A clean close raced this commit; close flushed and fsynced
		// every appended record, so the guarantee already holds.
		return nil
	}
	return err
}

// syncNow flushes and fsyncs everything appended so far (used by the
// interval flusher, bulk-ingest batch ends and Close).
func (w *shardWAL) syncNow() error {
	w.mu.Lock()
	seq := w.writeSeq
	w.mu.Unlock()
	return w.groupSync(seq)
}

// groupSync blocks until syncSeq ≥ seq. At most one fsync is in
// flight; the goroutine that starts it captures the current writeSeq,
// flushes the buffer under the lock, then fsyncs outside it so that
// concurrent appenders keep buffering. Everyone whose record was
// captured is released together — one fsync per group, not per record.
func (w *shardWAL) groupSync(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncSeq < seq && w.err == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.writeSeq
		err := w.bw.Flush()
		f := w.f
		w.mu.Unlock()
		if err == nil {
			err = f.Sync()
		}
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.setErr(fmt.Errorf("store: wal shard %d: sync: %w: %w", w.shard, ErrWAL, err))
		} else if target > w.syncSeq {
			w.syncSeq = target
			w.syncs++
		}
		w.cond.Broadcast()
	}
	if w.syncSeq >= seq {
		// The record is durable — even when a sticky error (or a clean
		// close, which syncs everything first) arrived afterwards.
		return nil
	}
	return w.err
}

// flushOnly spills the user-space buffer to the OS without fsync (the
// FsyncOff flusher).
func (w *shardWAL) flushOnly() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.setErr(fmt.Errorf("store: wal shard %d: flush: %w: %w", w.shard, ErrWAL, err))
	}
	return w.err
}

// rotate seals the active segment (flush, fsync, close — regardless of
// policy, so everything before a snapshot is durable) and starts
// generation gen+1. The caller holds the owning shard's lock, so no
// append races the switch; rotate itself waits out any in-flight
// group fsync. It returns the new generation.
func (w *shardWAL) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	if w.err != nil {
		return 0, w.err
	}
	fail := func(stage string, err error) (uint64, error) {
		w.setErr(fmt.Errorf("store: wal shard %d: rotate: %s: %w: %w", w.shard, stage, ErrWAL, err))
		return 0, w.err
	}
	if err := w.bw.Flush(); err != nil {
		return fail("flush", err)
	}
	if err := w.f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := w.f.Close(); err != nil {
		return fail("close", err)
	}
	w.syncSeq = w.writeSeq
	w.gen++
	f, err := w.fs.OpenFile(walPath(w.dir, w.gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fail("create", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, walBufSize)
	w.bw.WriteString(walMagic)
	w.segRecords = 0
	// Make the new segment's directory entry durable before records
	// appended to it are acknowledged.
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fail("sync dir", err)
	}
	return w.gen, nil
}

// close flushes, fsyncs and closes the active segment. Further appends
// fail with errWALClosed. Idempotent.
func (w *shardWAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	if w.f == nil {
		if errors.Is(w.err, errWALClosed) {
			return nil
		}
		return w.err
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = fmt.Errorf("store: wal shard %d: close: %w: %w", w.shard, ErrWAL, err)
		}
	}
	keep(w.bw.Flush())
	keep(w.f.Sync())
	if first == nil {
		// Everything appended is now durable; let a commit racing this
		// close observe that instead of reporting a failure for a
		// write that close just fsynced.
		w.syncSeq = w.writeSeq
	}
	keep(w.f.Close())
	w.f = nil
	if w.err == nil {
		if first != nil {
			w.err = first
		} else {
			w.err = errWALClosed
		}
	}
	return first
}

// reset abandons a failed WAL generation and starts a fresh one on a
// (possibly) recovered disk: the heal path's first half. It is a
// no-op when the WAL is healthy and an error on a closed WAL. On
// success w.err is clear and appends work again — but w.degraded
// stays set; the caller (healShard) clears it only after a snapshot
// has re-captured the shard's memory state, because records that were
// buffered when the disk failed never reached the file and only a
// fresh segment makes disk and memory converge again. Nothing acked
// is at risk either way: an ack requires the flush+fsync that failed.
func (w *shardWAL) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	if w.err == nil {
		return nil // healthy (or a previous reset already succeeded)
	}
	if errors.Is(w.err, errWALClosed) {
		return w.err
	}
	if w.f != nil {
		// Abandon the broken descriptor; its buffered tail was never
		// acknowledged, so dropping it loses nothing promised.
		w.f.Close()
		w.f = nil
	}
	// The abandoned generation may end mid-frame (a short write, or a
	// flush that died partway through the buffer). Recovery truncates
	// torn tails only off the *last* generation and refuses a torn
	// non-last file, so cut this one back to its last whole frame now,
	// before a successor generation exists.
	if err := truncateTornTail(w.fs, walPath(w.dir, w.gen)); err != nil {
		return fmt.Errorf("store: wal shard %d: reset: %w: %w", w.shard, ErrWAL, err)
	}
	gen := w.gen + 1
	// O_TRUNC, not O_EXCL: a previous reset attempt may have created
	// the file and then failed before clearing w.err; nothing in it
	// was ever acknowledged.
	f, err := w.fs.OpenFile(walPath(w.dir, gen), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal shard %d: reset: create: %w: %w", w.shard, ErrWAL, err)
	}
	bw := bufio.NewWriterSize(f, walBufSize)
	bw.WriteString(walMagic)
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("store: wal shard %d: reset: sync dir: %w: %w", w.shard, ErrWAL, err)
	}
	w.f = f
	w.bw = bw
	w.gen = gen
	w.segRecords = 0
	// Nothing is pending in the new generation; commits blocked on the
	// failure have already returned their errors.
	w.syncSeq = w.writeSeq
	w.err = nil
	return nil
}

// truncateTornTail scans the frames of the WAL at path and truncates
// everything past the last whole, CRC-valid record — the repair
// replayWAL performs on the active generation at recovery, applied
// eagerly when a failed generation is about to stop being the last.
func truncateTornTail(fs VFS, path string) error {
	f, err := fs.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := st.Size()
	br := bufio.NewReaderSize(f, walBufSize)
	magic := make([]byte, len(walMagic))
	good := int64(0)
	if n, rerr := io.ReadFull(br, magic); rerr == nil && string(magic) == walMagic {
		good = int64(len(walMagic))
		for {
			_, n, rerr := readRecord(br)
			if rerr != nil {
				break
			}
			good += n
		}
	} else if n == 0 && rerr == io.EOF {
		f.Close()
		return nil // empty file: created but never flushed
	}
	f.Close()
	if good == size {
		return nil
	}
	return fs.Truncate(path, good)
}

// crashForTest abandons the WAL the way a killed process would: the
// user-space buffer is discarded unflushed and the descriptor is
// closed without fsync. Only tests call this.
func (w *shardWAL) crashForTest() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if w.err == nil {
		w.err = errWALClosed
	}
}

// counters snapshots the WAL's statistics.
func (w *shardWAL) counters() (appends, bytes, syncs, segRecords uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	err = w.err
	if errors.Is(err, errWALClosed) {
		err = nil
	}
	return w.appends, w.bytes, w.syncs, w.segRecords, err
}

// segmentRecords returns the record count of the active segment.
func (w *shardWAL) segmentRecords() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segRecords
}
