package store

// close_race_test.go: Store.Close racing in-flight queries. Close
// flushes and closes the WALs and stops the maintenance loops but
// never unmaps live segments (only a snapshot swap retires one, after
// installing its replacement), so a Find/Select that was already
// running keeps reading valid memory. The race detector is the real
// assertion here; the test also pins the weaker functional contract
// that results obtained mid-close are either complete or an error,
// never a panic.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCloseRacesInFlightQueries(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, Options{Shards: 4, DataDir: dir, Fsync: FsyncOff, SnapshotEvery: 50})
	for i := 0; i < 3000; i++ {
		if err := s.PutTree(fmt.Sprintf("d%05d", i), chaosDoc(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Let the background snapshotter build at least one segment so the
	// queries below read through the mmap'd tier, not just the
	// memtable — that mapping staying valid across Close is the point.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Durability.Segments == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no segment built before the race window")
		}
		time.Sleep(5 * time.Millisecond)
	}

	p := scanPlan(t, s)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					ids, _, err := s.Find(p)
					if err == nil && len(ids) != 3000 {
						t.Errorf("find mid-close returned %d ids, want 3000 or an error", len(ids))
						return
					}
				} else {
					sels, _, err := s.Select(p)
					if err == nil && len(sels) != 3000 {
						t.Errorf("select mid-close returned %d selections, want 3000 or an error", len(sels))
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // queries certainly in flight
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	close(stop)
	wg.Wait()
}
