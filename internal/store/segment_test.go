package store

// segment_test.go: the segment tier's own test battery — the crash
// matrix (torn footer, flipped block, kill during compaction), the
// legacy-snapshot upgrade path, a churn differential that crosses the
// tier boundary repeatedly (including the forced heap fallback), and
// the allocation pin on the compressed probe path.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
)

// measureAllocs reports steady-state allocations per call with GC
// pinned off, after one warm-up call (same harness as the engine's
// alloc tests).
func measureAllocs(f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f()
	return testing.AllocsPerRun(200, f)
}

// TestSegmentCrashMatrix drives one shard through two segment
// generations, then damages the newest segment in each of the ways a
// crash can: a footer torn mid-write, a block flipped after the fact,
// and a compaction killed before its rename. Every variant must
// recover to the previous generation plus the full WAL history —
// node-for-node equal to the reference — because the WAL generations
// bridging the gap are still on disk.
func TestSegmentCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(47))
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 1})
	ids := durableIDs()
	for i := 0; i < 60; i++ {
		mutate(t, r, s, ref, ids)
	}
	if err := s.Snapshot(); err != nil { // seg-1, wal-1 active
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mutate(t, r, s, ref, ids)
	}
	sd := s.dur.shardDir(0)
	s.crashForTest()
	// The fallback generation: seg-1 plus the wal-1 records after it.
	seg1, err := os.ReadFile(segFilePath(sd, 1))
	if err != nil {
		t.Fatal(err)
	}
	wal1, err := os.ReadFile(walPath(sd, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Second generation: reopen (nothing new), compact to seg-2 — which
	// garbage-collects seg-1/wal-1 — then write a tail into wal-2.
	s2 := openDurable(t, opts)
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mutate(t, r, s2, ref, ids)
	}
	s2.crashForTest()
	seg2, err := os.ReadFile(segFilePath(sd, 2))
	if err != nil {
		t.Fatal(err)
	}

	restore := func(t *testing.T, fallback bool) {
		t.Helper()
		if err := os.WriteFile(segFilePath(sd, 2), seg2, 0o644); err != nil {
			t.Fatal(err)
		}
		if fallback {
			if err := os.WriteFile(segFilePath(sd, 1), seg1, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath(sd, 1), wal1, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(t *testing.T, wantInvalid, wantMapped int) {
		t.Helper()
		s3 := openDurable(t, opts)
		defer s3.crashForTest()
		rs := s3.Stats().Durability.Recovery
		if rs.InvalidSegments != wantInvalid || rs.SegmentsMapped != wantMapped {
			t.Fatalf("recovery stats = %+v, want %d invalid / %d mapped segments", rs, wantInvalid, wantMapped)
		}
		compareStores(t, s3, ref)
		diffQueries(t, r, s3, ref, 60)
	}

	t.Run("torn-footer", func(t *testing.T) {
		restore(t, true)
		st, err := os.Stat(segFilePath(sd, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segFilePath(sd, 2), st.Size()-13); err != nil {
			t.Fatal(err)
		}
		check(t, 1, 1) // seg-2 refused, seg-1 mapped, wal-1+wal-2 replayed
	})
	t.Run("flipped-block", func(t *testing.T) {
		restore(t, true)
		raw := append([]byte(nil), seg2...)
		raw[len(raw)/3] ^= 0x40
		if err := os.WriteFile(segFilePath(sd, 2), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, 1, 1) // whole-file CRC catches the flip
	})
	t.Run("killed-compaction", func(t *testing.T) {
		// A build killed before its rename leaves only a temp file; the
		// intact seg-2 stays authoritative and the leftover is swept.
		restore(t, false)
		if err := os.WriteFile(segTempPath(sd, 3), []byte("partial segment build"), 0o644); err != nil {
			t.Fatal(err)
		}
		s3 := openDurable(t, opts)
		defer s3.Close()
		rs := s3.Stats().Durability.Recovery
		if rs.StaleTempFiles == 0 || rs.InvalidSegments != 0 || rs.SegmentsMapped != 1 {
			t.Fatalf("recovery stats = %+v, want swept temp and seg-2 mapped", rs)
		}
		if _, err := os.Stat(segTempPath(sd, 3)); !os.IsNotExist(err) {
			t.Fatal("stale segment temp file survived recovery")
		}
		compareStores(t, s3, ref)
		diffQueries(t, r, s3, ref, 60)
	})
}

// TestSegmentLegacySnapshotCompat: a directory whose base is a legacy
// snap-*.snap (written by a pre-segment build) still opens — via the
// slow replay path — and the next Snapshot converts the shard to a
// segment and removes the snapshot.
func TestSegmentLegacySnapshotCompat(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 1})
	base := make(map[string]*jsontree.Tree)
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("k%02d", i)
		doc := fmt.Sprintf(`{"i":%d,"k":"v%d"}`, i, i%5)
		if err := s.Put(id, doc); err != nil {
			t.Fatal(err)
		}
		ref.Put(id, doc)
		tr, err := jsontree.Parse(doc)
		if err != nil {
			t.Fatal(err)
		}
		base[id] = tr
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 35; i++ { // a WAL tail past the base
		id := fmt.Sprintf("k%02d", i)
		if err := s.Put(id, `{"late":1}`); err != nil {
			t.Fatal(err)
		}
		ref.Put(id, `{"late":1}`)
	}
	sd := s.dur.shardDir(0)
	s.crashForTest()

	// Rewrite generation 1 in the legacy layout and drop the segment:
	// exactly what a directory written by an older build looks like.
	if err := writeSnapshot(osFS{}, sd, 1, base, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segFilePath(sd, 1)); err != nil {
		t.Fatal(err)
	}

	s2 := openDurable(t, opts)
	rs := s2.Stats().Durability.Recovery
	if rs.SnapshotsLoaded != 1 || rs.SegmentsMapped != 0 || rs.SnapshotDocs != 30 {
		t.Fatalf("recovery stats = %+v, want the legacy snapshot loaded", rs)
	}
	compareStores(t, s2, ref)

	// The next snapshot upgrades the shard to the segment layout.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segFilePath(sd, 2)); err != nil {
		t.Fatalf("conversion did not produce a segment: %v", err)
	}
	if _, err := os.Stat(snapFilePath(sd, 1)); !os.IsNotExist(err) {
		t.Fatal("legacy snapshot survived its conversion")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openDurable(t, opts)
	defer s3.Close()
	if rs := s3.Stats().Durability.Recovery; rs.SegmentsMapped != 1 {
		t.Fatalf("recovery stats = %+v, want the converted segment mapped", rs)
	}
	compareStores(t, s3, ref)
}

// TestSegmentDifferentialChurn is the tier-boundary differential:
// three rounds of random churn and compaction — with forced
// delete-then-reinsert across the boundary each round, so tombstones,
// shadowed segment documents and merged generations all occur — after
// which the segment-backed store must answer every front end's random
// queries identically to the in-memory reference, both mmap'd and on
// the forced heap fallback.
func TestSegmentDifferentialChurn(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(51))
	opts := Options{Shards: 4, DataDir: dir, Fsync: FsyncOff, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 4})
	ids := durableIDs()
	for round := 0; round < 3; round++ {
		for i := 0; i < 80; i++ {
			mutate(t, r, s, ref, ids)
		}
		if err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
		// Cross-tier churn: delete documents the segment just absorbed
		// and reinsert under the same IDs, so probes must mask the
		// tombstoned segment ordinal and find the memtable replacement.
		for j := 0; j < 5; j++ {
			id := ids[r.Intn(len(ids))]
			if _, err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
			ref.Delete(id)
			doc := gen.Document(r, durableDocOptions()).String()
			if err := s.Put(id, doc); err != nil {
				t.Fatal(err)
			}
			if err := ref.Put(id, doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ds := s.Stats().Durability; ds.Segments != 4 || ds.Compactions == 0 || ds.SegmentBytes == 0 {
		t.Fatalf("durability stats = %+v, want 4 live segments", ds)
	}
	compareStores(t, s, ref)
	diffQueries(t, r, s, ref, 120)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same directory on the forced read-into-heap fallback: identical
	// answers with no mapping involved.
	noMmap := opts
	noMmap.SegmentNoMmap = true
	s2 := openDurable(t, noMmap)
	defer s2.Close()
	if rs := s2.Stats().Durability.Recovery; rs.SegmentsMapped != 4 {
		t.Fatalf("recovery stats = %+v, want 4 segments on the heap path", rs)
	}
	compareStores(t, s2, ref)
	diffQueries(t, r, s2, ref, 120)
}

// TestSegmentProbeZeroAllocs pins the tentpole's hard constraint at
// the segment layer: once the probe scratch has grown, a steady-state
// probe of compressed posting lists — galloping intersection included
// — allocates nothing.
func TestSegmentProbeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	dir := t.TempDir()
	s := openDurable(t, Options{Shards: 1, DataDir: dir, Fsync: FsyncOff, SnapshotEvery: -1})
	defer s.Close()
	for i := 0; i < 2000; i++ {
		doc := fmt.Sprintf(`{"group":"g%d","flag":"on","tags":{"color":"c%d"}}`, i%64, i%5)
		if err := s.Put(fmt.Sprintf("doc%05d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil { // everything moves to the segment
		t.Fatal(err)
	}
	var terms []uint64
	for _, f := range engine.MustCompile(engine.LangMongoFind, `{"group":"g7","tags.color":"c3"}`).FindFacts() {
		if term, ok := factTerm(f, s.opts.MaxIndexDepth); ok {
			terms = append(terms, term)
		}
	}
	if len(terms) < 2 {
		t.Fatalf("expected at least 2 probe terms, got %d", len(terms))
	}
	sh := s.shards[0]
	if sh.seg == nil || sh.seg.n != 2000 {
		t.Fatal("documents did not land in the segment tier")
	}
	scr := acquireProbeScratch()
	defer releaseProbeScratch(scr)
	n := measureAllocs(func() {
		sh.mu.RLock()
		ords, _, _, err := sh.seg.probe(terms, scr, sh.segDead)
		sh.mu.RUnlock()
		if err != nil || len(ords) == 0 {
			t.Fatalf("probe: %d ordinals, err %v", len(ords), err)
		}
	})
	if n != 0 {
		t.Fatalf("steady-state segment probe allocates: %v allocs/op, want 0", n)
	}
}
