package store

// postings_codec.go: the on-wire posting-list layout segment files
// use. A list of sorted, duplicate-free uint32 ordinals is cut into
// blocks of segBlockSize entries; each block stores its values as
// varint deltas from the block's first ordinal, and that first
// ordinal lives in a fixed-width skip entry alongside the block's
// byte offset. Intersections gallop across the skip table — whole
// blocks whose ordinal range cannot contain a probe are skipped
// without decoding a byte — and decode at most the blocks they
// actually visit.
//
// Per term the layout is:
//
//	skip table: blockCount × (u32 firstOrdinal | u32 dataOffset)
//	block data: per block, (count-1) uvarint deltas (the first
//	            ordinal is the skip entry's, so a 1-entry block
//	            has no data at all)
//
// dataOffset is relative to the start of the skip table, so a term's
// whole encoding is position-independent. All integers little-endian;
// deltas are strictly positive (lists are strictly increasing).
//
// The decoder trusts nothing: every varint is bounds-checked against
// the term's slice, deltas of zero and ordinal overflow are errors,
// and a corrupt block yields an error — never a panic or an over-read
// (FuzzPostingsCodec pins this).

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// defaultSegmentBlockSize is the postings block length when
	// Options.SegmentBlockSize is zero. 128 keeps a decoded block in
	// two cache lines of uint32s while amortizing the skip entry to
	// under a bit per posting.
	defaultSegmentBlockSize = 128
	// maxSegmentBlockSize bounds configured block sizes; a block must
	// decode into a small pooled buffer.
	maxSegmentBlockSize = 1 << 15
	// skipEntrySize is the fixed width of one skip-table entry.
	skipEntrySize = 8
)

// errCorruptPostings marks a posting-list decode failure: a varint
// overrunning the term's bytes, a zero delta, ordinal overflow, or a
// skip table inconsistent with the declared count. Segment opens
// validate a whole-file CRC, so hitting this after open means the
// file changed underneath the map (or a bug); either way the decoder
// refuses rather than guessing.
var errCorruptPostings = errors.New("corrupt posting block")

// postingBlocks computes how many blocks an n-entry list occupies.
func postingBlocks(n, blockSize int) int {
	return (n + blockSize - 1) / blockSize
}

// encodedPostings is one term's complete on-wire encoding: the skip
// table followed by the block data.
//
// appendPostings appends it to dst and returns the extended slice.
// ords must be sorted and duplicate-free.
func appendPostings(dst []byte, ords []ordinal, blockSize int) []byte {
	blocks := postingBlocks(len(ords), blockSize)
	base := len(dst)
	// Reserve the skip table; offsets are patched as blocks are laid
	// down.
	for i := 0; i < blocks*skipEntrySize; i++ {
		dst = append(dst, 0)
	}
	for b := 0; b < blocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, len(ords))
		entry := dst[base+b*skipEntrySize:]
		binary.LittleEndian.PutUint32(entry, ords[lo])
		binary.LittleEndian.PutUint32(entry[4:], uint32(len(dst)-base))
		prev := ords[lo]
		for _, v := range ords[lo+1 : hi] {
			dst = binary.AppendUvarint(dst, uint64(v-prev))
			prev = v
		}
	}
	return dst
}

// postingList is a decoder's view of one term's encoding inside a
// segment: the raw bytes (skip table + block data), the entry count
// and the block size the writer used. The zero value is an empty
// list.
type postingList struct {
	raw       []byte
	count     int
	blockSize int
}

// blocks returns the skip-table length.
func (pl postingList) blocks() int {
	if pl.count == 0 {
		return 0
	}
	return postingBlocks(pl.count, pl.blockSize)
}

// blockLen returns how many ordinals block b holds.
func (pl postingList) blockLen(b int) int {
	if lo := b * pl.blockSize; lo+pl.blockSize > pl.count {
		return pl.count - lo
	}
	return pl.blockSize
}

// skipFirst returns block b's first ordinal from its skip entry.
func (pl postingList) skipFirst(b int) ordinal {
	return binary.LittleEndian.Uint32(pl.raw[b*skipEntrySize:])
}

// skipOff returns block b's data offset (relative to raw's start).
func (pl postingList) skipOff(b int) int {
	return int(binary.LittleEndian.Uint32(pl.raw[b*skipEntrySize+4:]))
}

// valid structurally checks the list header against its raw bytes so
// the per-block decoders can index the skip table without re-checking:
// count within bounds, a whole skip table present, offsets inside raw
// and monotone, first ordinals strictly increasing across blocks.
func (pl postingList) valid() error {
	if pl.count < 0 || pl.blockSize < 1 || pl.blockSize > maxSegmentBlockSize {
		return fmt.Errorf("%w: count %d blockSize %d", errCorruptPostings, pl.count, pl.blockSize)
	}
	if pl.count == 0 {
		return nil
	}
	blocks := pl.blocks()
	if blocks > len(pl.raw)/skipEntrySize {
		return fmt.Errorf("%w: %d blocks need %d skip bytes, have %d", errCorruptPostings, blocks, blocks*skipEntrySize, len(pl.raw))
	}
	prevOff := blocks * skipEntrySize
	for b := 0; b < blocks; b++ {
		off := pl.skipOff(b)
		if off < prevOff || off > len(pl.raw) {
			return fmt.Errorf("%w: block %d offset %d out of order or range", errCorruptPostings, b, off)
		}
		if b > 0 && pl.skipFirst(b) <= pl.skipFirst(b-1) {
			return fmt.Errorf("%w: block %d first ordinal not increasing", errCorruptPostings, b)
		}
		prevOff = off
	}
	return nil
}

// decodeBlock appends block b's ordinals to out and returns the
// extended slice. The caller must have run valid() once per list;
// decodeBlock still bounds-checks every varint so a corrupt data area
// errors instead of over-reading.
func (pl postingList) decodeBlock(b int, out []ordinal) ([]ordinal, error) {
	n := pl.blockLen(b)
	v := pl.skipFirst(b)
	out = append(out, v)
	data := pl.raw[pl.skipOff(b):]
	pos := 0
	for i := 1; i < n; i++ {
		d, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return out, fmt.Errorf("%w: block %d entry %d: truncated varint", errCorruptPostings, b, i)
		}
		pos += k
		if d == 0 || uint64(v)+d > uint64(^ordinal(0)) {
			return out, fmt.Errorf("%w: block %d entry %d: delta %d", errCorruptPostings, b, i, d)
		}
		v += ordinal(d)
		out = append(out, v)
	}
	return out, nil
}

// decodeAll appends every ordinal of the list to out.
func (pl postingList) decodeAll(out []ordinal) ([]ordinal, error) {
	var err error
	for b, blocks := 0, pl.blocks(); b < blocks; b++ {
		if out, err = pl.decodeBlock(b, out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// seekBlock returns the index of the last block whose first ordinal
// is ≤ x, starting no earlier than from (callers advance
// monotonically). It gallops: exponential probe over the skip table
// then a binary search of the bracketed window — the skip-level half
// of the compressed galloping intersection. probes reports the skip
// entries examined (the intersection's step counter includes them).
func (pl postingList) seekBlock(from int, x ordinal) (blk, probes int) {
	blocks := pl.blocks()
	// Exponential probe: find the first block past x.
	span := 1
	hi := from + 1
	for hi < blocks && pl.skipFirst(hi) <= x {
		probes++
		hi += span
		span <<= 1
	}
	if hi > blocks {
		hi = blocks
	}
	lo := from + 1
	for lo < hi { // binary search for first block with first > x
		mid := (lo + hi) / 2
		probes++
		if pl.skipFirst(mid) <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1, probes
}

// intersectPostings intersects a sorted candidate slice with a
// compressed list, appending survivors to dst. Blocks are located by
// galloping over the skip table and decoded at most once each into
// scratch (which is reused across blocks); blocks no candidate lands
// in are never decoded. steps counts ordinal comparisons plus skip
// probes — the same work metric the in-memory intersection reports.
func intersectPostings(dst, cand []ordinal, pl postingList, scratch []ordinal) (_ []ordinal, _ []ordinal, steps int, err error) {
	if pl.count == 0 || len(cand) == 0 {
		return dst, scratch, 0, nil
	}
	curBlk := -1 // block currently decoded into scratch
	fromBlk := 0 // seek lower bound (candidates ascend)
	pos := 0     // in-block cursor; monotone while the block is current
	for _, x := range cand {
		if x < pl.skipFirst(0) {
			steps++
			continue
		}
		blk, probes := pl.seekBlock(fromBlk, x)
		steps += probes
		if blk != curBlk {
			scratch = scratch[:0]
			if scratch, err = pl.decodeBlock(blk, scratch); err != nil {
				return dst, scratch, steps, err
			}
			curBlk, pos = blk, 0
		}
		// Same block as the previous candidate: the scan resumes at
		// pos instead of re-searching the prefix (candidates ascend).
		fromBlk = blk
		for pos < len(scratch) && scratch[pos] < x {
			pos++
			steps++
		}
		steps++
		if pos < len(scratch) && scratch[pos] == x {
			dst = append(dst, x)
		}
	}
	return dst, scratch, steps, nil
}
