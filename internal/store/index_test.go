package store

import (
	"fmt"
	"math/rand"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// Edge-case coverage for the dictionary-encoded posting lists:
// delete-then-reinsert of one ID, tombstone compaction across
// snapshot/recover, the empty-intersection early exit, and a property
// test that probe output is always sorted and duplicate-free under
// arbitrary churn.

// TestDeleteReinsertSameID pins ordinal handling across a
// delete/reinsert cycle of the same document ID: the reinsert draws a
// fresh ordinal (never the tombstoned one — posting lists would
// otherwise resurrect the old document's terms), and queries see
// exactly the new content.
func TestDeleteReinsertSameID(t *testing.T) {
	s := New(Options{Shards: 1})
	put := func(doc string) {
		t.Helper()
		if err := s.Put("x", doc); err != nil {
			t.Fatal(err)
		}
	}
	put(`{"color":"red","n":1}`)
	if _, err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	put(`{"color":"green","n":2}`)

	if got := mustFind(t, s, engine.LangMongoFind, `{"color":"red"}`); len(got) != 0 {
		t.Fatalf("reinserted doc still matches its pre-delete content: %v", got)
	}
	if got := mustFind(t, s, engine.LangMongoFind, `{"color":"green"}`); len(got) != 1 || got[0] != "x" {
		t.Fatalf(`find color=green = %v, want [x]`, got)
	}
	// Whatever ordinal "x" now holds must resolve to the new tree.
	ix := s.shards[0].ix
	ord, ok := ix.ords["x"]
	if !ok {
		t.Fatal("dictionary lost the reinserted ID")
	}
	if ix.ids[ord] != "x" || ix.trees[ord] == nil {
		t.Fatalf("dictionary slot %d does not hold the live document", ord)
	}
	// And the index must drain completely once the doc goes away again.
	if _, err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	compactAll(s)
	if st := s.Stats(); st.Docs != 0 || st.Terms != 0 || st.Entries != 0 {
		t.Fatalf("index did not drain after reinsert+delete: %+v", st)
	}
}

// TestTombstoneCompactionAcrossSnapshotRecover drives a durable store
// through put/delete churn, snapshots (which compacts every shard),
// crashes it, and requires the recovered store to match an in-memory
// reference built from only the surviving documents — tombstones must
// neither resurrect deleted documents nor leak into the snapshot.
func TestTombstoneCompactionAcrossSnapshotRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 4, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 4})

	apply := func(st *Store) {
		for i := 0; i < 60; i++ {
			if err := st.Put(fmt.Sprintf("doc%02d", i), fmt.Sprintf(`{"i":%d,"bucket":"b%d"}`, i, i%4)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 60; i += 2 { // tombstone half the collection
			if _, err := st.Delete(fmt.Sprintf("doc%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 60; i += 6 { // and reinsert every third deleted ID
			if err := st.Put(fmt.Sprintf("doc%02d", i), fmt.Sprintf(`{"i":%d,"back":1}`, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(s)
	apply(ref)

	if err := s.Snapshot(); err != nil { // rotates WALs and compacts every shard
		t.Fatal(err)
	}
	// Post-snapshot churn so recovery also replays a WAL tail over the
	// compacted base.
	for _, st := range []*Store{s, ref} {
		if err := st.Put("doc01", `{"i":1,"rewritten":1}`); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Delete("doc03"); err != nil {
			t.Fatal(err)
		}
	}
	s.crashForTest()

	s2 := openDurable(t, opts)
	defer s2.Close()
	compareStores(t, s2, ref)

	// The rebuilt index must answer exactly like a scan after all the
	// tombstone churn.
	for _, src := range []string{`{"bucket":"b1"}`, `{"back":1}`, `{"rewritten":1}`} {
		p, err := s2.Engine().Compile(engine.LangMongoFind, src)
		if err != nil {
			t.Fatal(err)
		}
		ids, _, err := s2.Find(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s2.FindScan(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(ids, want) {
			t.Fatalf("recovered index disagrees with scan on %s: %v vs %v", src, ids, want)
		}
	}
}

// TestProbeEmptyIntersectionEarlyExit pins the missing-term short
// circuit: one absent term empties the intersection with zero merge
// steps, whatever else is in the term list.
func TestProbeEmptyIntersectionEarlyExit(t *testing.T) {
	s := New(Options{Shards: 1})
	for i := 0; i < 32; i++ {
		if err := s.Put(fmt.Sprintf("d%d", i), fmt.Sprintf(`{"a":%d,"b":%d}`, i, i%4)); err != nil {
			t.Fatal(err)
		}
	}
	ix := s.shards[0].ix
	present := presenceTerm(pathHash([]jsontree.Step{jsontree.Key("a")}))
	absent := presenceTerm(pathHash([]jsontree.Step{jsontree.Key("nope")}))
	scr := acquireProbeScratch()
	defer releaseProbeScratch(scr)
	for _, terms := range [][]uint64{
		{absent},
		{present, absent},
		{absent, present},
		nil,
	} {
		ords, steps, _ := ix.probe(terms, scr)
		if len(ords) != 0 || steps != 0 {
			t.Fatalf("probe(%v) = %d ordinals, %d steps; want empty with zero steps", terms, len(ords), steps)
		}
	}
}

// TestProbeSortedDedupProperty is the probe invariant under random
// churn: after any interleaving of puts, replacements and deletes (so
// posting lists carry tombstones mid-run), intersecting any subset of
// live terms yields strictly ascending ordinals whose live documents
// all carry every probed term.
func TestProbeSortedDedupProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := New(Options{Shards: 1})
	ix := s.shards[0].ix
	colors := []string{"red", "green", "blue"}
	live := map[string]string{} // id → color
	for round := 0; round < 400; round++ {
		id := fmt.Sprintf("d%d", r.Intn(50))
		switch r.Intn(3) {
		case 0:
			s.Delete(id)
			delete(live, id)
		default:
			color := colors[r.Intn(len(colors))]
			if err := s.Put(id, fmt.Sprintf(`{"color":"%s","pad":%d}`, color, r.Intn(5))); err != nil {
				t.Fatal(err)
			}
			live[id] = color
		}
		if round%7 != 0 {
			continue
		}
		// Probe a random term pair: presence of "color" plus one value.
		color := colors[r.Intn(len(colors))]
		valTree := jsontree.MustParse(fmt.Sprintf(`{"color":"%s"}`, color))
		valHash := valTree.SubtreeHash(valTree.ChildByKey(valTree.Root(), "color"))
		terms := []uint64{
			presenceTerm(pathHash([]jsontree.Step{jsontree.Key("color")})),
			valueTerm(pathHash([]jsontree.Step{jsontree.Key("color")}), valHash),
		}
		scr := acquireProbeScratch()
		ords, _, _ := ix.probe(terms, scr)
		for i := 1; i < len(ords); i++ {
			if ords[i-1] >= ords[i] {
				t.Fatalf("round %d: probe output not strictly ascending: %v", round, ords)
			}
		}
		got := map[string]bool{}
		for _, ord := range ords {
			if id := ix.ids[ord]; id != "" {
				if got[id] {
					t.Fatalf("round %d: live ID %q yielded twice", round, id)
				}
				got[id] = true
			}
		}
		releaseProbeScratch(scr)
		// Soundness + completeness against the model: the live probe
		// hits are exactly the live docs of that color.
		for id, c := range live {
			if (c == color) != got[id] {
				t.Fatalf("round %d: probe for %q got[%s]=%v, model color %q", round, color, id, got[id], c)
			}
		}
		if len(got) != countColor(live, color) {
			t.Fatalf("round %d: probe returned %d live docs, model has %d", round, len(got), countColor(live, color))
		}
	}
}

func countColor(live map[string]string, color string) int {
	n := 0
	for _, c := range live {
		if c == color {
			n++
		}
	}
	return n
}
