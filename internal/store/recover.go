package store

// recover.go: opening a durable store. Open maps, per shard, the
// newest segment file that validates end-to-end (magic, footer,
// whole-file CRC) and replays only the WAL generations at or after it
// into the memtable, truncating a torn tail off the active WAL
// segment. Mapping a segment is O(1) in the document count — no JSON
// is parsed and no posting list rebuilt — so open time is governed by
// the WAL tail alone. The layout under Options.DataDir:
//
//	MANIFEST.json            format version + shard count + index depth
//	shard-0000/
//	  seg-0000000003.seg     state at the instant wal-3 started (mmap'd)
//	  wal-0000000003.log     mutations since that instant (active tail)
//
// Generation g's segment pairs with generation g's WAL: seg-g is the
// state at the moment wal-g began, so recovery is map(seg-G) then
// replay wal-G, wal-G+1, … for the greatest valid G. Failed segment
// builds leave extra WAL generations behind (a rotation happens
// before the segment is written); they replay in order like any
// other. Directories written by earlier builds hold snap-*.snap
// snapshots instead; those still load (slowly, via full replay into
// the memtable) and the next snapshot converts the shard to a
// segment.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jsonlogic/internal/jsontree"
)

// manifest pins the on-disk format, the shard count and the index
// depth bound. The shard count is authoritative: document IDs are
// routed to shard files by hash, so reopening with a different count
// would scatter replay across the wrong directories. The depth bound
// is authoritative for the same reason one level up: segment posting
// lists are depth-bounded at write time, so reopening with a larger
// bound would have the planner probe terms the segments never indexed
// and silently miss matches. A manifest written before the field
// existed adopts the configured depth and is rewritten.
type manifest struct {
	Version  int `json:"version"`
	Shards   int `json:"shards"`
	MaxDepth int `json:"max_index_depth,omitempty"`
}

const manifestVersion = 1

// durability is the durable half of a Store: one WAL per shard plus
// the snapshotter/flusher state. Nil on in-memory stores.
type durability struct {
	dir           string
	fs            VFS
	policy        FsyncPolicy
	interval      time.Duration
	snapshotEvery int
	retryBase     time.Duration // initial heal/snapshot-retry backoff

	wals     []*shardWAL
	recovery RecoveryStats
	lock     *os.File // flock'd LOCK file; held until Close

	snapMu         sync.Mutex // serializes snapshots (manual and background)
	snapshots      atomic.Uint64
	snapshotErrors atomic.Uint64
	compactions    atomic.Uint64 // segment builds (merge + swap) completed

	// Degraded-mode telemetry: heal attempts on degraded shards and
	// heals that completed (fresh WAL generation + reconciling
	// segment, writes re-enabled).
	walRetries atomic.Uint64
	walHeals   atomic.Uint64

	stop chan struct{}
	done chan struct{}

	// closeOnce runs the shutdown sequence exactly once (Close or
	// crashForTest); closedCh is closed after closeErr is final, so
	// concurrent Close calls block until the result exists instead of
	// racing the first closer's writes.
	closeOnce sync.Once
	closedCh  chan struct{}
	closeErr  error
}

func (d *durability) shardDir(i int) string {
	return filepath.Join(d.dir, fmt.Sprintf("shard-%04d", i))
}

// RecoveryStats reports what Open found and repaired.
type RecoveryStats struct {
	// SegmentsMapped counts shards restored by mapping a segment file;
	// SegmentDocs the documents those segments hold.
	SegmentsMapped int `json:"segments_mapped"`
	SegmentDocs    int `json:"segment_docs"`
	// InvalidSegments counts segment files that failed end-to-end
	// validation (torn footer, CRC mismatch, implausible structure) and
	// were skipped in favor of an older generation — the torn-segment
	// recovery counter /metrics exposes.
	InvalidSegments int `json:"invalid_segments"`
	// SnapshotsLoaded counts shards restored from a legacy snapshot;
	// SnapshotDocs the documents those snapshots held.
	SnapshotsLoaded int `json:"snapshots_loaded"`
	SnapshotDocs    int `json:"snapshot_docs"`
	// InvalidSnapshots counts snapshot files that failed validation and
	// were skipped in favor of an older generation (or a pure replay).
	InvalidSnapshots int `json:"invalid_snapshots"`
	// WALSegments and WALRecordsReplayed cover the replayed log tail.
	WALSegments        int `json:"wal_segments"`
	WALRecordsReplayed int `json:"wal_records_replayed"`
	// TornTails counts active segments that ended mid-record and were
	// truncated back to the last whole record; TruncatedBytes is the
	// total amount cut.
	TornTails      int   `json:"torn_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	// StaleTempFiles counts leftover snapshot temp files removed.
	StaleTempFiles int `json:"stale_temp_files"`
}

// Open opens (creating if necessary) a durable Store rooted at
// opts.DataDir, recovering whatever a previous process made durable:
// the latest valid snapshot per shard plus the replayed WAL tail. A
// torn write at the end of an active segment — the fingerprint of a
// crash mid-append — is truncated away; corruption anywhere else is an
// error, never a silent gap. The recovered store's inverted path index
// is rebuilt en route, and RecoveryStats (via Stats) reports what was
// found. See New for the in-memory variant.
func Open(opts Options) (*Store, error) {
	if opts.DataDir == "" {
		return nil, errors.New("store: Open requires Options.DataDir; use New for an in-memory store")
	}
	opts = normalizeOptions(opts)
	fs := opts.VFS
	if err := fs.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	// One owner per data directory: concurrent processes would
	// interleave independent buffered flushes into the same O_APPEND
	// segments and truncate each other's tails during recovery. The
	// flock dies with the process, so a crash never wedges a restart.
	lock, err := lockDataDir(opts.DataDir)
	if err != nil {
		return nil, err
	}
	locked := true
	defer func() {
		if locked {
			lock.Close()
		}
	}()
	// Sweep manifest temp files orphaned by a crash inside
	// writeFileAtomic (the shard-directory sweep below only covers
	// snap-*.tmp leftovers).
	if ents, err := fs.ReadDir(opts.DataDir); err == nil {
		for _, e := range ents {
			if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
				fs.Remove(filepath.Join(opts.DataDir, e.Name()))
			}
		}
	}
	mPath := filepath.Join(opts.DataDir, "MANIFEST.json")
	if raw, err := fs.ReadFile(mPath); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("store: open: %s: %w", mPath, err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("store: open: %s: format version %d, this build reads %d", mPath, m.Version, manifestVersion)
		}
		if m.Shards < 1 || m.Shards&(m.Shards-1) != 0 {
			// The shard mask arithmetic requires a power of two (New
			// rounds up; a manifest that disagrees is corrupt).
			return nil, fmt.Errorf("store: open: %s: invalid shard count %d (must be a power of two)", mPath, m.Shards)
		}
		// The manifest wins: the files on disk are laid out for its
		// shard count and their segments indexed to its depth bound.
		opts.Shards = m.Shards
		if m.MaxDepth > 0 {
			opts.MaxIndexDepth = m.MaxDepth
		} else {
			// Pre-segment manifest: adopt the configured depth (the one
			// every file so far was written under, since nothing else
			// was ever configurable) and pin it from now on.
			m.MaxDepth = opts.MaxIndexDepth
			raw, _ := json.Marshal(m)
			if err := writeFileAtomic(fs, mPath, append(raw, '\n')); err != nil {
				return nil, fmt.Errorf("store: open: write manifest: %w", err)
			}
		}
	} else if os.IsNotExist(err) {
		raw, _ := json.Marshal(manifest{Version: manifestVersion, Shards: opts.Shards, MaxDepth: opts.MaxIndexDepth})
		if err := writeFileAtomic(fs, mPath, append(raw, '\n')); err != nil {
			return nil, fmt.Errorf("store: open: write manifest: %w", err)
		}
	} else {
		return nil, fmt.Errorf("store: open: %w", err)
	}

	s := newStore(opts)
	d := &durability{
		dir:           opts.DataDir,
		fs:            fs,
		policy:        opts.Fsync,
		interval:      opts.FsyncInterval,
		snapshotEvery: opts.SnapshotEvery,
		retryBase:     opts.DegradedRetry,
		wals:          make([]*shardWAL, len(s.shards)),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		closedCh:      make(chan struct{}),
	}
	s.dur = d

	var rs RecoveryStats
	var maxSeq uint64
	for i := range s.shards {
		if err := s.recoverShard(i, &rs, &maxSeq); err != nil {
			// Close whatever WALs are already open; the store is not
			// returned.
			for _, w := range d.wals {
				if w != nil {
					w.close()
				}
			}
			return nil, err
		}
	}
	d.recovery = rs

	// A schema-enforcing store promises every resident document
	// conforms — the semantic planner's schema verdicts (short-circuits,
	// pruned terms) are only sound under that invariant — so recovered
	// documents are validated too. Data written without the schema (or
	// under a different one) fails the open rather than silently
	// weakening the invariant.
	if opts.Schema != nil {
		var verr error
		for _, sh := range s.shards {
			// sh.each resolves segment documents too: enforcement must
			// cover both tiers, so a schema-enforcing store trades the
			// O(1) open for the invariant (every resident doc conforms).
			eerr := sh.each(func(id string, t *jsontree.Tree) {
				if verr != nil {
					return
				}
				verr = s.validateSchema(fmt.Sprintf("recovered document %q", id), t)
			})
			if verr == nil {
				verr = eerr
			}
			if verr != nil {
				break
			}
		}
		if verr != nil {
			for _, w := range d.wals {
				w.close()
			}
			return nil, fmt.Errorf("store: open: %w", verr)
		}
	}

	// Make the shard-directory entries themselves durable (the files
	// inside were synced as they were created).
	if err := fs.SyncDir(opts.DataDir); err != nil {
		for _, w := range d.wals {
			w.close()
		}
		return nil, fmt.Errorf("store: open: sync data dir: %w", err)
	}

	// Seed the bulk-ingest ID sequence past every auto-assigned ID a
	// previous process handed out — snapshot footers carry the counter
	// (covering IDs deleted before the snapshot), replayed puts cover
	// the WAL tail — so a restart never recycles an ID a client may
	// have observed.
	s.seq.Store(maxSeq)

	d.lock = lock
	locked = false // ownership passes to the store; released in Close

	// maintain always runs on a durable store: even under FsyncAlways
	// with automatic snapshots disabled it owns the degraded-shard
	// heal probe, without which a transient disk fault would leave the
	// store read-only forever.
	go d.maintain(s)
	return s, nil
}

// lockDataDir takes the exclusive advisory lock on dir's LOCK file,
// failing fast when another live process holds it. The locking
// primitive lives in lock_unix.go / lock_other.go.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: open: %s is in use by another process (%v)", dir, err)
	}
	return f, nil
}

// noteAutoID raises *maxSeq past id when id is a bulk auto-assigned
// ID ("d<number>").
func noteAutoID(id string, maxSeq *uint64) {
	if len(id) < 2 || id[0] != 'd' {
		return
	}
	if n, err := strconv.ParseUint(id[1:], 10, 64); err == nil && n+1 > *maxSeq {
		*maxSeq = n + 1
	}
}

// recoverShard restores shard i from its directory, creating it on
// first open, and leaves d.wals[i] open for appending. maxSeq is
// raised past every auto-assigned ID seen in snapshots (their footers
// persist the counter) and replayed WAL puts.
func (s *Store) recoverShard(i int, rs *RecoveryStats, maxSeq *uint64) error {
	d := s.dur
	dir := d.shardDir(i)
	if err := d.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: recover shard %d: %w", i, err)
	}
	entries, err := d.fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: recover shard %d: %w", i, err)
	}
	type baseCand struct {
		gen  uint64
		kind string
	}
	var bases []baseCand
	var walGens []uint64
	for _, e := range entries {
		name := e.Name()
		switch gen, kind := parseGenName(name); kind {
		case "wal":
			walGens = append(walGens, gen)
		case "seg", "snap":
			bases = append(bases, baseCand{gen: gen, kind: kind})
		}
		if filepath.Ext(name) == ".tmp" {
			// A segment or snapshot build that never reached its rename;
			// the WAL covering it is still intact.
			d.fs.Remove(filepath.Join(dir, name))
			rs.StaleTempFiles++
		}
	}
	// Descending generation; a segment outranks a same-generation
	// legacy snapshot (they hold identical state, the segment is free
	// to open).
	sort.Slice(bases, func(a, b int) bool {
		if bases[a].gen != bases[b].gen {
			return bases[a].gen > bases[b].gen
		}
		return bases[a].kind == "seg"
	})
	sort.Slice(walGens, func(a, b int) bool { return walGens[a] < walGens[b] }) // ascending

	// Latest base that validates end-to-end wins; invalid ones are
	// skipped (never partially applied) in favor of older generations.
	// A segment base is mapped, not loaded: O(1) in its document count.
	sh := s.shards[i]
	baseGen := uint64(0)
	for _, c := range bases {
		if c.kind == "seg" {
			sr, err := openSegment(d.fs, segFilePath(dir, c.gen), c.gen, s.opts.SegmentNoMmap)
			if err != nil {
				rs.InvalidSegments++
				continue
			}
			sh.seg = sr
			sh.segDead = newBitmap(sr.n)
			sh.segLive = sr.n
			if sr.seq > *maxSeq {
				*maxSeq = sr.seq
			}
			baseGen = c.gen
			rs.SegmentsMapped++
			rs.SegmentDocs += sr.n
			break
		}
		docs, snapSeq, err := loadSnapshot(d.fs, snapFilePath(dir, c.gen))
		if err != nil {
			rs.InvalidSnapshots++
			continue
		}
		if snapSeq > *maxSeq {
			*maxSeq = snapSeq
		}
		baseGen = c.gen
		rs.SnapshotsLoaded++
		rs.SnapshotDocs += len(docs)
		for id, t := range docs {
			s.memPut(id, t)
			noteAutoID(id, maxSeq)
		}
		break
	}

	// Replay every WAL generation from the base on, in order. The set
	// must be contiguous — a missing middle segment would silently drop
	// a window of mutations, so it is an error, not a skip.
	replay := walGens[:0]
	for _, g := range walGens {
		if g >= baseGen {
			replay = append(replay, g)
		}
	}
	// The first replayed generation must be the base itself: segments
	// (and snapshots) obsolete — and delete — everything before their
	// generation, so a later start means the covering base failed to
	// validate and the records bridging the gap are gone. Refuse to
	// resurrect a partial history.
	if len(replay) > 0 && replay[0] != baseGen {
		return fmt.Errorf("store: recover shard %d: no usable segment or snapshot for generation %d (WAL starts there, base is %d): unrecoverable gap", i, replay[0], baseGen)
	}
	activeGen := baseGen
	activeSegRecords := uint64(0)
	for k, g := range replay {
		if k > 0 && g != replay[k-1]+1 {
			return fmt.Errorf("store: recover shard %d: WAL generation gap: %d then %d", i, replay[k-1], g)
		}
		last := k == len(replay)-1
		records, torn, cut, err := s.replayWAL(walPath(dir, g), last, maxSeq)
		if err != nil {
			return fmt.Errorf("store: recover shard %d: %w", i, err)
		}
		if torn && !last {
			// Rotation seals (flushes + fsyncs) a segment before its
			// successor exists, so a torn non-final segment means the
			// disk lost synced data: refuse to guess. replayWAL left
			// the file untouched in this case, so the refusal holds
			// across restarts instead of destroying its own evidence.
			return fmt.Errorf("store: recover shard %d: %s is torn but newer generations exist", i, walPath(dir, g))
		}
		if torn {
			rs.TornTails++
			rs.TruncatedBytes += cut
		}
		rs.WALSegments++
		rs.WALRecordsReplayed += records
		activeGen = g
		activeSegRecords = uint64(records)
	}

	w, err := openShardWAL(d.fs, i, dir, activeGen, d.policy, activeSegRecords)
	if err != nil {
		return err
	}
	d.wals[i] = w
	return nil
}

// parseGenName classifies a shard-directory entry as a WAL segment
// ("wal"), an index segment file ("seg"), a legacy snapshot ("snap")
// or neither (""), returning its generation number.
func parseGenName(name string) (gen uint64, kind string) {
	cut := func(prefix, suffix string) (string, bool) {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) && len(name) > len(prefix)+len(suffix) {
			return name[len(prefix) : len(name)-len(suffix)], true
		}
		return "", false
	}
	if mid, ok := cut("wal-", ".log"); ok {
		if g, err := strconv.ParseUint(mid, 10, 64); err == nil {
			return g, "wal"
		}
	}
	if mid, ok := cut("seg-", ".seg"); ok {
		if g, err := strconv.ParseUint(mid, 10, 64); err == nil {
			return g, "seg"
		}
	}
	if mid, ok := cut("snap-", ".snap"); ok {
		if g, err := strconv.ParseUint(mid, 10, 64); err == nil {
			return g, "snap"
		}
	}
	return 0, ""
}

// replayWAL applies one segment's records to the in-memory store,
// raising *maxSeq past replayed auto-assigned IDs (puts of since-
// deleted documents included). A torn tail of the active (last)
// segment is truncated off the file so it can be appended to again;
// a torn non-last segment is reported but left untouched — the caller
// refuses recovery, and the evidence must survive for the next
// attempt to refuse too. records is the count applied, cut the bytes
// past the last whole record.
func (s *Store) replayWAL(path string, last bool, maxSeq *uint64) (records int, torn bool, cut int64, err error) {
	fs := s.dur.fs
	f, err := fs.Open(path)
	if err != nil {
		return 0, false, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, false, 0, err
	}
	size := st.Size()
	br := bufio.NewReaderSize(f, walBufSize)

	truncateAt := func(off int64) error {
		f.Close()
		if !last {
			return nil // leave the evidence; the caller refuses recovery
		}
		if err := fs.Truncate(path, off); err != nil {
			return fmt.Errorf("%s: truncate torn tail: %w", path, err)
		}
		return nil
	}

	magic := make([]byte, len(walMagic))
	if n, rerr := io.ReadFull(br, magic); rerr != nil || string(magic) != walMagic {
		if n == 0 && rerr == io.EOF {
			// Empty file: a segment created but never flushed.
			f.Close()
			return 0, false, 0, nil
		}
		// A torn header: nothing in the file is trustworthy.
		return 0, true, size, truncateAt(0)
	}
	offset := int64(len(walMagic))
	for {
		rec, n, rerr := readRecord(br)
		if rerr == io.EOF {
			f.Close()
			return records, false, 0, nil
		}
		if errors.Is(rerr, errTorn) {
			return records, true, size - offset, truncateAt(offset)
		}
		if rerr != nil {
			f.Close()
			return records, false, 0, fmt.Errorf("%s: %w", path, rerr)
		}
		switch rec.op {
		case opPut:
			t, perr := jsontree.Parse(rec.doc)
			if perr != nil {
				// The CRC passed but the payload is not a document we
				// ever wrote: format corruption, not a torn write.
				f.Close()
				return records, false, 0, fmt.Errorf("%s: record %d: %w", path, records, perr)
			}
			s.memPut(rec.id, t)
			noteAutoID(rec.id, maxSeq)
		case opDelete:
			s.memDelete(rec.id)
		default:
			f.Close()
			return records, false, 0, fmt.Errorf("%s: record %d: unknown op %d", path, records, rec.op)
		}
		records++
		offset += n
	}
}

// maintain is the background loop of a durable store: the periodic
// flush that implements FsyncInterval (and bounds the buffered tail
// under FsyncOff), the snapshot trigger that rolls a shard's WAL into
// a segment once it accumulates SnapshotEvery records (failures are
// logged and retried with per-shard exponential backoff, never
// dropped), and the heal probe that retries degraded shards until the
// disk recovers.
func (d *durability) maintain(s *Store) {
	defer close(d.done)
	// Under FsyncAlways every commit already syncs; don't wake 10×/s
	// for a no-op. A nil channel blocks forever in select.
	var flushC <-chan time.Time
	if d.policy == FsyncInterval || d.policy == FsyncOff {
		flush := time.NewTicker(d.interval)
		defer flush.Stop()
		flushC = flush.C
	}
	snap := time.NewTicker(snapshotPoll)
	defer snap.Stop()
	probe := time.NewTicker(degradedPoll)
	defer probe.Stop()
	// Per-shard retry state, owned by this goroutine: when the next
	// attempt may run and the current backoff. The ticker fires often;
	// these gates are what implement "exponential backoff".
	healAt := make([]time.Time, len(d.wals))
	healBackoff := make([]time.Duration, len(d.wals))
	snapAt := make([]time.Time, len(d.wals))
	snapBackoff := make([]time.Duration, len(d.wals))
	for {
		select {
		case <-d.stop:
			return
		case <-flushC:
			switch d.policy {
			case FsyncInterval:
				for _, w := range d.wals {
					w.syncNow() // sticky errors surface via Stats/Close
				}
			case FsyncOff:
				for _, w := range d.wals {
					w.flushOnly()
				}
			}
		case <-snap.C:
			if d.snapshotEvery <= 0 {
				continue
			}
			now := time.Now()
			d.snapMu.Lock()
			for i, w := range d.wals {
				// A degraded shard is healShard's problem (its heal ends
				// in exactly this snapshot); a failed shard that is not
				// yet degraded cannot rotate anyway.
				if w.degraded.Load() || now.Before(snapAt[i]) {
					continue
				}
				if w.segmentRecords() >= uint64(d.snapshotEvery) {
					if err := s.snapshotShard(i); err != nil {
						snapBackoff[i] = nextBackoff(snapBackoff[i], d.retryBase)
						snapAt[i] = now.Add(snapBackoff[i])
						slog.Warn("store: background snapshot failed; retrying",
							"shard", i, "backoff", snapBackoff[i], "err", err)
					} else {
						snapBackoff[i] = 0
					}
				}
			}
			d.snapMu.Unlock()
		case <-probe.C:
			now := time.Now()
			for i, w := range d.wals {
				if !w.degraded.Load() || now.Before(healAt[i]) {
					continue
				}
				d.walRetries.Add(1)
				if err := s.healShard(i); err != nil {
					healBackoff[i] = nextBackoff(healBackoff[i], d.retryBase)
					healAt[i] = now.Add(healBackoff[i])
					slog.Warn("store: degraded shard heal failed; backing off",
						"shard", i, "backoff", healBackoff[i], "err", err)
				} else {
					healBackoff[i] = 0
					d.walHeals.Add(1)
					slog.Info("store: shard healed; writes re-enabled", "shard", i)
				}
			}
		}
	}
}

// healShard brings a degraded shard back to writable: reset abandons
// the failed WAL generation and opens a fresh one, and a snapshot
// folds the shard's full in-memory state into a new segment — records
// the broken WAL dropped from its buffer were never acknowledged, but
// they were applied in memory, and the segment re-captures them so
// disk and memory reconverge. Only after both steps does the shard
// accept writes again. Each step is idempotent: if reset succeeds and
// the snapshot fails, the next probe finds a healthy WAL (reset
// no-ops) and retries just the snapshot.
func (s *Store) healShard(i int) error {
	d := s.dur
	w := d.wals[i]
	if err := w.reset(); err != nil {
		return err
	}
	d.snapMu.Lock()
	err := s.snapshotShard(i)
	d.snapMu.Unlock()
	if err != nil {
		return err
	}
	w.degraded.Store(false)
	return nil
}

// nextBackoff doubles cur within [base, maxRetryBackoff].
func nextBackoff(cur, base time.Duration) time.Duration {
	if cur <= 0 {
		return base
	}
	if cur *= 2; cur > maxRetryBackoff {
		cur = maxRetryBackoff
	}
	return cur
}

// snapshotPoll is how often the background snapshotter checks segment
// sizes against Options.SnapshotEvery.
const snapshotPoll = 500 * time.Millisecond

// degradedPoll is how often the heal probe scans for degraded shards.
// The scan is a per-shard atomic load when healthy, so it can afford
// to be frequent; actual heal attempts are paced by the exponential
// backoff (Options.DegradedRetry up to maxRetryBackoff).
const degradedPoll = 50 * time.Millisecond

// maxRetryBackoff caps the heal and snapshot-retry backoff.
const maxRetryBackoff = 30 * time.Second

// Close flushes and fsyncs every shard's WAL (whatever the fsync
// policy — a clean shutdown loses nothing), stops the background
// flusher and snapshotter, and closes the log files. Further writes
// fail. Close is idempotent and safe to call concurrently — every
// caller returns the one true result after the shutdown finished; on
// an in-memory store it is a no-op.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	d := s.dur
	d.closeOnce.Do(func() {
		defer close(d.closedCh)
		close(d.stop)
		<-d.done
		for _, w := range d.wals {
			if err := w.close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
		d.lock.Close() // releases the flock
	})
	<-d.closedCh
	return d.closeErr
}

// crashForTest simulates an unclean process death: background loops
// stop and every WAL descriptor is closed with its user-space buffer
// discarded and no final fsync. What the store looks like after this
// is exactly what the fsync policy promised — tests reopen the
// directory and check.
func (s *Store) crashForTest() {
	d := s.dur
	if d == nil {
		return
	}
	d.closeOnce.Do(func() {
		defer close(d.closedCh)
		close(d.stop)
		<-d.done
		for _, w := range d.wals {
			w.crashForTest()
		}
		// A real process death releases the flock with the process;
		// closing the fd is the in-process equivalent.
		d.lock.Close()
		d.closeErr = errWALClosed
	})
	<-d.closedCh
}

// writeFileAtomic writes data via a temp file and rename, fsyncing
// both the file and its directory.
func writeFileAtomic(fs VFS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(name)
		return err
	}
	if err := fs.Rename(name, path); err != nil {
		fs.Remove(name)
		return err
	}
	return fs.SyncDir(dir)
}
