package store

import (
	"errors"
	"strings"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/trace"
)

// semanticEngine returns an engine with the semantic pass on at the
// daemon's default budget.
func semanticEngine(t *testing.T, opts engine.Options) *engine.Engine {
	t.Helper()
	if opts.SemanticBudget == 0 {
		opts.SemanticBudget = 50000
	}
	return engine.New(opts)
}

// seedDocs fills the store with documents that carry the keys the
// short-circuit queries mention — if the short-circuit failed, the
// queries would at least probe these postings.
func seedDocs(t *testing.T, s *Store) {
	t.Helper()
	docs := map[string]string{
		"a": `{"k0": 1, "k1": "x"}`,
		"b": `{"k0": 7}`,
		"c": `{"k1": {"k0": 3}}`,
		"d": `["k0", 2]`,
	}
	for id, doc := range docs {
		if err := s.Put(id, doc); err != nil {
			t.Fatalf("put %s: %v", id, err)
		}
	}
}

// TestUnsatShortCircuitAllFrontEnds is the short-circuit regression
// table: one provably-empty query per front end answers empty with zero
// posting-list probes and zero evaluated documents, counted only in
// SemanticShortCircuits — never in the find/scan/candidate counters.
func TestUnsatShortCircuitAllFrontEnds(t *testing.T) {
	cases := []struct {
		lang engine.Language
		src  string
	}{
		{engine.LangJNL, `([/k0] && !([/k0]))`},
		{engine.LangJSL, `(string && number)`},
		{engine.LangMongoFind, `{"$and":[{"k0":{"$gt":5}},{"k0":{"$lt":3}}]}`},
		{engine.LangJSONPath, `$[?(@.k0 < 0)]`},
	}
	for _, tc := range cases {
		t.Run(tc.lang.String(), func(t *testing.T) {
			s := New(Options{Shards: 4, Engine: semanticEngine(t, engine.Options{})})
			seedDocs(t, s)
			before := s.Stats().Queries

			p, err := s.Engine().Compile(tc.lang, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			ids, indexed, err := s.Find(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 0 || indexed {
				t.Fatalf("Find = %v, indexed=%v; want empty, false", ids, indexed)
			}
			sels, _, err := s.Select(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(sels) != 0 {
				t.Fatalf("Select = %v, want empty", sels)
			}

			after := s.Stats().Queries
			if got := after.SemanticShortCircuits - before.SemanticShortCircuits; got != 2 {
				t.Fatalf("SemanticShortCircuits grew by %d, want 2 (find + select)", got)
			}
			// Zero index probes, zero evaluated documents: every execution
			// counter must be untouched.
			if after.FindIndexed != before.FindIndexed || after.FindScan != before.FindScan ||
				after.SelectIndexed != before.SelectIndexed || after.SelectScan != before.SelectScan {
				t.Fatalf("access-path counters moved: before %+v after %+v", before, after)
			}
			if after.CandidateDocs != before.CandidateDocs || after.ScannedDocs != before.ScannedDocs {
				t.Fatalf("candidate counters moved: before %+v after %+v", before, after)
			}
			if after.IntersectionSteps != before.IntersectionSteps {
				t.Fatalf("intersection steps moved: %d -> %d", before.IntersectionSteps, after.IntersectionSteps)
			}
		})
	}
}

// TestUnsatShortCircuitTraceAndExplain pins the observability half: the
// trace records a "semantic" span carrying the verdict, and Explain
// reports the semantic access path with the constant-empty program.
func TestUnsatShortCircuitTraceAndExplain(t *testing.T) {
	s := New(Options{Shards: 4, Engine: semanticEngine(t, engine.Options{})})
	seedDocs(t, s)
	p, err := s.Engine().Compile(engine.LangJSL, `(string && number)`)
	if err != nil {
		t.Fatal(err)
	}

	tr := trace.NewTrace("test")
	if _, _, err := s.FindTraced(nil, p, tr); err != nil {
		t.Fatal(err)
	}
	var verdict any
	var walk func(spans []*trace.SpanOut)
	walk = func(spans []*trace.SpanOut) {
		for _, sp := range spans {
			if sp.Name == "semantic" {
				verdict = sp.Attrs["verdict"]
			}
			walk(sp.Children)
		}
	}
	walk(tr.Spans())
	if verdict != "unsat" {
		t.Fatalf("semantic span verdict = %v, want \"unsat\"", verdict)
	}

	ex, err := s.Explain(nil, p, "find")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Access != "semantic" {
		t.Fatalf("explain access = %q, want \"semantic\"", ex.Access)
	}
	if ex.ActualCandidates != 0 || ex.ActualResults != 0 {
		t.Fatalf("explain candidates/results = %d/%d, want 0/0", ex.ActualCandidates, ex.ActualResults)
	}
	if !strings.Contains(ex.Plan.Physical, "const_empty") {
		t.Fatalf("explain physical plan not constant-empty:\n%s", ex.Plan.Physical)
	}
	if ex.Plan.Semantic == nil || ex.Plan.Semantic.Verdict != "unsat" {
		t.Fatalf("explain semantic section = %+v, want verdict unsat", ex.Plan.Semantic)
	}
}

// mustSchemaInfo compiles a schema literal.
func mustSchemaInfo(t *testing.T, src string) *engine.SchemaInfo {
	t.Helper()
	sch, err := schema.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := engine.CompileSchema(sch)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestSchemaEnforcement pins write-side schema validation: conforming
// documents land, nonconforming ones are rejected with ErrSchema and
// counted, in both the put and bulk paths.
func TestSchemaEnforcement(t *testing.T) {
	info := mustSchemaInfo(t, `{"type": "object", "required": ["k0"]}`)
	eng := semanticEngine(t, engine.Options{Schema: info})
	s := New(Options{Shards: 2, Engine: eng, Schema: info})

	if err := s.Put("ok", `{"k0": 1}`); err != nil {
		t.Fatalf("conforming put rejected: %v", err)
	}
	err := s.Put("bad", `{"k1": 2}`)
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("nonconforming put error = %v, want ErrSchema", err)
	}
	if _, ok := s.Get("bad"); ok {
		t.Fatal("nonconforming document was stored")
	}

	res, err := s.BulkNDJSON(strings.NewReader("{\"k0\": 5}\n{\"nope\": 1}\n{\"k0\": 9}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 || len(res.Errors) != 1 {
		t.Fatalf("bulk = %d ids, %d errors; want 2, 1", len(res.IDs), len(res.Errors))
	}
	if res.Errors[0].Line != 2 || !errors.Is(res.Errors[0].Err, ErrSchema) {
		t.Fatalf("bulk error = %+v, want ErrSchema at line 2", res.Errors[0])
	}
	if got := s.Stats().Queries.SchemaRejects; got != 2 {
		t.Fatalf("SchemaRejects = %d, want 2", got)
	}
}

// TestSchemaUnsatShortCircuit proves the schema-aware short-circuit: a
// query no conforming document can match answers empty on a
// schema-enforcing store, while a lawless store with the same engine
// still evaluates it honestly.
func TestSchemaUnsatShortCircuit(t *testing.T) {
	info := mustSchemaInfo(t, `{"type": "object", "required": ["k0"]}`)
	eng := semanticEngine(t, engine.Options{Schema: info})
	enforcing := New(Options{Shards: 2, Engine: eng, Schema: info})
	lawless := New(Options{Shards: 2, Engine: eng})

	if err := enforcing.Put("a", `{"k0": 1}`); err != nil {
		t.Fatal(err)
	}
	// The lawless store holds a root string — exactly what the query
	// matches and the schema forbids.
	if err := lawless.Put("s", `"hello"`); err != nil {
		t.Fatal(err)
	}

	p, err := eng.Compile(engine.LangJSL, `string`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SchemaUnsatisfiable() {
		t.Fatal("root-string query not schema-unsat under an object-only schema")
	}

	ids, _, err := enforcing.Find(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("enforcing store Find = %v, want empty", ids)
	}
	if got := enforcing.Stats().Queries.SemanticShortCircuits; got != 1 {
		t.Fatalf("enforcing SemanticShortCircuits = %d, want 1", got)
	}

	ids, _, err = lawless.Find(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("lawless store Find = %v, want [s]: schema verdicts must not leak to stores that do not enforce the schema", ids)
	}
	if got := lawless.Stats().Queries.SemanticShortCircuits; got != 0 {
		t.Fatalf("lawless SemanticShortCircuits = %d, want 0", got)
	}
}

// TestSchemaTermPruning proves planner-side pruning: an index term the
// schema proves universal is skipped (visible in the explanation) and
// counted, and results are unchanged.
func TestSchemaTermPruning(t *testing.T) {
	info := mustSchemaInfo(t, `{"type": "object", "required": ["k0"]}`)
	eng := semanticEngine(t, engine.Options{Schema: info})
	s := New(Options{Shards: 2, Engine: eng, Schema: info})
	for i, doc := range []string{
		`{"k0": 1, "k1": 1}`,
		`{"k0": 2}`,
		`{"k0": 3, "k1": 3}`,
		`{"k0": 4}`,
	} {
		if err := s.Put(string(rune('a'+i)), doc); err != nil {
			t.Fatal(err)
		}
	}
	p, err := eng.Compile(engine.LangJNL, `([/k0] && [/k1])`)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := s.Explain(nil, p, "find")
	if err != nil {
		t.Fatal(err)
	}
	var sawPruned bool
	for _, term := range ex.Terms {
		if term.Skipped && strings.Contains(term.Reason, "schema") {
			sawPruned = true
			if strings.Contains(term.Fact, "k1") {
				t.Fatalf("pruned %q: the schema says nothing about k1", term.Fact)
			}
		}
	}
	if !sawPruned {
		t.Fatalf("no schema-pruned term in explanation: %+v", ex.Terms)
	}

	ids, _, err := s.Find(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "c"}; len(ids) != 2 || ids[0] != want[0] || ids[1] != want[1] {
		t.Fatalf("Find with pruned terms = %v, want %v", ids, want)
	}
	if got := s.Stats().Queries.TermsPruned; got == 0 {
		t.Fatal("TermsPruned = 0, want > 0")
	}

	// The same plan on a store without the schema must ignore the
	// pruning marks entirely.
	lawless := New(Options{Shards: 2, Engine: eng})
	if err := lawless.Put("x", `{"k0": 1, "k1": 1}`); err != nil {
		t.Fatal(err)
	}
	ex, err = lawless.Explain(nil, p, "find")
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range ex.Terms {
		if term.Skipped && strings.Contains(term.Reason, "schema") {
			t.Fatalf("schema-pruned term %q on a store that does not enforce the schema", term.Fact)
		}
	}
}

// TestSemanticShortCircuitDurableRecovery pins schema validation on the
// recovery path: a durable store that enforced a schema reopens its own
// data fine; reopening data written without the schema fails.
func TestSemanticShortCircuitDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	info := mustSchemaInfo(t, `{"type": "object", "required": ["k0"]}`)

	// Write conforming and nonconforming docs with no schema enforced.
	s, err := Open(Options{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", `{"k0": 1}`); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", `{"k1": 2}`); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening under the schema must fail: the resident data would
	// silently break the conformance invariant the planner relies on.
	if _, err := Open(Options{Shards: 2, DataDir: dir, Schema: info}); !errors.Is(err, ErrSchema) {
		t.Fatalf("open over nonconforming data = %v, want ErrSchema", err)
	}

	// Delete the offender without the schema; the reopen then succeeds.
	s, err = Open(Options{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("bad"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(Options{Shards: 2, DataDir: dir, Schema: info, Engine: semanticEngine(t, engine.Options{Schema: info})})
	if err != nil {
		t.Fatalf("open over conforming data: %v", err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("recovered %d docs, want 1", s.Len())
	}
}
