package store

// durable_test.go: crash-recovery tests. Every test drives a durable
// store and a plain in-memory reference through the same mutation
// sequence, kills the durable one (cleanly, abruptly, or abruptly
// plus deliberate file damage), reopens the directory and requires
// the recovered store to match the reference node for node — and the
// rebuilt inverted index to answer queries identically to a full
// scan, reusing the differential harness's generators.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
)

func openDurable(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.DataDir, err)
	}
	return s
}

// compactAll forces a dictionary compaction of every shard's
// memtable, so memtable index statistics depend only on the live
// documents.
func compactAll(s *Store) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.ix.compact()
		sh.mu.Unlock()
	}
}

// termCardinalities counts, per index term, the live documents
// carrying it — memtable postings filtered through the dictionary,
// segment posting lists decoded and filtered through the tombstone
// bitmap — so two stores' indexes can be compared regardless of which
// tier their postings live in.
func termCardinalities(t *testing.T, s *Store) map[uint64]int {
	t.Helper()
	out := make(map[uint64]int)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for term, post := range sh.ix.postings {
			n := 0
			for _, ord := range post {
				if sh.ix.ids[ord] != "" {
					n++
				}
			}
			if n > 0 {
				out[term] += n
			}
		}
		if sh.seg != nil {
			for i := 0; i < sh.seg.termCount; i++ {
				hash := binary.LittleEndian.Uint64(sh.seg.termDir[i*termDirEntry:])
				pl, ok := sh.seg.termList(hash)
				if !ok {
					sh.mu.RUnlock()
					t.Fatalf("segment term directory entry %d unreadable", i)
				}
				ords, err := pl.decodeAll(nil)
				if err != nil {
					sh.mu.RUnlock()
					t.Fatalf("decode segment term %#x: %v", hash, err)
				}
				n := 0
				for _, ord := range ords {
					if !bitGet(sh.segDead, ord) {
						n++
					}
				}
				if n > 0 {
					out[hash] += n
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// compareStores requires got and want to hold the same documents,
// node for node (String renders the canonical key-sorted form), and —
// since both indexes were built over the same final document set —
// identical index cardinalities when the shard layout matches.
func compareStores(t *testing.T, got, want *Store) {
	t.Helper()
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("recovered store has %d docs, want %d", g, w)
	}
	for _, sh := range want.shards {
		sh.ix.each(func(id string, wt *jsontree.Tree) {
			gt, ok := got.Get(id)
			if !ok {
				t.Fatalf("recovered store lost document %q", id)
			}
			if gt.Len() != wt.Len() || gt.String() != wt.String() {
				t.Fatalf("document %q differs after recovery:\ngot:  %s\nwant: %s", id, gt, wt)
			}
		})
	}
	if got.NumShards() == want.NumShards() && got.opts.MaxIndexDepth == want.opts.MaxIndexDepth {
		// Compare live per-term cardinalities across both tiers: a
		// segment-backed store must carry exactly the same inverted
		// index as the in-memory reference, term for term, whichever
		// tier each posting lives in.
		gc, wc := termCardinalities(t, got), termCardinalities(t, want)
		if len(gc) != len(wc) {
			t.Fatalf("rebuilt index has %d terms, want %d", len(gc), len(wc))
		}
		for term, wn := range wc {
			if gc[term] != wn {
				t.Fatalf("term %#x has cardinality %d after recovery, want %d", term, gc[term], wn)
			}
		}
	}
}

// diffQueries runs random queries from every front end over the
// recovered store, requiring the rebuilt index's answers to equal
// both the recovered store's own full scan and the reference store's
// scan.
func diffQueries(t *testing.T, r *rand.Rand, recovered, reference *Store, queries int) {
	t.Helper()
	eng := recovered.Engine()
	indexed := 0
	for i := 0; i < queries; i++ {
		var lang engine.Language
		var src string
		switch i % 3 {
		case 0:
			lang, src = engine.LangMongoFind, gen.RandomMongoSource(r, 2)
		case 1:
			lang, src = engine.LangJSONPath, gen.RandomJSONPathSource(r)
		default:
			lang, src = engine.LangJNL, gen.RandomJNLSource(r, 3)
		}
		p, err := eng.Compile(lang, src)
		if err != nil {
			t.Fatalf("generator bug: %q: %v", src, err)
		}
		got, wasIndexed, err := recovered.Find(p)
		if err != nil {
			t.Fatalf("Find(%q): %v", src, err)
		}
		if wasIndexed {
			indexed++
		}
		own, err := recovered.FindScan(p)
		if err != nil {
			t.Fatalf("FindScan(%q): %v", src, err)
		}
		ref, err := reference.FindScan(p)
		if err != nil {
			t.Fatalf("reference FindScan(%q): %v", src, err)
		}
		if !sameIDs(got, own) || !sameIDs(got, ref) {
			t.Fatalf("query %q after recovery:\nindexed: %v\nown scan: %v\nreference: %v", src, got, own, ref)
		}
	}
	if indexed == 0 {
		t.Error("no recovery query used the rebuilt index; the check is vacuous")
	}
}

// mutate applies one random operation identically to the durable
// store and the reference, occasionally through bulk ingest.
func mutate(t *testing.T, r *rand.Rand, s, ref *Store, ids []string) {
	t.Helper()
	id := ids[r.Intn(len(ids))]
	switch r.Intn(10) {
	case 0, 1: // delete
		if _, err := s.Delete(id); err != nil {
			t.Fatalf("delete %q: %v", id, err)
		}
		ref.Delete(id)
	case 2: // bulk ingest a couple of documents (auto IDs)
		var sb strings.Builder
		for j := 0; j < 2; j++ {
			sb.WriteString(gen.Document(r, durableDocOptions()).String())
			sb.WriteByte('\n')
		}
		res, err := s.BulkNDJSON(strings.NewReader(sb.String()))
		if err != nil || len(res.Errors) > 0 {
			t.Fatalf("bulk: %v %v", err, res.Errors)
		}
		// Mirror under the assigned IDs.
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		for j, bid := range res.IDs {
			if err := ref.Put(bid, lines[j]); err != nil {
				t.Fatal(err)
			}
		}
	default: // put / replace
		doc := gen.Document(r, durableDocOptions()).String()
		if err := s.Put(id, doc); err != nil {
			t.Fatalf("put %q: %v", id, err)
		}
		if err := ref.Put(id, doc); err != nil {
			t.Fatal(err)
		}
	}
}

func durableDocOptions() gen.DocOptions {
	return gen.DocOptions{Fanout: 3, Depth: 3, Keys: 10, ArrayBias: 40, ValueRange: 15}
}

func durableIDs() []string {
	ids := make([]string, 40)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc%03d", i)
	}
	return ids
}

// TestDurableCleanRestart: a cleanly closed store (even with fsync
// off — Close flushes and syncs) reopens to exactly its final state,
// and the bulk-ingest ID sequence resumes past recovered IDs.
func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(41))
	opts := Options{Shards: 4, DataDir: dir, Fsync: FsyncOff, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 4})
	ids := durableIDs()
	for i := 0; i < 300; i++ {
		mutate(t, r, s, ref, ids)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Put("late", `{"a":1}`); err == nil {
		t.Fatal("writes after Close must fail")
	}

	s2 := openDurable(t, opts)
	defer s2.Close()
	compareStores(t, s2, ref)
	rs := s2.Stats().Durability.Recovery
	if rs.WALRecordsReplayed == 0 || rs.TornTails != 0 || rs.SnapshotsLoaded != 0 {
		t.Fatalf("unexpected recovery stats: %+v", rs)
	}
	// The auto-ID sequence must not collide with recovered bulk IDs.
	before := s2.Len()
	res, err := s2.BulkNDJSON(strings.NewReader("{\"x\":1}\n"))
	if err != nil || len(res.IDs) != 1 {
		t.Fatalf("bulk after reopen: %v %v", res, err)
	}
	if s2.Len() != before+1 {
		t.Fatalf("bulk after reopen clobbered a document")
	}
}

// TestDurableCrashRecovery: under fsync=always every acknowledged
// write survives an abrupt crash — the reopened store matches the
// reference node for node and its rebuilt index answers random
// queries identically to a scan.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(42))
	opts := Options{Shards: 4, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 4})
	ids := durableIDs()
	for i := 0; i < 250; i++ {
		mutate(t, r, s, ref, ids)
	}
	s.crashForTest()

	s2 := openDurable(t, opts)
	defer s2.Close()
	compareStores(t, s2, ref)
	rs := s2.Stats().Durability.Recovery
	if rs.WALRecordsReplayed == 0 {
		t.Fatalf("nothing replayed: %+v", rs)
	}
	diffQueries(t, r, s2, ref, 300)
}

// TestDurableTornTail: a crash mid-append leaves a torn record at the
// end of an active segment; recovery truncates exactly the tail and
// keeps every whole record.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 1})
	const docs = 25
	for i := 0; i < docs; i++ {
		doc := fmt.Sprintf(`{"i":%d,"pad":"%s"}`, i, strings.Repeat("x", 50))
		if err := s.Put(fmt.Sprintf("k%02d", i), doc); err != nil {
			t.Fatal(err)
		}
		ref.Put(fmt.Sprintf("k%02d", i), doc)
	}
	s.crashForTest()

	wal := walPath(s.dur.shardDir(0), 0)
	t.Run("partial-append", func(t *testing.T) {
		// Simulate a crash halfway through an append: a plausible
		// length prefix with only part of its payload behind it.
		f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s2 := openDurable(t, opts)
		defer s2.crashForTest()
		compareStores(t, s2, ref)
		rs := s2.Stats().Durability.Recovery
		if rs.TornTails != 1 || rs.TruncatedBytes != 7 {
			t.Fatalf("recovery stats = %+v, want 1 torn tail of 7 bytes", rs)
		}
	})
	t.Run("truncated-final-record", func(t *testing.T) {
		// Cut into the last whole record: it is lost, everything
		// before it survives.
		st, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(wal, st.Size()-5); err != nil {
			t.Fatal(err)
		}
		ref.Delete(fmt.Sprintf("k%02d", docs-1))

		s2 := openDurable(t, opts)
		defer s2.crashForTest()
		compareStores(t, s2, ref)
		if rs := s2.Stats().Durability.Recovery; rs.TornTails != 1 {
			t.Fatalf("recovery stats = %+v, want a torn tail", rs)
		}
	})
	t.Run("corrupt-crc", func(t *testing.T) {
		// Flip a byte inside the (new) last record: the CRC refuses
		// it and the tail is truncated.
		raw, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-10] ^= 0xFF
		if err := os.WriteFile(wal, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		ref.Delete(fmt.Sprintf("k%02d", docs-2))

		s2 := openDurable(t, opts)
		defer s2.crashForTest()
		compareStores(t, s2, ref)
		if rs := s2.Stats().Durability.Recovery; rs.TornTails != 1 {
			t.Fatalf("recovery stats = %+v, want a torn tail", rs)
		}
	})
}

// TestDurableSnapshotAndTail: recovery composes the latest snapshot
// with the WAL tail written after it, and snapshots garbage-collect
// the generations they obsolete.
func TestDurableSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(43))
	opts := Options{Shards: 2, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	ref := New(Options{Shards: 2})
	ids := durableIDs()
	for i := 0; i < 120; i++ {
		mutate(t, r, s, ref, ids)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// The old generation is gone, the new one is on disk.
	for i := 0; i < s.NumShards(); i++ {
		sd := s.dur.shardDir(i)
		if _, err := os.Stat(walPath(sd, 0)); !os.IsNotExist(err) {
			t.Fatalf("shard %d: generation-0 WAL survived the snapshot", i)
		}
		if _, err := os.Stat(segFilePath(sd, 1)); err != nil {
			t.Fatalf("shard %d: missing segment: %v", i, err)
		}
	}
	for i := 0; i < 80; i++ {
		mutate(t, r, s, ref, ids)
	}
	s.crashForTest()

	s2 := openDurable(t, opts)
	compareStores(t, s2, ref)
	rs := s2.Stats().Durability.Recovery
	if rs.SegmentsMapped != s2.NumShards() {
		t.Fatalf("recovery stats = %+v, want %d segments mapped", rs, s2.NumShards())
	}
	if rs.SegmentDocs == 0 || rs.WALRecordsReplayed == 0 {
		t.Fatalf("recovery must combine segment and WAL tail: %+v", rs)
	}
	diffQueries(t, r, s2, ref, 150)

	// Round two: snapshot the recovered store, mutate, crash, recover.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mutate(t, r, s2, ref, ids)
	}
	s2.crashForTest()
	s3 := openDurable(t, opts)
	defer s3.Close()
	compareStores(t, s3, ref)
}

// TestDurableBackgroundSnapshot: the maintenance loop snapshots a
// shard once its segment exceeds SnapshotEvery records.
func TestDurableBackgroundSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: 20}
	s := openDurable(t, opts)
	for i := 0; i < 60; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf(`{"i":%d}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := 0
	for s.Stats().Durability.Snapshots == 0 {
		deadline++
		if deadline > 200 {
			t.Fatal("background snapshotter never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openDurable(t, opts)
	defer s2.Close()
	if s2.Len() != 60 {
		t.Fatalf("recovered %d docs, want 60", s2.Len())
	}
	if rs := s2.Stats().Durability.Recovery; rs.SegmentsMapped != 1 {
		t.Fatalf("recovery did not use the background segment: %+v", rs)
	}
}

// TestDurableInvalidSnapshotIsNotResurrected: once a snapshot's
// covering history is gone, a corrupted snapshot must fail recovery
// loudly instead of silently dropping the missing window.
func TestDurableInvalidSnapshotIsNotResurrected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), `{"a":1}`); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	sd := s.dur.shardDir(0)
	s.crashForTest()
	raw, err := os.ReadFile(segFilePath(sd, 1))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(segFilePath(sd, 1), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("Open must refuse a corrupt segment whose history is gone")
	}
}

// TestDurableOpenExclusive: a data directory has one owner at a time;
// a second Open fails fast instead of corrupting the first owner's
// WALs, and closing releases the lock.
func TestDurableOpenExclusive(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, DataDir: dir}
	s := openDurable(t, opts)
	if _, err := Open(opts); err == nil {
		t.Fatal("second Open on a held data dir must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openDurable(t, opts)
	defer s2.Close()
}

// TestDurableManifestPinsShards: reopening with a different -shards
// keeps the on-disk layout's count.
func TestDurableManifestPinsShards(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, Options{Shards: 4, DataDir: dir})
	if err := s.Put("a", `{"x":1}`); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openDurable(t, Options{Shards: 32, DataDir: dir})
	defer s2.Close()
	if s2.NumShards() != 4 {
		t.Fatalf("reopen with -shards 32 produced %d shards, want the manifest's 4", s2.NumShards())
	}
	if _, ok := s2.Get("a"); !ok {
		t.Fatal("document lost across reopen")
	}
}

// TestDurableFsyncOffLosesAtMostTheTail: with fsync=off a crash may
// drop the buffered tail, but whatever survives is a consistent
// prefix — every recovered document matches what was written.
func TestDurableFsyncOffLosesAtMostTheTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncOff, SnapshotEvery: -1, FsyncInterval: time.Hour}
	s := openDurable(t, opts)
	written := make(map[string]string)
	for i := 0; i < 50; i++ {
		doc := fmt.Sprintf(`{"i":%d}`, i)
		id := fmt.Sprintf("k%02d", i)
		if err := s.Put(id, doc); err != nil {
			t.Fatal(err)
		}
		written[id] = doc
	}
	s.crashForTest()
	s2 := openDurable(t, opts)
	defer s2.Close()
	if s2.Len() > len(written) {
		t.Fatalf("recovered more docs than written: %d", s2.Len())
	}
	for _, sh := range s2.shards {
		sh.ix.each(func(id string, tr *jsontree.Tree) {
			want, ok := written[id]
			if !ok {
				t.Fatalf("recovered unknown document %q", id)
			}
			wt := jsontree.MustParse(want)
			if tr.String() != wt.String() {
				t.Fatalf("document %q corrupted: %s want %s", id, tr, wt)
			}
		})
	}
}

// TestDurableTornMiddleSegmentRefusedRepeatedly: a torn non-final
// segment means the disk lost sealed, fsynced data; Open must refuse
// — and must still refuse on the next attempt, not truncate the
// evidence away on the first one and silently replay a shortened
// history on the second.
func TestDurableTornMiddleSegmentRefusedRepeatedly(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("a%d", i), `{"x":1}`); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil { // seals wal-0, starts wal-1 + snap-1
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("b%d", i), `{"x":2}`); err != nil {
			t.Fatal(err)
		}
	}
	// Roll to wal-2 without a snapshot (a failed snapshot attempt
	// leaves exactly this layout), making wal-1 a sealed middle
	// segment.
	sh := s.shards[0]
	sh.mu.Lock()
	_, err := s.dur.wals[0].rotate()
	sh.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c0", `{"x":3}`); err != nil {
		t.Fatal(err)
	}
	s.crashForTest()

	// Corrupt the sealed middle segment mid-file.
	wal1 := walPath(s.dur.shardDir(0), 1)
	raw, err := os.ReadFile(wal1)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(wal1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sizeBefore := int64(len(raw))
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := Open(opts); err == nil {
			t.Fatalf("attempt %d: Open accepted a torn sealed middle segment", attempt)
		}
		st, err := os.Stat(wal1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != sizeBefore {
			t.Fatalf("attempt %d: refusal truncated the evidence (%d -> %d bytes)", attempt, sizeBefore, st.Size())
		}
	}
}

// TestDurableAutoIDNeverRecycled: bulk auto-IDs of documents deleted
// before a restart — even deleted before a snapshot, whose WAL
// records are GC'd — must not be handed out again afterwards.
func TestDurableAutoIDNeverRecycled(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	res, err := s.BulkNDJSON(strings.NewReader("{\"a\":1}\n{\"a\":2}\n"))
	if err != nil || len(res.IDs) != 2 {
		t.Fatalf("bulk: %v %v", res, err)
	}
	if _, err := s.Delete(res.IDs[1]); err != nil {
		t.Fatal(err)
	}
	// Snapshot so the put+delete of res.IDs[1] vanish from the WAL;
	// only the footer's persisted counter remembers it existed.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openDurable(t, opts)
	defer s2.Close()
	res2, err := s2.BulkNDJSON(strings.NewReader("{\"a\":3}\n"))
	if err != nil || len(res2.IDs) != 1 {
		t.Fatalf("bulk after reopen: %v %v", res2, err)
	}
	for _, old := range res.IDs {
		if res2.IDs[0] == old {
			t.Fatalf("auto-ID %s recycled after restart", old)
		}
	}
}

// TestWALRejectsOversizedRecord: a record larger than the replay-side
// frame bound must be refused at append time (it would otherwise be
// acknowledged and then truncated away as a "torn tail" on reopen) —
// and the refusal must not poison the WAL for later records.
func TestWALRejectsOversizedRecord(t *testing.T) {
	w, err := openShardWAL(osFS{}, 0, t.TempDir(), 0, FsyncOff, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	big := strings.Repeat("x", maxRecordPayload)
	if _, err := w.append(walRecord{op: opPut, id: "big", doc: big}); err == nil {
		t.Fatal("oversized record accepted; it would be lost as a torn tail on replay")
	}
	if _, err := w.append(walRecord{op: opPut, id: "ok", doc: `{"a":1}`}); err != nil {
		t.Fatalf("rejected record poisoned the WAL: %v", err)
	}
}

// TestWALCommitAfterCloseSucceeds: close flushes and fsyncs every
// appended record, so a commit that lost the race against a clean
// close must report success (the guarantee holds), not errWALClosed —
// while new appends after close still fail.
func TestWALCommitAfterCloseSucceeds(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval} {
		w, err := openShardWAL(osFS{}, 0, t.TempDir(), 0, policy, 0)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w.append(walRecord{op: opPut, id: "a", doc: `{"x":1}`})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		if err := w.commit(seq); err != nil {
			t.Fatalf("%v: commit of a record close made durable failed: %v", policy, err)
		}
		if _, err := w.append(walRecord{op: opPut, id: "b", doc: `{"x":2}`}); err == nil {
			t.Fatalf("%v: append after close succeeded", policy)
		}
	}
}

// TestDurableGroupCommitConcurrent: concurrent writers under
// fsync=always share fsyncs through group commit, and every
// acknowledged write survives the crash.
func TestDurableGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}
	s := openDurable(t, opts)
	const writers, per = 8, 20
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Put(fmt.Sprintf("w%d-%02d", w, i), fmt.Sprintf(`{"w":%d,"i":%d}`, w, i)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	ds := s.Stats().Durability
	if ds.WALAppends != writers*per {
		t.Fatalf("wal appends = %d, want %d", ds.WALAppends, writers*per)
	}
	if ds.WALSyncs == 0 || ds.WALSyncs > ds.WALAppends {
		t.Fatalf("wal syncs = %d (appends %d): group commit broken", ds.WALSyncs, ds.WALAppends)
	}
	s.crashForTest()
	s2 := openDurable(t, opts)
	defer s2.Close()
	if s2.Len() != writers*per {
		t.Fatalf("recovered %d docs, want %d", s2.Len(), writers*per)
	}
}
