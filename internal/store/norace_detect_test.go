//go:build !race

package store

// raceEnabled mirrors the -race flag; see race_detect_test.go.
const raceEnabled = false
