package store

import (
	"jsonlogic/internal/jsontree"
)

// Statistics is the read-only view of the collection the cost-based
// planner consults: how many documents exist, how many carry a given
// index term, and how the leaf classes distribute at a path. The Store
// implements it over its inverted index; tests feed the planner
// synthetic implementations.
type Statistics interface {
	// DocCount returns the number of stored documents.
	DocCount() int
	// TermCardinality returns the total posting-list length of an index
	// term across all shards — an O(1) slice length per shard under the
	// dictionary encoding. Tombstoned (deleted but not yet compacted)
	// documents still count, so the cardinality is an upper bound on
	// the live documents carrying the term, never an undercount: the
	// planner's estimates stay provable upper bounds. Zero for unknown
	// terms.
	TermCardinality(term uint64) int
	// ClassHistogram returns, per node kind, how many documents have a
	// node of that kind at the exact path. The histogram is derived
	// from the index's class terms, so it shares their depth bound.
	ClassHistogram(steps []jsontree.Step) ClassCounts
}

// ClassCounts is a per-kind document count, indexed by jsontree.Kind.
type ClassCounts [4]int

// Map renders the histogram with JSON Schema type names, for /stats
// and /explain payloads; zero classes are omitted.
func (c ClassCounts) Map() map[string]int {
	out := make(map[string]int, 4)
	for k, n := range c {
		if n > 0 {
			out[jsontree.Kind(k).String()] = n
		}
	}
	return out
}

// DocCount implements Statistics.
func (s *Store) DocCount() int { return s.Len() }

// TermCardinality implements Statistics: the posting-list length of
// the term summed over shards and tiers — the memtable's slice length
// plus the segment term directory's count, both O(1) per shard
// (the segment count is read from the directory entry, no block is
// decoded). Segment counts include tombstoned ordinals, like the
// memtable's, preserving the upper-bound contract.
func (s *Store) TermCardinality(term uint64) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.ix.postings[term])
		if sh.seg != nil {
			n += sh.seg.termCardinality(term)
		}
		sh.mu.RUnlock()
	}
	return n
}

// ClassHistogram implements Statistics by probing the four class terms
// of the path.
func (s *Store) ClassHistogram(steps []jsontree.Step) ClassCounts {
	var out ClassCounts
	p := pathHash(steps)
	for k := range out {
		out[k] = s.TermCardinality(classTerm(p, jsontree.Kind(k)))
	}
	return out
}
