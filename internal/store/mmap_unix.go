//go:build unix

package store

import (
	"syscall"
)

// mapFile maps f read-only and shared, so the kernel manages
// residency and a reopened segment shares page cache with every other
// reader. mapped reports whether unmapFile must munmap (the heap
// fallback sets it false). An empty file maps to a nil slice.
func mapFile(f File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// unmapFile releases a mapFile mapping; heap-backed data is left to
// the garbage collector.
func unmapFile(data []byte, mapped bool) error {
	if !mapped || data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
