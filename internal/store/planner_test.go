package store

import (
	"strings"
	"testing"

	"jsonlogic/internal/jsontree"
)

// fakeStats drives the planner with a synthetic distribution, keyed by
// fact rendering so tests read naturally.
type fakeStats struct {
	docs  int
	cards map[string]int // fact string → cardinality
	facts []jsontree.PathFact
}

func (f *fakeStats) DocCount() int { return f.docs }

func (f *fakeStats) TermCardinality(term uint64) int {
	for _, fact := range f.facts {
		t, ok := factTerm(fact, defaultMaxIndexDepth)
		if ok && t == term {
			return f.cards[fact.String()]
		}
	}
	return 0
}

func (f *fakeStats) ClassHistogram([]jsontree.Step) ClassCounts { return ClassCounts{} }

func fact(steps ...jsontree.Step) jsontree.PathFact { return jsontree.PathFact{Steps: steps} }

func TestPlannerNoFactsScans(t *testing.T) {
	stats := &fakeStats{docs: 100}
	plan := planQuery(stats, nil, defaultMaxIndexDepth)
	if plan.Access != AccessScan || plan.EstCandidates != 100 {
		t.Fatalf("plan = %+v", plan)
	}
	if !strings.Contains(plan.Reason, "no index-supported facts") {
		t.Fatalf("reason = %q", plan.Reason)
	}
}

func TestPlannerUnselectiveIntersectionScans(t *testing.T) {
	f1 := fact(jsontree.Key("a"))
	f2 := fact(jsontree.Key("b"))
	stats := &fakeStats{
		docs:  1000,
		facts: []jsontree.PathFact{f1, f2},
		cards: map[string]int{f1.String(): 990, f2.String(): 1000},
	}
	plan := planQuery(stats, []jsontree.PathFact{f1, f2}, defaultMaxIndexDepth)
	if plan.Access != AccessScan {
		t.Fatalf("unselective intersection must scan: %+v", plan)
	}
	if plan.EstCandidates != 1000 {
		t.Fatalf("scan estimate = %d, want the collection size", plan.EstCandidates)
	}
	if !strings.Contains(plan.Reason, "unselective") {
		t.Fatalf("reason = %q", plan.Reason)
	}
}

func TestPlannerOrdersAndSkipsTerms(t *testing.T) {
	selective := fact(jsontree.Key("rare"))
	medium := fact(jsontree.Key("medium"))
	useless := fact(jsontree.Key("everywhere"))
	stats := &fakeStats{
		docs:  1000,
		facts: []jsontree.PathFact{selective, medium, useless},
		cards: map[string]int{
			selective.String(): 10,
			medium.String():    300,
			useless.String():   900,
		},
	}
	// Deliberately pass the facts worst-first; the plan must reorder.
	plan := planQuery(stats, []jsontree.PathFact{useless, medium, selective}, defaultMaxIndexDepth)
	if plan.Access != AccessIndex {
		t.Fatalf("selective plan must index: %+v", plan)
	}
	if plan.EstCandidates != 10 {
		t.Fatalf("estimate = %d, want min cardinality 10", plan.EstCandidates)
	}
	if len(plan.Terms) != 3 || plan.Terms[0].Fact != selective.String() ||
		plan.Terms[1].Fact != medium.String() || plan.Terms[2].Fact != useless.String() {
		t.Fatalf("terms not selectivity-ordered: %+v", plan.Terms)
	}
	if plan.Terms[0].Skipped || plan.Terms[1].Skipped {
		t.Fatalf("selective terms must be kept: %+v", plan.Terms)
	}
	if !plan.Terms[2].Skipped {
		t.Fatalf("a 90%%-selectivity term must be skipped: %+v", plan.Terms[2])
	}
	if len(plan.probeTerms) != 2 {
		t.Fatalf("probe terms = %d, want 2", len(plan.probeTerms))
	}
	if plan.TermsSkipped() != 1 {
		t.Fatalf("TermsSkipped = %d", plan.TermsSkipped())
	}
}

func TestPlannerTermCap(t *testing.T) {
	var facts []jsontree.PathFact
	cards := map[string]int{}
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		f := fact(jsontree.Key(k))
		facts = append(facts, f)
		cards[f.String()] = 10
	}
	stats := &fakeStats{docs: 1000, facts: facts, cards: cards}
	plan := planQuery(stats, facts, defaultMaxIndexDepth)
	if plan.Access != AccessIndex {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.probeTerms) != maxPlanTerms {
		t.Fatalf("probe terms = %d, want cap %d", len(plan.probeTerms), maxPlanTerms)
	}
	if plan.TermsSkipped() != len(facts)-maxPlanTerms {
		t.Fatalf("skipped = %d", plan.TermsSkipped())
	}
}

// TestPlannerEmptyTermShortCircuits pins the zero-cardinality case: a
// term nothing carries makes the intersection provably empty, and the
// planner must still index (candidates: none).
func TestPlannerEmptyTermShortCircuits(t *testing.T) {
	absent := fact(jsontree.Key("nosuch"))
	stats := &fakeStats{docs: 50, facts: []jsontree.PathFact{absent},
		cards: map[string]int{absent.String(): 0}}
	plan := planQuery(stats, []jsontree.PathFact{absent}, defaultMaxIndexDepth)
	if plan.Access != AccessIndex || plan.EstCandidates != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

// TestPlannerDegradedFactLabel pins the Explain contract for facts
// deeper than the index bound: the reported term must be the degraded
// in-bound prefix presence the statistics actually describe, not the
// original deep fact.
func TestPlannerDegradedFactLabel(t *testing.T) {
	deep := fact(jsontree.Key("a"), jsontree.Key("b"), jsontree.Key("c"), jsontree.Key("d"))
	prefix := fact(jsontree.Key("a"), jsontree.Key("b"))
	stats := &fakeStats{docs: 100, facts: []jsontree.PathFact{prefix},
		cards: map[string]int{prefix.String(): 5}}
	plan := planQuery(stats, []jsontree.PathFact{deep}, 2)
	if plan.Access != AccessIndex || len(plan.Terms) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Terms[0].Fact != "/a/b" || plan.Terms[0].Cardinality != 5 {
		t.Fatalf("degraded term = %+v, want /a/b with the prefix's cardinality", plan.Terms[0])
	}
}

// probeIDs resolves a probe's ordinals against the shard dictionary,
// dropping tombstones — the ID-level view tests compare against.
func probeIDs(ix *pathIndex, terms []uint64) []string {
	scr := acquireProbeScratch()
	defer releaseProbeScratch(scr)
	ords, _, _ := ix.probe(terms, scr)
	var out []string
	for _, ord := range ords {
		if id := ix.ids[ord]; id != "" {
			out = append(out, id)
		}
	}
	return out
}

// TestProbeMatchesNaiveIntersection pins the galloping merge: the
// dictionary-encoded intersection must return exactly the documents a
// naive per-document membership check finds.
func TestProbeMatchesNaiveIntersection(t *testing.T) {
	s := New(Options{Shards: 1})
	for _, put := range []struct{ id, doc string }{
		{"a", `{"x":1,"y":1}`},
		{"b", `{"x":1}`},
		{"c", `{"x":1,"y":2,"z":3}`},
		{"d", `{"y":1}`},
	} {
		if err := s.Put(put.id, put.doc); err != nil {
			t.Fatal(err)
		}
	}
	terms := []uint64{
		presenceTerm(pathHash([]jsontree.Step{jsontree.Key("x")})),
		presenceTerm(pathHash([]jsontree.Step{jsontree.Key("y")})),
	}
	sh := s.shards[0]
	got := probeIDs(sh.ix, terms)
	// Naive reference: a document is in the intersection iff it is in
	// every term's posting list.
	var want []string
	sh.ix.each(func(id string, _ *jsontree.Tree) {
		ord := sh.ix.ords[id]
		for _, term := range terms {
			if !containsOrd(sh.ix.postings[term], ord) {
				return
			}
		}
		want = append(want, id)
	})
	sortStrings(got)
	sortStrings(want)
	if len(got) != 2 || !sameIDs(got, want) {
		t.Fatalf("probe = %v, naive intersection = %v", got, want)
	}
}

func containsOrd(post []ordinal, ord ordinal) bool {
	for _, o := range post {
		if o == ord {
			return true
		}
	}
	return false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
