//go:build !unix

package store

// On platforms without syscall.Mmap (Windows), segments are read into
// the heap instead: the same reader code runs over a []byte either
// way, trading kernel-managed residency for portability. Mirrors
// lock_other.go's degradation contract, documented in
// cmd/jsonstored/README.md.

func mapFile(f File, size int64) (data []byte, mapped bool, err error) {
	data, err = readSegmentIntoHeap(f, size)
	return data, false, err
}

func unmapFile([]byte, bool) error { return nil }
