//go:build !unix

package store

import "os"

// On platforms without flock(2) and directory fsync (Windows), both
// primitives degrade to no-ops: the module builds and the durable
// store runs, but the single-owner guard on a data directory and the
// directory-entry half of the machine-crash guarantee are Unix-only —
// documented in cmd/jsonstored/README.md.

func flockExclusive(*os.File) error { return nil }

func syncDir(string) error { return nil }
