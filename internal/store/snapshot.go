package store

// snapshot.go: background segment building (what "snapshot" now
// means). A snapshot of shard i at generation g is the segment file
// shard-NNNN/seg-g.seg holding every document the shard owned at the
// instant wal-g.log started: the snapshotter rotates the WAL and
// captures the shard's state under the shard lock (pointer copies —
// trees are immutable, the old segment is immutable by construction),
// then merges old segment + memtable into a new segment in the
// background with no lock held, and finally swaps the new segment in
// under the lock, reconciling against writes that landed during the
// merge. The file is written to a temp name, fsynced and renamed into
// place, so a *.seg file is complete by construction; the CRC'd
// footer makes completeness verifiable independently of the rename.
// Once the segment is durable, all earlier generations' files are
// obsolete and removed.
//
// The legacy snap-*.snap writer/loader below remain: the loader so
// directories written by earlier builds still open, the writer so
// tests and benchmarks can produce legacy layouts to recover from.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"jsonlogic/internal/jsontree"
)

// Snapshot forces a segment build of every shard and removes the WAL
// generations it obsoletes. It runs concurrently with reads and
// writes; the per-shard pauses are the WAL rotation plus a pointer
// capture of the shard's state, and the post-merge swap. On an
// in-memory store it is a no-op.
func (s *Store) Snapshot() error {
	if s.dur == nil {
		return nil
	}
	s.dur.snapMu.Lock()
	defer s.dur.snapMu.Unlock()
	for i := range s.shards {
		if err := s.snapshotShard(i); err != nil {
			return err
		}
	}
	return nil
}

// snapshotShard merges one shard's old segment and memtable into a
// new segment at the rotated WAL's generation, then swaps it in. The
// caller holds dur.snapMu. Three phases:
//
//  1. Under the shard lock: rotate the WAL and capture the state at
//     that instant — the old segment (immutable), a copy of its
//     tombstone bitmap, and the memtable's (id, tree) pairs (pointer
//     copies).
//  2. No lock held: buildSegment streams the merge to disk; reads and
//     writes proceed against the live shard meanwhile.
//  3. Under the shard lock: map the new segment and install it,
//     reconciling writes that landed during the merge — a captured
//     document that was overwritten or deleted since is tombstoned in
//     the new segment (its WAL record is in the new generation, which
//     replays over the segment on recovery, so the disk story is
//     consistent too); everything else migrates out of the memtable
//     with its parse cache warm.
func (s *Store) snapshotShard(i int) error {
	d := s.dur
	sh := s.shards[i]
	w := d.wals[i]
	dir := d.shardDir(i)

	sh.mu.Lock()
	gen, err := w.rotate()
	if err != nil {
		sh.mu.Unlock()
		d.snapshotErrors.Add(1)
		return err
	}
	b := &segBuild{old: sh.seg}
	if sh.seg != nil {
		b.oldDead = append([]uint64(nil), sh.segDead...)
	}
	n := sh.ix.live()
	b.memIDs = make([]string, 0, n)
	b.memTree = make([]*jsontree.Tree, 0, n)
	sh.ix.each(func(id string, t *jsontree.Tree) {
		b.memIDs = append(b.memIDs, id)
		b.memTree = append(b.memTree, t)
	})
	sh.mu.Unlock()

	// Persist the bulk auto-ID high-water mark alongside the shard:
	// IDs of documents deleted before this segment disappear from both
	// the segment and the GC'd WAL generations, and must still never
	// be recycled after a restart. Any value ≥ every ID assigned so
	// far is correct; the current counter is exactly that.
	if err := s.buildSegment(dir, gen, b, s.seq.Load()); err != nil {
		d.snapshotErrors.Add(1)
		return fmt.Errorf("store: snapshot shard %d: %w", i, err)
	}
	sr, err := openSegment(d.fs, segFilePath(dir, gen), gen, s.opts.SegmentNoMmap)
	if err != nil {
		d.snapshotErrors.Add(1)
		return fmt.Errorf("store: snapshot shard %d: %w", i, err)
	}

	// Swap. Writes that arrived after the capture fall into three
	// cases, keyed by comparing live state to the captured pointers:
	// a brand-new document (stays in the rebuilt memtable), an
	// overwrite of a captured one (captured version tombstoned in the
	// new segment, the new version stays in the memtable) and a delete
	// of a captured one (tombstoned, nothing retained).
	sh.mu.Lock()
	newDead := newBitmap(sr.n)
	newLive := sr.n
	migrated := make(map[string]bool, len(b.memIDs))
	for newOrd, src := range b.sources {
		if src.fromSeg {
			if bitGet(sh.segDead, src.oldOrd) {
				// Tombstoned since the capture (b.oldDead ordinals were
				// never written into the new segment at all).
				bitSet(newDead, ordinal(newOrd))
				newLive--
			} else if cached := sh.seg.cache[src.oldOrd].Load(); cached != nil {
				sr.cache[newOrd].Store(cached)
			}
			continue
		}
		id := b.memIDs[src.memIdx]
		if cur, ok := sh.ix.get(id); ok && cur == b.memTree[src.memIdx] {
			migrated[id] = true
			sr.cache[newOrd].Store(&segDoc{id: id, tree: cur})
		} else {
			bitSet(newDead, ordinal(newOrd))
			newLive--
		}
	}
	newIx := newPathIndex(s.opts.MaxIndexDepth)
	sh.ix.each(func(id string, t *jsontree.Tree) {
		if !migrated[id] {
			newIx.add(id, t)
		}
	})
	oldSeg := sh.seg
	sh.seg, sh.segDead, sh.segLive = sr, newDead, newLive
	sh.ix = newIx
	sh.mu.Unlock()
	if oldSeg != nil {
		oldSeg.close()
	}

	d.snapshots.Add(1)
	d.compactions.Add(1)
	removeObsolete(d.fs, dir, gen)
	return nil
}

// writeSnapshot writes docs as snap-<gen> in dir: temp file, fsync,
// rename, fsync the directory. The footer carries the record count
// (validation) and the bulk auto-ID sequence at snapshot time.
func writeSnapshot(fs VFS, dir string, gen uint64, docs map[string]*jsontree.Tree, seq uint64) error {
	tmp := snapTempPath(dir, gen)
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	bw.WriteString(snapMagic)
	var buf []byte
	for id, t := range docs {
		buf = encodeRecord(buf[:0], walRecord{op: opPut, id: id, doc: t.String()})
		if _, err := bw.Write(buf); err != nil {
			f.Close()
			fs.Remove(tmp)
			return err
		}
	}
	buf = encodeRecord(buf[:0], walRecord{op: opFooter, id: strconv.Itoa(len(docs)), doc: strconv.FormatUint(seq, 10)})
	if _, err := bw.Write(buf); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, snapFilePath(dir, gen)); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}

// loadSnapshot reads and fully validates snap file at path, returning
// the documents and the persisted bulk auto-ID sequence. Every
// record's CRC is checked and the footer's count must match; any
// defect invalidates the whole snapshot (nil map, error) so recovery
// can fall back to an older generation — nothing is applied from a
// partially valid file.
func loadSnapshot(fs VFS, path string) (map[string]*jsontree.Tree, uint64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapMagic {
		return nil, 0, fmt.Errorf("%s: bad snapshot magic", path)
	}
	docs := make(map[string]*jsontree.Tree)
	for {
		rec, _, err := readRecord(br)
		if err == io.EOF {
			return nil, 0, fmt.Errorf("%s: snapshot has no footer", path)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		switch rec.op {
		case opFooter:
			want, aerr := strconv.Atoi(rec.id)
			if aerr != nil || want != len(docs) {
				return nil, 0, fmt.Errorf("%s: footer count %q does not match %d records", path, rec.id, len(docs))
			}
			seq, serr := strconv.ParseUint(rec.doc, 10, 64)
			if serr != nil {
				return nil, 0, fmt.Errorf("%s: footer sequence %q: %v", path, rec.doc, serr)
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return nil, 0, fmt.Errorf("%s: trailing data after snapshot footer", path)
			}
			return docs, seq, nil
		case opPut:
			t, perr := jsontree.Parse(rec.doc)
			if perr != nil {
				return nil, 0, fmt.Errorf("%s: document %q: %w", path, rec.id, perr)
			}
			docs[rec.id] = t
		default:
			return nil, 0, fmt.Errorf("%s: unexpected record op %d in snapshot", path, rec.op)
		}
	}
}

// removeObsolete deletes snapshots and WAL segments of generations
// before keep. Best-effort: a leftover file is re-deleted by the next
// snapshot and skipped by recovery.
func removeObsolete(fs VFS, dir string, keep uint64) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		// parseGenName matches prefix and suffix exactly, so only the
		// files this package owns are ever deleted.
		if gen, kind := parseGenName(name); kind != "" && gen < keep {
			fs.Remove(filepath.Join(dir, name))
		}
	}
}
