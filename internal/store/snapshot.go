package store

// snapshot.go: background snapshotting. A snapshot of shard i at
// generation g is the file shard-NNNN/snap-g.snap holding every
// document the shard owned at the instant wal-g.log started: the
// snapshotter rotates the WAL and copies the shard's map under the
// shard lock (pointer copies — trees are immutable), then renders and
// writes the snapshot in the background with no lock held. The file is
// written to a temp name, fsynced and renamed into place, so a *.snap
// file is complete by construction; a CRC-checked footer record makes
// completeness verifiable independently of the rename. Once the
// snapshot is durable, all earlier generations' files are obsolete and
// removed.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"jsonlogic/internal/jsontree"
)

// Snapshot forces a snapshot of every shard and removes the WAL
// generations it obsoletes. It runs concurrently with reads and
// writes; the per-shard pause is the WAL rotation, a dictionary
// compaction and a pointer copy of the shard's documents. On an
// in-memory store it is a no-op.
func (s *Store) Snapshot() error {
	if s.dur == nil {
		return nil
	}
	s.dur.snapMu.Lock()
	defer s.dur.snapMu.Unlock()
	for i := range s.shards {
		if err := s.snapshotShard(i); err != nil {
			return err
		}
	}
	return nil
}

// snapshotShard snapshots one shard. The caller holds dur.snapMu.
func (s *Store) snapshotShard(i int) error {
	d := s.dur
	sh := s.shards[i]
	w := d.wals[i]

	sh.mu.Lock()
	gen, err := w.rotate()
	if err != nil {
		sh.mu.Unlock()
		d.snapshotErrors.Add(1)
		return err
	}
	// Compact the dictionary while the lock is held anyway: tombstoned
	// ordinals die with the WAL generation the snapshot obsoletes, so a
	// freshly snapshotted shard restarts garbage-free. Amortized this
	// is cheap — compaction is linear in the shard and snapshots are
	// rare — and it keeps posting-list cardinality estimates honest.
	sh.ix.compact()
	docs := make(map[string]*jsontree.Tree, sh.ix.live())
	sh.ix.each(func(id string, t *jsontree.Tree) { docs[id] = t })
	sh.mu.Unlock()

	// Persist the bulk auto-ID high-water mark alongside the shard:
	// IDs of documents deleted before this snapshot disappear from
	// both the snapshot and the GC'd WAL generations, and must still
	// never be recycled after a restart. Any value ≥ every ID
	// assigned so far is correct; the current counter is exactly that.
	if err := writeSnapshot(d.shardDir(i), gen, docs, s.seq.Load()); err != nil {
		d.snapshotErrors.Add(1)
		return fmt.Errorf("store: snapshot shard %d: %w", i, err)
	}
	d.snapshots.Add(1)
	removeObsolete(d.shardDir(i), gen)
	return nil
}

// writeSnapshot writes docs as snap-<gen> in dir: temp file, fsync,
// rename, fsync the directory. The footer carries the record count
// (validation) and the bulk auto-ID sequence at snapshot time.
func writeSnapshot(dir string, gen uint64, docs map[string]*jsontree.Tree, seq uint64) error {
	tmp := snapTempPath(dir, gen)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	bw.WriteString(snapMagic)
	var buf []byte
	for id, t := range docs {
		buf = encodeRecord(buf[:0], walRecord{op: opPut, id: id, doc: t.String()})
		if _, err := bw.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	buf = encodeRecord(buf[:0], walRecord{op: opFooter, id: strconv.Itoa(len(docs)), doc: strconv.FormatUint(seq, 10)})
	if _, err := bw.Write(buf); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapFilePath(dir, gen)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// loadSnapshot reads and fully validates snap file at path, returning
// the documents and the persisted bulk auto-ID sequence. Every
// record's CRC is checked and the footer's count must match; any
// defect invalidates the whole snapshot (nil map, error) so recovery
// can fall back to an older generation — nothing is applied from a
// partially valid file.
func loadSnapshot(path string) (map[string]*jsontree.Tree, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapMagic {
		return nil, 0, fmt.Errorf("%s: bad snapshot magic", path)
	}
	docs := make(map[string]*jsontree.Tree)
	for {
		rec, _, err := readRecord(br)
		if err == io.EOF {
			return nil, 0, fmt.Errorf("%s: snapshot has no footer", path)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		switch rec.op {
		case opFooter:
			want, aerr := strconv.Atoi(rec.id)
			if aerr != nil || want != len(docs) {
				return nil, 0, fmt.Errorf("%s: footer count %q does not match %d records", path, rec.id, len(docs))
			}
			seq, serr := strconv.ParseUint(rec.doc, 10, 64)
			if serr != nil {
				return nil, 0, fmt.Errorf("%s: footer sequence %q: %v", path, rec.doc, serr)
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return nil, 0, fmt.Errorf("%s: trailing data after snapshot footer", path)
			}
			return docs, seq, nil
		case opPut:
			t, perr := jsontree.Parse(rec.doc)
			if perr != nil {
				return nil, 0, fmt.Errorf("%s: document %q: %w", path, rec.id, perr)
			}
			docs[rec.id] = t
		default:
			return nil, 0, fmt.Errorf("%s: unexpected record op %d in snapshot", path, rec.op)
		}
	}
}

// removeObsolete deletes snapshots and WAL segments of generations
// before keep. Best-effort: a leftover file is re-deleted by the next
// snapshot and skipped by recovery.
func removeObsolete(dir string, keep uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		// parseGenName matches prefix and suffix exactly, so only the
		// files this package owns are ever deleted.
		if gen, kind := parseGenName(name); kind != "" && gen < keep {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
