//go:build race

package store

// raceEnabled mirrors the -race flag: allocation-count assertions are
// skipped under the race detector, whose instrumentation allocates.
const raceEnabled = true
