package store_test

// Runnable godoc examples for the storage tier: the in-memory
// sharded/indexed store and the durable variant (Open) backed by a
// write-ahead log with snapshot recovery. `go test ./internal/store/`
// executes these.

import (
	"fmt"
	"os"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/store"
)

// Put documents into a sharded in-memory store and match them with a
// MongoDB find filter. The returned indexed flag reports whether the
// candidate set came from the inverted path index (posting-list
// intersection) rather than a full scan.
func ExampleStore_Find() {
	s := store.New(store.Options{Shards: 4})
	// The two ageless documents matter: they keep the "/age kind=number"
	// posting list selective enough that the cost-based planner picks
	// the index over a scan.
	for id, doc := range map[string]string{
		"u1": `{"name":"sue","age":34}`,
		"u2": `{"name":"bob","age":17}`,
		"u3": `{"name":"ann","age":41}`,
		"g1": `{"group":"admins"}`,
		"g2": `{"group":"users"}`,
	} {
		if err := s.Put(id, doc); err != nil {
			panic(err)
		}
	}
	plan, err := s.Engine().Compile(engine.LangMongoFind, `{"age":{"$gte":21}}`)
	if err != nil {
		panic(err)
	}
	ids, indexed, err := s.Find(plan)
	if err != nil {
		panic(err)
	}
	fmt.Println(ids, indexed)
	// Output: [u1 u3] true
}

// Open a durable store: every put and delete is written ahead to a
// per-shard log before it is acknowledged, so closing (or crashing)
// and reopening the same directory recovers the collection and
// rebuilds the index.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "store-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	s, err := store.Open(store.Options{Shards: 4, DataDir: dir, Fsync: store.FsyncAlways})
	if err != nil {
		panic(err)
	}
	if err := s.Put("greeting", `{"text":"hello","to":["world"]}`); err != nil {
		panic(err)
	}
	if err := s.Close(); err != nil {
		panic(err)
	}

	reopened, err := store.Open(store.Options{DataDir: dir})
	if err != nil {
		panic(err)
	}
	defer reopened.Close()
	doc, ok := reopened.Get("greeting")
	fmt.Println(reopened.Len(), ok, doc)
	// Output: 1 true {"text":"hello","to":["world"]}
}
