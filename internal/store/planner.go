package store

import (
	"fmt"
	"sort"

	"jsonlogic/internal/jsontree"
)

// The cost-based access planner. Given a plan's path facts it decides,
// per query, between the inverted index and a full scan, and — when
// indexing — which posting lists to intersect and in what order:
//
//   - terms are ordered by ascending cardinality, so the intersection
//     iterates the smallest list and the earliest membership probes
//     fail fastest;
//   - terms whose selectivity exceeds uselessSelectivity prune too
//     little to pay for their per-candidate membership probe and are
//     skipped (the most selective term is always kept);
//   - when even the best term leaves more than scanSelectivity of the
//     collection as candidates, probing buys nothing over evaluating
//     everything and the planner chooses the scan.
//
// The intersection cardinality is bounded above by the smallest term
// cardinality (per shard the intersection is a subset of each posting
// list, and summing over shards preserves the bound), so EstCandidates
// is a provable upper bound on the candidate count — the property the
// explain tests assert against actual executions.

const (
	// maxPlanTerms bounds how many posting lists one query intersects.
	maxPlanTerms = 6
	// uselessSelectivity is the per-term skip cutoff: a term carried by
	// more than this fraction of the collection is not worth probing.
	uselessSelectivity = 0.5
	// scanSelectivity is the index-versus-scan cutoff on the best
	// term's selectivity.
	scanSelectivity = 0.75
)

// AccessPath is the planner's verdict for one query.
type AccessPath uint8

const (
	// AccessScan evaluates every document.
	AccessScan AccessPath = iota
	// AccessIndex evaluates only the posting-list intersection.
	AccessIndex
	// AccessSemantic answers from a compile-time emptiness proof: the
	// query is provably empty (unsatisfiable, or unsatisfiable over the
	// enforced schema) and no document is probed or evaluated at all.
	AccessSemantic
)

// String returns "scan", "index" or "semantic".
func (a AccessPath) String() string {
	switch a {
	case AccessIndex:
		return "index"
	case AccessSemantic:
		return "semantic"
	}
	return "scan"
}

// TermPlan describes one candidate index term of a query plan.
type TermPlan struct {
	// Fact is the rendered path fact the term encodes.
	Fact string `json:"fact"`
	// Cardinality is the term's posting-list length across shards.
	Cardinality int `json:"cardinality"`
	// Selectivity is Cardinality / DocCount (0 for an empty store).
	Selectivity float64 `json:"selectivity"`
	// Skipped marks terms the planner dropped, with the reason.
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Classes is the class histogram at the fact's path; filled by
	// Explain only (it costs extra index probes).
	Classes map[string]int `json:"classes,omitempty"`

	term  uint64
	steps []jsontree.Step
}

// QueryPlan is the planner's output for one query and mode.
type QueryPlan struct {
	// Access is the chosen access path, Reason why.
	Access AccessPath `json:"-"`
	Reason string     `json:"reason"`
	// DocCount is the collection size the plan was made against.
	DocCount int `json:"doc_count"`
	// Terms lists every index-supported fact with its statistics,
	// ordered by ascending cardinality; skipped terms are marked.
	Terms []TermPlan `json:"terms,omitempty"`
	// EstCandidates is a provable upper bound on the number of
	// documents the chosen access path evaluates: the smallest kept
	// term cardinality under AccessIndex, the collection size under
	// AccessScan.
	EstCandidates int `json:"est_candidates"`

	probeTerms  []uint64 // kept terms in probe order
	prunedTerms int      // terms skipped as schema-universal
}

// planFacts builds the access plan for a fact set against the store's
// current statistics; pruned (may be nil) marks facts whose terms the
// schema proved universal — see prunedFor.
func (s *Store) planFacts(facts []jsontree.PathFact, pruned map[string]bool) QueryPlan {
	return planQueryPruned(s, facts, s.opts.MaxIndexDepth, pruned)
}

// planQuery is the planner core, parameterized over Statistics so
// tests can drive it with synthetic distributions.
func planQuery(stats Statistics, facts []jsontree.PathFact, maxIndexDepth int) QueryPlan {
	return planQueryPruned(stats, facts, maxIndexDepth, nil)
}

// planQueryPruned is planQuery honoring a schema-pruned fact set:
// facts the schema proves every conforming document carries. Their
// posting lists contain (at least) the whole conforming collection, so
// intersecting them cannot narrow the candidate set; they are reported
// as skipped terms and never probed.
func planQueryPruned(stats Statistics, facts []jsontree.PathFact, maxIndexDepth int, pruned map[string]bool) QueryPlan {
	n := stats.DocCount()
	plan := QueryPlan{DocCount: n}

	seen := make(map[uint64]struct{}, len(facts))
	for _, f := range facts {
		// Report the fact the index answers: over-deep facts degrade to
		// their in-bound prefix presence, and the statistics below
		// belong to that degraded term.
		f = effectiveFact(f, maxIndexDepth)
		term, ok := factTerm(f, maxIndexDepth)
		if !ok {
			continue
		}
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		card := stats.TermCardinality(term)
		tp := TermPlan{Fact: f.String(), Cardinality: card, term: term, steps: f.Steps}
		if n > 0 {
			tp.Selectivity = float64(card) / float64(n)
		}
		if pruned[tp.Fact] {
			tp.Skipped = true
			tp.Reason = "schema: held by every conforming document"
			plan.prunedTerms++
		}
		plan.Terms = append(plan.Terms, tp)
	}
	if len(plan.Terms) == 0 {
		plan.Access = AccessScan
		plan.Reason = "no index-supported facts"
		plan.EstCandidates = n
		return plan
	}
	sort.SliceStable(plan.Terms, func(i, j int) bool {
		return plan.Terms[i].Cardinality < plan.Terms[j].Cardinality
	})

	// The best term is the most selective one the schema did not prune.
	var best *TermPlan
	for i := range plan.Terms {
		if !plan.Terms[i].Skipped {
			best = &plan.Terms[i]
			break
		}
	}
	if best == nil {
		plan.Access = AccessScan
		plan.Reason = "every index term is schema-universal: intersection cannot narrow a conforming collection"
		plan.EstCandidates = n
		return plan
	}
	if n > 0 && best.Selectivity > scanSelectivity {
		plan.Access = AccessScan
		plan.Reason = fmt.Sprintf("intersection unselective: best term %s matches %.0f%% of %d documents",
			best.Fact, 100*best.Selectivity, n)
		plan.EstCandidates = n
		return plan
	}

	plan.Access = AccessIndex
	plan.EstCandidates = best.Cardinality
	plan.probeTerms = append(plan.probeTerms, best.term)
	for i := range plan.Terms {
		t := &plan.Terms[i]
		if t == best || t.Skipped {
			continue
		}
		switch {
		case len(plan.probeTerms) >= maxPlanTerms:
			t.Skipped = true
			t.Reason = fmt.Sprintf("term cap (%d) reached", maxPlanTerms)
		case t.Selectivity > uselessSelectivity:
			t.Skipped = true
			t.Reason = fmt.Sprintf("selectivity %.2f above skip cutoff %.2f", t.Selectivity, uselessSelectivity)
		default:
			plan.probeTerms = append(plan.probeTerms, t.term)
		}
	}
	skipped := len(plan.Terms) - len(plan.probeTerms)
	plan.Reason = fmt.Sprintf("index: intersecting %d of %d terms, selectivity-ordered (%d skipped), ≤%d candidates of %d documents",
		len(plan.probeTerms), len(plan.Terms), skipped, plan.EstCandidates, n)
	return plan
}

// TermsSkipped counts the terms the planner dropped.
func (p *QueryPlan) TermsSkipped() int {
	n := 0
	for _, t := range p.Terms {
		if t.Skipped {
			n++
		}
	}
	return n
}
