package store

import (
	"fmt"
	"testing"

	"jsonlogic/internal/engine"
)

// Planner benchmarks (committed to BENCH_4.json): indexed versus scan
// versus forced-index access on selective and unselective queries at
// 10k/100k documents, plus the ordered-intersection ablation. They
// live in the store package (unlike the root suite) because the
// forced-index and intersection variants need the unexported probe
// machinery the planner normally guards.

var plannerBenchSizes = []int{10000, 100000}

var plannerBenchStores = map[int]*Store{}

// plannerBenchStore builds (once per size) a collection where
// "group" splits the documents 64 ways, "tags.color" 5 ways, and
// "flag" is carried by everyone — a selective, a medium and a useless
// index term.
func plannerBenchStore(b *testing.B, n int) *Store {
	b.Helper()
	if s, ok := plannerBenchStores[n]; ok {
		return s
	}
	s := New(Options{Shards: 16})
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`{"group":"g%d","flag":"on","tags":{"color":"c%d"},"n":%d}`,
			i%64, i%5, i)
		if err := s.Put(fmt.Sprintf("doc%07d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	plannerBenchStores[n] = s
	return s
}

// BenchmarkStorePlannerSelective: a two-term conjunctive filter where
// the planner intersects selectivity-ordered posting lists (1/64 then
// 1/5 of the collection; ~1/320 matches) against the full scan.
func BenchmarkStorePlannerSelective(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"group":"g7","tags.color":"c3"}`)
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		want := 0
		for i := 0; i < n; i++ {
			if i%64 == 7 && i%5 == 3 {
				want++
			}
		}
		b.Run(fmt.Sprintf("indexed/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, indexed, err := s.Find(plan)
				if err != nil || !indexed || len(ids) != want {
					b.Fatalf("got %d docs (indexed=%v err=%v), want %d", len(ids), indexed, err, want)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, err := s.FindScan(plan)
				if err != nil || len(ids) != want {
					b.Fatalf("got %d docs (err %v), want %d", len(ids), err, want)
				}
			}
		})
	}
}

// BenchmarkStorePlannerUnselective: a filter every document matches.
// The cost-based planner routes it to the scan; the forced-index
// variant shows what the old all-or-nothing heuristic would have paid
// for probing a full-collection posting list first.
func BenchmarkStorePlannerUnselective(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"flag":"on"}`)
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		b.Run(fmt.Sprintf("planner-scan/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, indexed, err := s.Find(plan)
				if err != nil || indexed || len(ids) != n {
					b.Fatalf("got %d docs (indexed=%v err=%v), want scan of %d", len(ids), indexed, err, n)
				}
			}
		})
		b.Run(fmt.Sprintf("forced-index/docs=%d", n), func(b *testing.B) {
			// Bypass the planner: probe every fact term like the old
			// all-or-nothing path did.
			var terms []uint64
			for _, f := range plan.FindFacts() {
				if term, ok := factTerm(f, s.opts.MaxIndexDepth); ok {
					terms = append(terms, term)
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pairs := s.candidates(terms, true)
				ids, err := s.findOver(plan, pairs)
				if err != nil || len(ids) != n {
					b.Fatalf("got %d docs (err %v), want %d", len(ids), err, n)
				}
			}
		})
	}
}

// BenchmarkStoreIntersectionOrder isolates the satellite win: probing
// posting lists in ascending length order versus the declaration-order
// baseline, on a worst-first term list (useless term leads).
func BenchmarkStoreIntersectionOrder(b *testing.B) {
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		facts := engine.MustCompile(engine.LangMongoFind,
			`{"flag":"on","tags.color":"c3","group":"g7"}`).FindFacts()
		var terms []uint64
		for _, f := range facts {
			if term, ok := factTerm(f, s.opts.MaxIndexDepth); ok {
				terms = append(terms, term)
			}
		}
		run := func(name string, probe func(ix *pathIndex, terms []uint64) []string) {
			b.Run(fmt.Sprintf("%s/docs=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					got := 0
					for _, sh := range s.shards {
						sh.mu.RLock()
						got += len(probe(sh.ix, terms))
						sh.mu.RUnlock()
					}
					if got == 0 {
						b.Fatal("intersection came up empty")
					}
				}
			})
		}
		run("ordered", func(ix *pathIndex, terms []uint64) []string { return ix.probe(terms) })
		run("unordered", func(ix *pathIndex, terms []uint64) []string { return ix.probeUnordered(terms) })
	}
}
