package store

import (
	"fmt"
	"runtime"
	"testing"

	"jsonlogic/internal/engine"
)

// Planner benchmarks (committed to BENCH_4.json): indexed versus scan
// versus forced-index access on selective and unselective queries at
// 10k/100k documents, plus the ordered-intersection ablation. They
// live in the store package (unlike the root suite) because the
// forced-index and intersection variants need the unexported probe
// machinery the planner normally guards.

var plannerBenchSizes = []int{10000, 100000}

var plannerBenchStores = map[int]*Store{}

// plannerBenchStore builds (once per size) a collection where
// "group" splits the documents 64 ways, "tags.color" 5 ways, and
// "flag" is carried by everyone — a selective, a medium and a useless
// index term.
func plannerBenchStore(b *testing.B, n int) *Store {
	b.Helper()
	if s, ok := plannerBenchStores[n]; ok {
		return s
	}
	s := New(Options{Shards: 16})
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`{"group":"g%d","flag":"on","tags":{"color":"c%d"},"n":%d}`,
			i%64, i%5, i)
		if err := s.Put(fmt.Sprintf("doc%07d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	plannerBenchStores[n] = s
	return s
}

// BenchmarkStorePlannerSelective: a two-term conjunctive filter where
// the planner intersects selectivity-ordered posting lists (1/64 then
// 1/5 of the collection; ~1/320 matches) against the full scan.
func BenchmarkStorePlannerSelective(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"group":"g7","tags.color":"c3"}`)
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		want := 0
		for i := 0; i < n; i++ {
			if i%64 == 7 && i%5 == 3 {
				want++
			}
		}
		b.Run(fmt.Sprintf("indexed/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, indexed, err := s.Find(plan)
				if err != nil || !indexed || len(ids) != want {
					b.Fatalf("got %d docs (indexed=%v err=%v), want %d", len(ids), indexed, err, want)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, err := s.FindScan(plan)
				if err != nil || len(ids) != want {
					b.Fatalf("got %d docs (err %v), want %d", len(ids), err, want)
				}
			}
		})
	}
}

// BenchmarkStorePlannerUnselective: a filter every document matches.
// The cost-based planner routes it to the scan; the forced-index
// variant shows what the old all-or-nothing heuristic would have paid
// for probing a full-collection posting list first.
func BenchmarkStorePlannerUnselective(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"flag":"on"}`)
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		b.Run(fmt.Sprintf("planner-scan/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, indexed, err := s.Find(plan)
				if err != nil || indexed || len(ids) != n {
					b.Fatalf("got %d docs (indexed=%v err=%v), want scan of %d", len(ids), indexed, err, n)
				}
			}
		})
		b.Run(fmt.Sprintf("forced-index/docs=%d", n), func(b *testing.B) {
			// Bypass the planner: probe every fact term like the old
			// all-or-nothing path did.
			var terms []uint64
			for _, f := range plan.FindFacts() {
				if term, ok := factTerm(f, s.opts.MaxIndexDepth); ok {
					terms = append(terms, term)
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pairs, cerr := s.candidates(terms, true)
				if cerr != nil {
					b.Fatal(cerr)
				}
				ids, err := s.findOver(plan, pairs)
				if err != nil || len(ids) != n {
					b.Fatalf("got %d docs (err %v), want %d", len(ids), err, n)
				}
			}
		})
	}
}

// BenchmarkStoreIntersection isolates the tentpole win at the index
// layer: intersecting dictionary-encoded sorted posting lists with the
// galloping/small-vs-small merge versus the retired map-set
// intersection (rebuilt here from the same lists, hashing included in
// setup only), on a worst-first term list (useless term leads).
func BenchmarkStoreIntersection(b *testing.B) {
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		facts := engine.MustCompile(engine.LangMongoFind,
			`{"flag":"on","tags.color":"c3","group":"g7"}`).FindFacts()
		var terms []uint64
		for _, f := range facts {
			if term, ok := factTerm(f, s.opts.MaxIndexDepth); ok {
				terms = append(terms, term)
			}
		}
		b.Run(fmt.Sprintf("galloping/docs=%d", n), func(b *testing.B) {
			scr := acquireProbeScratch()
			defer releaseProbeScratch(scr)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := 0
				for _, sh := range s.shards {
					sh.mu.RLock()
					ords, _, _ := sh.ix.probe(terms, scr)
					got += len(ords)
					sh.mu.RUnlock()
				}
				if got == 0 {
					b.Fatal("intersection came up empty")
				}
			}
		})
		b.Run(fmt.Sprintf("map/docs=%d", n), func(b *testing.B) {
			// The pre-dictionary representation: one hash set per term per
			// shard, intersected by iterating the smallest set and probing
			// the rest — exactly the shape of the old probe.
			shardSets := make([][]map[ordinal]struct{}, len(s.shards))
			for si, sh := range s.shards {
				sets := make([]map[ordinal]struct{}, len(terms))
				for ti, term := range terms {
					set := make(map[ordinal]struct{}, len(sh.ix.postings[term]))
					for _, ord := range sh.ix.postings[term] {
						set[ord] = struct{}{}
					}
					sets[ti] = set
				}
				shardSets[si] = sets
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := 0
				for _, sets := range shardSets {
					smallest := 0
					for ti := range sets {
						if len(sets[ti]) < len(sets[smallest]) {
							smallest = ti
						}
					}
					for ord := range sets[smallest] {
						in := true
						for ti := range sets {
							if ti == smallest {
								continue
							}
							if _, ok := sets[ti][ord]; !ok {
								in = false
								break
							}
						}
						if in {
							got++
						}
					}
				}
				if got == 0 {
					b.Fatal("intersection came up empty")
				}
			}
		})
	}
}

// BenchmarkStoreFanout compares the parallel shard fan-out against the
// same query forced serial (QueryWorkers=1) on the selective two-term
// find. On a single-core container GOMAXPROCS is 1 and the two series
// coincide (the fan-out runs inline); at GOMAXPROCS ≥ 2 the parallel
// series divides by the worker count.
func BenchmarkStoreFanout(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"group":"g7","tags.color":"c3"}`)
	for _, n := range plannerBenchSizes {
		s := plannerBenchStore(b, n)
		for _, workers := range fanoutBenchWorkers() {
			b.Run(fmt.Sprintf("workers=%d/docs=%d", workers, n), func(b *testing.B) {
				defer s.setQueryWorkers(s.setQueryWorkers(workers))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ids, _, err := s.Find(plan)
					if err != nil || len(ids) == 0 {
						b.Fatalf("find: %d ids, err %v", len(ids), err)
					}
				}
			})
		}
	}
}

// fanoutBenchWorkers is 1 (serial baseline) plus GOMAXPROCS when the
// host actually has parallelism to show.
func fanoutBenchWorkers() []int {
	out := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		out = append(out, n)
	}
	return out
}
