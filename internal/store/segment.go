package store

// segment.go: the immutable mmap'd read tier. A segment file is one
// shard's complete state at the instant a WAL generation started —
// the snapshot role snap-*.snap used to play — but instead of a
// replay log of documents it holds the shard's dictionary and its
// inverted index in their on-wire layout, so Open maps the file and
// serves from it directly: no JSON is parsed and no posting list is
// rebuilt at startup. Documents lazily parse into trees on first
// access and are cached per ordinal; posting lists stay block-
// compressed (postings_codec.go) and are intersected in place via
// their skip tables.
//
// On-disk layout (all integers little-endian):
//
//	magic "JLSEG1\n"
//	docs      section: concatenated compact-JSON document bytes
//	doc index: (n+1) × u64 offsets into the docs section
//	ids       section: concatenated document IDs
//	id index:  (n+1) × u64 offsets into the ids section
//	postings  section: per term, skip table + delta+varint blocks
//	term dir:  terms × (u64 hash | u64 postings offset | u32 count),
//	           sorted by hash for binary search
//	footer (88 bytes, fixed):
//	  6 × u64 section offsets, u64 posting entries, u64 auto-ID seq,
//	  u32 doc count, u32 term count, u32 block size,
//	  u32 crc32(file[0:crc]), magic "JLSEGF1\n"
//
// Ordinals are assigned in sorted-ID order when the segment is
// written, so ID lookup is a binary search over the id index and a
// shard's candidate enumeration is ID-ordered for free. The footer
// CRC covers the entire file, and openSegment verifies it before the
// segment is trusted — a torn footer or a flipped block anywhere
// invalidates the whole file and recovery falls back to the previous
// generation, exactly like an invalid snapshot.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"jsonlogic/internal/jsontree"
)

const (
	segMagic       = "JLSEG1\n"
	segFooterMagic = "JLSEGF1\n"
	segFooterSize  = 6*8 + 8 + 8 + 4 + 4 + 4 + 4 + len(segFooterMagic)
	termDirEntry   = 8 + 8 + 4
)

func segFilePath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%010d.seg", gen))
}

func segTempPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%010d.tmp", gen))
}

// segDoc is one resolved segment document: the ID string and the
// parsed tree, cached per ordinal after first access.
type segDoc struct {
	id   string
	tree *jsontree.Tree
}

// segmentReader serves one shard's immutable segment. All methods are
// safe for concurrent use: the underlying bytes never change and the
// resolve cache is a slice of atomic pointers. Close (munmap) must
// not race reads; the owning shard swaps readers under its write
// lock and closes the old one after the swap.
type segmentReader struct {
	path   string
	gen    uint64
	data   []byte
	mapped bool

	n              int // document count
	termCount      int
	blockSize      int
	seq            uint64 // bulk auto-ID high-water mark at write time
	postingEntries uint64

	docs, docIdx, ids, idIdx, postings, termDir []byte

	// cache holds lazily resolved documents; openSegment sizes it but
	// resolves nothing, so open cost stays independent of parse cost.
	cache []atomic.Pointer[segDoc]
}

// openSegment maps (or, with noMmap or on platforms without mmap,
// reads) the segment at path and validates it end-to-end: magic,
// footer, whole-file CRC, section bounds and index monotonicity. Any
// defect fails the open with nothing trusted — recovery treats it
// like an invalid snapshot and falls back.
func openSegment(fs VFS, path string, gen uint64, noMmap bool) (*segmentReader, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic)+segFooterSize) {
		return nil, fmt.Errorf("%s: too short for a segment (%d bytes)", path, size)
	}
	var data []byte
	var mapped bool
	if noMmap {
		data, err = readSegmentIntoHeap(f, size)
	} else {
		data, mapped, err = mapFile(f, size)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: map: %w", path, err)
	}
	sr := &segmentReader{path: path, gen: gen, data: data, mapped: mapped}
	if err := sr.validate(); err != nil {
		sr.close()
		return nil, err
	}
	sr.cache = make([]atomic.Pointer[segDoc], sr.n)
	return sr, nil
}

// readSegmentIntoHeap is the forced fallback shared by every
// platform: -segment-no-mmap and the differential tests use it on
// unix, and the !unix mapFile builds on the same idea.
func readSegmentIntoHeap(f File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, err
	}
	return data, nil
}

// validate checks the whole file: magic, footer magic, the CRC over
// every byte before the CRC field, and the structural consistency of
// the section offsets and both per-document indexes.
func (sr *segmentReader) validate() error {
	data := sr.data
	if string(data[:len(segMagic)]) != segMagic {
		return fmt.Errorf("%s: bad segment magic", sr.path)
	}
	ft := data[len(data)-segFooterSize:]
	if string(ft[segFooterSize-len(segFooterMagic):]) != segFooterMagic {
		return fmt.Errorf("%s: bad or torn segment footer", sr.path)
	}
	crcOff := len(data) - len(segFooterMagic) - 4
	if crc32.ChecksumIEEE(data[:crcOff]) != binary.LittleEndian.Uint32(data[crcOff:]) {
		return fmt.Errorf("%s: segment CRC mismatch", sr.path)
	}
	le := binary.LittleEndian
	docsOff := le.Uint64(ft[0:])
	docIdxOff := le.Uint64(ft[8:])
	idsOff := le.Uint64(ft[16:])
	idIdxOff := le.Uint64(ft[24:])
	postingsOff := le.Uint64(ft[32:])
	termDirOff := le.Uint64(ft[40:])
	sr.postingEntries = le.Uint64(ft[48:])
	sr.seq = le.Uint64(ft[56:])
	sr.n = int(le.Uint32(ft[64:]))
	sr.termCount = int(le.Uint32(ft[68:]))
	sr.blockSize = int(le.Uint32(ft[72:]))

	end := uint64(len(data) - segFooterSize)
	offs := []uint64{uint64(len(segMagic)), docsOff, docIdxOff, idsOff, idIdxOff, postingsOff, termDirOff, end}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] || offs[i] > end {
			return fmt.Errorf("%s: segment section offsets out of order", sr.path)
		}
	}
	if sr.n < 0 || sr.blockSize < 1 || sr.blockSize > maxSegmentBlockSize {
		return fmt.Errorf("%s: implausible segment header (docs %d, block %d)", sr.path, sr.n, sr.blockSize)
	}
	if docIdxOff+uint64(sr.n+1)*8 != idsOff || idIdxOff+uint64(sr.n+1)*8 != postingsOff {
		return fmt.Errorf("%s: document index sized wrong for %d documents", sr.path, sr.n)
	}
	if termDirOff+uint64(sr.termCount)*termDirEntry != end {
		return fmt.Errorf("%s: term directory sized wrong for %d terms", sr.path, sr.termCount)
	}
	sr.docs = data[docsOff:docIdxOff]
	sr.docIdx = data[docIdxOff:idsOff]
	sr.ids = data[idsOff:idIdxOff]
	sr.idIdx = data[idIdxOff:postingsOff]
	sr.postings = data[postingsOff:termDirOff]
	sr.termDir = data[termDirOff:end]
	// Both per-document indexes must be monotone and in-section, so
	// the accessors below can slice without bounds anxiety.
	for _, ix := range []struct {
		idx     []byte
		section int
		what    string
	}{{sr.docIdx, len(sr.docs), "doc"}, {sr.idIdx, len(sr.ids), "id"}} {
		prev := uint64(0)
		for i := 0; i <= sr.n; i++ {
			off := le.Uint64(ix.idx[i*8:])
			if off < prev || off > uint64(ix.section) {
				return fmt.Errorf("%s: %s index entry %d out of order", sr.path, ix.what, i)
			}
			prev = off
		}
	}
	// Term directory: hashes strictly increasing (binary-searchable),
	// offsets inside the postings section.
	prevHash := uint64(0)
	for i := 0; i < sr.termCount; i++ {
		e := sr.termDir[i*termDirEntry:]
		h := le.Uint64(e)
		if i > 0 && h <= prevHash {
			return fmt.Errorf("%s: term directory not sorted at entry %d", sr.path, i)
		}
		prevHash = h
		if off := le.Uint64(e[8:]); off > uint64(len(sr.postings)) {
			return fmt.Errorf("%s: term directory entry %d offset out of range", sr.path, i)
		}
	}
	return nil
}

// close releases the mapping. The caller guarantees no concurrent
// reader (the shard lock orders swap-then-close).
func (sr *segmentReader) close() error {
	data := sr.data
	sr.data = nil
	return unmapFile(data, sr.mapped)
}

// sizeBytes is the mapped (or heap-resident) file size.
func (sr *segmentReader) sizeBytes() int64 { return int64(len(sr.data)) }

func (sr *segmentReader) idBytes(ord ordinal) []byte {
	le := binary.LittleEndian
	return sr.ids[le.Uint64(sr.idIdx[ord*8:]):le.Uint64(sr.idIdx[(ord+1)*8:])]
}

func (sr *segmentReader) docBytes(ord ordinal) []byte {
	le := binary.LittleEndian
	return sr.docs[le.Uint64(sr.docIdx[ord*8:]):le.Uint64(sr.docIdx[(ord+1)*8:])]
}

// lookup binary-searches the ID index (ordinals are ID-sorted by
// construction) without allocating.
func (sr *segmentReader) lookup(id string) (ordinal, bool) {
	lo, hi := 0, sr.n
	for lo < hi {
		mid := (lo + hi) / 2
		if string(sr.idBytes(ordinal(mid))) < id { // comparison only: no allocation
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < sr.n && string(sr.idBytes(ordinal(lo))) == id {
		return ordinal(lo), true
	}
	return 0, false
}

// resolve returns ordinal ord's document, parsing and caching it on
// first access. Concurrent first accesses may parse twice; exactly
// one result wins the cache and trees are immutable, so either is
// correct.
func (sr *segmentReader) resolve(ord ordinal) (*segDoc, error) {
	if d := sr.cache[ord].Load(); d != nil {
		return d, nil
	}
	t, err := jsontree.Parse(string(sr.docBytes(ord)))
	if err != nil {
		// The file was CRC-valid at open; reaching here means the
		// bytes changed underneath the map or a writer bug.
		return nil, fmt.Errorf("%s: document %q: %w", sr.path, string(sr.idBytes(ord)), err)
	}
	d := &segDoc{id: string(sr.idBytes(ord)), tree: t}
	if !sr.cache[ord].CompareAndSwap(nil, d) {
		d = sr.cache[ord].Load()
	}
	return d, nil
}

// termList locates a term's posting list via binary search over the
// term directory. The bool reports presence; the zero postingList is
// returned for absent terms.
func (sr *segmentReader) termList(hash uint64) (postingList, bool) {
	le := binary.LittleEndian
	lo, hi := 0, sr.termCount
	for lo < hi {
		mid := (lo + hi) / 2
		if le.Uint64(sr.termDir[mid*termDirEntry:]) < hash {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= sr.termCount {
		return postingList{}, false
	}
	e := sr.termDir[lo*termDirEntry:]
	if le.Uint64(e) != hash {
		return postingList{}, false
	}
	off := le.Uint64(e[8:])
	count := int(le.Uint32(e[16:]))
	end := uint64(len(sr.postings))
	if lo+1 < sr.termCount {
		end = le.Uint64(sr.termDir[(lo+1)*termDirEntry+8:])
	}
	if end < off || end > uint64(len(sr.postings)) {
		return postingList{}, false
	}
	return postingList{raw: sr.postings[off:end], count: count, blockSize: sr.blockSize}, true
}

// termCardinality returns the term's posting count (0 if absent).
// Like the memtable's statistic it may include tombstoned documents,
// so it is an upper bound on live carriers.
func (sr *segmentReader) termCardinality(hash uint64) int {
	pl, ok := sr.termList(hash)
	if !ok {
		return 0
	}
	return pl.count
}

// probe intersects the segment's posting lists for terms, smallest
// first, filtering tombstoned ordinals through dead, and returns the
// surviving sorted ordinals (aliasing scratch buffers — consume
// before releasing scr) plus the merge-work counters. The compressed
// lists are never fully decoded except the smallest: the rest are
// galloped via their skip tables, decoding only visited blocks. A
// missing term short-circuits to empty. Allocation-free once the
// scratch has grown.
//
// probe reuses scr's ping-pong buffers, so a caller that also probes
// the memtable must consume that result before calling probe.
func (sr *segmentReader) probe(terms []uint64, scr *probeScratch, dead []uint64) (_ []ordinal, steps, gallops int, err error) {
	if len(terms) == 0 {
		return nil, 0, 0, nil
	}
	lists := scr.segLists[:0]
	defer func() { scr.segLists = lists }()
	for _, term := range terms {
		pl, ok := sr.termList(term)
		if !ok {
			return nil, 0, 0, nil
		}
		if err := pl.valid(); err != nil {
			return nil, 0, 0, fmt.Errorf("%s: term %#x: %w", sr.path, term, err)
		}
		lists = append(lists, pl)
	}
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && lists[j].count < lists[j-1].count; j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	cur := scr.bufA[:0]
	if cur, err = lists[0].decodeAll(cur); err != nil {
		scr.bufA = cur
		return nil, 0, 0, err
	}
	scr.bufA = cur
	steps = len(cur)
	for i := 1; i < len(lists) && len(cur) > 0; i++ {
		var dst []ordinal
		odd := i%2 == 1
		if odd {
			dst = scr.bufB[:0]
		} else {
			dst = scr.bufA[:0]
		}
		var s int
		dst, scr.segBlock, s, err = intersectPostings(dst, cur, lists[i], scr.segBlock[:0])
		steps += s
		gallops++
		if odd {
			scr.bufB = dst
		} else {
			scr.bufA = dst
		}
		if err != nil {
			return nil, steps, gallops, err
		}
		cur = dst
	}
	if len(dead) > 0 {
		w := 0
		for _, ord := range cur {
			if !bitGet(dead, ord) {
				cur[w] = ord
				w++
			}
		}
		cur = cur[:w]
	}
	return cur, steps, gallops, nil
}

// each calls fn for every live (per dead) document in the segment in
// ID order, resolving each through the cache.
func (sr *segmentReader) each(dead []uint64, fn func(id string, t *jsontree.Tree)) error {
	for ord := 0; ord < sr.n; ord++ {
		if bitGet(dead, ordinal(ord)) {
			continue
		}
		d, err := sr.resolve(ordinal(ord))
		if err != nil {
			return err
		}
		fn(d.id, d.tree)
	}
	return nil
}

// Tombstone bitmap helpers: one bit per segment ordinal, owned by the
// shard and guarded by its lock.

func bitGet(bm []uint64, i ordinal) bool {
	w := int(i >> 6)
	return w < len(bm) && bm[w]&(1<<(i&63)) != 0
}

func bitSet(bm []uint64, i ordinal) {
	bm[i>>6] |= 1 << (i & 63)
}

func newBitmap(n int) []uint64 {
	return make([]uint64, (n+63)/64)
}

// ---------------------------------------------------------------------
// Segment construction: merge of the previous segment and the frozen
// memtable.

// segSource records where one new-segment ordinal came from, so the
// post-build swap can reconcile against writes that landed while the
// merge ran, and so warm parse caches carry over.
type segSource struct {
	fromSeg bool
	oldOrd  ordinal // valid when fromSeg
	memIdx  int32   // index into the captured memtable slice otherwise
}

// segBuild is the frozen input of one segment build, captured under
// the shard lock at WAL rotation, plus the outputs the swap needs.
type segBuild struct {
	old     *segmentReader // previous segment (immutable; nil if none)
	oldDead []uint64       // tombstones at rotation (copy)
	memIDs  []string       // live memtable documents at rotation
	memTree []*jsontree.Tree

	// Outputs of buildSegment.
	sources []segSource
	entries int
}

// crcWriter counts and checksums everything written through it, so
// the footer CRC is computed in the same single pass that streams the
// file.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	off uint64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.off += uint64(n)
	return n, err
}

// buildSegment writes generation gen's segment file for one shard
// from b's frozen inputs: documents stream straight from the old
// mapping (no JSON parse) and from the captured memtable trees, and
// posting lists merge term-by-term — the old segment's compressed
// lists are decoded, de-tombstoned and renumbered while the memtable
// documents are re-walked once. The file lands via temp + fsync +
// rename, so a crash mid-build leaves only a swept .tmp. On return
// b.sources maps every new ordinal to its origin.
func (s *Store) buildSegment(dir string, gen uint64, b *segBuild, seq uint64) error {
	oldN := 0
	if b.old != nil {
		oldN = b.old.n
	}
	// Survivor set, sorted by ID. Live memtable IDs and live old-
	// segment IDs are disjoint: a put that shadows a segment document
	// tombstones its ordinal.
	type survivor struct {
		id  string
		src segSource
	}
	survivors := make([]survivor, 0, oldN+len(b.memIDs))
	for ord := 0; ord < oldN; ord++ {
		if bitGet(b.oldDead, ordinal(ord)) {
			continue
		}
		survivors = append(survivors, survivor{
			id:  string(b.old.idBytes(ordinal(ord))),
			src: segSource{fromSeg: true, oldOrd: ordinal(ord)},
		})
	}
	for i, id := range b.memIDs {
		survivors = append(survivors, survivor{id: id, src: segSource{memIdx: int32(i)}})
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].id < survivors[j].id })
	n := len(survivors)
	b.sources = make([]segSource, n)
	for i, sv := range survivors {
		b.sources[i] = sv.src
	}

	// Ordinal remaps old → new. Both are order-preserving (survivors
	// of each tier keep their relative ID order), so remapped posting
	// lists stay sorted.
	const deadOrd = ^ordinal(0)
	segRemap := make([]ordinal, oldN)
	for i := range segRemap {
		segRemap[i] = deadOrd
	}
	memOrd := make([]ordinal, len(b.memIDs))
	for newOrd, sv := range survivors {
		if sv.src.fromSeg {
			segRemap[sv.src.oldOrd] = ordinal(newOrd)
		} else {
			memOrd[sv.src.memIdx] = ordinal(newOrd)
		}
	}

	// Memtable postings, keyed and then sorted by term hash. The walk
	// happens here — once per captured document — rather than under
	// any lock.
	memPost := make(map[uint64][]ordinal)
	for i, t := range b.memTree {
		for _, term := range docTerms(t, s.opts.MaxIndexDepth) {
			memPost[term] = append(memPost[term], memOrd[i])
		}
	}
	memTerms := make([]uint64, 0, len(memPost))
	for term := range memPost {
		memTerms = append(memTerms, term)
	}
	sort.Slice(memTerms, func(i, j int) bool { return memTerms[i] < memTerms[j] })
	for _, post := range memPost {
		sort.Slice(post, func(i, j int) bool { return post[i] < post[j] })
	}

	blockSize := s.opts.SegmentBlockSize
	fs := s.dur.fs
	tmp := segTempPath(dir, gen)
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	le := binary.LittleEndian
	if _, err := io.WriteString(cw, segMagic); err != nil {
		return fail(err)
	}

	// Docs section, offsets accumulated for the index that follows.
	docsOff := cw.off
	offsets := make([]uint64, n+1)
	for i, sv := range survivors {
		offsets[i] = cw.off - docsOff
		var err error
		if sv.src.fromSeg {
			_, err = cw.Write(b.old.docBytes(sv.src.oldOrd))
		} else {
			_, err = io.WriteString(cw, b.memTree[sv.src.memIdx].String())
		}
		if err != nil {
			return fail(err)
		}
	}
	offsets[n] = cw.off - docsOff
	docIdxOff := cw.off
	var u64buf [8]byte
	writeU64 := func(v uint64) error {
		le.PutUint64(u64buf[:], v)
		_, err := cw.Write(u64buf[:])
		return err
	}
	for _, off := range offsets {
		if err := writeU64(off); err != nil {
			return fail(err)
		}
	}

	// IDs section + index.
	idsOff := cw.off
	for i, sv := range survivors {
		offsets[i] = cw.off - idsOff
		if _, err := io.WriteString(cw, sv.id); err != nil {
			return fail(err)
		}
	}
	offsets[n] = cw.off - idsOff
	idIdxOff := cw.off
	for _, off := range offsets {
		if err := writeU64(off); err != nil {
			return fail(err)
		}
	}

	// Postings: one ordered merge of the old segment's term directory
	// and the memtable's term set. Term hashes are unique within each
	// stream and both are sorted, so this is a plain two-pointer merge;
	// a shared hash merges the two remapped ordinal lists.
	postingsOff := cw.off
	termDir := make([]byte, 0, (b.oldSegTerms()+len(memTerms))*termDirEntry)
	var encBuf []byte
	var listBuf, decBuf []ordinal
	entries := 0
	emit := func(term uint64, ords []ordinal) error {
		if len(ords) == 0 {
			return nil
		}
		var e [termDirEntry]byte
		le.PutUint64(e[0:], term)
		le.PutUint64(e[8:], cw.off-postingsOff)
		le.PutUint32(e[16:], uint32(len(ords)))
		termDir = append(termDir, e[:]...)
		entries += len(ords)
		encBuf = appendPostings(encBuf[:0], ords, blockSize)
		_, err := cw.Write(encBuf)
		return err
	}
	// remapOld decodes one old-segment list, drops tombstoned
	// ordinals and renumbers the rest (order-preserving).
	remapOld := func(pl postingList) ([]ordinal, error) {
		if err := pl.valid(); err != nil {
			return nil, err
		}
		decBuf = decBuf[:0]
		var err error
		if decBuf, err = pl.decodeAll(decBuf); err != nil {
			return nil, err
		}
		listBuf = listBuf[:0]
		for _, ord := range decBuf {
			if int(ord) < len(segRemap) && segRemap[ord] != deadOrd {
				listBuf = append(listBuf, segRemap[ord])
			}
		}
		return listBuf, nil
	}
	oi, mi := 0, 0
	oldTerms := b.oldSegTerms()
	for oi < oldTerms || mi < len(memTerms) {
		var oldHash uint64
		var oldPl postingList
		if oi < oldTerms {
			e := b.old.termDir[oi*termDirEntry:]
			oldHash = le.Uint64(e)
			oldPl, _ = b.old.termList(oldHash)
		}
		switch {
		case mi >= len(memTerms) || (oi < oldTerms && oldHash < memTerms[mi]):
			ords, err := remapOld(oldPl)
			if err != nil {
				return fail(err)
			}
			if err := emit(oldHash, ords); err != nil {
				return fail(err)
			}
			oi++
		case oi >= oldTerms || memTerms[mi] < oldHash:
			if err := emit(memTerms[mi], memPost[memTerms[mi]]); err != nil {
				return fail(err)
			}
			mi++
		default: // same term in both tiers: merge the sorted lists
			ords, err := remapOld(oldPl)
			if err != nil {
				return fail(err)
			}
			merged := mergeSorted(ords, memPost[memTerms[mi]])
			if err := emit(oldHash, merged); err != nil {
				return fail(err)
			}
			oi++
			mi++
		}
	}
	termDirOff := cw.off
	if _, err := cw.Write(termDir); err != nil {
		return fail(err)
	}

	// Footer: everything through the CRC's own offset is covered by
	// the CRC; the CRC and trailing magic are not (they cannot be).
	var ft [segFooterSize]byte
	le.PutUint64(ft[0:], docsOff)
	le.PutUint64(ft[8:], docIdxOff)
	le.PutUint64(ft[16:], idsOff)
	le.PutUint64(ft[24:], idIdxOff)
	le.PutUint64(ft[32:], postingsOff)
	le.PutUint64(ft[40:], termDirOff)
	le.PutUint64(ft[48:], uint64(entries))
	le.PutUint64(ft[56:], seq)
	le.PutUint32(ft[64:], uint32(n))
	le.PutUint32(ft[68:], uint32(len(termDir)/termDirEntry))
	le.PutUint32(ft[72:], uint32(blockSize))
	crcEnd := segFooterSize - len(segFooterMagic) - 4
	if _, err := cw.Write(ft[:crcEnd]); err != nil {
		return fail(err)
	}
	le.PutUint32(ft[crcEnd:], cw.crc)
	copy(ft[crcEnd+4:], segFooterMagic)
	if _, err := cw.w.Write(ft[crcEnd:]); err != nil {
		return fail(err)
	}
	if err := cw.w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, segFilePath(dir, gen)); err != nil {
		fs.Remove(tmp)
		return err
	}
	b.entries = n
	return fs.SyncDir(dir)
}

// oldSegTerms is the previous segment's term count (0 when none).
func (b *segBuild) oldSegTerms() int {
	if b.old == nil {
		return 0
	}
	return b.old.termCount
}

// mergeSorted merges two sorted duplicate-free ordinal lists. The
// tiers are disjoint, so no ordinal appears in both.
func mergeSorted(a, b []ordinal) []ordinal {
	out := make([]ordinal, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
