package store

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// Deterministic codec coverage: round-trips across the block-size and
// list-shape corners, seekBlock's galloping contract, and the
// intersection against a trivial reference. FuzzPostingsCodec extends
// the same properties to arbitrary inputs and adds the hostile-bytes
// side: a decoder fed garbage must error, never panic or over-read.

// roundTrip encodes ords and returns the decoder's view.
func roundTrip(t testing.TB, ords []ordinal, blockSize int) postingList {
	t.Helper()
	raw := appendPostings(nil, ords, blockSize)
	pl := postingList{raw: raw, count: len(ords), blockSize: blockSize}
	if err := pl.valid(); err != nil {
		t.Fatalf("freshly encoded list invalid: %v", err)
	}
	return pl
}

func TestPostingsRoundTrip(t *testing.T) {
	cases := [][]ordinal{
		nil,
		{0},
		{42},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{1, 1 << 10, 1 << 20, 1 << 30, ^ordinal(0)},
	}
	// A long list with irregular gaps, crossing many block boundaries.
	long := make([]ordinal, 0, 1000)
	v := ordinal(0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		long = append(long, v)
		v += 1 + ordinal(r.Intn(1000))
	}
	cases = append(cases, long)
	for _, ords := range cases {
		for _, bs := range []int{1, 2, 3, 127, 128, maxSegmentBlockSize} {
			pl := roundTrip(t, ords, bs)
			got, err := pl.decodeAll(nil)
			if err != nil {
				t.Fatalf("bs=%d n=%d: decodeAll: %v", bs, len(ords), err)
			}
			if len(got) != len(ords) {
				t.Fatalf("bs=%d: decoded %d ordinals, want %d", bs, len(got), len(ords))
			}
			for i := range ords {
				if got[i] != ords[i] {
					t.Fatalf("bs=%d: ordinal %d decoded as %d, want %d", bs, i, got[i], ords[i])
				}
			}
		}
	}
}

func TestPostingsSeekBlock(t *testing.T) {
	// Blocks of 4 starting at 0, 40, 80, ...: first ordinals are
	// predictable so every bracketing case is checkable.
	var ords []ordinal
	for b := 0; b < 10; b++ {
		for i := 0; i < 4; i++ {
			ords = append(ords, ordinal(b*40+i*10))
		}
	}
	pl := roundTrip(t, ords, 4)
	for _, tc := range []struct {
		from int
		x    ordinal
		want int
	}{
		{0, 0, 0},    // first ordinal of first block
		{0, 39, 0},   // inside first block's range
		{0, 40, 1},   // exactly a later block's first
		{0, 75, 1},   // between blocks
		{0, 1000, 9}, // past the end
		{3, 170, 4},  // monotone lower bound respected
		{8, 500, 9},  // from near the end
	} {
		if got, _ := pl.seekBlock(tc.from, tc.x); got != tc.want {
			t.Errorf("seekBlock(%d, %d) = %d, want %d", tc.from, tc.x, got, tc.want)
		}
	}
}

func TestPostingsIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		list := randomOrdinals(r, r.Intn(400), 5)
		cand := randomOrdinals(r, r.Intn(400), 5)
		bs := []int{1, 3, 16, 128}[trial%4]
		pl := roundTrip(t, list, bs)
		got, _, _, err := intersectPostings(nil, cand, pl, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := referenceIntersect(cand, list)
		if len(got) != len(want) {
			t.Fatalf("trial %d (bs=%d): %d survivors, want %d", trial, bs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: survivor %d is %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func randomOrdinals(r *rand.Rand, n, gap int) []ordinal {
	out := make([]ordinal, 0, n)
	v := ordinal(r.Intn(gap))
	for i := 0; i < n; i++ {
		out = append(out, v)
		v += 1 + ordinal(r.Intn(gap))
	}
	return out
}

func referenceIntersect(cand, list []ordinal) []ordinal {
	in := make(map[ordinal]bool, len(list))
	for _, v := range list {
		in[v] = true
	}
	var out []ordinal
	for _, v := range cand {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// FuzzPostingsCodec pins the codec's two safety contracts. Round-trip:
// any sorted duplicate-free list encodes to bytes that validate and
// decode back identically at any block size. Hostile bytes: a decoder
// handed arbitrary raw bytes with an arbitrary claimed count either
// rejects them in valid() or decodes/intersects without panicking or
// reading outside the slice — corruption is an error, never a crash.
func FuzzPostingsCodec(f *testing.F) {
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(2))
	f.Add(appendPostings(nil, []ordinal{1, 5, 9, 1 << 20}, 2), uint16(2))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x80, 0x80}, uint16(128))
	f.Fuzz(func(t *testing.T, data []byte, bsRaw uint16) {
		blockSize := int(bsRaw)%maxSegmentBlockSize + 1

		// Round-trip: derive a sorted unique list from the data bytes
		// (each byte is a strictly positive gap, so the list is valid by
		// construction).
		ords := make([]ordinal, 0, len(data))
		v := ordinal(0)
		for _, b := range data {
			v += ordinal(b) + 1
			ords = append(ords, v)
		}
		pl := roundTrip(t, ords, blockSize)
		got, err := pl.decodeAll(nil)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(got) != len(ords) {
			t.Fatalf("round-trip length %d, want %d", len(got), len(ords))
		}
		for i := range ords {
			if got[i] != ords[i] {
				t.Fatalf("round-trip ordinal %d: %d != %d", i, got[i], ords[i])
			}
		}

		// Hostile bytes: reinterpret data as a raw posting list with a
		// count read from its first bytes. valid() may reject it; if it
		// does not, decoding must stay in-bounds and intersection must
		// not panic. Errors are fine either way.
		count := 0
		if len(data) >= 2 {
			count = int(binary.LittleEndian.Uint16(data)) + 1
		}
		hostile := postingList{raw: data, count: count, blockSize: blockSize}
		if err := hostile.valid(); err == nil {
			if _, err := hostile.decodeAll(nil); err != nil {
				_ = err // corruption detected past the structural check: fine
			}
			cand := []ordinal{0, 1, 1 << 8, 1 << 16, 1 << 24, ^ordinal(0)}
			if _, _, _, err := intersectPostings(nil, cand, hostile, nil); err != nil {
				_ = err
			}
		}
	})
}
