package store

// cancel_test.go: cooperative query cancellation. A context that
// expires mid-query must abort the fan-out promptly (checkpoints in
// the per-shard loops and inside the executor), surface ctx.Err() to
// the caller, bump the cancellation counter — and a nil context must
// keep the exact pre-cancellation fast path.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jsonlogic/internal/engine"
)

func cancelStore(t *testing.T, docs int) *Store {
	t.Helper()
	s := New(Options{Shards: 4})
	for i := 0; i < docs; i++ {
		if err := s.PutTree(fmt.Sprintf("d%05d", i), chaosDoc(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	return s
}

// scanPlan compiles a query no index fact supports, forcing a full
// evaluation of every document.
func scanPlan(t *testing.T, s *Store) *engine.Plan {
	t.Helper()
	p, err := s.Engine().Compile(engine.LangMongoFind, `{"n":{"$ne":999999999}}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestFindCancelledContext(t *testing.T) {
	s := cancelStore(t, 2000)
	p := scanPlan(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := s.Stats().Queries.Cancellations
	_, _, err := s.FindTraced(ctx, p, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("find with cancelled ctx: got %v, want context.Canceled", err)
	}
	if got := s.Stats().Queries.Cancellations; got != before+1 {
		t.Fatalf("cancellations counter %d, want %d", got, before+1)
	}
}

func TestSelectCancelledContext(t *testing.T) {
	s := cancelStore(t, 2000)
	p := scanPlan(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.SelectTraced(ctx, p, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("select with cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestFindDeadlineBoundedReturn: an expired deadline over a large
// scan must return well before the scan would finish — the loops
// checkpoint every batchCancelDocs documents and the executor every
// cancelCheckEvery steps, so the latency bound is a few checkpoint
// intervals, not the query's runtime.
func TestFindDeadlineBoundedReturn(t *testing.T) {
	s := cancelStore(t, 20000)
	p := scanPlan(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline certainly expired
	start := time.Now()
	_, _, err := s.FindTraced(ctx, p, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("find past deadline: got %v, want DeadlineExceeded", err)
	}
	// Generous bound: the uncancelled scan takes far longer, an
	// aborted one only ever evaluates a checkpoint interval per worker.
	if elapsed > time.Second {
		t.Fatalf("cancelled find took %v; checkpointing is not bounding the return", elapsed)
	}
}

func TestExplainHonoursContext(t *testing.T) {
	s := cancelStore(t, 2000)
	p := scanPlan(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Explain(ctx, p, "find"); !errors.Is(err, context.Canceled) {
		t.Fatalf("explain with cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestNilContextUnchanged: the nil-ctx entry points answer exactly
// like the plain ones — same results, no cancellation bookkeeping.
func TestNilContextUnchanged(t *testing.T) {
	s := cancelStore(t, 500)
	p := scanPlan(t, s)
	ids, _, err := s.Find(p)
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	ids2, _, err := s.FindTraced(nil, p, nil)
	if err != nil {
		t.Fatalf("find traced nil ctx: %v", err)
	}
	if len(ids) != 500 || len(ids2) != 500 {
		t.Fatalf("scan matched %d/%d docs, want 500", len(ids), len(ids2))
	}
	if s.Stats().Queries.Cancellations != 0 {
		t.Fatal("nil-ctx queries recorded cancellations")
	}
}

// TestLiveContextCompletes: a context that never expires must not
// perturb results.
func TestLiveContextCompletes(t *testing.T) {
	s := cancelStore(t, 500)
	p := scanPlan(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ids, _, err := s.FindTraced(ctx, p, nil)
	if err != nil || len(ids) != 500 {
		t.Fatalf("find with live ctx: %d ids, err %v", len(ids), err)
	}
	sels, _, err := s.SelectTraced(ctx, p, nil)
	if err != nil || len(sels) != 500 {
		t.Fatalf("select with live ctx: %d selections, err %v", len(sels), err)
	}
}
