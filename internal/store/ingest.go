package store

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// BulkError records one failed line of a bulk ingest.
type BulkError struct {
	// Line is the 1-based input line number.
	Line int
	// Err is the parse failure. The line is skipped; the rest of the
	// batch proceeds.
	Err error
}

// BulkResult reports a bulk NDJSON ingest.
type BulkResult struct {
	// IDs are the assigned document IDs, in input order, for the lines
	// that parsed.
	IDs []string
	// Errors lists the lines that failed to parse.
	Errors []BulkError
}

// BulkNDJSON ingests one JSON document per non-blank line, assigning
// each a fresh sequential ID ("d00000000", …). A malformed line fails
// alone and is reported in the result; the returned error reports a
// failure of the reader itself (an I/O error or an oversized line),
// after which the stream cannot be resynchronized — documents ingested
// before the failure remain stored.
//
// Lines are tokenized with the §6 streaming tokenizer and materialized
// through a reused jsontree.Builder, bypassing the jsonval layer like
// the engine's NDJSON paths.
func (s *Store) BulkNDJSON(r io.Reader) (BulkResult, error) {
	var res BulkResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), engine.MaxNDJSONLine)
	b := jsontree.NewBuilder()
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		t, err := engine.BuildTree(strings.NewReader(text), b)
		if err != nil {
			res.Errors = append(res.Errors, BulkError{Line: lineNo, Err: err})
			continue
		}
		// Draw sequence IDs until one inserts: taken IDs (user-chosen
		// names, or a concurrent Put racing the sequence) are skipped
		// atomically, never overwritten.
		var id string
		for {
			id = fmt.Sprintf("d%08d", s.seq.Add(1)-1)
			if s.putTreeIfAbsent(id, t) {
				break
			}
		}
		res.IDs = append(res.IDs, id)
	}
	return res, sc.Err()
}
