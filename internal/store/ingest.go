package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// BulkError records one failed line of a bulk ingest.
type BulkError struct {
	// Line is the 1-based input line number.
	Line int
	// Err is the parse failure. The line is skipped; the rest of the
	// batch proceeds.
	Err error
}

// BulkResult reports a bulk NDJSON ingest.
type BulkResult struct {
	// IDs are the assigned document IDs, in input order, for the lines
	// that parsed.
	IDs []string
	// Errors lists the lines that failed to parse.
	Errors []BulkError
	// Durable is how many of IDs (a prefix, in input order) are known
	// durable per the store's fsync policy. On a clean batch it equals
	// len(IDs); on a mid-batch WAL failure it is the count the client
	// need not re-upload — later lines were applied in memory but their
	// WAL records may not have survived. On an in-memory store it
	// equals len(IDs) (there is no durability to lose).
	Durable int
}

// BulkNDJSON ingests one JSON document per non-blank line, assigning
// each a fresh sequential ID ("d00000000", …). A malformed line fails
// alone and is reported in the result; the returned error reports a
// failure of the reader itself (an I/O error or an oversized line),
// after which the stream cannot be resynchronized — documents ingested
// before the failure remain stored.
//
// Lines are tokenized with the §6 streaming tokenizer and materialized
// through a reused jsontree.Builder, bypassing the jsonval layer like
// the engine's NDJSON paths.
//
// On a durable store, WAL appends are batched: per-line records are
// buffered as they are applied and forced durable once at the end of
// the stream, so fsync=always pays one sync per touched shard per
// batch instead of one per document. The result is acknowledged only
// after that final force; a WAL failure aborts the batch with the
// documents ingested so far reported in the result.
func (s *Store) BulkNDJSON(r io.Reader) (BulkResult, error) {
	var res BulkResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), engine.MaxNDJSONLine)
	b := jsontree.NewBuilder()
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		t, err := engine.BuildTree(strings.NewReader(text), b)
		if err != nil {
			res.Errors = append(res.Errors, BulkError{Line: lineNo, Err: err})
			continue
		}
		// Schema enforcement is per line, like parse errors: one
		// nonconforming document is rejected without aborting the batch.
		if err := s.validateSchema(fmt.Sprintf("bulk line %d", lineNo), t); err != nil {
			res.Errors = append(res.Errors, BulkError{Line: lineNo, Err: err})
			continue
		}
		// Draw sequence IDs until one inserts: taken IDs (user-chosen
		// names, or a concurrent Put racing the sequence) are skipped
		// atomically, never overwritten.
		var id string
		for {
			id = fmt.Sprintf("d%08d", s.seq.Add(1)-1)
			ok, err := s.putTreeIfAbsent(id, t)
			if err != nil {
				// Force the other shards' buffered records durable
				// before reporting: the result's IDs are promised to
				// be "already stored", which must survive a crash. A
				// failure of that force matters just as much, so it
				// travels with the original error. Only on a clean
				// force is the applied prefix known durable.
				if cerr := s.commitBulk(); cerr != nil {
					err = errors.Join(err, cerr)
				} else {
					res.Durable = len(res.IDs)
				}
				return res, fmt.Errorf("bulk line %d (after %d durable): %w", lineNo, res.Durable, err)
			}
			if ok {
				break
			}
		}
		res.IDs = append(res.IDs, id)
	}
	if err := sc.Err(); err != nil {
		// Keep what was applied durable; a failed force travels with
		// the reader error.
		if cerr := s.commitBulk(); cerr != nil {
			err = errors.Join(err, cerr)
		} else {
			res.Durable = len(res.IDs)
		}
		return res, err
	}
	if err := s.commitBulk(); err != nil {
		return res, fmt.Errorf("bulk commit (0 of %d lines known durable): %w", len(res.IDs), err)
	}
	res.Durable = len(res.IDs)
	return res, nil
}

// commitBulk forces every shard's buffered WAL tail durable per the
// fsync policy — the group commit that ends a bulk batch. The
// per-shard fsyncs are independent, so they run concurrently: the
// batch waits roughly one fsync latency, not shard-count of them.
// Untouched shards are free (syncNow returns without syncing when
// nothing is pending). Shards already degraded are skipped: every
// write that touched one has already returned its error to the
// caller unacknowledged, so forcing it can only re-report the sticky
// error and mask the healthy shards' clean commit — which is exactly
// the durable prefix a mid-batch abort wants to certify.
func (s *Store) commitBulk() error {
	if s.dur == nil {
		return nil
	}
	if s.dur.policy != FsyncAlways {
		var first error
		for _, w := range s.dur.wals {
			if w.degraded.Load() {
				continue
			}
			if err := w.commit(0); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(s.dur.wals))
	var wg sync.WaitGroup
	for i, w := range s.dur.wals {
		if w.degraded.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, w *shardWAL) {
			defer wg.Done()
			errs[i] = w.syncNow()
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
