package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/trace"
)

// Selection is the node-selection result for one document.
type Selection struct {
	ID string
	// Tree is the snapshot the node IDs refer to. Callers resolving
	// Nodes must use it rather than re-fetching by ID — a concurrent
	// replacement of the document would make the IDs meaningless.
	Tree  *jsontree.Tree
	Nodes []jsontree.NodeID
}

// batchCancelDocs is how often (in documents) the per-shard evaluation
// loops poll a non-nil ctx between documents; must be a power of two.
// It mirrors the engine's batch poll interval so cancellation latency
// is bounded the same way on both evaluation paths.
const batchCancelDocs = 64

// docPair is a snapshot of one stored document.
type docPair struct {
	id   string
	tree *jsontree.Tree
}

// execInfo aggregates one execution's counter inputs — parallelism,
// intersection work, candidate count — returned up to the Find/Select
// entry points, which alone bump the store's counters. Explain runs
// the identical pipeline and simply discards it, so explaining a
// query never disturbs the statistics.
type execInfo struct {
	workers    int
	steps      uint64
	candidates int
}

// collectCandidates appends the shard's candidates for one query to
// dst under the shard's read lock: when indexed, the union of the
// memtable's posting intersection and the segment's (tombstone-
// filtered), the whole shard otherwise. Trees are immutable, so
// evaluation happens after the lock is released; each query sees a
// consistent per-shard snapshot. steps reports both tiers' merge
// work. The error is a segment resolve/decode failure — impossible
// while the mapping is intact, surfaced rather than swallowed. An
// armed trace gets one "probe" span per indexed shard (posting-list
// lengths, merge steps, gallop switches per tier, surviving
// candidates); tr is nil on the untraced path.
func (sh *shard) collectCandidates(terms []uint64, indexed bool, dst []docPair, tr *trace.Trace, shardIdx int) (_ []docPair, steps int, err error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !indexed {
		err := sh.each(func(id string, t *jsontree.Tree) {
			dst = append(dst, docPair{id: id, tree: t})
		})
		return dst, 0, err
	}
	sp := trace.None
	if tr != nil {
		sp = tr.Start(tr.Root(), "probe")
		tr.Attr(sp, "shard", int64(shardIdx))
		tr.AttrStr(sp, "lists", postingLengths(sh.ix, terms))
	}
	scr := acquireProbeScratch()
	defer releaseProbeScratch(scr)
	before := len(dst)
	ords, steps, gallops := sh.ix.probe(terms, scr)
	for _, ord := range ords {
		// The probe result may carry tombstoned ordinals; the dictionary
		// filters them here, while the lock still pins it.
		if id := sh.ix.ids[ord]; id != "" {
			dst = append(dst, docPair{id: id, tree: sh.ix.trees[ord]})
		}
	}
	// Segment tier second: its probe reuses the scratch's ping-pong
	// buffers, which is safe exactly because the memtable result was
	// just consumed into dst. The tiers are disjoint, so appending
	// cannot duplicate an ID.
	segSteps, segGallops := 0, 0
	if sh.seg != nil {
		var segOrds []ordinal
		segOrds, segSteps, segGallops, err = sh.seg.probe(terms, scr, sh.segDead)
		if err == nil {
			for _, ord := range segOrds {
				var d *segDoc
				if d, err = sh.seg.resolve(ord); err != nil {
					break
				}
				dst = append(dst, docPair{id: d.id, tree: d.tree})
			}
		}
		steps += segSteps
	}
	if sp != trace.None {
		tr.Attr(sp, "steps", int64(steps))
		tr.Attr(sp, "gallops", int64(gallops))
		tr.Attr(sp, "seg_steps", int64(segSteps))
		tr.Attr(sp, "seg_gallops", int64(segGallops))
		tr.Attr(sp, "candidates", int64(len(dst)-before))
		tr.End(sp)
	}
	return dst, steps, err
}

// postingLengths renders the probed terms' posting-list lengths
// ("12,4096"), in term order — the trace's record of what the
// intersection was up against on this shard.
func postingLengths(ix *pathIndex, terms []uint64) string {
	var b []byte
	for i, term := range terms {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(len(ix.postings[term])), 10)
	}
	return string(b)
}

// candidates snapshots, serially, the documents a query must evaluate
// across all shards. The fan-out paths below collect per shard on the
// worker pool instead; this entry point remains for the forced-access
// benchmarks and the differential tests' reference scans.
func (s *Store) candidates(terms []uint64, indexed bool) ([]docPair, error) {
	var out []docPair
	for i, sh := range s.shards {
		var err error
		if out, _, err = sh.collectCandidates(terms, indexed, out, nil, i); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fanOut runs task(0 … shards-1) over at most Options.QueryWorkers
// goroutines (work-stealing by atomic counter, like the engine's batch
// pool) and returns how many workers ran plus the first task error.
// With one worker — or one shard — the tasks run inline on the calling
// goroutine: no goroutine is spawned for a query that cannot
// parallelize. A non-nil ctx is polled before every shard task, so a
// cancelled query stops picking up shards; in-flight tasks notice via
// their own checkpoints.
func (s *Store) fanOut(ctx context.Context, task func(shardIdx int) error) (int, error) {
	n := len(s.shards)
	workers := s.opts.QueryWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return 1, err
				}
			}
			if err := task(i); err != nil {
				return 1, err
			}
		}
		return 1, nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
				if err := task(i); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return workers, *ep
	}
	return workers, nil
}

// noteFanout records one query's parallelism and intersection work.
func (s *Store) noteFanout(workers int, steps uint64) {
	if workers > 1 {
		s.parallelQueries.Add(1)
	} else {
		s.serialQueries.Add(1)
	}
	s.fanoutWorkers.Observe(workers)
	if steps > 0 {
		s.intersectionSteps.Add(steps)
	}
}

// annotatePlanSpan records the planner's verdict on the trace's plan
// span: access path, justification, and the terms kept/skipped with
// their cardinalities.
func annotatePlanSpan(tr *trace.Trace, sp trace.SpanID, plan *QueryPlan) {
	if tr == nil {
		return
	}
	tr.AttrStr(sp, "access", plan.Access.String())
	tr.AttrStr(sp, "reason", plan.Reason)
	tr.Attr(sp, "doc_count", int64(plan.DocCount))
	kept := 0
	for _, t := range plan.Terms {
		if !t.Skipped {
			kept++
		}
	}
	tr.Attr(sp, "terms_kept", int64(kept))
	tr.Attr(sp, "terms_skipped", int64(plan.TermsSkipped()))
	tr.Attr(sp, "est_candidates", int64(plan.EstCandidates))
	if len(plan.Terms) > 0 {
		tr.AttrStr(sp, "terms", renderTerms(plan.Terms))
	}
}

// renderTerms compacts the planner's per-term decisions into one
// attribute value: "fact=cardinality" per term, "!" marking skipped
// terms, comma-separated in planner (ascending-cardinality) order.
func renderTerms(terms []TermPlan) string {
	var b []byte
	for i, t := range terms {
		if i > 0 {
			b = append(b, ',')
		}
		if t.Skipped {
			b = append(b, '!')
		}
		b = append(b, t.Fact...)
		b = append(b, '=')
		b = strconv.AppendInt(b, int64(t.Cardinality), 10)
	}
	return string(b)
}

// semanticEmpty reports whether the plan short-circuits to an empty
// answer from a compile-time proof: an unsatisfiable query always
// does; a schema-unsatisfiable one only on a store that enforces the
// schema (otherwise nonconforming resident documents could match).
func (s *Store) semanticEmpty(p *engine.Plan) (string, bool) {
	if p.Unsatisfiable() {
		return "unsat", true
	}
	if p.SchemaUnsatisfiable() && s.opts.Schema != nil {
		return "schema_unsat", true
	}
	return "", false
}

// semanticPlan records the short-circuit on the trace (a "semantic"
// span carrying the verdict) and returns its query plan: access path
// "semantic", zero candidates, nothing probed.
func (s *Store) semanticPlan(verdict string, tr *trace.Trace) QueryPlan {
	sp := tr.Start(tr.Root(), "semantic")
	tr.AttrStr(sp, "verdict", verdict)
	tr.End(sp)
	return QueryPlan{
		Access:   AccessSemantic,
		Reason:   "semantic: provably empty (" + verdict + "); no documents probed or evaluated",
		DocCount: s.DocCount(),
	}
}

// prunedFor returns the plan's schema-pruned fact set when this store
// enforces the schema that proved it. A store without the schema must
// ignore the marks: its documents never passed conformance validation,
// so "universal over conforming documents" promises nothing here.
func (s *Store) prunedFor(p *engine.Plan) map[string]bool {
	if s.opts.Schema == nil {
		return nil
	}
	return p.SchemaPruned()
}

// runFind executes the whole find pipeline — plan, per-shard probe,
// validate, sorted merge — recording spans on tr (which may be nil),
// and returns the plan and counter inputs untouched. Find/FindTraced
// bump the counters; Explain runs this same code and does not.
func (s *Store) runFind(ctx context.Context, p *engine.Plan, tr *trace.Trace) ([]string, QueryPlan, execInfo, error) {
	if verdict, ok := s.semanticEmpty(p); ok {
		return nil, s.semanticPlan(verdict, tr), execInfo{}, nil
	}
	sp := tr.Start(tr.Root(), "plan")
	plan := s.planFacts(p.FindFacts(), s.prunedFor(p))
	annotatePlanSpan(tr, sp, &plan)
	tr.End(sp)
	ids, info, err := s.findFanout(ctx, p, plan.probeTerms, plan.Access == AccessIndex, tr)
	return ids, plan, info, err
}

// Find returns the IDs of all documents matching the plan's boolean
// semantics (engine.Validate), sorted. The cost-based planner decides
// per query between posting-list intersection and a full scan; results
// are identical either way — the plan's facts are necessary conditions
// of matching. Probing and evaluation fan out across shards on the
// bounded worker pool; the per-shard matches merge into one sorted ID
// list, so the result is deterministic whatever the interleaving. The
// returned indexed flag reports which access path answered the query.
func (s *Store) Find(p *engine.Plan) (ids []string, indexed bool, err error) {
	return s.FindTraced(nil, p, nil)
}

// FindTraced is Find recording the pipeline's spans on tr and
// honouring ctx. A nil tr is the production fast path: the recorder
// calls reduce to nil checks. A nil ctx disables cancellation (the
// allocation-free path); with a non-nil ctx, evaluation checkpoints
// cooperatively and the first ctx error aborts the fan-out, returning
// ctx.Err() with whatever trace spans were recorded so far.
func (s *Store) FindTraced(ctx context.Context, p *engine.Plan, tr *trace.Trace) (ids []string, indexed bool, err error) {
	ids, plan, info, err := s.runFind(ctx, p, tr)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		s.cancellations.Add(1)
	}
	if plan.Access == AccessSemantic {
		// A compile-time proof answered the query: nothing was probed,
		// scanned or evaluated, so none of the execution counters apply.
		s.semShortCircuits.Add(1)
		return ids, false, err
	}
	s.notePlan(&plan)
	indexed = plan.Access == AccessIndex
	if indexed {
		s.findIndexed.Add(1)
	} else {
		s.findScan.Add(1)
	}
	s.noteFanout(info.workers, info.steps)
	s.noteCandidates(false, indexed, info.candidates)
	return ids, indexed, err
}

// FindScan is Find with the planner and index disabled: the reference
// full scan the differential tests compare against. It fans out like
// Find — the scan's unit of parallelism is the shard.
func (s *Store) FindScan(p *engine.Plan) ([]string, error) {
	s.findScan.Add(1)
	ids, info, err := s.findFanout(nil, p, nil, false, nil)
	s.noteFanout(info.workers, info.steps)
	s.noteCandidates(false, false, info.candidates)
	return ids, err
}

// lowShardBatch handles the configuration where the shard count is
// below the worker budget (a 1-shard store on a many-core host, say):
// shard-level fan-out could not use the budget, so the candidates are
// collected serially — the cheap phase — and evaluated on the engine's
// per-document batch pool instead, capped at Options.QueryWorkers so
// the configured per-query parallelism bound holds on this path too.
// ok is false when the normal per-shard fan-out should run.
func (s *Store) lowShardBatch(terms []uint64, indexed bool, tr *trace.Trace) (pairs []docPair, info execInfo, ok bool, err error) {
	if s.opts.QueryWorkers <= len(s.shards) {
		return nil, execInfo{}, false, nil
	}
	steps := 0
	for i, sh := range s.shards {
		var st int
		if pairs, st, err = sh.collectCandidates(terms, indexed, pairs, tr, i); err != nil {
			return nil, execInfo{}, true, err
		}
		steps += st
	}
	info.workers = min(s.eng.Workers(), s.opts.QueryWorkers, max(len(pairs), 1))
	info.steps = uint64(steps)
	info.candidates = len(pairs)
	return pairs, info, true, nil
}

// findFanout runs the find pipeline — probe, snapshot, validate —
// per shard on the worker pool and merges the matches.
func (s *Store) findFanout(ctx context.Context, p *engine.Plan, terms []uint64, indexed bool, tr *trace.Trace) ([]string, execInfo, error) {
	if pairs, info, ok, err := s.lowShardBatch(terms, indexed, tr); ok {
		if err != nil {
			return nil, info, err
		}
		sp := tr.Start(tr.Root(), "eval")
		verdicts, err := s.eng.ValidateBatchBoundedCtx(ctx, p, candidateTrees(pairs), info.workers)
		if err != nil {
			return nil, info, err
		}
		ids := make([]string, 0, len(pairs))
		for i, match := range verdicts {
			if match {
				ids = append(ids, pairs[i].id)
			}
		}
		if sp != trace.None {
			tr.Attr(sp, "docs", int64(len(pairs)))
			tr.Attr(sp, "matches", int64(len(ids)))
			tr.End(sp)
		}
		msp := tr.Start(tr.Root(), "merge")
		sort.Strings(ids)
		tr.Attr(msp, "results", int64(len(ids)))
		tr.End(msp)
		return ids, info, nil
	}
	perShard := make([][]string, len(s.shards))
	var candidates, steps atomic.Int64
	workers, err := s.fanOut(ctx, func(i int) error {
		pairs, st, cerr := s.shards[i].collectCandidates(terms, indexed, nil, tr, i)
		if cerr != nil {
			return cerr
		}
		candidates.Add(int64(len(pairs)))
		steps.Add(int64(st))
		sp := trace.None
		if tr != nil {
			sp = tr.Start(tr.Root(), "eval")
			tr.Attr(sp, "shard", int64(i))
		}
		var ids []string
		for di, pair := range pairs {
			if ctx != nil && di&(batchCancelDocs-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			ok, verr := s.eng.ValidateCtx(ctx, p, pair.tree)
			if verr != nil {
				return verr
			}
			if ok {
				ids = append(ids, pair.id)
			}
		}
		if sp != trace.None {
			tr.Attr(sp, "docs", int64(len(pairs)))
			tr.Attr(sp, "matches", int64(len(ids)))
			tr.End(sp)
		}
		perShard[i] = ids
		return nil
	})
	info := execInfo{workers: workers, steps: uint64(steps.Load()), candidates: int(candidates.Load())}
	if err != nil {
		return nil, info, err
	}
	msp := tr.Start(tr.Root(), "merge")
	total := 0
	for _, ids := range perShard {
		total += len(ids)
	}
	out := make([]string, 0, total)
	for _, ids := range perShard {
		out = append(out, ids...)
	}
	sort.Strings(out)
	tr.Attr(msp, "results", int64(len(out)))
	tr.End(msp)
	return out, info, nil
}

// runSelect is runFind's node-selection counterpart.
func (s *Store) runSelect(ctx context.Context, p *engine.Plan, tr *trace.Trace) ([]Selection, QueryPlan, execInfo, error) {
	if verdict, ok := s.semanticEmpty(p); ok {
		return nil, s.semanticPlan(verdict, tr), execInfo{}, nil
	}
	sp := tr.Start(tr.Root(), "plan")
	plan := s.planFacts(p.SelectFacts(), s.prunedFor(p))
	annotatePlanSpan(tr, sp, &plan)
	tr.End(sp)
	sels, info, err := s.selectFanout(ctx, p, plan.probeTerms, plan.Access == AccessIndex, tr)
	return sels, plan, info, err
}

// Select runs the plan's node-selection semantics (engine.Eval) over
// the collection and returns, per document with at least one selected
// node, the selected node IDs in evaluation order. Results are sorted
// by document ID; like Find, evaluation fans out per shard and the
// merge is deterministic. The planner consults the plan's select
// facts, which exist only for root-anchored selection (JSONPath); all
// other plans scan. The returned indexed flag reports the chosen
// access path.
func (s *Store) Select(p *engine.Plan) (sels []Selection, indexed bool, err error) {
	return s.SelectTraced(nil, p, nil)
}

// SelectTraced is Select recording the pipeline's spans on tr and
// honouring ctx; nil tr is the untraced fast path, nil ctx disables
// cancellation (see FindTraced).
func (s *Store) SelectTraced(ctx context.Context, p *engine.Plan, tr *trace.Trace) (sels []Selection, indexed bool, err error) {
	sels, plan, info, err := s.runSelect(ctx, p, tr)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		s.cancellations.Add(1)
	}
	if plan.Access == AccessSemantic {
		s.semShortCircuits.Add(1)
		return sels, false, err
	}
	s.notePlan(&plan)
	indexed = plan.Access == AccessIndex
	if indexed {
		s.selectIndexed.Add(1)
	} else {
		s.selectScan.Add(1)
	}
	s.noteFanout(info.workers, info.steps)
	s.noteCandidates(true, indexed, info.candidates)
	return sels, indexed, err
}

// SelectScan is Select with the planner and index disabled.
func (s *Store) SelectScan(p *engine.Plan) ([]Selection, error) {
	s.selectScan.Add(1)
	sels, info, err := s.selectFanout(nil, p, nil, false, nil)
	s.noteFanout(info.workers, info.steps)
	s.noteCandidates(true, false, info.candidates)
	return sels, err
}

// selectFanout is findFanout's node-selection counterpart. Each worker
// evaluates through a reused node buffer (engine.EvalAppend), copying
// only the per-document selections that are actually returned.
func (s *Store) selectFanout(ctx context.Context, p *engine.Plan, terms []uint64, indexed bool, tr *trace.Trace) ([]Selection, execInfo, error) {
	if pairs, info, ok, err := s.lowShardBatch(terms, indexed, tr); ok {
		if err != nil {
			return nil, info, err
		}
		sp := tr.Start(tr.Root(), "eval")
		selections, err := s.eng.EvalBatchBoundedCtx(ctx, p, candidateTrees(pairs), info.workers)
		if err != nil {
			return nil, info, err
		}
		out := make([]Selection, 0, len(pairs))
		for i, nodes := range selections {
			if len(nodes) > 0 {
				out = append(out, Selection{ID: pairs[i].id, Tree: pairs[i].tree, Nodes: nodes})
			}
		}
		if sp != trace.None {
			tr.Attr(sp, "docs", int64(len(pairs)))
			tr.Attr(sp, "matches", int64(len(out)))
			tr.End(sp)
		}
		msp := tr.Start(tr.Root(), "merge")
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		tr.Attr(msp, "results", int64(len(out)))
		tr.End(msp)
		return out, info, nil
	}
	perShard := make([][]Selection, len(s.shards))
	var candidates, steps atomic.Int64
	workers, err := s.fanOut(ctx, func(i int) error {
		pairs, st, cerr := s.shards[i].collectCandidates(terms, indexed, nil, tr, i)
		if cerr != nil {
			return cerr
		}
		candidates.Add(int64(len(pairs)))
		steps.Add(int64(st))
		sp := trace.None
		if tr != nil {
			sp = tr.Start(tr.Root(), "eval")
			tr.Attr(sp, "shard", int64(i))
		}
		var (
			sels []Selection
			buf  []jsontree.NodeID
		)
		for di, pair := range pairs {
			if ctx != nil && di&(batchCancelDocs-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			var verr error
			buf, verr = s.eng.EvalAppendCtx(ctx, p, pair.tree, buf[:0])
			if verr != nil {
				return verr
			}
			if len(buf) > 0 {
				nodes := make([]jsontree.NodeID, len(buf))
				copy(nodes, buf)
				sels = append(sels, Selection{ID: pair.id, Tree: pair.tree, Nodes: nodes})
			}
		}
		if sp != trace.None {
			tr.Attr(sp, "docs", int64(len(pairs)))
			tr.Attr(sp, "matches", int64(len(sels)))
			tr.End(sp)
		}
		perShard[i] = sels
		return nil
	})
	info := execInfo{workers: workers, steps: uint64(steps.Load()), candidates: int(candidates.Load())}
	if err != nil {
		return nil, info, err
	}
	msp := tr.Start(tr.Root(), "merge")
	total := 0
	for _, sels := range perShard {
		total += len(sels)
	}
	out := make([]Selection, 0, total)
	for _, sels := range perShard {
		out = append(out, sels...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	tr.Attr(msp, "results", int64(len(out)))
	tr.End(msp)
	return out, info, nil
}

// findOver evaluates the plan's boolean semantics over an
// already-collected candidate snapshot — the serial tail the
// forced-access benchmarks use (the production path is findFanout).
func (s *Store) findOver(p *engine.Plan, pairs []docPair) ([]string, error) {
	verdicts, err := s.eng.ValidateBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(pairs))
	for i, ok := range verdicts {
		if ok {
			ids = append(ids, pairs[i].id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// selOver is findOver's node-selection counterpart.
func (s *Store) selOver(p *engine.Plan, pairs []docPair) ([]Selection, error) {
	selections, err := s.eng.EvalBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	out := make([]Selection, 0, len(pairs))
	for i, nodes := range selections {
		if len(nodes) > 0 {
			out = append(out, Selection{ID: pairs[i].id, Tree: pairs[i].tree, Nodes: nodes})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// candidateTrees projects a candidate snapshot onto the tree slice the
// engine's batch entry points take.
func candidateTrees(pairs []docPair) []*jsontree.Tree {
	trees := make([]*jsontree.Tree, len(pairs))
	for i, pair := range pairs {
		trees[i] = pair.tree
	}
	return trees
}

// notePlan records the planner's verdict in the query counters.
func (s *Store) notePlan(plan *QueryPlan) {
	if plan.Access == AccessScan && len(plan.Terms) > 0 {
		s.plannerScan.Add(1)
	}
	if skipped := plan.TermsSkipped(); skipped > 0 {
		s.termsSkipped.Add(uint64(skipped))
	}
	if plan.prunedTerms > 0 {
		s.termsPruned.Add(uint64(plan.prunedTerms))
	}
}

// noteCandidates records one query's candidate-set size: totals per
// access path, plus a per-query histogram for indexed queries (a
// scan's candidate count is just the collection size).
func (s *Store) noteCandidates(sel, indexed bool, n int) {
	if !indexed {
		s.scannedDocs.Add(uint64(n))
		return
	}
	s.candidateDocs.Add(uint64(n))
	if sel {
		s.selectCandidates.Observe(n)
	} else {
		s.findCandidates.Observe(n)
	}
}

// Explanation is the full story of one query against this store: the
// compile-time plan (lowered logical tree, physical operator program,
// index facts) and the run-time access decision with estimated versus
// actual cardinalities. Explain executes the query, so the actual
// numbers are measured, not modelled.
type Explanation struct {
	Plan engine.PlanExplain `json:"plan"`
	// Mode is "find" or "select".
	Mode string `json:"mode"`
	// Access is the chosen access path ("index" or "scan"), Reason the
	// planner's justification.
	Access string `json:"access"`
	Reason string `json:"reason"`
	// DocCount is the collection size at planning time.
	DocCount int `json:"doc_count"`
	// Terms are the index-supported facts with their statistics and
	// class histograms, ordered by ascending cardinality.
	Terms []TermPlan `json:"terms,omitempty"`
	// EstCandidates is the planner's upper bound on the candidate
	// count; ActualCandidates is what the access path produced. With no
	// concurrent writes, EstCandidates ≥ ActualCandidates always.
	EstCandidates    int `json:"est_candidates"`
	ActualCandidates int `json:"actual_candidates"`
	// ActualResults counts matching documents (find) or documents with
	// at least one selected node (select).
	ActualResults int `json:"actual_results"`
	// Trace is the span tree recorded while executing this explanation
	// — the same recorder and pipeline the slow-query log uses, so the
	// stage timings are measured on the production path, not modelled
	// by a parallel one.
	Trace []*trace.SpanOut `json:"trace"`
}

// Explain plans and executes the query in the given mode ("find" or
// "select") under an always-armed trace recorder, reporting the
// logical and physical trees, estimated and actual cardinalities, and
// the recorded per-stage span tree. It runs the real fan-out pipeline
// (runFind/runSelect — exactly what Find and Select execute) but does
// not disturb the store's query counters.
func (s *Store) Explain(ctx context.Context, p *engine.Plan, mode string) (Explanation, error) {
	switch mode {
	case "", "find":
		mode = "find"
	case "select":
	default:
		return Explanation{}, fmt.Errorf("store: explain: unknown mode %q", mode)
	}
	tr := trace.NewTrace("explain")
	tr.SetQuery(p.Language().String(), p.Source(), mode)
	var (
		plan    QueryPlan
		info    execInfo
		results int
	)
	if mode == "find" {
		ids, pl, inf, err := s.runFind(ctx, p, tr)
		if err != nil {
			return Explanation{}, err
		}
		plan, info, results = pl, inf, len(ids)
	} else {
		sels, pl, inf, err := s.runSelect(ctx, p, tr)
		if err != nil {
			return Explanation{}, err
		}
		plan, info, results = pl, inf, len(sels)
	}
	for i := range plan.Terms {
		plan.Terms[i].Classes = s.ClassHistogram(plan.Terms[i].steps).Map()
	}
	return Explanation{
		Plan:             p.Explain(),
		Mode:             mode,
		Access:           plan.Access.String(),
		Reason:           plan.Reason,
		DocCount:         plan.DocCount,
		Terms:            plan.Terms,
		EstCandidates:    plan.EstCandidates,
		ActualCandidates: info.candidates,
		ActualResults:    results,
		Trace:            tr.Spans(),
	}, nil
}
