package store

import (
	"fmt"
	"sort"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// Selection is the node-selection result for one document.
type Selection struct {
	ID string
	// Tree is the snapshot the node IDs refer to. Callers resolving
	// Nodes must use it rather than re-fetching by ID — a concurrent
	// replacement of the document would make the IDs meaningless.
	Tree  *jsontree.Tree
	Nodes []jsontree.NodeID
}

// docPair is a snapshot of one stored document.
type docPair struct {
	id   string
	tree *jsontree.Tree
}

// candidates snapshots the documents a query must evaluate: the
// index-probe intersection when terms are given, the whole shard
// otherwise. Trees are immutable, so evaluation happens after the read
// lock is released; each query sees a consistent per-shard snapshot.
func (s *Store) candidates(terms []uint64, indexed bool) []docPair {
	var out []docPair
	for _, sh := range s.shards {
		sh.mu.RLock()
		if indexed {
			for _, id := range sh.ix.probe(terms) {
				out = append(out, docPair{id: id, tree: sh.docs[id]})
			}
		} else {
			for id, t := range sh.docs {
				out = append(out, docPair{id: id, tree: t})
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Find returns the IDs of all documents matching the plan's boolean
// semantics (engine.Validate), sorted. The cost-based planner decides
// per query between posting-list intersection and a full scan; results
// are identical either way — the plan's facts are necessary conditions
// of matching. The returned indexed flag reports which access path
// answered the query.
func (s *Store) Find(p *engine.Plan) (ids []string, indexed bool, err error) {
	plan := s.planFacts(p.FindFacts())
	s.notePlan(&plan)
	indexed = plan.Access == AccessIndex
	if indexed {
		s.findIndexed.Add(1)
	} else {
		s.findScan.Add(1)
	}
	pairs := s.candidates(plan.probeTerms, indexed)
	s.noteCandidates(false, indexed, len(pairs))
	ids, err = s.findOver(p, pairs)
	return ids, indexed, err
}

// FindScan is Find with the planner and index disabled: the reference
// full scan the differential tests compare against.
func (s *Store) FindScan(p *engine.Plan) ([]string, error) {
	s.findScan.Add(1)
	pairs := s.candidates(nil, false)
	s.noteCandidates(false, false, len(pairs))
	return s.findOver(p, pairs)
}

func (s *Store) findOver(p *engine.Plan, pairs []docPair) ([]string, error) {
	verdicts, err := s.eng.ValidateBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(pairs))
	for i, ok := range verdicts {
		if ok {
			ids = append(ids, pairs[i].id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Select runs the plan's node-selection semantics (engine.Eval) over
// the collection and returns, per document with at least one selected
// node, the selected node IDs in evaluation order. Results are sorted
// by document ID. The planner consults the plan's select facts, which
// exist only for root-anchored selection (JSONPath); all other plans
// scan. The returned indexed flag reports the chosen access path.
func (s *Store) Select(p *engine.Plan) (sels []Selection, indexed bool, err error) {
	plan := s.planFacts(p.SelectFacts())
	s.notePlan(&plan)
	indexed = plan.Access == AccessIndex
	if indexed {
		s.selectIndexed.Add(1)
	} else {
		s.selectScan.Add(1)
	}
	pairs := s.candidates(plan.probeTerms, indexed)
	s.noteCandidates(true, indexed, len(pairs))
	sels, err = s.selOver(p, pairs)
	return sels, indexed, err
}

// SelectScan is Select with the planner and index disabled.
func (s *Store) SelectScan(p *engine.Plan) ([]Selection, error) {
	s.selectScan.Add(1)
	pairs := s.candidates(nil, false)
	s.noteCandidates(true, false, len(pairs))
	return s.selOver(p, pairs)
}

func (s *Store) selOver(p *engine.Plan, pairs []docPair) ([]Selection, error) {
	selections, err := s.eng.EvalBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	out := make([]Selection, 0, len(pairs))
	for i, nodes := range selections {
		if len(nodes) > 0 {
			out = append(out, Selection{ID: pairs[i].id, Tree: pairs[i].tree, Nodes: nodes})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// candidateTrees projects a candidate snapshot onto the tree slice the
// engine's batch entry points take — evaluation runs on the engine's
// worker pool, so scans and large candidate sets parallelize across
// cores.
func candidateTrees(pairs []docPair) []*jsontree.Tree {
	trees := make([]*jsontree.Tree, len(pairs))
	for i, pair := range pairs {
		trees[i] = pair.tree
	}
	return trees
}

// notePlan records the planner's verdict in the query counters.
func (s *Store) notePlan(plan *QueryPlan) {
	if plan.Access == AccessScan && len(plan.Terms) > 0 {
		s.plannerScan.Add(1)
	}
	if skipped := plan.TermsSkipped(); skipped > 0 {
		s.termsSkipped.Add(uint64(skipped))
	}
}

// noteCandidates records one query's candidate-set size: totals per
// access path, plus a per-query histogram for indexed queries (a
// scan's candidate count is just the collection size).
func (s *Store) noteCandidates(sel, indexed bool, n int) {
	if !indexed {
		s.scannedDocs.Add(uint64(n))
		return
	}
	s.candidateDocs.Add(uint64(n))
	if sel {
		s.selectCandidates.observe(n)
	} else {
		s.findCandidates.observe(n)
	}
}

// Explanation is the full story of one query against this store: the
// compile-time plan (lowered logical tree, physical operator program,
// index facts) and the run-time access decision with estimated versus
// actual cardinalities. Explain executes the query, so the actual
// numbers are measured, not modelled.
type Explanation struct {
	Plan engine.PlanExplain `json:"plan"`
	// Mode is "find" or "select".
	Mode string `json:"mode"`
	// Access is the chosen access path ("index" or "scan"), Reason the
	// planner's justification.
	Access string `json:"access"`
	Reason string `json:"reason"`
	// DocCount is the collection size at planning time.
	DocCount int `json:"doc_count"`
	// Terms are the index-supported facts with their statistics and
	// class histograms, ordered by ascending cardinality.
	Terms []TermPlan `json:"terms,omitempty"`
	// EstCandidates is the planner's upper bound on the candidate
	// count; ActualCandidates is what the access path produced. With no
	// concurrent writes, EstCandidates ≥ ActualCandidates always.
	EstCandidates    int `json:"est_candidates"`
	ActualCandidates int `json:"actual_candidates"`
	// ActualResults counts matching documents (find) or documents with
	// at least one selected node (select).
	ActualResults int `json:"actual_results"`
}

// Explain plans and executes the query in the given mode ("find" or
// "select"), reporting the logical and physical trees alongside
// estimated and actual cardinalities. It runs the real access path but
// does not disturb the store's query counters.
func (s *Store) Explain(p *engine.Plan, mode string) (Explanation, error) {
	var facts []jsontree.PathFact
	switch mode {
	case "", "find":
		mode = "find"
		facts = p.FindFacts()
	case "select":
		facts = p.SelectFacts()
	default:
		return Explanation{}, fmt.Errorf("store: explain: unknown mode %q", mode)
	}
	plan := s.planFacts(facts)
	for i := range plan.Terms {
		plan.Terms[i].Classes = s.ClassHistogram(plan.Terms[i].steps).Map()
	}
	indexed := plan.Access == AccessIndex
	pairs := s.candidates(plan.probeTerms, indexed)
	ex := Explanation{
		Plan:             p.Explain(),
		Mode:             mode,
		Access:           plan.Access.String(),
		Reason:           plan.Reason,
		DocCount:         plan.DocCount,
		Terms:            plan.Terms,
		EstCandidates:    plan.EstCandidates,
		ActualCandidates: len(pairs),
	}
	if mode == "find" {
		ids, err := s.findOver(p, pairs)
		if err != nil {
			return Explanation{}, err
		}
		ex.ActualResults = len(ids)
	} else {
		sels, err := s.selOver(p, pairs)
		if err != nil {
			return Explanation{}, err
		}
		ex.ActualResults = len(sels)
	}
	return ex, nil
}
