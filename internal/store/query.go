package store

import (
	"sort"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// Selection is the node-selection result for one document.
type Selection struct {
	ID string
	// Tree is the snapshot the node IDs refer to. Callers resolving
	// Nodes must use it rather than re-fetching by ID — a concurrent
	// replacement of the document would make the IDs meaningless.
	Tree  *jsontree.Tree
	Nodes []jsontree.NodeID
}

// docPair is a snapshot of one stored document.
type docPair struct {
	id   string
	tree *jsontree.Tree
}

// queryTerms converts a plan's facts into index terms (factTerm
// degrades over-deep facts to in-bound prefix presence). supported is
// false only when no fact yields a term, in which case the caller must
// scan.
func (s *Store) queryTerms(facts []jsontree.PathFact) (terms []uint64, supported bool) {
	// Planners may emit the same fact twice (e.g. $gt's IsInt∧Min both
	// demand a number); probing a posting list twice is pure waste.
	seen := make(map[uint64]struct{}, len(facts))
	for _, f := range facts {
		term, ok := factTerm(f, s.opts.MaxIndexDepth)
		if !ok {
			continue
		}
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		terms = append(terms, term)
	}
	return terms, len(terms) > 0
}

// candidates snapshots the documents a query must evaluate: the
// index-probe intersection when terms are given, the whole shard
// otherwise. Trees are immutable, so evaluation happens after the read
// lock is released; each query sees a consistent per-shard snapshot.
func (s *Store) candidates(terms []uint64, indexed bool) []docPair {
	var out []docPair
	for _, sh := range s.shards {
		sh.mu.RLock()
		if indexed {
			for _, id := range sh.ix.probe(terms) {
				out = append(out, docPair{id: id, tree: sh.docs[id]})
			}
		} else {
			for id, t := range sh.docs {
				out = append(out, docPair{id: id, tree: t})
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Find returns the IDs of all documents matching the plan's boolean
// semantics (engine.Validate), sorted. When the plan's find facts are
// index-supported, candidates come from posting-list intersection;
// otherwise every document is evaluated. Results are identical either
// way — the facts are necessary conditions of matching. The returned
// indexed flag reports which path answered the query.
func (s *Store) Find(p *engine.Plan) (ids []string, indexed bool, err error) {
	terms, indexed := s.queryTerms(p.FindFacts())
	if indexed {
		s.findIndexed.Add(1)
	} else {
		s.findScan.Add(1)
	}
	ids, err = s.find(p, terms, indexed)
	return ids, indexed, err
}

// FindScan is Find with the index disabled: the reference full scan
// the differential tests compare against.
func (s *Store) FindScan(p *engine.Plan) ([]string, error) {
	s.findScan.Add(1)
	return s.find(p, nil, false)
}

func (s *Store) find(p *engine.Plan, terms []uint64, indexed bool) ([]string, error) {
	pairs := s.candidates(terms, indexed)
	s.noteEvaluated(len(pairs), indexed)
	verdicts, err := s.eng.ValidateBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(pairs))
	for i, ok := range verdicts {
		if ok {
			ids = append(ids, pairs[i].id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Select runs the plan's node-selection semantics (engine.Eval) over
// the collection and returns, per document with at least one selected
// node, the selected node IDs in evaluation order. Results are sorted
// by document ID. Indexing applies when the plan's select facts are
// supported (currently JSONPath plans, whose selection is anchored at
// the root); all other plans scan. The returned indexed flag reports
// which path answered the query.
func (s *Store) Select(p *engine.Plan) (sels []Selection, indexed bool, err error) {
	terms, indexed := s.queryTerms(p.SelectFacts())
	if indexed {
		s.selectIndexed.Add(1)
	} else {
		s.selectScan.Add(1)
	}
	sels, err = s.sel(p, terms, indexed)
	return sels, indexed, err
}

// SelectScan is Select with the index disabled.
func (s *Store) SelectScan(p *engine.Plan) ([]Selection, error) {
	s.selectScan.Add(1)
	return s.sel(p, nil, false)
}

func (s *Store) sel(p *engine.Plan, terms []uint64, indexed bool) ([]Selection, error) {
	pairs := s.candidates(terms, indexed)
	s.noteEvaluated(len(pairs), indexed)
	selections, err := s.eng.EvalBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	out := make([]Selection, 0, len(pairs))
	for i, nodes := range selections {
		if len(nodes) > 0 {
			out = append(out, Selection{ID: pairs[i].id, Tree: pairs[i].tree, Nodes: nodes})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// candidateTrees projects a candidate snapshot onto the tree slice the
// engine's batch entry points take — evaluation runs on the engine's
// worker pool, so scans and large candidate sets parallelize across
// cores.
func candidateTrees(pairs []docPair) []*jsontree.Tree {
	trees := make([]*jsontree.Tree, len(pairs))
	for i, pair := range pairs {
		trees[i] = pair.tree
	}
	return trees
}

func (s *Store) noteEvaluated(n int, indexed bool) {
	if indexed {
		s.candidateDocs.Add(uint64(n))
	} else {
		s.scannedDocs.Add(uint64(n))
	}
}
