package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// Selection is the node-selection result for one document.
type Selection struct {
	ID string
	// Tree is the snapshot the node IDs refer to. Callers resolving
	// Nodes must use it rather than re-fetching by ID — a concurrent
	// replacement of the document would make the IDs meaningless.
	Tree  *jsontree.Tree
	Nodes []jsontree.NodeID
}

// docPair is a snapshot of one stored document.
type docPair struct {
	id   string
	tree *jsontree.Tree
}

// collectCandidates appends the shard's candidates for one query to
// dst under the shard's read lock: the live documents of the posting
// intersection when indexed, the whole shard otherwise. Trees are
// immutable, so evaluation happens after the lock is released; each
// query sees a consistent per-shard snapshot. steps reports the
// intersection's merge work.
func (sh *shard) collectCandidates(terms []uint64, indexed bool, dst []docPair) (_ []docPair, steps int) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !indexed {
		sh.ix.each(func(id string, t *jsontree.Tree) {
			dst = append(dst, docPair{id: id, tree: t})
		})
		return dst, 0
	}
	scr := acquireProbeScratch()
	ords, steps := sh.ix.probe(terms, scr)
	for _, ord := range ords {
		// The probe result may carry tombstoned ordinals; the dictionary
		// filters them here, while the lock still pins it.
		if id := sh.ix.ids[ord]; id != "" {
			dst = append(dst, docPair{id: id, tree: sh.ix.trees[ord]})
		}
	}
	releaseProbeScratch(scr)
	return dst, steps
}

// candidates snapshots, serially, the documents a query must evaluate
// across all shards. The fan-out paths below collect per shard on the
// worker pool instead; this entry point remains for Explain and the
// differential tests' reference scans.
func (s *Store) candidates(terms []uint64, indexed bool) []docPair {
	var out []docPair
	for _, sh := range s.shards {
		out, _ = sh.collectCandidates(terms, indexed, out)
	}
	return out
}

// fanOut runs task(0 … shards-1) over at most Options.QueryWorkers
// goroutines (work-stealing by atomic counter, like the engine's batch
// pool) and returns how many workers ran plus the first task error.
// With one worker — or one shard — the tasks run inline on the calling
// goroutine: no goroutine is spawned for a query that cannot
// parallelize.
func (s *Store) fanOut(task func(shardIdx int) error) (int, error) {
	n := len(s.shards)
	workers := s.opts.QueryWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return 1, err
			}
		}
		return 1, nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := task(i); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return workers, *ep
	}
	return workers, nil
}

// noteFanout records one query's parallelism and intersection work.
func (s *Store) noteFanout(workers int, steps uint64) {
	if workers > 1 {
		s.parallelQueries.Add(1)
	} else {
		s.serialQueries.Add(1)
	}
	s.fanoutWorkers.Observe(workers)
	if steps > 0 {
		s.intersectionSteps.Add(steps)
	}
}

// Find returns the IDs of all documents matching the plan's boolean
// semantics (engine.Validate), sorted. The cost-based planner decides
// per query between posting-list intersection and a full scan; results
// are identical either way — the plan's facts are necessary conditions
// of matching. Probing and evaluation fan out across shards on the
// bounded worker pool; the per-shard matches merge into one sorted ID
// list, so the result is deterministic whatever the interleaving. The
// returned indexed flag reports which access path answered the query.
func (s *Store) Find(p *engine.Plan) (ids []string, indexed bool, err error) {
	plan := s.planFacts(p.FindFacts())
	s.notePlan(&plan)
	indexed = plan.Access == AccessIndex
	if indexed {
		s.findIndexed.Add(1)
	} else {
		s.findScan.Add(1)
	}
	ids, candidates, err := s.findFanout(p, plan.probeTerms, indexed)
	s.noteCandidates(false, indexed, candidates)
	return ids, indexed, err
}

// FindScan is Find with the planner and index disabled: the reference
// full scan the differential tests compare against. It fans out like
// Find — the scan's unit of parallelism is the shard.
func (s *Store) FindScan(p *engine.Plan) ([]string, error) {
	s.findScan.Add(1)
	ids, candidates, err := s.findFanout(p, nil, false)
	s.noteCandidates(false, false, candidates)
	return ids, err
}

// lowShardBatch handles the configuration where the shard count is
// below the worker budget (a 1-shard store on a many-core host, say):
// shard-level fan-out could not use the budget, so the candidates are
// collected serially — the cheap phase — and evaluated on the engine's
// per-document batch pool instead, capped at Options.QueryWorkers so
// the configured per-query parallelism bound holds on this path too.
// ok is false when the normal per-shard fan-out should run.
func (s *Store) lowShardBatch(terms []uint64, indexed bool) (pairs []docPair, workers int, ok bool) {
	if s.opts.QueryWorkers <= len(s.shards) {
		return nil, 0, false
	}
	steps := 0
	for _, sh := range s.shards {
		var st int
		pairs, st = sh.collectCandidates(terms, indexed, pairs)
		steps += st
	}
	workers = min(s.eng.Workers(), s.opts.QueryWorkers, max(len(pairs), 1))
	s.noteFanout(workers, uint64(steps))
	return pairs, workers, true
}

// findFanout runs the find pipeline — probe, snapshot, validate —
// per shard on the worker pool and merges the matches.
func (s *Store) findFanout(p *engine.Plan, terms []uint64, indexed bool) ([]string, int, error) {
	if pairs, workers, ok := s.lowShardBatch(terms, indexed); ok {
		verdicts, err := s.eng.ValidateBatchBounded(p, candidateTrees(pairs), workers)
		if err != nil {
			return nil, len(pairs), err
		}
		ids := make([]string, 0, len(pairs))
		for i, match := range verdicts {
			if match {
				ids = append(ids, pairs[i].id)
			}
		}
		sort.Strings(ids)
		return ids, len(pairs), nil
	}
	perShard := make([][]string, len(s.shards))
	var candidates, steps atomic.Int64
	workers, err := s.fanOut(func(i int) error {
		pairs, st := s.shards[i].collectCandidates(terms, indexed, nil)
		candidates.Add(int64(len(pairs)))
		steps.Add(int64(st))
		var ids []string
		for _, pair := range pairs {
			ok, verr := s.eng.Validate(p, pair.tree)
			if verr != nil {
				return verr
			}
			if ok {
				ids = append(ids, pair.id)
			}
		}
		perShard[i] = ids
		return nil
	})
	s.noteFanout(workers, uint64(steps.Load()))
	if err != nil {
		return nil, int(candidates.Load()), err
	}
	total := 0
	for _, ids := range perShard {
		total += len(ids)
	}
	out := make([]string, 0, total)
	for _, ids := range perShard {
		out = append(out, ids...)
	}
	sort.Strings(out)
	return out, int(candidates.Load()), nil
}

// Select runs the plan's node-selection semantics (engine.Eval) over
// the collection and returns, per document with at least one selected
// node, the selected node IDs in evaluation order. Results are sorted
// by document ID; like Find, evaluation fans out per shard and the
// merge is deterministic. The planner consults the plan's select
// facts, which exist only for root-anchored selection (JSONPath); all
// other plans scan. The returned indexed flag reports the chosen
// access path.
func (s *Store) Select(p *engine.Plan) (sels []Selection, indexed bool, err error) {
	plan := s.planFacts(p.SelectFacts())
	s.notePlan(&plan)
	indexed = plan.Access == AccessIndex
	if indexed {
		s.selectIndexed.Add(1)
	} else {
		s.selectScan.Add(1)
	}
	sels, candidates, err := s.selectFanout(p, plan.probeTerms, indexed)
	s.noteCandidates(true, indexed, candidates)
	return sels, indexed, err
}

// SelectScan is Select with the planner and index disabled.
func (s *Store) SelectScan(p *engine.Plan) ([]Selection, error) {
	s.selectScan.Add(1)
	sels, candidates, err := s.selectFanout(p, nil, false)
	s.noteCandidates(true, false, candidates)
	return sels, err
}

// selectFanout is findFanout's node-selection counterpart. Each worker
// evaluates through a reused node buffer (engine.EvalAppend), copying
// only the per-document selections that are actually returned.
func (s *Store) selectFanout(p *engine.Plan, terms []uint64, indexed bool) ([]Selection, int, error) {
	if pairs, workers, ok := s.lowShardBatch(terms, indexed); ok {
		selections, err := s.eng.EvalBatchBounded(p, candidateTrees(pairs), workers)
		if err != nil {
			return nil, len(pairs), err
		}
		out := make([]Selection, 0, len(pairs))
		for i, nodes := range selections {
			if len(nodes) > 0 {
				out = append(out, Selection{ID: pairs[i].id, Tree: pairs[i].tree, Nodes: nodes})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out, len(pairs), nil
	}
	perShard := make([][]Selection, len(s.shards))
	var candidates, steps atomic.Int64
	workers, err := s.fanOut(func(i int) error {
		pairs, st := s.shards[i].collectCandidates(terms, indexed, nil)
		candidates.Add(int64(len(pairs)))
		steps.Add(int64(st))
		var (
			sels []Selection
			buf  []jsontree.NodeID
		)
		for _, pair := range pairs {
			var verr error
			buf, verr = s.eng.EvalAppend(p, pair.tree, buf[:0])
			if verr != nil {
				return verr
			}
			if len(buf) > 0 {
				nodes := make([]jsontree.NodeID, len(buf))
				copy(nodes, buf)
				sels = append(sels, Selection{ID: pair.id, Tree: pair.tree, Nodes: nodes})
			}
		}
		perShard[i] = sels
		return nil
	})
	s.noteFanout(workers, uint64(steps.Load()))
	if err != nil {
		return nil, int(candidates.Load()), err
	}
	total := 0
	for _, sels := range perShard {
		total += len(sels)
	}
	out := make([]Selection, 0, total)
	for _, sels := range perShard {
		out = append(out, sels...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, int(candidates.Load()), nil
}

// findOver evaluates the plan's boolean semantics over an
// already-collected candidate snapshot — the serial tail Explain and
// the forced-access benchmarks use (the production path is
// findFanout).
func (s *Store) findOver(p *engine.Plan, pairs []docPair) ([]string, error) {
	verdicts, err := s.eng.ValidateBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(pairs))
	for i, ok := range verdicts {
		if ok {
			ids = append(ids, pairs[i].id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// selOver is findOver's node-selection counterpart.
func (s *Store) selOver(p *engine.Plan, pairs []docPair) ([]Selection, error) {
	selections, err := s.eng.EvalBatch(p, candidateTrees(pairs))
	if err != nil {
		return nil, err
	}
	out := make([]Selection, 0, len(pairs))
	for i, nodes := range selections {
		if len(nodes) > 0 {
			out = append(out, Selection{ID: pairs[i].id, Tree: pairs[i].tree, Nodes: nodes})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// candidateTrees projects a candidate snapshot onto the tree slice the
// engine's batch entry points take.
func candidateTrees(pairs []docPair) []*jsontree.Tree {
	trees := make([]*jsontree.Tree, len(pairs))
	for i, pair := range pairs {
		trees[i] = pair.tree
	}
	return trees
}

// notePlan records the planner's verdict in the query counters.
func (s *Store) notePlan(plan *QueryPlan) {
	if plan.Access == AccessScan && len(plan.Terms) > 0 {
		s.plannerScan.Add(1)
	}
	if skipped := plan.TermsSkipped(); skipped > 0 {
		s.termsSkipped.Add(uint64(skipped))
	}
}

// noteCandidates records one query's candidate-set size: totals per
// access path, plus a per-query histogram for indexed queries (a
// scan's candidate count is just the collection size).
func (s *Store) noteCandidates(sel, indexed bool, n int) {
	if !indexed {
		s.scannedDocs.Add(uint64(n))
		return
	}
	s.candidateDocs.Add(uint64(n))
	if sel {
		s.selectCandidates.Observe(n)
	} else {
		s.findCandidates.Observe(n)
	}
}

// Explanation is the full story of one query against this store: the
// compile-time plan (lowered logical tree, physical operator program,
// index facts) and the run-time access decision with estimated versus
// actual cardinalities. Explain executes the query, so the actual
// numbers are measured, not modelled.
type Explanation struct {
	Plan engine.PlanExplain `json:"plan"`
	// Mode is "find" or "select".
	Mode string `json:"mode"`
	// Access is the chosen access path ("index" or "scan"), Reason the
	// planner's justification.
	Access string `json:"access"`
	Reason string `json:"reason"`
	// DocCount is the collection size at planning time.
	DocCount int `json:"doc_count"`
	// Terms are the index-supported facts with their statistics and
	// class histograms, ordered by ascending cardinality.
	Terms []TermPlan `json:"terms,omitempty"`
	// EstCandidates is the planner's upper bound on the candidate
	// count; ActualCandidates is what the access path produced. With no
	// concurrent writes, EstCandidates ≥ ActualCandidates always.
	EstCandidates    int `json:"est_candidates"`
	ActualCandidates int `json:"actual_candidates"`
	// ActualResults counts matching documents (find) or documents with
	// at least one selected node (select).
	ActualResults int `json:"actual_results"`
}

// Explain plans and executes the query in the given mode ("find" or
// "select"), reporting the logical and physical trees alongside
// estimated and actual cardinalities. It runs the real access path but
// does not disturb the store's query counters.
func (s *Store) Explain(p *engine.Plan, mode string) (Explanation, error) {
	var facts []jsontree.PathFact
	switch mode {
	case "", "find":
		mode = "find"
		facts = p.FindFacts()
	case "select":
		facts = p.SelectFacts()
	default:
		return Explanation{}, fmt.Errorf("store: explain: unknown mode %q", mode)
	}
	plan := s.planFacts(facts)
	for i := range plan.Terms {
		plan.Terms[i].Classes = s.ClassHistogram(plan.Terms[i].steps).Map()
	}
	indexed := plan.Access == AccessIndex
	pairs := s.candidates(plan.probeTerms, indexed)
	ex := Explanation{
		Plan:             p.Explain(),
		Mode:             mode,
		Access:           plan.Access.String(),
		Reason:           plan.Reason,
		DocCount:         plan.DocCount,
		Terms:            plan.Terms,
		EstCandidates:    plan.EstCandidates,
		ActualCandidates: len(pairs),
	}
	if mode == "find" {
		ids, err := s.findOver(p, pairs)
		if err != nil {
			return Explanation{}, err
		}
		ex.ActualResults = len(ids)
	} else {
		sels, err := s.selOver(p, pairs)
		if err != nil {
			return Explanation{}, err
		}
		ex.ActualResults = len(sels)
	}
	return ex, nil
}
