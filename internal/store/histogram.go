package store

import "jsonlogic/internal/metrics"

// HistogramBucket is one non-empty bucket of a per-query histogram in
// Stats, labelled with its value range. It is the metrics package's
// snapshot shape: the histogram implementation moved to
// internal/metrics so the store, the HTTP middleware and the /metrics
// exposition share one power-of-two histogram; the alias keeps the
// store's Stats API unchanged.
type HistogramBucket = metrics.Bucket

// MetricsHistograms exposes the store's live per-query histograms for
// scraping — the same counters Stats snapshots, but as histogram
// handles the Prometheus exposition can render with cumulative
// buckets and sums.
func (s *Store) MetricsHistograms() (findCandidates, selectCandidates, fanoutWorkers *metrics.Histogram) {
	return &s.findCandidates, &s.selectCandidates, &s.fanoutWorkers
}
