package store

import (
	"fmt"
	"sync/atomic"
)

// histogram counts per-query candidate-set sizes in power-of-two
// buckets: 0, 1, 2–3, 4–7, …, with one overflow bucket. It replaces
// the old single running counter so /stats can show the distribution
// of how hard the index prunes, not just an average.
type histogram struct {
	buckets [histogramBuckets]atomic.Uint64
}

// histogramBuckets: bucket 0 holds exact zeros, bucket i ≥ 1 holds
// [2^(i-1), 2^i); the last bucket absorbs everything ≥ 2^20.
const histogramBuckets = 22

func (h *histogram) observe(n int) {
	h.buckets[histogramBucket(n)].Add(1)
}

func histogramBucket(n int) int {
	if n <= 0 {
		return 0
	}
	b := 1
	for n > 1 && b < histogramBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// HistogramBucket is one non-empty bucket of a candidates-per-query
// histogram, labelled with its value range.
type HistogramBucket struct {
	Range string `json:"range"`
	Count uint64 `json:"count"`
}

// snapshot renders the non-empty buckets in ascending range order.
func (h *histogram) snapshot() []HistogramBucket {
	var out []HistogramBucket
	for i := 0; i < histogramBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		out = append(out, HistogramBucket{Range: bucketLabel(i), Count: c})
	}
	return out
}

func bucketLabel(i int) string {
	switch {
	case i == 0:
		return "0"
	case i == 1:
		return "1"
	case i == histogramBuckets-1:
		return fmt.Sprintf("%d+", 1<<(histogramBuckets-2))
	default:
		return fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
	}
}
