package store

// chaos_test.go: fault-injected durability tests. Each test wires a
// FaultFS under a durable store, makes the disk fail in a specific
// way (ENOSPC on WAL writes, EIO on fsync, a torn half-write), and
// proves the degradation contract: the failed shard turns read-only
// (ErrDegraded on writes, reads oracle-correct throughout), nothing
// already acknowledged is ever lost — across heal or crash — and once
// the fault clears the background probe heals the shard and writes
// resume. `make chaos` runs exactly this suite plus the httpapi
// robustness tests.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"jsonlogic/internal/jsontree"
)

// chaosOpts is the shared configuration: a FaultFS over the real
// disk, fsync on every commit (so every put exercises the write+sync
// path), background snapshots off unless the test wants them, and a
// fast heal probe so tests wait milliseconds, not seconds.
func chaosOpts(dir string, fs *FaultFS) Options {
	return Options{
		Shards:        2,
		DataDir:       dir,
		Fsync:         FsyncAlways,
		SnapshotEvery: -1,
		VFS:           fs,
		DegradedRetry: 5 * time.Millisecond,
	}
}

func chaosDoc(i int) *jsontree.Tree {
	t, err := jsontree.Parse(fmt.Sprintf(`{"n":%d,"tag":"doc-%d"}`, i, i))
	if err != nil {
		panic(err)
	}
	return t
}

// mustPutN stores docs c0..c<n-1> and returns the oracle map.
func mustPutN(t *testing.T, s *Store, n int) map[string]*jsontree.Tree {
	t.Helper()
	oracle := make(map[string]*jsontree.Tree, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%04d", i)
		doc := chaosDoc(i)
		if err := s.PutTree(id, doc); err != nil {
			t.Fatalf("put %s: %v", id, err)
		}
		oracle[id] = doc
	}
	return oracle
}

// checkOracle requires every oracle document to read back intact.
func checkOracle(t *testing.T, s *Store, oracle map[string]*jsontree.Tree) {
	t.Helper()
	for id, want := range oracle {
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("document %q unreadable", id)
		}
		if got.String() != want.String() {
			t.Fatalf("document %q corrupted:\ngot:  %s\nwant: %s", id, got, want)
		}
	}
}

// degradeAll writes to ids spread over every shard until each shard
// is degraded, recording which writes were applied in memory despite
// failing (the commit failed after the apply: readable now, durable
// after heal) versus refused outright with ErrDegraded. Returns the
// in-memory additions.
func degradeAll(t *testing.T, s *Store, wantErr error) map[string]*jsontree.Tree {
	t.Helper()
	applied := make(map[string]*jsontree.Tree)
	for i := 0; i < 4*len(s.shards); i++ {
		id := fmt.Sprintf("f%04d", i)
		doc := chaosDoc(1000 + i)
		err := s.PutTree(id, doc)
		if err == nil {
			t.Fatalf("put %s succeeded with the disk failing", id)
		}
		if errors.Is(err, ErrDegraded) {
			continue // gated before the apply: nothing stored
		}
		if wantErr != nil && !errors.Is(err, wantErr) {
			t.Fatalf("put %s: got %v, want injected %v", id, err, wantErr)
		}
		// The WAL force failed after the apply: the document is
		// readable (reads serve memory) and the heal snapshot will
		// make it durable.
		applied[id] = doc
	}
	d := s.Stats().Durability
	if !d.Degraded || d.DegradedShards != len(s.shards) {
		t.Fatalf("after failing writes on every shard: Degraded=%v DegradedShards=%d, want all %d",
			d.Degraded, d.DegradedShards, len(s.shards))
	}
	return applied
}

// waitHealed polls until no shard is degraded (the background probe's
// job once the fault is cleared).
func waitHealed(t *testing.T, s *Store) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		d := s.Stats().Durability
		if !d.Degraded {
			if d.WALHeals == 0 {
				t.Fatalf("healed without the probe recording a heal: %+v", d)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards still degraded after 5s: %+v", d)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosScenario runs the full degrade → read-only → heal → restart
// story for one injected fault shape.
func chaosScenario(t *testing.T, rule FaultRule, wantErr error) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s := openDurable(t, chaosOpts(dir, fs))
	oracle := mustPutN(t, s, 40)

	fs.Fail(rule)
	applied := degradeAll(t, s, wantErr)
	for id, doc := range applied {
		oracle[id] = doc
	}

	// Degraded is read-only, not down: every acknowledged (and
	// applied) document still reads back correctly, and new writes are
	// refused with the 503-mapped sentinel, not a disk error.
	checkOracle(t, s, oracle)
	if err := s.PutTree("gated", chaosDoc(0)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write to degraded shard: got %v, want ErrDegraded", err)
	}
	if _, err := s.Delete("c0000"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete on degraded shard: got %v, want ErrDegraded", err)
	}

	// Repair the disk; the probe heals (WAL reset + snapshot) with
	// exponential backoff and re-enables writes.
	fs.Clear()
	waitHealed(t, s)
	d := s.Stats().Durability
	if d.WALRetries == 0 {
		t.Fatalf("heal without recorded retries: %+v", d)
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("h%04d", i)
		doc := chaosDoc(2000 + i)
		if err := s.PutTree(id, doc); err != nil {
			t.Fatalf("put %s after heal: %v", id, err)
		}
		oracle[id] = doc
	}
	checkOracle(t, s, oracle)

	// A clean close and reopen (real filesystem) must recover exactly
	// the oracle: no acknowledged write lost, no corruption smuggled
	// in by the faulty window.
	if err := s.Close(); err != nil {
		t.Fatalf("close after heal: %v", err)
	}
	s2 := openDurable(t, Options{Shards: 2, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1})
	defer s2.Close()
	if s2.Len() != len(oracle) {
		t.Fatalf("recovered %d docs, want %d", s2.Len(), len(oracle))
	}
	checkOracle(t, s2, oracle)
}

func TestChaosWALWriteENOSPC(t *testing.T) {
	chaosScenario(t, FaultRule{Ops: OpWrite, Path: "wal-", Err: ErrNoSpace}, ErrNoSpace)
}

func TestChaosWALFsyncEIO(t *testing.T) {
	chaosScenario(t, FaultRule{Ops: OpSync, Path: "wal-", Err: ErrIO}, ErrIO)
}

func TestChaosWALShortWrite(t *testing.T) {
	// A torn half-write is the nastiest shape: bytes of the failed
	// record actually reach the file. The heal path truncates the torn
	// tail before rotating to a fresh generation, so the story must
	// end identically.
	chaosScenario(t, FaultRule{Ops: OpWrite, Path: "wal-", Err: ErrNoSpace, ShortWrite: true}, ErrNoSpace)
}

// TestChaosCrashWhileDegraded kills the process before any heal: the
// restart must recover exactly the acknowledged set — the torn or
// unflushed records of the failed writes must not surface as partial
// documents.
func TestChaosCrashWhileDegraded(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s := openDurable(t, chaosOpts(dir, fs))
	oracle := mustPutN(t, s, 40)

	fs.Fail(FaultRule{Ops: OpWrite, Path: "wal-", Err: ErrNoSpace, ShortWrite: true})
	degradeAll(t, s, ErrNoSpace) // in-memory only; a crash sheds these
	s.crashForTest()

	s2 := openDurable(t, Options{Shards: 2, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: -1})
	defer s2.Close()
	if s2.Len() != len(oracle) {
		t.Fatalf("recovered %d docs, want exactly the %d acknowledged", s2.Len(), len(oracle))
	}
	checkOracle(t, s2, oracle)
	if torn := s2.Stats().Durability.Recovery.TornTails; torn == 0 {
		t.Fatalf("short-written WAL tails were not truncated at recovery: %+v", s2.Stats().Durability.Recovery)
	}
}

// TestChaosSnapshotFailureRetries: a failing segment build neither
// degrades the store (the WAL is fine, writes stay durable) nor stays
// failed forever — the maintenance loop retries with backoff and
// succeeds once the fault clears.
func TestChaosSnapshotFailureRetries(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	opts := chaosOpts(dir, fs)
	opts.SnapshotEvery = 1 // every record tips the background snapshotter
	s := openDurable(t, opts)
	defer s.Close()

	fs.Fail(FaultRule{Ops: OpWrite, Path: ".tmp", Err: ErrNoSpace})
	oracle := mustPutN(t, s, 10)

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Durability.SnapshotErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background snapshotter never attempted (and failed) a build")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The failure is contained: not degraded, writes still accepted.
	d := s.Stats().Durability
	if d.Degraded {
		t.Fatalf("snapshot failure degraded the store: %+v", d)
	}
	if err := s.PutTree("post-fault", chaosDoc(7)); err != nil {
		t.Fatalf("put with snapshots failing: %v", err)
	}
	oracle["post-fault"] = chaosDoc(7)

	fs.Clear()
	base := s.Stats().Durability.Snapshots
	deadline = time.Now().Add(5 * time.Second)
	for s.Stats().Durability.Snapshots == base {
		if time.Now().After(deadline) {
			t.Fatalf("snapshotter never recovered after the fault cleared: %+v", s.Stats().Durability)
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkOracle(t, s, oracle)
}

// TestChaosBulkMidBatchDegraded: a WAL failure part-way through a
// bulk ingest aborts the batch with an ErrDegraded-wrapped error, and
// the result's Durable count tells the client exactly which applied
// prefix it does not need to re-upload — the healthy shards' buffered
// records are forced durable before the error is reported.
func TestChaosBulkMidBatchDegraded(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s := openDurable(t, chaosOpts(dir, fs))
	defer s.Close()

	// Clean batch first: everything inserted is durable.
	res, err := s.BulkNDJSON(strings.NewReader("{\"a\":1}\n{\"a\":2}\n"))
	if err != nil || res.Durable != len(res.IDs) || len(res.IDs) != 2 {
		t.Fatalf("clean bulk: %d ids, %d durable, err %v", len(res.IDs), res.Durable, err)
	}

	// Break exactly shard 0's WAL and trip it into degraded mode.
	fs.Fail(FaultRule{Ops: OpWrite | OpSync, Path: "shard-0000", Err: ErrNoSpace})
	var shard0ID string
	for i := 0; ; i++ {
		id := fmt.Sprintf("trip%d", i)
		if s.shardIndex(id) == 0 {
			shard0ID = id
			break
		}
	}
	if err := s.PutTree(shard0ID, chaosDoc(0)); err == nil {
		t.Fatal("put to broken shard succeeded")
	}

	// The batch aborts at the first auto-ID that hashes to shard 0;
	// the lines applied before it (on shard 1) are reported durable.
	var lines strings.Builder
	for i := 0; i < 32; i++ {
		fmt.Fprintf(&lines, "{\"b\":%d}\n", i)
	}
	res, err = s.BulkNDJSON(strings.NewReader(lines.String()))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("mid-batch bulk: got %v, want ErrDegraded", err)
	}
	if len(res.IDs) >= 32 {
		t.Fatalf("bulk reported %d inserted despite aborting", len(res.IDs))
	}
	if res.Durable != len(res.IDs) {
		t.Fatalf("durable %d != applied %d: the healthy shards' force must cover the whole applied prefix", res.Durable, len(res.IDs))
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("after %d durable", res.Durable)) {
		t.Fatalf("error does not report the durable count: %v", err)
	}
	for _, id := range res.IDs {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("durably-reported %q unreadable", id)
		}
	}
}

// TestChaosFaultOnce: a transient glitch (Once rule) degrades the
// shard sticky — one failed write is enough to distrust the log — and
// the very first heal attempt succeeds because the disk already
// recovered.
func TestChaosFaultOnce(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s := openDurable(t, chaosOpts(dir, fs))
	defer s.Close()
	oracle := mustPutN(t, s, 8)

	fs.Fail(FaultRule{Ops: OpWrite, Path: "wal-", Err: ErrIO, Once: true})
	err := s.PutTree("glitch", chaosDoc(99))
	if err == nil {
		t.Fatal("write during glitch succeeded")
	}
	if !errors.Is(err, ErrDegraded) {
		// The commit failed after the apply: readable, healed durable.
		oracle["glitch"] = chaosDoc(99)
	}
	waitHealed(t, s)
	if err := s.PutTree("after", chaosDoc(100)); err != nil {
		t.Fatalf("put after self-heal: %v", err)
	}
	oracle["after"] = chaosDoc(100)
	checkOracle(t, s, oracle)
	if n := fs.Injected(); n == 0 {
		t.Fatal("fault never fired")
	}
}
