package store

import (
	"sort"

	"jsonlogic/internal/jsontree"
)

// 64-bit FNV-1a, the same construction jsonval uses for value hashes.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// stepHash folds one navigation step into a path hash. Key bytes are
// valid UTF-8 and therefore never 0xFF, so the terminator keeps
// adjacent keys from aliasing ("ab"+"c" vs "a"+"bc"); even a collision
// would only add false candidates, never drop a true one.
func stepHash(h uint64, s jsontree.Step) uint64 {
	if s.IsKey {
		h = fnvByte(h, 'k')
		h = fnvString(h, s.Key)
		return fnvByte(h, 0xFF)
	}
	h = fnvByte(h, 'i')
	return fnvUint64(h, uint64(s.Index))
}

// pathHash hashes a whole step path from the root.
func pathHash(steps []jsontree.Step) uint64 {
	h := fnvOffset
	for _, s := range steps {
		h = stepHash(h, s)
	}
	return h
}

// Term constructors. A presence term is the bare path hash; class and
// value terms mix in a tag plus the kind or the subtree's structural
// hash (jsonval.Value.Hash, which jsontree precomputes per node).
func presenceTerm(path uint64) uint64               { return path }
func classTerm(path uint64, k jsontree.Kind) uint64 { return fnvByte(fnvByte(path, 'C'), byte(k)) }
func valueTerm(path uint64, valHash uint64) uint64  { return fnvUint64(fnvByte(path, 'V'), valHash) }

// effectiveFact returns the fact the index can actually answer: a
// fact deeper than the index bound degrades to the presence of its
// in-bound prefix — sound, because a node existing at the deep path
// implies every prefix path exists. The planner reports statistics
// against the effective fact, not the original.
func effectiveFact(f jsontree.PathFact, maxDepth int) jsontree.PathFact {
	if len(f.Steps) > maxDepth {
		return jsontree.PathFact{Steps: f.Steps[:maxDepth]}
	}
	return f
}

// factTerm converts one planner fact into its index term (degrading
// over-deep facts via effectiveFact, so the rule lives in one place).
// ok is false only for the trivial root-presence fact, which prunes
// nothing.
func factTerm(f jsontree.PathFact, maxDepth int) (term uint64, ok bool) {
	f = effectiveFact(f, maxDepth)
	p := pathHash(f.Steps)
	switch {
	case f.Value != nil:
		return valueTerm(p, f.Value.Hash()), true
	case f.HasClass:
		return classTerm(p, f.Class), true
	default:
		if len(f.Steps) == 0 {
			// Presence of the root is trivially true of every document;
			// planners do not emit it, but guard anyway.
			return 0, false
		}
		return presenceTerm(p), true
	}
}

// pathIndex is one shard's inverted index: term hash → posting list of
// document IDs. It is not internally synchronized; the owning shard's
// lock covers it.
type pathIndex struct {
	maxDepth int
	postings map[uint64]map[string]struct{}
	entries  int // total posting-list entries, for stats
}

func newPathIndex(maxDepth int) *pathIndex {
	return &pathIndex{maxDepth: maxDepth, postings: make(map[uint64]map[string]struct{})}
}

// docTerms enumerates the index terms of a document by walking the
// tree depth-first, folding each edge into the running path hash.
// Nodes deeper than maxDepth are not indexed (the query side refuses
// facts deeper than the bound, so no candidate is ever lost). The walk
// is deterministic, so add and remove see identical term sets.
func (ix *pathIndex) docTerms(t *jsontree.Tree) []uint64 {
	terms := make([]uint64, 0, 3*t.Len())
	var walk func(n jsontree.NodeID, h uint64, depth int)
	walk = func(n jsontree.NodeID, h uint64, depth int) {
		if depth > 0 {
			terms = append(terms, presenceTerm(h))
		}
		kind := t.Kind(n)
		terms = append(terms, classTerm(h, kind))
		switch kind {
		case jsontree.StringNode, jsontree.NumberNode:
			terms = append(terms, valueTerm(h, t.SubtreeHash(n)))
		default:
			if depth == ix.maxDepth {
				return
			}
			for _, c := range t.Children(n) {
				var s jsontree.Step
				if kind == jsontree.ObjectNode {
					s = jsontree.Key(t.EdgeKey(c))
				} else {
					s = jsontree.Index(t.EdgePos(c))
				}
				walk(c, stepHash(h, s), depth+1)
			}
		}
	}
	walk(t.Root(), fnvOffset, 0)
	return terms
}

// add indexes a document under the given ID.
func (ix *pathIndex) add(id string, t *jsontree.Tree) {
	for _, term := range ix.docTerms(t) {
		post := ix.postings[term]
		if post == nil {
			post = make(map[string]struct{})
			ix.postings[term] = post
		}
		if _, dup := post[id]; !dup {
			post[id] = struct{}{}
			ix.entries++
		}
	}
}

// remove un-indexes a document; t must be the exact tree that was
// added (the shard keeps it until removal, so this holds by
// construction).
func (ix *pathIndex) remove(id string, t *jsontree.Tree) {
	for _, term := range ix.docTerms(t) {
		post, ok := ix.postings[term]
		if !ok {
			continue
		}
		if _, present := post[id]; present {
			delete(post, id)
			ix.entries--
			if len(post) == 0 {
				delete(ix.postings, term)
			}
		}
	}
}

// probe intersects the posting lists of the given terms in ascending
// length order: the smallest list drives the iteration and membership
// is tested against the remaining lists smallest-first, so the probes
// most likely to fail run first and non-members are rejected cheaply.
// A missing term short-circuits to the empty set.
func (ix *pathIndex) probe(terms []uint64) []string {
	lists, ok := ix.sortedLists(terms)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(lists[0]))
	for id := range lists[0] {
		in := true
		for _, post := range lists[1:] {
			if _, ok := post[id]; !ok {
				in = false
				break
			}
		}
		if in {
			out = append(out, id)
		}
	}
	return out
}

// sortedLists resolves the terms' posting lists sorted by ascending
// length; ok is false when a term is absent (empty intersection) or no
// terms were given.
func (ix *pathIndex) sortedLists(terms []uint64) ([]map[string]struct{}, bool) {
	if len(terms) == 0 {
		return nil, false
	}
	lists := make([]map[string]struct{}, len(terms))
	for i, term := range terms {
		post, ok := ix.postings[term]
		if !ok {
			return nil, false
		}
		lists[i] = post
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	return lists, true
}

// probeUnordered is the pre-planner intersection: it iterates the
// smallest list but tests membership in declaration order. Retained as
// the baseline for the ordered-intersection ablation benchmark.
func (ix *pathIndex) probeUnordered(terms []uint64) []string {
	if len(terms) == 0 {
		return nil
	}
	lists := make([]map[string]struct{}, len(terms))
	smallest := 0
	for i, term := range terms {
		post, ok := ix.postings[term]
		if !ok {
			return nil
		}
		lists[i] = post
		if len(post) < len(lists[smallest]) {
			smallest = i
		}
	}
	out := make([]string, 0, len(lists[smallest]))
	for id := range lists[smallest] {
		in := true
		for i, post := range lists {
			if i == smallest {
				continue
			}
			if _, ok := post[id]; !ok {
				in = false
				break
			}
		}
		if in {
			out = append(out, id)
		}
	}
	return out
}
