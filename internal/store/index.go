package store

import (
	"slices"
	"sync"

	"jsonlogic/internal/jsontree"
)

// 64-bit FNV-1a, the same construction jsonval uses for value hashes.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// stepHash folds one navigation step into a path hash. Key bytes are
// valid UTF-8 and therefore never 0xFF, so the terminator keeps
// adjacent keys from aliasing ("ab"+"c" vs "a"+"bc"); even a collision
// would only add false candidates, never drop a true one.
func stepHash(h uint64, s jsontree.Step) uint64 {
	if s.IsKey {
		h = fnvByte(h, 'k')
		h = fnvString(h, s.Key)
		return fnvByte(h, 0xFF)
	}
	h = fnvByte(h, 'i')
	return fnvUint64(h, uint64(s.Index))
}

// pathHash hashes a whole step path from the root.
func pathHash(steps []jsontree.Step) uint64 {
	h := fnvOffset
	for _, s := range steps {
		h = stepHash(h, s)
	}
	return h
}

// Term constructors. A presence term is the bare path hash; class and
// value terms mix in a tag plus the kind or the subtree's structural
// hash (jsonval.Value.Hash, which jsontree precomputes per node).
func presenceTerm(path uint64) uint64               { return path }
func classTerm(path uint64, k jsontree.Kind) uint64 { return fnvByte(fnvByte(path, 'C'), byte(k)) }
func valueTerm(path uint64, valHash uint64) uint64  { return fnvUint64(fnvByte(path, 'V'), valHash) }

// effectiveFact returns the fact the index can actually answer: a
// fact deeper than the index bound degrades to the presence of its
// in-bound prefix — sound, because a node existing at the deep path
// implies every prefix path exists. The planner reports statistics
// against the effective fact, not the original.
func effectiveFact(f jsontree.PathFact, maxDepth int) jsontree.PathFact {
	if len(f.Steps) > maxDepth {
		return jsontree.PathFact{Steps: f.Steps[:maxDepth]}
	}
	return f
}

// factTerm converts one planner fact into its index term (degrading
// over-deep facts via effectiveFact, so the rule lives in one place).
// ok is false only for the trivial root-presence fact, which prunes
// nothing.
func factTerm(f jsontree.PathFact, maxDepth int) (term uint64, ok bool) {
	f = effectiveFact(f, maxDepth)
	p := pathHash(f.Steps)
	switch {
	case f.Value != nil:
		return valueTerm(p, f.Value.Hash()), true
	case f.HasClass:
		return classTerm(p, f.Class), true
	default:
		if len(f.Steps) == 0 {
			// Presence of the root is trivially true of every document;
			// planners do not emit it, but guard anyway.
			return 0, false
		}
		return presenceTerm(p), true
	}
}

// ordinal is a dense per-shard document number. The dictionary hands
// ordinals out monotonically and never recycles one until compaction
// renumbers the whole shard, which is what keeps posting-list appends
// sorted by construction.
type ordinal = uint32

// pathIndex is one shard's inverted index plus the shard's document
// dictionary. Documents are dictionary-encoded: each insert assigns
// the next dense uint32 ordinal, and posting lists store sorted
// ordinals instead of string IDs, so intersection is a merge over
// machine words rather than hash-map iteration. Deletes tombstone the
// ordinal (O(1) — no posting list is touched); probe filters dead
// ordinals out and compaction rewrites the lists once tombstones reach
// half the dictionary (and on every snapshot). The structure is not
// internally synchronized; the owning shard's lock covers it.
type pathIndex struct {
	maxDepth int

	// The dictionary: ordinal → (ID, tree, index-term count), with
	// ids[ord] == "" (and a nil tree) marking a tombstone, plus the
	// reverse map for the by-ID document operations. len(ords) is the
	// live count; termCounts lets remove adjust the live-entry counter
	// without re-walking the document.
	ids        []string
	trees      []*jsontree.Tree
	termCounts []uint32
	ords       map[string]ordinal
	dead       int

	// postings maps term hash → sorted ordinals of the documents that
	// carried the term when they were indexed; tombstoned ordinals
	// linger until compaction. entries counts live entries only.
	postings map[uint64][]ordinal
	entries  int
}

func newPathIndex(maxDepth int) *pathIndex {
	return &pathIndex{
		maxDepth: maxDepth,
		ords:     make(map[string]ordinal),
		postings: make(map[uint64][]ordinal),
	}
}

// live returns the number of live documents.
func (ix *pathIndex) live() int { return len(ix.ords) }

// get returns the live document stored under id.
func (ix *pathIndex) get(id string) (*jsontree.Tree, bool) {
	ord, ok := ix.ords[id]
	if !ok {
		return nil, false
	}
	return ix.trees[ord], true
}

// each calls fn for every live document.
func (ix *pathIndex) each(fn func(id string, t *jsontree.Tree)) {
	for ord, id := range ix.ids {
		if id != "" {
			fn(id, ix.trees[ord])
		}
	}
}

// docTerms enumerates the index terms of a document by walking the
// tree depth-first, folding each edge into the running path hash.
// Nodes deeper than maxDepth are not indexed (the query side refuses
// facts deeper than the bound, so no candidate is ever lost). The
// result is sorted and duplicate-free — distinct paths hash to
// distinct terms short of a 64-bit collision, but posting lists and
// the entries counter must stay exact even across one — so add and
// accounting-only removal see the identical term set. The segment
// writer re-walks captured documents with the same function, which is
// what makes memtable and segment posting lists agree term-for-term.
func docTerms(t *jsontree.Tree, maxDepth int) []uint64 {
	terms := make([]uint64, 0, 3*t.Len())
	var walk func(n jsontree.NodeID, h uint64, depth int)
	walk = func(n jsontree.NodeID, h uint64, depth int) {
		if depth > 0 {
			terms = append(terms, presenceTerm(h))
		}
		kind := t.Kind(n)
		terms = append(terms, classTerm(h, kind))
		switch kind {
		case jsontree.StringNode, jsontree.NumberNode:
			terms = append(terms, valueTerm(h, t.SubtreeHash(n)))
		default:
			if depth == maxDepth {
				return
			}
			for _, c := range t.Children(n) {
				var s jsontree.Step
				if kind == jsontree.ObjectNode {
					s = jsontree.Key(t.EdgeKey(c))
				} else {
					s = jsontree.Index(t.EdgePos(c))
				}
				walk(c, stepHash(h, s), depth+1)
			}
		}
	}
	walk(t.Root(), fnvOffset, 0)
	slices.Sort(terms)
	return slices.Compact(terms)
}

// add assigns id the next ordinal and indexes the document under it.
// The caller must have removed any previous document with the same ID
// (put does).
func (ix *pathIndex) add(id string, t *jsontree.Tree) {
	ord := ordinal(len(ix.ids))
	terms := docTerms(t, ix.maxDepth)
	ix.ids = append(ix.ids, id)
	ix.trees = append(ix.trees, t)
	ix.termCounts = append(ix.termCounts, uint32(len(terms)))
	ix.ords[id] = ord
	for _, term := range terms {
		// Ordinals are handed out monotonically, so appending keeps
		// every posting list sorted and duplicate-free.
		ix.postings[term] = append(ix.postings[term], ord)
	}
	ix.entries += len(terms)
}

// remove tombstones the document stored under id in O(1): the
// dictionary slot is cleared and the live-entry count adjusted from
// the term count recorded at add time (no re-walk of the document),
// while posting lists keep the dead ordinal until compaction. Reports
// whether id was live, and returns the removed tree.
func (ix *pathIndex) remove(id string) (*jsontree.Tree, bool) {
	ord, ok := ix.ords[id]
	if !ok {
		return nil, false
	}
	t := ix.trees[ord]
	ix.ids[ord] = ""
	ix.trees[ord] = nil
	delete(ix.ords, id)
	ix.dead++
	ix.entries -= int(ix.termCounts[ord])
	ix.maybeCompact()
	return t, true
}

// put inserts or replaces the document stored under id.
func (ix *pathIndex) put(id string, t *jsontree.Tree) {
	ix.remove(id)
	ix.add(id, t)
}

// maybeCompact compacts once tombstones reach the live count, so the
// amortized compaction cost per delete is O(1) index entries and
// posting lists never carry more than half garbage for long.
func (ix *pathIndex) maybeCompact() {
	if ix.dead > 0 && ix.dead >= len(ix.ords) {
		ix.compact()
	}
}

// compact renumbers the live documents densely (preserving ordinal
// order, so rebuilt posting lists stay sorted) and drops tombstoned
// ordinals from every posting list. Snapshots also call it, so a
// freshly snapshotted shard starts its next WAL generation garbage-
// free.
func (ix *pathIndex) compact() {
	if ix.dead == 0 {
		return
	}
	const deadOrd = ^ordinal(0)
	remap := make([]ordinal, len(ix.ids))
	next := ordinal(0)
	for ord, id := range ix.ids {
		if id == "" {
			remap[ord] = deadOrd
			continue
		}
		remap[ord] = next
		ix.ids[next] = id
		ix.trees[next] = ix.trees[ord]
		ix.termCounts[next] = ix.termCounts[ord]
		ix.ords[id] = next
		next++
	}
	// Clear the trailing slots so the shared backing array stops
	// keeping dead trees alive.
	for i := int(next); i < len(ix.trees); i++ {
		ix.ids[i] = ""
		ix.trees[i] = nil
	}
	ix.ids = ix.ids[:next]
	ix.trees = ix.trees[:next]
	ix.termCounts = ix.termCounts[:next]
	for term, post := range ix.postings {
		w := 0
		for _, ord := range post {
			if remap[ord] == deadOrd {
				continue
			}
			post[w] = remap[ord]
			w++
		}
		if w == 0 {
			delete(ix.postings, term)
		} else {
			ix.postings[term] = post[:w]
		}
	}
	ix.dead = 0
}

// probeScratch holds the reusable buffers of one probe: the resolved
// posting lists and the ping-pong intersection buffers. Scratches are
// pooled package-wide; a probe's result aliases either a posting list
// or a scratch buffer, so callers must consume it before releasing the
// scratch (and, because posting lists are shared, before releasing the
// shard lock).
type probeScratch struct {
	lists      [][]ordinal
	bufA, bufB []ordinal

	// Segment-tier scratch (segmentReader.probe): the resolved
	// compressed lists and the single-block decode buffer.
	segLists []postingList
	segBlock []ordinal
}

var probePool = sync.Pool{New: func() any { return new(probeScratch) }}

func acquireProbeScratch() *probeScratch  { return probePool.Get().(*probeScratch) }
func releaseProbeScratch(s *probeScratch) { probePool.Put(s) }

// probe intersects the posting lists of the given terms, smallest
// first, and returns the resulting sorted duplicate-free ordinals
// (tombstoned ordinals included — the caller filters while resolving
// against the dictionary) plus the number of merge steps taken — the
// intersection-cost counter /stats reports — and how many of the
// pairwise merges ran in galloping mode (the per-query trace records
// it per shard). A missing term short-circuits to the empty set
// without touching the other lists. Apart from scratch growth on
// first use, probe does not allocate.
func (ix *pathIndex) probe(terms []uint64, scr *probeScratch) (_ []ordinal, steps, gallops int) {
	if len(terms) == 0 {
		return nil, 0, 0
	}
	lists := scr.lists[:0]
	defer func() { scr.lists = lists }()
	for _, term := range terms {
		post, ok := ix.postings[term]
		if !ok {
			return nil, 0, 0
		}
		lists = append(lists, post)
	}
	// Ascending length order: the smallest pair first bounds every
	// later merge by the running intersection size. Insertion sort — the
	// planner caps intersections at maxPlanTerms lists.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	cur := lists[0]
	for i := 1; i < len(lists) && len(cur) > 0; i++ {
		// Ping-pong between the two scratch buffers, so cur (the
		// previous round's output) never aliases the buffer written.
		var dst []ordinal
		odd := i%2 == 1
		if odd {
			dst = scr.bufA[:0]
		} else {
			dst = scr.bufB[:0]
		}
		var s int
		var galloped bool
		dst, s, galloped = intersectInto(dst, cur, lists[i])
		steps += s
		if galloped {
			gallops++
		}
		if odd {
			scr.bufA = dst
		} else {
			scr.bufB = dst
		}
		cur = dst
	}
	return cur, steps, gallops
}

// gallopRatio is the list-length ratio past which the intersection
// gallops (exponential probe + binary search) through the longer list
// instead of merging linearly. At lower ratios the linear merge's
// branch predictability wins.
const gallopRatio = 8

// intersectInto appends the intersection of a and b (both sorted,
// duplicate-free, len(a) ≤ len(b)) to dst and returns it with the
// number of comparison steps — the work metric QueryStats aggregates —
// and whether the merge switched to galloping mode.
func intersectInto(dst, a, b []ordinal) ([]ordinal, int, bool) {
	if len(a) > len(b) {
		a, b = b, a
	}
	steps := 0
	if len(b) >= gallopRatio*len(a) {
		// Galloping (small-vs-large): for each element of a, advance in b
		// by doubling probes from the last match position, then binary
		// search the bracketed window. O(len(a) · log(len(b)/len(a))).
		lo := 0
		for _, x := range a {
			span := 1
			for lo+span < len(b) && b[lo+span] < x {
				span <<= 1
				steps++
			}
			hi := lo + span
			if hi > len(b) {
				hi = len(b)
			}
			for lo < hi { // binary search for the first b[i] >= x
				mid := (lo + hi) / 2
				steps++
				if b[mid] < x {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(b) && b[lo] == x {
				dst = append(dst, x)
				lo++
			} else if lo >= len(b) {
				break
			}
		}
		return dst, steps, true
	}
	// Small-vs-small: plain two-pointer merge.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst, steps, false
}
