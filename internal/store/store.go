package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/metrics"
)

// Options configure a Store. The zero value selects 16 shards, an
// index depth bound of 16 and a fresh default Engine; the durability
// fields matter only to Open.
type Options struct {
	// Shards is the shard count, rounded up to a power of two
	// (default 16). For a durable store the count is pinned by the
	// data directory's manifest on reopen.
	Shards int
	// MaxIndexDepth bounds the indexed path depth; facts deeper than
	// the bound fall back to scanning (default 16).
	MaxIndexDepth int
	// Engine is the plan compiler/evaluator the store queries with. If
	// nil a default engine.New(engine.Options{}) is created; servers
	// share one engine between the store and their own endpoints so
	// plan-cache statistics cover all traffic.
	Engine *engine.Engine
	// QueryWorkers bounds how many shards one query probes and
	// evaluates concurrently (default runtime.GOMAXPROCS(0)). 1 runs
	// every query serially.
	QueryWorkers int
	// Schema, when set, makes the store enforce the compiled schema on
	// every write (Put, bulk ingest, recovery replay): nonconforming
	// documents are refused with ErrSchema. Enforcement is what makes
	// the engine's schema-aware semantic verdicts usable here — a
	// schema-unsatisfiable query short-circuits to an empty answer and
	// schema-universal index terms are pruned, both sound only because
	// every resident document is known to conform. Share the same
	// SchemaInfo with engine.Options.Schema.
	Schema *engine.SchemaInfo

	// DataDir roots the write-ahead logs and snapshots of a durable
	// store. Open requires it; New ignores it.
	DataDir string
	// Fsync selects the WAL durability guarantee (default FsyncAlways;
	// see FsyncPolicy).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (and the flush period under FsyncOff); default 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery triggers a background snapshot of a shard once its
	// active WAL segment holds that many records (default 10000).
	// Negative disables automatic snapshots; Snapshot still works.
	SnapshotEvery int
	// SegmentBlockSize is the posting-list block length for newly
	// written segment files (default 128, capped at 32768). Existing
	// segments carry their own block size in the footer, so the option
	// only shapes future writes.
	SegmentBlockSize int
	// SegmentNoMmap reads segment files into the heap instead of
	// mapping them — the forced portability fallback (platforms
	// without mmap always use it). Correctness is identical; the
	// kernel just stops managing residency.
	SegmentNoMmap bool
	// VFS is the filesystem the durable layers (WAL, snapshots,
	// segments, recovery) perform their file operations through. Nil
	// selects the real OS filesystem; the chaos tests inject a
	// FaultFS here. The LOCK file and mmap bypass the seam (see
	// vfs.go).
	VFS VFS
	// DegradedRetry is the initial backoff between heal attempts on a
	// degraded shard, and between retries of a failed background
	// snapshot; it doubles per failure up to 30s (default 500ms).
	DegradedRetry time.Duration
}

const (
	defaultShards        = 16
	defaultMaxIndexDepth = 16
	defaultFsyncInterval = 100 * time.Millisecond
	defaultSnapshotEvery = 10000
	defaultDegradedRetry = 500 * time.Millisecond
)

// Store is a sharded, goroutine-safe document collection with an
// inverted path index. All methods may be called concurrently. See the
// package documentation for the architecture.
type Store struct {
	shards []*shard
	mask   uint64
	eng    *engine.Engine
	opts   Options
	dur    *durability // nil for in-memory stores

	seq atomic.Uint64 // auto-ID counter for bulk ingest

	// Query counters (Stats).
	findIndexed   atomic.Uint64
	findScan      atomic.Uint64
	selectIndexed atomic.Uint64
	selectScan    atomic.Uint64
	candidateDocs atomic.Uint64
	scannedDocs   atomic.Uint64

	// Planner counters and per-query candidate histograms.
	plannerScan      atomic.Uint64
	termsSkipped     atomic.Uint64
	findCandidates   metrics.Histogram
	selectCandidates metrics.Histogram

	// Fan-out and intersection counters: how queries parallelize and
	// how much merge work posting intersections perform.
	parallelQueries   atomic.Uint64
	serialQueries     atomic.Uint64
	fanoutWorkers     metrics.Histogram
	intersectionSteps atomic.Uint64

	// Semantic-planner counters: queries answered from a compile-time
	// emptiness proof, index terms the schema proved universal, and
	// writes refused by schema enforcement.
	semShortCircuits atomic.Uint64
	termsPruned      atomic.Uint64
	schemaRejects    atomic.Uint64

	// cancellations counts queries that ended early because their
	// context was cancelled or its deadline expired.
	cancellations atomic.Uint64
}

// shard owns a partition of the documents: a mutable memtable (the
// pathIndex — dictionary plus inverted index) layered over an
// immutable mmap'd segment. The two tiers are disjoint by invariant —
// a put that shadows a segment document tombstones its segment
// ordinal — so a lookup consults the memtable first and the segment's
// live remainder second, and a probe unions two per-tier
// intersections. One RWMutex guards the whole shard; segDead and
// segLive mutate only under the write lock, while the segment's bytes
// and its resolve cache are safe under the read lock (immutable bytes,
// atomic cache).
type shard struct {
	mu sync.RWMutex
	ix *pathIndex

	seg     *segmentReader // nil until the first snapshot/recovery maps one
	segDead []uint64       // tombstone bitmap over seg ordinals
	segLive int            // segment docs not tombstoned
}

// live is the shard's document count: memtable plus the segment's
// untombstoned remainder. Caller holds the lock (either mode).
func (sh *shard) live() int { return sh.ix.live() + sh.segLive }

// getDoc looks id up across both tiers. A segment resolve failure
// (impossible short of the mapping changing under us) reads as
// absent; the query paths, which can return errors, surface it
// instead. Caller holds the lock (either mode).
func (sh *shard) getDoc(id string) (*jsontree.Tree, bool) {
	if t, ok := sh.ix.get(id); ok {
		return t, true
	}
	if sh.seg != nil {
		if ord, ok := sh.seg.lookup(id); ok && !bitGet(sh.segDead, ord) {
			d, err := sh.seg.resolve(ord)
			if err != nil {
				return nil, false
			}
			return d.tree, true
		}
	}
	return nil, false
}

// has reports whether id is live in either tier without resolving it.
func (sh *shard) has(id string) bool {
	if _, ok := sh.ix.get(id); ok {
		return true
	}
	if sh.seg != nil {
		if ord, ok := sh.seg.lookup(id); ok && !bitGet(sh.segDead, ord) {
			return true
		}
	}
	return false
}

// shadowSeg tombstones id's segment ordinal if it is live there — the
// write half of the disjointness invariant. Caller holds the write
// lock.
func (sh *shard) shadowSeg(id string) {
	if sh.seg == nil {
		return
	}
	if ord, ok := sh.seg.lookup(id); ok && !bitGet(sh.segDead, ord) {
		bitSet(sh.segDead, ord)
		sh.segLive--
	}
}

// del removes id from whichever tier holds it and reports whether it
// was live. Caller holds the write lock.
func (sh *shard) del(id string) bool {
	if _, ok := sh.ix.remove(id); ok {
		return true
	}
	if sh.seg != nil {
		if ord, ok := sh.seg.lookup(id); ok && !bitGet(sh.segDead, ord) {
			bitSet(sh.segDead, ord)
			sh.segLive--
			return true
		}
	}
	return false
}

// each calls fn for every live document in the shard: memtable first,
// then the segment's live remainder (which resolves lazily and can
// therefore fail). Caller holds the lock (either mode).
func (sh *shard) each(fn func(id string, t *jsontree.Tree)) error {
	sh.ix.each(fn)
	if sh.seg == nil {
		return nil
	}
	return sh.seg.each(sh.segDead, fn)
}

// New returns an empty in-memory Store. See Open for the durable
// variant backed by a write-ahead log and snapshots.
func New(opts Options) *Store {
	return newStore(normalizeOptions(opts))
}

// normalizeOptions fills defaults and rounds the shard count up to a
// power of two.
func normalizeOptions(opts Options) Options {
	if opts.Shards <= 0 {
		opts.Shards = defaultShards
	}
	n := 1
	for n < opts.Shards {
		n <<= 1
	}
	opts.Shards = n
	if opts.MaxIndexDepth <= 0 {
		opts.MaxIndexDepth = defaultMaxIndexDepth
	}
	if opts.Engine == nil {
		opts.Engine = engine.New(engine.Options{})
	}
	if opts.QueryWorkers <= 0 {
		opts.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.SegmentBlockSize <= 0 {
		opts.SegmentBlockSize = defaultSegmentBlockSize
	}
	if opts.SegmentBlockSize > maxSegmentBlockSize {
		opts.SegmentBlockSize = maxSegmentBlockSize
	}
	if opts.VFS == nil {
		opts.VFS = osFS{}
	}
	if opts.DegradedRetry <= 0 {
		opts.DegradedRetry = defaultDegradedRetry
	}
	return opts
}

// newStore builds the in-memory skeleton from normalized options.
func newStore(opts Options) *Store {
	s := &Store{
		shards: make([]*shard, opts.Shards),
		mask:   uint64(opts.Shards - 1),
		eng:    opts.Engine,
		opts:   opts,
	}
	for i := range s.shards {
		s.shards[i] = &shard{ix: newPathIndex(opts.MaxIndexDepth)}
	}
	return s
}

// Engine returns the engine the store compiles and evaluates with.
func (s *Store) Engine() *engine.Engine { return s.eng }

// setQueryWorkers overrides the per-query fan-out bound, returning the
// previous value; the fan-out benchmarks use it to compare serial and
// parallel execution on one populated store. Not safe to call
// concurrently with queries.
func (s *Store) setQueryWorkers(n int) int {
	prev := s.opts.QueryWorkers
	if n > 0 {
		s.opts.QueryWorkers = n
	}
	return prev
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

func (s *Store) shardIndex(id string) uint64 {
	return fnvString(fnvOffset, id) & s.mask
}

func (s *Store) shardFor(id string) *shard {
	return s.shards[s.shardIndex(id)]
}

// memPut applies a put to the in-memory maps and index only (no WAL):
// the shared tail of PutTree and recovery replay. Callers either hold
// the shard lock's equivalent (Open is single-threaded) or lock here.
func (s *Store) memPut(id string, t *jsontree.Tree) {
	sh := s.shardFor(id)
	sh.put(id, t)
}

// memDelete is memPut's delete counterpart.
func (s *Store) memDelete(id string) {
	s.shardFor(id).del(id)
}

// put applies an insert/replace to one shard; the caller holds the
// shard lock (or is the single-threaded recovery path). A put that
// shadows a segment document tombstones its segment ordinal, keeping
// the tiers disjoint.
func (sh *shard) put(id string, t *jsontree.Tree) {
	sh.shadowSeg(id)
	sh.ix.put(id, t)
}

// ErrSchema rejects a write whose document does not conform to the
// store's configured schema (Options.Schema). Wrapped errors carry the
// document ID; match with errors.Is.
var ErrSchema = errors.New("document does not conform to the configured schema")

// ErrDegraded refuses a write to a shard in degraded read-only mode:
// its write-ahead log hit an I/O failure (disk full, device error)
// and until the background probe heals it — fresh WAL generation plus
// a segment re-capturing the shard's state — accepting writes would
// let memory and disk diverge. Reads keep serving throughout. The
// daemon maps it to 503 with Retry-After, distinct from ErrWAL's 500:
// a degraded shard is a known, recovering condition, not a fresh
// fault. Match with errors.Is.
var ErrDegraded = errors.New("shard degraded (write-ahead log failure): read-only until the log heals")

// degradedErr gates a write on w's degraded flag, returning the
// 503-mapped refusal when the shard is read-only. Checked before the
// shard lock: degraded writes shed without contending with readers.
func degradedErr(w *shardWAL, what string) error {
	if w != nil && w.degraded.Load() {
		return fmt.Errorf("store: %s: shard %d: %w", what, w.shard, ErrDegraded)
	}
	return nil
}

// validateSchema enforces the configured schema on a write, counting
// and refusing nonconforming documents; what describes the write for
// the error message (`put "id"`, `bulk line 3`). A nil Options.Schema
// accepts everything.
func (s *Store) validateSchema(what string, t *jsontree.Tree) error {
	if s.opts.Schema == nil {
		return nil
	}
	ok, err := s.eng.Validate(s.opts.Schema.Plan(), t)
	if err != nil {
		return fmt.Errorf("store: %s: schema validation: %w", what, err)
	}
	if !ok {
		s.schemaRejects.Add(1)
		return fmt.Errorf("store: %s: %w", what, ErrSchema)
	}
	return nil
}

// Put parses a JSON document and stores it under id, replacing any
// previous document with that ID.
func (s *Store) Put(id, doc string) error {
	t, err := jsontree.Parse(doc)
	if err != nil {
		return fmt.Errorf("store: put %q: %w", id, err)
	}
	return s.PutTree(id, t)
}

// PutTree stores an already-built tree under id, replacing any previous
// document. The tree must not be mutated afterwards (jsontree.Tree is
// immutable by construction, so this holds for all library-built
// trees). On a durable store the mutation is WAL-logged before it is
// applied; in-memory stores always return nil. A returned error means
// the write is not durable: if the log append itself failed the write
// was not applied at all, while a failed commit fsync leaves the write
// applied in memory with unknown on-disk fate — the WAL's sticky error
// then refuses every further write, so memory cannot silently diverge
// further.
func (s *Store) PutTree(id string, t *jsontree.Tree) error {
	if err := s.validateSchema(fmt.Sprintf("put %q", id), t); err != nil {
		return err
	}
	var (
		w   *shardWAL
		seq uint64
		rec walRecord
	)
	if s.dur != nil {
		w = s.dur.wals[s.shardIndex(id)]
		if err := degradedErr(w, fmt.Sprintf("put %q", id)); err != nil {
			return err
		}
		// Render outside the lock; trees are immutable.
		rec = walRecord{op: opPut, id: id, doc: t.String()}
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if w != nil {
		var err error
		if seq, err = w.append(rec); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	sh.put(id, t)
	sh.mu.Unlock()
	if w != nil {
		return w.commit(seq)
	}
	return nil
}

// putTreeIfAbsent stores t under id only when the ID is free, with the
// existence check and the insert under one shard lock — the atomicity
// bulk ingest's auto-ID assignment relies on to never clobber a
// concurrently stored document. The WAL record is buffered but not
// forced durable: the only caller, bulk ingest, batches the force
// (commitBulk) at the end of the stream.
func (s *Store) putTreeIfAbsent(id string, t *jsontree.Tree) (bool, error) {
	var (
		w   *shardWAL
		rec walRecord
	)
	if s.dur != nil {
		w = s.dur.wals[s.shardIndex(id)]
		if err := degradedErr(w, fmt.Sprintf("bulk put %q", id)); err != nil {
			return false, err
		}
		// Render outside the lock (as PutTree does); on the rare
		// ID-collision retry the render is wasted, which is cheaper
		// than serializing it against the shard's readers.
		rec = walRecord{op: opPut, id: id, doc: t.String()}
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if sh.has(id) {
		sh.mu.Unlock()
		return false, nil
	}
	if w != nil {
		if _, err := w.append(rec); err != nil {
			sh.mu.Unlock()
			return false, err
		}
	}
	sh.ix.add(id, t)
	sh.mu.Unlock()
	return true, nil
}

// Get returns the document stored under id, resolving through either
// tier (a segment-resident document parses and caches on first
// access).
func (s *Store) Get(id string) (*jsontree.Tree, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t, ok := sh.getDoc(id)
	sh.mu.RUnlock()
	return t, ok
}

// Delete removes the document stored under id, unwinding its index
// entries, and reports whether it existed. On a durable store the
// delete is WAL-logged before it is applied; a failed log append
// leaves the document in place, while a failed commit fsync returns
// (true, err) with the delete applied in memory but not provably
// durable (further writes are then refused, as with PutTree).
func (s *Store) Delete(id string) (bool, error) {
	var (
		w   *shardWAL
		seq uint64
	)
	if s.dur != nil {
		w = s.dur.wals[s.shardIndex(id)]
		if err := degradedErr(w, fmt.Sprintf("delete %q", id)); err != nil {
			return false, err
		}
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if !sh.has(id) {
		sh.mu.Unlock()
		return false, nil
	}
	if w != nil {
		var err error
		if seq, err = w.append(walRecord{op: opDelete, id: id}); err != nil {
			sh.mu.Unlock()
			return false, err
		}
	}
	sh.del(id)
	sh.mu.Unlock()
	if w != nil {
		return true, w.commit(seq)
	}
	return true, nil
}

// Len returns the number of stored documents across both tiers.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.live()
		sh.mu.RUnlock()
	}
	return n
}

// ShardStats describes one shard for Stats.
type ShardStats struct {
	Docs     int `json:"docs"`
	Terms    int `json:"terms"`
	Postings int `json:"postings"`
}

// QueryStats aggregates the store's query counters.
type QueryStats struct {
	// FindIndexed / FindScan count Find calls answered via the index
	// versus by full scan; SelectIndexed / SelectScan likewise for
	// Select.
	FindIndexed   uint64 `json:"find_indexed"`
	FindScan      uint64 `json:"find_scan"`
	SelectIndexed uint64 `json:"select_indexed"`
	SelectScan    uint64 `json:"select_scan"`
	// CandidateDocs counts documents evaluated on indexed queries;
	// ScannedDocs counts documents evaluated on scans. Their ratio is
	// the index's pruning power.
	CandidateDocs uint64 `json:"candidate_docs"`
	ScannedDocs   uint64 `json:"scanned_docs"`
	// PlannerScan counts queries with index-supported facts that the
	// cost-based planner nevertheless sent to a scan (unselective
	// intersection); TermsSkipped counts near-useless terms it dropped
	// from intersections.
	PlannerScan  uint64 `json:"planner_scan"`
	TermsSkipped uint64 `json:"terms_skipped"`
	// FindCandidates / SelectCandidates are per-query histograms of
	// candidate-set sizes on indexed queries, replacing the old single
	// running counter as the pruning-power signal.
	FindCandidates   []HistogramBucket `json:"find_candidates,omitempty"`
	SelectCandidates []HistogramBucket `json:"select_candidates,omitempty"`
	// ParallelQueries / SerialQueries split queries by whether the
	// shard fan-out ran on more than one worker; FanoutWorkers is the
	// per-query histogram of workers actually used (bounded by
	// Options.QueryWorkers and the shard count).
	ParallelQueries uint64            `json:"parallel_queries"`
	SerialQueries   uint64            `json:"serial_queries"`
	FanoutWorkers   []HistogramBucket `json:"fanout_workers,omitempty"`
	// IntersectionSteps totals the posting-list merge steps (element
	// comparisons and gallop probes) taken by indexed queries — the
	// work the dictionary-encoded intersection actually performs, per
	// /stats scrape interval a direct read on index efficiency.
	IntersectionSteps uint64 `json:"intersection_steps"`
	// SemanticShortCircuits counts queries answered empty from a
	// compile-time emptiness proof: no posting list was probed and no
	// document evaluated. Such queries are counted here instead of in
	// the FindIndexed/FindScan (SelectIndexed/SelectScan) pairs.
	SemanticShortCircuits uint64 `json:"semantic_short_circuits"`
	// TermsPruned counts index terms skipped because the configured
	// schema proves them universal over conforming documents (a subset
	// of TermsSkipped); SchemaRejects counts writes refused by schema
	// enforcement.
	TermsPruned   uint64 `json:"terms_pruned"`
	SchemaRejects uint64 `json:"schema_rejects"`
	// Cancellations counts queries that ended early because their
	// context was cancelled (client gone) or its deadline expired.
	Cancellations uint64 `json:"cancellations"`
}

// DurabilityStats aggregates the WAL and snapshot counters of a
// durable store.
type DurabilityStats struct {
	// Fsync is the active policy ("always", "interval", "off").
	Fsync string `json:"fsync"`
	// WALAppends / WALBytes / WALSyncs count records appended, bytes
	// framed and fsyncs issued since open, summed over shards. With
	// group commit WALSyncs ≪ WALAppends under concurrent or bulk
	// writes.
	WALAppends uint64 `json:"wal_appends"`
	WALBytes   uint64 `json:"wal_bytes"`
	WALSyncs   uint64 `json:"wal_syncs"`
	// WALSegmentRecords is the record count across the active
	// segments — the replay debt a crash right now would incur.
	WALSegmentRecords uint64 `json:"wal_segment_records"`
	// Snapshots / SnapshotErrors count background and manual snapshot
	// attempts since open.
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// Segments / SegmentBytes / SegmentDocs describe the immutable
	// read tier: shards with a mapped segment file, bytes mapped (or
	// heap-resident under the no-mmap fallback) and live documents
	// served from segments. MemtableDocs counts documents in the
	// mutable tier above them; Compactions counts segment builds
	// (snapshot-triggered merges) completed since open.
	Segments     int    `json:"segments"`
	SegmentBytes int64  `json:"segment_bytes"`
	SegmentDocs  int    `json:"segment_docs"`
	MemtableDocs int    `json:"memtable_docs"`
	Compactions  uint64 `json:"compactions"`
	// LastError is the first sticky WAL failure, if any; once set the
	// affected shard refuses writes.
	LastError string `json:"last_error,omitempty"`
	// Degraded reports whether any shard is currently in degraded
	// read-only mode (writes refused with ErrDegraded, reads serving,
	// background heal probe retrying); DegradedShards counts them.
	Degraded       bool `json:"degraded"`
	DegradedShards int  `json:"degraded_shards"`
	// WALRetries counts heal attempts on degraded shards; WALHeals
	// counts the ones that completed and re-enabled writes.
	WALRetries uint64 `json:"wal_retries"`
	WALHeals   uint64 `json:"wal_heals"`
	// Recovery reports what Open found and repaired.
	Recovery RecoveryStats `json:"recovery"`
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	Docs    int          `json:"docs"`
	Shards  []ShardStats `json:"shards"`
	Terms   int          `json:"index_terms"`
	Entries int          `json:"index_postings"`
	Queries QueryStats   `json:"queries"`
	// Durability is nil on in-memory stores.
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// Stats returns a snapshot of shard sizes, index cardinalities and
// query counters.
func (s *Store) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(s.shards))}
	var segments, segDocs, memDocs int
	var segBytes int64
	for i, sh := range s.shards {
		sh.mu.RLock()
		ss := ShardStats{
			Docs:     sh.live(),
			Terms:    len(sh.ix.postings),
			Postings: sh.ix.entries,
		}
		if sh.seg != nil {
			segments++
			segBytes += sh.seg.sizeBytes()
			segDocs += sh.segLive
		}
		memDocs += sh.ix.live()
		sh.mu.RUnlock()
		st.Shards[i] = ss
		st.Docs += ss.Docs
		st.Terms += ss.Terms
		st.Entries += ss.Postings
	}
	st.Queries = QueryStats{
		FindIndexed:       s.findIndexed.Load(),
		FindScan:          s.findScan.Load(),
		SelectIndexed:     s.selectIndexed.Load(),
		SelectScan:        s.selectScan.Load(),
		CandidateDocs:     s.candidateDocs.Load(),
		ScannedDocs:       s.scannedDocs.Load(),
		PlannerScan:       s.plannerScan.Load(),
		TermsSkipped:      s.termsSkipped.Load(),
		FindCandidates:    s.findCandidates.Snapshot(),
		SelectCandidates:  s.selectCandidates.Snapshot(),
		ParallelQueries:   s.parallelQueries.Load(),
		SerialQueries:     s.serialQueries.Load(),
		FanoutWorkers:     s.fanoutWorkers.Snapshot(),
		IntersectionSteps: s.intersectionSteps.Load(),

		SemanticShortCircuits: s.semShortCircuits.Load(),
		TermsPruned:           s.termsPruned.Load(),
		SchemaRejects:         s.schemaRejects.Load(),
		Cancellations:         s.cancellations.Load(),
	}
	if s.dur != nil {
		st.Durability = s.dur.stats()
		st.Durability.Segments = segments
		st.Durability.SegmentBytes = segBytes
		st.Durability.SegmentDocs = segDocs
		st.Durability.MemtableDocs = memDocs
	}
	return st
}

// stats assembles the durable half of Stats.
func (d *durability) stats() *DurabilityStats {
	ds := &DurabilityStats{
		Fsync:          d.policy.String(),
		Snapshots:      d.snapshots.Load(),
		SnapshotErrors: d.snapshotErrors.Load(),
		Compactions:    d.compactions.Load(),
		WALRetries:     d.walRetries.Load(),
		WALHeals:       d.walHeals.Load(),
		Recovery:       d.recovery,
	}
	for _, w := range d.wals {
		appends, bytes, syncs, seg, err := w.counters()
		ds.WALAppends += appends
		ds.WALBytes += bytes
		ds.WALSyncs += syncs
		ds.WALSegmentRecords += seg
		if err != nil && ds.LastError == "" {
			ds.LastError = err.Error()
		}
		if w.degraded.Load() {
			ds.DegradedShards++
		}
	}
	ds.Degraded = ds.DegradedShards > 0
	return ds
}
