package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// Options configure a Store. The zero value selects 16 shards, an
// index depth bound of 16 and a fresh default Engine.
type Options struct {
	// Shards is the shard count, rounded up to a power of two
	// (default 16).
	Shards int
	// MaxIndexDepth bounds the indexed path depth; facts deeper than
	// the bound fall back to scanning (default 16).
	MaxIndexDepth int
	// Engine is the plan compiler/evaluator the store queries with. If
	// nil a default engine.New(engine.Options{}) is created; servers
	// share one engine between the store and their own endpoints so
	// plan-cache statistics cover all traffic.
	Engine *engine.Engine
}

const (
	defaultShards        = 16
	defaultMaxIndexDepth = 16
)

// Store is a sharded, goroutine-safe document collection with an
// inverted path index. All methods may be called concurrently. See the
// package documentation for the architecture.
type Store struct {
	shards []*shard
	mask   uint64
	eng    *engine.Engine
	opts   Options

	seq atomic.Uint64 // auto-ID counter for bulk ingest

	// Query counters (Stats).
	findIndexed   atomic.Uint64
	findScan      atomic.Uint64
	selectIndexed atomic.Uint64
	selectScan    atomic.Uint64
	candidateDocs atomic.Uint64
	scannedDocs   atomic.Uint64
}

// shard owns a partition of the documents and its slice of the index.
// One RWMutex guards both, so index and docs can never disagree.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*jsontree.Tree
	ix   *pathIndex
}

// New returns an empty Store.
func New(opts Options) *Store {
	if opts.Shards <= 0 {
		opts.Shards = defaultShards
	}
	n := 1
	for n < opts.Shards {
		n <<= 1
	}
	opts.Shards = n
	if opts.MaxIndexDepth <= 0 {
		opts.MaxIndexDepth = defaultMaxIndexDepth
	}
	if opts.Engine == nil {
		opts.Engine = engine.New(engine.Options{})
	}
	s := &Store{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		eng:    opts.Engine,
		opts:   opts,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			docs: make(map[string]*jsontree.Tree),
			ix:   newPathIndex(opts.MaxIndexDepth),
		}
	}
	return s
}

// Engine returns the engine the store compiles and evaluates with.
func (s *Store) Engine() *engine.Engine { return s.eng }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

func (s *Store) shardFor(id string) *shard {
	return s.shards[fnvString(fnvOffset, id)&s.mask]
}

// Put parses a JSON document and stores it under id, replacing any
// previous document with that ID.
func (s *Store) Put(id, doc string) error {
	t, err := jsontree.Parse(doc)
	if err != nil {
		return fmt.Errorf("store: put %q: %w", id, err)
	}
	s.PutTree(id, t)
	return nil
}

// PutTree stores an already-built tree under id, replacing any previous
// document. The tree must not be mutated afterwards (jsontree.Tree is
// immutable by construction, so this holds for all library-built
// trees).
func (s *Store) PutTree(id string, t *jsontree.Tree) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if old, ok := sh.docs[id]; ok {
		sh.ix.remove(id, old)
	}
	sh.docs[id] = t
	sh.ix.add(id, t)
	sh.mu.Unlock()
}

// putTreeIfAbsent stores t under id only when the ID is free, with the
// existence check and the insert under one shard lock — the atomicity
// bulk ingest's auto-ID assignment relies on to never clobber a
// concurrently stored document.
func (s *Store) putTreeIfAbsent(id string, t *jsontree.Tree) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, taken := sh.docs[id]; taken {
		return false
	}
	sh.docs[id] = t
	sh.ix.add(id, t)
	return true
}

// Get returns the document stored under id.
func (s *Store) Get(id string) (*jsontree.Tree, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t, ok := sh.docs[id]
	sh.mu.RUnlock()
	return t, ok
}

// Delete removes the document stored under id, unwinding its index
// entries, and reports whether it existed.
func (s *Store) Delete(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	t, ok := sh.docs[id]
	if ok {
		sh.ix.remove(id, t)
		delete(sh.docs, id)
	}
	sh.mu.Unlock()
	return ok
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// ShardStats describes one shard for Stats.
type ShardStats struct {
	Docs     int `json:"docs"`
	Terms    int `json:"terms"`
	Postings int `json:"postings"`
}

// QueryStats aggregates the store's query counters.
type QueryStats struct {
	// FindIndexed / FindScan count Find calls answered via the index
	// versus by full scan; SelectIndexed / SelectScan likewise for
	// Select.
	FindIndexed   uint64 `json:"find_indexed"`
	FindScan      uint64 `json:"find_scan"`
	SelectIndexed uint64 `json:"select_indexed"`
	SelectScan    uint64 `json:"select_scan"`
	// CandidateDocs counts documents evaluated on indexed queries;
	// ScannedDocs counts documents evaluated on scans. Their ratio is
	// the index's pruning power.
	CandidateDocs uint64 `json:"candidate_docs"`
	ScannedDocs   uint64 `json:"scanned_docs"`
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	Docs    int          `json:"docs"`
	Shards  []ShardStats `json:"shards"`
	Terms   int          `json:"index_terms"`
	Entries int          `json:"index_postings"`
	Queries QueryStats   `json:"queries"`
}

// Stats returns a snapshot of shard sizes, index cardinalities and
// query counters.
func (s *Store) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(s.shards))}
	for i, sh := range s.shards {
		sh.mu.RLock()
		ss := ShardStats{
			Docs:     len(sh.docs),
			Terms:    len(sh.ix.postings),
			Postings: sh.ix.entries,
		}
		sh.mu.RUnlock()
		st.Shards[i] = ss
		st.Docs += ss.Docs
		st.Terms += ss.Terms
		st.Entries += ss.Postings
	}
	st.Queries = QueryStats{
		FindIndexed:   s.findIndexed.Load(),
		FindScan:      s.findScan.Load(),
		SelectIndexed: s.selectIndexed.Load(),
		SelectScan:    s.selectScan.Load(),
		CandidateDocs: s.candidateDocs.Load(),
		ScannedDocs:   s.scannedDocs.Load(),
	}
	return st
}
