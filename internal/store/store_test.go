package store

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

func mustFind(t *testing.T, s *Store, lang engine.Language, src string) []string {
	t.Helper()
	p, err := s.Engine().Compile(lang, src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	ids, _, err := s.Find(p)
	if err != nil {
		t.Fatalf("find %q: %v", src, err)
	}
	return ids
}

func TestPutGetDelete(t *testing.T) {
	s := New(Options{Shards: 4})
	if err := s.Put("a", `{"name":"sue","age":34}`); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", `not json`); err == nil {
		t.Fatal("expected parse error")
	}
	tr, ok := s.Get("a")
	if !ok || tr.String() != `{"age":34,"name":"sue"}` {
		t.Fatalf("get a = %v, %v", tr, ok)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("b should not exist")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	first, err := s.Delete("a")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Delete("a")
	if err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatal("delete a should succeed exactly once")
	}
	if s.Len() != 0 {
		t.Fatalf("len after delete = %d", s.Len())
	}
}

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{{0, 16}, {1, 1}, {3, 4}, {8, 8}, {9, 16}}
	for _, c := range cases {
		if got := New(Options{Shards: c.in}).NumShards(); got != c.want {
			t.Errorf("Shards:%d → %d shards, want %d", c.in, got, c.want)
		}
	}
}

// TestIndexMaintenance checks the incremental index against inserts,
// replacements and deletions: queries must reflect exactly the live
// documents, and the posting structures must drain to empty.
func TestIndexMaintenance(t *testing.T) {
	s := New(Options{Shards: 2})
	const q = `{"user.name":"sue"}`
	if err := s.Put("x", `{"user":{"name":"sue"}}`); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("y", `{"user":{"name":"bob"}}`); err != nil {
		t.Fatal(err)
	}
	if got := mustFind(t, s, engine.LangMongoFind, q); len(got) != 1 || got[0] != "x" {
		t.Fatalf("find = %v, want [x]", got)
	}
	// Replace x: the old value terms must be unwound.
	if err := s.Put("x", `{"user":{"name":"ann"}}`); err != nil {
		t.Fatal(err)
	}
	if got := mustFind(t, s, engine.LangMongoFind, q); len(got) != 0 {
		t.Fatalf("find after replace = %v, want []", got)
	}
	if got := mustFind(t, s, engine.LangMongoFind, `{"user.name":"ann"}`); len(got) != 1 || got[0] != "x" {
		t.Fatalf("find ann = %v, want [x]", got)
	}
	s.Delete("x")
	s.Delete("y")
	st := s.Stats()
	if st.Docs != 0 || st.Terms != 0 || st.Entries != 0 {
		t.Fatalf("index did not drain: %+v", st)
	}
}

// TestIndexedVsScanCounters checks that supported plans probe the index
// and unsupported plans (negation, recursion, deep paths) scan.
func TestIndexedVsScanCounters(t *testing.T) {
	s := New(Options{Shards: 2, MaxIndexDepth: 3})
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("d%d", i), fmt.Sprintf(`{"a":{"b":%d}}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	mustFind(t, s, engine.LangMongoFind, `{"a.b":3}`) // indexed
	mustFind(t, s, engine.LangMongoFind, `{"a.b":{"$ne":3}}`)
	mustFind(t, s, engine.LangJSL, `def g = number || some(~".*", g) ; g`)
	// Deeper than MaxIndexDepth: the over-deep facts are dropped but the
	// in-bound prefix facts still prune (to zero candidates here, since
	// no document has a node at a/b/c).
	if got := mustFind(t, s, engine.LangMongoFind, `{"a.b.c.d.e":1}`); len(got) != 0 {
		t.Fatalf("deep find = %v, want []", got)
	}
	q := s.Stats().Queries
	if q.FindIndexed != 2 || q.FindScan != 2 {
		t.Fatalf("counters = %+v, want 2 indexed / 2 scans", q)
	}
	if q.CandidateDocs != 1 || q.ScannedDocs != 16 {
		t.Fatalf("doc counters = %+v, want 1 candidate / 16 scanned", q)
	}
	// A JSONPath plan whose single prefix fact is over-deep degrades to
	// its in-bound prefix presence: still indexed, pruning to zero
	// candidates here (no document has an a/b/c path).
	deep, err := s.Engine().Compile(engine.LangJSONPath, `$.a.b.c.d.e`)
	if err != nil {
		t.Fatal(err)
	}
	if ids, indexed, err := s.Find(deep); err != nil || !indexed || len(ids) != 0 {
		t.Fatalf("deep JSONPath: ids=%v indexed=%v err=%v, want indexed and empty", ids, indexed, err)
	}
	if sels, indexed, err := s.Select(deep); err != nil || !indexed || len(sels) != 0 {
		t.Fatalf("deep select: sels=%v indexed=%v err=%v, want indexed and empty", sels, indexed, err)
	}
	// An in-bound prefix every document carries is index-supported but
	// unselective: the cost-based planner must choose the scan and say
	// so in the counters.
	shallow, err := s.Engine().Compile(engine.LangJSONPath, `$.a.b`)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Queries.PlannerScan
	if _, indexed, err := s.Find(shallow); err != nil || indexed {
		t.Fatalf("unselective in-bound plan must scan (indexed=%v err=%v)", indexed, err)
	}
	if after := s.Stats().Queries.PlannerScan; after != before+1 {
		t.Fatalf("PlannerScan = %d, want %d", after, before+1)
	}
}

// TestSelectJSONPathIndexed checks node selection through the index on
// an anchored JSONPath plan.
func TestSelectJSONPathIndexed(t *testing.T) {
	s := New(Options{})
	if err := s.Put("a", `{"store":{"book":["x","y"]}}`); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", `{"store":{"cd":["z"]}}`); err != nil {
		t.Fatal(err)
	}
	p, err := s.Engine().Compile(engine.LangJSONPath, `$.store.book[*]`)
	if err != nil {
		t.Fatal(err)
	}
	sel, indexed, err := s.Select(p)
	if err != nil || !indexed {
		t.Fatalf("select: indexed=%v err=%v", indexed, err)
	}
	if len(sel) != 1 || sel[0].ID != "a" || len(sel[0].Nodes) != 2 {
		t.Fatalf("select = %+v", sel)
	}
	if q := s.Stats().Queries; q.SelectIndexed != 1 || q.CandidateDocs != 1 {
		t.Fatalf("select did not use the index: %+v", q)
	}
}

func TestBulkNDJSON(t *testing.T) {
	s := New(Options{})
	input := `{"k":1}

{"k":2}
{oops
{"k":3}
`
	res, err := s.BulkNDJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 3 {
		t.Fatalf("ingested %d docs, want 3: %+v", len(res.IDs), res)
	}
	if len(res.Errors) != 1 || res.Errors[0].Line != 4 {
		t.Fatalf("errors = %+v, want one at line 4", res.Errors)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := mustFind(t, s, engine.LangMongoFind, `{"k":2}`); len(got) != 1 || got[0] != res.IDs[1] {
		t.Fatalf("find k=2 = %v, want [%s]", got, res.IDs[1])
	}
}

// errReader yields its payload and then a non-EOF error, simulating a
// connection dropped mid-bulk.
type errReader struct {
	data string
	err  error
	off  int
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestBulkNDJSONReaderError(t *testing.T) {
	s := New(Options{})
	boom := errors.New("boom")
	res, err := s.BulkNDJSON(&errReader{data: "{\"k\":1}\n{\"k\":2}\n", err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Both complete lines were ingested before the failure.
	if len(res.IDs) != 2 || s.Len() != 2 {
		t.Fatalf("ingested %d/%d docs before failure", len(res.IDs), s.Len())
	}
}

// TestFactTermDepthBound pins the depth degradation: an over-deep fact
// becomes the presence term of its in-bound prefix.
func TestFactTermDepthBound(t *testing.T) {
	steps := []jsontree.Step{jsontree.Key("a"), jsontree.Key("b"), jsontree.Key("c")}
	deep := jsontree.PathFact{Steps: steps}
	term, ok := factTerm(deep, 2)
	if !ok || term != presenceTerm(pathHash(steps[:2])) {
		t.Fatal("over-deep fact must degrade to its prefix presence term")
	}
	if term, ok := factTerm(deep, 3); !ok || term != presenceTerm(pathHash(steps)) {
		t.Fatal("fact at bound must keep its full term")
	}
	if _, ok := factTerm(jsontree.PathFact{}, 8); ok {
		t.Fatal("bare root presence fact must be rejected")
	}
}

// TestDeepFactPartialPruning checks that one over-deep fact does not
// disable the index: the remaining in-bound facts still prune, and
// results match the scan.
func TestDeepFactPartialPruning(t *testing.T) {
	s := New(Options{Shards: 2, MaxIndexDepth: 2})
	for i := 0; i < 16; i++ {
		tenant := fmt.Sprintf("t%d", i%4)
		if err := s.Put(fmt.Sprintf("d%d", i),
			fmt.Sprintf(`{"tenant":%q,"a":{"b":{"c":{"d":%d}}}}`, tenant, i)); err != nil {
			t.Fatal(err)
		}
	}
	// tenant is in-bound and selective; a.b.c.d is deeper than the
	// bound, so only its prefix facts up to depth 2 contribute.
	p, err := s.Engine().Compile(engine.LangMongoFind, `{"tenant":"t1","a.b.c.d":{"$gte":0}}`)
	if err != nil {
		t.Fatal(err)
	}
	ids, indexed, err := s.Find(p)
	if err != nil {
		t.Fatal(err)
	}
	if !indexed {
		t.Fatal("in-bound facts must keep the plan indexed")
	}
	want, err := s.FindScan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 || !sameIDs(ids, want) {
		t.Fatalf("indexed = %v, scan = %v", ids, want)
	}
	// The value term for tenant pruned to exactly the 4 matching docs.
	if c := s.Stats().Queries.CandidateDocs; c != 4 {
		t.Fatalf("evaluated %d candidates, want 4", c)
	}
}

// TestLowShardBatchFallback pins the worker-budget fallback: with
// fewer shards than query workers, Find/Select route through the
// engine's per-document batch pool (shard fan-out could not use the
// budget) and must return exactly the per-shard path's results, with
// every query still accounted in the fan-out counters.
func TestLowShardBatchFallback(t *testing.T) {
	batch := New(Options{Shards: 1, QueryWorkers: 8})
	ref := New(Options{Shards: 1, QueryWorkers: 1})
	for i := 0; i < 40; i++ {
		doc := fmt.Sprintf(`{"g":"g%d","n":%d}`, i%4, i)
		for _, s := range []*Store{batch, ref} {
			if err := s.Put(fmt.Sprintf("d%02d", i), doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	queries := 0
	for _, src := range []string{`{"g":"g1","n":{"$lte":20}}`, `{"n":{"$gte":0}}`} {
		p, err := batch.Engine().Compile(engine.LangMongoFind, src)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := batch.Find(p)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.Find(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("batch fallback Find(%s) = %v, per-shard path = %v", src, got, want)
		}
		scan, err := batch.FindScan(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, scan) {
			t.Fatalf("batch fallback Find(%s) = %v, scan = %v", src, got, scan)
		}
		queries += 2 // Find + FindScan on batch
	}
	q := batch.Stats().Queries
	if q.ParallelQueries+q.SerialQueries != uint64(queries) {
		t.Fatalf("fan-out counters cover %d queries, ran %d: %+v",
			q.ParallelQueries+q.SerialQueries, queries, q)
	}
}

// TestBulkIDsNeverClobber pins that auto-assigned bulk IDs skip IDs
// already taken by user-chosen names.
func TestBulkIDsNeverClobber(t *testing.T) {
	s := New(Options{})
	if err := s.Put("d00000000", `{"precious":1}`); err != nil {
		t.Fatal(err)
	}
	res, err := s.BulkNDJSON(strings.NewReader("{\"bulk\":1}\n{\"bulk\":2}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 || res.IDs[0] != "d00000001" || res.IDs[1] != "d00000002" {
		t.Fatalf("bulk ids = %v, want the taken id skipped", res.IDs)
	}
	tr, ok := s.Get("d00000000")
	if !ok || tr.ChildByKey(tr.Root(), "precious") == jsontree.InvalidNode {
		t.Fatal("bulk ingest clobbered a user-stored document")
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
}
