package store

// vfs.go: the filesystem seam of the durable store. Every file
// operation wal.go, snapshot.go, segment.go and recover.go perform
// goes through a VFS so the chaos tests (chaos_test.go) can make the
// disk say no — ENOSPC on the Nth WAL append, EIO on an fsync, a
// short write mid-segment — and prove the store degrades to read-only
// instead of corrupting, and heals when the fault clears. Production
// always runs osFS; the only call sites that bypass the seam are the
// LOCK file (flock needs a real descriptor and guards the process,
// not the data) and mmap itself (which consumes a File's Fd and has
// no write path to fail).
//
// Options.VFS selects the implementation; nil means the real disk.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// File is the slice of *os.File the durable store uses. *os.File
// satisfies it directly; FaultFS wraps one to inject failures.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
	Name() string
	// Fd exposes the descriptor for mmap; fault injection never
	// intercepts reads through a mapping.
	Fd() uintptr
}

// VFS abstracts the file operations of the durable store. Paths are
// regular OS paths; semantics of each method match the os package
// function of the same name.
type VFS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	MkdirAll(path string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	// SyncDir fsyncs a directory so a just-created or just-renamed
	// entry survives a machine crash (no-op on platforms without
	// directory fsync; see lock_other.go).
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) SyncDir(dir string) error                     { return syncDir(dir) }

// Portable stand-ins for the errno conditions the chaos suite
// simulates. Real syscall errnos are platform-specific; what the
// store's error handling keys on is only that the error is non-nil
// and sticky, so distinct sentinel values are sufficient and keep the
// tests buildable everywhere.
var (
	// ErrNoSpace simulates ENOSPC (disk full).
	ErrNoSpace = errors.New("injected fault: no space left on device")
	// ErrIO simulates EIO (device-level input/output error).
	ErrIO = errors.New("injected fault: input/output error")
)

// FaultOp selects which operations a FaultRule arms, as a bitmask so
// one rule can cover several (OpWrite|OpSync: every path to stable
// storage).
type FaultOp uint32

const (
	OpOpen FaultOp = 1 << iota // OpenFile, Open and CreateTemp
	OpRead
	OpWrite
	OpSync // file fsync and SyncDir
	OpClose
	OpRename
	OpRemove
	OpTruncate
	OpReadDir // ReadDir and ReadFile
	OpMkdir

	OpAny = ^FaultOp(0)
)

// FaultRule makes matching operations fail. A rule matches an
// operation when the op kind is in Ops and the target path contains
// Path as a substring ("" matches everything); the first After
// matches are let through, then the rule fires. Once controls
// whether it disarms after firing (a transient glitch) or keeps
// firing (a full disk stays full).
type FaultRule struct {
	// Ops is the operation kinds the rule arms (bitmask; OpAny for all).
	Ops FaultOp
	// Path is a substring the operation's path must contain; "" matches
	// every path. WAL files contain "wal-", segment files "seg-",
	// segment temp files ".tmp".
	Path string
	// After lets this many matching operations through before the rule
	// fires: fail-the-Nth-op scheduling.
	After int
	// Err is the injected error (ErrNoSpace, ErrIO, or any other).
	Err error
	// ShortWrite, on a write op, consumes half the buffer before
	// failing — the torn-write fingerprint — instead of failing
	// cleanly at offset zero.
	ShortWrite bool
	// Once disarms the rule after its first firing; otherwise it is
	// sticky and every later match fails too.
	Once bool

	fired bool
}

// FaultFS wraps a VFS and injects failures per a mutable rule set.
// Safe for concurrent use; rules can be added and cleared while the
// store runs, which is how the chaos tests "repair the disk".
type FaultFS struct {
	inner VFS

	mu       sync.Mutex
	rules    []*FaultRule
	injected uint64
}

// NewFaultFS wraps inner (nil: the real filesystem) with no rules
// armed: transparent until Fail is called.
func NewFaultFS(inner VFS) *FaultFS {
	if inner == nil {
		inner = osFS{}
	}
	return &FaultFS{inner: inner}
}

// Fail arms a rule. The returned pointer stays live in the rule set;
// callers must not mutate it after arming.
func (ffs *FaultFS) Fail(rule FaultRule) *FaultRule {
	if rule.Err == nil {
		rule.Err = ErrIO
	}
	r := &rule
	ffs.mu.Lock()
	ffs.rules = append(ffs.rules, r)
	ffs.mu.Unlock()
	return r
}

// Clear disarms every rule: the disk is healthy again.
func (ffs *FaultFS) Clear() {
	ffs.mu.Lock()
	ffs.rules = nil
	ffs.mu.Unlock()
}

// Injected returns how many operations have failed (or short-written)
// by injection so far.
func (ffs *FaultFS) Injected() uint64 {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	return ffs.injected
}

// check consults the rule set for an op on path. It returns the
// injected error, and shortWrite=true when the matching rule wants a
// torn write rather than a clean failure.
func (ffs *FaultFS) check(op FaultOp, path string) (err error, shortWrite bool) {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	for _, r := range ffs.rules {
		if r.Ops&op == 0 {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.Once && r.fired {
			continue
		}
		if r.After > 0 {
			r.After--
			continue
		}
		r.fired = true
		ffs.injected++
		return fmt.Errorf("%s %s: %w", opName(op), path, r.Err), r.ShortWrite
	}
	return nil, false
}

func opName(op FaultOp) string {
	switch op {
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpReadDir:
		return "readdir"
	case OpMkdir:
		return "mkdir"
	}
	return "op"
}

func (ffs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := ffs.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := ffs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, ffs: ffs}, nil
}

func (ffs *FaultFS) Open(name string) (File, error) {
	if err, _ := ffs.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := ffs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, ffs: ffs}, nil
}

func (ffs *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := ffs.check(OpOpen, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := ffs.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, ffs: ffs}, nil
}

func (ffs *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := ffs.check(OpRename, newpath); err != nil {
		return err
	}
	return ffs.inner.Rename(oldpath, newpath)
}

func (ffs *FaultFS) Remove(name string) error {
	if err, _ := ffs.check(OpRemove, name); err != nil {
		return err
	}
	return ffs.inner.Remove(name)
}

func (ffs *FaultFS) Truncate(name string, size int64) error {
	if err, _ := ffs.check(OpTruncate, name); err != nil {
		return err
	}
	return ffs.inner.Truncate(name, size)
}

func (ffs *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := ffs.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return ffs.inner.ReadDir(name)
}

func (ffs *FaultFS) ReadFile(name string) ([]byte, error) {
	if err, _ := ffs.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return ffs.inner.ReadFile(name)
}

func (ffs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := ffs.check(OpMkdir, path); err != nil {
		return err
	}
	return ffs.inner.MkdirAll(path, perm)
}

func (ffs *FaultFS) SyncDir(dir string) error {
	if err, _ := ffs.check(OpSync, dir); err != nil {
		return err
	}
	return ffs.inner.SyncDir(dir)
}

// faultFile threads per-descriptor operations back through the rule
// set, keyed by the file's name.
type faultFile struct {
	f   File
	ffs *FaultFS
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err, _ := f.ffs.check(OpRead, f.f.Name()); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := f.ffs.check(OpRead, f.f.Name()); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	err, short := f.ffs.check(OpWrite, f.f.Name())
	if err != nil {
		if short && len(p) > 1 {
			// Torn write: half the buffer reaches the file, then the
			// device gives out. The on-disk tail ends mid-frame.
			n, werr := f.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	if err, _ := f.ffs.check(OpSync, f.f.Name()); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error {
	if err, _ := f.ffs.check(OpClose, f.f.Name()); err != nil {
		// The descriptor still needs releasing or long chaos runs leak.
		f.f.Close()
		return err
	}
	return f.f.Close()
}

func (f *faultFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
func (f *faultFile) Name() string               { return f.f.Name() }
func (f *faultFile) Fd() uintptr                { return f.f.Fd() }
