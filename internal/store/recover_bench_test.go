package store

// recover_bench_test.go: the startup-cost benchmark the segment tier
// exists for (committed to BENCH_8.json). Three disk layouts holding
// the same collection are reopened at 10k and 100k documents:
//
//	wal-replay     no base at all — every record reparsed and
//	               reindexed (the pre-snapshot worst case; O(n))
//	snapshot-load  the legacy snap-*.snap layout — one file, but
//	               still parsed and indexed document by document (O(n))
//	segment-open   the segment layout — the file is mapped and its
//	               footer CRC checked; no JSON parse, no posting list
//	               rebuilt (O(1) in the document count, O(n) only in
//	               the CRC sweep of file bytes)
//
// segment-open is in bench-diff's hot-path allowlist: Open latency is
// a serving property now (a restart at 100k documents must not cost a
// 100k-document replay).

import (
	"fmt"
	"os"
	"testing"

	"jsonlogic/internal/jsontree"
)

var recoverBenchSizes = []int{10000, 100000}

// seedRecoverDir fills a fresh durable store with n documents and
// closes it, leaving the requested layout behind.
func seedRecoverDir(b *testing.B, opts Options, n int, layout string) {
	b.Helper()
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`{"sensor":"s%d","value":%d,"nested":{"a":[%d,"x"]}}`, i%32, i, i%100)
		if err := s.Put(fmt.Sprintf("doc%07d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	if layout != "wal-replay" {
		if err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	if layout == "snapshot-load" {
		// Rewrite each shard's segment as the legacy snapshot it
		// replaced, so the benchmark measures the old layout's load cost
		// on the same recovery code.
		for i, sh := range s.shards {
			docs := make(map[string]*jsontree.Tree, sh.live())
			if err := sh.each(func(id string, t *jsontree.Tree) {
				docs[id] = t
			}); err != nil {
				b.Fatal(err)
			}
			sd := s.dur.shardDir(i)
			if err := writeSnapshot(osFS{}, sd, 1, docs, s.seq.Load()); err != nil {
				b.Fatal(err)
			}
			if err := os.Remove(segFilePath(sd, 1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreRecover measures Open against the three layouts. The
// acceptance bar for the segment tier: segment-open at 100k documents
// at least 10× faster than wal-replay.
func BenchmarkStoreRecover(b *testing.B) {
	for _, layout := range []string{"wal-replay", "snapshot-load", "segment-open"} {
		for _, n := range recoverBenchSizes {
			b.Run(fmt.Sprintf("%s/docs=%d", layout, n), func(b *testing.B) {
				opts := Options{Shards: 16, DataDir: b.TempDir(), Fsync: FsyncOff, SnapshotEvery: -1}
				seedRecoverDir(b, opts, n, layout)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := Open(opts)
					if err != nil {
						b.Fatal(err)
					}
					if s.Len() != n {
						b.Fatalf("recovered %d docs, want %d", s.Len(), n)
					}
					if err := s.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
