package jsontree

import (
	"fmt"
	"strings"

	"jsonlogic/internal/jsonval"
)

// PathFact is a structural condition on a JSON tree, anchored at the
// root: the node reached by Steps exists and, optionally, has a given
// kind or roots a given subtree value. Path facts are the currency of
// the store's inverted path index — query front ends extract the facts
// that are *necessary* for a document to match (jnl.RequiredFacts,
// jsl.RequiredFacts, jsonpath.Path.RequiredPrefix, and the plan-level
// engine wrappers), and the index answers "which documents satisfy this
// fact" with a posting list. A fact therefore never needs to be
// sufficient; the store re-verifies every candidate with the reference
// evaluator.
type PathFact struct {
	// Steps is the exact navigation path from the root. An empty path
	// denotes the root itself.
	Steps []Step
	// HasClass restricts the kind of the reached node to Class.
	HasClass bool
	// Class is the required node kind when HasClass is set.
	Class Kind
	// Value, when non-nil, requires json(node) = Value. Extractors only
	// emit scalar values here (composite equalities are decomposed into
	// per-member facts), matching the index's leaf value terms.
	Value *jsonval.Value
}

// Holds reports whether the tree satisfies the fact: the node at Steps
// exists and meets the class and value restrictions. It is the
// reference semantics the index terms approximate.
func (f PathFact) Holds(t *Tree) bool {
	n := t.Navigate(t.Root(), f.Steps...)
	if n == InvalidNode {
		return false
	}
	if f.HasClass && t.Kind(n) != f.Class {
		return false
	}
	if f.Value != nil {
		if t.SubtreeHash(n) != f.Value.Hash() {
			return false
		}
		return jsonval.Equal(t.Value(n), f.Value)
	}
	return true
}

// Depth returns the number of navigation steps of the fact.
func (f PathFact) Depth() int { return len(f.Steps) }

// String renders the fact for diagnostics, e.g. `/a/0/b kind=number`
// or `/name value="sue"`.
func (f PathFact) String() string {
	var sb strings.Builder
	if len(f.Steps) == 0 {
		sb.WriteByte('$')
	}
	for _, s := range f.Steps {
		sb.WriteByte('/')
		if s.IsKey {
			sb.WriteString(s.Key)
		} else {
			fmt.Fprintf(&sb, "%d", s.Index)
		}
	}
	if f.HasClass {
		fmt.Fprintf(&sb, " kind=%s", f.Class)
	}
	if f.Value != nil {
		fmt.Fprintf(&sb, " value=%s", f.Value)
	}
	return sb.String()
}

// ValueFacts decomposes the condition "the node at steps roots exactly
// the value doc" into index-friendly facts: scalar values become exact
// Value facts, containers become a Class fact plus the recursive facts
// of every member or element. All returned facts are necessary
// conditions of the equality (they deliberately drop the "no extra
// members" half, which an inverted index cannot express).
func ValueFacts(steps []Step, doc *jsonval.Value) []PathFact {
	var facts []PathFact
	appendValueFacts(steps, doc, &facts)
	return facts
}

func appendValueFacts(steps []Step, doc *jsonval.Value, facts *[]PathFact) {
	switch doc.Kind() {
	case jsonval.Number, jsonval.String:
		*facts = append(*facts, PathFact{Steps: steps, Value: doc})
	case jsonval.Object:
		*facts = append(*facts, PathFact{Steps: steps, HasClass: true, Class: ObjectNode})
		for _, m := range doc.Members() {
			appendValueFacts(ExtendSteps(steps, Key(m.Key)), m.Value, facts)
		}
	case jsonval.Array:
		*facts = append(*facts, PathFact{Steps: steps, HasClass: true, Class: ArrayNode})
		for i, e := range doc.Elems() {
			appendValueFacts(ExtendSteps(steps, Index(i)), e, facts)
		}
	}
}

// ExtendSteps returns steps + [s] in a fresh slice, so sibling
// extensions never alias one another's backing arrays — the invariant
// every fact extractor relies on.
func ExtendSteps(steps []Step, s Step) []Step {
	out := make([]Step, len(steps)+1)
	copy(out, steps)
	out[len(steps)] = s
	return out
}
