package jsontree

import (
	"fmt"
	"sort"

	"jsonlogic/internal/jsonval"
)

// Builder constructs a Tree incrementally from a stream of structural
// events, without materializing an intermediate jsonval.Value. It is the
// bridge between the §6 streaming tokenizer and the in-memory evaluators:
// the engine's NDJSON batch path feeds one Builder per worker, calling
// Reset between documents so node arenas are reused.
//
// Events mirror JSON structure: BeginObject/EndObject, BeginArray/
// EndArray, Key (before each object member's value), and the leaf events
// String and Number. Trees produced by a Builder are indistinguishable
// from FromValue construction: children of objects are key-sorted,
// subtree hashes agree with jsonval.Value.Hash, and Tree.Validate holds.
//
// A Builder is not safe for concurrent use; pool one per goroutine.
type Builder struct {
	nodes []node
	// stack holds the node ids of the open containers.
	stack []NodeID
	// pendingKey is the key of the next object member, set by Key.
	pendingKey string
	hasKey     bool
	done       bool
	err        error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Reset discards all state so the Builder can build another tree. The
// node arena's capacity is retained across documents.
func (b *Builder) Reset() {
	b.nodes = b.nodes[:0]
	b.stack = b.stack[:0]
	b.pendingKey = ""
	b.hasKey = false
	b.done = false
	b.err = nil
}

func (b *Builder) fail(format string, args ...any) error {
	if b.err == nil {
		b.err = fmt.Errorf("jsontree: builder: "+format, args...)
	}
	return b.err
}

// begin allocates a node for a value that starts now and attaches it to
// the open container, returning its id.
func (b *Builder) begin(kind Kind) (NodeID, error) {
	if b.err != nil {
		return InvalidNode, b.err
	}
	if b.done {
		return InvalidNode, b.fail("value after the top-level value completed")
	}
	parent := InvalidNode
	key := ""
	pos := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		p := &b.nodes[parent]
		if p.kind == ObjectNode {
			if !b.hasKey {
				return InvalidNode, b.fail("object member without a key")
			}
			key = b.pendingKey
			b.hasKey = false
		} else {
			if b.hasKey {
				return InvalidNode, b.fail("key inside an array")
			}
		}
		pos = int32(len(p.children))
	} else if b.hasKey {
		return InvalidNode, b.fail("key at top level")
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, node{kind: kind, parent: parent, key: key, pos: pos})
	if parent != InvalidNode {
		b.nodes[parent].children = append(b.nodes[parent].children, id)
	}
	return id, nil
}

// finish seals a completed value: leaves seal immediately, containers on
// End. It computes the node's subtree hash/size/height and marks the
// tree done when the root value completes.
func (b *Builder) finish(id NodeID) {
	if b.nodes[id].parent == InvalidNode {
		b.done = true
	}
}

// BeginObject opens an object value.
func (b *Builder) BeginObject() error {
	_, err := b.begin(ObjectNode)
	if err == nil {
		b.stack = append(b.stack, NodeID(len(b.nodes)-1))
	}
	return err
}

// BeginArray opens an array value.
func (b *Builder) BeginArray() error {
	_, err := b.begin(ArrayNode)
	if err == nil {
		b.stack = append(b.stack, NodeID(len(b.nodes)-1))
	}
	return err
}

// Key supplies the key of the next member of the open object.
func (b *Builder) Key(k string) error {
	if b.err != nil {
		return b.err
	}
	if len(b.stack) == 0 || b.nodes[b.stack[len(b.stack)-1]].kind != ObjectNode {
		return b.fail("key %q outside an object", k)
	}
	if b.hasKey {
		return b.fail("two keys in a row (%q, %q)", b.pendingKey, k)
	}
	b.pendingKey = k
	b.hasKey = true
	return nil
}

// String appends a string leaf.
func (b *Builder) String(s string) error {
	id, err := b.begin(StringNode)
	if err != nil {
		return err
	}
	n := &b.nodes[id]
	n.str = s
	n.hash = jsonval.HashString(s)
	n.size = 1
	b.finish(id)
	return nil
}

// Number appends a natural-number leaf.
func (b *Builder) Number(v uint64) error {
	id, err := b.begin(NumberNode)
	if err != nil {
		return err
	}
	n := &b.nodes[id]
	n.num = v
	n.hash = jsonval.HashNumber(v)
	n.size = 1
	b.finish(id)
	return nil
}

// EndObject closes the open object: children are key-sorted (condition 2
// of §3.1 — object edges form a key, so order is canonicalized the same
// way FromValue does), positions re-labelled, and the subtree hash, size
// and height computed.
func (b *Builder) EndObject() error {
	if b.err != nil {
		return b.err
	}
	if len(b.stack) == 0 {
		return b.fail("EndObject with no open container")
	}
	id := b.stack[len(b.stack)-1]
	if b.nodes[id].kind != ObjectNode {
		return b.fail("EndObject closing an array")
	}
	if b.hasKey {
		return b.fail("object ends after key %q with no value", b.pendingKey)
	}
	b.stack = b.stack[:len(b.stack)-1]

	children := b.nodes[id].children
	sort.Slice(children, func(i, j int) bool {
		return b.nodes[children[i]].key < b.nodes[children[j]].key
	})
	var oh jsonval.ObjectHasher
	size, height := int32(1), int32(0)
	for i, c := range children {
		cn := &b.nodes[c]
		if i > 0 && b.nodes[children[i-1]].key == cn.key {
			return b.fail("duplicate object key %q", cn.key)
		}
		cn.pos = int32(i)
		oh.Add(cn.key, cn.hash)
		size += cn.size
		if h := cn.height + 1; h > height {
			height = h
		}
	}
	n := &b.nodes[id]
	n.hash = oh.Sum()
	n.size = size
	n.height = height
	b.finish(id)
	return nil
}

// EndArray closes the open array.
func (b *Builder) EndArray() error {
	if b.err != nil {
		return b.err
	}
	if len(b.stack) == 0 {
		return b.fail("EndArray with no open container")
	}
	id := b.stack[len(b.stack)-1]
	if b.nodes[id].kind != ArrayNode {
		return b.fail("EndArray closing an object")
	}
	b.stack = b.stack[:len(b.stack)-1]

	var ah jsonval.ArrayHasher
	size, height := int32(1), int32(0)
	for _, c := range b.nodes[id].children {
		cn := &b.nodes[c]
		ah.Add(cn.hash)
		size += cn.size
		if h := cn.height + 1; h > height {
			height = h
		}
	}
	n := &b.nodes[id]
	n.hash = ah.Sum()
	n.size = size
	n.height = height
	b.finish(id)
	return nil
}

// Tree returns the completed tree. It fails if no value was built, a
// container is still open, or any event errored. The returned tree owns
// its nodes: calling Reset and building again does not disturb it.
func (b *Builder) Tree() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.done {
		if len(b.stack) > 0 {
			return nil, b.fail("%d containers still open", len(b.stack))
		}
		return nil, b.fail("no value built")
	}
	nodes := make([]node, len(b.nodes))
	copy(nodes, b.nodes)
	return &Tree{nodes: nodes}, nil
}
