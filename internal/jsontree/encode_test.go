package jsontree_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

// TestWriteToMatchesString is the property test pinning the streaming
// encoder to the reference serializer: on randomized trees (and a set
// of nasty hand-built edge cases) WriteTo must produce String()
// byte-for-byte and report exactly that many bytes written.
func TestWriteToMatchesString(t *testing.T) {
	check := func(t *testing.T, tr *jsontree.Tree) {
		t.Helper()
		want := tr.String()
		var sb strings.Builder
		n, err := tr.WriteTo(&sb)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if sb.String() != want {
			t.Fatalf("WriteTo = %q, String = %q", sb.String(), want)
		}
		if n != int64(len(want)) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, len(want))
		}
	}

	r := rand.New(rand.NewSource(71))
	for i := 0; i < 500; i++ {
		o := gen.DefaultDocOptions()
		o.Depth = 1 + r.Intn(5)
		o.Fanout = 1 + r.Intn(6)
		check(t, jsontree.FromValue(gen.Document(r, o)))
	}

	// Edge cases the generator's tame alphabet never produces:
	// escapes, control characters, unicode, empty containers, nesting
	// deeper than the write buffer is wide.
	nasty := []*jsonval.Value{
		jsonval.Num(0),
		jsonval.Num(18446744073709551615),
		jsonval.Str(""),
		jsonval.Str("line\nbreak\ttab\rret \"quoted\" back\\slash"),
		jsonval.Str("control\x01\x1f bytes"),
		jsonval.Str("ünïcödé ☃ 日本語"),
		jsonval.Arr(),
		jsonval.MustObj(),
		jsonval.MustObj(
			jsonval.Member{Key: "", Value: jsonval.Str("empty key")},
			jsonval.Member{Key: "b\"\\\n", Value: jsonval.Arr(jsonval.Num(1), jsonval.Str("x"))},
			jsonval.Member{Key: "a", Value: jsonval.MustObj()},
		),
	}
	deep := jsonval.Str("leaf")
	for i := 0; i < 2000; i++ {
		deep = jsonval.Arr(deep)
	}
	nasty = append(nasty, deep)
	big := make([]*jsonval.Value, 3000)
	for i := range big {
		big[i] = jsonval.Num(uint64(i))
	}
	nasty = append(nasty, jsonval.Arr(big...))
	for _, v := range nasty {
		check(t, jsontree.FromValue(v))
	}
}

// failAfter fails every write once off bytes have been accepted.
type failAfter struct {
	n    int
	left int
}

var errSinkClosed = errors.New("sink closed")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errSinkClosed
	}
	if len(p) > f.left {
		n := f.left
		f.left = 0
		f.n += n
		return n, errSinkClosed
	}
	f.left -= len(p)
	f.n += len(p)
	return len(p), nil
}

func TestWriteToPropagatesWriteError(t *testing.T) {
	big := make([]*jsonval.Value, 5000)
	for i := range big {
		big[i] = jsonval.Str("padding-padding-padding")
	}
	tr := jsontree.FromValue(jsonval.Arr(big...))
	sink := &failAfter{left: 6000}
	n, err := tr.WriteTo(sink)
	if !errors.Is(err, errSinkClosed) {
		t.Fatalf("WriteTo error = %v, want sink error", err)
	}
	if n != int64(sink.n) {
		t.Fatalf("WriteTo reported %d bytes, sink accepted %d", n, sink.n)
	}
	if n > 6000 {
		t.Fatalf("WriteTo claims %d bytes past a 6000-byte sink", n)
	}
}
