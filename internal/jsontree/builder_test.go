package jsontree

import (
	"math/rand"
	"testing"

	"jsonlogic/internal/jsonval"
)

// feedValue drives a Builder with the event stream of a value, the same
// traversal a tokenizer would produce (document member order, not
// key-sorted).
func feedValue(t *testing.T, b *Builder, v *jsonval.Value) {
	t.Helper()
	var feed func(v *jsonval.Value)
	feed = func(v *jsonval.Value) {
		var err error
		switch v.Kind() {
		case jsonval.Number:
			err = b.Number(v.Num())
		case jsonval.String:
			err = b.String(v.Str())
		case jsonval.Array:
			err = b.BeginArray()
			for _, e := range v.Elems() {
				feed(e)
			}
			if err == nil {
				err = b.EndArray()
			}
		case jsonval.Object:
			err = b.BeginObject()
			for _, m := range v.Members() {
				if err == nil {
					err = b.Key(m.Key)
				}
				feed(m.Value)
			}
			if err == nil {
				err = b.EndObject()
			}
		}
		if err != nil {
			t.Fatalf("builder event failed: %v", err)
		}
	}
	feed(v)
}

// TestBuilderMatchesFromValue: a Builder-made tree must be structurally
// identical to FromValue — same value, same subtree hashes, valid per
// §3.1 — across many random documents, reusing one Builder throughout.
func TestBuilderMatchesFromValue(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	b := NewBuilder()
	for i := 0; i < 300; i++ {
		v := randomValue(r, 4)
		b.Reset()
		feedValue(t, b, v)
		built, err := b.Tree()
		if err != nil {
			t.Fatalf("doc %d: Tree: %v", i, err)
		}
		ref := FromValue(v)
		if err := built.Validate(); err != nil {
			t.Fatalf("doc %d: built tree invalid: %v\n%s", i, err, built.Dump())
		}
		if built.Len() != ref.Len() {
			t.Fatalf("doc %d: Len %d != %d", i, built.Len(), ref.Len())
		}
		if !jsonval.Equal(built.Value(built.Root()), v) {
			t.Fatalf("doc %d: value mismatch:\nbuilt %s\nwant  %s", i, built.Value(built.Root()), v)
		}
		if built.SubtreeHash(built.Root()) != v.Hash() {
			t.Fatalf("doc %d: root hash %#x != value hash %#x", i, built.SubtreeHash(built.Root()), v.Hash())
		}
		if built.SubtreeSize(built.Root()) != ref.SubtreeSize(ref.Root()) {
			t.Fatalf("doc %d: size mismatch", i)
		}
		if built.Height(built.Root()) != ref.Height(ref.Root()) {
			t.Fatalf("doc %d: height mismatch", i)
		}
	}
}

// TestBuilderObjectCanonicalization: members fed in any order produce
// key-sorted children with correct positions and the same hash.
func TestBuilderObjectCanonicalization(t *testing.T) {
	b := NewBuilder()
	for _, err := range []error{
		b.BeginObject(), b.Key("zebra"), b.Number(1),
		b.Key("apple"), b.String("x"), b.Key("mid"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := b.BeginArray(); err != nil {
		t.Fatal(err)
	}
	if err := b.EndArray(); err != nil {
		t.Fatal(err)
	}
	if err := b.EndObject(); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	kids := tr.Children(root)
	if len(kids) != 3 {
		t.Fatalf("want 3 children, got %d", len(kids))
	}
	wantKeys := []string{"apple", "mid", "zebra"}
	for i, c := range kids {
		if tr.EdgeKey(c) != wantKeys[i] {
			t.Errorf("child %d key %q, want %q", i, tr.EdgeKey(c), wantKeys[i])
		}
		if tr.EdgePos(c) != i {
			t.Errorf("child %d pos %d, want %d", i, tr.EdgePos(c), i)
		}
	}
	if got := tr.ChildByKey(root, "apple"); got == InvalidNode {
		t.Error("ChildByKey(apple) failed after canonicalization")
	}
}

// TestBuilderErrors: malformed event sequences are rejected, not built.
func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		feed func(b *Builder) error
	}{
		{"empty", func(b *Builder) error { return nil }},
		{"open object", func(b *Builder) error { return b.BeginObject() }},
		{"key at top", func(b *Builder) error { return b.Key("a") }},
		{"value without key", func(b *Builder) error {
			if err := b.BeginObject(); err != nil {
				return err
			}
			return b.Number(1)
		}},
		{"dangling key", func(b *Builder) error {
			if err := b.BeginObject(); err != nil {
				return err
			}
			if err := b.Key("a"); err != nil {
				return err
			}
			return b.EndObject()
		}},
		{"duplicate key", func(b *Builder) error {
			for _, err := range []error{b.BeginObject(), b.Key("a"), b.Number(1), b.Key("a"), b.Number(2)} {
				if err != nil {
					return err
				}
			}
			return b.EndObject()
		}},
		{"mismatched close", func(b *Builder) error {
			if err := b.BeginArray(); err != nil {
				return err
			}
			return b.EndObject()
		}},
		{"second root", func(b *Builder) error {
			if err := b.Number(1); err != nil {
				return err
			}
			return b.Number(2)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			err := tc.feed(b)
			if err == nil {
				_, err = b.Tree()
			}
			if err == nil {
				t.Fatal("want error, got none")
			}
		})
	}
}

// TestBuilderResetIsolation: a tree returned by Tree must not be
// disturbed by further building on the same (reset) Builder.
func TestBuilderResetIsolation(t *testing.T) {
	b := NewBuilder()
	feedValue(t, b, jsonval.MustParse(`{"a":[1,2],"b":"x"}`))
	first, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	want := first.String()
	b.Reset()
	feedValue(t, b, jsonval.MustParse(`{"zz":{"deep":[9,8,7,6]}}`))
	if _, err := b.Tree(); err != nil {
		t.Fatal(err)
	}
	if first.String() != want {
		t.Fatalf("first tree mutated by reuse: %s != %s", first.String(), want)
	}
	if err := first.Validate(); err != nil {
		t.Fatalf("first tree invalid after reuse: %v", err)
	}
}
