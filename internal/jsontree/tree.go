// Package jsontree implements the JSON tree data model of §3 of the
// paper: a structure J = (D, Obj, Arr, Str, Int, A, O, val) over a tree
// domain D ⊆ N*, where
//
//   - D is partitioned into object, array, string and number nodes,
//   - O ⊆ Obj × Σ* × D is the object-child relation, labelled by keys
//     that are unique per node (JSON trees are deterministic),
//   - A ⊆ Arr × N × D is the array-child relation, labelled by positions,
//   - val assigns string and number values to leaf Str/Int nodes.
//
// Trees are stored in a flat arena indexed by NodeID; every node carries
// its subtree's structural hash, size and height, so the paper's
// json(n) = json(n') subtree comparisons are cheap. The package validates
// the five well-formedness conditions of §3.1 and converts between trees
// and jsonval values.
package jsontree

import (
	"fmt"
	"sort"
	"strings"

	"jsonlogic/internal/jsonval"
)

// NodeID identifies a node of a Tree. The root is always node 0 of a
// non-empty tree. InvalidNode is the zero-length "no node" sentinel.
type NodeID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Kind is the type of a node: one of the four parts of the domain
// partition of §3.1.
type Kind uint8

const (
	// ObjectNode is a node in Obj.
	ObjectNode Kind = iota
	// ArrayNode is a node in Arr.
	ArrayNode
	// StringNode is a leaf node in Str carrying a string value.
	StringNode
	// NumberNode is a leaf node in Int carrying a natural number.
	NumberNode
)

// String returns the JSON Schema type name for the kind.
func (k Kind) String() string {
	switch k {
	case ObjectNode:
		return "object"
	case ArrayNode:
		return "array"
	case StringNode:
		return "string"
	case NumberNode:
		return "number"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

type node struct {
	kind     Kind
	parent   NodeID
	key      string // label of the O-edge from parent (object parents)
	pos      int32  // label of the A-edge from parent, and sibling index
	children []NodeID
	str      string // val for StringNode
	num      uint64 // val for NumberNode
	hash     uint64 // structural hash of the subtree json(n)
	size     int32  // number of nodes in the subtree
	height   int32  // height of the subtree
}

// Tree is an immutable JSON tree. Construct with FromValue or Parse.
type Tree struct {
	nodes []node
}

// FromValue builds the JSON tree representing the value v, per the
// construction of §3.1: one node per nested JSON value, object edges
// labelled by keys (sorted for O(log k) key lookup — objects are
// unordered, so the order of object children is not meaningful), array
// edges labelled by position.
func FromValue(v *jsonval.Value) *Tree {
	t := &Tree{nodes: make([]node, 0, v.Size())}
	t.build(v, InvalidNode, "", 0)
	return t
}

// Parse parses a JSON document and returns its tree. It is shorthand for
// FromValue(jsonval.Parse(input)).
func Parse(input string) (*Tree, error) {
	v, err := jsonval.Parse(input)
	if err != nil {
		return nil, err
	}
	return FromValue(v), nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(input string) *Tree {
	t, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) build(v *jsonval.Value, parent NodeID, key string, pos int32) NodeID {
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, node{parent: parent, key: key, pos: pos, hash: v.Hash()})
	switch v.Kind() {
	case jsonval.Number:
		t.nodes[id].kind = NumberNode
		t.nodes[id].num = v.Num()
		t.nodes[id].size = 1
	case jsonval.String:
		t.nodes[id].kind = StringNode
		t.nodes[id].str = v.Str()
		t.nodes[id].size = 1
	case jsonval.Array:
		t.nodes[id].kind = ArrayNode
		children := make([]NodeID, v.Len())
		size, height := int32(1), int32(0)
		for i, e := range v.Elems() {
			c := t.build(e, id, "", int32(i))
			children[i] = c
			size += t.nodes[c].size
			if h := t.nodes[c].height + 1; h > height {
				height = h
			}
		}
		t.nodes[id].children = children
		t.nodes[id].size = size
		t.nodes[id].height = height
	case jsonval.Object:
		t.nodes[id].kind = ObjectNode
		members := append([]jsonval.Member(nil), v.Members()...)
		sort.Slice(members, func(i, j int) bool { return members[i].Key < members[j].Key })
		children := make([]NodeID, len(members))
		size, height := int32(1), int32(0)
		for i, m := range members {
			c := t.build(m.Value, id, m.Key, int32(i))
			children[i] = c
			size += t.nodes[c].size
			if h := t.nodes[c].height + 1; h > height {
				height = h
			}
		}
		t.nodes[id].children = children
		t.nodes[id].size = size
		t.nodes[id].height = height
	}
	return id
}

// Root returns the root node of the tree (the node with tree-domain
// address ε).
func (t *Tree) Root() NodeID { return 0 }

// Len returns the number of nodes in the tree, |J|.
func (t *Tree) Len() int { return len(t.nodes) }

// Kind returns the kind of node n.
func (t *Tree) Kind(n NodeID) Kind { return t.nodes[n].kind }

// Parent returns the parent of n, or InvalidNode for the root.
func (t *Tree) Parent(n NodeID) NodeID { return t.nodes[n].parent }

// NumChildren returns the number of children of n.
func (t *Tree) NumChildren(n NodeID) int { return len(t.nodes[n].children) }

// Children returns the children of n in sibling order (key-sorted for
// objects, positional for arrays). The slice must not be modified.
func (t *Tree) Children(n NodeID) []NodeID { return t.nodes[n].children }

// ChildByKey returns the child of object node n reached by the O-edge
// labelled key, or InvalidNode. Because JSON trees are deterministic
// (condition 2 of §3.1: the first two components of O form a key) there
// is at most one such child; lookup is O(log k).
func (t *Tree) ChildByKey(n NodeID, key string) NodeID {
	if t.nodes[n].kind != ObjectNode {
		return InvalidNode
	}
	children := t.nodes[n].children
	lo, hi := 0, len(children)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.nodes[children[mid]].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(children) && t.nodes[children[lo]].key == key {
		return children[lo]
	}
	return InvalidNode
}

// ChildAt returns the child of array node n reached by the A-edge
// labelled i (the i-th element, 0-based), or InvalidNode. Negative i
// counts from the end (-1 is the last element), per the paper's remark on
// dual array access.
func (t *Tree) ChildAt(n NodeID, i int) NodeID {
	if t.nodes[n].kind != ArrayNode {
		return InvalidNode
	}
	children := t.nodes[n].children
	if i < 0 {
		i += len(children)
	}
	if i < 0 || i >= len(children) {
		return InvalidNode
	}
	return children[i]
}

// EdgeKey returns the key labelling the O-edge into n, valid when n's
// parent is an object node.
func (t *Tree) EdgeKey(n NodeID) string { return t.nodes[n].key }

// EdgePos returns the position labelling the A-edge into n (also n's
// sibling index under any parent).
func (t *Tree) EdgePos(n NodeID) int { return int(t.nodes[n].pos) }

// StringVal returns val(n) for a string node.
func (t *Tree) StringVal(n NodeID) string {
	if t.nodes[n].kind != StringNode {
		panic("jsontree: StringVal on " + t.nodes[n].kind.String() + " node")
	}
	return t.nodes[n].str
}

// NumberVal returns val(n) for a number node.
func (t *Tree) NumberVal(n NodeID) uint64 {
	if t.nodes[n].kind != NumberNode {
		panic("jsontree: NumberVal on " + t.nodes[n].kind.String() + " node")
	}
	return t.nodes[n].num
}

// SubtreeSize returns |json(n)|, the number of nodes under n inclusive.
func (t *Tree) SubtreeSize(n NodeID) int { return int(t.nodes[n].size) }

// Height returns the height of the subtree rooted at n.
func (t *Tree) Height(n NodeID) int { return int(t.nodes[n].height) }

// SubtreeHash returns the structural hash of json(n). Nodes with equal
// subtrees have equal hashes.
func (t *Tree) SubtreeHash(n NodeID) uint64 { return t.nodes[n].hash }

// SubtreeEqual reports whether json(m) = json(n): the subtrees rooted at
// m and n represent the same JSON value (objects unordered, arrays
// ordered). It first compares hashes and sizes and then verifies
// structurally, so a true result never relies on hashes alone.
func (t *Tree) SubtreeEqual(m, n NodeID) bool {
	if m == n {
		return true
	}
	a, b := &t.nodes[m], &t.nodes[n]
	if a.hash != b.hash || a.size != b.size || a.kind != b.kind {
		return false
	}
	return t.subtreeEqualRec(m, n)
}

// SubtreeEqualNaive compares json(m) and json(n) without the hash
// short-circuit, for the subtree-equality ablation benchmark.
func (t *Tree) SubtreeEqualNaive(m, n NodeID) bool {
	if m == n {
		return true
	}
	return t.subtreeEqualRec(m, n)
}

func (t *Tree) subtreeEqualRec(m, n NodeID) bool {
	a, b := &t.nodes[m], &t.nodes[n]
	if a.kind != b.kind || len(a.children) != len(b.children) {
		return false
	}
	switch a.kind {
	case NumberNode:
		return a.num == b.num
	case StringNode:
		return a.str == b.str
	case ArrayNode:
		for i := range a.children {
			if !t.subtreeEqualRec(a.children[i], b.children[i]) {
				return false
			}
		}
		return true
	case ObjectNode:
		// Object children are key-sorted, so equality is positional.
		for i := range a.children {
			if t.nodes[a.children[i]].key != t.nodes[b.children[i]].key {
				return false
			}
			if !t.subtreeEqualRec(a.children[i], b.children[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Value reconstructs the JSON value json(n) of the subtree rooted at n.
func (t *Tree) Value(n NodeID) *jsonval.Value {
	nd := &t.nodes[n]
	switch nd.kind {
	case NumberNode:
		return jsonval.Num(nd.num)
	case StringNode:
		return jsonval.Str(nd.str)
	case ArrayNode:
		elems := make([]*jsonval.Value, len(nd.children))
		for i, c := range nd.children {
			elems[i] = t.Value(c)
		}
		return jsonval.Arr(elems...)
	case ObjectNode:
		members := make([]jsonval.Member, len(nd.children))
		for i, c := range nd.children {
			members[i] = jsonval.Member{Key: t.nodes[c].key, Value: t.Value(c)}
		}
		return jsonval.MustObj(members...)
	}
	panic("jsontree: unknown node kind")
}

// ChildrenInRange returns the positional children of n with sibling
// index in [lo, hi], clamping lo below zero and treating any hi at or
// beyond the last index (including "infinity" sentinels) as open; an
// empty interval (hi < lo) yields nil. It is the one shared
// implementation of the interval-modality semantics the evaluators
// (jsl, qir) previously each duplicated. The returned slice aliases
// the node's child array and must not be modified.
func (t *Tree) ChildrenInRange(n NodeID, lo, hi int) []NodeID {
	children := t.nodes[n].children
	if lo < 0 {
		lo = 0
	}
	if lo >= len(children) {
		return nil
	}
	if hi >= len(children)-1 {
		return children[lo:]
	}
	if hi < lo {
		return nil
	}
	return children[lo : hi+1]
}

// EqualsValue reports whether json(n) equals the value v, comparing
// structurally without materializing the subtree. It performs no hash
// or size short-circuit of its own; callers on hot paths precede it
// with SubtreeHash/SubtreeSize checks. It is the one shared
// implementation of the comparison the evaluators (jnl, jsl, qir,
// datalog) previously each duplicated.
func (t *Tree) EqualsValue(n NodeID, v *jsonval.Value) bool {
	switch t.Kind(n) {
	case NumberNode:
		return v.IsNumber() && v.Num() == t.NumberVal(n)
	case StringNode:
		return v.IsString() && v.Str() == t.StringVal(n)
	case ArrayNode:
		if !v.IsArray() || v.Len() != t.NumChildren(n) {
			return false
		}
		for i, c := range t.Children(n) {
			e, _ := v.Elem(i)
			if !t.EqualsValue(c, e) {
				return false
			}
		}
		return true
	case ObjectNode:
		if !v.IsObject() || v.Len() != t.NumChildren(n) {
			return false
		}
		for _, c := range t.Children(n) {
			m, ok := v.Member(t.EdgeKey(c))
			if !ok || !t.EqualsValue(c, m) {
				return false
			}
		}
		return true
	}
	return false
}

// Path returns the tree-domain address of n as the sequence of sibling
// indices from the root, i.e. the element of N* identifying n in D.
func (t *Tree) Path(n NodeID) []int {
	var rev []int
	for n != 0 {
		rev = append(rev, int(t.nodes[n].pos))
		n = t.nodes[n].parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Navigate applies the JSON navigation instruction path, a sequence of
// steps from the root. Each step is either a key (for objects) or an
// index (for arrays). It returns InvalidNode if any step fails.
func (t *Tree) Navigate(n NodeID, steps ...Step) NodeID {
	for _, s := range steps {
		if n == InvalidNode {
			return InvalidNode
		}
		if s.IsKey {
			n = t.ChildByKey(n, s.Key)
		} else {
			n = t.ChildAt(n, s.Index)
		}
	}
	return n
}

// Step is one JSON navigation instruction: J[key] or J[i] (§2).
type Step struct {
	IsKey bool
	Key   string
	Index int
}

// Key returns the navigation step J[key].
func Key(k string) Step { return Step{IsKey: true, Key: k} }

// Index returns the navigation step J[i].
func Index(i int) Step { return Step{Index: i} }

// Walk calls fn for every node of the tree in depth-first preorder.
func (t *Tree) Walk(fn func(NodeID)) {
	for i := range t.nodes {
		fn(NodeID(i))
	}
}

// Nodes returns all node ids in preorder. Node ids are dense in
// [0, Len()), assigned in preorder, so iteration by index is equivalent.
func (t *Tree) Nodes() []NodeID {
	ids := make([]NodeID, len(t.nodes))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// UniqueChildren reports whether all children of array node n are
// pairwise distinct JSON values — the Unique node test of §5.2. The
// general contract is quadratic pairwise comparison; this implementation
// buckets by subtree hash first, comparing structurally only within
// buckets, and is the default used by the JSL evaluator. See
// UniqueChildrenNaive for the literal quadratic algorithm.
func (t *Tree) UniqueChildren(n NodeID) bool {
	children := t.nodes[n].children
	if len(children) < 2 {
		return true
	}
	buckets := make(map[uint64][]NodeID, len(children))
	for _, c := range children {
		h := t.nodes[c].hash
		for _, prev := range buckets[h] {
			if t.SubtreeEqual(prev, c) {
				return false
			}
		}
		buckets[h] = append(buckets[h], c)
	}
	return true
}

// UniqueChildrenNaive is the quadratic pairwise implementation of the
// Unique test, kept for the ablation benchmark.
func (t *Tree) UniqueChildrenNaive(n NodeID) bool {
	children := t.nodes[n].children
	for i := 0; i < len(children); i++ {
		for j := i + 1; j < len(children); j++ {
			if t.SubtreeEqualNaive(children[i], children[j]) {
				return false
			}
		}
	}
	return true
}

// String renders the subtree at the root as compact JSON.
func (t *Tree) String() string { return t.Value(t.Root()).String() }

// Dump renders the tree structure with one line per node, useful in
// tests and debugging: address, kind, edge label and value.
func (t *Tree) Dump() string {
	var sb strings.Builder
	var rec func(n NodeID, depth int)
	rec = func(n NodeID, depth int) {
		nd := &t.nodes[n]
		sb.WriteString(strings.Repeat("  ", depth))
		if n != 0 {
			if t.nodes[nd.parent].kind == ObjectNode {
				fmt.Fprintf(&sb, "%q -> ", nd.key)
			} else {
				fmt.Fprintf(&sb, "%d -> ", nd.pos)
			}
		}
		switch nd.kind {
		case ObjectNode:
			sb.WriteString("object")
		case ArrayNode:
			sb.WriteString("array")
		case StringNode:
			fmt.Fprintf(&sb, "string %q", nd.str)
		case NumberNode:
			fmt.Fprintf(&sb, "number %d", nd.num)
		}
		sb.WriteByte('\n')
		for _, c := range nd.children {
			rec(c, depth+1)
		}
	}
	rec(0, 0)
	return sb.String()
}

// Validate checks the five well-formedness conditions of §3.1 against the
// internal representation and returns the first violation found, or nil.
// FromValue always produces valid trees; Validate exists so tests can
// assert the invariants and so hand-constructed trees can be vetted.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("jsontree: empty tree has no root")
	}
	for i := range t.nodes {
		n := NodeID(i)
		nd := &t.nodes[n]
		switch nd.kind {
		case StringNode, NumberNode:
			// Condition 4: strings and numbers are leaves.
			if len(nd.children) != 0 {
				return fmt.Errorf("jsontree: node %d: %s node has children", n, nd.kind)
			}
		case ObjectNode:
			// Conditions 1-2: object edges carry keys, keys unique.
			seen := make(map[string]struct{}, len(nd.children))
			for _, c := range nd.children {
				k := t.nodes[c].key
				if _, dup := seen[k]; dup {
					return fmt.Errorf("jsontree: node %d: duplicate key %q", n, k)
				}
				seen[k] = struct{}{}
				if t.nodes[c].parent != n {
					return fmt.Errorf("jsontree: node %d: child %d has wrong parent", n, c)
				}
			}
		case ArrayNode:
			// Condition 3: array edge labels are the positions 0..k-1.
			for i, c := range nd.children {
				if int(t.nodes[c].pos) != i {
					return fmt.Errorf("jsontree: node %d: child %d at position %d labelled %d", n, c, i, t.nodes[c].pos)
				}
				if t.nodes[c].parent != n {
					return fmt.Errorf("jsontree: node %d: child %d has wrong parent", n, c)
				}
			}
		}
	}
	return nil
}
