package jsontree

import (
	"bufio"
	"io"
	"strconv"

	"jsonlogic/internal/jsonval"
)

// WriteTo writes the compact JSON rendering of the tree to w,
// node-at-a-time straight out of the arena — no jsonval.Value
// materialization and no whole-document string, so serving a large
// document costs a 4KiB buffer instead of an allocation the size of
// the document. The output is byte-for-byte Tree.String() (pinned by
// a property test against randomized trees); object members appear in
// the tree's key-sorted child order, exactly as String renders them.
//
// WriteTo implements io.WriterTo: it returns the number of bytes
// written to w and the first write error. On error the output is
// truncated mid-document; encoding stops at the next node boundary.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	enc := encoder{t: t, bw: bufio.NewWriterSize(cw, 4096), cw: cw}
	enc.node(t.Root())
	err := enc.bw.Flush()
	return cw.n, err
}

// encoder is the streaming serializer's state: the buffered sink and
// a number scratch buffer reused across nodes.
type encoder struct {
	t       *Tree
	bw      *bufio.Writer
	cw      *countWriter
	scratch [20]byte // fits a uint64 in decimal
}

func (e *encoder) node(n NodeID) {
	nd := &e.t.nodes[n]
	switch nd.kind {
	case NumberNode:
		e.bw.Write(strconv.AppendUint(e.scratch[:0], nd.num, 10))
	case StringNode:
		jsonval.WriteQuoted(e.bw, nd.str)
	case ArrayNode:
		if len(nd.children) == 0 {
			e.bw.WriteString("[]")
			return
		}
		e.bw.WriteByte('[')
		for i, c := range nd.children {
			if i > 0 {
				e.bw.WriteByte(',')
			}
			e.node(c)
			if e.cw.err != nil {
				return
			}
		}
		e.bw.WriteByte(']')
	case ObjectNode:
		if len(nd.children) == 0 {
			e.bw.WriteString("{}")
			return
		}
		e.bw.WriteByte('{')
		for i, c := range nd.children {
			if i > 0 {
				e.bw.WriteByte(',')
			}
			jsonval.WriteQuoted(e.bw, e.t.nodes[c].key)
			e.bw.WriteByte(':')
			e.node(c)
			if e.cw.err != nil {
				return
			}
		}
		e.bw.WriteByte('}')
	}
}

// countWriter counts the bytes that actually reached the underlying
// writer and holds the first error sticky, so the encoder can stop
// descending once the sink is gone (bufio keeps the error but does
// not expose it until Flush).
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}
