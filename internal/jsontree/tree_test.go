package jsontree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsonval"
)

const figure1 = `{
	"name": {"first": "John", "last": "Doe"},
	"age": 32,
	"hobbies": ["fishing","yoga"]
}`

// TestFigure1 reproduces the two tree figures of §3.1: the document of
// Figure 1 becomes a tree whose root has O-edges "name", "age" and
// "hobbies", with the hobbies array reached by A-edges 0 and 1.
func TestFigure1(t *testing.T) {
	tr := MustParse(figure1)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	root := tr.Root()
	if tr.Kind(root) != ObjectNode || tr.NumChildren(root) != 3 {
		t.Fatalf("root: kind=%v children=%d", tr.Kind(root), tr.NumChildren(root))
	}
	name := tr.ChildByKey(root, "name")
	if name == InvalidNode || tr.Kind(name) != ObjectNode {
		t.Fatal("name child missing")
	}
	first := tr.ChildByKey(name, "first")
	if first == InvalidNode || tr.StringVal(first) != "John" {
		t.Error("name/first != John")
	}
	age := tr.ChildByKey(root, "age")
	if age == InvalidNode || tr.NumberVal(age) != 32 {
		t.Error("age != 32")
	}
	hobbies := tr.ChildByKey(root, "hobbies")
	if hobbies == InvalidNode || tr.Kind(hobbies) != ArrayNode {
		t.Fatal("hobbies missing or not array")
	}
	if h0 := tr.ChildAt(hobbies, 0); h0 == InvalidNode || tr.StringVal(h0) != "fishing" {
		t.Error("hobbies[0] != fishing")
	}
	if h1 := tr.ChildAt(hobbies, 1); h1 == InvalidNode || tr.StringVal(h1) != "yoga" {
		t.Error("hobbies[1] != yoga")
	}
	if hm1 := tr.ChildAt(hobbies, -1); hm1 != tr.ChildAt(hobbies, 1) {
		t.Error("hobbies[-1] should be the last element")
	}
	if tr.ChildAt(hobbies, 2) != InvalidNode {
		t.Error("hobbies[2] should be InvalidNode")
	}
	// Keys are not retrievable through navigation instructions, but the
	// model records them on edges.
	if tr.EdgeKey(name) != "name" {
		t.Errorf("EdgeKey(name) = %q", tr.EdgeKey(name))
	}
	if tr.Len() != 8 {
		t.Errorf("Len = %d, want 8 nodes", tr.Len())
	}
	if tr.Height(root) != 2 {
		t.Errorf("Height = %d, want 2", tr.Height(root))
	}
}

func TestNavigate(t *testing.T) {
	tr := MustParse(figure1)
	n := tr.Navigate(tr.Root(), Key("name"), Key("last"))
	if n == InvalidNode || tr.StringVal(n) != "Doe" {
		t.Errorf("J[name][last] = %v", n)
	}
	n = tr.Navigate(tr.Root(), Key("hobbies"), Index(1))
	if n == InvalidNode || tr.StringVal(n) != "yoga" {
		t.Errorf("J[hobbies][1] = %v", n)
	}
	if tr.Navigate(tr.Root(), Key("nope")) != InvalidNode {
		t.Error("missing key should navigate to InvalidNode")
	}
	if tr.Navigate(tr.Root(), Key("age"), Key("x")) != InvalidNode {
		t.Error("navigation under a leaf should fail")
	}
	if tr.Navigate(tr.Root(), Key("nope"), Key("deeper")) != InvalidNode {
		t.Error("navigation from InvalidNode should stay invalid")
	}
}

func TestSubtreeValueRoundTrip(t *testing.T) {
	tr := MustParse(figure1)
	v := tr.Value(tr.Root())
	if !jsonval.Equal(v, jsonval.MustParse(figure1)) {
		t.Error("Value(root) does not round-trip")
	}
	// json(n) of the name node is the nested object.
	name := tr.ChildByKey(tr.Root(), "name")
	want := jsonval.MustParse(`{"first":"John","last":"Doe"}`)
	if !jsonval.Equal(tr.Value(name), want) {
		t.Errorf("json(name) = %s", tr.Value(name))
	}
}

func TestSubtreeEqual(t *testing.T) {
	tr := MustParse(`{"a":{"x":[1,2],"y":"s"},"b":{"y":"s","x":[1,2]},"c":{"x":[2,1],"y":"s"}}`)
	a := tr.ChildByKey(tr.Root(), "a")
	b := tr.ChildByKey(tr.Root(), "b")
	c := tr.ChildByKey(tr.Root(), "c")
	if !tr.SubtreeEqual(a, b) {
		t.Error("a and b are equal JSON values (object member order irrelevant)")
	}
	if tr.SubtreeEqual(a, c) {
		t.Error("a and c differ (array order matters)")
	}
	if !tr.SubtreeEqualNaive(a, b) || tr.SubtreeEqualNaive(a, c) {
		t.Error("naive equality disagrees")
	}
}

func TestUniqueChildren(t *testing.T) {
	tr := MustParse(`{"u":[1,2,3],"d":[1,2,1],"objs":[{"a":1},{"a":1}],"objs2":[{"a":1},{"a":2}],"empty":[],"one":[5]}`)
	cases := map[string]bool{"u": true, "d": false, "objs": false, "objs2": true, "empty": true, "one": true}
	for key, want := range cases {
		n := tr.ChildByKey(tr.Root(), key)
		if got := tr.UniqueChildren(n); got != want {
			t.Errorf("UniqueChildren(%s) = %v, want %v", key, got, want)
		}
		if got := tr.UniqueChildrenNaive(n); got != want {
			t.Errorf("UniqueChildrenNaive(%s) = %v, want %v", key, got, want)
		}
	}
}

func TestPath(t *testing.T) {
	tr := MustParse(`{"a":[10,{"b":20}]}`)
	n := tr.Navigate(tr.Root(), Key("a"), Index(1), Key("b"))
	if n == InvalidNode {
		t.Fatal("navigation failed")
	}
	// Address in the tree domain: child 0 of root ("a"), child 1 of the
	// array, child 0 of the inner object.
	if got := tr.Path(n); !reflect.DeepEqual(got, []int{0, 1, 0}) {
		t.Errorf("Path = %v, want [0 1 0]", got)
	}
	if got := tr.Path(tr.Root()); len(got) != 0 {
		t.Errorf("Path(root) = %v, want empty", got)
	}
}

func TestDeterminism(t *testing.T) {
	// Condition 2 of §3.1: at most one child per key. ChildByKey must
	// return that single child; the parser enforces key uniqueness.
	tr := MustParse(`{"k":1}`)
	if tr.ChildByKey(tr.Root(), "k") == InvalidNode {
		t.Error("key lookup failed")
	}
	if _, err := Parse(`{"k":1,"k":2}`); err == nil {
		t.Error("duplicate keys must be rejected")
	}
}

func TestEmptyContainers(t *testing.T) {
	tr := MustParse(`{"o":{},"a":[]}`)
	o := tr.ChildByKey(tr.Root(), "o")
	a := tr.ChildByKey(tr.Root(), "a")
	if tr.NumChildren(o) != 0 || tr.NumChildren(a) != 0 {
		t.Error("empty containers should have no children")
	}
	if tr.Kind(o) != ObjectNode || tr.Kind(a) != ArrayNode {
		t.Error("empty containers keep their kinds (leaf object != string leaf)")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestChildLookupOnWrongKind(t *testing.T) {
	tr := MustParse(`[1,2]`)
	if tr.ChildByKey(tr.Root(), "x") != InvalidNode {
		t.Error("ChildByKey on array must be InvalidNode")
	}
	tr2 := MustParse(`{"a":1}`)
	if tr2.ChildAt(tr2.Root(), 0) != InvalidNode {
		t.Error("ChildAt on object must be InvalidNode")
	}
}

func randomValue(r *rand.Rand, depth int) *jsonval.Value {
	var v *jsonval.Value
	v, _ = quickValue(r, depth)
	return v
}

func quickValue(r *rand.Rand, depth int) (*jsonval.Value, int) {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(50))), 1
		}
		return jsonval.Str(string(rune('a' + r.Intn(6)))), 1
	}
	n := r.Intn(4)
	if r.Intn(2) == 0 {
		elems := make([]*jsonval.Value, n)
		total := 1
		for i := range elems {
			var s int
			elems[i], s = quickValue(r, depth-1)
			total += s
		}
		return jsonval.Arr(elems...), total
	}
	var members []jsonval.Member
	seen := map[string]bool{}
	total := 1
	for i := 0; i < n; i++ {
		k := string(rune('a' + r.Intn(8)))
		if seen[k] {
			continue
		}
		seen[k] = true
		mv, s := quickValue(r, depth-1)
		members = append(members, jsonval.Member{Key: k, Value: mv})
		total += s
	}
	return jsonval.MustObj(members...), total
}

type qv struct{ v *jsonval.Value }

func (qv) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(qv{randomValue(r, 2+size%4)})
}

func TestQuickTreeRoundTrip(t *testing.T) {
	f := func(x qv) bool {
		tr := FromValue(x.v)
		if err := tr.Validate(); err != nil {
			return false
		}
		return jsonval.Equal(tr.Value(tr.Root()), x.v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickSizeHashAgree(t *testing.T) {
	f := func(x qv) bool {
		tr := FromValue(x.v)
		if tr.Len() != x.v.Size() {
			return false
		}
		if tr.SubtreeHash(tr.Root()) != x.v.Hash() {
			return false
		}
		// Every node's subtree hash matches the hash of its value.
		ok := true
		tr.Walk(func(n NodeID) {
			if tr.SubtreeHash(n) != tr.Value(n).Hash() {
				ok = false
			}
			if tr.SubtreeSize(n) != tr.Value(n).Size() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtreeEqualMatchesValueEqual(t *testing.T) {
	f := func(x qv) bool {
		tr := FromValue(x.v)
		nodes := tr.Nodes()
		r := rand.New(rand.NewSource(int64(tr.Len())))
		for trial := 0; trial < 20; trial++ {
			m := nodes[r.Intn(len(nodes))]
			n := nodes[r.Intn(len(nodes))]
			want := jsonval.Equal(tr.Value(m), tr.Value(n))
			if tr.SubtreeEqual(m, n) != want || tr.SubtreeEqualNaive(m, n) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickUniqueAgree(t *testing.T) {
	f := func(x qv) bool {
		tr := FromValue(x.v)
		ok := true
		tr.Walk(func(n NodeID) {
			if tr.Kind(n) == ArrayNode {
				if tr.UniqueChildren(n) != tr.UniqueChildrenNaive(n) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	tr := MustParse(`{"a":[1,"x"]}`)
	d := tr.Dump()
	for _, want := range []string{"object", `"a" -> array`, "0 -> number 1", `1 -> string "x"`} {
		if !contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
