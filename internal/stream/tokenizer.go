// Package stream implements the streaming perspective of §6: a
// pull-based JSON tokenizer and a validator that decides (recursive)
// JSL formulas over a document stream without materialising the tree.
//
// The paper conjectures that the deterministic fragments of JNL and JSL
// can be evaluated in a streaming context with constant memory once
// tree equality is excluded. The validator realises a slightly stronger
// statement: any recursive JSL expression without the Unique predicate
// is decided with memory proportional to the open-nesting depth times
// the formula size — independent of the document's width and total
// size. Unique is rejected at construction time, since deciding it
// requires remembering entire sibling subtrees. Comparisons with
// constant documents (the ~(A) node test) are supported exactly, with
// match state bounded by the constants' sizes.
package stream

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// TokenKind discriminates stream tokens.
type TokenKind uint8

// Token kinds produced by the Tokenizer.
const (
	// BeginObject is '{'.
	BeginObject TokenKind = iota
	// EndObject is '}'.
	EndObject
	// BeginArray is '['.
	BeginArray
	// EndArray is ']'.
	EndArray
	// KeyTok is an object key; Str holds the decoded key.
	KeyTok
	// StringTok is a string value; Str holds the decoded string.
	StringTok
	// NumberTok is a natural-number value; Num holds the value.
	NumberTok
)

func (k TokenKind) String() string {
	switch k {
	case BeginObject:
		return "BeginObject"
	case EndObject:
		return "EndObject"
	case BeginArray:
		return "BeginArray"
	case EndArray:
		return "EndArray"
	case KeyTok:
		return "Key"
	case StringTok:
		return "String"
	case NumberTok:
		return "Number"
	default:
		return fmt.Sprintf("TokenKind(%d)", k)
	}
}

// Token is one event of the document stream.
type Token struct {
	Kind   TokenKind
	Str    string // key or string value
	Num    uint64 // number value
	Offset int64  // byte offset of the token's first character
}

// SyntaxError reports malformed input with its byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("stream: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// TokenizerOptions configure a Tokenizer. The zero value is the
// default configuration.
type TokenizerOptions struct {
	// AllowDuplicateKeys disables the per-object duplicate-key check.
	// The check requires remembering the keys of every open object
	// (memory proportional to the open ancestors' fanout); disabling it
	// makes tokenization memory proportional to the nesting depth only.
	AllowDuplicateKeys bool
	// MaxDepth bounds the nesting depth (0 means the default of 10000).
	MaxDepth int
}

// Tokenizer reads one JSON document from an io.Reader as a stream of
// tokens. It enforces the grammar of §2 (objects, arrays, strings,
// natural numbers) including the pairwise-distinct-keys requirement,
// using memory proportional to the open-nesting depth.
type Tokenizer struct {
	r      *bufio.Reader
	offset int64
	opts   TokenizerOptions

	// stack holds one entry per open container.
	stack []frame
	// done reports that the top-level value has been fully read.
	done bool
	// expectValue: inside an array after '[' or ',', or inside an
	// object after a key's ':'; at top level before the first token.
	expectValue bool

	strBuf strings.Builder
}

type frame struct {
	isObject bool
	count    int             // children emitted so far
	keys     map[string]bool // object keys seen (nil when duplicates allowed)
}

// NewTokenizer returns a Tokenizer reading from rd.
func NewTokenizer(rd io.Reader) *Tokenizer {
	return NewTokenizerOptions(rd, TokenizerOptions{})
}

// NewTokenizerOptions returns a Tokenizer with explicit options.
func NewTokenizerOptions(rd io.Reader, opts TokenizerOptions) *Tokenizer {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 10000
	}
	return &Tokenizer{r: bufio.NewReader(rd), opts: opts, expectValue: true}
}

// Depth returns the current nesting depth (number of open containers).
func (t *Tokenizer) Depth() int { return len(t.stack) }

func (t *Tokenizer) errf(format string, args ...any) error {
	return &SyntaxError{Offset: t.offset, Msg: fmt.Sprintf(format, args...)}
}

// eofErrf maps a read failure to the right owner: io.EOF means the
// document itself is truncated (a syntax error with the given
// message); any other error is the reader's own failure and
// propagates unchanged, so callers can still identify it with
// errors.Is/As — the daemon relies on this to tell an oversized body
// (*http.MaxBytesError → 413) from malformed JSON (400).
func (t *Tokenizer) eofErrf(err error, format string, args ...any) error {
	if err == io.EOF {
		return t.errf(format, args...)
	}
	return err
}

func (t *Tokenizer) readByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		t.offset++
	}
	return b, err
}

func (t *Tokenizer) unreadByte() {
	_ = t.r.UnreadByte()
	t.offset--
}

func (t *Tokenizer) skipSpace() error {
	for {
		b, err := t.readByte()
		if err != nil {
			return err
		}
		if b != ' ' && b != '\t' && b != '\n' && b != '\r' {
			t.unreadByte()
			return nil
		}
	}
}

// Next returns the next token. After the final token of a well-formed
// document it returns io.EOF; any other error is a *SyntaxError or an
// error from the underlying reader.
func (t *Tokenizer) Next() (Token, error) {
	if t.done && len(t.stack) == 0 {
		// Check only trailing whitespace remains, once.
		if err := t.skipSpace(); err == nil {
			return Token{}, t.errf("trailing input after top-level value")
		} else if err != io.EOF {
			return Token{}, err
		}
		return Token{}, io.EOF
	}
	if err := t.skipSpace(); err != nil {
		if err == io.EOF {
			return Token{}, t.errf("unexpected end of input")
		}
		return Token{}, err
	}
	b, err := t.readByte()
	if err != nil {
		return Token{}, err
	}
	start := t.offset - 1

	// Structural punctuation between values.
	if !t.expectValue {
		top := &t.stack[len(t.stack)-1]
		switch {
		case b == ',':
			if top.count == 0 {
				return Token{}, t.errf("unexpected ',' before first element")
			}
			if top.isObject {
				return t.key(top)
			}
			t.expectValue = true
			return t.Next()
		case b == '}' && top.isObject:
			t.pop()
			return Token{Kind: EndObject, Offset: start}, nil
		case b == ']' && !top.isObject:
			t.pop()
			return Token{Kind: EndArray, Offset: start}, nil
		case top.isObject && top.count == 0 && b == '"':
			// First key right after '{'.
			t.unreadByte()
			return t.key(top)
		case !top.isObject && top.count == 0:
			// First element right after '['.
			t.unreadByte()
			t.expectValue = true
			return t.Next()
		default:
			return Token{}, t.errf("expected ',' or container close, got %q", b)
		}
	}

	// A value is expected here.
	switch {
	case b == '{':
		if len(t.stack) >= t.opts.MaxDepth {
			return Token{}, t.errf("nesting depth exceeds %d", t.opts.MaxDepth)
		}
		f := frame{isObject: true}
		if !t.opts.AllowDuplicateKeys {
			f.keys = make(map[string]bool)
		}
		t.stack = append(t.stack, f)
		t.expectValue = false
		return Token{Kind: BeginObject, Offset: start}, nil
	case b == '[':
		if len(t.stack) >= t.opts.MaxDepth {
			return Token{}, t.errf("nesting depth exceeds %d", t.opts.MaxDepth)
		}
		t.stack = append(t.stack, frame{})
		t.expectValue = false
		return Token{Kind: BeginArray, Offset: start}, nil
	case b == '"':
		s, err := t.string()
		if err != nil {
			return Token{}, err
		}
		t.valueDone()
		return Token{Kind: StringTok, Str: s, Offset: start}, nil
	case b >= '0' && b <= '9':
		t.unreadByte()
		n, err := t.number()
		if err != nil {
			return Token{}, err
		}
		t.valueDone()
		return Token{Kind: NumberTok, Num: n, Offset: start}, nil
	default:
		return Token{}, t.errf("unexpected character %q at start of value", b)
	}
}

// key reads `"k":` after '{' or ',' inside an object and returns the
// KeyTok token, arranging for the following call to read the value.
func (t *Tokenizer) key(top *frame) (Token, error) {
	if err := t.skipSpace(); err != nil {
		return Token{}, t.eofErrf(err, "unexpected end of input inside object")
	}
	b, err := t.readByte()
	if err != nil {
		return Token{}, err
	}
	start := t.offset - 1
	if b != '"' {
		return Token{}, t.errf("expected object key, got %q", b)
	}
	k, err := t.string()
	if err != nil {
		return Token{}, err
	}
	if top.keys != nil {
		if top.keys[k] {
			return Token{}, t.errf("duplicate object key %q", k)
		}
		top.keys[k] = true
	}
	if err := t.skipSpace(); err != nil {
		return Token{}, t.eofErrf(err, "unexpected end of input after key")
	}
	if b, err = t.readByte(); err != nil || b != ':' {
		if err != nil && err != io.EOF {
			return Token{}, err
		}
		return Token{}, t.errf("expected ':' after key %q", k)
	}
	top.count++
	t.expectValue = true
	return Token{Kind: KeyTok, Str: k, Offset: start}, nil
}

// pop closes the top container.
func (t *Tokenizer) pop() {
	t.stack = t.stack[:len(t.stack)-1]
	t.valueDone()
}

// valueDone records that a complete value has just been produced.
func (t *Tokenizer) valueDone() {
	t.expectValue = false
	if len(t.stack) == 0 {
		t.done = true
		return
	}
	if !t.stack[len(t.stack)-1].isObject {
		t.stack[len(t.stack)-1].count++
	}
}

// string reads the remainder of a string literal (the opening quote is
// consumed) and decodes escapes.
func (t *Tokenizer) string() (string, error) {
	t.strBuf.Reset()
	for {
		b, err := t.readByte()
		if err != nil {
			return "", t.eofErrf(err, "unterminated string")
		}
		switch {
		case b == '"':
			return t.strBuf.String(), nil
		case b == '\\':
			e, err := t.readByte()
			if err != nil {
				return "", t.eofErrf(err, "unterminated escape")
			}
			switch e {
			case '"', '\\', '/':
				t.strBuf.WriteByte(e)
			case 'b':
				t.strBuf.WriteByte('\b')
			case 'f':
				t.strBuf.WriteByte('\f')
			case 'n':
				t.strBuf.WriteByte('\n')
			case 'r':
				t.strBuf.WriteByte('\r')
			case 't':
				t.strBuf.WriteByte('\t')
			case 'u':
				r, err := t.hex4()
				if err != nil {
					return "", err
				}
				if utf16IsHighSurrogate(r) {
					// Expect a low surrogate escape.
					b1, err1 := t.readByte()
					b2, err2 := t.readByte()
					if err1 != nil || err2 != nil || b1 != '\\' || b2 != 'u' {
						if err1 != nil && err1 != io.EOF {
							return "", err1
						}
						if err2 != nil && err2 != io.EOF {
							return "", err2
						}
						return "", t.errf("unpaired surrogate \\u%04X", r)
					}
					lo, err := t.hex4()
					if err != nil {
						return "", err
					}
					if !utf16IsLowSurrogate(lo) {
						return "", t.errf("invalid low surrogate \\u%04X", lo)
					}
					r = 0x10000 + (r-0xD800)<<10 + (lo - 0xDC00)
				} else if utf16IsLowSurrogate(r) {
					return "", t.errf("unpaired low surrogate \\u%04X", r)
				}
				t.strBuf.WriteRune(rune(r))
			default:
				return "", t.errf("invalid escape \\%c", e)
			}
		case b < 0x20:
			return "", t.errf("raw control character 0x%02x in string", b)
		case b < utf8.RuneSelf:
			t.strBuf.WriteByte(b)
		default:
			// Multi-byte UTF-8: copy the full rune through.
			t.unreadByte()
			r, size, err := t.rune()
			if err != nil {
				return "", err
			}
			_ = size
			t.strBuf.WriteRune(r)
		}
	}
}

func (t *Tokenizer) rune() (rune, int, error) {
	var buf [4]byte
	b0, err := t.readByte()
	if err != nil {
		return 0, 0, t.eofErrf(err, "truncated UTF-8 sequence")
	}
	buf[0] = b0
	n := utf8ByteLen(b0)
	if n == 0 {
		return 0, 0, t.errf("invalid UTF-8 lead byte 0x%02x", b0)
	}
	for i := 1; i < n; i++ {
		bi, err := t.readByte()
		if err != nil {
			return 0, 0, t.eofErrf(err, "truncated UTF-8 sequence")
		}
		buf[i] = bi
	}
	r, size := utf8.DecodeRune(buf[:n])
	if r == utf8.RuneError && size <= 1 {
		return 0, 0, t.errf("invalid UTF-8 sequence")
	}
	return r, size, nil
}

func utf8ByteLen(b byte) int {
	switch {
	case b < 0x80:
		return 1
	case b&0xE0 == 0xC0:
		return 2
	case b&0xF0 == 0xE0:
		return 3
	case b&0xF8 == 0xF0:
		return 4
	default:
		return 0
	}
}

func utf16IsHighSurrogate(r uint32) bool { return r >= 0xD800 && r <= 0xDBFF }
func utf16IsLowSurrogate(r uint32) bool  { return r >= 0xDC00 && r <= 0xDFFF }

func (t *Tokenizer) hex4() (uint32, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := t.readByte()
		if err != nil {
			return 0, t.eofErrf(err, "truncated \\u escape")
		}
		v <<= 4
		switch {
		case b >= '0' && b <= '9':
			v |= uint32(b - '0')
		case b >= 'a' && b <= 'f':
			v |= uint32(b-'a') + 10
		case b >= 'A' && b <= 'F':
			v |= uint32(b-'A') + 10
		default:
			return 0, t.errf("invalid hex digit %q in \\u escape", b)
		}
	}
	return v, nil
}

// number reads a natural-number literal (the model of §2 restricts
// numbers to naturals).
func (t *Tokenizer) number() (uint64, error) {
	var v uint64
	digits := 0
	leadingZero := false
	for {
		b, err := t.readByte()
		if err != nil {
			if err == io.EOF {
				break
			}
			return 0, err
		}
		if b < '0' || b > '9' {
			t.unreadByte()
			break
		}
		if digits == 1 && v == 0 {
			leadingZero = true
		}
		d := uint64(b - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, t.errf("number literal overflows uint64")
		}
		v = v*10 + d
		digits++
	}
	if digits == 0 {
		return 0, t.errf("expected digits")
	}
	if leadingZero {
		return 0, t.errf("number literal with leading zero")
	}
	return v, nil
}
