// Streaming evaluation of recursive JSL without Unique: the §6
// conjecture, realised as a single pass over the token stream with
// memory proportional to nesting depth × formula size.

package stream

import (
	"errors"
	"fmt"
	"io"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
	"jsonlogic/internal/translate"
)

// ErrUnique reports that the expression uses the Unique predicate,
// which cannot be decided in a streaming pass: it compares entire
// sibling subtrees, exactly the tree equality the §6 conjecture
// excludes.
var ErrUnique = errors.New("stream: Unique (uniqueItems) cannot be validated in a streaming pass")

// Validator decides one recursive JSL expression over document streams.
// A Validator is immutable after construction and safe for concurrent
// use by multiple goroutines (each Validate call keeps its own state).
type Validator struct {
	// subformula table: every subformula of every definition body and
	// of the base expression, in an order where boolean structure and
	// unguarded references point to earlier entries.
	forms []jsl.Formula
	// id of each definition's body, by name.
	defID map[string]int
	// baseID is the entry for the base expression.
	baseID int
	// child[fid] are the immediate same-node sub-entries.
	child map[int][]int
	// modal entries in forms, used to size per-frame modal state.
	modalSlot map[int]int // fid of DiamondKey/BoxKey/DiamondIdx/BoxIdx -> slot
	numModal  int
	// eqdoc entries, used to size per-frame equality-match state.
	eqSlot map[int]int // fid of EqDoc -> slot
	eqDocs []*jsonval.Value
	// evaluation order for a node-close: every fid in an order where
	// all same-node dependencies come first.
	order []int
}

// NewValidator compiles a recursive JSL expression for streaming
// validation. It reports ErrUnique if the expression uses Unique and an
// error if it is not well formed.
func NewValidator(r *jsl.Recursive) (*Validator, error) {
	if err := r.WellFormed(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	v := &Validator{
		defID:     map[string]int{},
		child:     map[int][]int{},
		modalSlot: map[int]int{},
		eqSlot:    map[int]int{},
	}
	// First pass: allocate ids for definition bodies so Ref can point
	// at them regardless of definition order.
	for _, d := range r.Defs {
		if _, dup := v.defID[d.Name]; dup {
			return nil, fmt.Errorf("stream: duplicate definition %q", d.Name)
		}
		v.defID[d.Name] = -1 // reserved
	}
	for _, d := range r.Defs {
		id, err := v.compile(d.Body)
		if err != nil {
			return nil, err
		}
		v.defID[d.Name] = id
	}
	base, err := v.compile(r.Base)
	if err != nil {
		return nil, err
	}
	v.baseID = base
	if err := v.buildOrder(); err != nil {
		return nil, err
	}
	return v, nil
}

// NewValidatorFormula compiles a non-recursive JSL formula.
func NewValidatorFormula(f jsl.Formula) (*Validator, error) {
	return NewValidator(jsl.NonRecursive(f))
}

// compile interns the subformula tree of f and returns its id.
func (v *Validator) compile(f jsl.Formula) (int, error) {
	id := len(v.forms)
	v.forms = append(v.forms, f)
	addChild := func(sub jsl.Formula) error {
		cid, err := v.compile(sub)
		if err != nil {
			return err
		}
		v.child[id] = append(v.child[id], cid)
		return nil
	}
	switch t := f.(type) {
	case jsl.Unique:
		return 0, ErrUnique
	case jsl.Not:
		if err := addChild(t.Inner); err != nil {
			return 0, err
		}
	case jsl.And:
		if err := addChild(t.Left); err != nil {
			return 0, err
		}
		if err := addChild(t.Right); err != nil {
			return 0, err
		}
	case jsl.Or:
		if err := addChild(t.Left); err != nil {
			return 0, err
		}
		if err := addChild(t.Right); err != nil {
			return 0, err
		}
	case jsl.DiamondKey:
		if err := addChild(t.Inner); err != nil {
			return 0, err
		}
		v.modalSlot[id] = v.numModal
		v.numModal++
	case jsl.BoxKey:
		if err := addChild(t.Inner); err != nil {
			return 0, err
		}
		v.modalSlot[id] = v.numModal
		v.numModal++
	case jsl.DiamondIdx:
		if err := addChild(t.Inner); err != nil {
			return 0, err
		}
		v.modalSlot[id] = v.numModal
		v.numModal++
	case jsl.BoxIdx:
		if err := addChild(t.Inner); err != nil {
			return 0, err
		}
		v.modalSlot[id] = v.numModal
		v.numModal++
	case jsl.EqDoc:
		v.eqSlot[id] = len(v.eqDocs)
		v.eqDocs = append(v.eqDocs, t.Doc)
	case jsl.Ref:
		if _, ok := v.defID[t.Name]; !ok {
			return 0, fmt.Errorf("stream: undefined reference %q", t.Name)
		}
	}
	return id, nil
}

// buildOrder computes the node-close evaluation order: subformula
// children before parents and definition bodies before (unguarded)
// references to them. Well-formedness makes this a DAG.
func (v *Validator) buildOrder() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]byte, len(v.forms))
	v.order = v.order[:0]
	var visit func(fid int) error
	visit = func(fid int) error {
		switch state[fid] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("stream: cyclic unguarded dependency through %s", jsl.String(v.forms[fid]))
		}
		state[fid] = visiting
		if t, isRef := v.forms[fid].(jsl.Ref); isRef {
			if err := visit(v.defID[t.Name]); err != nil {
				return err
			}
		}
		if _, modal := v.modalSlot[fid]; !modal {
			// Modal operators are excluded: they read *child-node*
			// results aggregated into the frame, not same-node truths,
			// which is exactly how guarded recursion avoids a cycle.
			// Their inner formulas are ordered independently by the
			// outer loop.
			for _, cid := range v.child[fid] {
				if err := visit(cid); err != nil {
					return err
				}
			}
		}
		state[fid] = done
		v.order = append(v.order, fid)
		return nil
	}
	// Every subformula must appear in the order — including modal
	// inner formulas, which the dependency walk above skips.
	for fid := range v.forms {
		if err := visit(fid); err != nil {
			return err
		}
	}
	return nil
}

// NumSubformulas returns the size of the compiled subformula table.
func (v *Validator) NumSubformulas() int { return len(v.forms) }

// Stats reports the memory high-water marks of one Validate run; used
// by the streaming experiments to demonstrate width-independence.
type Stats struct {
	// MaxFrames is the maximum number of simultaneously open nodes
	// (nesting depth + 1).
	MaxFrames int
	// MaxEqEntries is the maximum number of live constant-match
	// entries across all frames.
	MaxEqEntries int
	// Tokens is the total number of tokens processed.
	Tokens int
}

// vframe is the per-open-node state of a validation run.
type vframe struct {
	isObject bool
	count    int
	// edge into this node (valid when the parent frame exists).
	key string
	pos int
	// dia[slot]/box[slot] aggregate child results per modal operator.
	dia []bool
	box []bool
	// eq holds the live constant-match entries for this node.
	eq []matchEntry
}

// matchEntry tracks the comparison of the current node's subtree with
// one constant document (or a descendant of one).
type matchEntry struct {
	// target is the constant subvalue this node must equal.
	target *jsonval.Value
	// slot is the eqdoc slot when this entry was seeded at this node,
	// or -1 for an entry derived from a parent entry.
	slot int
	// parentIdx is the index of the parent frame's entry this one was
	// derived from (meaningful when slot == -1).
	parentIdx int
	failed    bool
	matched   int // children that matched so far
}

// runState is the mutable state of one Validate call. The truth and
// eqTruth buffers are reused across node closes — a truth vector is
// consumed by the parent's modal aggregates before the next node
// completes, so per-node allocation is unnecessary and the validator
// allocates only when the frame stack grows.
type runState struct {
	v       *Validator
	frames  []vframe
	stats   Stats
	truth   []bool
	eqTruth []bool
}

// Validate reads one JSON document from rd and reports whether it
// satisfies the compiled expression at its root. The document is never
// materialised: memory use is bounded by nesting depth × formula size
// (plus constant-match state), independent of document width.
func (v *Validator) Validate(rd io.Reader) (bool, error) {
	ok, _, err := v.ValidateStats(rd)
	return ok, err
}

// ValidateStats is Validate, additionally reporting memory statistics.
func (v *Validator) ValidateStats(rd io.Reader) (bool, Stats, error) {
	tok := NewTokenizer(rd)
	return v.validateTokens(tok)
}

func (v *Validator) validateTokens(tok *Tokenizer) (bool, Stats, error) {
	rs := &runState{
		v:       v,
		truth:   make([]bool, len(v.forms)),
		eqTruth: make([]bool, len(v.eqDocs)),
	}
	rootResult := false
	sawRoot := false
	pendingKey := ""
	for {
		t, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return false, rs.stats, err
		}
		rs.stats.Tokens++
		switch t.Kind {
		case KeyTok:
			pendingKey = t.Str
		case BeginObject, BeginArray:
			rs.open(t.Kind == BeginObject, pendingKey)
		case EndObject, EndArray:
			truth := rs.closeTop()
			if len(rs.frames) == 0 {
				rootResult, sawRoot = truth[v.baseID], true
			}
		case StringTok, NumberTok:
			truth := rs.leaf(t, pendingKey)
			if len(rs.frames) == 0 {
				rootResult, sawRoot = truth[v.baseID], true
			}
		}
	}
	if !sawRoot {
		return false, rs.stats, fmt.Errorf("stream: empty document stream")
	}
	return rootResult, rs.stats, nil
}

// open pushes a frame for a container node entered via the given key
// (or the next array position of the parent).
func (rs *runState) open(isObject bool, key string) {
	f := vframe{
		isObject: isObject,
		dia:      make([]bool, rs.v.numModal),
		box:      make([]bool, rs.v.numModal),
	}
	for i := range f.box {
		f.box[i] = true // boxes are vacuously true
	}
	f.key, f.pos = rs.edgeOfNewChild(key)
	// Seed one match entry per eqdoc constant, plus entries derived
	// from the parent's live entries.
	for slot, doc := range rs.v.eqDocs {
		f.eq = append(f.eq, matchEntry{target: doc, slot: slot})
	}
	if len(rs.frames) > 0 {
		parent := &rs.frames[len(rs.frames)-1]
		for idx := range parent.eq {
			pe := &parent.eq[idx]
			if pe.failed {
				continue
			}
			sub, ok := lookupEdge(pe.target, f.key, f.pos, parent.isObject)
			if !ok {
				pe.failed = true
				continue
			}
			f.eq = append(f.eq, matchEntry{target: sub, slot: -1, parentIdx: idx})
		}
		parent.count++
	}
	rs.frames = append(rs.frames, f)
	if len(rs.frames) > rs.stats.MaxFrames {
		rs.stats.MaxFrames = len(rs.frames)
	}
	live := 0
	for i := range rs.frames {
		live += len(rs.frames[i].eq)
	}
	if live > rs.stats.MaxEqEntries {
		rs.stats.MaxEqEntries = live
	}
}

// edgeOfNewChild returns the edge (key or position) of the child being
// opened under the current top frame.
func (rs *runState) edgeOfNewChild(key string) (string, int) {
	if len(rs.frames) == 0 {
		return "", -1
	}
	parent := &rs.frames[len(rs.frames)-1]
	if parent.isObject {
		return key, -1
	}
	return "", parent.count
}

// lookupEdge descends from a constant target along the child edge.
func lookupEdge(target *jsonval.Value, key string, pos int, parentIsObject bool) (*jsonval.Value, bool) {
	if parentIsObject {
		if !target.IsObject() {
			return nil, false
		}
		return target.Member(key)
	}
	if !target.IsArray() {
		return nil, false
	}
	return target.Elem(pos)
}

// leaf processes a string or number token as a complete child node and
// returns its truth vector.
func (rs *runState) leaf(t Token, key string) []bool {
	edgeKey, edgePos := rs.edgeOfNewChild(key)
	if len(rs.frames) > 0 {
		rs.frames[len(rs.frames)-1].count++
	}
	// Constant-equality truths first: dependent boolean structure in
	// the ordered pass below reads them.
	eqTruth := rs.eqTruth
	for slot, doc := range rs.v.eqDocs {
		eqTruth[slot] = leafEquals(t, doc)
	}
	truth := rs.truth
	for _, fid := range rs.v.order {
		truth[fid] = rs.v.evalLeaf(fid, t, truth, eqTruth)
	}
	if len(rs.frames) > 0 {
		parent := &rs.frames[len(rs.frames)-1]
		for idx := range parent.eq {
			pe := &parent.eq[idx]
			if pe.failed {
				continue
			}
			sub, ok := lookupEdge(pe.target, edgeKey, edgePos, parent.isObject)
			if !ok || !leafEquals(t, sub) {
				pe.failed = true
				continue
			}
			pe.matched++
		}
		rs.deliverToParent(truth, edgeKey, edgePos)
	}
	return truth
}

// leafEquals compares a leaf token to a constant value.
func leafEquals(t Token, target *jsonval.Value) bool {
	switch t.Kind {
	case StringTok:
		return target.IsString() && target.Str() == t.Str
	case NumberTok:
		return target.IsNumber() && target.Num() == t.Num
	default:
		return false
	}
}

// closeTop finalises the top frame, computes its truth vector, reports
// it to the parent, and returns it.
func (rs *runState) closeTop() []bool {
	f := rs.frames[len(rs.frames)-1]
	rs.frames = rs.frames[:len(rs.frames)-1]

	// Resolve this node's own constant-equality entries first, then
	// compute the truth vector (boolean structure reads the eq truths),
	// then report derived entries and modal results to the parent.
	var parent *vframe
	if len(rs.frames) > 0 {
		parent = &rs.frames[len(rs.frames)-1]
	}
	eqTruth := rs.eqTruth
	for slot := range eqTruth {
		eqTruth[slot] = false
	}
	for i := range f.eq {
		e := &f.eq[i]
		success := !e.failed && containerMatches(&f, e.target)
		if e.slot >= 0 {
			eqTruth[e.slot] = success
			continue
		}
		if parent == nil {
			continue
		}
		pe := &parent.eq[e.parentIdx]
		if pe.failed {
			continue
		}
		if success {
			pe.matched++
		} else {
			pe.failed = true
		}
	}
	truth := rs.truth
	for _, fid := range rs.v.order {
		truth[fid] = rs.v.evalContainer(fid, &f, truth, eqTruth)
	}
	if parent != nil {
		rs.deliverToParent(truth, f.key, f.pos)
	}
	return truth
}

// containerMatches checks the structural close conditions of a
// container node against a constant: right kind and exactly the
// constant's child count (per-child matches were checked on the way).
func containerMatches(f *vframe, target *jsonval.Value) bool {
	if f.isObject {
		return target.IsObject() && target.Len() == f.count
	}
	return target.IsArray() && target.Len() == f.count
}

// deliverToParent merges a closed child's truth vector into the
// parent's modal aggregates.
func (rs *runState) deliverToParent(truth []bool, key string, pos int) {
	parent := &rs.frames[len(rs.frames)-1]
	for fid, slot := range rs.v.modalSlot {
		innerID := rs.v.child[fid][0]
		switch m := rs.v.forms[fid].(type) {
		case jsl.DiamondKey:
			if parent.isObject && matchKey(m.Re, m.Word, m.IsWord, key) && truth[innerID] {
				parent.dia[slot] = true
			}
		case jsl.BoxKey:
			if parent.isObject && matchKey(m.Re, m.Word, m.IsWord, key) && !truth[innerID] {
				parent.box[slot] = false
			}
		case jsl.DiamondIdx:
			if !parent.isObject && pos >= m.Lo && pos <= m.Hi && truth[innerID] {
				parent.dia[slot] = true
			}
		case jsl.BoxIdx:
			if !parent.isObject && pos >= m.Lo && pos <= m.Hi && !truth[innerID] {
				parent.box[slot] = false
			}
		}
	}
}

func matchKey(re *relang.Regex, word string, isWord bool, key string) bool {
	if isWord {
		return key == word
	}
	return re.Match(key)
}

// evalLeaf computes the truth of subformula fid at a leaf node.
func (v *Validator) evalLeaf(fid int, t Token, truth, eqTruth []bool) bool {
	kids := v.child[fid]
	switch tf := v.forms[fid].(type) {
	case jsl.True:
		return true
	case jsl.Not:
		return !truth[kids[0]]
	case jsl.And:
		return truth[kids[0]] && truth[kids[1]]
	case jsl.Or:
		return truth[kids[0]] || truth[kids[1]]
	case jsl.IsObj, jsl.IsArr:
		return false
	case jsl.IsStr:
		return t.Kind == StringTok
	case jsl.IsInt:
		return t.Kind == NumberTok
	case jsl.Pattern:
		return t.Kind == StringTok && tf.Re.Match(t.Str)
	case jsl.Min:
		return t.Kind == NumberTok && t.Num >= tf.I
	case jsl.Max:
		return t.Kind == NumberTok && t.Num <= tf.I
	case jsl.MultOf:
		return t.Kind == NumberTok && isMultiple(t.Num, tf.I)
	case jsl.MinCh:
		return tf.K == 0
	case jsl.MaxCh:
		return true
	case jsl.EqDoc:
		return eqTruth[v.eqSlot[fid]]
	case jsl.DiamondKey, jsl.DiamondIdx:
		return false // leaves have no children
	case jsl.BoxKey, jsl.BoxIdx:
		return true // vacuously
	case jsl.Ref:
		return truth[v.defID[tf.Name]]
	default:
		return false
	}
}

// evalContainer computes the truth of subformula fid at a closing
// container node.
func (v *Validator) evalContainer(fid int, fr *vframe, truth, eqTruth []bool) bool {
	kids := v.child[fid]
	switch tf := v.forms[fid].(type) {
	case jsl.True:
		return true
	case jsl.Not:
		return !truth[kids[0]]
	case jsl.And:
		return truth[kids[0]] && truth[kids[1]]
	case jsl.Or:
		return truth[kids[0]] || truth[kids[1]]
	case jsl.IsObj:
		return fr.isObject
	case jsl.IsArr:
		return !fr.isObject
	case jsl.IsStr, jsl.IsInt, jsl.Pattern, jsl.Min, jsl.Max, jsl.MultOf:
		return false
	case jsl.MinCh:
		return fr.count >= tf.K
	case jsl.MaxCh:
		return fr.count <= tf.K
	case jsl.EqDoc:
		return eqTruth[v.eqSlot[fid]]
	case jsl.DiamondKey, jsl.DiamondIdx:
		return fr.dia[v.modalSlot[fid]]
	case jsl.BoxKey, jsl.BoxIdx:
		return fr.box[v.modalSlot[fid]]
	case jsl.Ref:
		return truth[v.defID[tf.Name]]
	default:
		return false
	}
}

func isMultiple(n, m uint64) bool {
	if m == 0 {
		return n == 0
	}
	return n%m == 0
}

// NewValidatorJNL compiles a deterministic JNL unary formula for
// streaming validation, through the Theorem 2 translation into JSL.
// Formulas outside the common fragment (EQ(α,β), Kleene star) are
// rejected by the translation; note the translation can be exponential
// for formulas with unions of paths (the Theorem 2 remark).
func NewValidatorJNL(u jnl.Unary) (*Validator, error) {
	f, err := translate.JNLToJSL(u)
	if err != nil {
		return nil, err
	}
	return NewValidatorFormula(f)
}
