package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

func mustValidate(t *testing.T, f jsl.Formula, doc string) bool {
	t.Helper()
	v, err := NewValidatorFormula(f)
	if err != nil {
		t.Fatalf("NewValidatorFormula: %v", err)
	}
	ok, err := v.Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Validate(%s): %v", doc, err)
	}
	return ok
}

func TestValidateNodeTests(t *testing.T) {
	cases := []struct {
		f    jsl.Formula
		doc  string
		want bool
	}{
		{jsl.IsObj{}, `{}`, true},
		{jsl.IsObj{}, `[]`, false},
		{jsl.IsArr{}, `[]`, true},
		{jsl.IsStr{}, `"x"`, true},
		{jsl.IsInt{}, `7`, true},
		{jsl.IsInt{}, `"7"`, false},
		{jsl.Pattern{Re: relang.MustCompile("a+")}, `"aaa"`, true},
		{jsl.Pattern{Re: relang.MustCompile("a+")}, `"ab"`, false},
		{jsl.Min{I: 5}, `7`, true},
		{jsl.Min{I: 5}, `3`, false},
		{jsl.Max{I: 5}, `3`, true},
		{jsl.MultOf{I: 4}, `12`, true},
		{jsl.MultOf{I: 4}, `13`, false},
		{jsl.MinCh{K: 2}, `{"a":1,"b":2}`, true},
		{jsl.MinCh{K: 3}, `{"a":1,"b":2}`, false},
		{jsl.MaxCh{K: 1}, `[1]`, true},
		{jsl.MaxCh{K: 1}, `[1,2]`, false},
		{jsl.MinCh{K: 0}, `5`, true},
		{jsl.Not{Inner: jsl.IsObj{}}, `[]`, true},
		{jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: 1}}, `3`, true},
		{jsl.Or{Left: jsl.IsStr{}, Right: jsl.IsInt{}}, `3`, true},
	}
	for _, c := range cases {
		if got := mustValidate(t, c.f, c.doc); got != c.want {
			t.Errorf("%s over %s: got %v, want %v", jsl.String(c.f), c.doc, got, c.want)
		}
	}
}

func TestValidateModalities(t *testing.T) {
	doc := `{"name":{"first":"John"},"hobbies":["fishing","yoga"],"age":32}`
	cases := []struct {
		f    jsl.Formula
		want bool
	}{
		{jsl.DiaWord("name", jsl.IsObj{}), true},
		{jsl.DiaWord("name", jsl.IsStr{}), false},
		{jsl.DiaWord("missing", jsl.True{}), false},
		{jsl.BoxWord("age", jsl.IsInt{}), true},
		{jsl.BoxWord("missing", jsl.Not{Inner: jsl.True{}}), true}, // vacuous
		{jsl.DiaRe(relang.MustCompile("n.*"), jsl.DiaWord("first", jsl.Pattern{Re: relang.MustCompile("J.*")})), true},
		{jsl.DiaWord("hobbies", jsl.DiamondIdx{Lo: 0, Hi: 1, Inner: jsl.EqDoc{Doc: jsonval.Str("yoga")}}), true},
		{jsl.DiaWord("hobbies", jsl.DiamondIdx{Lo: 0, Hi: 0, Inner: jsl.EqDoc{Doc: jsonval.Str("yoga")}}), false},
		{jsl.DiaWord("hobbies", jsl.BoxIdx{Lo: 0, Hi: jsl.Inf, Inner: jsl.IsStr{}}), true},
		{jsl.BoxRe(relang.MustCompile(".*"), jsl.Or{Left: jsl.IsObj{}, Right: jsl.Or{Left: jsl.IsArr{}, Right: jsl.IsInt{}}}), true},
	}
	for i, c := range cases {
		if got := mustValidate(t, c.f, doc); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, jsl.String(c.f), got, c.want)
		}
	}
}

func TestValidateEqDoc(t *testing.T) {
	cases := []struct {
		f    jsl.Formula
		doc  string
		want bool
	}{
		{jsl.EqDoc{Doc: jsonval.Num(5)}, `5`, true},
		{jsl.EqDoc{Doc: jsonval.Num(5)}, `6`, false},
		{jsl.EqDoc{Doc: jsonval.MustParse(`{"a":1,"b":[2,"x"]}`)}, `{"b":[2,"x"],"a":1}`, true},
		{jsl.EqDoc{Doc: jsonval.MustParse(`{"a":1,"b":[2,"x"]}`)}, `{"b":[2,"y"],"a":1}`, false},
		{jsl.EqDoc{Doc: jsonval.MustParse(`{"a":1}`)}, `{"a":1,"b":2}`, false},
		{jsl.EqDoc{Doc: jsonval.MustParse(`{"a":1,"b":2}`)}, `{"a":1}`, false},
		{jsl.EqDoc{Doc: jsonval.MustParse(`[]`)}, `[]`, true},
		{jsl.EqDoc{Doc: jsonval.MustParse(`{}`)}, `[]`, false},
		// Nested occurrence: some child equals a constant.
		{jsl.DiaRe(relang.MustCompile(".*"), jsl.EqDoc{Doc: jsonval.MustParse(`[1,2]`)}), `{"a":[1,2]}`, true},
		{jsl.DiaRe(relang.MustCompile(".*"), jsl.EqDoc{Doc: jsonval.MustParse(`[1,2]`)}), `{"a":[2,1]}`, false},
	}
	for i, c := range cases {
		if got := mustValidate(t, c.f, c.doc); got != c.want {
			t.Errorf("case %d (%s over %s): got %v, want %v", i, jsl.String(c.f), c.doc, got, c.want)
		}
	}
}

func TestValidateRejectsUnique(t *testing.T) {
	if _, err := NewValidatorFormula(jsl.Unique{}); err != ErrUnique {
		t.Fatalf("got %v, want ErrUnique", err)
	}
	if _, err := NewValidatorFormula(jsl.Not{Inner: jsl.And{Left: jsl.True{}, Right: jsl.Unique{}}}); err != ErrUnique {
		t.Fatalf("nested Unique: got %v, want ErrUnique", err)
	}
}

func TestValidateRecursive(t *testing.T) {
	// Example 2: every root-to-leaf path has even length.
	any := relang.MustCompile(".*")
	evenDepth := &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g1", Body: jsl.BoxRe(any, jsl.Ref{Name: "g2"})},
			{Name: "g2", Body: jsl.And{
				Left:  jsl.DiaRe(any, jsl.True{}),
				Right: jsl.BoxRe(any, jsl.Ref{Name: "g1"}),
			}},
		},
		Base: jsl.Ref{Name: "g1"},
	}
	v, err := NewValidator(evenDepth)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		doc  string
		want bool
	}{
		{`{}`, true},
		{`{"a":{}}`, false},
		{`{"a":{"b":{}}}`, true},
		{`{"a":{"b":{}},"c":{"d":{}}}`, true},
		{`{"a":{"b":{}},"c":{}}`, false},
		{`{"a":{"b":{"c":{"d":{}}}}}`, true},
	}
	for _, c := range cases {
		got, err := v.Validate(strings.NewReader(c.doc))
		if err != nil {
			t.Fatalf("%s: %v", c.doc, err)
		}
		if got != c.want {
			t.Errorf("evenDepth over %s: got %v, want %v", c.doc, got, c.want)
		}
		// Cross-check against the in-memory recursive evaluator.
		tree := jsontree.MustParse(c.doc)
		want, err := jsl.HoldsRecursive(tree, evenDepth)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("stream %v disagrees with in-memory %v on %s", got, want, c.doc)
		}
	}
}

func TestValidateUnguardedRefs(t *testing.T) {
	// Well-formed acyclic unguarded refs: g2 used directly by g1.
	r := &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g2", Body: jsl.IsObj{}},
			{Name: "g1", Body: jsl.And{Left: jsl.Ref{Name: "g2"}, Right: jsl.MinCh{K: 1}}},
		},
		Base: jsl.Ref{Name: "g1"},
	}
	v, err := NewValidator(r)
	if err != nil {
		t.Fatal(err)
	}
	for doc, want := range map[string]bool{
		`{"a":1}`: true,
		`{}`:      false,
		`[1]`:     false,
	} {
		got, err := v.Validate(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: got %v, want %v", doc, got, want)
		}
	}
}

func TestValidateUndefinedRef(t *testing.T) {
	if _, err := NewValidatorFormula(jsl.Ref{Name: "nope"}); err == nil {
		t.Fatal("expected error for undefined reference")
	}
}

func TestValidateEmptyInput(t *testing.T) {
	v, err := NewValidatorFormula(jsl.True{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Validate(strings.NewReader(``)); err == nil {
		t.Fatal("expected error for empty stream")
	}
	if _, err := v.Validate(strings.NewReader(`{"broken"`)); err == nil {
		t.Fatal("expected syntax error to propagate")
	}
}

// TestValidateWidthIndependentMemory is the §6 experiment: the frame
// high-water mark must track nesting depth, not document width.
func TestValidateWidthIndependentMemory(t *testing.T) {
	f := jsl.BoxRe(relang.MustCompile(".*"), jsl.IsInt{})
	v, err := NewValidatorFormula(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{10, 10000} {
		var sb strings.Builder
		sb.WriteByte('{')
		for i := 0; i < width; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%q:%d", fmt.Sprintf("k%d", i), i)
		}
		sb.WriteByte('}')
		ok, stats, err := v.ValidateStats(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("width %d: expected valid", width)
		}
		if stats.MaxFrames != 1 {
			t.Errorf("width %d: MaxFrames = %d, want 1 (width-independent)", width, stats.MaxFrames)
		}
	}
}

func TestValidateDepthMemory(t *testing.T) {
	v, err := NewValidatorFormula(jsl.True{})
	if err != nil {
		t.Fatal(err)
	}
	depth := 50
	doc := strings.Repeat(`{"n":`, depth) + "0" + strings.Repeat("}", depth)
	_, stats, err := v.ValidateStats(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxFrames != depth {
		t.Errorf("MaxFrames = %d, want %d", stats.MaxFrames, depth)
	}
}

// --- differential testing against the in-memory JSL evaluator ---

func randStreamFormula(r *rand.Rand, depth int) jsl.Formula {
	if depth == 0 {
		switch r.Intn(8) {
		case 0:
			return jsl.True{}
		case 1:
			return jsl.IsObj{}
		case 2:
			return jsl.IsArr{}
		case 3:
			return jsl.IsStr{}
		case 4:
			return jsl.IsInt{}
		case 5:
			return jsl.Min{I: uint64(r.Intn(4))}
		case 6:
			return jsl.MinCh{K: r.Intn(3)}
		default:
			return jsl.EqDoc{Doc: randValue(r, 1)}
		}
	}
	switch r.Intn(8) {
	case 0:
		return jsl.Not{Inner: randStreamFormula(r, depth-1)}
	case 1:
		return jsl.And{Left: randStreamFormula(r, depth-1), Right: randStreamFormula(r, depth-1)}
	case 2:
		return jsl.Or{Left: randStreamFormula(r, depth-1), Right: randStreamFormula(r, depth-1)}
	case 3:
		return jsl.DiaWord([]string{"a", "b", "c"}[r.Intn(3)], randStreamFormula(r, depth-1))
	case 4:
		return jsl.BoxRe(relang.MustCompile("a|b"), randStreamFormula(r, depth-1))
	case 5:
		return jsl.DiamondIdx{Lo: r.Intn(2), Hi: r.Intn(2) + 1, Inner: randStreamFormula(r, depth-1)}
	case 6:
		return jsl.BoxIdx{Lo: 0, Hi: jsl.Inf, Inner: randStreamFormula(r, depth-1)}
	default:
		return jsl.MaxCh{K: r.Intn(4)}
	}
}

type streamDiffCase struct {
	doc *jsonval.Value
	f   jsl.Formula
}

func (streamDiffCase) Generate(r *rand.Rand, _ int) reflect.Value {
	// Restrict docs to ASCII-safe keys matched by the formulas.
	return reflect.ValueOf(streamDiffCase{randPlainDoc(r, 2+r.Intn(2)), randStreamFormula(r, 3)})
}

func randPlainDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(5)))
		}
		return jsonval.Str([]string{"a", "b", "x"}[r.Intn(3)])
	}
	if r.Intn(2) == 0 {
		n := r.Intn(4)
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randPlainDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	keys := []string{"a", "b", "c"}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := r.Intn(4)
	members := make([]jsonval.Member, 0, n)
	for i := 0; i < n && i < len(keys); i++ {
		members = append(members, jsonval.Member{Key: keys[i], Value: randPlainDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

// TestDifferentialVsInMemory checks that streaming validation agrees
// with the tree evaluator of Proposition 6 on random formulas and docs.
func TestDifferentialVsInMemory(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	check := func(c streamDiffCase) bool {
		v, err := NewValidatorFormula(c.f)
		if err != nil {
			t.Fatalf("compile %s: %v", jsl.String(c.f), err)
		}
		got, err := v.Validate(strings.NewReader(c.doc.String()))
		if err != nil {
			t.Logf("doc %s: %v", c.doc, err)
			return false
		}
		tree := jsontree.FromValue(c.doc)
		want, err := jsl.Holds(tree, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Logf("formula: %s", jsl.String(c.f))
			t.Logf("doc: %s", c.doc)
			t.Logf("stream=%v inmemory=%v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestValidatorReuse checks a Validator can be reused across documents
// and goroutines.
func TestValidatorReuse(t *testing.T) {
	v, err := NewValidatorFormula(jsl.DiaWord("a", jsl.IsInt{}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			ok := true
			for i := 0; i < 50; i++ {
				got, err := v.Validate(strings.NewReader(`{"a":1}`))
				if err != nil || !got {
					ok = false
				}
				got, err = v.Validate(strings.NewReader(`{"a":"s"}`))
				if err != nil || got {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Fatal("concurrent reuse gave wrong answers")
		}
	}
}

func TestValidatorJNL(t *testing.T) {
	u, err := jnl.Parse(`eq(/name/first, "John") && ![/salary]`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewValidatorJNL(u)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := v.Validate(strings.NewReader(`{"name":{"first":"John"},"age":32}`))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = v.Validate(strings.NewReader(`{"name":{"first":"Jane"}}`))
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// Outside the fragment: EQ(α,β) has no JSL counterpart.
	bad, err := jnl.Parse(`eq(/a, /b)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewValidatorJNL(bad); err == nil {
		t.Fatal("EQ(α,β) must be rejected")
	}
}

// errReader emits data up to failAt bytes, then fails with a non-EOF
// error, simulating a dropped connection mid-document.
type errReader struct {
	data   []byte
	failAt int
	pos    int
}

var errDropped = fmt.Errorf("connection dropped")

func (r *errReader) Read(p []byte) (int, error) {
	if r.pos >= r.failAt {
		return 0, errDropped
	}
	limit := r.failAt
	if limit > len(r.data) {
		limit = len(r.data)
	}
	if r.pos >= limit {
		return 0, errDropped
	}
	n := copy(p, r.data[r.pos:limit])
	r.pos += n
	return n, nil
}

func TestValidateReaderFailure(t *testing.T) {
	v, err := NewValidatorFormula(jsl.IsObj{})
	if err != nil {
		t.Fatal(err)
	}
	doc := `{"a":[1,2,3],"b":{"c":"x"}}`
	// Drop the connection at every prefix length: the validator must
	// surface an error, never a verdict, for truncated input.
	for cut := 0; cut < len(doc); cut++ {
		_, err := v.Validate(&errReader{data: []byte(doc), failAt: cut})
		if err == nil {
			t.Fatalf("cut at %d: expected an error", cut)
		}
	}
}
