package stream

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsonval"
)

// drain reads all tokens, returning them and the terminal error.
func drain(input string) ([]Token, error) {
	tok := NewTokenizer(strings.NewReader(input))
	var out []Token
	for {
		t, err := tok.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizerBasics(t *testing.T) {
	cases := []struct {
		input string
		want  []TokenKind
	}{
		{`5`, []TokenKind{NumberTok}},
		{`"x"`, []TokenKind{StringTok}},
		{`{}`, []TokenKind{BeginObject, EndObject}},
		{`[]`, []TokenKind{BeginArray, EndArray}},
		{`{"a":1}`, []TokenKind{BeginObject, KeyTok, NumberTok, EndObject}},
		{`{"a":1,"b":"x"}`, []TokenKind{BeginObject, KeyTok, NumberTok, KeyTok, StringTok, EndObject}},
		{`[1,2]`, []TokenKind{BeginArray, NumberTok, NumberTok, EndArray}},
		{`[[],{}]`, []TokenKind{BeginArray, BeginArray, EndArray, BeginObject, EndObject, EndArray}},
		{` { "a" : [ 1 , { } ] } `, []TokenKind{BeginObject, KeyTok, BeginArray, NumberTok, BeginObject, EndObject, EndArray, EndObject}},
	}
	for _, c := range cases {
		got, err := drain(c.input)
		if err != nil {
			t.Errorf("%q: %v", c.input, err)
			continue
		}
		if !reflect.DeepEqual(kinds(got), c.want) {
			t.Errorf("%q: got %v, want %v", c.input, kinds(got), c.want)
		}
	}
}

func TestTokenizerValues(t *testing.T) {
	ts, err := drain(`{"k":"a\"b\\c\ndAé😀", "n": 1234567890}`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[1].Str != "k" {
		t.Errorf("key = %q", ts[1].Str)
	}
	if want := "a\"b\\c\nd" + "A" + "é" + "😀"; ts[2].Str != want {
		t.Errorf("string = %q, want %q", ts[2].Str, want)
	}
	if ts[4].Num != 1234567890 {
		t.Errorf("number = %d", ts[4].Num)
	}
}

func TestTokenizerUTF8Passthrough(t *testing.T) {
	ts, err := drain(`"héllo wörld ∀x"`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Str != "héllo wörld ∀x" {
		t.Errorf("got %q", ts[0].Str)
	}
}

func TestTokenizerErrors(t *testing.T) {
	cases := []string{
		``,                     // empty
		`{`,                    // unterminated
		`[1,`,                  // dangling comma
		`[1,]`,                 // trailing comma
		`{,}`,                  // comma before first member
		`{"a"}`,                // missing colon
		`{"a":}`,               // missing value
		`{"a":1,}`,             // trailing comma in object
		`{"a":1 "b":2}`,        // missing comma
		`[1 2]`,                // missing comma
		`1 2`,                  // trailing input
		`{} {}`,                // trailing input
		`"unterminated`,        // unterminated string
		`"bad \q escape"`,      // invalid escape
		`"\u12g4"`,             // invalid hex
		`"\ud800"`,             // unpaired high surrogate
		`"\udc00"`,             // unpaired low surrogate
		`01`,                   // leading zero
		`-1`,                   // negatives outside the model
		`1.5`,                  // fractions outside the model
		`true`,                 // booleans outside the model
		`null`,                 // null outside the model
		`{"a":1,"a":2}`,        // duplicate key
		"\"raw\tcontrol\"",     // raw control char
		`18446744073709551616`, // overflow
	}
	for _, input := range cases {
		if _, err := drain(input); err == nil {
			t.Errorf("%q: expected error", input)
		}
	}
}

func TestTokenizerDuplicateKeysOption(t *testing.T) {
	tok := NewTokenizerOptions(strings.NewReader(`{"a":1,"a":2}`), TokenizerOptions{AllowDuplicateKeys: true})
	for {
		_, err := tok.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("duplicate keys should be allowed: %v", err)
		}
	}
}

func TestTokenizerMaxDepth(t *testing.T) {
	input := strings.Repeat("[", 40) + strings.Repeat("]", 40)
	tok := NewTokenizerOptions(strings.NewReader(input), TokenizerOptions{MaxDepth: 32})
	var err error
	for err == nil {
		_, err = tok.Next()
	}
	if err == io.EOF {
		t.Fatal("depth cap not enforced")
	}
	if !strings.Contains(err.Error(), "depth") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTokenizerOffsets(t *testing.T) {
	input := `{"ab": 17}`
	ts, err := drain(input)
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := []int64{0, 1, 7, 9}
	for i, w := range wantOffsets {
		if ts[i].Offset != w {
			t.Errorf("token %d (%v): offset %d, want %d", i, ts[i].Kind, ts[i].Offset, w)
		}
	}
}

func TestTokenizerSyntaxErrorType(t *testing.T) {
	_, err := drain(`[1,]`)
	var se *SyntaxError
	if !errorsAs(err, &se) {
		t.Fatalf("want *SyntaxError, got %T: %v", err, err)
	}
	if se.Offset <= 0 {
		t.Errorf("offset = %d", se.Offset)
	}
}

func errorsAs(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestTokenKindString(t *testing.T) {
	for k := BeginObject; k <= NumberTok; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "TokenKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TokenKind(99).String() != "TokenKind(99)" {
		t.Error("fallback name wrong")
	}
}

// TestTokenizerRoundTrip checks against the jsonval parser: any value
// serialized and re-tokenized rebuilds the same value.
func TestTokenizerRoundTrip(t *testing.T) {
	f := func(c docCase) bool {
		rebuilt, err := rebuild(NewTokenizer(strings.NewReader(c.doc.String())))
		if err != nil {
			t.Logf("doc %s: %v", c.doc, err)
			return false
		}
		return jsonval.Equal(c.doc, rebuilt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// rebuild reconstructs a value from the token stream (test helper; the
// whole point of the package is not having to do this).
func rebuild(tok *Tokenizer) (*jsonval.Value, error) {
	type frame struct {
		isObject bool
		members  []jsonval.Member
		elems    []*jsonval.Value
		key      string
	}
	var stack []*frame
	var result *jsonval.Value
	attach := func(v *jsonval.Value) error {
		if len(stack) == 0 {
			result = v
			return nil
		}
		top := stack[len(stack)-1]
		if top.isObject {
			top.members = append(top.members, jsonval.Member{Key: top.key, Value: v})
		} else {
			top.elems = append(top.elems, v)
		}
		return nil
	}
	for {
		t, err := tok.Next()
		if err == io.EOF {
			return result, nil
		}
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case KeyTok:
			stack[len(stack)-1].key = t.Str
		case BeginObject:
			stack = append(stack, &frame{isObject: true})
		case BeginArray:
			stack = append(stack, &frame{})
		case EndObject:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			v, err := jsonval.Obj(top.members...)
			if err != nil {
				return nil, err
			}
			if err := attach(v); err != nil {
				return nil, err
			}
		case EndArray:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := attach(jsonval.Arr(top.elems...)); err != nil {
				return nil, err
			}
		case StringTok:
			if err := attach(jsonval.Str(t.Str)); err != nil {
				return nil, err
			}
		case NumberTok:
			if err := attach(jsonval.Num(t.Num)); err != nil {
				return nil, err
			}
		}
	}
}

type docCase struct{ doc *jsonval.Value }

func (docCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(docCase{randValue(r, 1+r.Intn(3))})
}

func randValue(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return jsonval.Num(uint64(r.Intn(1000)))
		case 1:
			return jsonval.Str(randString(r))
		default:
			return jsonval.MustObj()
		}
	}
	if r.Intn(2) == 0 {
		n := r.Intn(4)
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randValue(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	keys := []string{"a", "b", "c", "déjà", "x y", `q"z`}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := r.Intn(4)
	members := make([]jsonval.Member, 0, n)
	for i := 0; i < n && i < len(keys); i++ {
		members = append(members, jsonval.Member{Key: keys[i], Value: randValue(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

func randString(r *rand.Rand) string {
	alphabet := []rune{'a', 'b', '"', '\\', '\n', 'é', '😀', ' '}
	n := r.Intn(6)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(out)
}

// cutReader serves the prefix of s, then fails every read with errCut
// — a stand-in for any mid-document I/O failure (a broken pipe, an
// http.MaxBytesReader cap).
type cutReader struct {
	s   string
	off int
}

var errCut = io.ErrUnexpectedEOF

func (r *cutReader) Read(p []byte) (int, error) {
	if r.off >= len(r.s) {
		return 0, errCut
	}
	n := copy(p, r.s[r.off:])
	r.off += n
	return n, nil
}

// TestTokenizerReaderErrorPropagates pins that a reader's own error is
// never rewritten into a *SyntaxError: only io.EOF means "the document
// is truncated". The daemon depends on this to map oversized request
// bodies (*http.MaxBytesError) to 413 instead of 400.
func TestTokenizerReaderErrorPropagates(t *testing.T) {
	// Each prefix stops the reader inside a different tokenizer state:
	// a bare string, an escape, a \u escape, a multi-byte UTF-8
	// sequence, a surrogate pair, an object key, and after a key.
	prefixes := []string{
		`{"k`,
		`{"k":"v`,
		`{"k":"a\`,
		`{"k":"\u00`,
		`{"k":"\uD83D`,
		`{"k":"\uD83D\`,
		"{\"k\":\"\xE2\x82",
		`{"k":1`,
		`{"k"`,
		`{"k" `,
		`{"k":[1`,
		`{`,
	}
	for _, p := range prefixes {
		tok := NewTokenizer(&cutReader{s: p})
		var err error
		for err == nil {
			_, err = tok.Next()
		}
		if err != errCut {
			t.Errorf("prefix %q: got %v (%T), want the reader's error", p, err, err)
		}
	}
	// io.EOF at the same points stays a syntax error: truncated input
	// is the document's defect, not the reader's.
	for _, p := range prefixes {
		tok := NewTokenizer(strings.NewReader(p))
		var err error
		for err == nil {
			_, err = tok.Next()
		}
		var se *SyntaxError
		if !errorsAs(err, &se) {
			t.Errorf("prefix %q at EOF: got %v (%T), want *SyntaxError", p, err, err)
		}
	}
}
