package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"jsonlogic/internal/metrics"
	"jsonlogic/internal/store"
)

// scrape fetches /metrics and parses every sample line into a
// name{labels} → value map.
func scrape(t *testing.T, url string) (samples map[string]float64, contentType, raw string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw = string(b)
	samples = make(map[string]float64)
	for _, line := range strings.Split(raw, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("/metrics: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("/metrics: bad value in %q: %v", line, err)
		}
		if _, dup := samples[line[:i]]; dup {
			t.Fatalf("/metrics: duplicate sample %q", line[:i])
		}
		samples[line[:i]] = v
	}
	return samples, resp.Header.Get("Content-Type"), raw
}

// TestMetricsExposition is the /metrics golden test: content type,
// required metric families, histogram well-formedness, and counter
// monotonicity across two scrapes with traffic in between.
func TestMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Shards: 4, DataDir: dir, Fsync: store.FsyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(NewHandler(st, Options{}))
	t.Cleanup(ts.Close)

	traffic := func(n int) {
		for i := 0; i < n; i++ {
			if code, _ := do(t, "PUT", fmt.Sprintf("%s/docs/m%d", ts.URL, i), fmt.Sprintf(`{"k":%d}`, i)); code != 200 {
				t.Fatalf("put m%d", i)
			}
		}
		do(t, "GET", ts.URL+"/docs/m0", "")
		do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"k\":1}"}`)
		do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"k\":{\"$ne\":1}}"}`)
	}
	traffic(4)

	s1, contentType, raw := scrape(t, ts.URL)
	if contentType != metrics.ContentType {
		t.Fatalf("content type = %q, want %q", contentType, metrics.ContentType)
	}

	// Required families, spanning every subsystem the ISSUE names:
	// store gauges, query/planner counters, candidates and fan-out
	// histograms, plan cache, durability, tracing, Go runtime, HTTP
	// middleware.
	required := []string{
		"jsonstored_slow_queries_total",
		"jsonstored_traces_started_total",
		"jsonstored_traces_sampled_total",
		"jsonstored_traces_dropped_total",
		"jsonstored_trace_ring_entries",
		"jsonstored_go_goroutines",
		"jsonstored_go_heap_alloc_bytes",
		"jsonstored_go_heap_sys_bytes",
		"jsonstored_go_gc_total",
		`jsonstored_go_gc_pause_seconds_bucket{le="+Inf"}`,
		"jsonstored_go_gc_pause_seconds_count",
		"jsonstored_docs",
		"jsonstored_index_terms",
		`jsonstored_queries_total{mode="find",access="index"}`,
		`jsonstored_queries_total{mode="find",access="scan"}`,
		"jsonstored_candidate_docs_total",
		"jsonstored_scanned_docs_total",
		"jsonstored_planner_scan_total",
		"jsonstored_planner_terms_skipped_total",
		`jsonstored_query_candidates_bucket{mode="find",le="+Inf"}`,
		`jsonstored_query_candidates_count{mode="find"}`,
		`jsonstored_query_fanout_workers_bucket{le="+Inf"}`,
		"jsonstored_intersection_steps_total",
		"jsonstored_cancellations_total",
		`jsonstored_sheds_total{reason="query_gate"}`,
		`jsonstored_sheds_total{reason="bulk_bytes"}`,
		`jsonstored_sheds_total{reason="draining"}`,
		"jsonstored_gate_waits_total",
		"jsonstored_degraded",
		"jsonstored_degraded_shards",
		"jsonstored_wal_retry_total",
		"jsonstored_wal_heal_total",
		"jsonstored_plan_cache_hits_total",
		"jsonstored_plan_cache_misses_total",
		"jsonstored_plan_cache_entries",
		"jsonstored_wal_appends_total",
		"jsonstored_wal_syncs_total",
		"jsonstored_wal_failed",
		"jsonstored_segments",
		"jsonstored_segment_bytes",
		"jsonstored_segment_docs",
		"jsonstored_memtable_docs",
		"jsonstored_compactions_total",
		"jsonstored_recovery_segments_mapped",
		"jsonstored_recovery_invalid_segments",
		"jsonstored_recovery_wal_records_replayed",
		`jsonstored_http_requests_total{endpoint="put_doc",code="200"}`,
		`jsonstored_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"}`,
		`jsonstored_http_request_duration_seconds_sum{endpoint="put_doc"}`,
		`jsonstored_http_request_duration_seconds_count{endpoint="get_doc"}`,
	}
	for _, name := range required {
		if _, ok := s1[name]; !ok {
			t.Errorf("missing required sample %s", name)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", raw)
	}

	// Every family has exactly one HELP and one TYPE line.
	for _, fam := range []string{"jsonstored_queries_total", "jsonstored_query_candidates", "jsonstored_http_request_duration_seconds"} {
		if n := strings.Count(raw, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
		if n := strings.Count(raw, "# HELP "+fam+" "); n != 1 {
			t.Errorf("family %s has %d HELP lines", fam, n)
		}
	}

	// Concrete values the traffic above fixes exactly.
	if got := s1[`jsonstored_http_requests_total{endpoint="put_doc",code="200"}`]; got != 4 {
		t.Errorf("put_doc requests = %v, want 4", got)
	}
	if got := s1["jsonstored_docs"]; got != 4 {
		t.Errorf("docs gauge = %v, want 4", got)
	}
	if got := s1["jsonstored_wal_appends_total"]; got != 4 {
		t.Errorf("wal appends = %v, want 4", got)
	}

	// Histogram sanity: bucket counts are cumulative (monotone in le
	// within one scrape) and +Inf equals _count.
	hist := `jsonstored_http_request_duration_seconds`
	inf := s1[hist+`_bucket{endpoint="put_doc",le="+Inf"}`]
	if inf != s1[hist+`_count{endpoint="put_doc"}`] || inf != 4 {
		t.Errorf("+Inf bucket %v != count %v (want 4)", inf, s1[hist+`_count{endpoint="put_doc"}`])
	}

	traffic(4)
	s2, _, _ := scrape(t, ts.URL)

	// Counter monotonicity: no *_total or histogram sample goes
	// backwards between scrapes, and the request counters provably
	// advanced.
	for name, v1 := range s1 {
		if !strings.Contains(name, "_total") && !strings.Contains(name, "_bucket") && !strings.Contains(name, "_count") && !strings.Contains(name, "_sum") {
			continue
		}
		if v2, ok := s2[name]; ok && v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", name, v1, v2)
		}
	}
	if s2[`jsonstored_http_requests_total{endpoint="put_doc",code="200"}`] != 8 {
		t.Errorf("put_doc requests after second round = %v, want 8",
			s2[`jsonstored_http_requests_total{endpoint="put_doc",code="200"}`])
	}
	if s2["jsonstored_plan_cache_hits_total"] <= s1["jsonstored_plan_cache_hits_total"] {
		t.Errorf("plan cache hits did not advance: %v -> %v",
			s1["jsonstored_plan_cache_hits_total"], s2["jsonstored_plan_cache_hits_total"])
	}
	// The scrape instruments itself: the first scrape is visible in
	// the second.
	if s2[`jsonstored_http_requests_total{endpoint="metrics",code="200"}`] < 1 {
		t.Errorf("metrics endpoint not self-instrumented")
	}

	// Tier accounting: before any compaction everything lives in the
	// memtable; a snapshot moves it into one segment per shard and the
	// gauges follow.
	if s2["jsonstored_memtable_docs"] != 4 || s2["jsonstored_segments"] != 0 {
		t.Errorf("pre-compaction tiers: memtable %v segments %v, want 4 and 0",
			s2["jsonstored_memtable_docs"], s2["jsonstored_segments"])
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s3, _, _ := scrape(t, ts.URL)
	if s3["jsonstored_segments"] != 4 || s3["jsonstored_segment_docs"] != 4 || s3["jsonstored_memtable_docs"] != 0 {
		t.Errorf("post-compaction tiers: segments %v segment_docs %v memtable %v, want 4/4/0",
			s3["jsonstored_segments"], s3["jsonstored_segment_docs"], s3["jsonstored_memtable_docs"])
	}
	if s3["jsonstored_compactions_total"] != 4 || s3["jsonstored_segment_bytes"] == 0 {
		t.Errorf("post-compaction: compactions %v segment_bytes %v, want 4 and nonzero",
			s3["jsonstored_compactions_total"], s3["jsonstored_segment_bytes"])
	}
}
