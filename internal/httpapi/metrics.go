package httpapi

import (
	"net/http"

	"jsonlogic/internal/metrics"
)

// promPrefix namespaces every exposed family, per Prometheus naming
// convention (<namespace>_<subsystem>_<name>_<unit>).
const promPrefix = "jsonstored_"

// metrics serves GET /metrics: the same counters /stats reports as
// JSON, rendered in Prometheus text exposition format for scrapers —
// store size gauges, query/planner counters, the candidates and
// fan-out histograms with cumulative buckets, durability/recovery
// stats, plan-cache counters, and the middleware's per-endpoint
// request/latency families. Scraping reads the same atomics the
// query path writes; it never takes a store-wide lock beyond the
// per-shard read locks Stats takes.
func (s *server) metrics(w http.ResponseWriter, _ *http.Request) {
	var e metrics.Exposition
	st := s.store.Stats()

	e.Gauge(promPrefix+"docs", "Documents stored, across shards.", float64(st.Docs))
	e.Gauge(promPrefix+"shards", "Shard count.", float64(len(st.Shards)))
	e.Gauge(promPrefix+"index_terms", "Distinct index terms across shards.", float64(st.Terms))
	e.Gauge(promPrefix+"index_postings", "Index posting-list entries across shards.", float64(st.Entries))

	q := st.Queries
	queries := promPrefix + "queries_total"
	queriesHelp := "Queries evaluated, by mode and access path."
	e.Counter(queries, queriesHelp, q.FindIndexed,
		metrics.Label{Name: "mode", Value: "find"}, metrics.Label{Name: "access", Value: "index"})
	e.Counter(queries, queriesHelp, q.FindScan,
		metrics.Label{Name: "mode", Value: "find"}, metrics.Label{Name: "access", Value: "scan"})
	e.Counter(queries, queriesHelp, q.SelectIndexed,
		metrics.Label{Name: "mode", Value: "select"}, metrics.Label{Name: "access", Value: "index"})
	e.Counter(queries, queriesHelp, q.SelectScan,
		metrics.Label{Name: "mode", Value: "select"}, metrics.Label{Name: "access", Value: "scan"})
	e.Counter(promPrefix+"candidate_docs_total", "Documents evaluated on indexed queries.", q.CandidateDocs)
	e.Counter(promPrefix+"scanned_docs_total", "Documents evaluated on scans.", q.ScannedDocs)
	e.Counter(promPrefix+"planner_scan_total", "Index-supported queries the cost-based planner sent to a scan.", q.PlannerScan)
	e.Counter(promPrefix+"planner_terms_skipped_total", "Near-useless index terms the planner dropped from intersections.", q.TermsSkipped)
	e.Counter(promPrefix+"semantic_short_circuits_total", "Queries answered empty from a compile-time emptiness proof, without probing or evaluating any document.", q.SemanticShortCircuits)
	e.Counter(promPrefix+"planner_terms_pruned_total", "Index terms skipped as schema-universal (held by every conforming document).", q.TermsPruned)
	e.Counter(promPrefix+"schema_rejects_total", "Writes rejected for not conforming to the enforced schema.", q.SchemaRejects)
	e.Counter(promPrefix+"queries_parallel_total", "Queries whose shard fan-out used more than one worker.", q.ParallelQueries)
	e.Counter(promPrefix+"queries_serial_total", "Queries evaluated on a single worker.", q.SerialQueries)
	e.Counter(promPrefix+"intersection_steps_total", "Posting-list merge steps (comparisons and gallop probes) on indexed queries.", q.IntersectionSteps)
	e.Counter(promPrefix+"cancellations_total", "Queries aborted by context cancellation or deadline expiry.", q.Cancellations)

	// Admission control: load shed before any work happened, by cause.
	sheds := promPrefix + "sheds_total"
	shedsHelp := "Requests shed by admission control, by reason."
	shed := func(reason string, v uint64) {
		e.Counter(sheds, shedsHelp, v, metrics.Label{Name: "reason", Value: reason})
	}
	var gateSheds, gateWaits uint64
	if s.qgate != nil {
		gateSheds, gateWaits = s.qgate.sheds.Load(), s.qgate.waits.Load()
	}
	shed("query_gate", gateSheds)
	var bulkSheds uint64
	if s.bulkBytes != nil {
		bulkSheds = s.bulkBytes.sheds.Load()
	}
	shed("bulk_bytes", bulkSheds)
	shed("draining", s.drainSheds.Load())
	e.Counter(promPrefix+"gate_waits_total", "Queries that queued for an execution slot before running.", gateWaits)

	find, sel, fan := s.store.MetricsHistograms()
	candidates := promPrefix + "query_candidates"
	candidatesHelp := "Candidate-set size per indexed query, by mode."
	e.Histogram(candidates, candidatesHelp, find, 1, metrics.Label{Name: "mode", Value: "find"})
	e.Histogram(candidates, candidatesHelp, sel, 1, metrics.Label{Name: "mode", Value: "select"})
	e.Histogram(promPrefix+"query_fanout_workers", "Workers used per query's shard fan-out.", fan, 1)

	cs := s.eng.CacheStats()
	e.Counter(promPrefix+"plan_cache_hits_total", "Plan-cache hits.", cs.Hits)
	e.Counter(promPrefix+"plan_cache_misses_total", "Plan-cache misses (compiles).", cs.Misses)
	e.Counter(promPrefix+"plan_cache_evictions_total", "Plans evicted from the LRU cache.", cs.Evictions)
	e.Gauge(promPrefix+"plan_cache_entries", "Plans currently cached.", float64(cs.Entries))
	e.Gauge(promPrefix+"plan_cache_capacity", "Plan-cache capacity.", float64(cs.Capacity))

	// The semantic pass (satisfiability, containment dedup, schema
	// pruning) runs on plan-cache misses only; all zeros when disabled.
	e.Counter(promPrefix+"semantic_checks_total", "Compiles the semantic pass analyzed.", cs.SemanticChecks)
	e.Counter(promPrefix+"semantic_unsat_total", "Compiles proven unsatisfiable (compiled to a constant-empty program).", cs.SemanticUnsat)
	e.Counter(promPrefix+"semantic_unknown_total", "Semantic checks that exhausted their budget undecided.", cs.SemanticUnknown)
	e.Counter(promPrefix+"semantic_aliases_total", "Compiles answered by a containment-equivalent cached plan.", cs.SemanticAliases)
	e.Counter(promPrefix+"semantic_borrowed_facts_total", "Index facts borrowed from strictly-containing cached plans.", cs.SemanticBorrowed)
	e.Counter(promPrefix+"semantic_schema_pruned_facts_total", "Facts the schema proved universal over conforming documents.", cs.SchemaPrunedFacts)

	if d := st.Durability; d != nil {
		e.Counter(promPrefix+"wal_appends_total", "WAL records appended since open, across shards.", d.WALAppends)
		e.Counter(promPrefix+"wal_bytes_total", "WAL bytes framed since open.", d.WALBytes)
		e.Counter(promPrefix+"wal_syncs_total", "WAL fsyncs issued since open.", d.WALSyncs)
		e.Gauge(promPrefix+"wal_segment_records", "Records across active WAL segments: the replay debt a crash now would incur.", float64(d.WALSegmentRecords))
		e.Counter(promPrefix+"snapshots_total", "Snapshot attempts since open.", d.Snapshots)
		e.Counter(promPrefix+"snapshot_errors_total", "Failed snapshot attempts since open.", d.SnapshotErrors)
		walFailed := uint64(0)
		if d.LastError != "" {
			walFailed = 1
		}
		e.Gauge(promPrefix+"wal_failed", "1 when a sticky WAL error has the store refusing writes.", float64(walFailed))
		degraded := uint64(0)
		if d.Degraded {
			degraded = 1
		}
		e.Gauge(promPrefix+"degraded", "1 while any shard is degraded read-only after a WAL failure.", float64(degraded))
		e.Gauge(promPrefix+"degraded_shards", "Shards currently degraded read-only.", float64(d.DegradedShards))
		e.Counter(promPrefix+"wal_retry_total", "Heal attempts the degraded-shard probe has made.", d.WALRetries)
		e.Counter(promPrefix+"wal_heal_total", "Degraded shards successfully healed (WAL reset + snapshot).", d.WALHeals)
		// The tiered read path: immutable mmap'd segments under the
		// mutable memtable, converted by compaction (segment builds).
		e.Gauge(promPrefix+"segments", "Immutable segment files currently serving reads, across shards.", float64(d.Segments))
		e.Gauge(promPrefix+"segment_bytes", "Bytes of segment files mapped (or heap-resident on the no-mmap fallback).", float64(d.SegmentBytes))
		e.Gauge(promPrefix+"segment_docs", "Live documents served from the segment tier.", float64(d.SegmentDocs))
		e.Gauge(promPrefix+"memtable_docs", "Documents in the mutable memtable tier above the segments.", float64(d.MemtableDocs))
		e.Counter(promPrefix+"compactions_total", "Segment builds (memtable + old segment merged to a new segment) since open.", d.Compactions)
		rec := d.Recovery
		e.Gauge(promPrefix+"recovery_segments_mapped", "Shards restored at startup by mapping a segment file.", float64(rec.SegmentsMapped))
		e.Gauge(promPrefix+"recovery_segment_docs", "Documents served from segments mapped at startup.", float64(rec.SegmentDocs))
		e.Gauge(promPrefix+"recovery_invalid_segments", "Torn or corrupt segment files skipped at startup in favor of an older generation.", float64(rec.InvalidSegments))
		e.Gauge(promPrefix+"recovery_snapshot_docs", "Documents loaded from legacy snapshots at startup.", float64(rec.SnapshotDocs))
		e.Gauge(promPrefix+"recovery_wal_records_replayed", "WAL records replayed at startup.", float64(rec.WALRecordsReplayed))
		e.Gauge(promPrefix+"recovery_torn_tails", "Torn WAL tails truncated at startup.", float64(rec.TornTails))
	}

	// Per-query tracing: how many queries crossed the slow threshold,
	// what the sampler armed, and how full the /debug/queries ring is.
	// All zeros when no Tracer is configured.
	ts := s.tracer.Stats()
	e.Counter(promPrefix+"slow_queries_total", "Queries at or over the slow-query threshold (traced, ringed and logged).", ts.Slow)
	e.Counter(promPrefix+"traces_started_total", "Queries that ran with an armed trace recorder.", ts.Started)
	e.Counter(promPrefix+"traces_sampled_total", "Traces armed by the 1-in-N sampler.", ts.Sampled)
	e.Counter(promPrefix+"traces_dropped_total", "Armed traces discarded at completion (neither slow nor sampled).", ts.Dropped)
	e.Gauge(promPrefix+"trace_ring_entries", "Trace snapshots held in the /debug/queries ring.", float64(ts.RingEntries))

	s.runtime.Expose(&e, promPrefix)
	s.http.Expose(&e, promPrefix)

	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = e.WriteTo(w)
}
