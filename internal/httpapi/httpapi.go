// Package httpapi implements jsonstored's HTTP surface: the document
// CRUD, bulk-ingest, query/explain/validate and introspection
// endpoints over one internal/store.Store. It lives below cmd so an
// in-process daemon can be assembled anywhere an http.Handler fits —
// the load generator's self-test (internal/load) drives exactly the
// handler the real daemon serves, httptest instead of a socket.
//
// Every route is wrapped in the metrics middleware; GET /metrics
// exposes the store's query/planner/durability counters, the
// engine's plan-cache statistics and the per-endpoint request-latency
// histograms in Prometheus text exposition format.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/metrics"
	"jsonlogic/internal/store"
	"jsonlogic/internal/trace"
)

// DefaultMaxBody bounds one request body when Options.MaxBody is zero
// (64 MiB; covers bulk uploads).
const DefaultMaxBody = 64 << 20

// Options configure the handler. The zero value is the production
// configuration.
type Options struct {
	// MaxBody caps one request body in bytes (default DefaultMaxBody).
	// Oversized bodies fail with 413, never truncate silently. Tests
	// shrink it to exercise the limit without 64MiB uploads.
	MaxBody int64
	// Tracer arms per-query traces on POST /query and feeds the
	// slow-query ring GET /debug/queries serves. nil disables tracing
	// entirely (the endpoint then reports an empty ring).
	Tracer *trace.Tracer
	// QueryTimeout bounds each /query and /explain execution; a
	// request can tighten or loosen it per call with an X-Timeout-Ms
	// header. Zero means no server-side timeout.
	QueryTimeout time.Duration
	// MaxConcurrentQueries bounds in-flight /query and /explain
	// executions; excess requests wait in a bounded queue and are shed
	// with 429 once it fills. Zero disables admission control.
	MaxConcurrentQueries int
	// MaxQueuedQueries bounds the admission queue (default: twice
	// MaxConcurrentQueries). Only meaningful with a positive
	// MaxConcurrentQueries.
	MaxQueuedQueries int
	// MaxBulkBytes bounds the total Content-Length of concurrently
	// admitted /bulk uploads; excess uploads are shed with 429. Zero
	// disables the bound (each body is still individually capped by
	// MaxBody).
	MaxBulkBytes int64
}

// server routes the HTTP API onto one Store and its Engine.
type server struct {
	store        *store.Store
	eng          *engine.Engine
	maxBody      int64
	tracer       *trace.Tracer
	http         *metrics.HTTPMetrics
	runtime      *metrics.RuntimeMetrics
	queryTimeout time.Duration
	qgate        *gate
	bulkBytes    *byteGate
	draining     atomic.Bool
	drainSheds   atomic.Uint64
}

// Handler is the daemon's HTTP handler: the routed API plus the
// drain switch the daemon flips when shutdown begins.
type Handler struct {
	http.Handler
	s *server
}

// SetDraining flips drain mode: while draining, every request except
// the read-only introspection endpoints (GET /metrics, /stats,
// /debug/queries) is answered immediately with 503 and Retry-After,
// so load balancers fail over at once instead of queueing behind a
// closing listener. In-flight requests are unaffected — the caller
// still drains them with http.Server.Shutdown.
func (h *Handler) SetDraining(v bool) { h.s.draining.Store(v) }

// NewHandler returns the daemon's handler over st.
func NewHandler(st *store.Store, opts Options) *Handler {
	if opts.MaxBody <= 0 {
		opts.MaxBody = DefaultMaxBody
	}
	queue := opts.MaxQueuedQueries
	if queue == 0 {
		queue = 2 * opts.MaxConcurrentQueries
	}
	s := &server{
		store:        st,
		eng:          st.Engine(),
		maxBody:      opts.MaxBody,
		tracer:       opts.Tracer,
		http:         &metrics.HTTPMetrics{},
		runtime:      &metrics.RuntimeMetrics{},
		queryTimeout: opts.QueryTimeout,
		qgate:        newGate(opts.MaxConcurrentQueries, queue),
		bulkBytes:    newByteGate(opts.MaxBulkBytes),
	}
	mux := http.NewServeMux()
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.http.Instrument(endpoint, echoRequestID(h)))
	}
	route("PUT /docs/{id}", "put_doc", s.putDoc)
	route("GET /docs/{id}", "get_doc", s.getDoc)
	route("DELETE /docs/{id}", "delete_doc", s.deleteDoc)
	route("POST /bulk", "bulk", s.bulk)
	route("POST /query", "query", s.query)
	route("POST /explain", "explain", s.explain)
	route("POST /validate", "validate", s.validate)
	route("GET /stats", "stats", s.stats)
	route("GET /metrics", "metrics", s.metrics)
	route("GET /debug/queries", "debug_queries", s.debugQueries)
	return &Handler{Handler: s.drainWrap(mux), s: s}
}

// drainWrap rejects requests while draining, passing through the
// introspection endpoints an operator (or scraper) needs to watch the
// drain itself.
func (s *server) drainWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			switch {
			case r.Method == http.MethodGet && (r.URL.Path == "/metrics" || r.URL.Path == "/stats" || r.URL.Path == "/debug/queries"):
			default:
				s.drainSheds.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "server is shutting down")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// echoRequestID reflects a client-supplied X-Request-ID back on the
// response, so callers correlating against logs, traces or a load
// generator's slowest-request report can confirm the id round-tripped.
func echoRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get("X-Request-ID"); id != "" {
			w.Header().Set("X-Request-ID", id)
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// bodyErrStatus maps a request-body read failure to its status:
// hitting the MaxBytesReader limit is 413 Request Entity Too Large
// (the body was bigger than the server accepts), everything else —
// malformed JSON, an early disconnect — is the client's 400. The
// *http.MaxBytesError survives errors.As through the tokenizer, the
// bulk scanner and json.Decoder, all of which return reader errors
// unwrapped (or wrapped with %w / errors.Join).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// StatusClientClosedRequest is the non-standard (nginx-originated)
// status reported when the client went away before the query
// finished; no client sees it, but it keeps the access metrics honest
// about who aborted.
const StatusClientClosedRequest = 499

// queryErrStatus maps a query-execution failure: the server's
// deadline is a 504 (the query ran too long, the server gave up), the
// client's disappearance is 499, a degraded store is 503 — the
// rest is the server's 500.
func queryErrStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, store.ErrDegraded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeStoreErr maps a write-path store failure: a degraded shard is
// the retryable 503 (the WAL failed; the store is read-only until the
// background probe heals it), anything else the non-retryable 500.
func writeStoreErr(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrDegraded) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// queryCtx derives the execution context for one /query or /explain
// request: the client's context bounded by the configured
// QueryTimeout, which an X-Timeout-Ms header overrides per request
// (0 disables the timeout for that request). Reports ok=false (and
// writes the 400) on a malformed header.
func (s *server) queryCtx(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	timeout := s.queryTimeout
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad X-Timeout-Ms %q", h)
			return nil, nil, false
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx := r.Context()
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		return ctx, cancel, true
	}
	return ctx, func() {}, true
}

// admit passes the request through the query gate, recording the wait
// as a "gate" span on tr and writing the 429/504 on rejection.
// Returns the release function and ok.
func (s *server) admit(w http.ResponseWriter, ctx context.Context, tr *trace.Trace) (func(), bool) {
	if s.qgate == nil {
		return func() {}, true
	}
	sp := tr.Start(tr.Root(), "gate")
	release, err := s.qgate.acquire(ctx)
	tr.End(sp)
	if err == nil {
		return release, true
	}
	if errors.Is(err, errShed) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	} else {
		writeError(w, queryErrStatus(err), "query admission: %v", err)
	}
	return nil, false
}

func (s *server) putDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Stream the body straight into a tree — the same tokenizer path as
	// /bulk — instead of buffering and re-materializing through jsonval.
	t, err := engine.BuildTree(http.MaxBytesReader(w, r.Body, s.maxBody), jsontree.NewBuilder())
	if err != nil {
		writeError(w, bodyErrStatus(err), "%v", err)
		return
	}
	if err := s.store.PutTree(id, t); err != nil {
		if errors.Is(err, store.ErrSchema) {
			// The document parsed but does not conform to the store's
			// enforced schema: the request is well-formed, its content is
			// not — 422, distinct from the 400 parse failures above.
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		// A WAL failure: the write is not durable (a failed append was
		// additionally never applied). A degraded shard maps to 503.
		writeStoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "nodes": t.Len()})
}

func (s *server) getDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Stream node-at-a-time (byte-for-byte t.String() plus the
	// trailing newline) instead of materializing the whole document in
	// memory first — GET is the hottest endpoint, and one
	// document-sized allocation per read was its biggest cost.
	if _, err := t.WriteTo(w); err != nil {
		return // client gone mid-body; nothing sensible left to send
	}
	w.Write([]byte{'\n'})
}

func (s *server) deleteDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.store.Delete(id)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

func (s *server) bulk(w http.ResponseWriter, r *http.Request) {
	// Bound the bytes of concurrently admitted uploads before reading
	// anything. An unknown Content-Length (chunked upload) reserves the
	// worst case, maxBody.
	n := r.ContentLength
	if n < 0 {
		n = s.maxBody
	}
	release, gerr := s.bulkBytes.acquire(n)
	if gerr != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", gerr)
		return
	}
	defer release()
	// MaxBytesReader (not LimitReader) so an oversized upload surfaces
	// as an ingest error instead of a silent truncation reported as
	// success.
	res, err := s.store.BulkNDJSON(http.MaxBytesReader(w, r.Body, s.maxBody))
	type lineError struct {
		Line  int    `json:"line"`
		Error string `json:"error"`
	}
	errs := make([]lineError, len(res.Errors))
	for i, e := range res.Errors {
		errs[i] = lineError{Line: e.Line, Error: e.Err.Error()}
	}
	body := map[string]any{
		"inserted": len(res.IDs),
		"ids":      res.IDs,
		"errors":   errs,
		// How many of the inserted lines are already durable per the
		// store's fsync policy. On a mid-batch WAL failure this is the
		// prefix the client does NOT need to re-upload.
		"durable": res.Durable,
	}
	if err != nil {
		// Lines before the failure are already stored; report them so
		// the client can reconcile instead of blindly re-uploading.
		// A WAL/disk failure is the server's fault, 500 — matching the
		// put/delete handlers — or 503 when it tripped the shard into
		// degraded mode; an oversized body is 413; every other abort
		// (oversized line, client disconnect mid-upload) is the
		// stream's, 400.
		status := bodyErrStatus(err)
		if errors.Is(err, store.ErrWAL) {
			status = http.StatusInternalServerError
		}
		if errors.Is(err, store.ErrDegraded) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		body["error"] = fmt.Sprintf("bulk ingest aborted: %v", err)
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// queryRequest is the body of POST /query and POST /validate.
type queryRequest struct {
	// Lang is the front end: "jnl", "jsl", "jsonpath" or "mongo".
	Lang string `json:"lang"`
	// Query is the source text in that language.
	Query string `json:"query"`
	// Mode selects document matching ("find", default) or node
	// selection ("select") for /query.
	Mode string `json:"mode"`
	// Values asks "select" results to include the rendered JSON of
	// each selected node.
	Values bool `json:"values"`
	// ID and Doc select the validation subject for /validate: a stored
	// document or an inline one.
	ID  string `json:"id"`
	Doc string `json:"doc"`
}

// decodeQuery reads the shared /query-family request body.
func (s *server) decodeQuery(w http.ResponseWriter, r *http.Request) (*queryRequest, bool) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		writeError(w, bodyErrStatus(err), "bad request body: %v", err)
		return nil, false
	}
	return &req, true
}

// compileReq parses the request's language and compiles its query,
// recording compile spans on tr (nil for the untraced endpoints).
func (s *server) compileReq(w http.ResponseWriter, req *queryRequest, tr *trace.Trace) (*engine.Plan, bool) {
	lang, err := engine.ParseLanguage(req.Lang)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	p, err := s.eng.CompileTraced(lang, req.Query, tr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "compile: %v", err)
		return nil, false
	}
	return p, true
}

func (s *server) compile(w http.ResponseWriter, r *http.Request) (*engine.Plan, *queryRequest, bool) {
	req, ok := s.decodeQuery(w, r)
	if !ok {
		return nil, nil, false
	}
	p, ok := s.compileReq(w, req, nil)
	return p, req, ok
}

func (s *server) query(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	// The trace spans the whole pipeline from here: compile (plan-cache
	// lookup, front-end parse, QIR compile) through the store's plan /
	// probe / eval / merge stages. Finish decides whether it is kept —
	// slow or sampled — or dropped back into the recorder pool.
	tr := s.tracer.Start()
	defer s.tracer.Finish(tr)
	mode := req.Mode
	if mode == "" {
		mode = "find" // record the default explicitly, not the omission
	}
	tr.SetQuery(req.Lang, req.Query, mode)
	tr.SetRequestID(r.Header.Get("X-Request-ID"))
	ctx, cancel, ok := s.queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	release, ok := s.admit(w, ctx, tr)
	if !ok {
		return
	}
	defer release()
	p, ok := s.compileReq(w, req, tr)
	if !ok {
		return
	}
	switch req.Mode {
	case "", "find":
		ids, indexed, err := s.store.FindTraced(ctx, p, tr)
		if err != nil {
			writeError(w, queryErrStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(ids),
			"ids":     ids,
			"indexed": indexed,
		})
	case "select":
		sels, indexed, err := s.store.SelectTraced(ctx, p, tr)
		if err != nil {
			writeError(w, queryErrStatus(err), "%v", err)
			return
		}
		type docSelection struct {
			ID     string   `json:"id"`
			Nodes  []int    `json:"nodes"`
			Values []string `json:"values,omitempty"`
		}
		out := make([]docSelection, len(sels))
		for i, sel := range sels {
			ds := docSelection{ID: sel.ID, Nodes: make([]int, len(sel.Nodes))}
			for j, n := range sel.Nodes {
				ds.Nodes[j] = int(n)
			}
			if req.Values {
				// Render from the selection's snapshot tree: the node IDs
				// are only meaningful there, and the stored document may
				// have been replaced concurrently.
				ds.Values = make([]string, len(sel.Nodes))
				for j, n := range sel.Nodes {
					ds.Values[j] = sel.Tree.Value(n).String()
				}
			}
			out[i] = ds
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(out),
			"results": out,
			"indexed": indexed,
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q", req.Mode)
	}
}

// explain runs the query like /query but reports how instead of what:
// the lowered logical tree, the physical operator program, the
// planner's access decision with per-term statistics, and estimated
// versus actual cardinalities.
func (s *server) explain(w http.ResponseWriter, r *http.Request) {
	// Explain executes the real pipeline, so it pays the same admission
	// toll and timeout as /query.
	ctx, cancel, ok := s.queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	release, ok := s.admit(w, ctx, nil)
	if !ok {
		return
	}
	defer release()
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	switch req.Mode {
	case "", "find", "select":
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q", req.Mode)
		return
	}
	ex, err := s.store.Explain(ctx, p, req.Mode)
	if err != nil {
		// The mode was validated above, so any error here is an
		// evaluation failure; timeouts and degradation map like /query.
		writeError(w, queryErrStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *server) validate(w http.ResponseWriter, r *http.Request) {
	p, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	var t *jsontree.Tree
	switch {
	case req.ID != "" && req.Doc != "":
		writeError(w, http.StatusBadRequest, "give id or doc, not both")
		return
	case req.ID != "":
		var found bool
		t, found = s.store.Get(req.ID)
		if !found {
			writeError(w, http.StatusNotFound, "no document %q", req.ID)
			return
		}
	case req.Doc != "":
		var err error
		t, err = jsontree.Parse(req.Doc)
		if err != nil {
			writeError(w, http.StatusBadRequest, "doc: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "give id or doc")
		return
	}
	valid, err := s.eng.Validate(p, t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"valid": valid})
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	cs := s.eng.CacheStats()
	var hitRate float64
	if cs.Hits+cs.Misses > 0 {
		hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"store": s.store.Stats(),
		"plan_cache": map[string]any{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"evictions": cs.Evictions,
			"entries":   cs.Entries,
			"capacity":  cs.Capacity,
			"hit_rate":  hitRate,
		},
		"semantic": map[string]any{
			"checks":              cs.SemanticChecks,
			"unsat":               cs.SemanticUnsat,
			"unknown":             cs.SemanticUnknown,
			"aliases":             cs.SemanticAliases,
			"borrowed_facts":      cs.SemanticBorrowed,
			"schema_pruned_facts": cs.SchemaPrunedFacts,
		},
	})
}
