package httpapi

// gate.go: query admission control. Under overload the server sheds
// early and cheaply — a 429 with Retry-After before any compile or
// evaluation work — instead of queueing unboundedly and timing every
// request out. Two independent limiters:
//
//   - gate bounds in-flight queries (POST /query and /explain): a
//     semaphore of execution slots plus a bounded wait queue. A query
//     that cannot get a slot reserves a queue place and blocks until a
//     slot frees or its context expires; when the queue is full too,
//     the request is shed immediately.
//   - byteGate bounds the bytes of bulk-ingest bodies in flight, by
//     Content-Length, so concurrent large uploads cannot multiply the
//     per-request MaxBody bound into an OOM.
//
// Both are nil/zero-disabled: the default configuration admits
// everything, matching the pre-gate behaviour.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// errShed is returned by gate.acquire when both the execution slots
// and the wait queue are full; the handler maps it to 429.
var errShed = errors.New("httpapi: too many concurrent queries")

// errBulkShed is byteGate's analogue for bulk uploads.
var errBulkShed = errors.New("httpapi: too many bulk-upload bytes in flight")

// gate is a two-stage admission semaphore: slots bound execution,
// queue bounds waiting. Channel-based so waiting composes with
// context cancellation.
type gate struct {
	slots chan struct{}
	queue chan struct{}
	sheds atomic.Uint64 // requests rejected with errShed
	waits atomic.Uint64 // requests that had to queue before running
}

// newGate returns a gate admitting slots concurrent queries with up
// to queue waiters, or nil (no gating) when slots <= 0.
func newGate(slots, queue int) *gate {
	if slots <= 0 {
		return nil
	}
	if queue < 0 {
		queue = 0
	}
	return &gate{
		slots: make(chan struct{}, slots),
		queue: make(chan struct{}, queue),
	}
}

// acquire reserves an execution slot, blocking in the bounded queue
// when none is free. It returns the release function, errShed when
// the queue is full (shed the request now), or ctx.Err() when the
// context expired while queued. A nil gate admits everything.
func (g *gate) acquire(ctx context.Context) (func(), error) {
	if g == nil {
		return func() {}, nil
	}
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	default:
	}
	select {
	case g.queue <- struct{}{}:
	default:
		g.sheds.Add(1)
		return nil, errShed
	}
	g.waits.Add(1)
	defer func() { <-g.queue }()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// byteGate bounds the total request-body bytes admitted concurrently.
type byteGate struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	sheds atomic.Uint64
}

// newByteGate returns a byteGate admitting max in-flight bytes, or
// nil (no gating) when max <= 0.
func newByteGate(max int64) *byteGate {
	if max <= 0 {
		return nil
	}
	return &byteGate{max: max}
}

// acquire admits n bytes, returning the release function or
// errBulkShed. A request larger than the whole budget is still
// admitted when the gate is idle — MaxBody bounds it individually —
// so a generous single upload cannot deadlock against a tight gate.
// A nil gate admits everything.
func (b *byteGate) acquire(n int64) (func(), error) {
	if b == nil {
		return func() {}, nil
	}
	b.mu.Lock()
	if b.cur > 0 && b.cur+n > b.max {
		b.mu.Unlock()
		b.sheds.Add(1)
		return nil, errBulkShed
	}
	b.cur += n
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		b.cur -= n
		b.mu.Unlock()
	}, nil
}
