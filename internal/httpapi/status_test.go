package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jsonlogic/internal/store"
)

// TestOversizedBodyIs413 pins the bugfix for every body-reading
// route: a request body over the MaxBody cap must answer 413 Request
// Entity Too Large, not the 400 the handlers used to map
// http.MaxBytesReader's error to. A small-but-malformed body must
// still answer 400 — the two failure modes are distinguishable again.
func TestOversizedBodyIs413(t *testing.T) {
	ts := httptest.NewServer(NewHandler(store.New(store.Options{Shards: 2}), Options{MaxBody: 128}))
	t.Cleanup(ts.Close)

	// A syntactically valid document comfortably past 128 bytes, so
	// the only possible failure is the size cap.
	big := `{"pad":"` + strings.Repeat("x", 256) + `"}`
	bigLine := big + "\n"
	bigQuery := `{"lang":"mongo","query":"{\"a\":1}","doc":"{\"pad\":\"` + strings.Repeat("y", 256) + `\"}"}`

	routes := []struct {
		name, method, path, body string
	}{
		{"put", "PUT", "/docs/big", big},
		{"bulk", "POST", "/bulk", bigLine},
		{"query", "POST", "/query", bigQuery},
		{"validate", "POST", "/validate", bigQuery},
		{"explain", "POST", "/explain", bigQuery},
	}
	for _, rt := range routes {
		t.Run(rt.name, func(t *testing.T) {
			code, body := do(t, rt.method, ts.URL+rt.path, rt.body)
			if code != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s %s with oversized body: got %d %v, want 413", rt.method, rt.path, code, body)
			}
		})
	}

	// The cap did not eat the 400s: malformed-but-small bodies keep
	// their status on the same routes.
	for _, rt := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"put-bad", "PUT", "/docs/ok", `{oops`, 400},
		{"bulk-ok", "POST", "/bulk", "{\"a\":1}\n", 200},
		{"query-bad", "POST", "/query", `{oops`, 400},
		{"validate-bad", "POST", "/validate", `{oops`, 400},
		{"explain-bad", "POST", "/explain", `{oops`, 400},
	} {
		t.Run(rt.name, func(t *testing.T) {
			if code, body := do(t, rt.method, ts.URL+rt.path, rt.body); code != rt.want {
				t.Fatalf("%s %s: got %d %v, want %d", rt.method, rt.path, code, body, rt.want)
			}
		})
	}
}

// TestGetDocStreams pins the getDoc response shape on top of the
// streaming encoder: identical bytes to the old String()-based path —
// the compact key-sorted rendering plus one trailing newline — with
// the JSON content type.
func TestGetDocStreams(t *testing.T) {
	ts := httptest.NewServer(NewHandler(store.New(store.Options{Shards: 2}), Options{}))
	t.Cleanup(ts.Close)
	if code, _ := do(t, "PUT", ts.URL+"/docs/d", `{"b":[1,"two",{}],"a":{"nested":"v"}}`); code != 200 {
		t.Fatal("put")
	}
	resp, err := http.Get(ts.URL + "/docs/d")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":{"nested":"v"},"b":[1,"two",{}]}` + "\n"
	if string(raw) != want {
		t.Fatalf("GET body = %q, want %q", raw, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}
