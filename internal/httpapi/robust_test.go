package httpapi

// robust_test.go: the overload and failure surface of the HTTP API —
// admission control (query gate 429s, bulk byte budget), server-side
// query timeouts and their per-request X-Timeout-Ms override, the
// drain switch flipped at shutdown, and the 503 contract of a
// degraded (WAL-failed, read-only) store. Every scenario is made
// deterministic by manipulating the gates and fault injection
// directly rather than racing real traffic.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jsonlogic/internal/store"
)

// doHdr is do plus the response headers, for Retry-After assertions.
func doHdr(t *testing.T, method, url, body string, hdr map[string]string) (int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header
}

const robustQuery = `{"lang":"mongo","query":"{\"k\":1}"}`

// TestQueryGateSheds429: with one execution slot and no queue, a
// query arriving while the slot is held is shed immediately with 429
// and Retry-After; once the slot frees, queries run again.
func TestQueryGateSheds429(t *testing.T) {
	h := NewHandler(store.New(store.Options{Shards: 2}), Options{
		MaxConcurrentQueries: 1,
		MaxQueuedQueries:     -1, // no queue: shed as soon as the slot is busy
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	release, err := h.s.qgate.acquire(context.Background())
	if err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	code, hdr := doHdr(t, "POST", ts.URL+"/query", robustQuery, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("query with gate full: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code, _ := doHdr(t, "POST", ts.URL+"/explain", robustQuery, nil); code != http.StatusTooManyRequests {
		t.Fatalf("explain with gate full: %d, want 429", code)
	}
	if got := h.s.qgate.sheds.Load(); got != 2 {
		t.Fatalf("gate sheds = %d, want 2", got)
	}

	release()
	if code, _ := doHdr(t, "POST", ts.URL+"/query", robustQuery, nil); code != http.StatusOK {
		t.Fatalf("query after release: %d, want 200", code)
	}
}

// TestQueryGateQueues: a query that finds the slot busy but the queue
// open waits for the slot instead of shedding, and is counted as a
// wait, not a shed.
func TestQueryGateQueues(t *testing.T) {
	h := NewHandler(store.New(store.Options{Shards: 2}), Options{
		MaxConcurrentQueries: 1,
		MaxQueuedQueries:     1,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	release, err := h.s.qgate.acquire(context.Background())
	if err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	codes := make(chan int, 1)
	go func() {
		defer wg.Done()
		code, _ := doHdr(t, "POST", ts.URL+"/query", robustQuery, nil)
		codes <- code
	}()
	// Wait until the request is provably parked in the queue, then
	// free the slot it is waiting for.
	deadline := time.Now().Add(5 * time.Second)
	for h.s.qgate.waits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	if code := <-codes; code != http.StatusOK {
		t.Fatalf("queued query: %d, want 200", code)
	}
	if got := h.s.qgate.sheds.Load(); got != 0 {
		t.Fatalf("queued query counted as shed (%d sheds)", got)
	}
}

// TestQueryTimeout504: a server-side QueryTimeout that has certainly
// expired maps to 504; the X-Timeout-Ms header loosens it back per
// request (and 0 disables it), while a malformed header is the
// client's 400 before any work happens.
func TestQueryTimeout504(t *testing.T) {
	h := NewHandler(store.New(store.Options{Shards: 2}), Options{
		QueryTimeout: time.Nanosecond, // expired by the first checkpoint, always
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	if code, _ := doHdr(t, "POST", ts.URL+"/query", robustQuery, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("query past server deadline: %d, want 504", code)
	}
	if code, _ := doHdr(t, "POST", ts.URL+"/explain", robustQuery, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("explain past server deadline: %d, want 504", code)
	}
	for _, override := range []string{"10000", "0"} { // loosen; disable
		if code, _ := doHdr(t, "POST", ts.URL+"/query", robustQuery, map[string]string{"X-Timeout-Ms": override}); code != http.StatusOK {
			t.Fatalf("query with X-Timeout-Ms %s: %d, want 200", override, code)
		}
	}
	for _, bad := range []string{"bogus", "-5", "1.5"} {
		if code, _ := doHdr(t, "POST", ts.URL+"/query", robustQuery, map[string]string{"X-Timeout-Ms": bad}); code != http.StatusBadRequest {
			t.Fatalf("query with X-Timeout-Ms %q: %d, want 400", bad, code)
		}
	}
}

// TestDrainRejects: while draining, everything except the read-only
// introspection endpoints is answered 503 + Retry-After immediately;
// flipping the switch back restores service.
func TestDrainRejects(t *testing.T) {
	h := NewHandler(store.New(store.Options{Shards: 2}), Options{})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	if code, _ := doHdr(t, "PUT", ts.URL+"/docs/a", `{"k":1}`, nil); code != http.StatusOK {
		t.Fatalf("put before drain: %d", code)
	}
	h.SetDraining(true)
	for _, req := range [][3]string{
		{"PUT", "/docs/b", `{"k":2}`},
		{"GET", "/docs/a", ""},
		{"POST", "/query", robustQuery},
		{"POST", "/bulk", `{"k":3}`},
	} {
		code, hdr := doHdr(t, req[0], ts.URL+req[1], req[2], nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while draining: %d, want 503", req[0], req[1], code)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("%s %s while draining: no Retry-After", req[0], req[1])
		}
	}
	// The endpoints an operator watches the drain with stay up.
	for _, path := range []string{"/metrics", "/stats", "/debug/queries"} {
		if code, _ := doHdr(t, "GET", ts.URL+path, "", nil); code != http.StatusOK {
			t.Fatalf("GET %s while draining: %d, want 200", path, code)
		}
	}
	if got := h.s.drainSheds.Load(); got != 4 {
		t.Fatalf("drain sheds = %d, want 4", got)
	}
	h.SetDraining(false)
	if code, _ := doHdr(t, "PUT", ts.URL+"/docs/c", `{"k":4}`, nil); code != http.StatusOK {
		t.Fatalf("put after drain lifted: %d", code)
	}
}

// TestDegradedWrites503: after a WAL failure trips a shard into
// degraded read-only mode, writes are refused with the retryable 503
// (the first, failing write itself reports the 500 WAL error), reads
// and queries keep serving, and /metrics says degraded.
func TestDegradedWrites503(t *testing.T) {
	fs := store.NewFaultFS(nil)
	st, err := store.Open(store.Options{
		Shards:        1,
		DataDir:       t.TempDir(),
		Fsync:         store.FsyncAlways,
		SnapshotEvery: -1,
		VFS:           fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(NewHandler(st, Options{}))
	t.Cleanup(ts.Close)

	if code, _ := doHdr(t, "PUT", ts.URL+"/docs/a", `{"k":1}`, nil); code != http.StatusOK {
		t.Fatalf("put before fault: %d", code)
	}
	fs.Fail(store.FaultRule{Ops: store.OpWrite | store.OpSync, Path: "wal-", Err: store.ErrNoSpace})

	// The write that hits the fault reports the non-retryable WAL
	// error; it is the one that trips the shard.
	if code, _ := doHdr(t, "PUT", ts.URL+"/docs/b", `{"k":2}`, nil); code != http.StatusInternalServerError {
		t.Fatalf("put hitting fault: %d, want 500", code)
	}
	// Every write after it is gated with the retryable 503.
	code, hdr := doHdr(t, "PUT", ts.URL+"/docs/c", `{"k":3}`, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("put while degraded: %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded 503 without Retry-After")
	}
	if code, _ := doHdr(t, "DELETE", ts.URL+"/docs/a", "", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("delete while degraded: %d, want 503", code)
	}
	// Reads and queries are unaffected: degraded is read-only, not down.
	if code, _ := doHdr(t, "GET", ts.URL+"/docs/a", "", nil); code != http.StatusOK {
		t.Fatalf("get while degraded: %d, want 200", code)
	}
	if code, _ := doHdr(t, "POST", ts.URL+"/query", robustQuery, nil); code != http.StatusOK {
		t.Fatalf("query while degraded: %d, want 200", code)
	}
	samples, _, _ := scrape(t, ts.URL)
	if samples["jsonstored_degraded"] != 1 || samples["jsonstored_degraded_shards"] != 1 {
		t.Fatalf("degraded gauges = %v/%v, want 1/1",
			samples["jsonstored_degraded"], samples["jsonstored_degraded_shards"])
	}

	// Lift the fault: the background probe heals the shard and writes
	// come back — the 503 really was retryable.
	fs.Clear()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := doHdr(t, "PUT", ts.URL+"/docs/c", `{"k":3}`, nil); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never healed after the fault was lifted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	samples, _, _ = scrape(t, ts.URL)
	if samples["jsonstored_degraded"] != 0 {
		t.Fatalf("degraded gauge = %v after heal, want 0", samples["jsonstored_degraded"])
	}
	if samples["jsonstored_wal_heal_total"] < 1 {
		t.Fatalf("wal_heal_total = %v after heal, want >= 1", samples["jsonstored_wal_heal_total"])
	}
}

// TestBulkByteGateSheds429: concurrent bulk-upload bytes beyond
// MaxBulkBytes are shed with 429; an idle gate admits again once the
// in-flight bytes release.
func TestBulkByteGateSheds429(t *testing.T) {
	h := NewHandler(store.New(store.Options{Shards: 2}), Options{MaxBulkBytes: 10})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	release, err := h.s.bulkBytes.acquire(8)
	if err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	body := `{"k":1}` + "\n" + `{"k":2}` + "\n" // 16 bytes: 8+16 > 10
	code, hdr := doHdr(t, "POST", ts.URL+"/bulk", body, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("bulk over byte budget: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("bulk 429 without Retry-After")
	}
	if got := h.s.bulkBytes.sheds.Load(); got != 1 {
		t.Fatalf("bulk sheds = %d, want 1", got)
	}
	release()
	// Oversized relative to the budget, but the gate is idle: admitted
	// (MaxBody bounds it individually), so one big upload cannot
	// deadlock against a tight budget.
	if code, _ := doHdr(t, "POST", ts.URL+"/bulk", body, nil); code != http.StatusOK {
		t.Fatalf("bulk after release: %d, want 200", code)
	}
}
