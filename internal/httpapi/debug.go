package httpapi

import (
	"net/http"
	"strconv"

	"jsonlogic/internal/trace"
)

// debugQueries serves GET /debug/queries: the tracer's kept traces —
// slow queries and sampled ones — newest first, each with the query
// source and the full recorded span tree. ?n= caps the number of
// entries returned. With tracing disabled the ring is simply empty.
func (s *server) debugQueries(w http.ResponseWriter, r *http.Request) {
	snaps := s.tracer.Snapshots()
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad n: %q", v)
			return
		}
		if n < len(snaps) {
			snaps = snaps[:n]
		}
	}
	if snaps == nil {
		snaps = []*trace.Snapshot{} // render [] rather than null
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(snaps),
		"queries": snaps,
	})
}
