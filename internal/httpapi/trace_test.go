package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jsonlogic/internal/store"
	"jsonlogic/internal/trace"
)

// newTracedServer builds a handler whose tracer keeps every query as
// slow (threshold 0) — the end-to-end configuration the acceptance
// criteria and loadtest-smoke pin.
func newTracedServer(t *testing.T) (*httptest.Server, *trace.Tracer) {
	t.Helper()
	tc := trace.New(trace.Options{SlowQuery: 0})
	ts := httptest.NewServer(NewHandler(store.New(store.Options{Shards: 8}), Options{Tracer: tc}))
	t.Cleanup(ts.Close)
	return ts, tc
}

// TestSlowQueryEndToEnd drives a real indexed query through the full
// handler with the slow threshold at 0 and asserts the trace comes
// back out of GET /debug/queries: newest first, carrying the query
// source, the request id, and non-zero spans for the planner, probe
// and eval stages.
func TestSlowQueryEndToEnd(t *testing.T) {
	ts, _ := newTracedServer(t)
	for i := 0; i < 200; i++ {
		if code, _ := do(t, "PUT", fmt.Sprintf("%s/docs/d%04d", ts.URL, i), fmt.Sprintf(`{"group":%d,"flag":%d}`, i%10, i%2)); code != 200 {
			t.Fatalf("put d%04d failed", i)
		}
	}

	req, err := http.NewRequest("POST", ts.URL+"/query",
		strings.NewReader(`{"lang":"mongo","query":"{\"group\":3,\"flag\":1}"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "load-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/query: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "load-42" {
		t.Fatalf("X-Request-ID not echoed: %q", got)
	}

	code, body := do(t, "GET", ts.URL+"/debug/queries", "")
	if code != 200 {
		t.Fatalf("/debug/queries: %d", code)
	}
	queries, ok := body["queries"].([]any)
	if !ok || len(queries) == 0 {
		t.Fatalf("/debug/queries returned no traces: %v", body)
	}
	// Newest first: entry 0 is the query just sent.
	top := queries[0].(map[string]any)
	if top["trigger"] != "slow" {
		t.Fatalf("trigger = %v, want slow", top["trigger"])
	}
	if top["request_id"] != "load-42" || top["lang"] != "mongo" {
		t.Fatalf("trace identity wrong: %v", top)
	}
	if !strings.Contains(top["query"].(string), `"group":3`) {
		t.Fatalf("trace lost the query source: %v", top["query"])
	}
	if top["duration_ns"].(float64) <= 0 {
		t.Fatalf("trace duration %v, want > 0", top["duration_ns"])
	}

	// The span tree must contain non-zero planner, probe and eval
	// stages under the request root, and the plan span must carry the
	// planner's verdict.
	spans := top["spans"].([]any)
	if len(spans) != 1 {
		t.Fatalf("want one root span, got %d", len(spans))
	}
	root := spans[0].(map[string]any)
	if root["name"] != "request" {
		t.Fatalf("root span = %v", root["name"])
	}
	stages := map[string]float64{}
	attrs := map[string]map[string]any{}
	var walk func(n map[string]any)
	walk = func(n map[string]any) {
		name := n["name"].(string)
		stages[name] += n["duration_ns"].(float64)
		if a, ok := n["attrs"].(map[string]any); ok && attrs[name] == nil {
			attrs[name] = a
		}
		for _, c := range childSpans(n) {
			walk(c)
		}
	}
	walk(root)
	for _, stage := range []string{"compile", "plan", "probe", "eval", "merge"} {
		if stages[stage] <= 0 {
			t.Errorf("stage %q duration = %v, want > 0", stage, stages[stage])
		}
	}
	if t.Failed() {
		t.Fatalf("spans: %v", top["spans"])
	}
	if attrs["plan"]["access"] != "index" {
		t.Fatalf("plan span access = %v, want index", attrs["plan"]["access"])
	}
	if attrs["probe"]["lists"] == nil || attrs["probe"]["steps"] == nil {
		t.Fatalf("probe span missing list/step attrs: %v", attrs["probe"])
	}
	if attrs["eval"]["docs"] == nil {
		t.Fatalf("eval span missing docs attr: %v", attrs["eval"])
	}

	// The slow query is visible in /metrics too.
	samples, _, _ := scrape(t, ts.URL)
	if samples["jsonstored_slow_queries_total"] < 1 {
		t.Fatalf("slow_queries_total = %v, want >= 1", samples["jsonstored_slow_queries_total"])
	}
	if samples["jsonstored_trace_ring_entries"] < 1 {
		t.Fatalf("trace_ring_entries = %v, want >= 1", samples["jsonstored_trace_ring_entries"])
	}
}

func childSpans(n map[string]any) []map[string]any {
	raw, ok := n["children"].([]any)
	if !ok {
		return nil
	}
	out := make([]map[string]any, len(raw))
	for i, c := range raw {
		out[i] = c.(map[string]any)
	}
	return out
}

// TestDebugQueriesLimitAndEmpty: ?n= caps the response, and a handler
// without a tracer serves an empty list rather than failing.
func TestDebugQueriesLimitAndEmpty(t *testing.T) {
	ts, _ := newTracedServer(t)
	for i := 0; i < 5; i++ {
		do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"a\":1}"}`)
	}
	code, body := do(t, "GET", ts.URL+"/debug/queries?n=2", "")
	if code != 200 || body["count"].(float64) != 2 {
		t.Fatalf("limited ring: code %d, body %v", code, body)
	}
	if code, body := do(t, "GET", ts.URL+"/debug/queries?n=bogus", ""); code != 400 {
		t.Fatalf("bad n: code %d, body %v", code, body)
	}

	plain := newTestServer(t) // no tracer
	code, body = do(t, "GET", plain.URL+"/debug/queries", "")
	if code != 200 || body["count"].(float64) != 0 {
		t.Fatalf("untraced ring: code %d, body %v", code, body)
	}
	if _, ok := body["queries"].([]any); !ok {
		t.Fatalf("queries not a list: %v", body["queries"])
	}
}

// TestSampledTraceCapture: sampling without slow detection keeps
// exactly 1 in N queries, with trigger "sample".
func TestSampledTraceCapture(t *testing.T) {
	tc := trace.New(trace.Options{SampleEvery: 3, SlowQuery: -1})
	ts := httptest.NewServer(NewHandler(store.New(store.Options{Shards: 2}), Options{Tracer: tc}))
	t.Cleanup(ts.Close)
	for i := 0; i < 9; i++ {
		if code, _ := do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"a\":1}"}`); code != 200 {
			t.Fatalf("query %d failed", i)
		}
	}
	_, body := do(t, "GET", ts.URL+"/debug/queries", "")
	if body["count"].(float64) != 3 {
		t.Fatalf("sampled 9 queries at 1-in-3, ring has %v", body["count"])
	}
	for _, q := range body["queries"].([]any) {
		if q.(map[string]any)["trigger"] != "sample" {
			t.Fatalf("trigger = %v, want sample", q.(map[string]any)["trigger"])
		}
	}
	if st := tc.Stats(); st.Slow != 0 || st.Sampled != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestExplainCarriesTrace: /explain output now embeds the recorded
// span tree of its own execution.
func TestExplainCarriesTrace(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/a", `{"k":1}`)
	code, body := do(t, "POST", ts.URL+"/explain", `{"lang":"mongo","query":"{\"k\":1}"}`)
	if code != 200 {
		t.Fatalf("/explain: %d: %v", code, body)
	}
	spans, ok := body["trace"].([]any)
	if !ok || len(spans) != 1 {
		t.Fatalf("explain trace missing: %v", body["trace"])
	}
	root := spans[0].(map[string]any)
	if root["name"] != "explain" || root["duration_ns"].(float64) <= 0 {
		t.Fatalf("explain root span = %v", root)
	}
	names := map[string]bool{}
	for _, c := range childSpans(root) {
		names[c["name"].(string)] = true
	}
	if !names["plan"] || !names["eval"] || !names["merge"] {
		t.Fatalf("explain trace missing pipeline stages: %v", names)
	}
}
