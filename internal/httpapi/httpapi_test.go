package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"jsonlogic/internal/store"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(store.New(store.Options{Shards: 8}), Options{}))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, url, raw)
		}
	}
	return resp.StatusCode, decoded
}

func TestCRUDAndQuery(t *testing.T) {
	ts := newTestServer(t)

	if code, body := do(t, "PUT", ts.URL+"/docs/u1", `{"name":"sue","age":34}`); code != 200 || body["nodes"].(float64) != 3 {
		t.Fatalf("put: %d %v", code, body)
	}
	if code, _ := do(t, "PUT", ts.URL+"/docs/u2", `{"name":"bob","age":17}`); code != 200 {
		t.Fatal("put u2")
	}
	// An ageless document keeps the age terms selective, so the
	// cost-based planner picks the index for the find below.
	if code, _ := do(t, "PUT", ts.URL+"/docs/g1", `{"group":"admins"}`); code != 200 {
		t.Fatal("put g1")
	}
	if code, body := do(t, "PUT", ts.URL+"/docs/bad", `{oops`); code != 400 || body["error"] == "" {
		t.Fatalf("bad put accepted: %d %v", code, body)
	}
	if code, body := do(t, "GET", ts.URL+"/docs/u1", ""); code != 200 || body["name"] != "sue" {
		t.Fatalf("get u1: %d %v", code, body)
	}
	if code, _ := do(t, "GET", ts.URL+"/docs/nope", ""); code != 404 {
		t.Fatal("missing doc should 404")
	}

	code, body := do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"age\":{\"$gte\":21}}"}`)
	if code != 200 || body["count"].(float64) != 1 {
		t.Fatalf("query: %d %v", code, body)
	}
	if ids := body["ids"].([]any); ids[0] != "u1" {
		t.Fatalf("query ids = %v", ids)
	}
	if body["indexed"] != true {
		t.Fatalf("equality+order filter should be indexed: %v", body)
	}

	code, body = do(t, "POST", ts.URL+"/query", `{"lang":"jsonpath","query":"$.name","mode":"select","values":true}`)
	if code != 200 || body["count"].(float64) != 2 {
		t.Fatalf("select: %d %v", code, body)
	}
	results := body["results"].([]any)
	first := results[0].(map[string]any)
	if first["id"] != "u1" || first["values"].([]any)[0] != `"sue"` {
		t.Fatalf("select results = %v", results)
	}

	if code, body = do(t, "POST", ts.URL+"/validate", `{"lang":"jsl","query":"some(\"age\", min(21))","id":"u2"}`); code != 200 || body["valid"] != false {
		t.Fatalf("validate: %d %v", code, body)
	}
	if code, body = do(t, "POST", ts.URL+"/validate", `{"lang":"jsl","query":"some(\"age\", min(21))","doc":"{\"age\":50}"}`); code != 200 || body["valid"] != true {
		t.Fatalf("validate inline: %d %v", code, body)
	}
	if code, _ = do(t, "POST", ts.URL+"/validate", `{"lang":"mongo","query":"{\"a\":1}","id":"nope"}`); code != 404 {
		t.Fatal("validate of a missing id should 404")
	}
	if code, _ = do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{oops"}`); code != 400 {
		t.Fatal("bad query should 400")
	}
	if code, _ = do(t, "POST", ts.URL+"/query", `{"lang":"sparql","query":"x"}`); code != 400 {
		t.Fatal("unknown language should 400")
	}

	if code, _ := do(t, "DELETE", ts.URL+"/docs/u1", ""); code != 200 {
		t.Fatal("delete u1")
	}
	if code, _ := do(t, "DELETE", ts.URL+"/docs/u1", ""); code != 404 {
		t.Fatal("double delete should 404")
	}
}

func TestBulkAndStats(t *testing.T) {
	ts := newTestServer(t)
	ndjson := "{\"k\":1}\n{nope\n{\"k\":2}\n"
	code, body := do(t, "POST", ts.URL+"/bulk", ndjson)
	if code != 200 || body["inserted"].(float64) != 2 {
		t.Fatalf("bulk: %d %v", code, body)
	}
	if errs := body["errors"].([]any); len(errs) != 1 {
		t.Fatalf("bulk errors = %v", errs)
	}

	// Warm the plan cache and both query paths.
	for i := 0; i < 3; i++ {
		do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"k\":2}"}`)
		do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"k\":{\"$ne\":2}}"}`)
	}
	code, body = do(t, "GET", ts.URL+"/stats", "")
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	st := body["store"].(map[string]any)
	if st["docs"].(float64) != 2 || st["index_terms"].(float64) == 0 {
		t.Fatalf("store stats = %v", st)
	}
	q := st["queries"].(map[string]any)
	if q["find_indexed"].(float64) != 3 || q["find_scan"].(float64) != 3 {
		t.Fatalf("query counters = %v", q)
	}
	// Fan-out accounting: every query ran either serially or in
	// parallel, and the indexed ones did real intersection work.
	if q["serial_queries"].(float64)+q["parallel_queries"].(float64) != 6 {
		t.Fatalf("fan-out counters do not cover all queries: %v", q)
	}
	// With a single kept term there is no merge, so the step counter is
	// legitimately zero here — assert only that it is exposed.
	if _, ok := q["intersection_steps"]; !ok {
		t.Fatalf("stats missing intersection_steps: %v", q)
	}
	pc := body["plan_cache"].(map[string]any)
	if pc["hits"].(float64) != 4 || pc["misses"].(float64) != 2 {
		t.Fatalf("plan cache = %v", pc)
	}
	if pc["hit_rate"].(float64) < 0.6 {
		t.Fatalf("hit rate = %v", pc["hit_rate"])
	}
}

// TestConcurrentMixedHTTPLoad drives the daemon from 12 goroutines with
// mixed reads, writes, bulk ingest and queries, then verifies no update
// was lost: every writer's documents are retrievable with the content
// written last.
func TestConcurrentMixedHTTPLoad(t *testing.T) {
	ts := newTestServer(t)
	const (
		writers  = 8
		queriers = 4
		docsPer  = 25
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+queriers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				for i := 0; i < docsPer; i++ {
					id := fmt.Sprintf("w%d-%d", w, i)
					doc := fmt.Sprintf(`{"owner":%d,"i":%d,"round":%d}`, w, i, round)
					code, _ := do(t, "PUT", ts.URL+"/docs/"+id, doc)
					if code != 200 {
						errc <- fmt.Errorf("put %s: %d", id, code)
						return
					}
				}
			}
			// Bulk a few extra docs per writer.
			var sb strings.Builder
			for i := 0; i < 5; i++ {
				fmt.Fprintf(&sb, `{"bulk":%d}`+"\n", w)
			}
			if code, _ := do(t, "POST", ts.URL+"/bulk", sb.String()); code != 200 {
				errc <- fmt.Errorf("bulk writer %d: %d", w, code)
			}
		}(w)
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := fmt.Sprintf(`{"lang":"mongo","query":"{\"owner\":%d}"}`, i%writers)
				if code, _ := do(t, "POST", ts.URL+"/query", q); code != 200 {
					errc <- fmt.Errorf("query: %d", code)
					return
				}
				if i%8 == 0 {
					if code, _ := do(t, "GET", ts.URL+"/stats", ""); code != 200 {
						errc <- fmt.Errorf("stats: %d", code)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for w := 0; w < writers; w++ {
		// Every document holds round=1 (the last write wins cleanly).
		q := fmt.Sprintf(`{"lang":"mongo","query":"{\"owner\":%d,\"round\":1}"}`, w)
		code, body := do(t, "POST", ts.URL+"/query", q)
		if code != 200 || body["count"].(float64) != docsPer {
			t.Fatalf("writer %d: %d %v, want %d docs", w, code, body, docsPer)
		}
		for i := 0; i < docsPer; i++ {
			code, body := do(t, "GET", fmt.Sprintf("%s/docs/w%d-%d", ts.URL, w, i), "")
			if code != 200 || body["round"].(float64) != 1 {
				t.Fatalf("w%d-%d: %d %v", w, i, code, body)
			}
		}
	}
	// 8 writers × (25 docs + 5 bulk) documents in total.
	code, body := do(t, "GET", ts.URL+"/stats", "")
	if code != 200 {
		t.Fatal("stats")
	}
	if docs := body["store"].(map[string]any)["docs"].(float64); docs != writers*(docsPer+5) {
		t.Fatalf("stats docs = %v, want %d", docs, writers*(docsPer+5))
	}
}

// TestDurableDaemonRestart drives the handler over a durable store,
// simulates a restart by closing and reopening the data directory,
// and requires the new handler to serve exactly the acknowledged
// state — including the durability section of /stats.
func TestDurableDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	opts := store.Options{Shards: 4, DataDir: dir, Fsync: store.FsyncAlways, SnapshotEvery: -1}
	st, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(st, Options{}))
	if code, _ := do(t, "PUT", ts.URL+"/docs/u1", `{"name":"sue","age":34}`); code != 200 {
		t.Fatal("put u1")
	}
	if code, _ := do(t, "PUT", ts.URL+"/docs/u2", `{"name":"bob","age":17}`); code != 200 {
		t.Fatal("put u2")
	}
	if code, _ := do(t, "POST", ts.URL+"/bulk", "{\"k\":1}\n{\"k\":2}\n"); code != 200 {
		t.Fatal("bulk")
	}
	if code, _ := do(t, "DELETE", ts.URL+"/docs/u2", ""); code != 200 {
		t.Fatal("delete u2")
	}
	code, body := do(t, "GET", ts.URL+"/stats", "")
	if code != 200 {
		t.Fatal("stats")
	}
	dur := body["store"].(map[string]any)["durability"].(map[string]any)
	if dur["fsync"] != "always" || dur["wal_appends"].(float64) != 5 {
		t.Fatalf("durability stats = %v", dur)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts2 := httptest.NewServer(NewHandler(st2, Options{}))
	t.Cleanup(ts2.Close)
	if code, body := do(t, "GET", ts2.URL+"/docs/u1", ""); code != 200 || body["name"] != "sue" {
		t.Fatalf("u1 after restart: %d %v", code, body)
	}
	if code, _ := do(t, "GET", ts2.URL+"/docs/u2", ""); code != 404 {
		t.Fatal("deleted u2 resurrected by restart")
	}
	code, body = do(t, "POST", ts2.URL+"/query", `{"lang":"mongo","query":"{\"k\":{\"$gte\":1}}"}`)
	if code != 200 || body["count"].(float64) != 2 {
		t.Fatalf("bulk docs after restart: %d %v", code, body)
	}
	code, body = do(t, "GET", ts2.URL+"/stats", "")
	if code != 200 {
		t.Fatal("stats after restart")
	}
	rec := body["store"].(map[string]any)["durability"].(map[string]any)["recovery"].(map[string]any)
	if rec["wal_records_replayed"].(float64) != 5 {
		t.Fatalf("recovery stats after restart = %v", rec)
	}
}

// TestIndexedFlagTruthful pins the /query "indexed" field to the
// store's actual decision: a deep JSONPath plan on a shallow index
// bound degrades to prefix-presence pruning (still indexed, results
// intact), while a factless plan (negation) reports the scan.
func TestIndexedFlagTruthful(t *testing.T) {
	st := store.New(store.Options{Shards: 2, MaxIndexDepth: 2})
	ts := httptest.NewServer(NewHandler(st, Options{}))
	t.Cleanup(ts.Close)
	if code, _ := do(t, "PUT", ts.URL+"/docs/x", `{"a":{"b":{"c":{"d":1}}}}`); code != 200 {
		t.Fatal("put")
	}
	// A second document without the path keeps the prefix term
	// selective; on a one-document store the planner would rightly
	// scan everything.
	if code, _ := do(t, "PUT", ts.URL+"/docs/y", `{"z":1}`); code != 200 {
		t.Fatal("put y")
	}
	code, body := do(t, "POST", ts.URL+"/query", `{"lang":"jsonpath","query":"$.a.b.c.d","mode":"select"}`)
	if code != 200 || body["indexed"] != true || body["count"].(float64) != 1 {
		t.Fatalf("deep select: %d %v", code, body)
	}
	code, body = do(t, "POST", ts.URL+"/query", `{"lang":"mongo","query":"{\"a\":{\"$exists\":0}}"}`)
	if code != 200 || body["indexed"] != false || body["count"].(float64) != 1 {
		t.Fatalf("factless find must report the scan: %d %v", code, body)
	}
	code, body = do(t, "POST", ts.URL+"/query", `{"lang":"jsonpath","query":"$.a.b"}`)
	if code != 200 || body["indexed"] != true || body["count"].(float64) != 1 {
		t.Fatalf("shallow find: %d %v", code, body)
	}
}

// TestExplain drives POST /explain end to end: the response must carry
// the logical and physical plan trees, the planner's access decision
// with per-term statistics, and an estimated cardinality that bounds
// the measured one.
func TestExplain(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 8; i++ {
		doc := fmt.Sprintf(`{"kind":"widget","n":%d}`, i)
		if i%4 == 0 {
			doc = fmt.Sprintf(`{"kind":"gadget","n":%d}`, i)
		}
		if code, _ := do(t, "PUT", fmt.Sprintf("%s/docs/d%d", ts.URL, i), doc); code != 200 {
			t.Fatalf("put d%d", i)
		}
	}

	code, body := do(t, "POST", ts.URL+"/explain", `{"lang":"mongo","query":"{\"kind\":\"gadget\"}"}`)
	if code != 200 {
		t.Fatalf("explain: %d %v", code, body)
	}
	if body["access"] != "index" {
		t.Fatalf("selective equality should be indexed: %v", body)
	}
	plan := body["plan"].(map[string]any)
	for _, key := range []string{"logical", "physical"} {
		if s, _ := plan[key].(string); s == "" {
			t.Fatalf("explain plan missing %s tree: %v", key, plan)
		}
	}
	est := body["est_candidates"].(float64)
	actual := body["actual_candidates"].(float64)
	if est < actual {
		t.Fatalf("estimated candidates %v below actual %v", est, actual)
	}
	if body["actual_results"].(float64) != 2 {
		t.Fatalf("explain results: %v", body)
	}
	if terms := body["terms"].([]any); len(terms) == 0 {
		t.Fatalf("explain must list index terms: %v", body)
	}

	// A factless plan explains the scan.
	code, body = do(t, "POST", ts.URL+"/explain", `{"lang":"mongo","query":"{\"kind\":{\"$ne\":1}}"}`)
	if code != 200 || body["access"] != "scan" {
		t.Fatalf("negation should explain a scan: %d %v", code, body)
	}
	if body["actual_candidates"].(float64) != 8 {
		t.Fatalf("scan candidates: %v", body)
	}

	// Select mode goes through the select facts.
	code, body = do(t, "POST", ts.URL+"/explain", `{"lang":"jsonpath","query":"$.kind","mode":"select"}`)
	if code != 200 || body["mode"] != "select" {
		t.Fatalf("select explain: %d %v", code, body)
	}

	if code, _ = do(t, "POST", ts.URL+"/explain", `{"lang":"mongo","query":"{}","mode":"weird"}`); code != 400 {
		t.Fatal("unknown explain mode should 400")
	}
	if code, _ = do(t, "POST", ts.URL+"/explain", `{"lang":"mongo","query":"{oops"}`); code != 400 {
		t.Fatal("bad explain query should 400")
	}
}
