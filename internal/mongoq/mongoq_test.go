package mongoq

import (
	"testing"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

var people = []string{
	`{"name":"Sue","age":28,"hobbies":["chess"]}`,
	`{"name":"John","age":32,"address":{"city":"Santiago","zip":7500}}`,
	`{"name":"Ana","age":17,"hobbies":["fishing","yoga"]}`,
	`{"name":"Bob","age":45,"hobbies":[]}`,
	`{"name":"Eve"}`,
}

func collection() *Collection {
	c := NewCollection()
	for _, src := range people {
		c.Insert(jsonval.MustParse(src))
	}
	return c
}

func names(docs []*jsonval.Value) []string {
	var out []string
	for _, d := range docs {
		n, _ := d.Member("name")
		out = append(out, n.Str())
	}
	return out
}

func TestFind(t *testing.T) {
	c := collection()
	cases := []struct {
		filter string
		want   []string
	}{
		// Example 1 of the paper.
		{`{"name": {"$eq": "Sue"}}`, []string{"Sue"}},
		{`{"name": "Sue"}`, []string{"Sue"}},
		{`{"age": {"$gt": 30}}`, []string{"John", "Bob"}},
		{`{"age": {"$gte": 28, "$lt": 45}}`, []string{"Sue", "John"}},
		{`{"age": {"$lte": 17}}`, []string{"Ana"}},
		{`{"age": {"$ne": 28}}`, []string{"John", "Ana", "Bob", "Eve"}},
		{`{"age": {"$exists": 1}}`, []string{"Sue", "John", "Ana", "Bob"}},
		{`{"age": {"$exists": 0}}`, []string{"Eve"}},
		{`{"hobbies": {"$size": 2}}`, []string{"Ana"}},
		{`{"hobbies": {"$size": 0}}`, []string{"Bob"}},
		{`{"hobbies": {"$type": "array"}}`, []string{"Sue", "Ana", "Bob"}},
		{`{"address.city": "Santiago"}`, []string{"John"}},
		{`{"address.zip": {"$gte": 7000}}`, []string{"John"}},
		{`{"hobbies.0": "fishing"}`, []string{"Ana"}},
		{`{"hobbies.1": {"$eq": "yoga"}}`, []string{"Ana"}},
		{`{"name": {"$in": ["Sue","Eve"]}}`, []string{"Sue", "Eve"}},
		{`{"name": {"$nin": ["Sue","Eve","Ana"]}}`, []string{"John", "Bob"}},
		{`{"$and": [{"age": {"$gt": 20}}, {"hobbies": {"$exists": 1}}]}`, []string{"Sue", "Bob"}},
		{`{"$or": [{"name": "Sue"}, {"age": {"$gt": 40}}]}`, []string{"Sue", "Bob"}},
		{`{"$nor": [{"age": {"$exists": 1}}]}`, []string{"Eve"}},
		{`{"$not": {"name": "Sue"}}`, []string{"John", "Ana", "Bob", "Eve"}},
		{`{"name": "Sue", "age": 28}`, []string{"Sue"}},
		{`{"name": "Sue", "age": 29}`, nil},
		{`{}`, []string{"Sue", "John", "Ana", "Bob", "Eve"}},
		{`{"address": {"city":"Santiago","zip":7500}}`, []string{"John"}}, // whole-subtree equality
		{`{"address": {"zip":7500,"city":"Santiago"}}`, []string{"John"}}, // member order irrelevant
	}
	for _, tc := range cases {
		f, err := Parse(tc.filter)
		if err != nil {
			t.Errorf("Parse(%s): %v", tc.filter, err)
			continue
		}
		got := names(c.Find(f))
		if !equalStrings(got, tc.want) {
			t.Errorf("Find(%s) = %v, want %v", tc.filter, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`[]`,
		`{"$bogus": 1}`,
		`{"a": {"$bogus": 1}}`,
		`{"$and": []}`,
		`{"a": {"$gt": "x"}}`,
		`{"a": {"$in": []}}`,
		`{"a": {"$exists": 2}}`,
		`{"a": {"$type": "boolean"}}`,
		`{"": 1}`,
		`{"a..b": 1}`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%s): expected error", src)
		}
	}
}

func TestLtZeroUnsatisfiable(t *testing.T) {
	f := MustParse(`{"age": {"$lt": 0}}`)
	if len(collection().Find(f)) != 0 {
		t.Error("$lt 0 can never match a natural number")
	}
}

func TestFormulaExposed(t *testing.T) {
	f := MustParse(`{"name": "Sue"}`)
	if f.Formula() == nil {
		t.Fatal("Formula should be exposed for composition")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOperatorMatrix pins the semantics of each operator on a focused
// document set.
func TestOperatorMatrix(t *testing.T) {
	docs := map[string]string{
		"num5":   `{"v":5}`,
		"num10":  `{"v":10}`,
		"strx":   `{"v":"x"}`,
		"arr":    `{"v":[1,2]}`,
		"obj":    `{"v":{"w":1}}`,
		"absent": `{"u":0}`,
	}
	cases := []struct {
		filter string
		want   []string // names of matching docs
	}{
		{`{"v":{"$eq":5}}`, []string{"num5"}},
		{`{"v":{"$ne":5}}`, []string{"num10", "strx", "arr", "obj", "absent"}},
		{`{"v":{"$gt":5}}`, []string{"num10"}},
		{`{"v":{"$gte":5}}`, []string{"num5", "num10"}},
		{`{"v":{"$lt":10}}`, []string{"num5"}},
		{`{"v":{"$lte":10}}`, []string{"num5", "num10"}},
		{`{"v":{"$exists":1}}`, []string{"num5", "num10", "strx", "arr", "obj"}},
		{`{"v":{"$exists":0}}`, []string{"absent"}},
		{`{"v":{"$size":2}}`, []string{"arr"}},
		{`{"v":{"$type":"string"}}`, []string{"strx"}},
		{`{"v":{"$type":"object"}}`, []string{"obj"}},
		{`{"v":{"$in":[5,"x"]}}`, []string{"num5", "strx"}},
		{`{"v":{"$nin":[5,"x"]}}`, []string{"num10", "arr", "obj", "absent"}},
		{`{"$nor":[{"v":5},{"v":"x"}]}`, []string{"num10", "arr", "obj", "absent"}},
		{`{"v":{"$not":{"$gt":5}}}`, []string{"num5", "strx", "arr", "obj", "absent"}},
		{`{"v.w":1}`, []string{"obj"}},
		{`{"v.0":1}`, []string{"arr"}},
		{`{"v.1":{"$gt":1}}`, []string{"arr"}},
	}
	for _, c := range cases {
		f, err := Parse(c.filter)
		if err != nil {
			t.Errorf("Parse(%s): %v", c.filter, err)
			continue
		}
		want := map[string]bool{}
		for _, n := range c.want {
			want[n] = true
		}
		for name, doc := range docs {
			got := f.Matches(jsonval.MustParse(doc))
			if got != want[name] {
				t.Errorf("%s on %s (%s): got %v, want %v", c.filter, name, doc, got, want[name])
			}
		}
	}
}

func TestRequiredFacts(t *testing.T) {
	f := MustParse(`{"user.name":"sue","age":{"$gte":21}}`)
	facts := f.RequiredFacts()
	if len(facts) != 6 {
		t.Fatalf("facts = %v", facts)
	}
	match := jsontree.MustParse(`{"user":{"name":"sue"},"age":34}`)
	if !f.Matches(match.Value(match.Root())) {
		t.Fatal("fixture does not match")
	}
	for _, fact := range facts {
		if !fact.Holds(match) {
			t.Errorf("fact %s must hold on a matching document", fact)
		}
	}
	if facts := MustParse(`{"a":{"$ne":1}}`).RequiredFacts(); len(facts) != 0 {
		t.Errorf("negated filter should extract no facts, got %v", facts)
	}
}
