// Package mongoq implements the filter argument of MongoDB's find
// function (§4.1 and Example 1 of the paper): a query language whose
// navigation conditions are JSON navigation instructions compared
// against constants. Filters are compiled into JSL formulas — the paper
// shows (Theorem 2) that this deterministic navigation lives in the
// common JNL/JSL fragment, and JSL's node tests additionally cover the
// ordered comparison operators ($gt, $lt, …) that JNL's EQ cannot.
//
// Supported operators: implicit equality, $eq, $ne, $gt, $gte, $lt,
// $lte, $in, $nin, $exists, $size, $type, field-level $not, and the
// logical combinators $and, $or, $nor, $not. Field paths use MongoDB dot notation; numeric
// segments address array elements.
package mongoq

import (
	"fmt"
	"strconv"
	"strings"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/qir"
)

// Filter is a compiled find filter.
type Filter struct {
	source  *jsonval.Value
	formula jsl.Formula
}

// Parse parses a filter document from JSON text and compiles it.
func Parse(input string) (*Filter, error) {
	v, err := jsonval.Parse(input)
	if err != nil {
		return nil, err
	}
	return FromValue(v)
}

// MustParse is Parse but panics on error.
func MustParse(input string) *Filter {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

// FromValue compiles a filter document.
func FromValue(v *jsonval.Value) (*Filter, error) {
	if !v.IsObject() {
		return nil, fmt.Errorf("mongoq: a filter must be an object, got %s", v.Kind())
	}
	formula, err := compileFilter(v)
	if err != nil {
		return nil, err
	}
	return &Filter{source: v, formula: formula}, nil
}

// Formula returns the JSL formula the filter compiles to.
func (f *Filter) Formula() jsl.Formula { return f.formula }

// String returns the source filter document.
func (f *Filter) String() string { return f.source.String() }

// Matches reports whether a document satisfies the filter.
func (f *Filter) Matches(doc *jsonval.Value) bool {
	tr := jsontree.FromValue(doc)
	ok, err := jsl.Holds(tr, f.formula)
	return err == nil && ok
}

// Collection is an in-memory collection of JSON documents with the find
// interface of §4.1 (filter argument only; for the projection argument
// see §6 of the paper, which leaves its semantics as future work).
type Collection struct {
	docs []*jsonval.Value
}

// NewCollection returns a collection over the given documents.
func NewCollection(docs ...*jsonval.Value) *Collection {
	return &Collection{docs: append([]*jsonval.Value(nil), docs...)}
}

// Insert appends documents to the collection.
func (c *Collection) Insert(docs ...*jsonval.Value) { c.docs = append(c.docs, docs...) }

// Len returns the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Find returns the documents matching the filter, preserving insertion
// order, like db.collection.find(filter, {}).
func (c *Collection) Find(f *Filter) []*jsonval.Value {
	var out []*jsonval.Value
	for _, doc := range c.docs {
		if f.Matches(doc) {
			out = append(out, doc)
		}
	}
	return out
}

// compileFilter compiles a filter object: the conjunction of its
// member conditions.
func compileFilter(v *jsonval.Value) (jsl.Formula, error) {
	var parts []jsl.Formula
	for _, m := range v.Members() {
		switch m.Key {
		case "$and", "$or", "$nor":
			if !m.Value.IsArray() || m.Value.Len() == 0 {
				return nil, fmt.Errorf("mongoq: %s wants a non-empty array", m.Key)
			}
			var subs []jsl.Formula
			for _, e := range m.Value.Elems() {
				sub, err := compileFilter(e)
				if err != nil {
					return nil, err
				}
				subs = append(subs, sub)
			}
			switch m.Key {
			case "$and":
				parts = append(parts, jsl.AndAll(subs...))
			case "$or":
				parts = append(parts, jsl.OrAll(subs...))
			default: // $nor
				parts = append(parts, jsl.Not{Inner: jsl.OrAll(subs...)})
			}
		case "$not":
			sub, err := compileFilter(m.Value)
			if err != nil {
				return nil, err
			}
			parts = append(parts, jsl.Not{Inner: sub})
		default:
			if strings.HasPrefix(m.Key, "$") {
				return nil, fmt.Errorf("mongoq: unknown top-level operator %q", m.Key)
			}
			cond, err := compileFieldCondition(m.Key, m.Value)
			if err != nil {
				return nil, err
			}
			parts = append(parts, cond)
		}
	}
	return jsl.AndAll(parts...), nil
}

// compileFieldCondition compiles one field: condition pair. The
// condition is either an operator object ({$gt: 5, ...}) or a constant
// (implicit $eq).
func compileFieldCondition(path string, cond *jsonval.Value) (jsl.Formula, error) {
	if cond.IsObject() && hasOperatorKey(cond) {
		var parts []jsl.Formula
		for _, m := range cond.Members() {
			f, err := compileFieldOperator(path, m.Key, m.Value)
			if err != nil {
				return nil, err
			}
			parts = append(parts, f)
		}
		return jsl.AndAll(parts...), nil
	}
	// Implicit equality: Example 1's {name: {$eq: "Sue"}} and the
	// shorthand {name: "Sue"}.
	return navigate(path, jsl.EqDoc{Doc: cond})
}

func hasOperatorKey(v *jsonval.Value) bool {
	for _, m := range v.Members() {
		if strings.HasPrefix(m.Key, "$") {
			return true
		}
	}
	return false
}

// compileFieldOperator compiles one $op: operand pair of a field
// condition into a document-level formula. Most operators are
// existential ("the navigated value satisfies …"); $ne and $nin follow
// MongoDB's negated-existential semantics and also match documents where
// the path is absent; $exists: 0 matches only absent paths.
func compileFieldOperator(path, op string, operand *jsonval.Value) (jsl.Formula, error) {
	needNum := func() (uint64, error) {
		if !operand.IsNumber() {
			return 0, fmt.Errorf("mongoq: %s wants a number operand (the paper's value model orders only numbers)", op)
		}
		return operand.Num(), nil
	}
	existential := func(cond jsl.Formula) (jsl.Formula, error) { return navigate(path, cond) }
	switch op {
	case "$eq":
		return existential(jsl.EqDoc{Doc: operand})
	case "$not":
		// Field-level negation: {v: {$not: {$gt: 5}}} matches documents
		// where the positive condition fails, including when the path
		// is absent (MongoDB semantics).
		if !operand.IsObject() || !hasOperatorKey(operand) {
			return nil, fmt.Errorf("mongoq: $not wants an operator document, got %s", operand)
		}
		pos, err := compileFieldCondition(path, operand)
		if err != nil {
			return nil, err
		}
		return jsl.Not{Inner: pos}, nil
	case "$ne":
		pos, err := navigate(path, jsl.EqDoc{Doc: operand})
		if err != nil {
			return nil, err
		}
		return jsl.Not{Inner: pos}, nil
	case "$gt":
		n, err := needNum()
		if err != nil {
			return nil, err
		}
		return existential(jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: n + 1}})
	case "$gte":
		n, err := needNum()
		if err != nil {
			return nil, err
		}
		return existential(jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: n}})
	case "$lt":
		n, err := needNum()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return jsl.False(), nil
		}
		return existential(jsl.And{Left: jsl.IsInt{}, Right: jsl.Max{I: n - 1}})
	case "$lte":
		n, err := needNum()
		if err != nil {
			return nil, err
		}
		return existential(jsl.And{Left: jsl.IsInt{}, Right: jsl.Max{I: n}})
	case "$in", "$nin":
		if !operand.IsArray() || operand.Len() == 0 {
			return nil, fmt.Errorf("mongoq: %s wants a non-empty array", op)
		}
		var alts []jsl.Formula
		for _, e := range operand.Elems() {
			alts = append(alts, jsl.EqDoc{Doc: e})
		}
		pos, err := navigate(path, jsl.OrAll(alts...))
		if err != nil {
			return nil, err
		}
		if op == "$nin" {
			return jsl.Not{Inner: pos}, nil
		}
		return pos, nil
	case "$exists":
		if !operand.IsNumber() || operand.Num() > 1 {
			return nil, fmt.Errorf("mongoq: $exists wants 1 or 0 in the boolean-free value model")
		}
		if operand.Num() == 1 {
			return existential(jsl.True{})
		}
		return navigateAbsent(path)
	case "$size":
		n, err := needNum()
		if err != nil {
			return nil, err
		}
		k := int(n)
		return existential(jsl.AndAll(jsl.IsArr{}, jsl.MinCh{K: k}, jsl.MaxCh{K: k}))
	case "$type":
		if !operand.IsString() {
			return nil, fmt.Errorf("mongoq: $type wants a type name string")
		}
		switch operand.Str() {
		case "string":
			return existential(jsl.IsStr{})
		case "number":
			return existential(jsl.IsInt{})
		case "object":
			return existential(jsl.IsObj{})
		case "array":
			return existential(jsl.IsArr{})
		default:
			return nil, fmt.Errorf("mongoq: unknown $type %q", operand.Str())
		}
	default:
		return nil, fmt.Errorf("mongoq: unknown operator %q", op)
	}
}

// navigate wraps a node condition in the modalities of a dotted path:
// a.0.b becomes ◇_a ◇_{0:0} ◇_b cond (navigation instructions of §2).
func navigate(path string, cond jsl.Formula) (jsl.Formula, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	out := cond
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i].isIndex {
			out = jsl.DiaAt(segs[i].index, out)
		} else {
			out = jsl.DiaWord(segs[i].key, out)
		}
	}
	return out, nil
}

// navigateAbsent builds the condition "the dotted path has no value":
// the last step must be absent whenever the prefix is present.
func navigateAbsent(path string) (jsl.Formula, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	last := segs[len(segs)-1]
	var absent jsl.Formula
	if last.isIndex {
		absent = jsl.Not{Inner: jsl.DiaAt(last.index, jsl.True{})}
	} else {
		absent = jsl.Not{Inner: jsl.DiaWord(last.key, jsl.True{})}
	}
	out := absent
	for i := len(segs) - 2; i >= 0; i-- {
		// The path is absent if the prefix is absent or leads to a node
		// where the remainder is absent: ◻ captures both.
		if segs[i].isIndex {
			out = jsl.BoxAt(segs[i].index, out)
		} else {
			out = jsl.BoxWord(segs[i].key, out)
		}
	}
	return out, nil
}

type pathSeg struct {
	key     string
	index   int
	isIndex bool
}

func splitPath(path string) ([]pathSeg, error) {
	if path == "" {
		return nil, fmt.Errorf("mongoq: empty field path")
	}
	var segs []pathSeg
	for _, part := range strings.Split(path, ".") {
		if part == "" {
			return nil, fmt.Errorf("mongoq: empty segment in path %q", path)
		}
		if i, err := strconv.Atoi(part); err == nil && i >= 0 {
			segs = append(segs, pathSeg{index: i, isIndex: true})
		} else {
			segs = append(segs, pathSeg{key: part})
		}
	}
	return segs, nil
}

// Lower translates the filter into the unified query algebra by
// lowering its JSL compilation — Theorem 2's observation that mongo
// navigation lives in the common core, made operational. The JSL
// evaluator remains the differential-test oracle.
func (f *Filter) Lower() *qir.Query {
	return &qir.Query{Pred: jsl.Lower(f.formula)}
}

// RequiredFacts returns path facts every matching document must obey,
// extracted from the filter's JSL compilation (jsl.RequiredFacts): the
// exact field paths the filter navigates, the node kinds its operators
// require, and the exact values of its equality comparisons. The
// store's index planner intersects the corresponding posting lists to
// obtain a candidate set; an empty result means the filter (e.g. a pure
// $ne/$nor/$exists:0) supports no index pruning.
func (f *Filter) RequiredFacts() []jsontree.PathFact {
	return jsl.RequiredFacts(f.formula)
}
