package xmlenc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsonval"
)

func TestEncodeShape(t *testing.T) {
	doc := jsonval.MustParse(`{"name":{"first":"John"},"hobbies":["fishing","yoga"],"age":32}`)
	root := Encode(doc)
	if root.Label != LabelRoot {
		t.Errorf("root label = %q", root.Label)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d children", len(root.Children))
	}
	name := root.ChildByKeyScan("name")
	if name == nil || len(name.Children) != 1 {
		t.Fatal("name member not encoded")
	}
	first := name.ChildByKeyScan("first")
	if first == nil || !first.IsText || first.Text != "John" {
		t.Fatalf("first = %+v", first)
	}
	hobbies := root.ChildByKeyScan("hobbies")
	if hobbies == nil || len(hobbies.Children) != 2 {
		t.Fatal("hobbies not encoded as two items")
	}
	for _, c := range hobbies.Children {
		if c.Label != LabelItem {
			t.Errorf("array child labelled %q", c.Label)
		}
	}
	if hobbies.ChildAt(1).Text != "yoga" {
		t.Errorf("hobbies[1] = %+v", hobbies.ChildAt(1))
	}
	if hobbies.ChildAt(2) != nil || hobbies.ChildAt(-1) != nil {
		t.Error("out-of-range ChildAt must return nil")
	}
}

func TestSiblingTraversal(t *testing.T) {
	// The XML encoding exposes sibling order; JSON trees do not.
	doc := jsonval.MustParse(`[10,20,30]`)
	root := Encode(doc)
	first := root.ChildAt(0)
	second := first.NextSibling()
	third := second.NextSibling()
	if second.Num != 20 || third.Num != 30 {
		t.Fatalf("sibling traversal broken: %v %v", second, third)
	}
	if third.NextSibling() != nil {
		t.Error("last sibling must have no next")
	}
	if third.PrevSibling() != second || first.PrevSibling() != nil {
		t.Error("PrevSibling broken")
	}
	if second.Parent() != root {
		t.Error("Parent broken")
	}
	if root.Parent() != nil {
		t.Error("root must have no parent")
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(c docCase) bool {
		enc := Encode(c.doc)
		dec, err := Decode(enc)
		if err != nil {
			t.Logf("decode(%s): %v", c.doc, err)
			return false
		}
		// Empty arrays decode as empty objects — the documented
		// lossiness of the encoding. Normalise before comparing.
		return jsonval.Equal(normaliseEmpty(c.doc), normaliseEmpty(dec))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// normaliseEmpty replaces empty arrays by empty objects everywhere.
func normaliseEmpty(v *jsonval.Value) *jsonval.Value {
	switch v.Kind() {
	case jsonval.Array:
		if v.Len() == 0 {
			return jsonval.MustObj()
		}
		elems := make([]*jsonval.Value, v.Len())
		for i, e := range v.Elems() {
			elems[i] = normaliseEmpty(e)
		}
		return jsonval.Arr(elems...)
	case jsonval.Object:
		members := make([]jsonval.Member, 0, v.Len())
		for _, m := range v.Members() {
			members = append(members, jsonval.Member{Key: m.Key, Value: normaliseEmpty(m.Value)})
		}
		return jsonval.MustObj(members...)
	default:
		return v
	}
}

func TestDecodeRejectsMixedChildren(t *testing.T) {
	n := &Node{Label: LabelRoot}
	k := &Node{Label: KeyPrefix + "a", IsNum: true, Num: 1}
	it := &Node{Label: LabelItem, IsNum: true, Num: 2}
	n.Children = []*Node{k, it}
	if _, err := Decode(n); err == nil {
		t.Fatal("expected error for mixed key/item children")
	}
	n.Children = []*Node{it, k}
	if _, err := Decode(n); err == nil {
		t.Fatal("expected error for mixed item/key children")
	}
}

func TestDecodeRejectsDuplicateKeys(t *testing.T) {
	n := &Node{Label: LabelRoot}
	n.Children = []*Node{
		{Label: KeyPrefix + "a", IsNum: true, Num: 1},
		{Label: KeyPrefix + "a", IsNum: true, Num: 2},
	}
	if _, err := Decode(n); err == nil {
		t.Fatal("expected error for duplicate keys")
	}
}

func TestSize(t *testing.T) {
	doc := jsonval.MustParse(`{"a":[1,2],"b":"x"}`)
	// root + k:a + two items + k:b = 5 (the key element is the value
	// node in this encoding).
	if got := Encode(doc).Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestXMLRendering(t *testing.T) {
	doc := jsonval.MustParse(`{"a<b":["x&y"],"n":7}`)
	xml := Encode(doc).XML()
	for _, want := range []string{"<json>", "</json>", "key-", "item", "&amp;"} {
		if !strings.Contains(xml, want) {
			t.Errorf("XML output missing %q:\n%s", want, xml)
		}
	}
	if strings.Contains(xml, "x&y") {
		t.Error("unescaped text leaked into XML")
	}
}

func TestKeyLookupAgreement(t *testing.T) {
	// XML scan lookup and JSON tree lookup return the same member
	// values for every key present.
	f := func(c docCase) bool {
		if !c.doc.IsObject() {
			return true
		}
		enc := Encode(c.doc)
		for _, m := range c.doc.Members() {
			found := enc.ChildByKeyScan(m.Key)
			if found == nil {
				return false
			}
			dec, err := Decode(found)
			if err != nil {
				return false
			}
			if !jsonval.Equal(normaliseEmpty(m.Value), normaliseEmpty(dec)) {
				return false
			}
		}
		return enc.ChildByKeyScan("absent-key") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type docCase struct{ doc *jsonval.Value }

func (docCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(docCase{randDoc(r, 1+r.Intn(3))})
}

func randDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(100)))
		}
		return jsonval.Str([]string{"x", "y&z", "<tag>"}[r.Intn(3)])
	}
	if r.Intn(2) == 0 {
		n := r.Intn(4)
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	keys := []string{"a", "b", "c d", "é"}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := r.Intn(4)
	members := make([]jsonval.Member, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, jsonval.Member{Key: keys[i], Value: randDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}
