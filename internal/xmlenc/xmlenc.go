// Package xmlenc encodes JSON trees as XML-style ordered labelled
// trees, the encoding §3.2 of the paper discusses and argues against.
//
// The encoding follows the paper's observation: XML has no edge labels,
// so object keys must become node labels. Retrieving the value under a
// key then requires scanning all children of a node and comparing
// labels — O(fanout) per step instead of the O(log fanout) (or O(1))
// lookup the deterministic JSON tree model admits. The package exists
// to measure exactly that gap (BenchmarkAblationXMLKeyLookup) and to
// make the modelling differences concrete: XML nodes expose ordered
// sibling traversal, which JSON trees deliberately lack, while the
// JSON kinds and the object/array distinction must be tunnelled
// through reserved labels.
package xmlenc

import (
	"fmt"
	"strings"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

// Label names reserved by the encoding. Keys never collide with them
// because encoded keys are prefixed with "k:".
const (
	// LabelRoot marks the document element.
	LabelRoot = "json"
	// LabelItem marks an array element.
	LabelItem = "item"
	// KeyPrefix prefixes encoded object keys.
	KeyPrefix = "k:"
)

// Node is one element of the XML-style tree: a label, an optional text
// value, and an ordered list of children. Unlike jsontree, there is no
// keyed access — only ordered traversal, as in the XML data model.
type Node struct {
	Label    string
	Text     string // value of string leaves
	Num      uint64 // value of number leaves
	IsText   bool
	IsNum    bool
	Children []*Node
	parent   *Node
	sibling  int // index in parent's Children
}

// Parent returns the node's parent, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// NextSibling returns the following sibling, or nil — the ordered
// traversal XML provides and JSON trees do not.
func (n *Node) NextSibling() *Node {
	if n.parent == nil || n.sibling+1 >= len(n.parent.Children) {
		return nil
	}
	return n.parent.Children[n.sibling+1]
}

// PrevSibling returns the preceding sibling, or nil.
func (n *Node) PrevSibling() *Node {
	if n.parent == nil || n.sibling == 0 {
		return nil
	}
	return n.parent.Children[n.sibling-1]
}

// Encode translates a JSON value into its XML-style encoding:
//
//   - an object becomes an element whose children are elements labelled
//     KeyPrefix+key, each wrapping the encoded member value;
//   - an array becomes an element whose children are LabelItem
//     elements in order;
//   - strings and numbers become text leaves.
//
// The root carries LabelRoot.
func Encode(v *jsonval.Value) *Node {
	root := encode(v, LabelRoot)
	return root
}

func encode(v *jsonval.Value, label string) *Node {
	n := &Node{Label: label}
	switch v.Kind() {
	case jsonval.String:
		n.IsText = true
		n.Text = v.Str()
	case jsonval.Number:
		n.IsNum = true
		n.Num = v.Num()
	case jsonval.Object:
		for _, m := range v.Members() {
			child := encode(m.Value, KeyPrefix+m.Key)
			child.parent = n
			child.sibling = len(n.Children)
			n.Children = append(n.Children, child)
		}
	case jsonval.Array:
		for _, e := range v.Elems() {
			child := encode(e, LabelItem)
			child.parent = n
			child.sibling = len(n.Children)
			n.Children = append(n.Children, child)
		}
	}
	return n
}

// Decode inverts Encode. It reports an error when the tree does not
// follow the encoding's labelling discipline — which is the paper's
// point: arbitrary XML does not round-trip into JSON.
func Decode(n *Node) (*jsonval.Value, error) {
	switch {
	case n.IsText:
		return jsonval.Str(n.Text), nil
	case n.IsNum:
		return jsonval.Num(n.Num), nil
	case len(n.Children) == 0:
		// Ambiguous: an empty element decodes as the empty object,
		// matching Encode of {} (Encode of [] also lands here; the
		// encoding is lossy on empty containers, another §3.2 wart).
		return jsonval.MustObj(), nil
	case strings.HasPrefix(n.Children[0].Label, KeyPrefix):
		members := make([]jsonval.Member, 0, len(n.Children))
		for _, c := range n.Children {
			if !strings.HasPrefix(c.Label, KeyPrefix) {
				return nil, fmt.Errorf("xmlenc: mixed key and item children under %q", n.Label)
			}
			v, err := Decode(c)
			if err != nil {
				return nil, err
			}
			members = append(members, jsonval.Member{Key: strings.TrimPrefix(c.Label, KeyPrefix), Value: v})
		}
		obj, err := jsonval.Obj(members...)
		if err != nil {
			return nil, fmt.Errorf("xmlenc: %w", err)
		}
		return obj, nil
	default:
		elems := make([]*jsonval.Value, 0, len(n.Children))
		for _, c := range n.Children {
			if c.Label != LabelItem {
				return nil, fmt.Errorf("xmlenc: mixed key and item children under %q", n.Label)
			}
			v, err := Decode(c)
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
		}
		return jsonval.Arr(elems...), nil
	}
}

// ChildByKeyScan retrieves the value element under a key the way an
// XML processor must: a linear scan of the children comparing labels.
// This is the §3.2 cost the benchmarks measure against
// jsontree.Tree.ChildByKey.
func (n *Node) ChildByKeyScan(key string) *Node {
	want := KeyPrefix + key
	for _, c := range n.Children {
		if c.Label == want {
			return c
		}
	}
	return nil
}

// ChildAt returns the i-th child (array access is positional in both
// models).
func (n *Node) ChildAt(i int) *Node {
	if i < 0 || i >= len(n.Children) {
		return nil
	}
	return n.Children[i]
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// EncodeTree is Encode over the jsontree representation.
func EncodeTree(t *jsontree.Tree) *Node {
	return Encode(t.Value(t.Root()))
}

// WriteXML renders the tree as XML text with minimal escaping — enough
// to eyeball the encoding in examples and docs.
func (n *Node) WriteXML(sb *strings.Builder, indent string) {
	n.writeXML(sb, indent, 0)
}

// XML returns the XML text of the subtree.
func (n *Node) XML() string {
	var sb strings.Builder
	n.WriteXML(&sb, "  ")
	return sb.String()
}

func (n *Node) writeXML(sb *strings.Builder, indent string, depth int) {
	pad := strings.Repeat(indent, depth)
	tag := xmlName(n.Label)
	switch {
	case n.IsText:
		fmt.Fprintf(sb, "%s<%s>%s</%s>\n", pad, tag, xmlEscape(n.Text), tag)
	case n.IsNum:
		fmt.Fprintf(sb, "%s<%s>%d</%s>\n", pad, tag, n.Num, tag)
	case len(n.Children) == 0:
		fmt.Fprintf(sb, "%s<%s/>\n", pad, tag)
	default:
		fmt.Fprintf(sb, "%s<%s>\n", pad, tag)
		for _, c := range n.Children {
			c.writeXML(sb, indent, depth+1)
		}
		fmt.Fprintf(sb, "%s</%s>\n", pad, tag)
	}
}

// xmlName makes a label usable as an element name: the "k:" prefix
// becomes "key-" and characters outside [A-Za-z0-9_-] are hex-escaped.
func xmlName(label string) string {
	label = strings.Replace(label, KeyPrefix, "key-", 1)
	var sb strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			sb.WriteRune(r)
		default:
			fmt.Fprintf(&sb, "_%04x", r)
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
