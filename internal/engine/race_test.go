package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
)

// TestSharedPlanConcurrentEval is the regression test for the
// evaluator-sharing design: one cached plan is hammered from many
// goroutines over distinct trees (plus one tree shared read-only by
// all), and every result must match the precomputed reference. Run
// under `go test -race` this pins the contract that a Plan is immutable
// and all mutable evaluation state is call-local.
func TestSharedPlanConcurrentEval(t *testing.T) {
	const (
		goroutines = 12
		iterations = 40
	)
	e := New(Options{})
	// The formula exercises every piece of per-evaluation mutable state:
	// regex-axis edge marks, subtree-equality classes (EQ over
	// non-deterministic paths) and node-set algebra.
	src := `([(/~"k.*")* <eq(/k1, /k2)>] || eq((/~".*" | /[0:3]), 7)) && !eq(/k0, "s1")`
	plan, err := e.Compile(LangJNL, src)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(42))
	opts := gen.DocOptions{Fanout: 4, Depth: 4, Keys: 8, ArrayBias: 40, ValueRange: 12}
	shared := jsontree.FromValue(gen.Document(r, opts))
	sharedWant, err := Compile(LangJNL, src)
	if err != nil {
		t.Fatal(err)
	}
	sharedExpected, err := sharedWant.eval(shared)
	if err != nil {
		t.Fatal(err)
	}

	type work struct {
		tree     *jsontree.Tree
		expected []jsontree.NodeID
	}
	works := make([]work, goroutines)
	for i := range works {
		tr := jsontree.FromValue(gen.Document(r, opts))
		expected, err := sharedWant.eval(tr)
		if err != nil {
			t.Fatal(err)
		}
		works[i] = work{tree: tr, expected: expected}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := works[g]
			for it := 0; it < iterations; it++ {
				got, err := e.Eval(plan, w.tree)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if !sameNodes(got, w.expected) {
					errs <- fmt.Errorf("goroutine %d iter %d: result diverged on own tree", g, it)
					return
				}
				// Interleave evaluations over the tree shared by all
				// goroutines: trees are immutable and must tolerate
				// concurrent readers.
				got, err = e.Eval(plan, shared)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d (shared): %v", g, it, err)
					return
				}
				if !sameNodes(got, sharedExpected) {
					errs <- fmt.Errorf("goroutine %d iter %d: result diverged on shared tree", g, it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCompileEvictAndBatch stresses the cache's concurrency:
// many goroutines compile an overlapping working set larger than the
// cache (forcing concurrent evictions and recompiles) while others run
// batch and NDJSON evaluations. Counters must balance afterwards.
func TestConcurrentCompileEvictAndBatch(t *testing.T) {
	e := New(Options{PlanCacheSize: 8, Workers: 4})
	sources := make([]string, 24)
	for i := range sources {
		sources[i] = fmt.Sprintf(`[/k%d] || eq(/k%d, %d)`, i%12, (i+5)%12, i)
	}
	tr := jsontree.MustParse(`{"k1": 7, "k5": [1, 2, 3], "k9": {"k1": 7}}`)

	const compilers = 8
	var wg sync.WaitGroup
	errs := make(chan error, compilers+2)
	for g := 0; g < compilers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				src := sources[r.Intn(len(sources))]
				p, err := e.Compile(LangJNL, src)
				if err != nil {
					errs <- err
					return
				}
				if p.Source() != src {
					errs <- fmt.Errorf("cache returned plan for %q when asked for %q", p.Source(), src)
					return
				}
				if _, err := e.Eval(p, tr); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := MustCompile(LangMongoFind, `{"k1": {"$gte": 5}}`)
		trees := make([]*jsontree.Tree, 32)
		for i := range trees {
			trees[i] = jsontree.MustParse(fmt.Sprintf(`{"k1": %d}`, i))
		}
		for i := 0; i < 20; i++ {
			verdicts, err := e.ValidateBatch(p, trees)
			if err != nil {
				errs <- err
				return
			}
			for j, ok := range verdicts {
				if ok != (j >= 5) {
					errs <- fmt.Errorf("batch verdict %d = %v under concurrency", j, ok)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		p := MustCompile(LangJSONPath, `$.items[*]`)
		var sb strings.Builder
		for i := 0; i < 50; i++ {
			fmt.Fprintf(&sb, `{"items": [%d, %d]}`+"\n", i, i+1)
		}
		for i := 0; i < 10; i++ {
			results, err := e.EvalReader(p, strings.NewReader(sb.String()))
			if err != nil {
				errs <- err
				return
			}
			for _, res := range results {
				if res.Err != nil || len(res.Nodes) != 2 {
					errs <- fmt.Errorf("NDJSON under concurrency: doc %d nodes=%d err=%v", res.Index, len(res.Nodes), res.Err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := e.CacheStats()
	if s.Entries > 8 {
		t.Errorf("cache exceeded its bound: %+v", s)
	}
	if s.Hits+s.Misses < compilers*200 {
		t.Errorf("cache counters lost calls: %+v", s)
	}
}
