package engine

import (
	"context"
	"fmt"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonpath"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/mongoq"
	"jsonlogic/internal/qir"
	"jsonlogic/internal/trace"
)

// Language selects the front end a source text is compiled with.
type Language uint8

const (
	// LangJNL is a unary JNL formula in the concrete syntax of
	// jnl.Parse, e.g. "[/name/first]".
	LangJNL Language = iota
	// LangJSL is a (possibly recursive) JSL expression in the syntax of
	// jsl.ParseRecursive, e.g. "object && some(\"name\", string)".
	LangJSL
	// LangJSONPath is a JSONPath expression, e.g. "$.store.book[*]".
	LangJSONPath
	// LangMongoFind is a MongoDB find-filter document, e.g.
	// `{"age": {"$gt": 30}}`.
	LangMongoFind
)

// String returns the canonical name of the language.
func (l Language) String() string {
	switch l {
	case LangJNL:
		return "jnl"
	case LangJSL:
		return "jsl"
	case LangJSONPath:
		return "jsonpath"
	case LangMongoFind:
		return "mongo"
	}
	return fmt.Sprintf("Language(%d)", uint8(l))
}

// ParseLanguage maps a language name ("jnl", "jsl", "jsonpath",
// "mongo") to its Language, for command-line front ends.
func ParseLanguage(name string) (Language, error) {
	switch name {
	case "jnl":
		return LangJNL, nil
	case "jsl":
		return LangJSL, nil
	case "jsonpath":
		return LangJSONPath, nil
	case "mongo", "mongofind":
		return LangMongoFind, nil
	}
	return 0, fmt.Errorf("engine: unknown language %q", name)
}

// Plan is a compiled, immutable query. Compilation parses the source
// under its front end, lowers the result into the unified query
// algebra (internal/qir), compiles the algebra into a physical
// operator program, and derives the index facts the store's planner
// consumes — all once. A Plan never changes after Compile and may be
// evaluated from any number of goroutines concurrently; all
// per-evaluation mutable state lives inside each Eval/Validate call.
//
// The original front-end ASTs are retained alongside the lowered query
// so the per-language evaluators can serve as differential-test
// oracles (EvalReference, ValidateReference); production evaluation
// runs exclusively through the QIR program.
type Plan struct {
	lang   Language
	source string

	// Reference ASTs for the oracle evaluators.
	unary jnl.Unary      // LangJNL
	rec   *jsl.Recursive // LangJSL and LangMongoFind
	path  jnl.Binary     // LangJSONPath

	// The unified algebra: lowered logical query and compiled physical
	// program.
	query *qir.Query
	prog  *qir.Program

	// Index facts derived from the lowered query (hints.go): necessary
	// conditions for Validate (findFacts) and for a non-empty Eval
	// (selectFacts). Empty slices mean "not index-supported".
	findFacts   []jsontree.PathFact
	selectFacts []jsontree.PathFact

	// Semantic-pass results (semantic.go); zero values when the pass is
	// disabled or the plan was compiled outside an engine. Filled before
	// the plan is published to the cache, immutable afterwards.
	sem    semanticInfo
	semJSL *jsl.Recursive // canonical recursive-JSL form; nil if unavailable
}

// Language returns the plan's front-end language.
func (p *Plan) Language() Language { return p.lang }

// Source returns the source text the plan was compiled from.
func (p *Plan) Source() string { return p.source }

// Query returns the plan's lowered logical query. The query is shared
// and must not be modified.
func (p *Plan) Query() *qir.Query { return p.query }

// Compile parses and compiles src under the given language without
// consulting any cache. Engine.Compile is the cached entry point.
func Compile(lang Language, src string) (*Plan, error) {
	return compileTraced(lang, src, nil, trace.None)
}

// compileTraced is Compile recording the front-end parse and the QIR
// compile as child spans of parent. tr may be nil (untraced).
func compileTraced(lang Language, src string, tr *trace.Trace, parent trace.SpanID) (*Plan, error) {
	p := &Plan{lang: lang, source: src}
	sp := tr.Start(parent, "parse")
	err := p.parseAndLower(lang, src)
	tr.End(sp)
	if err != nil {
		return nil, err
	}
	sp = tr.Start(parent, "qir_compile")
	p, err = p.finish()
	tr.End(sp)
	return p, err
}

// parseAndLower runs the front end: parse src under lang and lower the
// result into the unified algebra (p.query), retaining the reference
// AST for the oracle evaluators.
func (p *Plan) parseAndLower(lang Language, src string) error {
	switch lang {
	case LangJNL:
		u, err := jnl.Parse(src)
		if err != nil {
			return err
		}
		p.unary = u
		p.query = &qir.Query{Pred: jnl.Lower(u)}
	case LangJSL:
		r, err := jsl.ParseRecursive(src)
		if err != nil {
			return err
		}
		// Well-formedness (guardedness, no dangling refs) is a property
		// of the expression, so it is checked once here rather than on
		// every evaluation.
		if err := r.WellFormed(); err != nil {
			return err
		}
		p.rec = r
		p.query = r.Lower()
	case LangJSONPath:
		jp, err := jsonpath.Compile(src)
		if err != nil {
			return err
		}
		p.path = jp.Binary()
		p.query = jp.Lower()
	case LangMongoFind:
		f, err := mongoq.Parse(src)
		if err != nil {
			return err
		}
		p.rec = jsl.NonRecursive(f.Formula())
		p.query = f.Lower()
	default:
		return fmt.Errorf("engine: unknown language %d", lang)
	}
	return nil
}

// finish compiles the lowered query into its physical program and
// derives the plan's index facts; shared by Compile and FromJSL.
func (p *Plan) finish() (*Plan, error) {
	prog, err := qir.Compile(p.query)
	if err != nil {
		return nil, err
	}
	p.prog = prog
	p.computeFacts()
	return p, nil
}

// FromJSL wraps an already-built recursive JSL expression in a Plan,
// for pipelines that translate into JSL rather than parse it — notably
// the Theorem 1 JSON Schema translation. The label stands in for the
// source text (such plans are not cache-keyed by the engine; callers
// hold and share the *Plan themselves). The expression must not be
// mutated afterwards.
func FromJSL(label string, r *jsl.Recursive) (*Plan, error) {
	if err := r.WellFormed(); err != nil {
		return nil, err
	}
	p := &Plan{lang: LangJSL, source: label, rec: r, query: r.Lower()}
	return p.finish()
}

// MustCompile is Compile but panics on error; for statically known
// queries in tests and examples.
func MustCompile(lang Language, src string) *Plan {
	p, err := Compile(lang, src)
	if err != nil {
		panic(err)
	}
	return p
}

// eval computes the plan's node-selection semantics over one tree via
// the QIR program; all mutable executor state is call-local, so
// concurrent calls on a shared plan never interfere:
//
//   - JNL: the nodes satisfying the unary formula.
//   - JSONPath: the nodes selected from the root.
//   - JSL: the nodes whose subtree satisfies the expression, per the
//     (json(n), n) |= Δ relation of Lemma 3.
//   - Mongo find: the nodes whose subtree matches the filter (the root
//     node's membership is the find() answer for the document).
func (p *Plan) eval(t *jsontree.Tree) ([]jsontree.NodeID, error) {
	return p.prog.Eval(t), nil
}

// evalAppend is eval appending into a caller-reused buffer; see
// Engine.EvalAppend.
func (p *Plan) evalAppend(t *jsontree.Tree, out []jsontree.NodeID) ([]jsontree.NodeID, error) {
	return p.prog.EvalAppend(t, out), nil
}

// evalAppendCtx is evalAppend with cooperative cancellation; a nil ctx
// is the unchecked fast path.
func (p *Plan) evalAppendCtx(ctx context.Context, t *jsontree.Tree, out []jsontree.NodeID) ([]jsontree.NodeID, error) {
	return p.prog.EvalAppendCtx(ctx, t, out)
}

// validate computes the plan's boolean semantics over one tree via the
// QIR program:
//
//   - JNL: does the root satisfy the formula (J |= φ at ε).
//   - JSONPath: does the path select at least one node.
//   - JSL: does the document satisfy the expression (J |= Δ).
//   - Mongo find: does the document match the filter.
func (p *Plan) validate(t *jsontree.Tree) (bool, error) {
	return p.prog.Match(t), nil
}

// validateCtx is validate with cooperative cancellation; a nil ctx is
// the unchecked fast path.
func (p *Plan) validateCtx(ctx context.Context, t *jsontree.Tree) (bool, error) {
	return p.prog.MatchCtx(ctx, t)
}

// EvalReference computes the node-selection semantics with the
// original front-end evaluator instead of the QIR program. It exists
// for the differential test harness and the benchmarks that compare
// the unified executor against its oracles; production callers use
// Engine.Eval.
func (p *Plan) EvalReference(t *jsontree.Tree) ([]jsontree.NodeID, error) {
	switch p.lang {
	case LangJNL:
		return jnl.NewEvaluator(t).Eval(p.unary).Slice(), nil
	case LangJSONPath:
		return jnl.NewEvaluator(t).Select(p.path, t.Root()), nil
	case LangJSL, LangMongoFind:
		sets, err := jsl.NewEvaluator(t).EvalRecursivePrechecked(p.rec)
		if err != nil {
			return nil, err
		}
		var out []jsontree.NodeID
		for i, ok := range sets {
			if ok {
				out = append(out, jsontree.NodeID(i))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("engine: unknown language %d", p.lang)
}

// ValidateReference computes the boolean semantics with the original
// front-end evaluator; EvalReference's counterpart.
func (p *Plan) ValidateReference(t *jsontree.Tree) (bool, error) {
	switch p.lang {
	case LangJNL:
		return jnl.NewEvaluator(t).Holds(p.unary, t.Root()), nil
	case LangJSONPath:
		return len(jnl.NewEvaluator(t).Select(p.path, t.Root())) > 0, nil
	case LangJSL, LangMongoFind:
		sets, err := jsl.NewEvaluator(t).EvalRecursivePrechecked(p.rec)
		if err != nil {
			return false, err
		}
		return sets[t.Root()], nil
	}
	return false, fmt.Errorf("engine: unknown language %d", p.lang)
}

// PlanExplain is the compile-time half of a query explanation: the
// lowered logical tree, the physical operator program, and the index
// facts the store's cost-based planner will consult. Store.Explain
// adds the run-time half (chosen access path, estimated versus actual
// cardinalities).
type PlanExplain struct {
	Language    string   `json:"language"`
	Source      string   `json:"source"`
	Logical     string   `json:"logical"`
	Physical    string   `json:"physical"`
	FindFacts   []string `json:"find_facts,omitempty"`
	SelectFacts []string `json:"select_facts,omitempty"`
	// Semantic reports the semantic pass's outcome (verdict, borrowed
	// facts, schema-pruned terms); nil when the pass did not run.
	Semantic *SemanticExplain `json:"semantic,omitempty"`
}

// Explain renders the plan's logical and physical trees.
func (p *Plan) Explain() PlanExplain {
	ex := PlanExplain{
		Language: p.lang.String(),
		Source:   p.source,
		Logical:  p.query.String(),
		Physical: p.prog.Describe(),
		Semantic: p.semanticExplain(),
	}
	for _, f := range p.findFacts {
		ex.FindFacts = append(ex.FindFacts, f.String())
	}
	for _, f := range p.selectFacts {
		ex.SelectFacts = append(ex.SelectFacts, f.String())
	}
	return ex
}
