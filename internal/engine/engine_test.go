package engine

import (
	"fmt"
	"strings"
	"testing"

	"jsonlogic/internal/jsontree"
)

var personDoc = `{
	"name": {"first": "sue", "last": "storm"},
	"age": 34,
	"hobbies": ["yoga", "chess"]
}`

func personTree(t *testing.T) *jsontree.Tree {
	t.Helper()
	return jsontree.MustParse(personDoc)
}

func TestEvalPerLanguage(t *testing.T) {
	e := New(Options{})
	tr := personTree(t)
	cases := []struct {
		lang      Language
		src       string
		wantCount int
		wantValid bool
	}{
		{LangJNL, `[/name/first]`, 1, true},
		{LangJNL, `[/nope]`, 0, false},
		{LangJSONPath, `$.hobbies[*]`, 2, true},
		{LangJSONPath, `$..first`, 1, true},
		{LangJSONPath, `$.missing`, 0, false},
		{LangJSL, `object && some("age", number && min(30))`, 1, true},
		{LangJSL, `some("age", min(100))`, 1, false},
		{LangMongoFind, `{"age": {"$gte": 30}}`, 0, true},
		{LangMongoFind, `{"age": {"$lt": 30}}`, 0, false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%s", tc.lang, tc.src), func(t *testing.T) {
			p, err := e.Compile(tc.lang, tc.src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			ok, err := e.Validate(p, tr)
			if err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if ok != tc.wantValid {
				t.Errorf("Validate = %v, want %v", ok, tc.wantValid)
			}
			nodes, err := e.Eval(p, tr)
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			switch tc.lang {
			case LangJNL, LangJSONPath:
				if len(nodes) != tc.wantCount {
					t.Errorf("Eval selected %d nodes, want %d", len(nodes), tc.wantCount)
				}
			case LangJSL, LangMongoFind:
				// Node-selection semantics for validation languages:
				// the root's membership is the verdict.
				rootIn := false
				for _, n := range nodes {
					if n == tr.Root() {
						rootIn = true
					}
				}
				if rootIn != tc.wantValid {
					t.Errorf("root in Eval set = %v, want %v", rootIn, tc.wantValid)
				}
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	e := New(Options{})
	cases := []struct {
		lang Language
		src  string
	}{
		{LangJNL, `[/unclosed`},
		{LangJSL, `some(`},
		{LangJSL, `def g = g; g`}, // unguarded self-reference: not well-formed
		{LangJSONPath, `store.book`},
		{LangMongoFind, `[1,2]`},
		{Language(99), `anything`},
	}
	for _, tc := range cases {
		if _, err := e.Compile(tc.lang, tc.src); err == nil {
			t.Errorf("Compile(%v, %q): want error", tc.lang, tc.src)
		}
	}
	// Errors must not be cached: stats show misses only.
	if s := e.CacheStats(); s.Entries != 0 {
		t.Errorf("failed compiles were cached: %+v", s)
	}
}

func TestPlanCacheHitsAndSharing(t *testing.T) {
	e := New(Options{})
	p1, err := e.Compile(LangJNL, `[/name]`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Compile(LangJNL, `[/name]`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Compile of the same source returned a different plan")
	}
	// The same source in a different language is a different plan.
	if _, err := e.Compile(LangJSL, `true`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compile(LangJNL, `true`); err != nil {
		t.Fatal(err)
	}
	s := e.CacheStats()
	if s.Hits != 1 || s.Misses != 3 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 hit, 3 misses, 3 entries", s)
	}
	if s.Capacity != DefaultPlanCacheSize {
		t.Errorf("default capacity = %d, want %d", s.Capacity, DefaultPlanCacheSize)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	e := New(Options{PlanCacheSize: 2})
	mustCompile := func(src string) *Plan {
		t.Helper()
		p, err := e.Compile(LangJNL, src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mustCompile(`[/a]`)
	mustCompile(`[/b]`)
	// Touch a so b becomes the LRU entry, then overflow.
	if got := mustCompile(`[/a]`); got != a {
		t.Fatal("expected cache hit for a")
	}
	mustCompile(`[/c]`) // evicts b
	s := e.CacheStats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", s)
	}
	if got := mustCompile(`[/a]`); got != a {
		t.Error("a was evicted instead of b")
	}
	before := e.CacheStats().Misses
	mustCompile(`[/b]`) // must re-compile: it was evicted
	if e.CacheStats().Misses != before+1 {
		t.Error("b was still cached after eviction")
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	e := New(Options{Workers: 4})
	p := MustCompile(LangJNL, `[/k1] || eq(/k2, 7)`)
	trees := make([]*jsontree.Tree, 37)
	for i := range trees {
		trees[i] = jsontree.MustParse(fmt.Sprintf(`{"k1": %d, "k2": %d, "pad%d": [%d]}`, i, i%9, i, i))
	}
	batch, err := e.EvalBatch(p, trees)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := e.ValidateBatch(p, trees)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trees {
		seq, err := e.Eval(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(batch[i]) {
			t.Fatalf("tree %d: batch %v != sequential %v", i, batch[i], seq)
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Fatalf("tree %d: batch %v != sequential %v", i, batch[i], seq)
			}
		}
		ok, err := e.Validate(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != verdicts[i] {
			t.Fatalf("tree %d: batch verdict %v != sequential %v", i, verdicts[i], ok)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	e := New(Options{})
	p := MustCompile(LangJNL, `true`)
	if out, err := e.EvalBatch(p, nil); err != nil || len(out) != 0 {
		t.Errorf("empty EvalBatch = (%v, %v)", out, err)
	}
	if out, err := e.ValidateBatch(p, nil); err != nil || len(out) != 0 {
		t.Errorf("empty ValidateBatch = (%v, %v)", out, err)
	}
}

func TestNDJSONValidateReader(t *testing.T) {
	e := New(Options{Workers: 4})
	p := MustCompile(LangMongoFind, `{"v": {"$gte": 10}}`)
	var sb strings.Builder
	want := make([]bool, 0, 100)
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, `{"v": %d, "tag": "t%d"}`+"\n", i, i)
		want = append(want, i >= 10)
		if i%10 == 0 {
			sb.WriteString("\n") // blank lines are skipped
		}
	}
	results, err := e.ValidateReader(p, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 100 {
		t.Fatalf("got %d results, want 100", len(results))
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if res.Err != nil {
			t.Fatalf("doc %d: %v", i, res.Err)
		}
		if res.Valid != want[i] {
			t.Errorf("doc %d: valid=%v, want %v", i, res.Valid, want[i])
		}
	}
}

func TestNDJSONEvalReaderAndBadLines(t *testing.T) {
	e := New(Options{Workers: 3})
	p := MustCompile(LangJSONPath, `$.items[*]`)
	input := `{"items": [1, 2, 3]}
{"items": []}
{broken
{"items": [5]}`
	results, err := e.EvalReader(p, strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	wantCounts := []int{3, 0, -1, 1} // -1 = parse error expected
	for i, res := range results {
		if wantCounts[i] < 0 {
			if res.Err == nil {
				t.Errorf("doc %d: want parse error", i)
			}
			continue
		}
		if res.Err != nil {
			t.Errorf("doc %d: %v", i, res.Err)
			continue
		}
		if len(res.Nodes) != wantCounts[i] {
			t.Errorf("doc %d: %d nodes, want %d", i, len(res.Nodes), wantCounts[i])
		}
		if res.Tree == nil {
			t.Errorf("doc %d: missing tree", i)
		}
		if res.Line != i+1 {
			t.Errorf("doc %d: line %d, want %d", i, res.Line, i+1)
		}
	}
}

func TestLanguageNames(t *testing.T) {
	for _, l := range []Language{LangJNL, LangJSL, LangJSONPath, LangMongoFind} {
		got, err := ParseLanguage(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLanguage(%q) = (%v, %v)", l.String(), got, err)
		}
	}
	if _, err := ParseLanguage("sql"); err == nil {
		t.Error("ParseLanguage(sql): want error")
	}
}
