package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/trace"
)

// Options configure an Engine. The zero value selects sensible
// defaults: a 256-plan cache, one worker per CPU and no semantic pass.
type Options struct {
	// PlanCacheSize bounds the LRU plan cache (default 256).
	PlanCacheSize int
	// Workers bounds batch parallelism (default runtime.GOMAXPROCS(0)).
	Workers int

	// SemanticBudget enables the compile-time semantic pass (see
	// semantic.go): positive values bound each solver invocation's step
	// count (jauto.Caps.MaxSteps); 0 — the default — disables the pass
	// entirely. The pass runs only on plan-cache misses, so cache hits
	// stay allocation-free whatever the budget.
	SemanticBudget int
	// Schema attaches a compiled JSON Schema (CompileSchema) for
	// schema-aware query analysis. Requires SemanticBudget > 0 to have
	// any effect. Stores that enforce the same schema on writes may
	// additionally short-circuit schema-unsatisfiable queries.
	Schema *SchemaInfo
	// SemanticDedupScan bounds how many resident plans a cache miss
	// compares against for containment-based dedup (default 8 when the
	// pass is enabled; negative disables the scan).
	SemanticDedupScan int
}

// DefaultPlanCacheSize is the plan-cache bound used when Options leaves
// PlanCacheSize zero.
const DefaultPlanCacheSize = 256

// Engine is the shared, goroutine-safe query service: it owns the plan
// cache and the batch worker configuration. One Engine is intended to
// be shared process-wide; all methods may be called concurrently.
type Engine struct {
	opts  Options
	cache *planCache
	sem   *semantics // nil when the semantic pass is disabled
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	if opts.PlanCacheSize <= 0 {
		opts.PlanCacheSize = DefaultPlanCacheSize
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts, cache: newPlanCache(opts.PlanCacheSize)}
	if opts.SemanticBudget > 0 {
		caps := jauto.DefaultCaps()
		caps.MaxSteps = opts.SemanticBudget
		scan := opts.SemanticDedupScan
		if scan == 0 {
			scan = defaultSemanticDedupScan
		}
		if scan < 0 {
			scan = 0
		}
		e.sem = &semantics{caps: caps, dedupScan: scan, schema: opts.Schema}
	}
	return e
}

// Compile returns the plan for (lang, src), compiling at most once per
// cache residency. Concurrent compiles of the same source are
// deduplicated at insert: every caller receives the same *Plan.
// Compilation errors are not cached.
func (e *Engine) Compile(lang Language, src string) (*Plan, error) {
	return e.CompileTraced(lang, src, nil)
}

// CompileTraced is Compile recording a "compile" span on tr (plan
// cache hit/miss, and on a miss the front-end parse and QIR compile as
// child spans). tr may be nil — the untraced path — in which case the
// recorder calls reduce to nil checks and a cache hit stays
// allocation-free.
func (e *Engine) CompileTraced(lang Language, src string, tr *trace.Trace) (*Plan, error) {
	key := planKey{lang: lang, src: src}
	if p, ok := e.cache.get(key); ok {
		if tr != nil {
			sp := tr.Start(tr.Root(), "compile")
			tr.AttrStr(sp, "plan_cache", "hit")
			tr.End(sp)
		}
		return p, nil
	}
	sp := tr.Start(tr.Root(), "compile")
	tr.AttrStr(sp, "plan_cache", "miss")
	p, err := compileTraced(lang, src, tr, sp)
	if err == nil && e.sem != nil {
		e.analyze(p, tr, sp)
		if q := e.dedup(p); q != nil {
			tr.AttrStr(sp, "semantic_alias", q.Source())
			tr.End(sp)
			return e.cache.add(key, q), nil
		}
	}
	tr.End(sp)
	if err != nil {
		return nil, err
	}
	return e.cache.add(key, p), nil
}

// CacheStats returns a snapshot of the plan cache's counters, plus the
// semantic pass's when it is enabled.
func (e *Engine) CacheStats() CacheStats {
	st := e.cache.stats()
	if e.sem != nil {
		st.SemanticChecks = e.sem.checks.Load()
		st.SemanticUnsat = e.sem.unsat.Load()
		st.SemanticUnknown = e.sem.unknown.Load()
		st.SemanticAliases = e.sem.aliases.Load()
		st.SemanticBorrowed = e.sem.borrowed.Load()
		st.SchemaPrunedFacts = e.sem.pruned.Load()
	}
	return st
}

// Workers returns the batch worker-pool bound (Options.Workers after
// defaulting). The store consults it to decide between shard-level
// fan-out and the engine's per-document batch parallelism.
func (e *Engine) Workers() int { return e.opts.Workers }

// Eval runs the plan's node-selection semantics over one tree. The
// plan may be shared; all mutable evaluation state is call-local.
func (e *Engine) Eval(p *Plan, t *jsontree.Tree) ([]jsontree.NodeID, error) {
	return p.eval(t)
}

// Validate runs the plan's boolean semantics over one tree. A
// plan-cache-hit Validate is allocation-free: the executor's mutable
// state is pooled on the compiled program.
func (e *Engine) Validate(p *Plan, t *jsontree.Tree) (bool, error) {
	return p.validate(t)
}

// EvalAppend is Eval appending the selected nodes to out (which may be
// nil), returning the extended slice. Callers that reuse the buffer
// across trees (out, _ = e.EvalAppend(p, t, out[:0])) evaluate without
// allocating once the buffer has grown to the working-set size — the
// store's per-shard query workers are the intended users.
func (e *Engine) EvalAppend(p *Plan, t *jsontree.Tree, out []jsontree.NodeID) ([]jsontree.NodeID, error) {
	return p.evalAppend(t, out)
}

// EvalBatch evaluates one plan over many trees with a worker pool,
// returning per-tree node selections in input order. The first
// evaluation error (if any) is returned alongside the partial results.
func (e *Engine) EvalBatch(p *Plan, trees []*jsontree.Tree) ([][]jsontree.NodeID, error) {
	return e.EvalBatchBounded(p, trees, 0)
}

// EvalBatchBounded is EvalBatch with the worker pool additionally
// capped at maxWorkers (0 or negative: no extra cap). Callers with
// their own parallelism budget — the store's query fan-out — use it to
// keep a batch within that budget.
func (e *Engine) EvalBatchBounded(p *Plan, trees []*jsontree.Tree, maxWorkers int) ([][]jsontree.NodeID, error) {
	out := make([][]jsontree.NodeID, len(trees))
	err := e.forEach(len(trees), maxWorkers, func(i int) error {
		nodes, err := p.eval(trees[i])
		out[i] = nodes
		return err
	})
	return out, err
}

// ValidateBatch validates many trees against one plan with a worker
// pool, returning per-tree verdicts in input order.
func (e *Engine) ValidateBatch(p *Plan, trees []*jsontree.Tree) ([]bool, error) {
	return e.ValidateBatchBounded(p, trees, 0)
}

// ValidateBatchBounded is ValidateBatch with the worker pool
// additionally capped at maxWorkers (0 or negative: no extra cap).
func (e *Engine) ValidateBatchBounded(p *Plan, trees []*jsontree.Tree, maxWorkers int) ([]bool, error) {
	out := make([]bool, len(trees))
	err := e.forEach(len(trees), maxWorkers, func(i int) error {
		ok, err := p.validate(trees[i])
		out[i] = ok
		return err
	})
	return out, err
}

// batchCancelDocs is how often (in documents) the batch Ctx variants
// poll ctx.Err between trees; must be a power of two. Within a single
// tree the executor's own step counter bounds the latency, so the
// per-document poll only matters for batches of tiny documents.
const batchCancelDocs = 64

// ValidateCtx is Validate with cooperative cancellation: evaluation
// polls ctx periodically and returns ctx.Err() once it is done. A nil
// ctx selects the unchecked (allocation-free) fast path.
func (e *Engine) ValidateCtx(ctx context.Context, p *Plan, t *jsontree.Tree) (bool, error) {
	if ctx == nil {
		return p.validate(t)
	}
	return p.validateCtx(ctx, t)
}

// EvalAppendCtx is EvalAppend with cooperative cancellation; a nil ctx
// selects the unchecked fast path.
func (e *Engine) EvalAppendCtx(ctx context.Context, p *Plan, t *jsontree.Tree, out []jsontree.NodeID) ([]jsontree.NodeID, error) {
	if ctx == nil {
		return p.evalAppend(t, out)
	}
	return p.evalAppendCtx(ctx, t, out)
}

// ValidateBatchBoundedCtx is ValidateBatchBounded with cooperative
// cancellation: every worker polls ctx between documents (every
// batchCancelDocs trees) and inside each evaluation. A nil ctx
// delegates to the unchecked variant.
func (e *Engine) ValidateBatchBoundedCtx(ctx context.Context, p *Plan, trees []*jsontree.Tree, maxWorkers int) ([]bool, error) {
	if ctx == nil {
		return e.ValidateBatchBounded(p, trees, maxWorkers)
	}
	out := make([]bool, len(trees))
	err := e.forEach(len(trees), maxWorkers, func(i int) error {
		if i&(batchCancelDocs-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ok, err := p.validateCtx(ctx, trees[i])
		out[i] = ok
		return err
	})
	return out, err
}

// EvalBatchBoundedCtx is EvalBatchBounded with cooperative
// cancellation; a nil ctx delegates to the unchecked variant.
func (e *Engine) EvalBatchBoundedCtx(ctx context.Context, p *Plan, trees []*jsontree.Tree, maxWorkers int) ([][]jsontree.NodeID, error) {
	if ctx == nil {
		return e.EvalBatchBounded(p, trees, maxWorkers)
	}
	out := make([][]jsontree.NodeID, len(trees))
	err := e.forEach(len(trees), maxWorkers, func(i int) error {
		if i&(batchCancelDocs-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		nodes, err := p.evalAppendCtx(ctx, trees[i], nil)
		out[i] = nodes
		return err
	})
	return out, err
}

// forEach runs fn(0..n-1) over the engine's worker pool, optionally
// capped below the configured pool size. Work is distributed by an
// atomic counter so long and short items interleave without static
// partitioning skew. The first error is kept.
func (e *Engine) forEach(n, maxWorkers int, fn func(i int) error) error {
	workers := e.opts.Workers
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}
