package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"jsonlogic/internal/jsontree"
)

// Options configure an Engine. The zero value selects sensible
// defaults: a 256-plan cache and one worker per CPU.
type Options struct {
	// PlanCacheSize bounds the LRU plan cache (default 256).
	PlanCacheSize int
	// Workers bounds batch parallelism (default runtime.GOMAXPROCS(0)).
	Workers int
}

// DefaultPlanCacheSize is the plan-cache bound used when Options leaves
// PlanCacheSize zero.
const DefaultPlanCacheSize = 256

// Engine is the shared, goroutine-safe query service: it owns the plan
// cache and the batch worker configuration. One Engine is intended to
// be shared process-wide; all methods may be called concurrently.
type Engine struct {
	opts  Options
	cache *planCache
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	if opts.PlanCacheSize <= 0 {
		opts.PlanCacheSize = DefaultPlanCacheSize
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{opts: opts, cache: newPlanCache(opts.PlanCacheSize)}
}

// Compile returns the plan for (lang, src), compiling at most once per
// cache residency. Concurrent compiles of the same source are
// deduplicated at insert: every caller receives the same *Plan.
// Compilation errors are not cached.
func (e *Engine) Compile(lang Language, src string) (*Plan, error) {
	key := planKey{lang: lang, src: src}
	if p, ok := e.cache.get(key); ok {
		return p, nil
	}
	p, err := Compile(lang, src)
	if err != nil {
		return nil, err
	}
	return e.cache.add(key, p), nil
}

// CacheStats returns a snapshot of the plan cache's counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Eval runs the plan's node-selection semantics over one tree. The
// plan may be shared; all mutable evaluation state is call-local.
func (e *Engine) Eval(p *Plan, t *jsontree.Tree) ([]jsontree.NodeID, error) {
	return p.eval(t)
}

// Validate runs the plan's boolean semantics over one tree.
func (e *Engine) Validate(p *Plan, t *jsontree.Tree) (bool, error) {
	return p.validate(t)
}

// EvalBatch evaluates one plan over many trees with a worker pool,
// returning per-tree node selections in input order. The first
// evaluation error (if any) is returned alongside the partial results.
func (e *Engine) EvalBatch(p *Plan, trees []*jsontree.Tree) ([][]jsontree.NodeID, error) {
	out := make([][]jsontree.NodeID, len(trees))
	err := e.forEach(len(trees), func(i int) error {
		nodes, err := p.eval(trees[i])
		out[i] = nodes
		return err
	})
	return out, err
}

// ValidateBatch validates many trees against one plan with a worker
// pool, returning per-tree verdicts in input order.
func (e *Engine) ValidateBatch(p *Plan, trees []*jsontree.Tree) ([]bool, error) {
	out := make([]bool, len(trees))
	err := e.forEach(len(trees), func(i int) error {
		ok, err := p.validate(trees[i])
		out[i] = ok
		return err
	})
	return out, err
}

// forEach runs fn(0..n-1) over the engine's worker pool. Work is
// distributed by an atomic counter so long and short items interleave
// without static partitioning skew. The first error is kept.
func (e *Engine) forEach(n int, fn func(i int) error) error {
	workers := e.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}
