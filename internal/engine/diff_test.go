package engine

import (
	"math/rand"
	"strings"
	"testing"

	"jsonlogic/internal/gen"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonpath"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/mongoq"
)

// The differential harness: engine results must be node-for-node
// identical to the reference evaluators (a fresh jnl.Evaluator or
// jsl.Evaluator per query) across ≥1000 randomized (tree, query) pairs
// per front end. The engine is shared across all pairs with a small
// cache, so the comparisons cover cached plans, evicted-and-recompiled
// plans and first compiles alike.

// diffPairs is the number of (tree, query) pairs per front end.
const diffPairs = 1050

// diffDocOptions keeps documents small enough that the quadratic
// EQ(α,β) fallback stays cheap while still mixing all four kinds.
func diffDocOptions() gen.DocOptions {
	return gen.DocOptions{Fanout: 3, Depth: 4, Keys: 12, ArrayBias: 40, ValueRange: 20}
}

// diffTrees yields a fresh random tree every `perTree` pairs.
type diffTrees struct {
	r       *rand.Rand
	perTree int
	count   int
	cur     *jsontree.Tree
}

func (d *diffTrees) next() *jsontree.Tree {
	if d.count%d.perTree == 0 {
		d.cur = jsontree.FromValue(gen.Document(d.r, diffDocOptions()))
	}
	d.count++
	return d.cur
}

func sameNodes(a, b []jsontree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDifferentialJNL(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	e := New(Options{PlanCacheSize: 64})
	trees := &diffTrees{r: r, perTree: 7}
	for i := 0; i < diffPairs; i++ {
		tr := trees.next()
		src := gen.RandomJNLSource(r, 3)
		u, err := jnl.Parse(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not parse: %v", src, err)
		}
		want := jnl.NewEvaluator(tr).Eval(u).Slice()

		p, err := e.Compile(LangJNL, src)
		if err != nil {
			t.Fatalf("engine rejects %q: %v", src, err)
		}
		got, err := e.Eval(p, tr)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if !sameNodes(got, want) {
			t.Fatalf("pair %d: engine disagrees with reference on %q\ntree: %s\nengine:    %v\nreference: %v",
				i, src, tr, got, want)
		}
		ok, err := e.Validate(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		wantRoot := jnl.NewEvaluator(tr).Holds(u, tr.Root())
		if ok != wantRoot {
			t.Fatalf("pair %d: Validate(%q) = %v, reference %v", i, src, ok, wantRoot)
		}
	}
	s := e.CacheStats()
	if s.Hits+s.Misses < diffPairs {
		t.Errorf("cache counters lost calls: %+v", s)
	}
	t.Logf("JNL: %d pairs, cache %+v", diffPairs, s)
}

func TestDifferentialJSL(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	e := New(Options{PlanCacheSize: 64})
	trees := &diffTrees{r: r, perTree: 7}
	for i := 0; i < diffPairs; i++ {
		tr := trees.next()
		// Every fourth query is recursive; the rest are plain formulas
		// routed through the same ParseRecursive front door the engine
		// uses.
		var src string
		if i%4 == 0 {
			src = gen.RandomRecursiveJSLSource(r, 2)
		} else {
			src = gen.RandomJSLSource(r, 3)
		}
		rec, err := jsl.ParseRecursive(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not parse: %v", src, err)
		}
		want, err := jsl.NewEvaluator(tr).EvalRecursive(rec)
		if err != nil {
			t.Fatalf("reference eval of %q: %v", src, err)
		}

		p, err := e.Compile(LangJSL, src)
		if err != nil {
			t.Fatalf("engine rejects %q: %v", src, err)
		}
		got, err := e.Eval(p, tr)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		var wantNodes []jsontree.NodeID
		for n, ok := range want {
			if ok {
				wantNodes = append(wantNodes, jsontree.NodeID(n))
			}
		}
		if !sameNodes(got, wantNodes) {
			t.Fatalf("pair %d: engine disagrees with reference on %q\ntree: %s\nengine:    %v\nreference: %v",
				i, src, tr, got, wantNodes)
		}
		ok, err := e.Validate(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want[tr.Root()] {
			t.Fatalf("pair %d: Validate(%q) = %v, reference %v", i, src, ok, want[tr.Root()])
		}
	}
	t.Logf("JSL: %d pairs, cache %+v", diffPairs, e.CacheStats())
}

func TestDifferentialJSONPath(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	e := New(Options{PlanCacheSize: 64})
	trees := &diffTrees{r: r, perTree: 7}
	for i := 0; i < diffPairs; i++ {
		tr := trees.next()
		src := gen.RandomJSONPathSource(r)
		jp, err := jsonpath.Compile(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not compile: %v", src, err)
		}
		want := jp.SelectNodes(tr)

		p, err := e.Compile(LangJSONPath, src)
		if err != nil {
			t.Fatalf("engine rejects %q: %v", src, err)
		}
		got, err := e.Eval(p, tr)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if !sameNodes(got, want) {
			t.Fatalf("pair %d: engine disagrees with reference on %q\ntree: %s\nengine:    %v\nreference: %v",
				i, src, tr, got, want)
		}
	}
	t.Logf("JSONPath: %d pairs, cache %+v", diffPairs, e.CacheStats())
}

func TestDifferentialMongo(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	e := New(Options{PlanCacheSize: 64})
	for i := 0; i < diffPairs; i++ {
		// Mongo filters match whole documents; draw a fresh document
		// every few pairs and keep both representations.
		doc := gen.Document(r, diffDocOptions())
		tr := jsontree.FromValue(doc)
		src := gen.RandomMongoSource(r, 2)
		f, err := mongoq.Parse(src)
		if err != nil {
			t.Fatalf("generator bug: %q does not parse: %v", src, err)
		}
		want := f.Matches(doc)

		p, err := e.Compile(LangMongoFind, src)
		if err != nil {
			t.Fatalf("engine rejects %q: %v", src, err)
		}
		got, err := e.Validate(p, tr)
		if err != nil {
			t.Fatalf("Validate(%q): %v", src, err)
		}
		if got != want {
			t.Fatalf("pair %d: engine says %v, mongoq reference says %v for %q on %s", i, got, want, src, doc)
		}
		// Node-selection semantics: the root's membership must agree.
		nodes, err := e.Eval(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		rootIn := false
		for _, n := range nodes {
			if n == tr.Root() {
				rootIn = true
			}
		}
		if rootIn != want {
			t.Fatalf("pair %d: root selection %v disagrees with Matches %v for %q", i, rootIn, want, src)
		}
	}
	t.Logf("Mongo: %d pairs, cache %+v", diffPairs, e.CacheStats())
}

// TestDifferentialBatchAndNDJSON closes the loop on the batch paths:
// EvalBatch and ValidateReader must agree with the reference evaluator
// per document.
func TestDifferentialBatchAndNDJSON(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	e := New(Options{Workers: 4})
	src := `(eq(/k1, /k2) || [/~"k.*" /[0:2]])`
	p, err := e.Compile(LangJNL, src)
	if err != nil {
		t.Fatal(err)
	}
	u := jnl.MustParse(src)

	trees := make([]*jsontree.Tree, 64)
	var ndjson strings.Builder
	docs := make([]string, len(trees))
	for i := range trees {
		doc := gen.Document(r, diffDocOptions())
		trees[i] = jsontree.FromValue(doc)
		docs[i] = doc.String()
		ndjson.WriteString(docs[i] + "\n")
	}
	batch, err := e.EvalBatch(p, trees)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trees {
		want := jnl.NewEvaluator(tr).Eval(u).Slice()
		if !sameNodes(batch[i], want) {
			t.Fatalf("batch doc %d disagrees with reference", i)
		}
	}
	results, err := e.EvalReader(p, strings.NewReader(ndjson.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(trees) {
		t.Fatalf("NDJSON returned %d results, want %d", len(results), len(trees))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("NDJSON doc %d: %v", i, res.Err)
		}
		// The NDJSON path builds its tree through jsontree.Builder; node
		// ids can differ from FromValue only if construction disagrees,
		// which the selection comparison below would expose.
		want := jnl.NewEvaluator(res.Tree).Eval(u).Slice()
		if !sameNodes(res.Nodes, want) {
			t.Fatalf("NDJSON doc %d disagrees with reference", i)
		}
		if res.Tree.String() != jsontree.MustParse(docs[i]).String() {
			t.Fatalf("NDJSON doc %d: tree %s does not match document %s", i, res.Tree, docs[i])
		}
	}
}

// FuzzPlanCache fuzzes the plan-cache key path: for any (language,
// source) pair, compiling twice must yield the identical shared plan,
// that plan must behave exactly like an uncached compile, and distinct
// languages must never alias. The corpus seeds one valid source per
// front end plus near-collisions.
func FuzzPlanCache(f *testing.F) {
	f.Add(uint8(0), `[/name/first]`)
	f.Add(uint8(1), `object && some("name", string)`)
	f.Add(uint8(2), `$.hobbies[*]`)
	f.Add(uint8(3), `{"age": {"$gt": 30}}`)
	f.Add(uint8(0), `true`)
	f.Add(uint8(1), `true`)
	f.Add(uint8(0), `eq(/a, 1)`)
	f.Add(uint8(1), `eq(1)`)
	f.Add(uint8(2), `$..k1[?(@.k2 == 3)]`)
	f.Add(uint8(3), `{"$and":[{"a":1},{"b":{"$exists":0}}]}`)

	tree := jsontree.MustParse(`{"name": {"first": "sue"}, "age": 34, "hobbies": ["x", "y"], "a": 1, "k1": {"k2": 3}}`)
	e := New(Options{PlanCacheSize: 128})

	f.Fuzz(func(t *testing.T, langByte uint8, src string) {
		lang := Language(langByte % 4)
		p1, err := e.Compile(lang, src)
		if err != nil {
			// Invalid source: a second compile must fail identically,
			// and nothing may have been cached for the key.
			if _, err2 := e.Compile(lang, src); err2 == nil {
				t.Fatalf("compile of %q failed then succeeded", src)
			}
			return
		}
		p2, err := e.Compile(lang, src)
		if err != nil {
			t.Fatalf("cached recompile of %q failed: %v", src, err)
		}
		if p1 != p2 {
			t.Fatalf("cache returned distinct plans for identical key (%v, %q)", lang, src)
		}
		if p1.Language() != lang || p1.Source() != src {
			t.Fatalf("plan identity mangled: (%v, %q) became (%v, %q)", lang, src, p1.Language(), p1.Source())
		}
		fresh, err := Compile(lang, src)
		if err != nil {
			t.Fatalf("uncached compile of %q failed after cached succeeded: %v", src, err)
		}
		gotCached, err1 := e.Eval(p1, tree)
		gotFresh, err2 := e.Eval(fresh, tree)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("cached/fresh eval errors diverge: %v vs %v", err1, err2)
		}
		if err1 == nil && !sameNodes(gotCached, gotFresh) {
			t.Fatalf("cached plan evaluates differently from fresh compile for %q: %v vs %v", src, gotCached, gotFresh)
		}
	})
}

// TestReferenceOracles pins the oracle API itself: for random queries
// across all four front ends, Plan.EvalReference/ValidateReference
// (the retained front-end evaluators) must agree node-for-node with
// the QIR executor behind Engine.Eval/Validate. The per-language
// differential tests above construct their references by hand; this
// one exercises the methods the store harness and benchmarks use.
func TestReferenceOracles(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	e := New(Options{PlanCacheSize: 128})
	type frontEnd struct {
		lang Language
		gen  func() string
	}
	fronts := []frontEnd{
		{LangJNL, func() string { return gen.RandomJNLSource(r, 3) }},
		{LangJSL, func() string {
			if r.Intn(4) == 0 {
				return gen.RandomRecursiveJSLSource(r, 2)
			}
			return gen.RandomJSLSource(r, 3)
		}},
		{LangJSONPath, func() string { return gen.RandomJSONPathSource(r) }},
		{LangMongoFind, func() string { return gen.RandomMongoSource(r, 2) }},
	}
	trees := &diffTrees{r: r, perTree: 5}
	for i := 0; i < 1200; i++ {
		tr := trees.next()
		fe := fronts[i%len(fronts)]
		src := fe.gen()
		p, err := e.Compile(fe.lang, src)
		if err != nil {
			t.Fatalf("generator bug: (%v, %q): %v", fe.lang, src, err)
		}
		got, err := e.Eval(p, tr)
		if err != nil {
			t.Fatalf("eval (%v, %q): %v", fe.lang, src, err)
		}
		want, err := p.EvalReference(tr)
		if err != nil {
			t.Fatalf("reference eval (%v, %q): %v", fe.lang, src, err)
		}
		if !sameNodes(got, want) {
			t.Fatalf("pair %d: QIR disagrees with oracle on (%v, %q)\ntree: %s\nqir:    %v\noracle: %v",
				i, fe.lang, src, tr, got, want)
		}
		gotV, err := e.Validate(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		wantV, err := p.ValidateReference(tr)
		if err != nil {
			t.Fatal(err)
		}
		if gotV != wantV {
			t.Fatalf("pair %d: Validate %v, oracle %v on (%v, %q)", i, gotV, wantV, fe.lang, src)
		}
	}
}
