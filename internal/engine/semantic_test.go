package engine

import (
	"strings"
	"testing"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/schema"
)

// newSemanticEngine returns an engine with the semantic pass enabled at
// the daemon's default budget.
func newSemanticEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.SemanticBudget == 0 {
		opts.SemanticBudget = 50000
	}
	return New(opts)
}

// TestSemanticUnsatAllFrontEnds proves the unsat short-circuit in every
// front end: a provably unsatisfiable query compiles to the constant-
// empty program, carries the "unsat" verdict, and validates false.
func TestSemanticUnsatAllFrontEnds(t *testing.T) {
	cases := []struct {
		lang Language
		src  string
	}{
		{LangJNL, `([/k0] && !([/k0]))`},
		{LangJSL, `(string && number)`},
		{LangMongoFind, `{"$and":[{"k0":{"$gt":5}},{"k0":{"$lt":3}}]}`},
		{LangJSONPath, `$[?(@.k0 < 0)]`},
	}
	tree, err := jsontree.Parse(`{"k0": 5}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.lang.String(), func(t *testing.T) {
			e := newSemanticEngine(t, Options{})
			p, err := e.Compile(tc.lang, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Unsatisfiable() {
				t.Fatalf("Unsatisfiable() = false for %q", tc.src)
			}
			if v := p.SemanticVerdict(); v != VerdictUnsat {
				t.Fatalf("verdict = %q, want %q", v, VerdictUnsat)
			}
			ok, err := e.Validate(p, tree)
			if err != nil || ok {
				t.Fatalf("Validate = %v, %v; want false, nil", ok, err)
			}
			if ex := p.Explain(); !strings.Contains(ex.Physical, "const_empty") {
				t.Fatalf("physical plan not constant-empty:\n%s", ex.Physical)
			}
			if ex := p.Explain(); ex.Semantic == nil || ex.Semantic.Verdict != VerdictUnsat {
				t.Fatalf("explain semantic section missing or wrong: %+v", ex.Semantic)
			}
		})
	}
}

// TestSemanticSatVerdict pins that ordinary satisfiable queries keep
// their real program and get the "sat" verdict.
func TestSemanticSatVerdict(t *testing.T) {
	e := newSemanticEngine(t, Options{})
	p, err := e.Compile(LangJNL, `[/k0]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Unsatisfiable() {
		t.Fatal("satisfiable query marked unsat")
	}
	if v := p.SemanticVerdict(); v != VerdictSat {
		t.Fatalf("verdict = %q, want %q", v, VerdictSat)
	}
	tree, err := jsontree.Parse(`{"k0": 1}`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.Validate(p, tree)
	if err != nil || !ok {
		t.Fatalf("Validate = %v, %v; want true, nil", ok, err)
	}
}

// TestSemanticDisabledByDefault pins that Options' zero value leaves
// the pass off: no verdict, no analysis, full compatibility with
// engines built before the pass existed.
func TestSemanticDisabledByDefault(t *testing.T) {
	e := New(Options{})
	p, err := e.Compile(LangJSL, `(string && number)`)
	if err != nil {
		t.Fatal(err)
	}
	if p.SemanticVerdict() != "" {
		t.Fatalf("verdict = %q with the pass disabled, want \"\"", p.SemanticVerdict())
	}
	if p.Unsatisfiable() {
		t.Fatal("plan marked unsat with the pass disabled")
	}
	cs := e.CacheStats()
	if cs.SemanticChecks != 0 {
		t.Fatalf("SemanticChecks = %d with the pass disabled", cs.SemanticChecks)
	}
}

// TestSemanticAliasEquivalentPlans proves containment-based dedup: a
// query provably equivalent to a resident plan is served that resident
// plan under its own cache key, counted as an alias.
func TestSemanticAliasEquivalentPlans(t *testing.T) {
	e := newSemanticEngine(t, Options{})
	p1, err := e.Compile(LangJNL, `([/k0] && [/k1])`)
	if err != nil {
		t.Fatal(err)
	}
	// Same predicate, conjuncts flipped: equivalent but a distinct key.
	p2, err := e.Compile(LangJNL, `([/k1] && [/k0])`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("equivalent queries got distinct plans; dedup did not alias")
	}
	cs := e.CacheStats()
	if cs.SemanticAliases != 1 {
		t.Fatalf("SemanticAliases = %d, want 1", cs.SemanticAliases)
	}
	// The alias must answer under both keys from the cache now.
	p3, err := e.Compile(LangJNL, `([/k1] && [/k0])`)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("alias not served from the cache on re-compile")
	}
}

// TestSemanticAliasExcludesJSONPath pins the soundness carve-out:
// JSONPath plans select path-reached nodes, a property boolean
// equivalence does not preserve, so they never alias.
func TestSemanticAliasExcludesJSONPath(t *testing.T) {
	e := newSemanticEngine(t, Options{})
	p1, err := e.Compile(LangJSONPath, `$.k0`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Compile(LangJNL, `[/k0]`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("JSONPath plan aliased to a JNL plan")
	}
	if cs := e.CacheStats(); cs.SemanticAliases != 0 {
		t.Fatalf("SemanticAliases = %d, want 0", cs.SemanticAliases)
	}
}

// TestSemanticBorrowFacts proves fact borrowing under strict
// containment: P ⊑ Q strictly lets P inherit Q's find facts, visible in
// the explanation with provenance.
func TestSemanticBorrowFacts(t *testing.T) {
	e := newSemanticEngine(t, Options{})
	// Q: documents with /k0; P: documents with /k0 and /k1 — P ⊑ Q
	// strictly. Compile Q first so it is resident when P misses.
	if _, err := e.Compile(LangJNL, `([/k0/a] && [/k0/b])`); err != nil {
		t.Fatal(err)
	}
	p, err := e.Compile(LangJNL, `(([/k0/a] && [/k0/b]) && [/k1])`)
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Explain()
	if ex.Semantic == nil {
		t.Fatal("no semantic section in explanation")
	}
	// P's own facts already include /k0/a, /k0/b and /k1, so borrowing
	// may add nothing new here; the property to pin is just soundness:
	// borrowed facts, if any, must come from the resident source.
	if len(ex.Semantic.BorrowedFacts) > 0 && ex.Semantic.BorrowedFrom == "" {
		t.Fatal("borrowed facts without provenance")
	}
	if got := e.CacheStats().SemanticBorrowed; got != uint64(len(ex.Semantic.BorrowedFacts)) {
		t.Fatalf("SemanticBorrowed = %d, explanation lists %d", got, len(ex.Semantic.BorrowedFacts))
	}
}

// mustSchema compiles a schema literal for the tests below.
func mustSchema(t *testing.T, src string) *SchemaInfo {
	t.Helper()
	s, err := schema.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := CompileSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestSemanticSchemaUnsat proves the schema-conjunction test: a query
// no conforming document can match is flagged schema-unsatisfiable
// (but not absolutely unsatisfiable — a lawless store must still
// evaluate it).
func TestSemanticSchemaUnsat(t *testing.T) {
	info := mustSchema(t, `{"type": "object", "required": ["k0"]}`)
	e := newSemanticEngine(t, Options{Schema: info})
	p, err := e.Compile(LangJSL, `string`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SchemaUnsatisfiable() {
		t.Fatal("SchemaUnsatisfiable() = false for a root-string query under an object-only schema")
	}
	if p.Unsatisfiable() {
		t.Fatal("schema-unsat query wrongly marked absolutely unsat")
	}
	if v := p.SemanticVerdict(); v != VerdictSchemaUnsat {
		t.Fatalf("verdict = %q, want %q", v, VerdictSchemaUnsat)
	}
	// The program must still be the real one: a store without the
	// schema evaluates it normally.
	tree, err := jsontree.Parse(`"hello"`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.Validate(p, tree)
	if err != nil || !ok {
		t.Fatalf("Validate on a nonconforming doc = %v, %v; want true, nil", ok, err)
	}
}

// TestSemanticSchemaPrune proves term pruning: a fact the schema
// guarantees for every conforming document is marked universal.
func TestSemanticSchemaPrune(t *testing.T) {
	info := mustSchema(t, `{"type": "object", "required": ["k0"]}`)
	e := newSemanticEngine(t, Options{Schema: info})
	// Both facts are find facts; the schema proves /k0 universal but
	// says nothing about /k1.
	p, err := e.Compile(LangJNL, `([/k0] && [/k1])`)
	if err != nil {
		t.Fatal(err)
	}
	pruned := p.SchemaPruned()
	var prunedK0 bool
	for fact := range pruned {
		if strings.Contains(fact, "k1") {
			t.Fatalf("pruned %q: the schema says nothing about k1", fact)
		}
		if strings.Contains(fact, "k0") {
			prunedK0 = true
		}
	}
	// The root "is an object" fact may be pruned too (the schema proves
	// it); /k0 must be, /k1 must not be.
	if !prunedK0 {
		t.Fatalf("SchemaPruned = %v, missing the /k0 fact", pruned)
	}
	if got := e.CacheStats().SchemaPrunedFacts; got != uint64(len(pruned)) {
		t.Fatalf("SchemaPrunedFacts = %d, plan lists %d", got, len(pruned))
	}
}

// TestSemanticBudgetExhaustion pins the failure mode: a budget too
// small to decide downgrades the verdict to "unknown" and leaves the
// plan fully functional — never an error, never a guess.
func TestSemanticBudgetExhaustion(t *testing.T) {
	e := newSemanticEngine(t, Options{SemanticBudget: 1})
	p, err := e.Compile(LangJSL, `(string && number)`)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.SemanticVerdict(); v != VerdictUnknown {
		t.Fatalf("verdict = %q under a 1-step budget, want %q", v, VerdictUnknown)
	}
	if p.Unsatisfiable() {
		t.Fatal("undecided plan marked unsat")
	}
	if got := e.CacheStats().SemanticUnknown; got != 1 {
		t.Fatalf("SemanticUnknown = %d, want 1", got)
	}
	tree, err := jsontree.Parse(`{"k0": 1}`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := e.Validate(p, tree); err != nil || ok {
		t.Fatalf("Validate = %v, %v; want false, nil", ok, err)
	}
}

// TestCompileSemanticCacheHitZeroAllocs pins the tentpole's hard
// constraint: the semantic pass runs on cache misses only, so the
// untraced cache-hit compile+validate path stays allocation-free even
// with the pass enabled.
func TestCompileSemanticCacheHitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	e := newSemanticEngine(t, Options{})
	src := `{"k": {"$gt": 1}}`
	if _, err := e.Compile(LangMongoFind, src); err != nil {
		t.Fatal(err)
	}
	tree, err := jsontree.Parse(`{"k": 5}`)
	if err != nil {
		t.Fatal(err)
	}
	n := measureAllocs(func() {
		p, err := e.CompileTraced(LangMongoFind, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := e.Validate(p, tree)
		if err != nil || !ok {
			t.Fatalf("validate: %v %v", ok, err)
		}
	})
	if n != 0 {
		t.Fatalf("semantic-enabled cache-hit compile+validate allocates: %v allocs/op, want 0", n)
	}
}
