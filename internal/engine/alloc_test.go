package engine

import (
	"runtime/debug"
	"testing"

	"jsonlogic/internal/jsontree"
)

// measureAllocs reports steady-state allocations per call with GC
// pinned off, after one warm-up call (same harness as internal/qir's
// alloc tests).
func measureAllocs(f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f()
	return testing.AllocsPerRun(200, f)
}

// TestCompileTracedUntracedZeroAllocs pins the tracing tentpole's hard
// constraint at the engine layer: with no trace armed (nil recorder),
// a plan-cache-hit CompileTraced followed by Validate — the per-query
// read path of an untraced request — allocates nothing.
func TestCompileTracedUntracedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	e := New(Options{})
	src := `{"k": {"$gt": 1}}`
	if _, err := e.Compile(LangMongoFind, src); err != nil {
		t.Fatal(err)
	}
	tree, err := jsontree.Parse(`{"k": 5}`)
	if err != nil {
		t.Fatal(err)
	}
	n := measureAllocs(func() {
		p, err := e.CompileTraced(LangMongoFind, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := e.Validate(p, tree)
		if err != nil || !ok {
			t.Fatalf("validate: %v %v", ok, err)
		}
	})
	if n != 0 {
		t.Fatalf("untraced cache-hit compile+validate allocates: %v allocs/op, want 0", n)
	}
}
