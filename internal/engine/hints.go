package engine

import (
	"jsonlogic/internal/jsontree"
)

// The index-planner step. At compile time every plan derives two sets
// of path facts (jsontree.PathFact) from its lowered QIR query:
//
//   - find facts: necessary for Validate (document-level matching) to
//     return true;
//   - select facts: necessary for Eval (node selection) to return a
//     non-empty set.
//
// The store's cost-based planner turns the facts into index terms,
// consults its statistics, and chooses a probe order — or a full scan
// when the intersection would not be selective. A document missing a
// fact provably cannot match, so pruning by facts never changes
// results. Derivation lives in qir.Query.FindFacts/SelectFacts: one
// code path for all four front ends, replacing the per-language
// extractors (jnl.RequiredFacts, jsl.RequiredFacts,
// jsonpath.Path.RequiredPrefix, mongoq.Filter.RequiredFacts), which
// remain only as test oracles for the prefix logic.
//
// Extraction is conservative: queries under negation, disjunction,
// recursion or non-deterministic axes simply yield no facts and scan —
// the fallback the differential store tests exercise alongside the
// indexed path. Node selection is root-anchored only for JSONPath
// (selection starts at the root); JNL/JSL/mongo selection may pick any
// node, so those plans carry no select facts.

// computeFacts derives find and select facts from the lowered query;
// called once from Plan.finish so Plans stay immutable afterwards.
func (p *Plan) computeFacts() {
	p.findFacts = p.query.FindFacts()
	p.selectFacts = p.query.SelectFacts()
}

// FindFacts returns path facts necessary for Validate to hold on a
// document. An empty result means the plan is not index-supported for
// document matching and the store must scan. The slice is shared and
// must not be modified.
func (p *Plan) FindFacts() []jsontree.PathFact { return p.findFacts }

// SelectFacts returns path facts necessary for Eval to select at least
// one node. An empty result means the plan is not index-supported for
// node selection and the store must scan. The slice is shared and must
// not be modified.
func (p *Plan) SelectFacts() []jsontree.PathFact { return p.selectFacts }
