package engine

import (
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
)

// The index-aware planner step. At compile time every plan derives two
// sets of path facts (jsontree.PathFact) from its AST:
//
//   - find facts: necessary for Validate (document-level matching) to
//     return true;
//   - select facts: necessary for Eval (node selection) to return a
//     non-empty set.
//
// The store intersects the posting lists of these facts in its inverted
// path index to obtain a candidate set, then runs the ordinary
// reference evaluation over the candidates only — a document missing a
// fact provably cannot match, so skipping it never changes results.
// Extraction is conservative per front end:
//
//   - JNL: facts of root satisfaction (jnl.RequiredFacts). Node
//     selection is unanchored — any node may satisfy the formula — so
//     no select facts are derivable.
//   - JSONPath: selection starts at the root, so both semantics share
//     the path's required prefix (jnl.RequiredPrefix over the compiled
//     binary).
//   - JSL and mongo find: facts of root satisfaction for non-recursive
//     expressions (jsl.RequiredFacts); recursive expressions fall back
//     to scanning. Like JNL, node selection is unanchored.
//
// Queries under negation, disjunction, recursion or non-deterministic
// axes simply yield no facts and scan — the fallback the differential
// store tests exercise alongside the indexed path.

// computeFacts derives find and select facts for the languages whose
// plans are built from bare logic ASTs; called once from Compile and
// FromJSL so Plans stay immutable afterwards. The JSONPath and mongo
// cases are handled in Compile itself through the front ends' own
// extraction helpers (jsonpath.Path.RequiredPrefix,
// mongoq.Filter.RequiredFacts) while the front-end objects are still
// in hand; computeFacts leaves their facts untouched.
func (p *Plan) computeFacts() {
	switch p.lang {
	case LangJNL:
		p.findFacts = jnl.RequiredFacts(p.unary)
	case LangJSL:
		if len(p.rec.Defs) == 0 {
			p.findFacts = jsl.RequiredFacts(p.rec.Base)
		}
	}
}

// FindFacts returns path facts necessary for Validate to hold on a
// document. An empty result means the plan is not index-supported for
// document matching and the store must scan. The slice is shared and
// must not be modified.
func (p *Plan) FindFacts() []jsontree.PathFact { return p.findFacts }

// SelectFacts returns path facts necessary for Eval to select at least
// one node. An empty result means the plan is not index-supported for
// node selection and the store must scan. The slice is shared and must
// not be modified.
func (p *Plan) SelectFacts() []jsontree.PathFact { return p.selectFacts }
