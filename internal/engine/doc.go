// Package engine is the production-oriented evaluation layer over the
// formal core: it compiles query sources once into immutable, shareable
// plans, caches them, and evaluates one plan over many documents
// concurrently.
//
// # Architecture
//
// Three layers separate what is immutable from what is per-evaluation:
//
//   - Plan: a compiled query — language tag, source text, the parsed
//     front-end AST, and the query lowered into the unified algebra of
//     internal/qir with its compiled physical operator program. All
//     four languages evaluate through that one program; the front-end
//     ASTs are retained as differential-test oracles
//     (Plan.EvalReference, Plan.ValidateReference). Plans are deeply
//     immutable after Compile: nothing is mutated by evaluation and the
//     embedded relang.Regex values are safe for concurrent use, so one
//     Plan may be shared by any number of goroutines.
//
//   - Plan cache: a bounded LRU keyed by (language, source text) with
//     hit/miss/eviction statistics, so front ends that receive the same
//     query repeatedly (the "heavy traffic" scenario of the roadmap) pay
//     parse + translate + normalize once, not per request.
//
//   - Evaluation: Engine.Eval and Engine.Validate run the plan's QIR
//     program, which instantiates its per-(plan, tree) mutable state —
//     closure and definition memo tables, regex and uniqueness memos —
//     fresh on every call. That state never outlives a call and is
//     never shared, which makes the public API goroutine-safe without
//     locks on the hot path.
//
// This mirrors the split the paper itself makes: the formula (compiled
// once; Propositions 1 and 3 measure evaluation per formula size |φ|)
// versus the per-document structures (node sets, equality classes, edge
// marks) that evaluation builds in O(|J|·|φ|).
//
// # Batch and streaming entry points
//
// EvalBatch and ValidateBatch fan a single plan out over a slice of
// trees with a bounded worker pool, preserving input order. The NDJSON
// path (EvalReader, ValidateReader) accepts an io.Reader holding one
// JSON document per line; lines are tokenized with internal/stream's
// tokenizer and materialized through jsontree.Builder — one pooled
// Builder per worker, reset between documents — then evaluated in
// parallel. A malformed line fails that line only, not the batch.
//
// # Relation to the reference semantics
//
// The engine adds no semantics of its own: results are defined to be
// node-for-node identical to a fresh jnl.Evaluator / jsl.Evaluator run
// on the same tree, reachable per plan through EvalReference and
// ValidateReference. diff_test.go enforces that contract over
// thousands of randomized (tree, query) pairs per front end, and
// race_test.go pins the plan-sharing design under the race detector.
// Plan.Explain renders the lowered logical tree and the physical
// operator program; the store's Explain adds the run-time access plan.
package engine
