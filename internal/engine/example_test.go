package engine_test

// Runnable godoc examples for the engine layer: compile once, share
// the plan, evaluate anywhere. `go test ./internal/engine/` executes
// these, so the documentation cannot rot.

import (
	"fmt"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/jsontree"
)

// Compile a JSONPath expression into a shared plan and select nodes
// from a document. The same Engine (and the same *Plan) may be used
// from any number of goroutines.
func ExampleEngine_Eval() {
	eng := engine.New(engine.Options{})
	plan, err := eng.Compile(engine.LangJSONPath, `$.store.book[0].title`)
	if err != nil {
		panic(err)
	}
	doc := jsontree.MustParse(`{"store":{"book":[{"title":"Sculpting in Time","pages":256}]}}`)
	nodes, err := eng.Eval(plan, doc)
	if err != nil {
		panic(err)
	}
	for _, n := range nodes {
		fmt.Println(doc.Value(n))
	}
	// Output: "Sculpting in Time"
}

// Validate documents against a JSL formula (the paper's schema
// logic). Validate runs the plan's boolean semantics: does the
// document satisfy the formula at the root?
func ExampleEngine_Validate() {
	eng := engine.New(engine.Options{})
	plan, err := eng.Compile(engine.LangJSL, `object && some("age", number && min(18))`)
	if err != nil {
		panic(err)
	}
	for _, doc := range []string{`{"age":42}`, `{"age":7}`, `{"name":"ann"}`} {
		ok, err := eng.Validate(plan, jsontree.MustParse(doc))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s -> %v\n", doc, ok)
	}
	// Output:
	// {"age":42} -> true
	// {"age":7} -> false
	// {"name":"ann"} -> false
}

// Repeated compiles of the same source hit the bounded LRU plan
// cache: the parse/translate/normalize cost is paid once per cache
// residency, not per request.
func ExampleEngine_Compile() {
	eng := engine.New(engine.Options{PlanCacheSize: 8})
	for i := 0; i < 3; i++ {
		if _, err := eng.Compile(engine.LangMongoFind, `{"age":{"$gte":21}}`); err != nil {
			panic(err)
		}
	}
	cs := eng.CacheStats()
	fmt.Printf("hits=%d misses=%d entries=%d\n", cs.Hits, cs.Misses, cs.Entries)
	// Output: hits=2 misses=1 entries=1
}
