package engine

import (
	"math/rand"
	"testing"

	"jsonlogic/internal/gen"
	"jsonlogic/internal/jsontree"
)

// factStrings renders facts for comparison.
func factStrings(facts []jsontree.PathFact) []string {
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.String()
	}
	return out
}

func TestIndexFactExtraction(t *testing.T) {
	cases := []struct {
		lang Language
		src  string
		find []string // expected FindFacts, rendered; nil = scan
	}{
		// The QIR derivation anchors navigation: a keyed (positional)
		// first step forces the source to be an object (array), and a
		// class or value fact at a path subsumes its presence fact.
		{LangMongoFind, `{"user.name":"sue"}`, []string{"$ kind=object", "/user kind=object", "/user/name value=\"sue\""}},
		{LangMongoFind, `{"a.b":{"$gt":3}}`, []string{"$ kind=object", "/a kind=object", "/a/b kind=number"}},
		{LangMongoFind, `{"a":{"$type":"array"}}`, []string{"$ kind=object", "/a kind=array"}},
		{LangMongoFind, `{"a":{"$ne":1}}`, nil},
		{LangMongoFind, `{"a":{"$exists":0}}`, nil},
		{LangMongoFind, `{"$or":[{"a":1},{"b":2}]}`, nil},
		{LangMongoFind, `{"tags.0":"x"}`, []string{"$ kind=object", "/tags kind=array", "/tags/0 value=\"x\""}},
		{LangMongoFind, `{"a":{"x":1}}`, []string{"$ kind=object", "/a kind=object", "/a/x value=1"}},
		{LangJSONPath, `$.store.book[0].title`, []string{
			"$ kind=object", "/store kind=object", "/store/book kind=array",
			"/store/book/0 kind=object", "/store/book/0/title"}},
		{LangJSONPath, `$.store..price`, []string{"$ kind=object", "/store"}},
		{LangJSONPath, `$[2].a`, []string{"$ kind=array", "/2 kind=object", "/2/a"}},
		{LangJSONPath, `$.*`, nil},
		{LangJNL, `[/a/b]`, []string{"$ kind=object", "/a kind=object", "/a/b"}},
		{LangJNL, `eq(/a, 7)`, []string{"$ kind=object", "/a value=7"}},
		{LangJNL, `eq(/a, {"k":1})`, []string{"$ kind=object", "/a kind=object", "/a/k value=1"}},
		{LangJNL, `(eq(/a, 1) && [/b])`, []string{"$ kind=object", "/a value=1", "/b"}},
		{LangJNL, `!eq(/a, 1)`, nil},
		{LangJNL, `eq(/a, /b)`, []string{"$ kind=object", "/a", "/b"}},
		{LangJNL, `[/a /[1:3]]`, []string{"$ kind=object", "/a kind=array", "/a/1"}},
		{LangJNL, `[(/a)*]`, nil},
		{LangJSL, `some("a", number)`, []string{"$ kind=object", "/a kind=number"}},
		{LangJSL, `all("a", number)`, nil},
		{LangJSL, `def g = number || some("a", g) ; g`, nil},
	}
	for _, c := range cases {
		p, err := Compile(c.lang, c.src)
		if err != nil {
			t.Fatalf("compile (%v, %q): %v", c.lang, c.src, err)
		}
		got := factStrings(p.FindFacts())
		if len(got) != len(c.find) {
			t.Errorf("(%v, %q): FindFacts = %v, want %v", c.lang, c.src, got, c.find)
			continue
		}
		for i := range got {
			if got[i] != c.find[i] {
				t.Errorf("(%v, %q): FindFacts[%d] = %q, want %q", c.lang, c.src, i, got[i], c.find[i])
			}
		}
	}
}

// TestSelectFactsAnchoring pins the semantics split: JSONPath selection
// is root-anchored so its facts serve both modes; JNL/JSL/mongo node
// selection is unanchored and must not claim select support.
func TestSelectFactsAnchoring(t *testing.T) {
	got := factStrings(MustCompile(LangJSONPath, `$.a.b[*]`).SelectFacts())
	want := []string{"$ kind=object", "/a kind=object", "/a/b"}
	if len(got) != len(want) {
		t.Errorf("JSONPath select facts = %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("JSONPath select facts[%d] = %q, want %q", i, got[i], want[i])
			}
		}
	}
	for _, p := range []*Plan{
		MustCompile(LangJNL, `[/a]`),
		MustCompile(LangJSL, `some("a", true)`),
		MustCompile(LangMongoFind, `{"a":1}`),
	} {
		if facts := p.SelectFacts(); len(facts) != 0 {
			t.Errorf("(%v, %q): unanchored selection claims select facts %v",
				p.Language(), p.Source(), factStrings(facts))
		}
	}
}

// TestIndexFactSoundness is the property the whole index rests on:
// whenever a document matches a plan, every extracted find fact holds
// on it, and whenever Eval selects any node, every select fact holds.
// Violations would make the index drop true results.
func TestIndexFactSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	e := New(Options{PlanCacheSize: 128})
	docOpts := gen.DocOptions{Fanout: 3, Depth: 3, Keys: 12, ArrayBias: 40, ValueRange: 20}
	type frontEnd struct {
		lang Language
		gen  func() string
	}
	fronts := []frontEnd{
		{LangJNL, func() string { return gen.RandomJNLSource(r, 3) }},
		{LangJSL, func() string { return gen.RandomJSLSource(r, 3) }},
		{LangJSONPath, func() string { return gen.RandomJSONPathSource(r) }},
		{LangMongoFind, func() string { return gen.RandomMongoSource(r, 2) }},
	}
	checked := 0
	for i := 0; i < 4000; i++ {
		tr := jsontree.FromValue(gen.Document(r, docOpts))
		fe := fronts[i%len(fronts)]
		src := fe.gen()
		p, err := e.Compile(fe.lang, src)
		if err != nil {
			t.Fatalf("generator bug: (%v, %q): %v", fe.lang, src, err)
		}
		ok, err := e.Validate(p, tr)
		if err != nil {
			t.Fatalf("validate (%v, %q): %v", fe.lang, src, err)
		}
		if ok {
			for _, f := range p.FindFacts() {
				checked++
				if !f.Holds(tr) {
					t.Fatalf("unsound find fact %s for (%v, %q)\nmatching tree: %s", f, fe.lang, src, tr)
				}
			}
		}
		nodes, err := e.Eval(p, tr)
		if err != nil {
			t.Fatalf("eval (%v, %q): %v", fe.lang, src, err)
		}
		if len(nodes) > 0 {
			for _, f := range p.SelectFacts() {
				checked++
				if !f.Holds(tr) {
					t.Fatalf("unsound select fact %s for (%v, %q)\ntree: %s", f, fe.lang, src, tr)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("property test never checked a fact; generators drifted")
	}
	t.Logf("checked %d fact obligations", checked)
}
