package engine

import (
	"bufio"
	"io"
	"sort"
	"strings"
	"sync"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/stream"
)

// DocResult is the outcome for one document of an NDJSON batch.
type DocResult struct {
	// Index is the document's 0-based position among the non-blank
	// lines of the input; results are returned sorted by Index.
	Index int
	// Line is the 1-based line number the document came from.
	Line int
	// Tree is the materialized document. It is set by EvalReader (whose
	// callers need it to resolve the selected nodes) and nil on
	// ValidateReader results — retaining every tree of a large stream
	// just to report booleans would hold the whole input in memory —
	// and whenever Err is set.
	Tree *jsontree.Tree
	// Nodes holds the selected nodes (EvalReader only).
	Nodes []jsontree.NodeID
	// Valid holds the verdict (ValidateReader only).
	Valid bool
	// Err reports a parse or evaluation failure for this document.
	// A bad line fails alone; the rest of the batch proceeds.
	Err error
}

// MaxNDJSONLine bounds one line of NDJSON input (16 MiB), shared by
// the engine's readers and the store's bulk ingest so the two NDJSON
// surfaces accept exactly the same documents.
const MaxNDJSONLine = 16 << 20

// EvalReader runs the plan's node-selection semantics over every
// document of an NDJSON stream (one JSON document per line; blank
// lines are skipped). Lines are tokenized with the §6 streaming
// tokenizer and materialized through a per-worker jsontree.Builder, so
// the jsonval layer is bypassed entirely. The returned error reports a
// failure of the reader itself — an I/O error or a line exceeding 16
// MiB, after which the stream cannot be resynchronized — not of
// individual documents; the results computed before the failure are
// returned alongside it.
func (e *Engine) EvalReader(p *Plan, r io.Reader) ([]DocResult, error) {
	return e.runNDJSON(p, r, false)
}

// ValidateReader runs the plan's boolean semantics over every document
// of an NDJSON stream. See EvalReader for the input contract.
func (e *Engine) ValidateReader(p *Plan, r io.Reader) ([]DocResult, error) {
	return e.runNDJSON(p, r, true)
}

type ndjsonItem struct {
	index int
	line  int
	text  string
}

func (e *Engine) runNDJSON(p *Plan, r io.Reader, validate bool) ([]DocResult, error) {
	items := make(chan ndjsonItem, e.opts.Workers*2)
	scanErr := make(chan error, 1)
	go func() {
		defer close(items)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), MaxNDJSONLine)
		index, lineNo := 0, 0
		for sc.Scan() {
			lineNo++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			items <- ndjsonItem{index: index, line: lineNo, text: text}
			index++
		}
		scanErr <- sc.Err()
	}()

	var (
		mu      sync.Mutex
		results []DocResult
		wg      sync.WaitGroup
	)
	workers := e.opts.Workers
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			b := jsontree.NewBuilder()
			for it := range items {
				res := DocResult{Index: it.index, Line: it.line}
				tree, err := BuildTree(strings.NewReader(it.text), b)
				switch {
				case err != nil:
					res.Err = err
				case validate:
					res.Valid, res.Err = p.validate(tree)
				default:
					res.Tree = tree
					res.Nodes, res.Err = p.eval(tree)
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	return results, <-scanErr
}

// BuildTree tokenizes one JSON document from r (via the §6 streaming
// tokenizer) and replays the token stream into the reused builder,
// materializing a tree without going through the jsonval layer. It is
// the shared line-to-tree path of the engine's NDJSON readers and the
// store's bulk ingest.
func BuildTree(r io.Reader, b *jsontree.Builder) (*jsontree.Tree, error) {
	b.Reset()
	tok := stream.NewTokenizer(r)
	for {
		t, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case stream.BeginObject:
			err = b.BeginObject()
		case stream.EndObject:
			err = b.EndObject()
		case stream.BeginArray:
			err = b.BeginArray()
		case stream.EndArray:
			err = b.EndArray()
		case stream.KeyTok:
			err = b.Key(t.Str)
		case stream.StringTok:
			err = b.String(t.Str)
		case stream.NumberTok:
			err = b.Number(t.Num)
		}
		if err != nil {
			return nil, err
		}
	}
	return b.Tree()
}
