package engine

import "sync"

// planKey identifies a cached plan: the pair the issue of repeated
// parsing is keyed on. Two queries with the same source text in
// different languages are distinct plans.
type planKey struct {
	lang Language
	src  string
}

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
type CacheStats struct {
	// Hits counts Compile calls served from the cache.
	Hits uint64
	// Misses counts Compile calls that had to compile.
	Misses uint64
	// Evictions counts plans dropped to respect the capacity bound.
	Evictions uint64
	// Entries is the number of plans currently cached.
	Entries int
	// Capacity is the configured bound.
	Capacity int

	// Semantic-pass counters (all zero when Options.SemanticBudget is
	// 0; see semantic.go). SemanticChecks counts analyzed cache misses;
	// SemanticUnsat the plans proved unsatisfiable; SemanticUnknown the
	// verdicts lost to the budget or undecidable constructs;
	// SemanticAliases the cache keys answered by an equivalent resident
	// plan; SemanticBorrowed the index facts inherited through strict
	// containment; SchemaPrunedFacts the find facts the schema proved
	// universal.
	SemanticChecks    uint64
	SemanticUnsat     uint64
	SemanticUnknown   uint64
	SemanticAliases   uint64
	SemanticBorrowed  uint64
	SchemaPrunedFacts uint64
}

// planCache is a bounded LRU of compiled plans, safe for concurrent
// use. Recency is tracked with an intrusive doubly-linked list so both
// lookup and insert are O(1); compilation itself runs outside the lock,
// so a slow parse never blocks unrelated lookups.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[planKey]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key        planKey
	plan       *Plan
	prev, next *cacheEntry
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, entries: make(map[planKey]*cacheEntry, capacity)}
}

// get returns the cached plan for key, marking it most recently used.
func (c *planCache) get(key planKey) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.plan, true
}

// add inserts a freshly compiled plan. If another goroutine raced the
// compile and inserted first, the incumbent wins (so all callers share
// one plan) and is returned.
func (c *planCache) add(key planKey, p *Plan) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		return e.plan
	}
	e := &cacheEntry{key: key, plan: p}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
	return p
}

// recent snapshots up to k distinct resident plans in recency order,
// for the semantic dedup scan. Alias entries share a plan with their
// canonical key; the snapshot reports each plan once. Containment
// checks happen outside the lock — plans are immutable once published.
func (c *planCache) recent(k int) []*Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Plan, 0, k)
	for e := c.head; e != nil && len(out) < k; e = e.next {
		dup := false
		for _, p := range out {
			if p == e.plan {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e.plan)
		}
	}
	return out
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Capacity:  c.cap,
	}
}

func (c *planCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *planCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *planCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
