package engine

import (
	"sort"
	"sync/atomic"

	"jsonlogic/internal/containment"
	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/qir"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/trace"
)

// The semantic optimizer pass: the paper's static-analysis decision
// procedures (satisfiability, Propositions 2/5/7/10; containment via
// unsat of φ ∧ ¬ψ) wired between lowering and physical planning.
// The pass runs once per plan-cache miss — never on a hit, so the
// 0-alloc cache-hit invariant is untouched — and every solver call is
// bounded by Options.SemanticBudget: an exhausted budget downgrades
// the verdict to "unknown", it never blocks or guesses.
//
// Three optimizations hang off it:
//
//   - unsat short-circuit: a provably unsatisfiable query compiles to
//     the constant-empty program (qir.Empty); the store answers it
//     without probing a posting list or evaluating a shard.
//   - containment-based plan-cache dedup: a bounded scan of resident
//     plans checks equivalence both ways (containment.RecursiveCaps);
//     an equivalent resident plan is reused under the new key, and
//     strict containment P ⊑ Q lets P borrow Q's index facts (they are
//     necessary conditions for P too, so the store can answer P by
//     filtering Q's candidate set instead of re-probing from scratch).
//   - schema-aware analysis: with Options.Schema set, a query whose
//     conjunction with the schema is unsatisfiable is marked empty for
//     schema-enforcing stores, and find facts the schema proves
//     universal are marked prunable — their posting lists cannot
//     narrow a conforming collection.
//
// Soundness of cross-plan reuse: JNL, JSL and mongo node semantics
// depend only on the node's subtree, so document-level equivalence of
// the recursive-JSL forms implies identical Validate *and* Eval on
// every tree. JSONPath Eval selects path-reached nodes — a property
// boolean equivalence does not preserve — so JSONPath plans are
// excluded from aliasing (their unsat short-circuit is still sound:
// "selects at least one node" is a document predicate).

// semantics is the engine's semantic-pass state: solver bounds, the
// optional compiled schema, and the pass's counters.
type semantics struct {
	caps      jauto.Caps
	dedupScan int
	schema    *SchemaInfo

	checks   atomic.Uint64 // plans analyzed (cache misses)
	unsat    atomic.Uint64 // plans proved unsatisfiable
	unknown  atomic.Uint64 // verdicts lost to budget/undecidability
	aliases  atomic.Uint64 // cache keys served by an equivalent resident plan
	borrowed atomic.Uint64 // facts borrowed via strict containment
	pruned   atomic.Uint64 // facts the schema proved universal
}

// defaultSemanticDedupScan bounds the resident plans examined per
// cache miss when Options.SemanticDedupScan is zero.
const defaultSemanticDedupScan = 8

// Semantic verdicts, as recorded on plans and trace spans.
const (
	VerdictSat         = "sat"
	VerdictUnsat       = "unsat"
	VerdictSchemaUnsat = "schema_unsat"
	VerdictUnknown     = "unknown"
)

// semanticInfo is the per-plan outcome of the pass; immutable once the
// plan is published to the cache.
type semanticInfo struct {
	verdict      string          // "", VerdictSat, VerdictUnsat, ...
	unsat        bool            // no document at all can match
	schemaUnsat  bool            // no schema-conforming document can match
	borrowedFrom string          // source of the containing resident plan
	borrowed     []string        // rendered facts borrowed from it
	pruned       map[string]bool // find facts the schema proves universal
}

// SchemaInfo is a JSON Schema compiled for the planner: the Theorem 1
// JSL translation (for the conjunction tests above) plus a compiled
// plan of that translation (for validating writes). Build one with
// CompileSchema and share it between the engine and the store.
type SchemaInfo struct {
	src  *schema.Schema
	rec  *jsl.Recursive
	plan *Plan
}

// CompileSchema translates a parsed schema into its recursive-JSL form
// and compiles that form into an executable plan.
func CompileSchema(s *schema.Schema) (*SchemaInfo, error) {
	r, err := s.ToJSL()
	if err != nil {
		return nil, err
	}
	p, err := FromJSL("schema", r)
	if err != nil {
		return nil, err
	}
	return &SchemaInfo{src: s, rec: r, plan: p}, nil
}

// Plan returns the compiled validation plan of the schema's JSL
// translation; Engine.Validate(info.Plan(), t) decides conformance.
func (si *SchemaInfo) Plan() *Plan { return si.plan }

// Schema returns the parsed schema the info was compiled from.
func (si *SchemaInfo) Schema() *schema.Schema { return si.src }

// Unsatisfiable reports whether the semantic pass proved that no
// document can match the plan. The store short-circuits such plans to
// an empty answer without touching the index.
func (p *Plan) Unsatisfiable() bool { return p.sem.unsat }

// SchemaUnsatisfiable reports whether the semantic pass proved that no
// document conforming to the engine's schema can match the plan. Only
// stores that enforce the same schema on writes may short-circuit on
// it — unlike Unsatisfiable it says nothing about arbitrary documents.
func (p *Plan) SchemaUnsatisfiable() bool { return p.sem.schemaUnsat }

// SemanticVerdict returns the pass's verdict for the plan ("sat",
// "unsat", "schema_unsat", "unknown"), or "" when the pass did not run
// (disabled engine, or a plan compiled outside an engine).
func (p *Plan) SemanticVerdict() string { return p.sem.verdict }

// SchemaPruned returns the rendered find facts the schema proved
// universal over conforming documents (nil when none): their index
// terms cannot narrow a conforming collection, so a schema-enforcing
// store's planner skips them.
func (p *Plan) SchemaPruned() map[string]bool { return p.sem.pruned }

// recursiveJSLForm translates the plan's reference AST into the
// recursive-JSL form the decision procedures work on, or nil when the
// plan uses constructs outside them (EQ(α,β) is undecidable by
// Proposition 4; test-only star loops produce unguarded recursion).
// For JSONPath the form encodes the *document* predicate "the path
// selects at least one node" — the plan's Validate semantics.
func recursiveJSLForm(p *Plan) *jsl.Recursive {
	switch p.lang {
	case LangJSL, LangMongoFind:
		return p.rec
	case LangJNL:
		r, err := jauto.JNLToRecursiveJSL(p.unary)
		if err != nil {
			return nil
		}
		return r
	case LangJSONPath:
		r, err := jauto.JNLToRecursiveJSL(jnl.Exists{Path: p.path})
		if err != nil {
			return nil
		}
		return r
	}
	return nil
}

// factFormula renders a path fact as the JSL formula it asserts: the
// node at Steps exists and meets the class or value restriction.
func factFormula(f jsontree.PathFact) jsl.Formula {
	var leaf jsl.Formula = jsl.True{}
	switch {
	case f.Value != nil:
		leaf = jsl.EqDoc{Doc: f.Value}
	case f.HasClass:
		switch f.Class {
		case jsontree.ObjectNode:
			leaf = jsl.IsObj{}
		case jsontree.ArrayNode:
			leaf = jsl.IsArr{}
		case jsontree.StringNode:
			leaf = jsl.IsStr{}
		case jsontree.NumberNode:
			leaf = jsl.IsInt{}
		}
	}
	out := leaf
	for i := len(f.Steps) - 1; i >= 0; i-- {
		s := f.Steps[i]
		if s.IsKey {
			out = jsl.DiaWord(s.Key, out)
		} else {
			out = jsl.DiaAt(s.Index, out)
		}
	}
	return out
}

// analyze runs the satisfiability and schema checks on a freshly
// compiled plan, recording a "semantic" child span under the compile
// span. The plan is not yet published, so mutation is safe.
func (e *Engine) analyze(p *Plan, tr *trace.Trace, parent trace.SpanID) {
	s := e.sem
	s.checks.Add(1)
	sp := tr.Start(parent, "semantic")
	p.semJSL = recursiveJSLForm(p)
	verdict := VerdictUnknown
	if p.semJSL != nil {
		_, sat, err := jauto.SatisfiableJSLCaps(p.semJSL, s.caps)
		switch {
		case err != nil:
			// Budget exhausted or outside the decidable fragment: the
			// pass reports "unknown" and the plan runs unoptimized.
		case sat:
			verdict = VerdictSat
		default:
			verdict = VerdictUnsat
			p.sem.unsat = true
			p.prog = qir.Empty(p.query, VerdictUnsat)
			s.unsat.Add(1)
		}
	}
	if s.schema != nil && !p.sem.unsat {
		e.analyzeSchema(p)
		if p.sem.schemaUnsat {
			verdict = VerdictSchemaUnsat
		}
	}
	if verdict == VerdictUnknown {
		s.unknown.Add(1)
	}
	p.sem.verdict = verdict
	tr.AttrStr(sp, "verdict", verdict)
	if n := len(p.sem.pruned); n > 0 {
		tr.Attr(sp, "schema_pruned", int64(n))
	}
	tr.End(sp)
}

// analyzeSchema runs the schema conjunction tests: is any conforming
// document able to match the plan at all, and which of the plan's find
// facts does the schema decide for every conforming document?
func (e *Engine) analyzeSchema(p *Plan) {
	s := e.sem
	conjunctionDecidedSat := false
	if p.semJSL != nil {
		_, sat, err := containment.ConjunctionSatisfiable(p.semJSL, s.schema.rec, s.caps)
		switch {
		case err != nil:
		case !sat:
			p.sem.schemaUnsat = true
			return
		default:
			conjunctionDecidedSat = true
		}
	}
	// Per-fact tests. Facts are necessary conditions for matching, so
	// schema ∧ fact unsatisfiable ⇒ no conforming document matches;
	// schema ∧ ¬fact unsatisfiable ⇒ every conforming document carries
	// the fact and its index term prunes nothing. Bounded so a plan
	// with many facts cannot multiply the compile budget unboundedly.
	const maxFactChecks = 8
	for i, f := range p.findFacts {
		if i >= maxFactChecks {
			break
		}
		ff := factFormula(f)
		if !conjunctionDecidedSat {
			_, sat, err := containment.ConjunctionSatisfiable(s.schema.rec, jsl.NonRecursive(ff), s.caps)
			if err == nil && !sat {
				p.sem.schemaUnsat = true
				return
			}
		}
		_, sat, err := containment.ConjunctionSatisfiable(s.schema.rec, jsl.NonRecursive(jsl.Not{Inner: ff}), s.caps)
		if err == nil && !sat {
			if p.sem.pruned == nil {
				p.sem.pruned = make(map[string]bool)
			}
			if !p.sem.pruned[f.String()] {
				p.sem.pruned[f.String()] = true
				s.pruned.Add(1)
			}
		}
	}
}

// dedup scans the most recently used resident plans for one that is
// provably equivalent to p (returned for reuse under p's key) or that
// strictly contains p (its facts are borrowed into p). Containment
// checks run outside the cache lock on an immutable snapshot; every
// check is budget-bounded and a failed or exhausted check simply
// skips the candidate.
func (e *Engine) dedup(p *Plan) *Plan {
	s := e.sem
	if s.dedupScan <= 0 || p.lang == LangJSONPath || p.semJSL == nil || p.sem.unsat || p.sem.schemaUnsat {
		return nil
	}
	for _, q := range e.cache.recent(s.dedupScan) {
		if q.lang == LangJSONPath || q.semJSL == nil || q.sem.unsat || q.sem.schemaUnsat {
			continue
		}
		pq, err := containment.RecursiveCaps(p.semJSL, q.semJSL, s.caps)
		if err != nil || !pq.Contained {
			continue
		}
		qp, err := containment.RecursiveCaps(q.semJSL, p.semJSL, s.caps)
		if err == nil && qp.Contained {
			s.aliases.Add(1)
			return q
		}
		// Strict containment P ⊑ Q: every document matching P matches Q,
		// so Q's find facts are necessary for P too; borrowing them can
		// only sharpen P's index plan (the store's planner dedups terms).
		if n := p.borrowFacts(q); n > 0 {
			s.borrowed.Add(uint64(n))
		}
	}
	return nil
}

// borrowFacts appends q's find facts that p does not already carry,
// recording their provenance for Explain; returns how many were added.
func (p *Plan) borrowFacts(q *Plan) int {
	seen := make(map[string]bool, len(p.findFacts))
	for _, f := range p.findFacts {
		seen[f.String()] = true
	}
	n := 0
	for _, f := range q.findFacts {
		key := f.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		p.findFacts = append(p.findFacts, f)
		p.sem.borrowed = append(p.sem.borrowed, key)
		n++
	}
	if n > 0 {
		p.sem.borrowedFrom = q.source
	}
	return n
}

// SemanticExplain is the semantic-pass section of a plan explanation.
type SemanticExplain struct {
	// Verdict is the satisfiability verdict ("sat", "unsat",
	// "schema_unsat", "unknown").
	Verdict string `json:"verdict"`
	// BorrowedFrom and BorrowedFacts report index facts inherited from
	// a strictly containing resident plan.
	BorrowedFrom  string   `json:"borrowed_from,omitempty"`
	BorrowedFacts []string `json:"borrowed_facts,omitempty"`
	// SchemaPruned lists find facts the schema proved universal over
	// conforming documents (their index terms are skipped).
	SchemaPruned []string `json:"schema_pruned,omitempty"`
}

// semanticExplain renders the pass outcome, or nil when it did not run.
func (p *Plan) semanticExplain() *SemanticExplain {
	if p.sem.verdict == "" {
		return nil
	}
	ex := &SemanticExplain{
		Verdict:       p.sem.verdict,
		BorrowedFrom:  p.sem.borrowedFrom,
		BorrowedFacts: p.sem.borrowed,
	}
	for fact := range p.sem.pruned {
		ex.SchemaPruned = append(ex.SchemaPruned, fact)
	}
	sort.Strings(ex.SchemaPruned)
	return ex
}
