//go:build !race

package engine

// raceEnabled mirrors the -race flag; see race_detect_test.go.
const raceEnabled = false
