package engine

import (
	"errors"
	"strings"
	"testing"
)

// Error-path coverage for the NDJSON readers: a malformed document
// mid-stream fails alone, empty input yields an empty result, and a
// reader failing mid-stream (an early-closed connection) returns the
// results of the complete lines alongside the error.

func TestNDJSONMalformedMidStream(t *testing.T) {
	e := New(Options{Workers: 2})
	p := MustCompile(LangJNL, `[/k]`)
	input := "{\"k\":1}\n{\"k\":oops}\n\n{\"k\":2}\n{\n"
	results, err := e.EvalReader(p, strings.NewReader(input))
	if err != nil {
		t.Fatalf("reader error for per-line failures: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4 (blank line skipped)", len(results))
	}
	// Results are index-sorted; lines 1 and 4 succeed, 2 and 5 fail.
	wantLines := []int{1, 2, 4, 5}
	wantErr := []bool{false, true, false, true}
	for i, res := range results {
		if res.Line != wantLines[i] {
			t.Errorf("result %d from line %d, want %d", i, res.Line, wantLines[i])
		}
		if (res.Err != nil) != wantErr[i] {
			t.Errorf("result %d: err = %v, want failure=%v", i, res.Err, wantErr[i])
		}
		if res.Err != nil && (res.Tree != nil || res.Nodes != nil) {
			t.Errorf("result %d: failed line carries partial results", i)
		}
		if res.Err == nil && len(res.Nodes) != 1 {
			t.Errorf("result %d: selected %d nodes, want 1", i, len(res.Nodes))
		}
	}

	// ValidateReader mirrors the contract.
	vresults, err := e.ValidateReader(p, strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(vresults) != 4 {
		t.Fatalf("validate got %d results, want 4", len(vresults))
	}
	for i, res := range vresults {
		if (res.Err != nil) != wantErr[i] {
			t.Errorf("validate result %d: err = %v, want failure=%v", i, res.Err, wantErr[i])
		}
		if res.Err == nil && !res.Valid {
			t.Errorf("validate result %d: want valid", i)
		}
	}
}

func TestNDJSONEmptyInput(t *testing.T) {
	e := New(Options{})
	p := MustCompile(LangJSONPath, `$.k`)
	for _, input := range []string{"", "\n\n\n", "   \n\t\n"} {
		results, err := e.EvalReader(p, strings.NewReader(input))
		if err != nil {
			t.Fatalf("input %q: %v", input, err)
		}
		if len(results) != 0 {
			t.Fatalf("input %q: got %d results, want 0", input, len(results))
		}
	}
}

// failingReader yields its payload, then fails with a non-EOF error —
// the shape of a peer closing a connection mid-upload.
type failingReader struct {
	data string
	err  error
	off  int
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestNDJSONEarlyClose(t *testing.T) {
	e := New(Options{Workers: 2})
	p := MustCompile(LangMongoFind, `{"k":{"$gte":1}}`)
	boom := errors.New("connection reset")
	// Two complete lines, then a third cut off by the failure. The
	// scanner flushes the truncated tail as a final token, so it
	// surfaces as a per-line parse error — callers can tell exactly
	// which documents were fully processed — and the reader's own error
	// is returned alongside.
	r := &failingReader{data: "{\"k\":1}\n{\"k\":2}\n{\"k\":", err: boom}
	results, err := e.ValidateReader(p, r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reader's error", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 2 complete + 1 truncated", len(results))
	}
	for i, res := range results[:2] {
		if res.Err != nil || !res.Valid {
			t.Errorf("result %d: err=%v valid=%v, want clean valid", i, res.Err, res.Valid)
		}
	}
	if results[2].Err == nil {
		t.Error("the truncated line must carry a parse error")
	}

	// Failure before any complete line: the lone truncated token fails,
	// and the error still propagates.
	results, err = e.EvalReader(p, &failingReader{data: "{\"k\"", err: boom})
	if !errors.Is(err, boom) || len(results) != 1 || results[0].Err == nil {
		t.Fatalf("partial-only stream: results=%+v err=%v", results, err)
	}
}
