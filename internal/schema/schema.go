// Package schema implements the JSON Schema core fragment of §5.1 of the
// paper (Table 1): string, number, object and array schemas, boolean
// combinations (allOf/anyOf/not/enum), and the recursive
// definitions/$ref mechanism of §5.3. Schemas are parsed from JSON
// values, validated directly, serialized back to JSON, and translated to
// and from the JSON Schema Logic (Theorems 1 and 3).
//
// Two semantic choices follow the paper's appendix rather than JSON
// Schema draft 4, and are recorded in DESIGN.md:
//
//  1. "items": [J1,…,Jn] requires the array to contain elements at all
//     positions 1…n (Theorem 1's translation uses ◇ modalities), and
//     forbids further elements unless "additionalItems" is present.
//  2. "minimum"/"maximum" are inclusive, matching our inclusive Min/Max
//     node tests.
package schema

import (
	"fmt"
	"strings"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// Schema is a parsed JSON Schema document (the core fragment of Table
// 1). Nil pointer and empty slice fields mean "keyword absent". The zero
// value is the empty schema {} that validates every document.
type Schema struct {
	// Type is "", "string", "number", "object" or "array".
	Type string

	// String keywords.
	Pattern *relang.Regex

	// Number keywords.
	Minimum    *uint64
	Maximum    *uint64
	MultipleOf *uint64

	// Object keywords.
	MinProperties        *int
	MaxProperties        *int
	Required             []string
	Properties           []Property
	PatternProperties    []PatternProperty
	AdditionalProperties *Schema

	// Array keywords.
	Items           []*Schema
	AdditionalItems *Schema
	UniqueItems     bool

	// Boolean combinations and comparisons.
	AllOf []*Schema
	AnyOf []*Schema
	Not   *Schema
	Enum  []*jsonval.Value

	// Recursion (§5.3): a reference "#/definitions/<name>" and the root
	// definitions section.
	Ref         string
	Definitions []Definition
}

// Property is one entry of a "properties" object.
type Property struct {
	Key    string
	Schema *Schema
}

// PatternProperty is one entry of a "patternProperties" object.
type PatternProperty struct {
	Pattern *relang.Regex
	Schema  *Schema
}

// Definition is one entry of the root "definitions" section.
type Definition struct {
	Name   string
	Schema *Schema
}

// ParseError reports a malformed schema document.
type ParseError struct {
	Path string
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Path == "" {
		return "schema: " + e.Msg
	}
	return fmt.Sprintf("schema: at %s: %s", e.Path, e.Msg)
}

// Parse parses a schema from JSON text.
func Parse(input string) (*Schema, error) {
	v, err := jsonval.Parse(input)
	if err != nil {
		return nil, err
	}
	return FromValue(v)
}

// MustParse is Parse but panics on error.
func MustParse(input string) *Schema {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

// FromValue parses a schema from a JSON value. Unknown keywords are
// rejected so that typos surface as errors rather than silently
// accepting everything (the behaviour the formalization [29] assumes a
// closed keyword set for).
func FromValue(v *jsonval.Value) (*Schema, error) {
	return parseSchema(v, "$")
}

func errf(path, format string, args ...any) error {
	return &ParseError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

func parseSchema(v *jsonval.Value, path string) (*Schema, error) {
	if !v.IsObject() {
		return nil, errf(path, "a schema must be an object, got %s", v.Kind())
	}
	s := &Schema{}
	for _, m := range v.Members() {
		kv := m.Value
		kpath := path + "." + m.Key
		switch m.Key {
		case "type":
			if !kv.IsString() {
				return nil, errf(kpath, "type must be a string")
			}
			switch kv.Str() {
			case "string", "number", "object", "array":
				s.Type = kv.Str()
			default:
				return nil, errf(kpath, "unsupported type %q (the paper's model has objects, arrays, strings and numbers)", kv.Str())
			}
		case "pattern":
			re, err := parsePattern(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.Pattern = re
		case "minimum":
			n, err := parseNat(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.Minimum = &n
		case "maximum":
			n, err := parseNat(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.Maximum = &n
		case "multipleOf":
			n, err := parseNat(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.MultipleOf = &n
		case "minProperties":
			n, err := parseNat(kv, kpath)
			if err != nil {
				return nil, err
			}
			i := int(n)
			s.MinProperties = &i
		case "maxProperties":
			n, err := parseNat(kv, kpath)
			if err != nil {
				return nil, err
			}
			i := int(n)
			s.MaxProperties = &i
		case "required":
			if !kv.IsArray() {
				return nil, errf(kpath, "required must be an array of strings")
			}
			for i, e := range kv.Elems() {
				if !e.IsString() {
					return nil, errf(kpath, "required[%d] must be a string", i)
				}
				s.Required = append(s.Required, e.Str())
			}
		case "properties":
			if !kv.IsObject() {
				return nil, errf(kpath, "properties must be an object")
			}
			for _, pm := range kv.Members() {
				sub, err := parseSchema(pm.Value, kpath+"."+pm.Key)
				if err != nil {
					return nil, err
				}
				s.Properties = append(s.Properties, Property{Key: pm.Key, Schema: sub})
			}
		case "patternProperties":
			if !kv.IsObject() {
				return nil, errf(kpath, "patternProperties must be an object")
			}
			for _, pm := range kv.Members() {
				re, err := relang.Compile(pm.Key)
				if err != nil {
					return nil, errf(kpath, "bad pattern %q: %v", pm.Key, err)
				}
				sub, err := parseSchema(pm.Value, kpath+"."+pm.Key)
				if err != nil {
					return nil, err
				}
				s.PatternProperties = append(s.PatternProperties, PatternProperty{Pattern: re, Schema: sub})
			}
		case "additionalProperties":
			sub, err := parseSchema(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.AdditionalProperties = sub
		case "items":
			if !kv.IsArray() {
				return nil, errf(kpath, "items must be an array of schemas (the Table 1 fragment)")
			}
			for i, e := range kv.Elems() {
				sub, err := parseSchema(e, fmt.Sprintf("%s[%d]", kpath, i))
				if err != nil {
					return nil, err
				}
				s.Items = append(s.Items, sub)
			}
		case "additionalItems":
			sub, err := parseSchema(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.AdditionalItems = sub
		case "uniqueItems":
			// The paper's fragment only has "uniqueItems": true; our
			// value model has no booleans, so the paper's convention is
			// encoded as the number 1 (and 0 for an explicit false).
			if !kv.IsNumber() || kv.Num() > 1 {
				return nil, errf(kpath, "uniqueItems must be 1 (true) or 0 (false) in the boolean-free value model")
			}
			s.UniqueItems = kv.Num() == 1
		case "allOf", "anyOf":
			if !kv.IsArray() || kv.Len() == 0 {
				return nil, errf(kpath, "%s must be a non-empty array of schemas", m.Key)
			}
			for i, e := range kv.Elems() {
				sub, err := parseSchema(e, fmt.Sprintf("%s[%d]", kpath, i))
				if err != nil {
					return nil, err
				}
				if m.Key == "allOf" {
					s.AllOf = append(s.AllOf, sub)
				} else {
					s.AnyOf = append(s.AnyOf, sub)
				}
			}
		case "not":
			sub, err := parseSchema(kv, kpath)
			if err != nil {
				return nil, err
			}
			s.Not = sub
		case "enum":
			if !kv.IsArray() || kv.Len() == 0 {
				return nil, errf(kpath, "enum must be a non-empty array")
			}
			s.Enum = append(s.Enum, kv.Elems()...)
		case "$ref":
			if !kv.IsString() || !strings.HasPrefix(kv.Str(), "#/definitions/") {
				return nil, errf(kpath, `$ref must be a string of the form "#/definitions/<name>"`)
			}
			s.Ref = strings.TrimPrefix(kv.Str(), "#/definitions/")
		case "definitions":
			if !kv.IsObject() {
				return nil, errf(kpath, "definitions must be an object")
			}
			for _, dm := range kv.Members() {
				sub, err := parseSchema(dm.Value, kpath+"."+dm.Key)
				if err != nil {
					return nil, err
				}
				s.Definitions = append(s.Definitions, Definition{Name: dm.Key, Schema: sub})
			}
		default:
			return nil, errf(kpath, "unknown keyword %q (Table 1 fragment)", m.Key)
		}
	}
	if err := s.checkKeywordTypes(path); err != nil {
		return nil, err
	}
	return s, nil
}

// checkKeywordTypes enforces Table 1's grouping: each typed keyword may
// only appear together with its "type" keyword. This keeps the direct
// validator and the Theorem 1 translation in exact agreement.
func (s *Schema) checkKeywordTypes(path string) error {
	requireType := func(want string, present bool, kw string) error {
		if present && s.Type != want {
			return errf(path, "keyword %q requires \"type\": %q (Table 1)", kw, want)
		}
		return nil
	}
	checks := []struct {
		want    string
		present bool
		kw      string
	}{
		{"string", s.Pattern != nil, "pattern"},
		{"number", s.Minimum != nil, "minimum"},
		{"number", s.Maximum != nil, "maximum"},
		{"number", s.MultipleOf != nil, "multipleOf"},
		{"object", s.MinProperties != nil, "minProperties"},
		{"object", s.MaxProperties != nil, "maxProperties"},
		{"object", len(s.Required) > 0, "required"},
		{"object", len(s.Properties) > 0, "properties"},
		{"object", len(s.PatternProperties) > 0, "patternProperties"},
		{"object", s.AdditionalProperties != nil, "additionalProperties"},
		{"array", len(s.Items) > 0, "items"},
		{"array", s.AdditionalItems != nil, "additionalItems"},
		{"array", s.UniqueItems, "uniqueItems"},
	}
	for _, c := range checks {
		if err := requireType(c.want, c.present, c.kw); err != nil {
			return err
		}
	}
	return nil
}

func parsePattern(v *jsonval.Value, path string) (*relang.Regex, error) {
	if !v.IsString() {
		return nil, errf(path, "pattern must be a string")
	}
	re, err := relang.Compile(v.Str())
	if err != nil {
		return nil, errf(path, "bad pattern: %v", err)
	}
	return re, nil
}

func parseNat(v *jsonval.Value, path string) (uint64, error) {
	if !v.IsNumber() {
		return 0, errf(path, "want a natural number")
	}
	return v.Num(), nil
}

// ToValue serializes the schema back to a JSON value. Parsing the result
// yields an equivalent schema.
func (s *Schema) ToValue() *jsonval.Value {
	var members []jsonval.Member
	add := func(key string, v *jsonval.Value) {
		members = append(members, jsonval.Member{Key: key, Value: v})
	}
	if s.Type != "" {
		add("type", jsonval.Str(s.Type))
	}
	if s.Pattern != nil {
		add("pattern", jsonval.Str(s.Pattern.String()))
	}
	if s.Minimum != nil {
		add("minimum", jsonval.Num(*s.Minimum))
	}
	if s.Maximum != nil {
		add("maximum", jsonval.Num(*s.Maximum))
	}
	if s.MultipleOf != nil {
		add("multipleOf", jsonval.Num(*s.MultipleOf))
	}
	if s.MinProperties != nil {
		add("minProperties", jsonval.Num(uint64(*s.MinProperties)))
	}
	if s.MaxProperties != nil {
		add("maxProperties", jsonval.Num(uint64(*s.MaxProperties)))
	}
	if len(s.Required) > 0 {
		elems := make([]*jsonval.Value, len(s.Required))
		for i, k := range s.Required {
			elems[i] = jsonval.Str(k)
		}
		add("required", jsonval.Arr(elems...))
	}
	if len(s.Properties) > 0 {
		var props []jsonval.Member
		for _, p := range s.Properties {
			props = append(props, jsonval.Member{Key: p.Key, Value: p.Schema.ToValue()})
		}
		add("properties", jsonval.MustObj(props...))
	}
	if len(s.PatternProperties) > 0 {
		var props []jsonval.Member
		for _, p := range s.PatternProperties {
			props = append(props, jsonval.Member{Key: p.Pattern.String(), Value: p.Schema.ToValue()})
		}
		add("patternProperties", jsonval.MustObj(props...))
	}
	if s.AdditionalProperties != nil {
		add("additionalProperties", s.AdditionalProperties.ToValue())
	}
	if len(s.Items) > 0 {
		elems := make([]*jsonval.Value, len(s.Items))
		for i, it := range s.Items {
			elems[i] = it.ToValue()
		}
		add("items", jsonval.Arr(elems...))
	}
	if s.AdditionalItems != nil {
		add("additionalItems", s.AdditionalItems.ToValue())
	}
	if s.UniqueItems {
		add("uniqueItems", jsonval.Num(1))
	}
	if len(s.AllOf) > 0 {
		elems := make([]*jsonval.Value, len(s.AllOf))
		for i, sub := range s.AllOf {
			elems[i] = sub.ToValue()
		}
		add("allOf", jsonval.Arr(elems...))
	}
	if len(s.AnyOf) > 0 {
		elems := make([]*jsonval.Value, len(s.AnyOf))
		for i, sub := range s.AnyOf {
			elems[i] = sub.ToValue()
		}
		add("anyOf", jsonval.Arr(elems...))
	}
	if s.Not != nil {
		add("not", s.Not.ToValue())
	}
	if len(s.Enum) > 0 {
		add("enum", jsonval.Arr(s.Enum...))
	}
	if s.Ref != "" {
		add("$ref", jsonval.Str("#/definitions/"+s.Ref))
	}
	if len(s.Definitions) > 0 {
		var defs []jsonval.Member
		for _, d := range s.Definitions {
			defs = append(defs, jsonval.Member{Key: d.Name, Value: d.Schema.ToValue()})
		}
		add("definitions", jsonval.MustObj(defs...))
	}
	return jsonval.MustObj(members...)
}

// String returns the schema as compact JSON.
func (s *Schema) String() string { return s.ToValue().String() }

// definition lookup by name.
func (s *Schema) definition(name string) (*Schema, bool) {
	for _, d := range s.Definitions {
		if d.Name == name {
			return d.Schema, true
		}
	}
	return nil, false
}
