package schema

import (
	"fmt"

	"jsonlogic/internal/jsonval"
)

// Validate reports whether doc validates against the schema, evaluating
// the keyword semantics of §5.1 directly on the value. For recursive
// schemas, references are resolved against the root schema's
// definitions section; well-formedness (§5.3) must hold, which Validate
// checks up front via the precedence analysis of WellFormed.
//
// Validate is the "specification" implementation: the Theorem 1 tests
// compare it against validation through the JSL translation.
func (s *Schema) Validate(doc *jsonval.Value) (bool, error) {
	if err := s.WellFormed(); err != nil {
		return false, err
	}
	return s.validate(s, doc), nil
}

// MustValidate is Validate but panics on ill-formed schemas.
func (s *Schema) MustValidate(doc *jsonval.Value) bool {
	ok, err := s.Validate(doc)
	if err != nil {
		panic(err)
	}
	return ok
}

// WellFormed checks that every $ref resolves to a definition of the root
// schema and that the reference structure is well-formed per §5.3: the
// precedence graph, whose edges connect a definition to the references
// that occur in it outside the scope of any navigation keyword, must be
// acyclic.
func (s *Schema) WellFormed() error {
	// Collect definition names.
	names := map[string]bool{}
	for _, d := range s.Definitions {
		if names[d.Name] {
			return fmt.Errorf("schema: duplicate definition %q", d.Name)
		}
		names[d.Name] = true
	}
	// Every reference must resolve (definitions may only sit at root).
	var check func(sub *Schema) error
	check = func(sub *Schema) error {
		if sub.Ref != "" && !names[sub.Ref] {
			return fmt.Errorf("schema: $ref to undefined definition %q", sub.Ref)
		}
		if sub != s && len(sub.Definitions) > 0 {
			return fmt.Errorf("schema: definitions are only supported at the schema root")
		}
		for _, child := range sub.subschemas(true) {
			if err := check(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(s); err != nil {
		return err
	}
	// Precedence graph over definitions: unguarded references are those
	// reachable without crossing a navigation keyword.
	graph := map[string][]string{}
	for _, d := range s.Definitions {
		seen := map[string]bool{}
		collectUnguardedRefs(d.Schema, seen)
		for name := range seen {
			graph[d.Name] = append(graph[d.Name], name)
		}
	}
	state := map[string]int{}
	var visit func(string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("schema: ill-formed recursion: unguarded $ref cycle through %q", n)
		case 2:
			return nil
		}
		state[n] = 1
		for _, m := range graph[n] {
			if err := visit(m); err != nil {
				return err
			}
		}
		state[n] = 2
		return nil
	}
	for _, d := range s.Definitions {
		if err := visit(d.Name); err != nil {
			return err
		}
	}
	return nil
}

// subschemas returns the directly nested schemas. If guardedToo is true
// the navigation keywords' subschemas (properties, patternProperties,
// additionalProperties, items, additionalItems) are included; otherwise
// only the unguarded positions (boolean combinators) are returned.
func (s *Schema) subschemas(guardedToo bool) []*Schema {
	var out []*Schema
	out = append(out, s.AllOf...)
	out = append(out, s.AnyOf...)
	if s.Not != nil {
		out = append(out, s.Not)
	}
	for _, d := range s.Definitions {
		out = append(out, d.Schema)
	}
	if guardedToo {
		for _, p := range s.Properties {
			out = append(out, p.Schema)
		}
		for _, p := range s.PatternProperties {
			out = append(out, p.Schema)
		}
		if s.AdditionalProperties != nil {
			out = append(out, s.AdditionalProperties)
		}
		out = append(out, s.Items...)
		if s.AdditionalItems != nil {
			out = append(out, s.AdditionalItems)
		}
	}
	return out
}

func collectUnguardedRefs(s *Schema, out map[string]bool) {
	if s.Ref != "" {
		out[s.Ref] = true
	}
	for _, sub := range s.subschemas(false) {
		collectUnguardedRefs(sub, out)
	}
}

// validate evaluates the schema against doc; root carries the
// definitions for $ref resolution. Well-formedness guarantees
// termination: every reference cycle crosses a navigation keyword, which
// strictly descends into the document.
func (s *Schema) validate(root *Schema, doc *jsonval.Value) bool {
	if s.Ref != "" {
		def, ok := root.definition(s.Ref)
		if !ok || !def.validate(root, doc) {
			return false
		}
	}
	for _, sub := range s.AllOf {
		if !sub.validate(root, doc) {
			return false
		}
	}
	if len(s.AnyOf) > 0 {
		any := false
		for _, sub := range s.AnyOf {
			if sub.validate(root, doc) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if s.Not != nil && s.Not.validate(root, doc) {
		return false
	}
	if len(s.Enum) > 0 {
		found := false
		for _, e := range s.Enum {
			if jsonval.Equal(e, doc) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	switch s.Type {
	case "string":
		if !doc.IsString() {
			return false
		}
		if s.Pattern != nil && !s.Pattern.Match(doc.Str()) {
			return false
		}
	case "number":
		if !doc.IsNumber() {
			return false
		}
		n := doc.Num()
		if s.Minimum != nil && n < *s.Minimum {
			return false
		}
		if s.Maximum != nil && n > *s.Maximum {
			return false
		}
		if s.MultipleOf != nil {
			m := *s.MultipleOf
			if m == 0 {
				if n != 0 {
					return false
				}
			} else if n%m != 0 {
				return false
			}
		}
	case "object":
		if !doc.IsObject() {
			return false
		}
		if !s.validateObject(root, doc) {
			return false
		}
	case "array":
		if !doc.IsArray() {
			return false
		}
		if !s.validateArray(root, doc) {
			return false
		}
	}
	return true
}

func (s *Schema) validateObject(root *Schema, doc *jsonval.Value) bool {
	if s.MinProperties != nil && doc.Len() < *s.MinProperties {
		return false
	}
	if s.MaxProperties != nil && doc.Len() > *s.MaxProperties {
		return false
	}
	for _, k := range s.Required {
		if _, ok := doc.Member(k); !ok {
			return false
		}
	}
	for _, p := range s.Properties {
		if v, ok := doc.Member(p.Key); ok {
			if !p.Schema.validate(root, v) {
				return false
			}
		}
	}
	for _, pp := range s.PatternProperties {
		for _, m := range doc.Members() {
			if pp.Pattern.Match(m.Key) && !pp.Schema.validate(root, m.Value) {
				return false
			}
		}
	}
	if s.AdditionalProperties != nil {
		for _, m := range doc.Members() {
			if s.coveredKey(m.Key) {
				continue
			}
			if !s.AdditionalProperties.validate(root, m.Value) {
				return false
			}
		}
	}
	return true
}

// coveredKey reports whether a key appears in properties or matches some
// patternProperties expression; additionalProperties applies to the rest.
func (s *Schema) coveredKey(key string) bool {
	for _, p := range s.Properties {
		if p.Key == key {
			return true
		}
	}
	for _, pp := range s.PatternProperties {
		if pp.Pattern.Match(key) {
			return true
		}
	}
	return false
}

func (s *Schema) validateArray(root *Schema, doc *jsonval.Value) bool {
	elems := doc.Elems()
	if len(s.Items) > 0 {
		// Paper semantics: items pins down the first n positions, which
		// must all be present.
		if len(elems) < len(s.Items) {
			return false
		}
		for i, it := range s.Items {
			if !it.validate(root, elems[i]) {
				return false
			}
		}
		rest := elems[len(s.Items):]
		if s.AdditionalItems != nil {
			for _, e := range rest {
				if !s.AdditionalItems.validate(root, e) {
					return false
				}
			}
		} else if len(rest) > 0 {
			// Theorem 1's construction: absent additionalItems forbids
			// further elements.
			return false
		}
	} else if s.AdditionalItems != nil {
		for _, e := range elems {
			if !s.AdditionalItems.validate(root, e) {
				return false
			}
		}
	}
	if s.UniqueItems {
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				if elems[i].Hash() == elems[j].Hash() && jsonval.Equal(elems[i], elems[j]) {
					return false
				}
			}
		}
	}
	return true
}
