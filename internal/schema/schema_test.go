package schema

import (
	"testing"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

func mustValidate(t *testing.T, schemaSrc, doc string) bool {
	t.Helper()
	s := MustParse(schemaSrc)
	ok, err := s.Validate(jsonval.MustParse(doc))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return ok
}

// TestTable1Conformance exercises every keyword of Table 1 of the paper
// with accepting and rejecting documents.
func TestTable1Conformance(t *testing.T) {
	cases := []struct {
		name   string
		schema string
		accept []string
		reject []string
	}{
		{
			name:   "type-string",
			schema: `{"type":"string"}`,
			accept: []string{`"x"`, `""`},
			reject: []string{`1`, `{}`, `[]`},
		},
		{
			name:   "pattern",
			schema: `{"type":"string","pattern":"(01)+"}`,
			accept: []string{`"01"`, `"0101"`},
			reject: []string{`"0"`, `""`, `"012"`, `1`},
		},
		{
			name:   "type-number",
			schema: `{"type":"number"}`,
			accept: []string{`0`, `42`},
			reject: []string{`"42"`, `{}`},
		},
		{
			// §5.1: {"type":"number","maximum":12,"multipleOf":4}
			// describes numbers 0, 4, 8 and 12.
			name:   "number-max-multipleOf",
			schema: `{"type":"number","maximum":12,"multipleOf":4}`,
			accept: []string{`0`, `4`, `8`, `12`},
			reject: []string{`2`, `16`, `13`},
		},
		{
			name:   "minimum-inclusive",
			schema: `{"type":"number","minimum":5}`,
			accept: []string{`5`, `6`},
			reject: []string{`4`, `0`},
		},
		{
			name:   "type-object",
			schema: `{"type":"object"}`,
			accept: []string{`{}`, `{"a":1}`},
			reject: []string{`[]`, `1`},
		},
		{
			name:   "min-max-properties",
			schema: `{"type":"object","minProperties":1,"maxProperties":2}`,
			accept: []string{`{"a":1}`, `{"a":1,"b":2}`},
			reject: []string{`{}`, `{"a":1,"b":2,"c":3}`},
		},
		{
			name:   "required",
			schema: `{"type":"object","required":["name","age"]}`,
			accept: []string{`{"name":"x","age":1}`, `{"age":1,"name":"x","z":0}`},
			reject: []string{`{"name":"x"}`, `{}`},
		},
		{
			name:   "properties",
			schema: `{"type":"object","properties":{"age":{"type":"number"}}}`,
			accept: []string{`{"age":3}`, `{}`, `{"other":"x"}`},
			reject: []string{`{"age":"three"}`},
		},
		{
			name:   "patternProperties",
			schema: `{"type":"object","patternProperties":{"a(b|c)a":{"type":"number","multipleOf":2}}}`,
			accept: []string{`{"aba":4}`, `{"aca":0,"x":"y"}`, `{}`},
			reject: []string{`{"aba":3}`, `{"aca":"even"}`},
		},
		{
			// The full example of §5.1 combining properties,
			// patternProperties and additionalProperties.
			name: "additionalProperties-example",
			schema: `{
				"type": "object",
				"properties": {"name": {"type":"string"}},
				"patternProperties": {"a(b|c)a": {"type":"number","multipleOf":2}},
				"additionalProperties": {"type":"number","minimum":1,"maximum":1}
			}`,
			accept: []string{
				`{"name":"x","aba":4,"other":1}`,
				`{}`,
				`{"other":1}`,
			},
			reject: []string{
				`{"name":3}`,
				`{"aba":3}`,
				`{"other":2}`,
				`{"other":"one"}`,
			},
		},
		{
			// The array example of §5.1: at least 2 elements, first two
			// strings, remaining numbers, all distinct.
			name: "array-example",
			schema: `{
				"type": "array",
				"items": [{"type":"string"},{"type":"string"}],
				"additionalItems": {"type":"number"},
				"uniqueItems": 1
			}`,
			accept: []string{`["a","b"]`, `["a","b",1,2]`},
			reject: []string{`["a"]`, `["a","b","c"]`, `["a","a"]`, `["a","b",1,1]`, `[1,2]`},
		},
		{
			name:   "items-without-additionalItems-forbids-extra",
			schema: `{"type":"array","items":[{"type":"number"}]}`,
			accept: []string{`[1]`},
			reject: []string{`[]`, `[1,2]`, `["x"]`},
		},
		{
			name:   "uniqueItems-deep",
			schema: `{"type":"array","uniqueItems":1}`,
			accept: []string{`[]`, `[1,2]`, `[{"a":1},{"a":2}]`, `[[1],[1,1]]`},
			reject: []string{`[1,1]`, `[{"a":1},{"a":1}]`, `[[],[]]`},
		},
		{
			name:   "allOf",
			schema: `{"allOf":[{"type":"number","minimum":2},{"type":"number","maximum":5}]}`,
			accept: []string{`2`, `5`},
			reject: []string{`1`, `6`, `"3"`},
		},
		{
			name:   "anyOf",
			schema: `{"anyOf":[{"type":"string"},{"type":"number"}]}`,
			accept: []string{`"x"`, `3`},
			reject: []string{`{}`, `[]`},
		},
		{
			// §5.1: "not":{"type":"number","multipleOf":2} validates any
			// odd number or any non-number.
			name:   "not",
			schema: `{"not":{"type":"number","multipleOf":2}}`,
			accept: []string{`1`, `3`, `"x"`, `{}`},
			reject: []string{`0`, `2`, `4`},
		},
		{
			name:   "enum",
			schema: `{"enum":[1,"a",{"k":[2]}]}`,
			accept: []string{`1`, `"a"`, `{"k":[2]}`},
			reject: []string{`2`, `"b"`, `{"k":[3]}`, `{}`},
		},
		{
			// The recursive email example of §5.3.
			name: "definitions-ref",
			schema: `{
				"definitions": {
					"email": {"type":"string","pattern":"[A-z]*@ciws\\.cl"}
				},
				"not": {"$ref": "#/definitions/email"}
			}`,
			accept: []string{`"x@gmail.com"`, `42`, `{}`},
			reject: []string{`"john@ciws.cl"`},
		},
		{
			name:   "empty-schema",
			schema: `{}`,
			accept: []string{`1`, `"x"`, `{}`, `[]`, `{"a":[1,"b"]}`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := MustParse(tc.schema)
			// Direct validation.
			for _, doc := range tc.accept {
				if !s.MustValidate(jsonval.MustParse(doc)) {
					t.Errorf("direct: %s should validate against %s", doc, tc.name)
				}
			}
			for _, doc := range tc.reject {
				if s.MustValidate(jsonval.MustParse(doc)) {
					t.Errorf("direct: %s should NOT validate against %s", doc, tc.name)
				}
			}
			// Theorem 1: validation through the JSL translation agrees.
			r, err := s.ToJSL()
			if err != nil {
				t.Fatalf("ToJSL: %v", err)
			}
			for _, doc := range append(append([]string{}, tc.accept...), tc.reject...) {
				tr := jsontree.MustParse(doc)
				got, err := jsl.HoldsRecursive(tr, r)
				if err != nil {
					t.Fatalf("JSL eval: %v", err)
				}
				want := s.MustValidate(jsonval.MustParse(doc))
				if got != want {
					t.Errorf("Theorem 1 violated on %s: JSL %v, direct %v (formula %s)",
						doc, got, want, r.String())
				}
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`[]`,
		`{"type":"boolean"}`,
		`{"type":1}`,
		`{"pattern":"a"}`,                 // pattern without type string
		`{"type":"number","pattern":"a"}`, // pattern on number schema
		`{"minimum":-1}`,
		`{"type":"object","required":"name"}`,
		`{"type":"object","required":[1]}`,
		`{"type":"array","items":{"type":"string"}}`, // non-array items (outside fragment)
		`{"type":"array","uniqueItems":2}`,
		`{"typo":"string"}`,
		`{"allOf":[]}`,
		`{"enum":[]}`,
		`{"$ref":"http://elsewhere"}`,
		`{"type":"string","pattern":"("}`,
		`{"type":"object","patternProperties":{"(":{}}}`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%s): expected error", src)
		}
	}
}

func TestWellFormedness(t *testing.T) {
	// Unguarded self-reference is ill-formed.
	bad := MustParse(`{"definitions":{"x":{"not":{"$ref":"#/definitions/x"}}},"$ref":"#/definitions/x"}`)
	if err := bad.WellFormed(); err == nil {
		t.Error("unguarded $ref cycle must be ill-formed")
	}
	// Guarded recursion is fine: a list of numbers of any depth.
	good := MustParse(`{
		"definitions": {
			"tree": {"anyOf":[
				{"type":"number"},
				{"type":"array","additionalItems":{"$ref":"#/definitions/tree"}}
			]}
		},
		"$ref": "#/definitions/tree"
	}`)
	if err := good.WellFormed(); err != nil {
		t.Errorf("guarded recursion must be well-formed: %v", err)
	}
	for doc, want := range map[string]bool{
		`3`:            true,
		`[]`:           true,
		`[1,[2,[3]]]`:  true,
		`"x"`:          false,
		`[1,"x"]`:      false,
		`[[["deep"]]]`: false,
	} {
		if got := good.MustValidate(jsonval.MustParse(doc)); got != want {
			t.Errorf("recursive tree schema on %s: got %v want %v", doc, got, want)
		}
	}
	// Unresolved reference.
	if _, err := MustParse(`{"$ref":"#/definitions/nope"}`).Validate(jsonval.Num(1)); err == nil {
		t.Error("unresolved $ref must error")
	}
	// Theorem 3: the recursive schema and its JSL translation agree.
	r, err := good.ToJSL()
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{`3`, `[]`, `[1,[2,[3]]]`, `"x"`, `[1,"x"]`} {
		tr := jsontree.MustParse(doc)
		got, err := jsl.HoldsRecursive(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != good.MustValidate(jsonval.MustParse(doc)) {
			t.Errorf("Theorem 3 violated on %s", doc)
		}
	}
}

func TestToValueRoundTrip(t *testing.T) {
	srcs := []string{
		`{"type":"string","pattern":"ab*"}`,
		`{"type":"number","minimum":1,"maximum":9,"multipleOf":3}`,
		`{"type":"object","minProperties":1,"required":["a"],"properties":{"a":{"type":"number"}},"patternProperties":{"x.*":{}},"additionalProperties":{"type":"string"}}`,
		`{"type":"array","items":[{},{}],"additionalItems":{"type":"number"},"uniqueItems":1}`,
		`{"allOf":[{"type":"number"}],"anyOf":[{},{}],"not":{"type":"string"},"enum":[1,2]}`,
		`{"definitions":{"d":{"type":"number"}},"$ref":"#/definitions/d"}`,
	}
	for _, src := range srcs {
		s := MustParse(src)
		round, err := FromValue(s.ToValue())
		if err != nil {
			t.Errorf("round-trip parse of %s: %v", src, err)
			continue
		}
		if round.String() != s.String() {
			t.Errorf("round trip unstable:\n  %s\n  %s", s, round)
		}
	}
}
