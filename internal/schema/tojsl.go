package schema

import (
	"fmt"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/relang"
)

// ToJSL translates the schema into a recursive JSL expression, following
// the constructive proof of Theorem 1 (and Theorem 3 for definitions):
// every keyword of Table 1 maps to a NodeTest or modality. The resulting
// expression satisfies: doc validates against s iff tree(doc) |= ToJSL(s).
func (s *Schema) ToJSL() (*jsl.Recursive, error) {
	if err := s.WellFormed(); err != nil {
		return nil, err
	}
	base, err := s.formulaJSL()
	if err != nil {
		return nil, err
	}
	r := &jsl.Recursive{Base: base}
	for _, d := range s.Definitions {
		body, err := d.Schema.formulaJSL()
		if err != nil {
			return nil, err
		}
		r.Defs = append(r.Defs, jsl.Definition{Name: d.Name, Body: body})
	}
	return r, nil
}

func (s *Schema) formulaJSL() (jsl.Formula, error) {
	var parts []jsl.Formula

	if s.Ref != "" {
		parts = append(parts, jsl.Ref{Name: s.Ref})
	}
	for _, sub := range s.AllOf {
		f, err := sub.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	if len(s.AnyOf) > 0 {
		var alts []jsl.Formula
		for _, sub := range s.AnyOf {
			f, err := sub.formulaJSL()
			if err != nil {
				return nil, err
			}
			alts = append(alts, f)
		}
		parts = append(parts, jsl.OrAll(alts...))
	}
	if s.Not != nil {
		f, err := s.Not.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, jsl.Not{Inner: f})
	}
	if len(s.Enum) > 0 {
		var alts []jsl.Formula
		for _, e := range s.Enum {
			alts = append(alts, jsl.EqDoc{Doc: e})
		}
		parts = append(parts, jsl.OrAll(alts...))
	}

	switch s.Type {
	case "":
		// No typed part.
	case "string":
		parts = append(parts, jsl.IsStr{})
		if s.Pattern != nil {
			parts = append(parts, jsl.Pattern{Re: s.Pattern})
		}
	case "number":
		parts = append(parts, jsl.IsInt{})
		if s.Minimum != nil {
			parts = append(parts, jsl.Min{I: *s.Minimum})
		}
		if s.Maximum != nil {
			parts = append(parts, jsl.Max{I: *s.Maximum})
		}
		if s.MultipleOf != nil {
			parts = append(parts, jsl.MultOf{I: *s.MultipleOf})
		}
	case "object":
		obj, err := s.objectJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, obj)
	case "array":
		arr, err := s.arrayJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, arr)
	default:
		return nil, fmt.Errorf("schema: unknown type %q", s.Type)
	}
	return jsl.AndAll(parts...), nil
}

func (s *Schema) objectJSL() (jsl.Formula, error) {
	parts := []jsl.Formula{jsl.IsObj{}}
	if s.MinProperties != nil {
		parts = append(parts, jsl.MinCh{K: *s.MinProperties})
	}
	if s.MaxProperties != nil {
		parts = append(parts, jsl.MaxCh{K: *s.MaxProperties})
	}
	for _, k := range s.Required {
		parts = append(parts, jsl.DiaWord(k, jsl.True{}))
	}
	// covered accumulates the key language claimed by properties and
	// patternProperties; additionalProperties constrains its complement.
	covered := relang.None()
	for _, p := range s.Properties {
		f, err := p.Schema.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, jsl.BoxWord(p.Key, f))
		covered = covered.Union(relang.Literal(p.Key))
	}
	for _, pp := range s.PatternProperties {
		f, err := pp.Schema.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, jsl.BoxRe(pp.Pattern, f))
		covered = covered.Union(pp.Pattern)
	}
	if s.AdditionalProperties != nil {
		f, err := s.AdditionalProperties.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, jsl.BoxRe(covered.Complement(), f))
	}
	return jsl.AndAll(parts...), nil
}

func (s *Schema) arrayJSL() (jsl.Formula, error) {
	parts := []jsl.Formula{jsl.IsArr{}}
	if s.UniqueItems {
		parts = append(parts, jsl.Unique{})
	}
	for i, it := range s.Items {
		f, err := it.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, jsl.DiaAt(i, f))
	}
	switch {
	case s.AdditionalItems != nil:
		f, err := s.AdditionalItems.formulaJSL()
		if err != nil {
			return nil, err
		}
		parts = append(parts, jsl.BoxIdx{Lo: len(s.Items), Hi: jsl.Inf, Inner: f})
	case len(s.Items) > 0:
		// Theorem 1: without additionalItems, positions past items are
		// forbidden (◻_{n:∞}⊥).
		parts = append(parts, jsl.BoxIdx{Lo: len(s.Items), Hi: jsl.Inf, Inner: jsl.False()})
	}
	return jsl.AndAll(parts...), nil
}
