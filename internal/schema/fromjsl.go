package schema

import (
	"fmt"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
)

// maxIndexSpan bounds the finite-interval expansion of index modalities
// when translating JSL to JSON Schema: ◇_{i:j} becomes one disjunct per
// position, so enormous intervals would produce enormous schemas.
const maxIndexSpan = 1024

// FromJSL translates a recursive JSL expression into a JSON Schema,
// following the constructive proof of Theorem 1 (second item) extended
// with definitions per Theorem 3. The result satisfies: tree(doc) |= r
// iff doc validates against FromJSL(r).
//
// The translation requires every key modality to carry a source pattern
// (formulas built from parsed syntax always do); regexes produced by
// language operations (complement/intersection) have no concrete
// pattern syntax and are rejected.
func FromJSL(r *jsl.Recursive) (*Schema, error) {
	if err := r.WellFormed(); err != nil {
		return nil, err
	}
	root, err := fromFormula(r.Base)
	if err != nil {
		return nil, err
	}
	for _, d := range r.Defs {
		ds, err := fromFormula(d.Body)
		if err != nil {
			return nil, err
		}
		root.Definitions = append(root.Definitions, Definition{Name: d.Name, Schema: ds})
	}
	return root, nil
}

// FromJSLFormula translates a plain JSL formula.
func FromJSLFormula(f jsl.Formula) (*Schema, error) {
	return fromFormula(f)
}

// Schema building blocks used by the translation.

func emptySchema() *Schema { return &Schema{} }

// unsatSchema validates nothing: {"not": {}}.
func unsatSchema() *Schema { return &Schema{Not: emptySchema()} }

func notSchema(s *Schema) *Schema { return &Schema{Not: s} }

func typeSchema(t string) *Schema { return &Schema{Type: t} }

// exactLen validates arrays with exactly k elements, any content.
func exactLen(k int) *Schema {
	if k == 0 {
		// additionalItems without items constrains every element; ⊥
		// forbids all, leaving only the empty array.
		return &Schema{Type: "array", AdditionalItems: unsatSchema()}
	}
	s := &Schema{Type: "array"}
	for i := 0; i < k; i++ {
		s.Items = append(s.Items, emptySchema())
	}
	// No additionalItems: Theorem 1 semantics forbids further elements.
	return s
}

// prefixThen validates arrays with ≥ prefix elements whose elements from
// position prefix on validate tail.
func prefixThen(prefix int, tail *Schema) *Schema {
	s := &Schema{Type: "array", AdditionalItems: tail}
	for i := 0; i < prefix; i++ {
		s.Items = append(s.Items, emptySchema())
	}
	return s
}

func anyOf(subs ...*Schema) *Schema {
	if len(subs) == 1 {
		return subs[0]
	}
	return &Schema{AnyOf: subs}
}

func allOf(subs ...*Schema) *Schema {
	if len(subs) == 1 {
		return subs[0]
	}
	return &Schema{AllOf: subs}
}

func fromFormula(f jsl.Formula) (*Schema, error) {
	switch t := f.(type) {
	case jsl.True:
		return emptySchema(), nil
	case jsl.Not:
		inner, err := fromFormula(t.Inner)
		if err != nil {
			return nil, err
		}
		return notSchema(inner), nil
	case jsl.And:
		l, err := fromFormula(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := fromFormula(t.Right)
		if err != nil {
			return nil, err
		}
		return allOf(l, r), nil
	case jsl.Or:
		l, err := fromFormula(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := fromFormula(t.Right)
		if err != nil {
			return nil, err
		}
		return anyOf(l, r), nil
	case jsl.IsObj:
		return typeSchema("object"), nil
	case jsl.IsArr:
		return typeSchema("array"), nil
	case jsl.IsStr:
		return typeSchema("string"), nil
	case jsl.IsInt:
		return typeSchema("number"), nil
	case jsl.Unique:
		return &Schema{Type: "array", UniqueItems: true}, nil
	case jsl.Pattern:
		return &Schema{Type: "string", Pattern: t.Re}, nil
	case jsl.Min:
		i := t.I
		return &Schema{Type: "number", Minimum: &i}, nil
	case jsl.Max:
		i := t.I
		return &Schema{Type: "number", Maximum: &i}, nil
	case jsl.MultOf:
		i := t.I
		return &Schema{Type: "number", MultipleOf: &i}, nil
	case jsl.MinCh:
		return fromMinCh(t.K), nil
	case jsl.MaxCh:
		return fromMaxCh(t.K), nil
	case jsl.EqDoc:
		return &Schema{Enum: []*jsonval.Value{t.Doc}}, nil
	case jsl.DiamondKey:
		return fromDiamondKey(t)
	case jsl.BoxKey:
		return fromBoxKey(t)
	case jsl.DiamondIdx:
		return fromDiamondIdx(t.Lo, t.Hi, t.Inner)
	case jsl.BoxIdx:
		return fromBoxIdx(t.Lo, t.Hi, t.Inner)
	case jsl.Ref:
		return &Schema{Ref: t.Name}, nil
	}
	return nil, fmt.Errorf("schema: cannot translate %T to JSON Schema", f)
}

// fromMinCh: MinCh(0) is ⊤; for k ≥ 1 only objects and arrays have
// children, so the schema is the union of an object with ≥ k properties
// and an array with ≥ k elements.
func fromMinCh(k int) *Schema {
	if k <= 0 {
		return emptySchema()
	}
	kk := k
	obj := &Schema{Type: "object", MinProperties: &kk}
	arr := prefixThen(k, emptySchema())
	return anyOf(obj, arr)
}

// fromMaxCh: scalars always satisfy MaxCh; objects via maxProperties;
// arrays via a union of exact lengths 0…k.
func fromMaxCh(k int) *Schema {
	kk := k
	scalar := notSchema(anyOf(typeSchema("object"), typeSchema("array")))
	obj := &Schema{Type: "object", MaxProperties: &kk}
	subs := []*Schema{scalar, obj}
	for i := 0; i <= k; i++ {
		subs = append(subs, exactLen(i))
	}
	return anyOf(subs...)
}

func fromDiamondKey(t jsl.DiamondKey) (*Schema, error) {
	inner, err := fromFormula(t.Inner)
	if err != nil {
		return nil, err
	}
	if t.IsWord {
		return &Schema{
			Type:       "object",
			Required:   []string{t.Word},
			Properties: []Property{{Key: t.Word, Schema: inner}},
		}, nil
	}
	// ◇_e ψ ≡ Obj ∧ ¬◻_e ¬ψ: an object for which it is not the case
	// that all keys matching e lead to ¬ψ.
	notInner, err := fromFormula(jsl.Not{Inner: t.Inner})
	if err != nil {
		return nil, err
	}
	boxNeg := &Schema{
		Type:              "object",
		PatternProperties: []PatternProperty{{Pattern: t.Re, Schema: notInner}},
	}
	return allOf(typeSchema("object"), notSchema(boxNeg)), nil
}

func fromBoxKey(t jsl.BoxKey) (*Schema, error) {
	inner, err := fromFormula(t.Inner)
	if err != nil {
		return nil, err
	}
	notObject := notSchema(typeSchema("object"))
	if t.IsWord {
		obj := &Schema{Type: "object", Properties: []Property{{Key: t.Word, Schema: inner}}}
		return anyOf(notObject, obj), nil
	}
	obj := &Schema{
		Type:              "object",
		PatternProperties: []PatternProperty{{Pattern: t.Re, Schema: inner}},
	}
	return anyOf(notObject, obj), nil
}

func fromDiamondIdx(lo, hi int, innerF jsl.Formula) (*Schema, error) {
	inner, err := fromFormula(innerF)
	if err != nil {
		return nil, err
	}
	if hi == jsl.Inf {
		// ◇_{i:∞} ψ ≡ Arr ∧ ¬◻_{i:∞} ¬ψ.
		boxNeg, err := fromBoxIdx(lo, jsl.Inf, jsl.Not{Inner: innerF})
		if err != nil {
			return nil, err
		}
		return allOf(typeSchema("array"), notSchema(boxNeg)), nil
	}
	if hi-lo > maxIndexSpan {
		return nil, fmt.Errorf("schema: index interval %d:%d too wide to expand", lo, hi)
	}
	// One disjunct per position p: an array of ≥ p+1 elements whose p-th
	// element validates inner.
	var subs []*Schema
	for p := lo; p <= hi; p++ {
		s := &Schema{Type: "array", AdditionalItems: emptySchema()}
		for i := 0; i < p; i++ {
			s.Items = append(s.Items, emptySchema())
		}
		s.Items = append(s.Items, inner)
		subs = append(subs, s)
	}
	return anyOf(subs...), nil
}

func fromBoxIdx(lo, hi int, innerF jsl.Formula) (*Schema, error) {
	notArray := notSchema(typeSchema("array"))
	if hi == jsl.Inf {
		inner, err := fromFormula(innerF)
		if err != nil {
			return nil, err
		}
		// Arrays shorter than lo satisfy the box vacuously; longer ones
		// must have a ψ-tail from position lo on.
		subs := []*Schema{notArray}
		for k := 0; k < lo; k++ {
			subs = append(subs, exactLen(k))
		}
		subs = append(subs, prefixThen(lo, inner))
		return anyOf(subs...), nil
	}
	// ◻_{i:j} ψ ≡ ¬Arr ∨ ¬◇_{i:j} ¬ψ.
	diaNeg, err := fromDiamondIdx(lo, hi, jsl.Not{Inner: innerF})
	if err != nil {
		return nil, err
	}
	return anyOf(notArray, allOf(typeSchema("array"), notSchema(diaNeg))), nil
}
