package schema

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// randomFormula generates JSL formulas covering every constructor that
// FromJSL translates.
func randomFormula(r *rand.Rand, depth int) jsl.Formula {
	if depth == 0 {
		switch r.Intn(12) {
		case 0:
			return jsl.True{}
		case 1:
			return jsl.IsObj{}
		case 2:
			return jsl.IsArr{}
		case 3:
			return jsl.IsStr{}
		case 4:
			return jsl.IsInt{}
		case 5:
			return jsl.Unique{}
		case 6:
			return jsl.Pattern{Re: relang.MustCompile("[ab]+")}
		case 7:
			return jsl.Min{I: uint64(r.Intn(5))}
		case 8:
			return jsl.Max{I: uint64(r.Intn(5))}
		case 9:
			return jsl.MinCh{K: r.Intn(3)}
		case 10:
			return jsl.MaxCh{K: r.Intn(3)}
		default:
			return jsl.EqDoc{Doc: randomDoc(r, 1)}
		}
	}
	switch r.Intn(9) {
	case 0:
		return jsl.Not{Inner: randomFormula(r, depth-1)}
	case 1:
		return jsl.And{Left: randomFormula(r, depth-1), Right: randomFormula(r, depth-1)}
	case 2:
		return jsl.Or{Left: randomFormula(r, depth-1), Right: randomFormula(r, depth-1)}
	case 3:
		return jsl.DiaWord(key(r), randomFormula(r, depth-1))
	case 4:
		return jsl.BoxWord(key(r), randomFormula(r, depth-1))
	case 5:
		return jsl.DiaRe(relang.MustCompile(key(r)+".*"), randomFormula(r, depth-1))
	case 6:
		return jsl.BoxRe(relang.MustCompile(".*"+key(r)), randomFormula(r, depth-1))
	case 7:
		lo := r.Intn(3)
		hi := jsl.Inf
		if r.Intn(2) == 0 {
			hi = lo + r.Intn(3)
		}
		if r.Intn(2) == 0 {
			return jsl.DiamondIdx{Lo: lo, Hi: hi, Inner: randomFormula(r, depth-1)}
		}
		return jsl.BoxIdx{Lo: lo, Hi: hi, Inner: randomFormula(r, depth-1)}
	default:
		return randomFormula(r, 0)
	}
}

func key(r *rand.Rand) string { return string(rune('a' + r.Intn(3))) }

func randomDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(6)))
		}
		return jsonval.Str(key(r))
	}
	n := r.Intn(3)
	if r.Intn(2) == 0 {
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randomDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	var members []jsonval.Member
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := key(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, jsonval.Member{Key: k, Value: randomDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

type theorem1Case struct {
	formula jsl.Formula
	doc     *jsonval.Value
}

func (theorem1Case) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(theorem1Case{randomFormula(r, 2), randomDoc(r, 3)})
}

// TestQuickTheorem1FromJSL: tree(doc) |= φ iff doc validates against
// FromJSL(φ), on random formulas and documents.
func TestQuickTheorem1FromJSL(t *testing.T) {
	f := func(c theorem1Case) bool {
		s, err := FromJSLFormula(c.formula)
		if err != nil {
			t.Logf("FromJSLFormula(%s): %v", jsl.String(c.formula), err)
			return false
		}
		tr := jsontree.FromValue(c.doc)
		want, err := jsl.Holds(tr, c.formula)
		if err != nil {
			return false
		}
		got, err := s.Validate(c.doc)
		if err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		if got != want {
			t.Logf("formula=%s doc=%s schema=%s: schema %v, JSL %v",
				jsl.String(c.formula), c.doc, s, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1Equivalence composes the two translations: a random
// schema-translatable formula φ, translated to a schema and back through
// ToJSL, still agrees with φ on random documents.
func TestTheorem1Equivalence(t *testing.T) {
	f := func(c theorem1Case) bool {
		s, err := FromJSLFormula(c.formula)
		if err != nil {
			return false
		}
		back, err := s.ToJSL()
		if err != nil {
			t.Logf("ToJSL: %v", err)
			return false
		}
		tr := jsontree.FromValue(c.doc)
		orig, err := jsl.Holds(tr, c.formula)
		if err != nil {
			return false
		}
		round, err := jsl.HoldsRecursive(tr, back)
		if err != nil {
			t.Logf("round eval: %v", err)
			return false
		}
		return orig == round
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
