package containment

// Containment fuzzing: for arbitrary pairs of recursive JSL sources the
// decision procedure must be crash-free, reflexive (P ⊑ P), and sound
// in both directions — a refutation's counterexample must separate the
// pair under the production evaluator, and a decided equivalence must
// make the two expressions agree on random documents.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"jsonlogic/internal/gen"
	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
)

// fuzzEquivTrees is how many random documents a decided equivalence is
// cross-checked against.
const fuzzEquivTrees = 50

func fuzzContainCaps() jauto.Caps {
	c := jauto.DefaultCaps()
	c.MaxSteps = 200000
	return c
}

func FuzzContainment(f *testing.F) {
	f.Add(`number && min(5)`, `number && min(3)`)
	f.Add(`string`, `string || number`)
	f.Add(`some("a", number)`, `object`)
	f.Add(`def g = eq(0) || some("next", g) ; g`, `eq(0) || some("next", true)`)
	f.Add(`unique && array`, `(unique && array) && !eq([])`)
	f.Add(`all("k", number && multOf(4))`, `all("k", number && multOf(2))`)

	f.Fuzz(func(t *testing.T, srcP, srcQ string) {
		p, err := jsl.ParseRecursive(srcP)
		if err != nil {
			return
		}
		q, err := jsl.ParseRecursive(srcQ)
		if err != nil {
			return
		}
		if p.WellFormed() != nil || q.WellFormed() != nil {
			return // undefined or unguarded references; rejected at compile
		}
		caps := fuzzContainCaps()

		// Reflexivity: P ⊑ P whenever the procedure can decide it.
		if refl, err := RecursiveCaps(p, p, caps); err == nil && !refl.Contained {
			t.Fatalf("reflexivity violated: %q ⋢ itself (counterexample %s)", srcP, refl.Counterexample)
		}

		pq, err := RecursiveCaps(p, q, caps)
		if errors.Is(err, jauto.ErrBudget) {
			return
		}
		if err != nil {
			t.Fatalf("containment(%q, %q): %v", srcP, srcQ, err)
		}
		if !pq.Contained {
			// The counterexample must satisfy P and refute Q under the
			// production evaluator — witnesses are re-verified, not trusted.
			if pq.Counterexample == nil {
				t.Fatalf("not-contained verdict without counterexample: %q vs %q", srcP, srcQ)
			}
			w := jsontree.FromValue(pq.Counterexample)
			inP, err := jsl.HoldsRecursive(w, p)
			if err != nil {
				t.Fatalf("evaluate counterexample against %q: %v", srcP, err)
			}
			inQ, err := jsl.HoldsRecursive(w, q)
			if err != nil {
				t.Fatalf("evaluate counterexample against %q: %v", srcQ, err)
			}
			if !inP || inQ {
				t.Fatalf("counterexample for %q ⋢ %q does not separate: P=%v Q=%v witness=%s",
					srcP, srcQ, inP, inQ, pq.Counterexample)
			}
			return
		}
		qp, err := RecursiveCaps(q, p, caps)
		if err != nil || !qp.Contained {
			return
		}
		// Decided equivalence: the two expressions must agree everywhere;
		// spot-check on random documents.
		h := fnv.New64a()
		fmt.Fprint(h, srcP, "\x00", srcQ)
		r := rand.New(rand.NewSource(int64(h.Sum64())))
		opts := gen.DocOptions{Fanout: 3, Depth: 3, Keys: 12, ArrayBias: 40, ValueRange: 20}
		for i := 0; i < fuzzEquivTrees; i++ {
			tree := jsontree.FromValue(gen.Document(r, opts))
			inP, err1 := jsl.HoldsRecursive(tree, p)
			inQ, err2 := jsl.HoldsRecursive(tree, q)
			if err1 != nil || err2 != nil {
				t.Fatalf("evaluate random doc: %v / %v", err1, err2)
			}
			if inP != inQ {
				t.Fatalf("decided equivalence %q ≡ %q disagrees on random document %d: P=%v Q=%v",
					srcP, srcQ, i, inP, inQ)
			}
		}
	})
}
